# Empty compiler generated dependencies file for train_baseline_zoo.
# This may be replaced when dependencies are built.
