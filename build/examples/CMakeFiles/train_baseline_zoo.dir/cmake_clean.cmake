file(REMOVE_RECURSE
  "CMakeFiles/train_baseline_zoo.dir/train_baseline_zoo.cpp.o"
  "CMakeFiles/train_baseline_zoo.dir/train_baseline_zoo.cpp.o.d"
  "train_baseline_zoo"
  "train_baseline_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_baseline_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
