# Empty dependencies file for debias_and_save.
# This may be replaced when dependencies are built.
