file(REMOVE_RECURSE
  "CMakeFiles/debias_and_save.dir/debias_and_save.cpp.o"
  "CMakeFiles/debias_and_save.dir/debias_and_save.cpp.o.d"
  "debias_and_save"
  "debias_and_save.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debias_and_save.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
