# Empty dependencies file for english_bias_study.
# This may be replaced when dependencies are built.
