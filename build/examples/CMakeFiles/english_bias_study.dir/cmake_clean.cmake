file(REMOVE_RECURSE
  "CMakeFiles/english_bias_study.dir/english_bias_study.cpp.o"
  "CMakeFiles/english_bias_study.dir/english_bias_study.cpp.o.d"
  "english_bias_study"
  "english_bias_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/english_bias_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
