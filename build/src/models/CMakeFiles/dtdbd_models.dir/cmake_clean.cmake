file(REMOVE_RECURSE
  "CMakeFiles/dtdbd_models.dir/bert_mlp.cc.o"
  "CMakeFiles/dtdbd_models.dir/bert_mlp.cc.o.d"
  "CMakeFiles/dtdbd_models.dir/bigru.cc.o"
  "CMakeFiles/dtdbd_models.dir/bigru.cc.o.d"
  "CMakeFiles/dtdbd_models.dir/eann.cc.o"
  "CMakeFiles/dtdbd_models.dir/eann.cc.o.d"
  "CMakeFiles/dtdbd_models.dir/eddfn.cc.o"
  "CMakeFiles/dtdbd_models.dir/eddfn.cc.o.d"
  "CMakeFiles/dtdbd_models.dir/m3fend.cc.o"
  "CMakeFiles/dtdbd_models.dir/m3fend.cc.o.d"
  "CMakeFiles/dtdbd_models.dir/mdfend.cc.o"
  "CMakeFiles/dtdbd_models.dir/mdfend.cc.o.d"
  "CMakeFiles/dtdbd_models.dir/model.cc.o"
  "CMakeFiles/dtdbd_models.dir/model.cc.o.d"
  "CMakeFiles/dtdbd_models.dir/moe.cc.o"
  "CMakeFiles/dtdbd_models.dir/moe.cc.o.d"
  "CMakeFiles/dtdbd_models.dir/style_emotion.cc.o"
  "CMakeFiles/dtdbd_models.dir/style_emotion.cc.o.d"
  "CMakeFiles/dtdbd_models.dir/textcnn.cc.o"
  "CMakeFiles/dtdbd_models.dir/textcnn.cc.o.d"
  "libdtdbd_models.a"
  "libdtdbd_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtdbd_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
