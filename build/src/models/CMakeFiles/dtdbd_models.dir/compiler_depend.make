# Empty compiler generated dependencies file for dtdbd_models.
# This may be replaced when dependencies are built.
