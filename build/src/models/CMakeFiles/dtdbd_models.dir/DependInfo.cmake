
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/bert_mlp.cc" "src/models/CMakeFiles/dtdbd_models.dir/bert_mlp.cc.o" "gcc" "src/models/CMakeFiles/dtdbd_models.dir/bert_mlp.cc.o.d"
  "/root/repo/src/models/bigru.cc" "src/models/CMakeFiles/dtdbd_models.dir/bigru.cc.o" "gcc" "src/models/CMakeFiles/dtdbd_models.dir/bigru.cc.o.d"
  "/root/repo/src/models/eann.cc" "src/models/CMakeFiles/dtdbd_models.dir/eann.cc.o" "gcc" "src/models/CMakeFiles/dtdbd_models.dir/eann.cc.o.d"
  "/root/repo/src/models/eddfn.cc" "src/models/CMakeFiles/dtdbd_models.dir/eddfn.cc.o" "gcc" "src/models/CMakeFiles/dtdbd_models.dir/eddfn.cc.o.d"
  "/root/repo/src/models/m3fend.cc" "src/models/CMakeFiles/dtdbd_models.dir/m3fend.cc.o" "gcc" "src/models/CMakeFiles/dtdbd_models.dir/m3fend.cc.o.d"
  "/root/repo/src/models/mdfend.cc" "src/models/CMakeFiles/dtdbd_models.dir/mdfend.cc.o" "gcc" "src/models/CMakeFiles/dtdbd_models.dir/mdfend.cc.o.d"
  "/root/repo/src/models/model.cc" "src/models/CMakeFiles/dtdbd_models.dir/model.cc.o" "gcc" "src/models/CMakeFiles/dtdbd_models.dir/model.cc.o.d"
  "/root/repo/src/models/moe.cc" "src/models/CMakeFiles/dtdbd_models.dir/moe.cc.o" "gcc" "src/models/CMakeFiles/dtdbd_models.dir/moe.cc.o.d"
  "/root/repo/src/models/style_emotion.cc" "src/models/CMakeFiles/dtdbd_models.dir/style_emotion.cc.o" "gcc" "src/models/CMakeFiles/dtdbd_models.dir/style_emotion.cc.o.d"
  "/root/repo/src/models/textcnn.cc" "src/models/CMakeFiles/dtdbd_models.dir/textcnn.cc.o" "gcc" "src/models/CMakeFiles/dtdbd_models.dir/textcnn.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/dtdbd_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dtdbd_data.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/dtdbd_text.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/dtdbd_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dtdbd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
