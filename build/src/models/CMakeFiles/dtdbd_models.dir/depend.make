# Empty dependencies file for dtdbd_models.
# This may be replaced when dependencies are built.
