file(REMOVE_RECURSE
  "libdtdbd_models.a"
)
