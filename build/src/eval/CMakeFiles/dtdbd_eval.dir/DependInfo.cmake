
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/case_study.cc" "src/eval/CMakeFiles/dtdbd_eval.dir/case_study.cc.o" "gcc" "src/eval/CMakeFiles/dtdbd_eval.dir/case_study.cc.o.d"
  "/root/repo/src/eval/tsne.cc" "src/eval/CMakeFiles/dtdbd_eval.dir/tsne.cc.o" "gcc" "src/eval/CMakeFiles/dtdbd_eval.dir/tsne.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dtdbd/CMakeFiles/dtdbd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dtdbd_data.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/dtdbd_models.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/dtdbd_text.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/dtdbd_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/dtdbd_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dtdbd_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dtdbd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
