file(REMOVE_RECURSE
  "CMakeFiles/dtdbd_eval.dir/case_study.cc.o"
  "CMakeFiles/dtdbd_eval.dir/case_study.cc.o.d"
  "CMakeFiles/dtdbd_eval.dir/tsne.cc.o"
  "CMakeFiles/dtdbd_eval.dir/tsne.cc.o.d"
  "libdtdbd_eval.a"
  "libdtdbd_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtdbd_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
