# Empty compiler generated dependencies file for dtdbd_eval.
# This may be replaced when dependencies are built.
