file(REMOVE_RECURSE
  "libdtdbd_eval.a"
)
