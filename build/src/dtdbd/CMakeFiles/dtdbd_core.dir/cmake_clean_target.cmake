file(REMOVE_RECURSE
  "libdtdbd_core.a"
)
