# Empty compiler generated dependencies file for dtdbd_core.
# This may be replaced when dependencies are built.
