file(REMOVE_RECURSE
  "CMakeFiles/dtdbd_core.dir/dat.cc.o"
  "CMakeFiles/dtdbd_core.dir/dat.cc.o.d"
  "CMakeFiles/dtdbd_core.dir/distill.cc.o"
  "CMakeFiles/dtdbd_core.dir/distill.cc.o.d"
  "CMakeFiles/dtdbd_core.dir/dtdbd.cc.o"
  "CMakeFiles/dtdbd_core.dir/dtdbd.cc.o.d"
  "CMakeFiles/dtdbd_core.dir/momentum.cc.o"
  "CMakeFiles/dtdbd_core.dir/momentum.cc.o.d"
  "CMakeFiles/dtdbd_core.dir/trainer.cc.o"
  "CMakeFiles/dtdbd_core.dir/trainer.cc.o.d"
  "libdtdbd_core.a"
  "libdtdbd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtdbd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
