file(REMOVE_RECURSE
  "libdtdbd_metrics.a"
)
