# Empty compiler generated dependencies file for dtdbd_metrics.
# This may be replaced when dependencies are built.
