file(REMOVE_RECURSE
  "CMakeFiles/dtdbd_metrics.dir/metrics.cc.o"
  "CMakeFiles/dtdbd_metrics.dir/metrics.cc.o.d"
  "libdtdbd_metrics.a"
  "libdtdbd_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtdbd_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
