# Empty compiler generated dependencies file for dtdbd_tensor.
# This may be replaced when dependencies are built.
