file(REMOVE_RECURSE
  "libdtdbd_tensor.a"
)
