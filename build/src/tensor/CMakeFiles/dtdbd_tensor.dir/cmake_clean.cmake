file(REMOVE_RECURSE
  "CMakeFiles/dtdbd_tensor.dir/init.cc.o"
  "CMakeFiles/dtdbd_tensor.dir/init.cc.o.d"
  "CMakeFiles/dtdbd_tensor.dir/loss.cc.o"
  "CMakeFiles/dtdbd_tensor.dir/loss.cc.o.d"
  "CMakeFiles/dtdbd_tensor.dir/ops.cc.o"
  "CMakeFiles/dtdbd_tensor.dir/ops.cc.o.d"
  "CMakeFiles/dtdbd_tensor.dir/optim.cc.o"
  "CMakeFiles/dtdbd_tensor.dir/optim.cc.o.d"
  "CMakeFiles/dtdbd_tensor.dir/serialize.cc.o"
  "CMakeFiles/dtdbd_tensor.dir/serialize.cc.o.d"
  "CMakeFiles/dtdbd_tensor.dir/tensor.cc.o"
  "CMakeFiles/dtdbd_tensor.dir/tensor.cc.o.d"
  "libdtdbd_tensor.a"
  "libdtdbd_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtdbd_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
