# Empty compiler generated dependencies file for dtdbd_nn.
# This may be replaced when dependencies are built.
