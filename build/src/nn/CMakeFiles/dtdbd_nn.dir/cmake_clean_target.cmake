file(REMOVE_RECURSE
  "libdtdbd_nn.a"
)
