file(REMOVE_RECURSE
  "CMakeFiles/dtdbd_nn.dir/attention.cc.o"
  "CMakeFiles/dtdbd_nn.dir/attention.cc.o.d"
  "CMakeFiles/dtdbd_nn.dir/conv.cc.o"
  "CMakeFiles/dtdbd_nn.dir/conv.cc.o.d"
  "CMakeFiles/dtdbd_nn.dir/embedding.cc.o"
  "CMakeFiles/dtdbd_nn.dir/embedding.cc.o.d"
  "CMakeFiles/dtdbd_nn.dir/linear.cc.o"
  "CMakeFiles/dtdbd_nn.dir/linear.cc.o.d"
  "CMakeFiles/dtdbd_nn.dir/module.cc.o"
  "CMakeFiles/dtdbd_nn.dir/module.cc.o.d"
  "CMakeFiles/dtdbd_nn.dir/norm.cc.o"
  "CMakeFiles/dtdbd_nn.dir/norm.cc.o.d"
  "CMakeFiles/dtdbd_nn.dir/rnn.cc.o"
  "CMakeFiles/dtdbd_nn.dir/rnn.cc.o.d"
  "libdtdbd_nn.a"
  "libdtdbd_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtdbd_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
