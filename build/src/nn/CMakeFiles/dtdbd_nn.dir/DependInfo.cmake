
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/attention.cc" "src/nn/CMakeFiles/dtdbd_nn.dir/attention.cc.o" "gcc" "src/nn/CMakeFiles/dtdbd_nn.dir/attention.cc.o.d"
  "/root/repo/src/nn/conv.cc" "src/nn/CMakeFiles/dtdbd_nn.dir/conv.cc.o" "gcc" "src/nn/CMakeFiles/dtdbd_nn.dir/conv.cc.o.d"
  "/root/repo/src/nn/embedding.cc" "src/nn/CMakeFiles/dtdbd_nn.dir/embedding.cc.o" "gcc" "src/nn/CMakeFiles/dtdbd_nn.dir/embedding.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/nn/CMakeFiles/dtdbd_nn.dir/linear.cc.o" "gcc" "src/nn/CMakeFiles/dtdbd_nn.dir/linear.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/nn/CMakeFiles/dtdbd_nn.dir/module.cc.o" "gcc" "src/nn/CMakeFiles/dtdbd_nn.dir/module.cc.o.d"
  "/root/repo/src/nn/norm.cc" "src/nn/CMakeFiles/dtdbd_nn.dir/norm.cc.o" "gcc" "src/nn/CMakeFiles/dtdbd_nn.dir/norm.cc.o.d"
  "/root/repo/src/nn/rnn.cc" "src/nn/CMakeFiles/dtdbd_nn.dir/rnn.cc.o" "gcc" "src/nn/CMakeFiles/dtdbd_nn.dir/rnn.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/dtdbd_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dtdbd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
