file(REMOVE_RECURSE
  "CMakeFiles/dtdbd_common.dir/check.cc.o"
  "CMakeFiles/dtdbd_common.dir/check.cc.o.d"
  "CMakeFiles/dtdbd_common.dir/flags.cc.o"
  "CMakeFiles/dtdbd_common.dir/flags.cc.o.d"
  "CMakeFiles/dtdbd_common.dir/logging.cc.o"
  "CMakeFiles/dtdbd_common.dir/logging.cc.o.d"
  "CMakeFiles/dtdbd_common.dir/rng.cc.o"
  "CMakeFiles/dtdbd_common.dir/rng.cc.o.d"
  "CMakeFiles/dtdbd_common.dir/status.cc.o"
  "CMakeFiles/dtdbd_common.dir/status.cc.o.d"
  "CMakeFiles/dtdbd_common.dir/table.cc.o"
  "CMakeFiles/dtdbd_common.dir/table.cc.o.d"
  "libdtdbd_common.a"
  "libdtdbd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtdbd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
