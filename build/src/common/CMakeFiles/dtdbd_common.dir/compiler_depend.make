# Empty compiler generated dependencies file for dtdbd_common.
# This may be replaced when dependencies are built.
