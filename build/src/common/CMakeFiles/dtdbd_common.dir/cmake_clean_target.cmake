file(REMOVE_RECURSE
  "libdtdbd_common.a"
)
