file(REMOVE_RECURSE
  "libdtdbd_data.a"
)
