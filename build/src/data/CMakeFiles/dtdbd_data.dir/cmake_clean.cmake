file(REMOVE_RECURSE
  "CMakeFiles/dtdbd_data.dir/dataset.cc.o"
  "CMakeFiles/dtdbd_data.dir/dataset.cc.o.d"
  "CMakeFiles/dtdbd_data.dir/generator.cc.o"
  "CMakeFiles/dtdbd_data.dir/generator.cc.o.d"
  "libdtdbd_data.a"
  "libdtdbd_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtdbd_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
