# Empty dependencies file for dtdbd_data.
# This may be replaced when dependencies are built.
