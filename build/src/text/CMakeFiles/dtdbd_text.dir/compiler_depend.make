# Empty compiler generated dependencies file for dtdbd_text.
# This may be replaced when dependencies are built.
