file(REMOVE_RECURSE
  "CMakeFiles/dtdbd_text.dir/features.cc.o"
  "CMakeFiles/dtdbd_text.dir/features.cc.o.d"
  "CMakeFiles/dtdbd_text.dir/frozen_encoder.cc.o"
  "CMakeFiles/dtdbd_text.dir/frozen_encoder.cc.o.d"
  "CMakeFiles/dtdbd_text.dir/vocab.cc.o"
  "CMakeFiles/dtdbd_text.dir/vocab.cc.o.d"
  "libdtdbd_text.a"
  "libdtdbd_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtdbd_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
