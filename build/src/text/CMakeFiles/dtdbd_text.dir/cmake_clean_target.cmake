file(REMOVE_RECURSE
  "libdtdbd_text.a"
)
