file(REMOVE_RECURSE
  "CMakeFiles/dtdbd_bench_harness.dir/harness.cc.o"
  "CMakeFiles/dtdbd_bench_harness.dir/harness.cc.o.d"
  "libdtdbd_bench_harness.a"
  "libdtdbd_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtdbd_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
