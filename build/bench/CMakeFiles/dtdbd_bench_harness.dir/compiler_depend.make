# Empty compiler generated dependencies file for dtdbd_bench_harness.
# This may be replaced when dependencies are built.
