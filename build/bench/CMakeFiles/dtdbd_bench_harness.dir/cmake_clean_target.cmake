file(REMOVE_RECURSE
  "libdtdbd_bench_harness.a"
)
