file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_chinese.dir/bench_table6_chinese.cc.o"
  "CMakeFiles/bench_table6_chinese.dir/bench_table6_chinese.cc.o.d"
  "bench_table6_chinese"
  "bench_table6_chinese.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_chinese.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
