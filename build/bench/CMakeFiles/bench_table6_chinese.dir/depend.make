# Empty dependencies file for bench_table6_chinese.
# This may be replaced when dependencies are built.
