# Empty compiler generated dependencies file for bench_table9_dat_ie.
# This may be replaced when dependencies are built.
