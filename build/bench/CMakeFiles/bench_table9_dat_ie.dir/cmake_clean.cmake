file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_dat_ie.dir/bench_table9_dat_ie.cc.o"
  "CMakeFiles/bench_table9_dat_ie.dir/bench_table9_dat_ie.cc.o.d"
  "bench_table9_dat_ie"
  "bench_table9_dat_ie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_dat_ie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
