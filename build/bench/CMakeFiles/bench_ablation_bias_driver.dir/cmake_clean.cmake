file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bias_driver.dir/bench_ablation_bias_driver.cc.o"
  "CMakeFiles/bench_ablation_bias_driver.dir/bench_ablation_bias_driver.cc.o.d"
  "bench_ablation_bias_driver"
  "bench_ablation_bias_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bias_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
