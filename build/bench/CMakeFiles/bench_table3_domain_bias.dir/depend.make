# Empty dependencies file for bench_table3_domain_bias.
# This may be replaced when dependencies are built.
