file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_domain_bias.dir/bench_table3_domain_bias.cc.o"
  "CMakeFiles/bench_table3_domain_bias.dir/bench_table3_domain_bias.cc.o.d"
  "bench_table3_domain_bias"
  "bench_table3_domain_bias.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_domain_bias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
