file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_cases.dir/bench_fig3_cases.cc.o"
  "CMakeFiles/bench_fig3_cases.dir/bench_fig3_cases.cc.o.d"
  "bench_fig3_cases"
  "bench_fig3_cases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
