# Empty dependencies file for bench_fig3_cases.
# This may be replaced when dependencies are built.
