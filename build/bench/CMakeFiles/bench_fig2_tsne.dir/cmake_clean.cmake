file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_tsne.dir/bench_fig2_tsne.cc.o"
  "CMakeFiles/bench_fig2_tsne.dir/bench_fig2_tsne.cc.o.d"
  "bench_fig2_tsne"
  "bench_fig2_tsne.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_tsne.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
