file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_add_scale.dir/bench_ablation_add_scale.cc.o"
  "CMakeFiles/bench_ablation_add_scale.dir/bench_ablation_add_scale.cc.o.d"
  "bench_ablation_add_scale"
  "bench_ablation_add_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_add_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
