# Empty dependencies file for bench_table7_english.
# This may be replaced when dependencies are built.
