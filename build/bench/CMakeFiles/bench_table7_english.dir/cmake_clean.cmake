file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_english.dir/bench_table7_english.cc.o"
  "CMakeFiles/bench_table7_english.dir/bench_table7_english.cc.o.d"
  "bench_table7_english"
  "bench_table7_english.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_english.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
