file(REMOVE_RECURSE
  "CMakeFiles/dtdbd_test.dir/dtdbd_test.cc.o"
  "CMakeFiles/dtdbd_test.dir/dtdbd_test.cc.o.d"
  "dtdbd_test"
  "dtdbd_test.pdb"
  "dtdbd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtdbd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
