# Empty dependencies file for dtdbd_test.
# This may be replaced when dependencies are built.
