# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/ops_test[1]_include.cmake")
include("/root/repo/build/tests/gradcheck_test[1]_include.cmake")
include("/root/repo/build/tests/loss_test[1]_include.cmake")
include("/root/repo/build/tests/optim_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/models_test[1]_include.cmake")
include("/root/repo/build/tests/dtdbd_test[1]_include.cmake")
include("/root/repo/build/tests/tsne_test[1]_include.cmake")
include("/root/repo/build/tests/trainer_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
