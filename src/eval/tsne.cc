#include "eval/tsne.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/rng.h"

namespace dtdbd::eval {

namespace {

// Squared Euclidean distances between rows of features.
std::vector<double> PairwiseSq(const std::vector<float>& x, int n, int dim) {
  std::vector<double> d(static_cast<size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      double acc = 0.0;
      for (int k = 0; k < dim; ++k) {
        const double delta = static_cast<double>(x[i * dim + k]) -
                             static_cast<double>(x[j * dim + k]);
        acc += delta * delta;
      }
      d[i * n + j] = acc;
      d[j * n + i] = acc;
    }
  }
  return d;
}

// Binary-searches the Gaussian bandwidth of row i to hit the target
// perplexity; writes conditional probabilities p_{j|i}.
void RowConditionals(const std::vector<double>& dist, int n, int i,
                     double perplexity, double* p_row) {
  const double target_entropy = std::log(perplexity);
  double beta = 1.0, beta_min = 0.0, beta_max = 1e30;
  for (int iter = 0; iter < 60; ++iter) {
    double sum = 0.0;
    for (int j = 0; j < n; ++j) {
      p_row[j] = j == i ? 0.0 : std::exp(-beta * dist[i * n + j]);
      sum += p_row[j];
    }
    if (sum <= 1e-300) {
      beta /= 2.0;
      beta_max = beta * 2.0;
      continue;
    }
    double entropy = 0.0;
    for (int j = 0; j < n; ++j) {
      if (p_row[j] > 0.0) {
        const double p = p_row[j] / sum;
        entropy -= p * std::log(p);
      }
    }
    for (int j = 0; j < n; ++j) p_row[j] /= sum;
    const double diff = entropy - target_entropy;
    if (std::abs(diff) < 1e-5) return;
    if (diff > 0.0) {  // entropy too high -> sharpen
      beta_min = beta;
      beta = beta_max > 1e29 ? beta * 2.0 : 0.5 * (beta + beta_max);
    } else {
      beta_max = beta;
      beta = 0.5 * (beta + beta_min);
    }
  }
}

}  // namespace

std::vector<double> RunTsne(const std::vector<float>& features, int n,
                            int dim, const TsneOptions& options) {
  DTDBD_CHECK_GT(n, 3);
  DTDBD_CHECK_GT(dim, 0);
  DTDBD_CHECK_EQ(static_cast<size_t>(n) * dim, features.size());
  DTDBD_CHECK_LT(3 * options.perplexity, n)
      << "perplexity too large for n=" << n;

  const std::vector<double> dist = PairwiseSq(features, n, dim);

  // Symmetric joint probabilities P.
  std::vector<double> p(static_cast<size_t>(n) * n, 0.0);
  {
    std::vector<double> row(n);
    for (int i = 0; i < n; ++i) {
      RowConditionals(dist, n, i, options.perplexity, row.data());
      for (int j = 0; j < n; ++j) p[i * n + j] = row[j];
    }
  }
  double p_sum = 0.0;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const double v = (p[i * n + j] + p[j * n + i]) / (2.0 * n);
      p[i * n + j] = v;
      p[j * n + i] = v;
      p_sum += 2.0 * v;
    }
  }
  (void)p_sum;
  for (auto& v : p) v = std::max(v, 1e-12);

  // Gradient descent on the 2-D embedding.
  Rng rng(options.seed);
  std::vector<double> y(static_cast<size_t>(n) * 2);
  for (auto& v : y) v = rng.Normal(0.0, 1e-2);
  std::vector<double> velocity(y.size(), 0.0);
  std::vector<double> gains(y.size(), 1.0);
  std::vector<double> q(static_cast<size_t>(n) * n, 0.0);
  std::vector<double> grad(y.size(), 0.0);

  for (int iter = 0; iter < options.iterations; ++iter) {
    const double exaggeration =
        iter < options.exaggeration_until ? options.early_exaggeration : 1.0;
    // Student-t affinities Q.
    double q_sum = 0.0;
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        const double dx = y[i * 2] - y[j * 2];
        const double dy = y[i * 2 + 1] - y[j * 2 + 1];
        const double w = 1.0 / (1.0 + dx * dx + dy * dy);
        q[i * n + j] = w;
        q[j * n + i] = w;
        q_sum += 2.0 * w;
      }
    }
    // Gradient.
    std::fill(grad.begin(), grad.end(), 0.0);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i == j) continue;
        const double w = q[i * n + j];
        const double coeff =
            4.0 * (exaggeration * p[i * n + j] - w / q_sum) * w;
        grad[i * 2] += coeff * (y[i * 2] - y[j * 2]);
        grad[i * 2 + 1] += coeff * (y[i * 2 + 1] - y[j * 2 + 1]);
      }
    }
    const double momentum = iter < options.momentum_switch_iter
                                ? options.momentum_initial
                                : options.momentum_final;
    for (size_t k = 0; k < y.size(); ++k) {
      // Adaptive gains as in the reference implementation.
      gains[k] = (grad[k] > 0.0) != (velocity[k] > 0.0) ? gains[k] + 0.2
                                                        : gains[k] * 0.8;
      gains[k] = std::max(gains[k], 0.01);
      velocity[k] = momentum * velocity[k] -
                    options.learning_rate * gains[k] * grad[k];
      y[k] += velocity[k];
    }
    // Re-center.
    double mean_x = 0.0, mean_y = 0.0;
    for (int i = 0; i < n; ++i) {
      mean_x += y[i * 2];
      mean_y += y[i * 2 + 1];
    }
    mean_x /= n;
    mean_y /= n;
    for (int i = 0; i < n; ++i) {
      y[i * 2] -= mean_x;
      y[i * 2 + 1] -= mean_y;
    }
  }
  return y;
}

double DomainMixingScore(const std::vector<double>& embedding, int n,
                         const std::vector<int>& domains, int k) {
  DTDBD_CHECK_EQ(static_cast<size_t>(n) * 2, embedding.size());
  DTDBD_CHECK_EQ(static_cast<size_t>(n), domains.size());
  DTDBD_CHECK_GT(k, 0);
  DTDBD_CHECK_LT(k, n);
  double total = 0.0;
  std::vector<std::pair<double, int>> neighbors(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const double dx = embedding[i * 2] - embedding[j * 2];
      const double dy = embedding[i * 2 + 1] - embedding[j * 2 + 1];
      neighbors[j] = {dx * dx + dy * dy, j};
    }
    neighbors[i].first = 1e300;  // exclude self
    std::partial_sort(neighbors.begin(), neighbors.begin() + k,
                      neighbors.end());
    int other = 0;
    for (int t = 0; t < k; ++t) {
      if (domains[neighbors[t].second] != domains[i]) ++other;
    }
    total += static_cast<double>(other) / k;
  }
  return total / n;
}

}  // namespace dtdbd::eval
