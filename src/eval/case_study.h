// Helpers for the Figure 3 case studies: pick individual news items with a
// prescribed (domain, label) and compare per-model fake probabilities.
#ifndef DTDBD_EVAL_CASE_STUDY_H_
#define DTDBD_EVAL_CASE_STUDY_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "models/model.h"

namespace dtdbd::eval {

// Extracts up to `count` samples matching (domain, label) into a standalone
// dataset sharing the source vocabulary.
data::NewsDataset SelectCases(const data::NewsDataset& source, int domain,
                              int label, int count);

struct CasePrediction {
  std::string model;
  double mean_fake_probability = 0.0;
  double accuracy = 0.0;  // fraction of cases classified correctly
};

// Runs every model on the case set and reports its mean P(fake) and
// accuracy against the true labels.
std::vector<CasePrediction> CompareOnCases(
    const std::vector<models::FakeNewsModel*>& models_to_compare,
    const data::NewsDataset& cases);

}  // namespace dtdbd::eval

#endif  // DTDBD_EVAL_CASE_STUDY_H_
