// Exact (O(N^2)) t-SNE (van der Maaten & Hinton 2008) for the Figure 2
// feature-space visualization. Suitable for the few hundred test points
// the figure plots.
#ifndef DTDBD_EVAL_TSNE_H_
#define DTDBD_EVAL_TSNE_H_

#include <cstdint>
#include <vector>

namespace dtdbd::eval {

struct TsneOptions {
  double perplexity = 20.0;
  int iterations = 350;
  double learning_rate = 100.0;
  double momentum_initial = 0.5;
  double momentum_final = 0.8;
  int momentum_switch_iter = 120;
  double early_exaggeration = 4.0;
  int exaggeration_until = 80;
  uint64_t seed = 42;
};

// features: row-major [n, dim]. Returns row-major [n, 2] embedding.
std::vector<double> RunTsne(const std::vector<float>& features, int n,
                            int dim, const TsneOptions& options);

// Quantifies how mixed the domains are in an embedding: the mean fraction
// of each point's k nearest neighbors that belong to a *different* domain.
// Higher = domains more blended (what DTDBD's Fig. 2 panel shows); a model
// with hard domain clusters scores low.
double DomainMixingScore(const std::vector<double>& embedding, int n,
                         const std::vector<int>& domains, int k = 10);

}  // namespace dtdbd::eval

#endif  // DTDBD_EVAL_TSNE_H_
