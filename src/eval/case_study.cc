#include "eval/case_study.h"

#include "common/check.h"
#include "dtdbd/trainer.h"

namespace dtdbd::eval {

data::NewsDataset SelectCases(const data::NewsDataset& source, int domain,
                              int label, int count) {
  DTDBD_CHECK_GT(count, 0);
  data::NewsDataset cases;
  cases.vocab = source.vocab;
  cases.domain_names = source.domain_names;
  cases.seq_len = source.seq_len;
  for (const auto& s : source.samples) {
    if (s.domain == domain && s.label == label) {
      cases.samples.push_back(s);
      if (static_cast<int>(cases.samples.size()) == count) break;
    }
  }
  DTDBD_CHECK(!cases.samples.empty())
      << "no samples with domain=" << domain << " label=" << label;
  return cases;
}

std::vector<CasePrediction> CompareOnCases(
    const std::vector<models::FakeNewsModel*>& models_to_compare,
    const data::NewsDataset& cases) {
  std::vector<CasePrediction> results;
  for (models::FakeNewsModel* model : models_to_compare) {
    DTDBD_CHECK(model != nullptr);
    const std::vector<float> probs =
        PredictFakeProbability(model, cases);
    CasePrediction cp;
    cp.model = model->name();
    int correct = 0;
    double sum = 0.0;
    for (size_t i = 0; i < probs.size(); ++i) {
      sum += probs[i];
      const int pred = probs[i] >= 0.5f ? data::kFake : data::kReal;
      if (pred == cases.samples[i].label) ++correct;
    }
    cp.mean_fake_probability = sum / static_cast<double>(probs.size());
    cp.accuracy = static_cast<double>(correct) /
                  static_cast<double>(probs.size());
    results.push_back(cp);
  }
  return results;
}

}  // namespace dtdbd::eval
