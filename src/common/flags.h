// Tiny command-line flag parser shared by the bench/example binaries.
// Supports --name=value, --name value, and boolean --name / --no-name.
#ifndef DTDBD_COMMON_FLAGS_H_
#define DTDBD_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dtdbd {

class FlagParser {
 public:
  // Parses argv; unknown flags are kept and reported by Unknown().
  FlagParser(int argc, char** argv);

  bool GetBool(const std::string& name, bool default_value) const;
  int GetInt(const std::string& name, int default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;

  bool Has(const std::string& name) const;

  // Positional (non-flag) arguments.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

// Strict positive-integer parse shared by --threads, --serve-workers,
// --max-batch, and their environment-variable mirrors: the whole string
// must be a positive decimal integer that fits in int. Returns false for
// "", "abc", "4x", " 4", "0", "-3", and out-of-range values — callers warn
// and fall back to a safe default of 1 rather than silently accepting a
// prefix (the old std::atoi behavior).
bool ParsePositiveInt(const char* text, int* out);

// Strict non-negative 64-bit parse for byte-budget knobs (--cache-bytes /
// DTDBD_CACHE_BYTES) where 0 is a meaningful value ("feature off") rather
// than an error. Same rules as ParsePositiveInt otherwise: the whole string
// must be a plain decimal with no sign, whitespace, or trailing junk, and
// must fit in int64_t.
bool ParseNonNegativeInt64(const char* text, int64_t* out);

// Strict resolution of a positive-integer flag. Absent flag -> `absent_value`
// (so callers can chain an env fallback). Present-but-invalid flag
// (non-numeric, zero, negative, trailing junk) -> warning + `invalid_value`,
// never a silently reinterpreted prefix and never a fall-through to the env
// — a typo'd --port must not bind a random port. Shared by --serve-workers,
// --max-batch, --port, --max-conns, --idle-timeout-ms.
int ResolvePositiveIntFlag(const FlagParser& flags, const char* name,
                           int absent_value, int invalid_value);

}  // namespace dtdbd

#endif  // DTDBD_COMMON_FLAGS_H_
