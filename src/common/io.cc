#include "common/io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>

namespace dtdbd {

namespace {

// fsync the directory containing `path` so the rename that published the
// file is itself durable: POSIX only guarantees the new directory entry
// survives a power loss after the directory has been synced.
Status SyncContainingDirectory(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  std::string dir =
      slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";  // "/file" -> root
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd < 0) {
    return Status::IoError("cannot open directory for fsync: " + dir);
  }
  const bool synced = ::fsync(dfd) == 0;
  ::close(dfd);
  if (!synced) {
    return Status::IoError("directory fsync failed: " + dir);
  }
  return Status::Ok();
}

}  // namespace

Status AtomicWriteFile(const std::string& path, const std::string& contents) {
  const std::string tmp_path = path + ".tmp";
  std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open for write: " + tmp_path);
  }
  bool ok = contents.empty() ||
            std::fwrite(contents.data(), 1, contents.size(), f) ==
                contents.size();
  // Flush user-space buffers and force the bytes to disk before the rename;
  // otherwise a crash could publish an empty/partial file.
  ok = ok && std::fflush(f) == 0 && fsync(fileno(f)) == 0;
  if (std::fclose(f) != 0) ok = false;
  if (!ok) {
    std::remove(tmp_path.c_str());
    return Status::IoError("write failed: " + tmp_path);
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IoError("rename failed: " + tmp_path + " -> " + path);
  }
  return SyncContainingDirectory(path);
}

}  // namespace dtdbd
