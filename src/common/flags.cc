#include "common/flags.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <limits>

#include "common/logging.h"

namespace dtdbd {

FlagParser::FlagParser(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (arg.rfind("no-", 0) == 0) {
      // --no-foo is always the boolean "foo=false"; it never consumes the
      // following argument.
      values_[arg.substr(3)] = "false";
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool FlagParser::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second != "false" && it->second != "0";
}

int FlagParser::GetInt(const std::string& name, int default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return std::atoi(it->second.c_str());
}

double FlagParser::GetDouble(const std::string& name,
                             double default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return std::atof(it->second.c_str());
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second;
}

bool FlagParser::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

bool ParsePositiveInt(const char* text, int* out) {
  if (text == nullptr || *text == '\0') return false;
  // strtol would skip leading whitespace and accept a sign; require the
  // string to start with a digit so only plain decimals pass.
  if (!std::isdigit(static_cast<unsigned char>(*text))) return false;
  errno = 0;
  char* end = nullptr;
  const long n = std::strtol(text, &end, 10);
  if (errno == ERANGE || end == text || *end != '\0') return false;
  if (n <= 0 || n > std::numeric_limits<int>::max()) return false;
  *out = static_cast<int>(n);
  return true;
}

bool ParseNonNegativeInt64(const char* text, int64_t* out) {
  if (text == nullptr || *text == '\0') return false;
  if (!std::isdigit(static_cast<unsigned char>(*text))) return false;
  errno = 0;
  char* end = nullptr;
  const long long n = std::strtoll(text, &end, 10);
  if (errno == ERANGE || end == text || *end != '\0') return false;
  if (n < 0 || n > std::numeric_limits<int64_t>::max()) return false;
  *out = static_cast<int64_t>(n);
  return true;
}

int ResolvePositiveIntFlag(const FlagParser& flags, const char* name,
                           int absent_value, int invalid_value) {
  if (!flags.Has(name)) return absent_value;
  const std::string value = flags.GetString(name, "");
  int n = 0;
  if (ParsePositiveInt(value.c_str(), &n)) return n;
  DTDBD_LOG(Warning) << "--" << name << " '" << value
                     << "' is not a positive integer; using " << invalid_value;
  return invalid_value;
}

}  // namespace dtdbd
