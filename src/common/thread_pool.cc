#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "common/logging.h"

namespace dtdbd {

namespace {

// Marks threads that are currently executing a shard, so nested ParallelFor
// calls degrade to inline execution instead of deadlocking on the pool.
thread_local bool t_in_parallel_region = false;

// Ambient dispatch context installed by ScopedKernelPool; nullptr routes to
// the process-wide pool.
thread_local const KernelPool* t_ambient_pool = nullptr;

}  // namespace

namespace internal {

class PoolImpl {
 public:
  explicit PoolImpl(int nthreads) : nthreads_(nthreads) {
    DTDBD_CHECK_GE(nthreads, 1);
    workers_.reserve(nthreads - 1);
    for (int i = 0; i < nthreads - 1; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~PoolImpl() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  int nthreads() const { return nthreads_; }

  // Runs fn(shard) for every shard in [0, nshards); the calling thread
  // participates. Returns after all shards completed.
  //
  // All mutable dispatch state lives in a per-dispatch heap block that
  // workers pick up by shared_ptr under the pool mutex. A worker that wakes
  // late therefore drains *its own* (already exhausted) dispatch and can
  // never claim a shard — or read the callback — of a dispatch published
  // after it went to sleep. The old design kept one shard counter on the
  // pool itself, where a straggler's final claim-check raced with the next
  // dispatch's setup.
  void Run(int nshards, const std::function<void(int)>& fn) {
    auto dispatch = std::make_shared<Dispatch>();
    dispatch->fn = &fn;
    dispatch->nshards = nshards;
    dispatch->pending.store(nshards, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mu_);
      current_ = dispatch;
      ++generation_;
    }
    cv_.notify_all();
    DrainShards(dispatch.get());
    std::unique_lock<std::mutex> lock(dispatch->done_mu);
    dispatch->done_cv.wait(lock, [&dispatch] {
      return dispatch->pending.load(std::memory_order_acquire) == 0;
    });
  }

 private:
  struct Dispatch {
    const std::function<void(int)>* fn = nullptr;
    int nshards = 0;
    std::atomic<int> next_shard{0};
    std::atomic<int> pending{0};
    std::mutex done_mu;
    std::condition_variable done_cv;
  };

  static void DrainShards(Dispatch* dispatch) {
    int shard;
    while ((shard = dispatch->next_shard.fetch_add(
                1, std::memory_order_relaxed)) < dispatch->nshards) {
      (*dispatch->fn)(shard);
      if (dispatch->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(dispatch->done_mu);
        dispatch->done_cv.notify_all();
      }
    }
  }

  void WorkerLoop() {
    uint64_t seen_generation = 0;
    for (;;) {
      std::shared_ptr<Dispatch> dispatch;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this, seen_generation] {
          return shutdown_ || generation_ != seen_generation;
        });
        if (shutdown_) return;
        seen_generation = generation_;
        dispatch = current_;
      }
      DrainShards(dispatch.get());
    }
  }

  const int nthreads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_;
  uint64_t generation_ = 0;
  bool shutdown_ = false;
  std::shared_ptr<Dispatch> current_;
};

}  // namespace internal

namespace {

std::unique_ptr<internal::PoolImpl> g_pool;  // null until first use
int g_num_threads = 0;                       // 0 = not yet initialized

void EnsurePool() {
  if (g_num_threads == 0) {
    g_num_threads = DefaultNumThreads();
  }
  if (!g_pool && g_num_threads > 1) {
    g_pool = std::make_unique<internal::PoolImpl>(g_num_threads);
  }
}

int HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace

int DefaultNumThreads() {
  if (const char* env = std::getenv("DTDBD_NUM_THREADS")) {
    int n = 0;
    if (ParsePositiveInt(env, &n)) return n;
    DTDBD_LOG(Warning) << "DTDBD_NUM_THREADS='" << env
                       << "' is not a positive integer; using 1 thread";
    return 1;
  }
  return HardwareThreads();
}

int GetNumThreads() {
  if (g_num_threads == 0) g_num_threads = DefaultNumThreads();
  return g_num_threads;
}

void SetNumThreads(int n) {
  DTDBD_CHECK(!t_in_parallel_region)
      << "SetNumThreads inside a ParallelFor body";
  const int want = n <= 0 ? DefaultNumThreads() : n;
  if (want == g_num_threads && (g_pool || want == 1)) return;
  g_pool.reset();
  g_num_threads = want;
  if (want > 1) g_pool = std::make_unique<internal::PoolImpl>(want);
}

int InitThreadsFromFlags(const FlagParser& flags) {
  if (flags.Has("threads")) {
    const std::string value = flags.GetString("threads", "");
    int n = 0;
    if (ParsePositiveInt(value.c_str(), &n)) {
      SetNumThreads(n);
    } else {
      DTDBD_LOG(Warning) << "--threads '" << value
                         << "' is not a positive integer; using 1 thread";
      SetNumThreads(1);
    }
  } else {
    SetNumThreads(DefaultNumThreads());
  }
  return GetNumThreads();
}

KernelPool::KernelPool(int nthreads)
    : nthreads_(nthreads <= 0 ? GetNumThreads() : nthreads) {
  if (nthreads_ > 1) {
    impl_ = std::make_unique<internal::PoolImpl>(nthreads_);
  }
}

KernelPool::~KernelPool() = default;

ScopedKernelPool::ScopedKernelPool(const KernelPool* pool)
    : previous_(t_ambient_pool) {
  t_ambient_pool = pool;
}

ScopedKernelPool::~ScopedKernelPool() { t_ambient_pool = previous_; }

const KernelPool* CurrentKernelPool() { return t_ambient_pool; }

namespace internal {

void ParallelForImpl(int64_t n, int64_t grain, void* ctx,
                     void (*fn)(void* ctx, int64_t begin, int64_t end)) {
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  const KernelPool* ambient = t_ambient_pool;
  int threads;
  PoolImpl* pool;
  if (ambient != nullptr) {
    threads = ambient->nthreads();
    pool = ambient->impl();
  } else {
    EnsurePool();
    threads = g_num_threads;
    pool = g_pool.get();
  }
  if (threads == 1 || t_in_parallel_region || n <= grain) {
    fn(ctx, 0, n);
    return;
  }
  const int64_t max_shards = (n + grain - 1) / grain;
  const int shards =
      static_cast<int>(std::min<int64_t>(threads, max_shards));
  if (shards <= 1) {
    fn(ctx, 0, n);
    return;
  }
  pool->Run(shards, [&](int s) {
    t_in_parallel_region = true;
    const int64_t begin = n * s / shards;
    const int64_t end = n * (s + 1) / shards;
    if (begin < end) fn(ctx, begin, end);
    t_in_parallel_region = false;
  });
}

}  // namespace internal

}  // namespace dtdbd
