#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "common/logging.h"

namespace dtdbd {

namespace {

// Marks threads that are currently executing a shard, so nested ParallelFor
// calls degrade to inline execution instead of deadlocking on the pool.
thread_local bool t_in_parallel_region = false;

class Pool {
 public:
  explicit Pool(int nthreads) : nthreads_(nthreads) {
    DTDBD_CHECK_GE(nthreads, 1);
    workers_.reserve(nthreads - 1);
    for (int i = 0; i < nthreads - 1; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  int nthreads() const { return nthreads_; }

  // Runs fn(shard) for every shard in [0, nshards); the calling thread
  // participates. Returns after all shards completed.
  void Run(int nshards, const std::function<void(int)>& fn) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      fn_ = &fn;
      nshards_ = nshards;
      next_shard_.store(0, std::memory_order_relaxed);
      pending_.store(nshards, std::memory_order_relaxed);
      ++generation_;
    }
    cv_.notify_all();
    DrainShards();
    std::unique_lock<std::mutex> lock(done_mu_);
    done_cv_.wait(lock, [this] {
      return pending_.load(std::memory_order_acquire) == 0;
    });
    std::lock_guard<std::mutex> reset(mu_);
    fn_ = nullptr;
  }

 private:
  void DrainShards() {
    int shard;
    while ((shard = next_shard_.fetch_add(1, std::memory_order_relaxed)) <
           nshards_) {
      (*fn_)(shard);
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(done_mu_);
        done_cv_.notify_all();
      }
    }
  }

  void WorkerLoop() {
    uint64_t seen_generation = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this, seen_generation] {
          return shutdown_ || generation_ != seen_generation;
        });
        if (shutdown_) return;
        seen_generation = generation_;
      }
      DrainShards();
    }
  }

  const int nthreads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_;
  uint64_t generation_ = 0;
  bool shutdown_ = false;
  const std::function<void(int)>* fn_ = nullptr;
  int nshards_ = 0;
  std::atomic<int> next_shard_{0};

  std::mutex done_mu_;
  std::condition_variable done_cv_;
  std::atomic<int> pending_{0};
};

std::unique_ptr<Pool> g_pool;       // null until first use or SetNumThreads
int g_num_threads = 0;              // 0 = not yet initialized

void EnsurePool() {
  if (g_num_threads == 0) {
    g_num_threads = DefaultNumThreads();
  }
  if (!g_pool && g_num_threads > 1) {
    g_pool = std::make_unique<Pool>(g_num_threads);
  }
}

// Strict thread-count parse: the whole string must be a positive decimal
// integer that fits in int. Returns false for "", "abc", "4x", "0", "-3",
// and out-of-range values — callers warn and fall back to 1 thread rather
// than silently using hardware concurrency (the old std::atoi behavior).
bool ParseThreadCount(const char* text, int* out) {
  if (text == nullptr || *text == '\0') return false;
  // strtol would skip leading whitespace; treat that as malformed too.
  if (std::isspace(static_cast<unsigned char>(*text))) return false;
  errno = 0;
  char* end = nullptr;
  const long n = std::strtol(text, &end, 10);
  if (errno == ERANGE || end == text || *end != '\0') return false;
  if (n <= 0 || n > std::numeric_limits<int>::max()) return false;
  *out = static_cast<int>(n);
  return true;
}

int HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace

int DefaultNumThreads() {
  if (const char* env = std::getenv("DTDBD_NUM_THREADS")) {
    int n = 0;
    if (ParseThreadCount(env, &n)) return n;
    DTDBD_LOG(Warning) << "DTDBD_NUM_THREADS='" << env
                       << "' is not a positive integer; using 1 thread";
    return 1;
  }
  return HardwareThreads();
}

int GetNumThreads() {
  if (g_num_threads == 0) g_num_threads = DefaultNumThreads();
  return g_num_threads;
}

void SetNumThreads(int n) {
  DTDBD_CHECK(!t_in_parallel_region)
      << "SetNumThreads inside a ParallelFor body";
  const int want = n <= 0 ? DefaultNumThreads() : n;
  if (want == g_num_threads && (g_pool || want == 1)) return;
  g_pool.reset();
  g_num_threads = want;
  if (want > 1) g_pool = std::make_unique<Pool>(want);
}

int InitThreadsFromFlags(const FlagParser& flags) {
  if (flags.Has("threads")) {
    const std::string value = flags.GetString("threads", "");
    int n = 0;
    if (ParseThreadCount(value.c_str(), &n)) {
      SetNumThreads(n);
    } else {
      DTDBD_LOG(Warning) << "--threads '" << value
                         << "' is not a positive integer; using 1 thread";
      SetNumThreads(1);
    }
  } else {
    SetNumThreads(DefaultNumThreads());
  }
  return GetNumThreads();
}

namespace internal {

void ParallelForImpl(int64_t n, int64_t grain, void* ctx,
                     void (*fn)(void* ctx, int64_t begin, int64_t end)) {
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  EnsurePool();
  const int threads = g_num_threads;
  if (threads == 1 || t_in_parallel_region || n <= grain) {
    fn(ctx, 0, n);
    return;
  }
  const int64_t max_shards = (n + grain - 1) / grain;
  const int shards =
      static_cast<int>(std::min<int64_t>(threads, max_shards));
  if (shards <= 1) {
    fn(ctx, 0, n);
    return;
  }
  g_pool->Run(shards, [&](int s) {
    t_in_parallel_region = true;
    const int64_t begin = n * s / shards;
    const int64_t end = n * (s + 1) / shards;
    if (begin < end) fn(ctx, begin, end);
    t_in_parallel_region = false;
  });
}

}  // namespace internal

}  // namespace dtdbd
