#include "common/logging.h"

#include <cstring>
#include <mutex>

namespace dtdbd {

namespace {
LogLevel g_level = LogLevel::kInfo;

// Serializes the final write so concurrent loggers (thread-pool kernels,
// the serving worker, the watchdog) never interleave mid-line. The message
// is fully formatted in the per-call ostringstream before the lock is
// taken, so the critical section is a single buffered write.
std::mutex& SinkMutex() {
  static std::mutex mu;
  return mu;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

namespace internal_log {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= static_cast<int>(g_level)) {
  if (enabled_) {
    stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  stream_ << "\n";
  const std::string line = stream_.str();
  std::lock_guard<std::mutex> lock(SinkMutex());
  std::cerr << line;
}

}  // namespace internal_log
}  // namespace dtdbd
