// Deterministic random number generation. Every source of randomness in the
// project flows through an explicitly seeded Rng so experiments are
// bit-reproducible across runs and machines.
#ifndef DTDBD_COMMON_RNG_H_
#define DTDBD_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace dtdbd {

// xoshiro256** PRNG seeded via SplitMix64. Small, fast, good statistical
// quality; not cryptographic (not needed here).
class Rng {
 public:
  // Complete generator state; capturing and restoring it resumes the stream
  // at exactly the same point (used by training checkpoints).
  struct State {
    uint64_t s[4] = {0, 0, 0, 0};
    bool has_cached_normal = false;
    double cached_normal = 0.0;

    bool operator==(const State& other) const {
      return s[0] == other.s[0] && s[1] == other.s[1] && s[2] == other.s[2] &&
             s[3] == other.s[3] &&
             has_cached_normal == other.has_cached_normal &&
             cached_normal == other.cached_normal;
    }
  };

  explicit Rng(uint64_t seed);

  State GetState() const;
  void SetState(const State& state);

  // Uniform 64-bit value.
  uint64_t Next();

  // Uniform double in [0, 1).
  double Uniform();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Standard normal via Box-Muller (cached second draw).
  double Normal();

  // Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  // Uniform integer in [0, n). n must be > 0.
  int64_t UniformInt(int64_t n);

  // True with probability p.
  bool Bernoulli(double p);

  // Samples an index from unnormalized non-negative weights.
  int Categorical(const std::vector<double>& weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (int64_t i = static_cast<int64_t>(items->size()) - 1; i > 0; --i) {
      int64_t j = UniformInt(i + 1);
      std::swap((*items)[i], (*items)[j]);
    }
  }

  // Derives an independent child generator; used to hand each subsystem its
  // own stream without correlating draws.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace dtdbd

#endif  // DTDBD_COMMON_RNG_H_
