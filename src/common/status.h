// Lightweight Status/StatusOr for recoverable errors (file IO, parsing).
// Modeled on the RocksDB/Abseil convention: functions that can fail in normal
// operation return Status; programming errors use DTDBD_CHECK instead.
#ifndef DTDBD_COMMON_STATUS_H_
#define DTDBD_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

namespace dtdbd {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kFailedPrecondition,
  kInternal,
  // Serving-path codes (src/serve/): admission control rejected the request
  // because a bounded resource (the server queue) is full.
  kResourceExhausted,
  // The request's deadline passed before the server could execute it.
  kDeadlineExceeded,
  // The component is shutting down or otherwise not accepting work.
  kUnavailable,
};

// Value-semantic error carrier.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status IoError(std::string m) {
    return Status(StatusCode::kIoError, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Minimal StatusOr: either a Status (non-ok) or a value. The value lives in
// a std::optional so T does not have to be default-constructible.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    DTDBD_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    DTDBD_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T& value() & {
    DTDBD_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T&& value() && {
    DTDBD_CHECK(ok()) << status_.ToString();
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace dtdbd

// Propagates a non-ok Status out of the current function.
#define DTDBD_RETURN_IF_ERROR(expr)              \
  do {                                           \
    ::dtdbd::Status _dtdbd_status = (expr);      \
    if (!_dtdbd_status.ok()) return _dtdbd_status; \
  } while (0)

#define DTDBD_STATUS_CONCAT_INNER_(a, b) a##b
#define DTDBD_STATUS_CONCAT_(a, b) DTDBD_STATUS_CONCAT_INNER_(a, b)

// Evaluates `rexpr` (a StatusOr<T> expression); on error propagates the
// Status, otherwise moves the value into `lhs` (which may be a declaration,
// e.g. DTDBD_ASSIGN_OR_RETURN(auto x, Foo())).
#define DTDBD_ASSIGN_OR_RETURN(lhs, rexpr)                                 \
  auto DTDBD_STATUS_CONCAT_(_dtdbd_statusor_, __LINE__) = (rexpr);         \
  if (!DTDBD_STATUS_CONCAT_(_dtdbd_statusor_, __LINE__).ok()) {            \
    return DTDBD_STATUS_CONCAT_(_dtdbd_statusor_, __LINE__).status();      \
  }                                                                        \
  lhs = std::move(DTDBD_STATUS_CONCAT_(_dtdbd_statusor_, __LINE__)).value()

#endif  // DTDBD_COMMON_STATUS_H_
