// Lightweight Status/StatusOr for recoverable errors (file IO, parsing).
// Modeled on the RocksDB/Abseil convention: functions that can fail in normal
// operation return Status; programming errors use DTDBD_CHECK instead.
#ifndef DTDBD_COMMON_STATUS_H_
#define DTDBD_COMMON_STATUS_H_

#include <string>
#include <utility>

#include "common/check.h"

namespace dtdbd {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kFailedPrecondition,
  kInternal,
};

// Value-semantic error carrier.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status IoError(std::string m) {
    return Status(StatusCode::kIoError, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Minimal StatusOr: either a Status (non-ok) or a value.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    DTDBD_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    DTDBD_CHECK(ok()) << status_.ToString();
    return value_;
  }
  T& value() & {
    DTDBD_CHECK(ok()) << status_.ToString();
    return value_;
  }
  T&& value() && {
    DTDBD_CHECK(ok()) << status_.ToString();
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace dtdbd

#endif  // DTDBD_COMMON_STATUS_H_
