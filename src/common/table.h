// Fixed-width text table printer used by the bench harnesses to emit the
// paper's tables in a readable aligned form.
#ifndef DTDBD_COMMON_TABLE_H_
#define DTDBD_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace dtdbd {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  // Adds a row; cells beyond the header width are dropped, missing cells are
  // blank.
  void AddRow(std::vector<std::string> row);

  // Convenience: formats doubles with the given precision.
  static std::string Fmt(double value, int precision = 4);

  // Renders the table with a separator line under the header.
  std::string ToString() const;

  // Prints to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dtdbd

#endif  // DTDBD_COMMON_TABLE_H_
