// Invariant-checking macros. The project does not use exceptions (Google
// style); unrecoverable programming errors abort with a readable message.
#ifndef DTDBD_COMMON_CHECK_H_
#define DTDBD_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace dtdbd::internal_check {

// Formats and prints the failure, then aborts. Kept out-of-line so the macro
// expansion stays small at every call site.
[[noreturn]] void CheckFailure(const char* file, int line, const char* expr,
                               const std::string& message);

// Stream sink used by the DTDBD_CHECK macros to collect an optional message.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  CheckMessageBuilder(const CheckMessageBuilder&) = delete;
  CheckMessageBuilder& operator=(const CheckMessageBuilder&) = delete;

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  [[noreturn]] ~CheckMessageBuilder() {
    CheckFailure(file_, line_, expr_, stream_.str());
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace dtdbd::internal_check

// DTDBD_CHECK(cond) << "extra context";  -- aborts when cond is false.
#define DTDBD_CHECK(cond)                                              \
  while (!(cond))                                                      \
  ::dtdbd::internal_check::CheckMessageBuilder(__FILE__, __LINE__, #cond)

#define DTDBD_CHECK_EQ(a, b) DTDBD_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define DTDBD_CHECK_NE(a, b) DTDBD_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define DTDBD_CHECK_LT(a, b) DTDBD_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define DTDBD_CHECK_LE(a, b) DTDBD_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define DTDBD_CHECK_GT(a, b) DTDBD_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define DTDBD_CHECK_GE(a, b) DTDBD_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // DTDBD_COMMON_CHECK_H_
