#include "common/rng.h"

#include <cmath>

namespace dtdbd {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

Rng::State Rng::GetState() const {
  State state;
  for (int i = 0; i < 4; ++i) state.s[i] = state_[i];
  state.has_cached_normal = has_cached_normal_;
  state.cached_normal = cached_normal_;
  return state;
}

void Rng::SetState(const State& state) {
  for (int i = 0; i < 4; ++i) state_[i] = state.s[i];
  has_cached_normal_ = state.has_cached_normal;
  cached_normal_ = state.cached_normal;
}

uint64_t Rng::Next() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  DTDBD_CHECK_LE(lo, hi);
  return lo + (hi - lo) * Uniform();
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  while (u1 <= 1e-300) u1 = Uniform();
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

int64_t Rng::UniformInt(int64_t n) {
  DTDBD_CHECK_GT(n, 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t un = static_cast<uint64_t>(n);
  const uint64_t limit = UINT64_MAX - UINT64_MAX % un;
  uint64_t v = Next();
  while (v >= limit) v = Next();
  return static_cast<int64_t>(v % un);
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

int Rng::Categorical(const std::vector<double>& weights) {
  DTDBD_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    DTDBD_CHECK_GE(w, 0.0);
    total += w;
  }
  DTDBD_CHECK_GT(total, 0.0) << "all categorical weights are zero";
  double r = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace dtdbd
