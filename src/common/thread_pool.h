// Worker pools and the deterministic parallel-for used by the tensor
// kernels.
//
// Determinism contract: ParallelFor splits [0, n) into contiguous shards
// with fixed arithmetic boundaries and hands each shard to one worker.
// Kernels built on it must (a) write only to locations derived from the
// indices they were given (disjoint across shards) and (b) compute each
// output element with an operation order that does not depend on where the
// shard boundaries fall. Under those two rules the result is bitwise
// identical for every thread count, including 1 — which is what the
// backend-consistency test asserts for every registered tensor op.
//
// Dispatch contexts: by default every ParallelFor dispatches into one
// process-wide pool sized by SetNumThreads, which admits a single
// dispatcher at a time. A thread that needs to run kernels concurrently
// with other dispatchers (a serving worker) owns a private KernelPool and
// installs it with ScopedKernelPool; ParallelFor on that thread then
// dispatches into the private pool instead. Shard boundaries are a pure
// function of (n, grain, nthreads) — never of which pool executes them —
// so routing through a private pool cannot change any result.
#ifndef DTDBD_COMMON_THREAD_POOL_H_
#define DTDBD_COMMON_THREAD_POOL_H_

#include <cstdint>
#include <memory>
#include <type_traits>

namespace dtdbd {

class FlagParser;

namespace internal {
class PoolImpl;
}  // namespace internal

// Number of worker threads the kernels currently use (>= 1). Lazily
// initialized from DTDBD_NUM_THREADS or std::thread::hardware_concurrency.
int GetNumThreads();

// Sets the process-wide thread count. n <= 0 restores the default
// (environment / hardware). n == 1 runs every kernel inline on the calling
// thread, which is byte-for-byte the single-threaded engine. Must be called
// from the main thread, outside any ParallelFor region.
void SetNumThreads(int n);

// Default thread count: DTDBD_NUM_THREADS if set and a strictly positive
// integer, else hardware concurrency (at least 1). A set-but-invalid value
// (non-numeric, zero, or negative) logs a warning and yields 1 thread
// rather than silently falling back to hardware concurrency.
int DefaultNumThreads();

// Reads --threads=N (falling back to DTDBD_NUM_THREADS, then hardware) and
// applies it via SetNumThreads. A present-but-invalid --threads value logs
// a warning and pins the pool to 1 thread. Every bench/example main calls
// this so perf runs are reproducible from the command line.
int InitThreadsFromFlags(const FlagParser& flags);

// A private kernel-dispatch pool owned by one dispatcher thread. Created
// with `nthreads` workers (<= 0 means the current GetNumThreads()); with
// nthreads == 1 every dispatch runs inline on the owning thread. Distinct
// KernelPools are fully independent: N threads each holding their own pool
// can run kernels concurrently without sharing any dispatch state. The
// pool itself still admits one dispatcher at a time — it is the per-thread
// ambient handle (ScopedKernelPool) that makes multi-dispatch safe.
class KernelPool {
 public:
  explicit KernelPool(int nthreads = 0);
  ~KernelPool();
  KernelPool(const KernelPool&) = delete;
  KernelPool& operator=(const KernelPool&) = delete;

  int nthreads() const { return nthreads_; }
  // Null when nthreads == 1 (inline execution needs no workers).
  internal::PoolImpl* impl() const { return impl_.get(); }

 private:
  int nthreads_;
  std::unique_ptr<internal::PoolImpl> impl_;
};

// Installs `pool` as the calling thread's ambient dispatch context for the
// scope's lifetime; ParallelFor on this thread routes into it instead of
// the process-wide pool. Nestable (restores the previous context), and a
// nullptr pool restores default routing. The pool must outlive the scope
// and must not be shared by two simultaneously-live scopes on different
// threads.
class ScopedKernelPool {
 public:
  explicit ScopedKernelPool(const KernelPool* pool);
  ~ScopedKernelPool();
  ScopedKernelPool(const ScopedKernelPool&) = delete;
  ScopedKernelPool& operator=(const ScopedKernelPool&) = delete;

 private:
  const KernelPool* previous_;
};

// The calling thread's ambient pool, or nullptr when dispatching to the
// process-wide pool (exposed for tests).
const KernelPool* CurrentKernelPool();

namespace internal {
// Type-erased core; `fn(ctx, begin, end)` is invoked once per shard.
void ParallelForImpl(int64_t n, int64_t grain, void* ctx,
                     void (*fn)(void* ctx, int64_t begin, int64_t end));
}  // namespace internal

// Runs body(begin, end) over a static partition of [0, n). `grain` is the
// minimum work per shard; ranges smaller than one grain run inline. Nested
// calls (body itself calling ParallelFor) run inline rather than deadlock.
// Header template so the hot path never allocates a std::function.
template <typename Body>
void ParallelFor(int64_t n, int64_t grain, Body&& body) {
  using BodyT = std::remove_reference_t<Body>;
  internal::ParallelForImpl(
      n, grain, const_cast<BodyT*>(std::addressof(body)),
      [](void* ctx, int64_t begin, int64_t end) {
        (*static_cast<BodyT*>(ctx))(begin, end);
      });
}

}  // namespace dtdbd

#endif  // DTDBD_COMMON_THREAD_POOL_H_
