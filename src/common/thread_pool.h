// Process-wide worker pool and deterministic parallel-for used by the
// tensor kernels.
//
// Determinism contract: ParallelFor splits [0, n) into contiguous shards
// with fixed arithmetic boundaries and hands each shard to one worker.
// Kernels built on it must (a) write only to locations derived from the
// indices they were given (disjoint across shards) and (b) compute each
// output element with an operation order that does not depend on where the
// shard boundaries fall. Under those two rules the result is bitwise
// identical for every thread count, including 1 — which is what the
// backend-consistency test asserts for every registered tensor op.
#ifndef DTDBD_COMMON_THREAD_POOL_H_
#define DTDBD_COMMON_THREAD_POOL_H_

#include <cstdint>
#include <memory>
#include <type_traits>

namespace dtdbd {

class FlagParser;

// Number of worker threads the kernels currently use (>= 1). Lazily
// initialized from DTDBD_NUM_THREADS or std::thread::hardware_concurrency.
int GetNumThreads();

// Sets the process-wide thread count. n <= 0 restores the default
// (environment / hardware). n == 1 runs every kernel inline on the calling
// thread, which is byte-for-byte the single-threaded engine. Must be called
// from the main thread, outside any ParallelFor region.
void SetNumThreads(int n);

// Default thread count: DTDBD_NUM_THREADS if set and a strictly positive
// integer, else hardware concurrency (at least 1). A set-but-invalid value
// (non-numeric, zero, or negative) logs a warning and yields 1 thread
// rather than silently falling back to hardware concurrency.
int DefaultNumThreads();

// Reads --threads=N (falling back to DTDBD_NUM_THREADS, then hardware) and
// applies it via SetNumThreads. A present-but-invalid --threads value logs
// a warning and pins the pool to 1 thread. Every bench/example main calls
// this so perf runs are reproducible from the command line.
int InitThreadsFromFlags(const FlagParser& flags);

namespace internal {
// Type-erased core; `fn(ctx, begin, end)` is invoked once per shard.
void ParallelForImpl(int64_t n, int64_t grain, void* ctx,
                     void (*fn)(void* ctx, int64_t begin, int64_t end));
}  // namespace internal

// Runs body(begin, end) over a static partition of [0, n). `grain` is the
// minimum work per shard; ranges smaller than one grain run inline. Nested
// calls (body itself calling ParallelFor) run inline rather than deadlock.
// Header template so the hot path never allocates a std::function.
template <typename Body>
void ParallelFor(int64_t n, int64_t grain, Body&& body) {
  using BodyT = std::remove_reference_t<Body>;
  internal::ParallelForImpl(
      n, grain, const_cast<BodyT*>(std::addressof(body)),
      [](void* ctx, int64_t begin, int64_t end) {
        (*static_cast<BodyT*>(ctx))(begin, end);
      });
}

}  // namespace dtdbd

#endif  // DTDBD_COMMON_THREAD_POOL_H_
