#include "common/status.h"

namespace dtdbd {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  return std::string(CodeName(code_)) + ": " + message_;
}

}  // namespace dtdbd
