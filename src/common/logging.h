// Minimal leveled logging to stderr. Verbosity is a process-wide setting so
// the bench harnesses can silence training chatter.
#ifndef DTDBD_COMMON_LOGGING_H_
#define DTDBD_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace dtdbd {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Sets the minimum level that is emitted (default kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_log {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal_log
}  // namespace dtdbd

#define DTDBD_LOG(level)                                        \
  ::dtdbd::internal_log::LogMessage(::dtdbd::LogLevel::k##level, \
                                    __FILE__, __LINE__)

#endif  // DTDBD_COMMON_LOGGING_H_
