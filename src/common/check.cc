#include "common/check.h"

namespace dtdbd::internal_check {

void CheckFailure(const char* file, int line, const char* expr,
                  const std::string& message) {
  std::fprintf(stderr, "[DTDBD CHECK FAILED] %s:%d: %s %s\n", file, line, expr,
               message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace dtdbd::internal_check
