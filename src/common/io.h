// Crash-safe file IO helpers shared by the checkpoint writer and the bench
// artifact emitters.
#ifndef DTDBD_COMMON_IO_H_
#define DTDBD_COMMON_IO_H_

#include <string>

#include "common/status.h"

namespace dtdbd {

// Atomically replaces `path` with `contents`: the bytes are written to
// `<path>.tmp`, flushed and fsync'd, then renamed over `path`, and finally
// the containing directory is fsync'd so the rename itself survives a power
// loss (without the directory sync the new entry may vanish on crash even
// though the data blocks were synced). A reader never observes a partially
// written file even if the process dies mid-save; on any failure the temp
// file is removed and `path` is left untouched.
Status AtomicWriteFile(const std::string& path, const std::string& contents);

}  // namespace dtdbd

#endif  // DTDBD_COMMON_IO_H_
