// MDFEND (Nan et al. 2021): multiple TextCNN experts over frozen-encoder
// features aggregated by a learnable domain gate conditioned on a trainable
// domain embedding plus the pooled text representation.
#ifndef DTDBD_MODELS_MDFEND_H_
#define DTDBD_MODELS_MDFEND_H_

#include <memory>
#include <string>
#include <vector>

#include "models/model.h"
#include "nn/conv.h"
#include "nn/embedding.h"
#include "nn/linear.h"

namespace dtdbd::models {

class MdfendModel : public FakeNewsModel {
 public:
  explicit MdfendModel(const ModelConfig& config);

  ModelOutput Forward(const data::Batch& batch, bool training) override;
  const std::string& name() const override { return name_; }
  int64_t feature_dim() const override;
  void CollectRngs(std::vector<Rng*>* rngs) override {
    rngs->push_back(&rng_);
  }

 private:
  std::string name_ = "MDFEND";
  ModelConfig config_;
  Rng rng_;
  int64_t domain_embed_dim_ = 16;
  std::vector<std::unique_ptr<nn::Conv1dBank>> experts_;
  std::unique_ptr<nn::Embedding> domain_embedding_;
  std::unique_ptr<nn::Mlp> gate_;
  std::unique_ptr<nn::Mlp> classifier_;
};

}  // namespace dtdbd::models

#endif  // DTDBD_MODELS_MDFEND_H_
