// Mixture-of-experts baselines:
//  * MMoE (Ma et al. 2018): MLP experts over pooled frozen-encoder features
//    combined by a learned softmax gate.
//  * MoSE: same gating with sequential (LSTM) experts.
#ifndef DTDBD_MODELS_MOE_H_
#define DTDBD_MODELS_MOE_H_

#include <memory>
#include <string>
#include <vector>

#include "models/model.h"
#include "nn/linear.h"
#include "nn/rnn.h"

namespace dtdbd::models {

class MmoeModel : public FakeNewsModel {
 public:
  explicit MmoeModel(const ModelConfig& config);

  ModelOutput Forward(const data::Batch& batch, bool training) override;
  const std::string& name() const override { return name_; }
  int64_t feature_dim() const override { return config_.hidden_dim; }
  void CollectRngs(std::vector<Rng*>* rngs) override {
    rngs->push_back(&rng_);
  }

 private:
  std::string name_ = "MMoE";
  ModelConfig config_;
  Rng rng_;
  std::vector<std::unique_ptr<nn::Mlp>> experts_;
  std::unique_ptr<nn::Linear> gate_;
  std::unique_ptr<nn::Mlp> classifier_;
};

class MoseModel : public FakeNewsModel {
 public:
  explicit MoseModel(const ModelConfig& config);

  ModelOutput Forward(const data::Batch& batch, bool training) override;
  const std::string& name() const override { return name_; }
  int64_t feature_dim() const override;
  void CollectRngs(std::vector<Rng*>* rngs) override {
    rngs->push_back(&rng_);
  }

 private:
  std::string name_ = "MoSE";
  ModelConfig config_;
  Rng rng_;
  std::vector<std::unique_ptr<nn::LstmCell>> experts_;
  std::unique_ptr<nn::Linear> gate_;
  std::unique_ptr<nn::Mlp> classifier_;
};

}  // namespace dtdbd::models

#endif  // DTDBD_MODELS_MOE_H_
