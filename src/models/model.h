// Shared interface for every fake-news detection model in the zoo.
//
// All baselines from the paper's Tables VI/VII plus the two student
// architectures implement FakeNewsModel, so trainers, metrics, the
// distillation losses, and the t-SNE tooling are model-agnostic. The
// `features` tensor is the intermediate representation fed to the
// classifier head — the layer DTDBD's adversarial de-biasing distillation
// (Eq. 5) and Figure 2's visualization operate on.
#ifndef DTDBD_MODELS_MODEL_H_
#define DTDBD_MODELS_MODEL_H_

#include <memory>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "data/dataset.h"
#include "nn/module.h"
#include "tensor/tensor.h"
#include "text/frozen_encoder.h"

namespace dtdbd::models {

struct ModelOutput {
  tensor::Tensor features;       // [B, feature_dim]
  tensor::Tensor logits;         // [B, 2]
  tensor::Tensor domain_logits;  // [B, D] if the model has a domain head
};

// Construction-time configuration shared by all models. Dimensions default
// to the scaled-down quick profile; `--full` experiment profiles raise them.
struct ModelConfig {
  int vocab_size = 0;
  int num_domains = 0;
  int64_t embed_dim = 32;       // trainable word-embedding models
  int64_t hidden_dim = 64;      // classifier MLP hidden width
  int64_t conv_channels = 32;   // TextCNN channel count per kernel
  int64_t rnn_hidden = 32;      // BiGRU/BiLSTM hidden size
  int64_t num_experts = 4;      // MMoE/MoSE/MDFEND experts
  double dropout = 0.2;
  float adversarial_lambda = 1.0f;  // gradient-reversal strength
  // Frozen upstream encoder (the paper's frozen BERT); required by the
  // BERT/RoBERTa baselines, the multi-domain models, and both students.
  const text::FrozenEncoder* encoder = nullptr;
  uint64_t seed = 7;
};

class FakeNewsModel : public nn::Module {
 public:
  ~FakeNewsModel() override = default;

  // Runs the model on a batch. `training` enables dropout and any
  // training-time state updates (e.g. M3FEND's domain memory).
  virtual ModelOutput Forward(const data::Batch& batch, bool training) = 0;

  virtual const std::string& name() const = 0;
  virtual int64_t feature_dim() const = 0;

  // Appends the RNG streams driving training-time stochasticity (dropout),
  // outermost model first. Checkpoint/resume captures and restores them so
  // a resumed run replays the exact same dropout masks; a model that adds a
  // new randomness source must register it here or lose bitwise resume.
  virtual void CollectRngs(std::vector<Rng*>* rngs) { (void)rngs; }
};

// Factory over the full zoo. Recognized names:
//   BiGRU, TextCNN, BERT, RoBERTa, StyleLSTM, DualEmo, MMoE, MoSE,
//   EANN, EANN_NoDAT, EDDFN, EDDFN_NoDAT, MDFEND, M3FEND,
//   TextCNN-S, BiGRU-S.
// DTDBD_CHECK-fails on an unknown name.
std::unique_ptr<FakeNewsModel> CreateModel(const std::string& name,
                                           const ModelConfig& config);

// Recoverable variant for callers fed by configuration rather than code
// (the serving layer resolves model names from deployment config): an
// unknown name yields kInvalidArgument instead of a crash.
StatusOr<std::unique_ptr<FakeNewsModel>> CreateModelOr(
    const std::string& name, const ModelConfig& config);

// All names CreateModel accepts, in the paper's table order.
std::vector<std::string> AllModelNames();

}  // namespace dtdbd::models

#endif  // DTDBD_MODELS_MODEL_H_
