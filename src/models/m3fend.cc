#include "models/m3fend.h"

#include <cmath>

#include "tensor/ops.h"
#include "text/features.h"

namespace dtdbd::models {

using tensor::Tensor;

M3fendModel::M3fendModel(const ModelConfig& config)
    : config_(config), rng_(config.seed), view_dim_(config.hidden_dim) {
  DTDBD_CHECK(config_.encoder != nullptr)
      << "M3FEND requires a frozen encoder";
  DTDBD_CHECK_GT(config_.num_domains, 0);
  semantic_view_ = std::make_unique<nn::Conv1dBank>(
      config_.encoder->dim(), config_.conv_channels,
      std::vector<int64_t>{1, 2, 3, 5}, &rng_);
  RegisterChild("semantic_view", semantic_view_.get());
  semantic_proj_ = std::make_unique<nn::Linear>(semantic_view_->output_dim(),
                                                view_dim_, &rng_);
  RegisterChild("semantic_proj", semantic_proj_.get());
  emotion_view_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{text::kEmotionFeatureDim, config_.hidden_dim,
                           view_dim_},
      config_.dropout, &rng_);
  RegisterChild("emotion_view", emotion_view_.get());
  style_view_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{text::kStyleFeatureDim, config_.hidden_dim,
                           view_dim_},
      config_.dropout, &rng_);
  RegisterChild("style_view", style_view_.get());
  adapter_gate_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{view_dim_ + config_.num_domains,
                           config_.hidden_dim, 3},
      config_.dropout, &rng_);
  RegisterChild("adapter_gate", adapter_gate_.get());
  classifier_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{view_dim_, config_.hidden_dim, 2},
      config_.dropout, &rng_);
  RegisterChild("classifier", classifier_.get());

  memory_.assign(config_.num_domains,
                 std::vector<float>(view_dim_, 0.0f));
  memory_initialized_.assign(config_.num_domains, false);
}

Tensor M3fendModel::DomainDistribution(const Tensor& semantic,
                                       const data::Batch& batch,
                                       bool training) {
  const int64_t b = batch.batch_size;
  const int d = config_.num_domains;

  // EMA-update the memory with this batch's (detached) semantic vectors.
  if (training) {
    std::vector<std::vector<float>> sums(
        d, std::vector<float>(view_dim_, 0.0f));
    std::vector<int> counts(d, 0);
    for (int64_t i = 0; i < b; ++i) {
      const int dom = batch.domains[i];
      for (int64_t j = 0; j < view_dim_; ++j) {
        sums[dom][j] += semantic.data()[i * view_dim_ + j];
      }
      ++counts[dom];
    }
    for (int dom = 0; dom < d; ++dom) {
      if (counts[dom] == 0) continue;
      for (int64_t j = 0; j < view_dim_; ++j) {
        const float mean = sums[dom][j] / static_cast<float>(counts[dom]);
        if (!memory_initialized_[dom]) {
          memory_[dom][j] = mean;
        } else {
          memory_[dom][j] = static_cast<float>(
              memory_decay_ * memory_[dom][j] + (1.0 - memory_decay_) * mean);
        }
      }
      memory_initialized_[dom] = true;
    }
  }

  // Soft domain labels: softmax over negative squared distances to the
  // prototypes. Uninitialized prototypes get a strongly negative score.
  std::vector<float> dist(b * d);
  for (int64_t i = 0; i < b; ++i) {
    float mx = -1e30f;
    for (int dom = 0; dom < d; ++dom) {
      float score;
      if (!memory_initialized_[dom]) {
        score = -1e4f;
      } else {
        float acc = 0.0f;
        for (int64_t j = 0; j < view_dim_; ++j) {
          const float delta =
              semantic.data()[i * view_dim_ + j] - memory_[dom][j];
          acc += delta * delta;
        }
        score = -acc / static_cast<float>(view_dim_);
      }
      dist[i * d + dom] = score;
      mx = std::max(mx, score);
    }
    float sum = 0.0f;
    for (int dom = 0; dom < d; ++dom) {
      dist[i * d + dom] = std::exp(dist[i * d + dom] - mx);
      sum += dist[i * d + dom];
    }
    for (int dom = 0; dom < d; ++dom) dist[i * d + dom] /= sum;
  }
  last_domain_distribution_ = dist;
  return Tensor::FromData({b, d}, std::move(dist));
}

ModelOutput M3fendModel::Forward(const data::Batch& batch, bool training) {
  Tensor encoded = config_.encoder->Encode(batch.tokens, batch.batch_size,
                                           batch.seq_len);
  Tensor semantic =
      semantic_proj_->ForwardRelu(semantic_view_->Forward(encoded));
  Tensor emotion = emotion_view_->Forward(batch.emotion, training, &rng_,
                                          /*output_relu=*/true);
  Tensor style = style_view_->Forward(batch.style, training, &rng_,
                                      /*output_relu=*/true);

  // Fuzzy domain labels from the memory bank (constant wrt autograd).
  Tensor domain_dist =
      DomainDistribution(semantic.Detach(), batch, training);

  // Domain adapter: gate the three views conditioned on the semantic
  // vector and the soft domain distribution.
  Tensor gate_in = tensor::ConcatLastDim({semantic, domain_dist});
  Tensor gate_weights =
      tensor::Softmax(adapter_gate_->Forward(gate_in, training, &rng_));
  Tensor views = tensor::StackTime({semantic, emotion, style});
  ModelOutput out;
  out.features = tensor::WeightedSumOverTime(views, gate_weights);
  Tensor h = tensor::Dropout(out.features, config_.dropout, &rng_, training);
  out.logits = classifier_->Forward(h, training, &rng_);
  return out;
}

}  // namespace dtdbd::models
