#include "models/moe.h"

#include "tensor/ops.h"

namespace dtdbd::models {

using tensor::Tensor;

MmoeModel::MmoeModel(const ModelConfig& config)
    : config_(config), rng_(config.seed) {
  DTDBD_CHECK(config_.encoder != nullptr) << "MMoE requires a frozen encoder";
  const int64_t e = config_.encoder->dim();
  for (int64_t k = 0; k < config_.num_experts; ++k) {
    experts_.push_back(std::make_unique<nn::Mlp>(
        std::vector<int64_t>{e, config_.hidden_dim, config_.hidden_dim},
        config_.dropout, &rng_));
    RegisterChild("expert" + std::to_string(k), experts_.back().get());
  }
  gate_ = std::make_unique<nn::Linear>(e, config_.num_experts, &rng_);
  RegisterChild("gate", gate_.get());
  classifier_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{config_.hidden_dim, config_.hidden_dim, 2},
      config_.dropout, &rng_);
  RegisterChild("classifier", classifier_.get());
}

ModelOutput MmoeModel::Forward(const data::Batch& batch, bool training) {
  Tensor encoded = config_.encoder->Encode(batch.tokens, batch.batch_size,
                                           batch.seq_len);
  Tensor pooled = tensor::MeanOverTime(encoded);
  std::vector<Tensor> expert_outs;
  for (const auto& expert : experts_) {
    expert_outs.push_back(
        expert->Forward(pooled, training, &rng_, /*output_relu=*/true));
  }
  Tensor gate_weights = tensor::Softmax(gate_->Forward(pooled));
  ModelOutput out;
  out.features = tensor::WeightedSumOverTime(tensor::StackTime(expert_outs),
                                             gate_weights);
  Tensor h = tensor::Dropout(out.features, config_.dropout, &rng_, training);
  out.logits = classifier_->Forward(h, training, &rng_);
  return out;
}

MoseModel::MoseModel(const ModelConfig& config)
    : config_(config), rng_(config.seed) {
  DTDBD_CHECK(config_.encoder != nullptr) << "MoSE requires a frozen encoder";
  const int64_t e = config_.encoder->dim();
  for (int64_t k = 0; k < config_.num_experts; ++k) {
    experts_.push_back(std::make_unique<nn::LstmCell>(e, config_.rnn_hidden,
                                                      &rng_));
    RegisterChild("expert" + std::to_string(k), experts_.back().get());
  }
  gate_ = std::make_unique<nn::Linear>(e, config_.num_experts, &rng_);
  RegisterChild("gate", gate_.get());
  classifier_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{feature_dim(), config_.hidden_dim, 2},
      config_.dropout, &rng_);
  RegisterChild("classifier", classifier_.get());
}

int64_t MoseModel::feature_dim() const { return config_.rnn_hidden; }

ModelOutput MoseModel::Forward(const data::Batch& batch, bool training) {
  Tensor encoded = config_.encoder->Encode(batch.tokens, batch.batch_size,
                                           batch.seq_len);
  Tensor pooled = tensor::MeanOverTime(encoded);
  std::vector<Tensor> expert_outs;
  for (const auto& expert : experts_) {
    // Run the LSTM expert over the sequence; use the final hidden state.
    nn::LstmCell::State state{
        Tensor::Zeros({batch.batch_size, config_.rnn_hidden}),
        Tensor::Zeros({batch.batch_size, config_.rnn_hidden})};
    for (int64_t t = 0; t < batch.seq_len; ++t) {
      state = expert->Step(tensor::SliceTime(encoded, t), state);
    }
    expert_outs.push_back(state.h);
  }
  Tensor gate_weights = tensor::Softmax(gate_->Forward(pooled));
  ModelOutput out;
  out.features = tensor::WeightedSumOverTime(tensor::StackTime(expert_outs),
                                             gate_weights);
  Tensor h = tensor::Dropout(out.features, config_.dropout, &rng_, training);
  out.logits = classifier_->Forward(h, training, &rng_);
  return out;
}

}  // namespace dtdbd::models
