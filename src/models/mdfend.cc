#include "models/mdfend.h"

#include "tensor/ops.h"

namespace dtdbd::models {

using tensor::Tensor;

MdfendModel::MdfendModel(const ModelConfig& config)
    : config_(config), rng_(config.seed) {
  DTDBD_CHECK(config_.encoder != nullptr)
      << "MDFEND requires a frozen encoder";
  DTDBD_CHECK_GT(config_.num_domains, 0);
  const int64_t e = config_.encoder->dim();
  // Experts use half the channel budget of the standalone TextCNN: the
  // ensemble width is what matters (paper: TextCNN expert networks).
  const int64_t expert_channels = std::max<int64_t>(8, config_.conv_channels / 2);
  for (int64_t k = 0; k < config_.num_experts; ++k) {
    experts_.push_back(std::make_unique<nn::Conv1dBank>(
        e, expert_channels, std::vector<int64_t>{1, 2, 3, 5}, &rng_));
    RegisterChild("expert" + std::to_string(k), experts_.back().get());
  }
  domain_embedding_ = std::make_unique<nn::Embedding>(
      config_.num_domains, domain_embed_dim_, &rng_);
  RegisterChild("domain_embedding", domain_embedding_.get());
  gate_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{domain_embed_dim_ + e, config_.hidden_dim,
                           config_.num_experts},
      config_.dropout, &rng_);
  RegisterChild("gate", gate_.get());
  classifier_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{feature_dim(), config_.hidden_dim, 2},
      config_.dropout, &rng_);
  RegisterChild("classifier", classifier_.get());
}

int64_t MdfendModel::feature_dim() const { return experts_[0]->output_dim(); }

ModelOutput MdfendModel::Forward(const data::Batch& batch, bool training) {
  Tensor encoded = config_.encoder->Encode(batch.tokens, batch.batch_size,
                                           batch.seq_len);
  std::vector<Tensor> expert_outs;
  for (const auto& expert : experts_) {
    expert_outs.push_back(expert->Forward(encoded));
  }
  // Domain gate: trainable domain embedding + pooled text features.
  Tensor dom_embed = tensor::Reshape(
      domain_embedding_->Forward(batch.domains, batch.batch_size, 1),
      {batch.batch_size, domain_embed_dim_});
  Tensor pooled = tensor::MeanOverTime(encoded);
  Tensor gate_in = tensor::ConcatLastDim({dom_embed, pooled});
  Tensor gate_weights =
      tensor::Softmax(gate_->Forward(gate_in, training, &rng_));
  ModelOutput out;
  out.features = tensor::WeightedSumOverTime(tensor::StackTime(expert_outs),
                                             gate_weights);
  Tensor h = tensor::Dropout(out.features, config_.dropout, &rng_, training);
  out.logits = classifier_->Forward(h, training, &rng_);
  return out;
}

}  // namespace dtdbd::models
