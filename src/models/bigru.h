// BiGRU classifier (Ma et al. 2016 baseline). Covers:
//  * "BiGRU"   — trainable word embeddings + one-layer BiGRU;
//  * "BiGRU-S" — the DTDBD ablation student: frozen encoder + BiGRU.
#ifndef DTDBD_MODELS_BIGRU_H_
#define DTDBD_MODELS_BIGRU_H_

#include <memory>
#include <string>

#include "models/model.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/rnn.h"

namespace dtdbd::models {

class BiGruModel : public FakeNewsModel {
 public:
  BiGruModel(std::string name, const ModelConfig& config,
             bool use_frozen_encoder);

  ModelOutput Forward(const data::Batch& batch, bool training) override;
  const std::string& name() const override { return name_; }
  int64_t feature_dim() const override { return rnn_->output_dim(); }
  void CollectRngs(std::vector<Rng*>* rngs) override {
    rngs->push_back(&rng_);
  }

 private:
  std::string name_;
  ModelConfig config_;
  bool use_frozen_encoder_;
  Rng rng_;
  std::unique_ptr<nn::Embedding> embedding_;
  std::unique_ptr<nn::BiGru> rnn_;
  std::unique_ptr<nn::Mlp> classifier_;
};

}  // namespace dtdbd::models

#endif  // DTDBD_MODELS_BIGRU_H_
