// EDDFN (Silva et al. 2021): preserves domain-specific and cross-domain
// knowledge via a shared representation (adversarially domain-scrubbed)
// plus per-domain representation heads routed by the sample's domain
// label. "EDDFN_NoDAT" drops the adversarial discriminator.
#ifndef DTDBD_MODELS_EDDFN_H_
#define DTDBD_MODELS_EDDFN_H_

#include <memory>
#include <string>
#include <vector>

#include "models/model.h"
#include "nn/conv.h"
#include "nn/linear.h"

namespace dtdbd::models {

class EddfnModel : public FakeNewsModel {
 public:
  EddfnModel(const ModelConfig& config, bool use_dat);

  ModelOutput Forward(const data::Batch& batch, bool training) override;
  const std::string& name() const override { return name_; }
  int64_t feature_dim() const override { return 2 * config_.hidden_dim; }
  void CollectRngs(std::vector<Rng*>* rngs) override {
    rngs->push_back(&rng_);
  }

 private:
  std::string name_;
  ModelConfig config_;
  bool use_dat_;
  Rng rng_;
  std::unique_ptr<nn::Conv1dBank> conv_;
  std::unique_ptr<nn::Mlp> shared_head_;
  std::vector<std::unique_ptr<nn::Mlp>> domain_heads_;
  std::unique_ptr<nn::Mlp> classifier_;
  std::unique_ptr<nn::Mlp> discriminator_;
};

}  // namespace dtdbd::models

#endif  // DTDBD_MODELS_EDDFN_H_
