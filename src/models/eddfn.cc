#include "models/eddfn.h"

#include "tensor/ops.h"

namespace dtdbd::models {

using tensor::Tensor;

EddfnModel::EddfnModel(const ModelConfig& config, bool use_dat)
    : name_(use_dat ? "EDDFN" : "EDDFN_NoDAT"),
      config_(config),
      use_dat_(use_dat),
      rng_(config.seed) {
  DTDBD_CHECK(config_.encoder != nullptr) << "EDDFN requires a frozen encoder";
  DTDBD_CHECK_GT(config_.num_domains, 0);
  conv_ = std::make_unique<nn::Conv1dBank>(
      config_.encoder->dim(), config_.conv_channels,
      std::vector<int64_t>{2, 3, 5}, &rng_);
  RegisterChild("conv", conv_.get());
  shared_head_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{conv_->output_dim(), config_.hidden_dim},
      config_.dropout, &rng_);
  RegisterChild("shared_head", shared_head_.get());
  for (int d = 0; d < config_.num_domains; ++d) {
    domain_heads_.push_back(std::make_unique<nn::Mlp>(
        std::vector<int64_t>{conv_->output_dim(), config_.hidden_dim},
        config_.dropout, &rng_));
    RegisterChild("domain_head" + std::to_string(d),
                  domain_heads_.back().get());
  }
  classifier_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{feature_dim(), config_.hidden_dim, 2},
      config_.dropout, &rng_);
  RegisterChild("classifier", classifier_.get());
  if (use_dat_) {
    discriminator_ = std::make_unique<nn::Mlp>(
        std::vector<int64_t>{config_.hidden_dim, config_.hidden_dim,
                             config_.num_domains},
        config_.dropout, &rng_);
    RegisterChild("discriminator", discriminator_.get());
  }
}

ModelOutput EddfnModel::Forward(const data::Batch& batch, bool training) {
  Tensor encoded = config_.encoder->Encode(batch.tokens, batch.batch_size,
                                           batch.seq_len);
  Tensor base = conv_->Forward(encoded);
  Tensor shared =
      shared_head_->Forward(base, training, &rng_, /*output_relu=*/true);

  // Per-domain heads evaluated for all domains, then each sample selects
  // its own via a one-hot weighting (keeps everything batched).
  std::vector<Tensor> head_outs;
  for (const auto& head : domain_heads_) {
    head_outs.push_back(
        head->Forward(base, training, &rng_, /*output_relu=*/true));
  }
  std::vector<float> onehot(batch.batch_size * config_.num_domains, 0.0f);
  for (int64_t i = 0; i < batch.batch_size; ++i) {
    onehot[i * config_.num_domains + batch.domains[i]] = 1.0f;
  }
  Tensor selector = Tensor::FromData({batch.batch_size, config_.num_domains},
                                     std::move(onehot));
  Tensor specific =
      tensor::WeightedSumOverTime(tensor::StackTime(head_outs), selector);

  ModelOutput out;
  out.features = tensor::ConcatLastDim({shared, specific});
  Tensor h = tensor::Dropout(out.features, config_.dropout, &rng_, training);
  out.logits = classifier_->Forward(h, training, &rng_);
  if (use_dat_) {
    Tensor reversed =
        tensor::GradReverse(shared, config_.adversarial_lambda);
    out.domain_logits = discriminator_->Forward(reversed, training, &rng_);
  }
  return out;
}

}  // namespace dtdbd::models
