#include "models/eann.h"

#include "tensor/ops.h"

namespace dtdbd::models {

using tensor::Tensor;

EannModel::EannModel(const ModelConfig& config, bool use_dat)
    : name_(use_dat ? "EANN" : "EANN_NoDAT"),
      config_(config),
      use_dat_(use_dat),
      rng_(config.seed) {
  DTDBD_CHECK(config_.encoder != nullptr) << "EANN requires a frozen encoder";
  conv_ = std::make_unique<nn::Conv1dBank>(
      config_.encoder->dim(), config_.conv_channels,
      std::vector<int64_t>{1, 2, 3, 5}, &rng_);
  RegisterChild("conv", conv_.get());
  classifier_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{conv_->output_dim(), config_.hidden_dim, 2},
      config_.dropout, &rng_);
  RegisterChild("classifier", classifier_.get());
  if (use_dat_) {
    domain_head_ = std::make_unique<nn::Mlp>(
        std::vector<int64_t>{conv_->output_dim(), config_.hidden_dim,
                             config_.num_domains},
        config_.dropout, &rng_);
    RegisterChild("domain_head", domain_head_.get());
  }
}

ModelOutput EannModel::Forward(const data::Batch& batch, bool training) {
  Tensor encoded = config_.encoder->Encode(batch.tokens, batch.batch_size,
                                           batch.seq_len);
  ModelOutput out;
  out.features = conv_->Forward(encoded);
  Tensor h = tensor::Dropout(out.features, config_.dropout, &rng_, training);
  out.logits = classifier_->Forward(h, training, &rng_);
  if (use_dat_) {
    Tensor reversed =
        tensor::GradReverse(out.features, config_.adversarial_lambda);
    out.domain_logits = domain_head_->Forward(reversed, training, &rng_);
  }
  return out;
}

}  // namespace dtdbd::models
