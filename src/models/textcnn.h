// TextCNN classifier (Kim 2014). Covers two zoo entries:
//  * "TextCNN"   — trainable word embeddings, kernel widths {1,2,3,5,10}
//                  (the paper's baseline setup);
//  * "TextCNN-S" — the DTDBD student: frozen BERT-substitute features with
//                  kernel widths {1,2,3,5}.
#ifndef DTDBD_MODELS_TEXTCNN_H_
#define DTDBD_MODELS_TEXTCNN_H_

#include <memory>
#include <string>
#include <vector>

#include "models/model.h"
#include "nn/conv.h"
#include "nn/embedding.h"
#include "nn/linear.h"

namespace dtdbd::models {

class TextCnnModel : public FakeNewsModel {
 public:
  TextCnnModel(std::string name, const ModelConfig& config,
               bool use_frozen_encoder, std::vector<int64_t> kernel_widths);

  ModelOutput Forward(const data::Batch& batch, bool training) override;
  const std::string& name() const override { return name_; }
  int64_t feature_dim() const override { return conv_->output_dim(); }
  void CollectRngs(std::vector<Rng*>* rngs) override {
    rngs->push_back(&rng_);
  }

 private:
  std::string name_;
  ModelConfig config_;
  bool use_frozen_encoder_;
  Rng rng_;
  std::unique_ptr<nn::Embedding> embedding_;  // only when trainable input
  std::unique_ptr<nn::Conv1dBank> conv_;
  std::unique_ptr<nn::Mlp> classifier_;
};

}  // namespace dtdbd::models

#endif  // DTDBD_MODELS_TEXTCNN_H_
