#include "models/bert_mlp.h"

#include "tensor/ops.h"

namespace dtdbd::models {

using tensor::Tensor;

BertMlpModel::BertMlpModel(std::string name, const ModelConfig& config)
    : name_(std::move(name)), config_(config), rng_(config.seed) {
  DTDBD_CHECK(config_.encoder != nullptr)
      << name_ << " requires a frozen encoder";
  projector_ = std::make_unique<nn::Linear>(config_.encoder->dim(),
                                            config_.hidden_dim, &rng_);
  RegisterChild("projector", projector_.get());
  classifier_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{config_.hidden_dim, config_.hidden_dim, 2},
      config_.dropout, &rng_);
  RegisterChild("classifier", classifier_.get());
}

ModelOutput BertMlpModel::Forward(const data::Batch& batch, bool training) {
  Tensor encoded = config_.encoder->Encode(batch.tokens, batch.batch_size,
                                           batch.seq_len);
  Tensor pooled = tensor::MeanOverTime(encoded);
  ModelOutput out;
  out.features = projector_->ForwardRelu(pooled);
  Tensor h = tensor::Dropout(out.features, config_.dropout, &rng_, training);
  out.logits = classifier_->Forward(h, training, &rng_);
  return out;
}

}  // namespace dtdbd::models
