#include "models/style_emotion.h"

#include "tensor/ops.h"
#include "text/features.h"

namespace dtdbd::models {

using tensor::Tensor;

StyleLstmModel::StyleLstmModel(const ModelConfig& config)
    : config_(config), rng_(config.seed) {
  DTDBD_CHECK_GT(config_.vocab_size, 0);
  embedding_ = std::make_unique<nn::Embedding>(config_.vocab_size,
                                               config_.embed_dim, &rng_);
  RegisterChild("embedding", embedding_.get());
  rnn_ = std::make_unique<nn::BiLstm>(config_.embed_dim, config_.rnn_hidden,
                                      &rng_);
  RegisterChild("rnn", rnn_.get());
  classifier_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{feature_dim(), config_.hidden_dim, 2},
      config_.dropout, &rng_);
  RegisterChild("classifier", classifier_.get());
}

int64_t StyleLstmModel::feature_dim() const {
  return rnn_->output_dim() + text::kStyleFeatureDim;
}

ModelOutput StyleLstmModel::Forward(const data::Batch& batch, bool training) {
  Tensor embedded = embedding_->Forward(batch.tokens, batch.batch_size,
                                        batch.seq_len);
  Tensor text_repr = tensor::MeanOverTime(rnn_->Forward(embedded));
  ModelOutput out;
  out.features = tensor::ConcatLastDim({text_repr, batch.style});
  Tensor h = tensor::Dropout(out.features, config_.dropout, &rng_, training);
  out.logits = classifier_->Forward(h, training, &rng_);
  return out;
}

DualEmoModel::DualEmoModel(const ModelConfig& config)
    : config_(config), rng_(config.seed) {
  DTDBD_CHECK_GT(config_.vocab_size, 0);
  embedding_ = std::make_unique<nn::Embedding>(config_.vocab_size,
                                               config_.embed_dim, &rng_);
  RegisterChild("embedding", embedding_.get());
  rnn_ = std::make_unique<nn::BiGru>(config_.embed_dim, config_.rnn_hidden,
                                     &rng_);
  RegisterChild("rnn", rnn_.get());
  classifier_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{feature_dim(), config_.hidden_dim, 2},
      config_.dropout, &rng_);
  RegisterChild("classifier", classifier_.get());
}

int64_t DualEmoModel::feature_dim() const {
  return rnn_->output_dim() + text::kEmotionFeatureDim;
}

ModelOutput DualEmoModel::Forward(const data::Batch& batch, bool training) {
  Tensor embedded = embedding_->Forward(batch.tokens, batch.batch_size,
                                        batch.seq_len);
  Tensor text_repr = tensor::MeanOverTime(rnn_->Forward(embedded));
  ModelOutput out;
  out.features = tensor::ConcatLastDim({text_repr, batch.emotion});
  Tensor h = tensor::Dropout(out.features, config_.dropout, &rng_, training);
  out.logits = classifier_->Forward(h, training, &rng_);
  return out;
}

}  // namespace dtdbd::models
