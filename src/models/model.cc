#include "models/model.h"

#include "models/bert_mlp.h"
#include "models/bigru.h"
#include "models/eann.h"
#include "models/eddfn.h"
#include "models/m3fend.h"
#include "models/mdfend.h"
#include "models/moe.h"
#include "models/style_emotion.h"
#include "models/textcnn.h"

namespace dtdbd::models {

namespace {

// Nullptr on an unrecognized name; the public entry points turn that into
// a CHECK (CreateModel) or a typed error (CreateModelOr).
std::unique_ptr<FakeNewsModel> TryCreateModel(const std::string& name,
                                              const ModelConfig& config) {
  if (name == "BiGRU") {
    return std::make_unique<BiGruModel>(name, config,
                                        /*use_frozen_encoder=*/false);
  }
  if (name == "BiGRU-S") {
    return std::make_unique<BiGruModel>(name, config,
                                        /*use_frozen_encoder=*/true);
  }
  if (name == "TextCNN") {
    return std::make_unique<TextCnnModel>(
        name, config, /*use_frozen_encoder=*/false,
        std::vector<int64_t>{1, 2, 3, 5, 10});
  }
  if (name == "TextCNN-S") {
    return std::make_unique<TextCnnModel>(name, config,
                                          /*use_frozen_encoder=*/true,
                                          std::vector<int64_t>{1, 2, 3, 5});
  }
  if (name == "BERT" || name == "RoBERTa") {
    ModelConfig c = config;
    // Distinct random heads so the two frozen-encoder baselines differ the
    // way two different pre-trained encoders would.
    if (name == "RoBERTa") c.seed = config.seed * 2654435761ULL + 17;
    return std::make_unique<BertMlpModel>(name, c);
  }
  if (name == "StyleLSTM") {
    return std::make_unique<StyleLstmModel>(config);
  }
  if (name == "DualEmo") {
    return std::make_unique<DualEmoModel>(config);
  }
  if (name == "MMoE") {
    return std::make_unique<MmoeModel>(config);
  }
  if (name == "MoSE") {
    return std::make_unique<MoseModel>(config);
  }
  if (name == "EANN") {
    return std::make_unique<EannModel>(config, /*use_dat=*/true);
  }
  if (name == "EANN_NoDAT") {
    return std::make_unique<EannModel>(config, /*use_dat=*/false);
  }
  if (name == "EDDFN") {
    return std::make_unique<EddfnModel>(config, /*use_dat=*/true);
  }
  if (name == "EDDFN_NoDAT") {
    return std::make_unique<EddfnModel>(config, /*use_dat=*/false);
  }
  if (name == "MDFEND") {
    return std::make_unique<MdfendModel>(config);
  }
  if (name == "M3FEND") {
    return std::make_unique<M3fendModel>(config);
  }
  return nullptr;
}

}  // namespace

std::unique_ptr<FakeNewsModel> CreateModel(const std::string& name,
                                           const ModelConfig& config) {
  std::unique_ptr<FakeNewsModel> model = TryCreateModel(name, config);
  DTDBD_CHECK(model != nullptr) << "unknown model name: " << name;
  return model;
}

StatusOr<std::unique_ptr<FakeNewsModel>> CreateModelOr(
    const std::string& name, const ModelConfig& config) {
  std::unique_ptr<FakeNewsModel> model = TryCreateModel(name, config);
  if (model == nullptr) {
    return Status::InvalidArgument("unknown model name: " + name);
  }
  return model;
}

std::vector<std::string> AllModelNames() {
  return {"BiGRU",       "TextCNN", "BERT",        "RoBERTa",
          "StyleLSTM",   "DualEmo", "EANN",        "EANN_NoDAT",
          "MMoE",        "MoSE",    "EDDFN",       "EDDFN_NoDAT",
          "MDFEND",      "M3FEND",  "TextCNN-S",   "BiGRU-S"};
}

}  // namespace dtdbd::models
