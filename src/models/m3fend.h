// M3FEND (Zhu et al. 2022): memory-guided multi-view multi-domain fake news
// detection. Three views (semantics / emotion / style) are projected to a
// common width; a Domain Memory Bank maintains a running prototype of each
// domain's semantic representation and converts every sample into a soft
// (fuzzy) domain-label distribution by similarity to the prototypes; a
// domain adapter gates the views conditioned on that distribution.
//
// This is the paper's strongest baseline and the "clean teacher" of DTDBD's
// domain knowledge distillation.
#ifndef DTDBD_MODELS_M3FEND_H_
#define DTDBD_MODELS_M3FEND_H_

#include <memory>
#include <string>
#include <vector>

#include "models/model.h"
#include "nn/conv.h"
#include "nn/linear.h"

namespace dtdbd::models {

class M3fendModel : public FakeNewsModel {
 public:
  explicit M3fendModel(const ModelConfig& config);

  ModelOutput Forward(const data::Batch& batch, bool training) override;
  const std::string& name() const override { return name_; }
  int64_t feature_dim() const override { return view_dim_; }
  void CollectRngs(std::vector<Rng*>* rngs) override {
    rngs->push_back(&rng_);
  }

  // Soft domain-label distribution of the last forward batch (row-major
  // [B, D]); exposed for inspection/tests.
  const std::vector<float>& last_domain_distribution() const {
    return last_domain_distribution_;
  }

 private:
  // Similarity of each sample's semantic vector to the domain prototypes,
  // softmax-normalized. Returns a detached [B, D] tensor.
  tensor::Tensor DomainDistribution(const tensor::Tensor& semantic,
                                    const data::Batch& batch, bool training);

  std::string name_ = "M3FEND";
  ModelConfig config_;
  Rng rng_;
  int64_t view_dim_;
  std::unique_ptr<nn::Conv1dBank> semantic_view_;
  std::unique_ptr<nn::Linear> semantic_proj_;
  std::unique_ptr<nn::Mlp> emotion_view_;
  std::unique_ptr<nn::Mlp> style_view_;
  std::unique_ptr<nn::Mlp> adapter_gate_;
  std::unique_ptr<nn::Mlp> classifier_;

  // Domain Memory Bank: one prototype per domain, EMA-updated with
  // detached semantic features during training.
  double memory_decay_ = 0.95;
  std::vector<std::vector<float>> memory_;
  std::vector<bool> memory_initialized_;
  std::vector<float> last_domain_distribution_;
};

}  // namespace dtdbd::models

#endif  // DTDBD_MODELS_M3FEND_H_
