#include "models/textcnn.h"

#include "tensor/ops.h"

namespace dtdbd::models {

using tensor::Tensor;

TextCnnModel::TextCnnModel(std::string name, const ModelConfig& config,
                           bool use_frozen_encoder,
                           std::vector<int64_t> kernel_widths)
    : name_(std::move(name)),
      config_(config),
      use_frozen_encoder_(use_frozen_encoder),
      rng_(config.seed) {
  int64_t input_dim;
  if (use_frozen_encoder_) {
    DTDBD_CHECK(config_.encoder != nullptr)
        << name_ << " requires a frozen encoder";
    input_dim = config_.encoder->dim();
  } else {
    DTDBD_CHECK_GT(config_.vocab_size, 0);
    embedding_ = std::make_unique<nn::Embedding>(config_.vocab_size,
                                                 config_.embed_dim, &rng_);
    RegisterChild("embedding", embedding_.get());
    input_dim = config_.embed_dim;
  }
  conv_ = std::make_unique<nn::Conv1dBank>(
      input_dim, config_.conv_channels, std::move(kernel_widths), &rng_);
  RegisterChild("conv", conv_.get());
  classifier_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{conv_->output_dim(), config_.hidden_dim, 2},
      config_.dropout, &rng_);
  RegisterChild("classifier", classifier_.get());
}

ModelOutput TextCnnModel::Forward(const data::Batch& batch, bool training) {
  Tensor encoded =
      use_frozen_encoder_
          ? config_.encoder->Encode(batch.tokens, batch.batch_size,
                                    batch.seq_len)
          : embedding_->Forward(batch.tokens, batch.batch_size,
                                batch.seq_len);
  ModelOutput out;
  out.features = conv_->Forward(encoded);
  Tensor h = tensor::Dropout(out.features, config_.dropout, &rng_, training);
  out.logits = classifier_->Forward(h, training, &rng_);
  return out;
}

}  // namespace dtdbd::models
