// EANN (Wang et al. 2018): a shared TextCNN feature extractor with a fake
// news classifier and an adversarial event/domain discriminator behind a
// gradient-reversal layer. "EANN_NoDAT" drops the discriminator (the
// ablation row of the paper's tables).
#ifndef DTDBD_MODELS_EANN_H_
#define DTDBD_MODELS_EANN_H_

#include <memory>
#include <string>

#include "models/model.h"
#include "nn/conv.h"
#include "nn/linear.h"

namespace dtdbd::models {

class EannModel : public FakeNewsModel {
 public:
  EannModel(const ModelConfig& config, bool use_dat);

  ModelOutput Forward(const data::Batch& batch, bool training) override;
  const std::string& name() const override { return name_; }
  int64_t feature_dim() const override { return conv_->output_dim(); }
  void CollectRngs(std::vector<Rng*>* rngs) override {
    rngs->push_back(&rng_);
  }

 private:
  std::string name_;
  ModelConfig config_;
  bool use_dat_;
  Rng rng_;
  std::unique_ptr<nn::Conv1dBank> conv_;
  std::unique_ptr<nn::Mlp> classifier_;
  std::unique_ptr<nn::Mlp> domain_head_;
};

}  // namespace dtdbd::models

#endif  // DTDBD_MODELS_EANN_H_
