// Content-feature baselines:
//  * StyleLSTM (Przybyla 2020): BiLSTM text encoding concatenated with
//    engineered style features before the MLP head.
//  * DualEmo (Zhang et al. 2021): BiGRU text encoding concatenated with
//    dual-emotion features before the MLP head.
#ifndef DTDBD_MODELS_STYLE_EMOTION_H_
#define DTDBD_MODELS_STYLE_EMOTION_H_

#include <memory>
#include <string>

#include "models/model.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/rnn.h"

namespace dtdbd::models {

class StyleLstmModel : public FakeNewsModel {
 public:
  explicit StyleLstmModel(const ModelConfig& config);

  ModelOutput Forward(const data::Batch& batch, bool training) override;
  const std::string& name() const override { return name_; }
  int64_t feature_dim() const override;
  void CollectRngs(std::vector<Rng*>* rngs) override {
    rngs->push_back(&rng_);
  }

 private:
  std::string name_ = "StyleLSTM";
  ModelConfig config_;
  Rng rng_;
  std::unique_ptr<nn::Embedding> embedding_;
  std::unique_ptr<nn::BiLstm> rnn_;
  std::unique_ptr<nn::Mlp> classifier_;
};

class DualEmoModel : public FakeNewsModel {
 public:
  explicit DualEmoModel(const ModelConfig& config);

  ModelOutput Forward(const data::Batch& batch, bool training) override;
  const std::string& name() const override { return name_; }
  int64_t feature_dim() const override;
  void CollectRngs(std::vector<Rng*>* rngs) override {
    rngs->push_back(&rng_);
  }

 private:
  std::string name_ = "DualEmo";
  ModelConfig config_;
  Rng rng_;
  std::unique_ptr<nn::Embedding> embedding_;
  std::unique_ptr<nn::BiGru> rnn_;
  std::unique_ptr<nn::Mlp> classifier_;
};

}  // namespace dtdbd::models

#endif  // DTDBD_MODELS_STYLE_EMOTION_H_
