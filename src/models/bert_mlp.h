// Frozen-encoder + MLP baselines ("BERT" and "RoBERTa" rows of the paper's
// tables: a frozen pre-trained encoder with only the MLP head trained).
#ifndef DTDBD_MODELS_BERT_MLP_H_
#define DTDBD_MODELS_BERT_MLP_H_

#include <memory>
#include <string>

#include "models/model.h"
#include "nn/linear.h"

namespace dtdbd::models {

class BertMlpModel : public FakeNewsModel {
 public:
  BertMlpModel(std::string name, const ModelConfig& config);

  ModelOutput Forward(const data::Batch& batch, bool training) override;
  const std::string& name() const override { return name_; }
  int64_t feature_dim() const override { return config_.hidden_dim; }
  void CollectRngs(std::vector<Rng*>* rngs) override {
    rngs->push_back(&rng_);
  }

 private:
  std::string name_;
  ModelConfig config_;
  Rng rng_;
  std::unique_ptr<nn::Linear> projector_;
  std::unique_ptr<nn::Mlp> classifier_;
};

}  // namespace dtdbd::models

#endif  // DTDBD_MODELS_BERT_MLP_H_
