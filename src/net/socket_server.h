// Socket front end for serve::Server: an epoll-driven (level-triggered)
// acceptor/IO thread speaking the length-prefixed protocol of
// net/protocol.h, feeding the existing bounded queue through
// Server::SubmitAsync. Each response frame is encoded under the protocol
// version its REQUEST header named, so v1 and v2 clients can share one
// server (and one connection) without either seeing bytes it cannot parse.
//
// Threading model. ONE IO thread owns every fd (listener, self-wake pipe,
// all connections) and is the only thread that reads, writes, or closes a
// socket — so a slow or hostile client can never block a serving worker by
// construction; the worst it can do is hold its own connection until a
// timeout reclaims it. Worker threads finish a request by encoding the
// response frame and pushing it into a CompletionSink (mutex + wake pipe);
// the IO thread drains the sink and routes each frame to its connection's
// write queue by connection id. The sink is shared_ptr-owned so a
// completion that races a teardown lands in a flagged-dead sink and is
// dropped instead of touching freed memory.
//
// Connection hardening (the point of this layer — see DESIGN.md §10):
//   - Bounded buffers. A frame header is validated BEFORE any payload byte
//     is buffered, so the read buffer never holds more than one partial
//     frame (≤ header + max_frame_bytes); the write queue is capped at
//     max_outbox_bytes and a client that stops reading past the cap is
//     closed, not buffered forever.
//   - Idle / slow-client timeouts. A connection that makes no byte progress
//     for idle_timeout_ms with nothing in flight is closed — a half-sent
//     header (slow-loris) cannot hold an fd open indefinitely, and since
//     workers never touch sockets it could never hold a worker at all.
//   - max_inflight_per_connection. Requests beyond the cap are answered
//     RETRY_LATER immediately; one greedy connection cannot monopolize the
//     queue's admission budget.
//   - Nonblocking I/O done right: EINTR retried, short reads/writes resumed
//     from the exact offset, writes use send(MSG_NOSIGNAL) so a vanished
//     reader yields EPIPE instead of killing the process, every fd is
//     CLOEXEC, and every close path runs through one CloseConnection so
//     teardown can never leak an fd.
//   - Overload is protocol-visible: Status codes map to typed error frames
//     (kResourceExhausted -> RETRY_LATER with a retry-after hint,
//     kDeadlineExceeded, kInvalidArgument, kUnavailable); malformed bytes
//     get BAD_FRAME and — when the length prefix is still trustworthy — the
//     connection survives.
//
// Graceful drain (Stop(), also the destructor): stop accepting, answer new
// frames UNAVAILABLE, let in-flight requests finish and flush their
// responses, close each connection once quiet, and give up after
// drain_timeout_ms by force-closing whatever remains. The owner stops the
// SocketServer BEFORE the serve::Server so every accepted request still has
// workers to answer it; anything still queued when the inner server stops
// resolves kUnavailable and flows back over the wire the same way.
#ifndef DTDBD_NET_SOCKET_SERVER_H_
#define DTDBD_NET_SOCKET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "net/protocol.h"
#include "serve/server.h"

namespace dtdbd::net {

struct SocketServerOptions {
  std::string bind_address = "127.0.0.1";
  // 0 = bind an ephemeral port; the chosen port is available via port().
  int port = 0;
  // Connections past this limit are answered one UNAVAILABLE frame and
  // closed at accept.
  int max_connections = 64;
  // Requests on one connection past this limit (submitted, not yet
  // answered) get RETRY_LATER instead of entering the queue.
  int max_inflight_per_connection = 32;
  // A connection with no byte progress and nothing in flight for this long
  // is closed (slow-loris / abandoned peers).
  int64_t idle_timeout_ms = 5'000;
  // Stop(): how long to wait for in-flight requests to finish and responses
  // to flush before force-closing survivors.
  int64_t drain_timeout_ms = 5'000;
  // Hard ceiling on a frame's payload_len; larger headers are a protocol
  // error and close the connection before a payload byte is read.
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  // Advertised in RETRY_LATER responses so clients back off a sane amount.
  uint32_t retry_after_ms_hint = 50;
  // Per-connection write-queue cap; exceeding it closes the connection.
  size_t max_outbox_bytes = 4u << 20;
};

// Cumulative counters since Start(); all transitions counted exactly once.
struct NetStats {
  int64_t accepted = 0;
  int64_t rejected_max_conns = 0;
  int64_t frames_received = 0;       // complete, framing-valid frames
  int64_t requests_submitted = 0;    // handed to serve::Server
  int64_t health_requests = 0;       // kHealthRequest frames answered inline
  int64_t responses_sent = 0;        // frames fully flushed to the socket
  int64_t bad_frames = 0;            // malformed bytes answered BAD_FRAME
  int64_t inflight_rejected = 0;     // RETRY_LATER from the per-conn cap
  int64_t drain_rejected = 0;        // UNAVAILABLE because draining
  int64_t closed_by_peer = 0;
  int64_t closed_idle = 0;           // idle / slow-loris timeout
  int64_t closed_protocol = 0;       // unrecoverable framing error
  int64_t closed_outbox_overflow = 0;
  int64_t responses_dropped_disconnect = 0;  // peer vanished mid-request
  int64_t bytes_read = 0;
  int64_t bytes_written = 0;
  int64_t open_connections = 0;      // gauge, not cumulative
};

class SocketServer {
 public:
  // `server` must outlive this object and must not be Stop()ed until this
  // object has been Stop()ed (drain needs live workers).
  SocketServer(serve::Server* server, SocketServerOptions options);
  ~SocketServer();  // Stop()s

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  // Binds, listens, and starts the IO thread. Call exactly once.
  Status Start();

  // The bound port (after Start()); useful with options.port == 0.
  int port() const { return port_; }

  NetStats Stats() const;

  // Graceful drain as documented above. Idempotent, called by ~SocketServer.
  void Stop();

 private:
  struct Completion {
    uint64_t conn_id = 0;
    std::string frame;  // fully encoded response frame
  };
  // Shared with worker-thread callbacks; outlives the server via shared_ptr
  // so late completions after a teardown are dropped, never use-after-free.
  struct CompletionSink {
    std::mutex mu;
    bool dead = false;
    int wake_fd = -1;
    std::vector<Completion> ready;
    void Push(Completion completion);
  };
  struct Connection {
    int fd = -1;
    uint64_t id = 0;
    std::vector<uint8_t> inbuf;  // bytes of the current (partial) frame
    bool have_header = false;
    FrameHeader header;
    std::deque<std::string> outbox;
    size_t outbox_offset = 0;  // bytes of outbox.front() already written
    size_t outbox_bytes = 0;
    int inflight = 0;
    int64_t last_activity_ms = 0;
    bool close_after_flush = false;  // flush outbox, then close
    uint32_t epoll_events = 0;  // interest set currently registered
  };

  void IoLoop();
  int64_t NowMs() const;
  void Wake();
  void HandleAccept();
  // Returns false when the connection was closed during the call.
  bool HandleReadable(Connection* conn);
  bool HandleWritable(Connection* conn);
  // Parses complete frames out of conn->inbuf; false = connection closed.
  bool ParseFrames(Connection* conn);
  void SubmitRequest(Connection* conn, const FrameHeader& header,
                     serve::InferenceRequest request);
  // Answers a kHealthRequest inline on the IO thread (Health() only takes
  // the serving mutexes briefly; no forward runs under them).
  void AnswerHealthRequest(Connection* conn, const FrameHeader& header);
  void QueueResponse(Connection* conn, std::string frame);
  void DrainCompletions();
  enum class CloseReason { kPeer, kIdle, kProtocol, kOverflow, kDrain };
  void CloseConnection(uint64_t conn_id, CloseReason reason);
  // epoll_ctl wrapper; false (with a log line) on failure. `tag` lands in
  // epoll_event.data.u64 and routes events back to their connection.
  bool EpollUpdate(int op, int fd, uint32_t events, uint64_t tag);

  serve::Server* const server_;
  const SocketServerOptions options_;

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  int port_ = 0;
  uint64_t next_conn_id_ = 1;
  std::map<uint64_t, Connection> conns_;  // owned by the IO thread
  std::shared_ptr<CompletionSink> sink_;

  mutable std::mutex state_mu_;
  std::condition_variable state_cv_;
  bool started_ = false;
  bool draining_ = false;  // set by Stop(); read by the IO thread
  bool drained_ = false;   // set by the IO thread once fully quiesced
  bool stop_ = false;      // force-exit the IO loop
  bool stopped_ = false;   // Stop() finished (idempotence)
  // Requests submitted whose completion the IO thread has not yet routed.
  std::atomic<int64_t> outstanding_{0};

  mutable std::mutex stats_mu_;
  NetStats stats_;

  std::thread io_thread_;
};

}  // namespace dtdbd::net

#endif  // DTDBD_NET_SOCKET_SERVER_H_
