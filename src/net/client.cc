#include "net/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cstring>
#include <vector>

namespace dtdbd::net {

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), protocol_version_(other.protocol_version_) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    protocol_version_ = other.protocol_version_;
    other.fd_ = -1;
  }
  return *this;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::Connect(const std::string& host, int port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    return Status::IoError("socket() failed: " +
                           std::string(std::strerror(errno)));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad host address: " + host);
  }
  int rc;
  do {
    rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const Status status =
        Status::IoError("connect(" + host + ":" + std::to_string(port) +
                        ") failed: " + std::strerror(errno));
    Close();
    return status;
  }
  const int one = 1;
  (void)::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::Ok();
}

Status Client::SendBytes(const std::string& bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("send failed: " +
                             std::string(std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

void Client::ShutdownWrite() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

Status Client::Send(uint64_t request_id, int64_t deadline_nanos,
                    const serve::InferenceRequest& request) {
  return SendBytes(
      EncodeRequestFrame(request_id, deadline_nanos, request,
                         protocol_version_));
}

namespace {

// Reads exactly `len` bytes. kUnavailable on clean EOF at a frame boundary
// (`at_boundary`), kIoError on EOF mid-frame or any hard error,
// kDeadlineExceeded on an SO_RCVTIMEO-driven timeout.
Status ReadExact(int fd, uint8_t* out, size_t len, bool at_boundary) {
  size_t got = 0;
  while (got < len) {
    const ssize_t n = ::read(fd, out + got, len - got);
    if (n == 0) {
      if (at_boundary && got == 0) {
        return Status::Unavailable("server closed the connection");
      }
      return Status::IoError("connection closed mid-frame");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("timed out waiting for response");
      }
      return Status::IoError("read failed: " +
                             std::string(std::strerror(errno)));
    }
    got += static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

Status Client::Receive(WireResponse* response, int64_t timeout_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  timeval tv;
  tv.tv_sec = timeout_ms > 0 ? timeout_ms / 1000 : 0;
  tv.tv_usec = timeout_ms > 0 ? (timeout_ms % 1000) * 1000 : 0;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  uint8_t header_bytes[kFrameHeaderSize];
  DTDBD_RETURN_IF_ERROR(
      ReadExact(fd_, header_bytes, kFrameHeaderSize, /*at_boundary=*/true));
  FrameHeader header;
  DecodeFrameHeader(header_bytes, &header);
  bool trusted = false;
  DTDBD_RETURN_IF_ERROR(
      ValidateHeader(header, kDefaultMaxFrameBytes, &trusted));
  if (header.type != FrameType::kResponse) {
    return Status::InvalidArgument("expected a response frame");
  }
  std::vector<uint8_t> payload(header.payload_len);
  DTDBD_RETURN_IF_ERROR(
      ReadExact(fd_, payload.data(), payload.size(), /*at_boundary=*/false));
  response->request_id = header.request_id;
  // Decode under the version the SERVER stamped on this frame (it echoes
  // the request's version, but pre-header rejections arrive as v1).
  return DecodeResponsePayload(payload.data(), payload.size(), response,
                               header.version);
}

Status Client::GetHealth(uint64_t request_id, WireHealth* health,
                         int64_t timeout_ms) {
  if (protocol_version_ < 2) {
    return Status::InvalidArgument(
        "health frames require protocol version 2");
  }
  DTDBD_RETURN_IF_ERROR(
      SendBytes(EncodeHealthRequestFrame(request_id, protocol_version_)));

  timeval tv;
  tv.tv_sec = timeout_ms > 0 ? timeout_ms / 1000 : 0;
  tv.tv_usec = timeout_ms > 0 ? (timeout_ms % 1000) * 1000 : 0;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  uint8_t header_bytes[kFrameHeaderSize];
  DTDBD_RETURN_IF_ERROR(
      ReadExact(fd_, header_bytes, kFrameHeaderSize, /*at_boundary=*/true));
  FrameHeader header;
  DecodeFrameHeader(header_bytes, &header);
  bool trusted = false;
  DTDBD_RETURN_IF_ERROR(
      ValidateHeader(header, kDefaultMaxFrameBytes, &trusted));
  std::vector<uint8_t> payload(header.payload_len);
  DTDBD_RETURN_IF_ERROR(
      ReadExact(fd_, payload.data(), payload.size(), /*at_boundary=*/false));
  if (header.request_id != request_id) {
    return Status::Internal("health response id " +
                            std::to_string(header.request_id) +
                            " does not match request id " +
                            std::to_string(request_id));
  }
  if (header.type == FrameType::kResponse) {
    // A server that predates (or rejects) health frames answers a typed
    // error response; surface its message as the call's failure.
    WireResponse response;
    DTDBD_RETURN_IF_ERROR(DecodeResponsePayload(payload.data(), payload.size(),
                                                &response, header.version));
    return Status::FailedPrecondition("server rejected health request: " +
                                 std::string(WireCodeName(response.code)) +
                                 (response.message.empty()
                                      ? ""
                                      : " (" + response.message + ")"));
  }
  if (header.type != FrameType::kHealthResponse) {
    return Status::InvalidArgument("expected a health response frame");
  }
  return DecodeHealthResponsePayload(payload.data(), payload.size(), health);
}

Status Client::Call(uint64_t request_id, int64_t deadline_nanos,
                    const serve::InferenceRequest& request,
                    WireResponse* response) {
  DTDBD_RETURN_IF_ERROR(Send(request_id, deadline_nanos, request));
  DTDBD_RETURN_IF_ERROR(Receive(response));
  if (response->request_id != request_id) {
    return Status::Internal("response id " +
                            std::to_string(response->request_id) +
                            " does not match request id " +
                            std::to_string(request_id));
  }
  return Status::Ok();
}

}  // namespace dtdbd::net
