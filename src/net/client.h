// Minimal blocking client for the serving wire protocol — the test and
// load-generator counterpart of SocketServer. Deliberately simple: one
// connection per object, blocking I/O with EINTR/short-read handling, and a
// raw-bytes escape hatch (SendBytes/ShutdownWrite) so fuzz tests can inflict
// truncated, oversized, and garbage frames without a second code path.
//
// Pipelining is allowed: Send() any number of requests, then Receive()
// responses; request ids correlate them (the server answers in completion
// order, not send order, once requests overlap).
#ifndef DTDBD_NET_CLIENT_H_
#define DTDBD_NET_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "net/protocol.h"
#include "serve/validation.h"

namespace dtdbd::net {

class Client {
 public:
  Client() = default;
  ~Client();  // closes

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  // Blocking TCP connect to host:port.
  Status Connect(const std::string& host, int port);
  bool connected() const { return fd_ >= 0; }
  void Close();

  // Protocol version used to encode outgoing requests (default: current).
  // Setting kMinProtocolVersion makes this client byte-identical to a
  // pre-fleet v1 client — compat tests downgrade through this, and the
  // server answers each frame in the version it was asked in.
  void set_protocol_version(uint16_t version) { protocol_version_ = version; }
  uint16_t protocol_version() const { return protocol_version_; }

  // Encodes and writes one request frame (blocking until fully written).
  Status Send(uint64_t request_id, int64_t deadline_nanos,
              const serve::InferenceRequest& request);

  // Reads exactly one response frame (blocking). kUnavailable on a clean
  // server-side close, kIoError on anything torn. `timeout_ms` <= 0 blocks
  // indefinitely; otherwise kDeadlineExceeded when no full frame arrives in
  // time (SO_RCVTIMEO granularity).
  Status Receive(WireResponse* response, int64_t timeout_ms = 0);

  // Convenience: Send + Receive and require the response to echo
  // request_id (valid under no pipelining).
  Status Call(uint64_t request_id, int64_t deadline_nanos,
              const serve::InferenceRequest& request, WireResponse* response);

  // Health introspection (v2+ frames; kInvalidArgument when this client is
  // pinned to v1). Sends a kHealthRequest and blocks for the matching
  // kHealthResponse — valid under no pipelining, like Call(). The server
  // may answer a typed error frame instead (e.g. BAD_FRAME from an old
  // server that predates health frames); that surfaces as the mapped
  // Status, not a decode failure.
  Status GetHealth(uint64_t request_id, WireHealth* health,
                   int64_t timeout_ms = 0);

  // Raw escape hatches for malformed-frame tests.
  Status SendBytes(const std::string& bytes);
  // Half-close the write side (the server sees EOF but can still respond).
  void ShutdownWrite();

 private:
  int fd_ = -1;
  uint16_t protocol_version_ = kProtocolVersion;
};

}  // namespace dtdbd::net

#endif  // DTDBD_NET_CLIENT_H_
