#include "net/socket_server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/logging.h"

namespace dtdbd::net {

namespace {

// Read/write chunk. One read may deliver several back-to-back frames; they
// are all parsed immediately, so the connection's inbuf never accumulates
// more than one partial frame plus this slack.
constexpr size_t kIoChunkBytes = 16 * 1024;

// epoll_event.data.u64 tags. Connection ids count up from 1, so the two
// non-connection fds live at the top of the u64 space where no id can
// ever collide with them.
constexpr uint64_t kWakeTag = UINT64_MAX;
constexpr uint64_t kListenTag = UINT64_MAX - 1;

// Clamp an arbitrary (possibly out-of-range) request header version into
// the range this endpoint speaks, for encoding best-effort error replies
// to peers whose version we rejected.
uint16_t ClampVersion(uint16_t version) {
  if (version < kMinProtocolVersion) return kMinProtocolVersion;
  if (version > kProtocolVersion) return kProtocolVersion;
  return version;
}

void CloseFd(int* fd) {
  if (*fd >= 0) {
    ::close(*fd);
    *fd = -1;
  }
}

}  // namespace

void SocketServer::CompletionSink::Push(Completion completion) {
  std::lock_guard<std::mutex> lock(mu);
  if (dead) return;  // teardown already happened; drop, never touch the fd
  ready.push_back(std::move(completion));
  // Nonblocking wake; a full pipe already guarantees a pending wakeup.
  const char byte = 'c';
  (void)!::write(wake_fd, &byte, 1);
}

SocketServer::SocketServer(serve::Server* server, SocketServerOptions options)
    : server_(server), options_(std::move(options)) {
  DTDBD_CHECK(server_ != nullptr);
  DTDBD_CHECK_GT(options_.max_connections, 0);
  DTDBD_CHECK_GT(options_.max_inflight_per_connection, 0);
  DTDBD_CHECK_GT(options_.idle_timeout_ms, 0);
}

SocketServer::~SocketServer() { Stop(); }

Status SocketServer::Start() {
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    DTDBD_CHECK(!started_) << "SocketServer::Start called twice";
    started_ = true;
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    return Status::IoError("socket() failed: " +
                           std::string(std::strerror(errno)));
  }
  const int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    CloseFd(&listen_fd_);
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status status = Status::IoError(
        "bind(" + options_.bind_address + ":" +
        std::to_string(options_.port) +
        ") failed: " + std::strerror(errno));
    CloseFd(&listen_fd_);
    return status;
  }
  if (::listen(listen_fd_, 128) != 0) {
    const Status status =
        Status::IoError("listen() failed: " + std::string(std::strerror(errno)));
    CloseFd(&listen_fd_);
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) != 0) {
    const Status status = Status::IoError("getsockname() failed");
    CloseFd(&listen_fd_);
    return status;
  }
  port_ = ntohs(addr.sin_port);

  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) != 0) {
    CloseFd(&listen_fd_);
    return Status::IoError("pipe2() failed: " +
                           std::string(std::strerror(errno)));
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    const Status status = Status::IoError(
        "epoll_create1() failed: " + std::string(std::strerror(errno)));
    CloseFd(&wake_read_fd_);
    CloseFd(&wake_write_fd_);
    CloseFd(&listen_fd_);
    return status;
  }
  // Level-triggered throughout: readiness is re-reported every wait until
  // consumed, so a handler that stops early (e.g. close_after_flush) never
  // strands buffered bytes the way edge-triggered would.
  if (!EpollUpdate(EPOLL_CTL_ADD, wake_read_fd_, EPOLLIN, kWakeTag) ||
      !EpollUpdate(EPOLL_CTL_ADD, listen_fd_, EPOLLIN, kListenTag)) {
    CloseFd(&epoll_fd_);
    CloseFd(&wake_read_fd_);
    CloseFd(&wake_write_fd_);
    CloseFd(&listen_fd_);
    return Status::IoError("epoll_ctl(ADD) failed at startup");
  }

  sink_ = std::make_shared<CompletionSink>();
  sink_->wake_fd = wake_write_fd_;

  io_thread_ = std::thread([this] { IoLoop(); });
  return Status::Ok();
}

int64_t SocketServer::NowMs() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SocketServer::Wake() {
  if (sink_ == nullptr) return;
  // Route through the sink lock so a wake can never race the pipe teardown.
  std::lock_guard<std::mutex> lock(sink_->mu);
  if (sink_->dead) return;
  const char byte = 'w';
  (void)!::write(sink_->wake_fd, &byte, 1);
}

NetStats SocketServer::Stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

bool SocketServer::EpollUpdate(int op, int fd, uint32_t events,
                               uint64_t tag) {
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.u64 = tag;
  if (::epoll_ctl(epoll_fd_, op, fd, &ev) != 0) {
    DTDBD_LOG(Warning) << "epoll_ctl(op=" << op << ", fd=" << fd
                       << ") failed: " << std::strerror(errno);
    return false;
  }
  return true;
}

void SocketServer::HandleAccept() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      // EMFILE/ENFILE/ECONNABORTED and friends: log and let the loop retry
      // on the next poll round rather than spinning.
      DTDBD_LOG(Warning) << "accept4 failed: " << std::strerror(errno);
      return;
    }
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (static_cast<int>(conns_.size()) >= options_.max_connections) {
      // Over the cap: answer one UNAVAILABLE frame best-effort and close.
      // The peer gets a typed reason instead of a silent RST or an unbounded
      // backlog wait. No request header has been read yet, so the peer's
      // version is unknown — encode at the minimum version, which every
      // client this endpoint tolerates can parse.
      const std::string frame = EncodeResponseFrame(
          /*request_id=*/0, WireCode::kUnavailable, 0, nullptr,
          "connection limit reached (" +
              std::to_string(options_.max_connections) + ")",
          kMinProtocolVersion);
      {
        // Count before close(2) so a peer that sees the EOF cannot observe
        // a Stats() snapshot missing its own rejection.
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.rejected_max_conns;
      }
      (void)!::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
      ::close(fd);
      continue;
    }
    Connection conn;
    conn.fd = fd;
    conn.id = next_conn_id_++;
    conn.last_activity_ms = NowMs();
    conn.epoll_events = EPOLLIN;
    if (!EpollUpdate(EPOLL_CTL_ADD, fd, EPOLLIN, conn.id)) {
      ::close(fd);
      continue;
    }
    conns_.emplace(conn.id, std::move(conn));
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.accepted;
    stats_.open_connections = static_cast<int64_t>(conns_.size());
  }
}

void SocketServer::CloseConnection(uint64_t conn_id, CloseReason reason) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  // Account BEFORE close(2): a peer that observes our EOF and immediately
  // queries Stats() must already see this close counted.
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    switch (reason) {
      case CloseReason::kPeer: ++stats_.closed_by_peer; break;
      case CloseReason::kIdle: ++stats_.closed_idle; break;
      case CloseReason::kProtocol: ++stats_.closed_protocol; break;
      case CloseReason::kOverflow: ++stats_.closed_outbox_overflow; break;
      case CloseReason::kDrain: break;  // orderly teardown, not an anomaly
    }
    stats_.open_connections = static_cast<int64_t>(conns_.size()) - 1;
  }
  CloseFd(&it->second.fd);
  conns_.erase(it);
}

void SocketServer::QueueResponse(Connection* conn, std::string frame) {
  conn->outbox_bytes += frame.size();
  conn->outbox.push_back(std::move(frame));
}

void SocketServer::SubmitRequest(Connection* conn, const FrameHeader& header,
                                 serve::InferenceRequest request) {
  ++conn->inflight;
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.requests_submitted;
  }
  // The callback runs on a worker thread (or inline right here for an
  // immediate rejection — the sink makes both re-entrancy-safe). Encoding
  // happens on the callback's thread, keeping serialization off the IO
  // thread's critical path.
  // The response is encoded under the version the REQUEST header named, so
  // a v1 client on a shared server never receives v2 bytes.
  server_->SubmitAsync(
      std::move(request), header.deadline_nanos,
      [sink = sink_, conn_id = conn->id, request_id = header.request_id,
       version = header.version, hint = options_.retry_after_ms_hint](
          StatusOr<serve::Prediction> result) {
        std::string frame;
        if (result.ok()) {
          frame = EncodeResponseFrame(request_id, WireCode::kOk, 0,
                                      &result.value(), "", version);
        } else {
          const WireCode code = WireCodeForStatus(result.status());
          frame = EncodeResponseFrame(
              request_id, code,
              code == WireCode::kRetryLater ? hint : 0, nullptr,
              result.status().message(), version);
        }
        sink->Push(Completion{conn_id, std::move(frame)});
      });
}

void SocketServer::AnswerHealthRequest(Connection* conn,
                                       const FrameHeader& header) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.health_requests;
  }
  const serve::HealthReport report = server_->Health();
  WireHealth health;
  health.cache_enabled = report.cache_enabled;
  health.degraded = report.degraded;
  health.cache_bytes_limit = report.cache_bytes_limit;
  health.cache_hits = report.cache_hits;
  health.cache_misses = report.cache_misses;
  health.cache_evicted = report.cache_evicted;
  health.cache_bytes = report.cache_bytes;
  health.deduped = report.deduped;
  health.served_ok = report.served_ok;
  health.queue_depth = report.queue_depth;
  health.quality_degraded = report.quality_degraded;
  health.int8_active = report.int8_active;
  health.feedback_recorded = report.feedback_recorded;
  health.models.reserve(report.models.size());
  for (const serve::ModelHealth& m : report.models) {
    WireModelHealth wm;
    wm.name = m.name;
    wm.cache_enabled = m.cache.enabled;
    wm.hits = m.cache.hits;
    wm.misses = m.cache.misses;
    wm.inserted = m.cache.inserted;
    wm.evicted = m.cache.evicted;
    wm.invalidated = m.cache.invalidated;
    wm.bytes = m.cache.bytes;
    wm.entries = m.cache.entries;
    wm.deduped = m.cache.deduped;
    wm.quality_degraded = m.quality.quality_degraded;
    wm.quality_auc_valid = m.quality.auc_valid;
    wm.bias_spread_valid = m.quality.bias_spread_valid;
    wm.feedback_total = m.quality.feedback_total;
    wm.quality_window_samples = m.quality.window_samples;
    wm.quality_auc = m.quality.auc;
    wm.bias_spread = m.quality.bias_spread;
    wm.int8_active = m.int8_active;
    wm.quantized_bytes = m.quantized_bytes;
    health.models.push_back(std::move(wm));
  }
  QueueResponse(conn, EncodeHealthResponseFrame(header.request_id, health,
                                                header.version));
}

bool SocketServer::ParseFrames(Connection* conn) {
  for (;;) {
    if (!conn->have_header) {
      if (conn->inbuf.size() < kFrameHeaderSize) return true;
      DecodeFrameHeader(conn->inbuf.data(), &conn->header);
      bool trusted_framing = false;
      const Status header_ok = ValidateHeader(
          conn->header, options_.max_frame_bytes, &trusted_framing);
      if (!header_ok.ok()) {
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.bad_frames;
        }
        if (!trusted_framing) {
          // Bad magic / hostile length: the stream cannot be re-framed, so
          // nothing we send is guaranteed to be parsed — close immediately.
          CloseConnection(conn->id, CloseReason::kProtocol);
          return false;
        }
        // Framing intact (e.g. clean version mismatch): answer a typed
        // error frame, then close once it flushes — the peer learns why.
        // The peer's version may be the very thing that was rejected, so
        // clamp it into the supported range for the reply.
        QueueResponse(conn,
                      EncodeResponseFrame(conn->header.request_id,
                                          WireCode::kBadFrame, 0, nullptr,
                                          header_ok.message(),
                                          ClampVersion(conn->header.version)));
        conn->close_after_flush = true;
        return true;
      }
      // Health frames are v2+: a v1 header naming type 3 falls through to
      // the generic unexpected-type rejection below.
      const bool health_request =
          conn->header.type == FrameType::kHealthRequest &&
          conn->header.version >= 2;
      if (conn->header.type != FrameType::kRequest && !health_request) {
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.bad_frames;
        }
        QueueResponse(conn, EncodeResponseFrame(
                                conn->header.request_id, WireCode::kBadFrame,
                                0, nullptr, "expected a request frame",
                                conn->header.version));
        conn->close_after_flush = true;
        return true;
      }
      conn->have_header = true;
      conn->inbuf.erase(conn->inbuf.begin(),
                        conn->inbuf.begin() + kFrameHeaderSize);
    }
    if (conn->inbuf.size() < conn->header.payload_len) return true;

    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.frames_received;
    }
    if (conn->header.type == FrameType::kHealthRequest) {
      if (conn->header.payload_len != 0) {
        // The stream is still framed by the (nonzero) length prefix, so the
        // connection survives — but a health request carries no payload.
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.bad_frames;
        QueueResponse(conn,
                      EncodeResponseFrame(conn->header.request_id,
                                          WireCode::kBadFrame, 0, nullptr,
                                          "health request must carry no "
                                          "payload",
                                          conn->header.version));
      } else {
        AnswerHealthRequest(conn, conn->header);
      }
      conn->inbuf.erase(conn->inbuf.begin(),
                        conn->inbuf.begin() + conn->header.payload_len);
      conn->have_header = false;
      continue;
    }
    serve::InferenceRequest request;
    const Status decoded =
        DecodeRequestPayload(conn->inbuf.data(), conn->header.payload_len,
                             &request, conn->header.version);
    if (!decoded.ok()) {
      // Garbage payload under a valid header: the length prefix still
      // frames the stream, so the connection survives the error.
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.bad_frames;
      }
      QueueResponse(conn, EncodeResponseFrame(conn->header.request_id,
                                              WireCode::kBadFrame, 0, nullptr,
                                              decoded.message(),
                                              conn->header.version));
    } else if (draining_) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.drain_rejected;
      }
      QueueResponse(conn,
                    EncodeResponseFrame(conn->header.request_id,
                                        WireCode::kUnavailable, 0, nullptr,
                                        "server is draining",
                                        conn->header.version));
    } else if (conn->inflight >= options_.max_inflight_per_connection) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.inflight_rejected;
      }
      QueueResponse(conn, EncodeResponseFrame(
                              conn->header.request_id, WireCode::kRetryLater,
                              options_.retry_after_ms_hint, nullptr,
                              "per-connection in-flight limit (" +
                                  std::to_string(
                                      options_.max_inflight_per_connection) +
                                  ") reached",
                              conn->header.version));
    } else {
      SubmitRequest(conn, conn->header, std::move(request));
    }
    conn->inbuf.erase(conn->inbuf.begin(),
                      conn->inbuf.begin() + conn->header.payload_len);
    conn->have_header = false;
  }
}

bool SocketServer::HandleReadable(Connection* conn) {
  uint8_t chunk[kIoChunkBytes];
  for (;;) {
    const ssize_t n = ::read(conn->fd, chunk, sizeof(chunk));
    if (n > 0) {
      conn->last_activity_ms = NowMs();
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        stats_.bytes_read += n;
      }
      conn->inbuf.insert(conn->inbuf.end(), chunk, chunk + n);
      if (!ParseFrames(conn)) return false;  // closed on protocol error
      if (conn->close_after_flush) return true;  // stop reading a doomed conn
      continue;
    }
    if (n == 0) {
      // Peer closed. Any in-flight completion for this connection will find
      // it gone and be counted responses_dropped_disconnect.
      CloseConnection(conn->id, CloseReason::kPeer);
      return false;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    CloseConnection(conn->id, CloseReason::kPeer);
    return false;
  }
}

bool SocketServer::HandleWritable(Connection* conn) {
  while (!conn->outbox.empty()) {
    const std::string& front = conn->outbox.front();
    const ssize_t n =
        ::send(conn->fd, front.data() + conn->outbox_offset,
               front.size() - conn->outbox_offset, MSG_NOSIGNAL);
    if (n > 0) {
      conn->last_activity_ms = NowMs();
      conn->outbox_offset += static_cast<size_t>(n);
      conn->outbox_bytes -= static_cast<size_t>(n);
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        stats_.bytes_written += n;
      }
      if (conn->outbox_offset == front.size()) {
        conn->outbox.pop_front();
        conn->outbox_offset = 0;
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.responses_sent;
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    // EPIPE/ECONNRESET: the reader vanished; MSG_NOSIGNAL turned the would-
    // be SIGPIPE into this errno.
    CloseConnection(conn->id, CloseReason::kPeer);
    return false;
  }
  if (conn->close_after_flush) {
    CloseConnection(conn->id, CloseReason::kProtocol);
    return false;
  }
  return true;
}

void SocketServer::DrainCompletions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(sink_->mu);
    batch.swap(sink_->ready);
  }
  for (Completion& completion : batch) {
    outstanding_.fetch_sub(1, std::memory_order_acq_rel);
    auto it = conns_.find(completion.conn_id);
    if (it == conns_.end()) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.responses_dropped_disconnect;
      continue;
    }
    Connection& conn = it->second;
    --conn.inflight;
    // A completion IS activity. Without this refresh, a response that took
    // longer than idle_timeout_ms to produce (a dedup follower fanned out
    // behind a slow leader, a deep queue) drops inflight to 0 while
    // last_activity_ms still reads from the request's arrival — and the
    // idle sweep later this same round closes the connection with the
    // response sitting unflushed in the outbox.
    conn.last_activity_ms = NowMs();
    QueueResponse(&conn, std::move(completion.frame));
    if (conn.outbox_bytes > options_.max_outbox_bytes) {
      // The peer stopped reading while piling on requests; buffering more
      // would let one connection eat the process heap.
      CloseConnection(conn.id, CloseReason::kOverflow);
    }
  }
}

void SocketServer::IoLoop() {
  bool listen_open = true;
  std::vector<epoll_event> events(64);
  for (;;) {
    bool draining;
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      draining = draining_;
      if (stop_) break;
    }
    if (draining && listen_open) {
      // close(2) removes the fd from the epoll interest set automatically.
      CloseFd(&listen_fd_);
      listen_open = false;
    }

    // Reconcile each connection's registered interest set with what its
    // state machine currently wants. Level-triggered epoll makes this the
    // only bookkeeping: a MOD fires only when the desired set changed
    // (outbox drained, teardown started), not every round like poll's
    // rebuilt pollfd array.
    const int64_t now = NowMs();
    int64_t timeout_ms = 100;
    for (auto& [id, conn] : conns_) {
      uint32_t want = 0;
      // A connection being torn down after a protocol error only flushes;
      // everyone else keeps reading (frames pipeline freely).
      if (!conn.close_after_flush) want |= EPOLLIN;
      if (!conn.outbox.empty()) want |= EPOLLOUT;
      if (want != conn.epoll_events &&
          EpollUpdate(EPOLL_CTL_MOD, conn.fd, want, id)) {
        conn.epoll_events = want;
      }
      if (conn.inflight == 0) {
        const int64_t deadline =
            conn.last_activity_ms + options_.idle_timeout_ms;
        timeout_ms = std::min(timeout_ms, std::max<int64_t>(deadline - now, 1));
      }
    }

    const int ready = ::epoll_wait(epoll_fd_, events.data(),
                                   static_cast<int>(events.size()),
                                   static_cast<int>(timeout_ms));
    if (ready < 0 && errno != EINTR) {
      DTDBD_LOG(Error) << "epoll_wait failed: " << std::strerror(errno);
      break;
    }

    if (ready > 0) {
      // First pass: service the wake pipe and the listener before any
      // connection work, preserving the poll loop's ordering (completions
      // are routed before connection events are handled).
      bool accept_ready = false;
      for (int i = 0; i < ready; ++i) {
        const uint64_t tag = events[i].data.u64;
        if (tag == kWakeTag && (events[i].events & EPOLLIN)) {
          uint8_t sink_bytes[256];
          while (::read(wake_read_fd_, sink_bytes, sizeof(sink_bytes)) > 0) {
          }
        } else if (tag == kListenTag && (events[i].events & EPOLLIN)) {
          accept_ready = true;
        }
      }
      if (accept_ready && listen_open) HandleAccept();
      DrainCompletions();
      for (int i = 0; i < ready; ++i) {
        const uint64_t tag = events[i].data.u64;
        if (tag == kWakeTag || tag == kListenTag) continue;
        auto it = conns_.find(tag);
        if (it == conns_.end()) continue;  // closed earlier this round
        const uint32_t revents = events[i].events;
        if (revents & (EPOLLERR | EPOLLHUP)) {
          // EPOLLHUP with readable data still pending is handled by the
          // read path (read() returns the data, then 0); a bare error means
          // the peer is gone.
          if (!(revents & EPOLLIN)) {
            CloseConnection(tag, CloseReason::kPeer);
            continue;
          }
        }
        if (revents & EPOLLIN) {
          if (!HandleReadable(&it->second)) continue;
        }
        if (revents & EPOLLOUT) {
          if (!HandleWritable(&it->second)) continue;
        }
      }
      // A full event buffer means more readiness may be pending; grow so a
      // busy fleet is not drip-fed 64 events a round. Level-triggered epoll
      // re-reports whatever this round missed, so this is throughput tuning,
      // not correctness.
      if (ready == static_cast<int>(events.size())) {
        events.resize(events.size() * 2);
      }
    } else {
      // Timeout round: still route completions so responses are not gated
      // on socket readiness.
      DrainCompletions();
    }

    // Idle sweep + drain progress. Collect ids first: CloseConnection
    // mutates conns_.
    std::vector<std::pair<uint64_t, CloseReason>> to_close;
    const int64_t sweep_now = NowMs();
    for (auto& [id, conn] : conns_) {
      if (conn.close_after_flush && conn.outbox.empty()) {
        // Outbox already flushed (or nothing ever queued), so no POLLOUT
        // will fire to finish the teardown — do it here.
        to_close.emplace_back(id, CloseReason::kProtocol);
      } else if (draining && conn.inflight == 0 && conn.outbox.empty()) {
        to_close.emplace_back(id, CloseReason::kDrain);
      } else if (conn.inflight == 0 &&
                 sweep_now - conn.last_activity_ms >
                     options_.idle_timeout_ms) {
        to_close.emplace_back(id, CloseReason::kIdle);
      }
    }
    for (const auto& [id, reason] : to_close) CloseConnection(id, reason);

    if (draining && conns_.empty() &&
        outstanding_.load(std::memory_order_acquire) == 0) {
      std::lock_guard<std::mutex> lock(state_mu_);
      drained_ = true;
      state_cv_.notify_all();
    }
  }

  // Force-exit: close every remaining fd exactly once.
  for (auto& [id, conn] : conns_) CloseFd(&conn.fd);
  conns_.clear();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.open_connections = 0;
  }
  CloseFd(&listen_fd_);
  listen_open = false;
}

void SocketServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (!started_ || stopped_) {
      stopped_ = true;
      return;
    }
    draining_ = true;
  }
  if (io_thread_.joinable()) {
    Wake();
    {
      // Drain: wait for every submitted request to be answered and every
      // connection to quiesce, bounded by drain_timeout_ms. `drained_` is
      // reported by the IO thread — only it may look at conns_.
      std::unique_lock<std::mutex> lock(state_mu_);
      state_cv_.wait_for(lock,
                         std::chrono::milliseconds(options_.drain_timeout_ms),
                         [this] { return drained_; });
      stop_ = true;
    }
    Wake();
    io_thread_.join();
  }
  if (sink_ != nullptr) {
    // Completions that arrive after this point (e.g. the inner server
    // failing leftover work at ITS Stop()) are dropped at the sink.
    std::lock_guard<std::mutex> lock(sink_->mu);
    sink_->dead = true;
    sink_->wake_fd = -1;
  }
  CloseFd(&wake_read_fd_);
  CloseFd(&wake_write_fd_);
  CloseFd(&epoll_fd_);
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    stopped_ = true;
  }
}

}  // namespace dtdbd::net
