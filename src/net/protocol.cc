#include "net/protocol.h"

#include <algorithm>
#include <cstring>

namespace dtdbd::net {

namespace {

// Explicit little-endian stores/loads: the wire format is defined in bytes,
// not in whatever the host happens to lay out (and memcpy keeps every access
// aligned and strict-aliasing clean).
void StoreU16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
}
void StoreU32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}
void StoreU64(uint8_t* p, uint64_t v) {
  StoreU32(p, static_cast<uint32_t>(v));
  StoreU32(p + 4, static_cast<uint32_t>(v >> 32));
}
void StoreI32(uint8_t* p, int32_t v) { StoreU32(p, static_cast<uint32_t>(v)); }
void StoreI64(uint8_t* p, int64_t v) { StoreU64(p, static_cast<uint64_t>(v)); }
void StoreF32(uint8_t* p, float v) {
  uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  StoreU32(p, bits);
}
void StoreF64(uint8_t* p, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  StoreU64(p, bits);
}

uint16_t LoadU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}
uint32_t LoadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}
uint64_t LoadU64(const uint8_t* p) {
  return static_cast<uint64_t>(LoadU32(p)) |
         (static_cast<uint64_t>(LoadU32(p + 4)) << 32);
}
int32_t LoadI32(const uint8_t* p) { return static_cast<int32_t>(LoadU32(p)); }
int64_t LoadI64(const uint8_t* p) { return static_cast<int64_t>(LoadU64(p)); }
float LoadF32(const uint8_t* p) {
  const uint32_t bits = LoadU32(p);
  float v = 0.0f;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}
double LoadF64(const uint8_t* p) {
  const uint64_t bits = LoadU64(p);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void AppendBytes(std::string* out, const uint8_t* data, size_t len) {
  out->append(reinterpret_cast<const char*>(data), len);
}

}  // namespace

const char* WireCodeName(WireCode code) {
  switch (code) {
    case WireCode::kOk: return "OK";
    case WireCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case WireCode::kRetryLater: return "RETRY_LATER";
    case WireCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case WireCode::kUnavailable: return "UNAVAILABLE";
    case WireCode::kInternal: return "INTERNAL";
    case WireCode::kBadFrame: return "BAD_FRAME";
    case WireCode::kNotFound: return "NOT_FOUND";
  }
  return "UNKNOWN";
}

WireCode WireCodeForStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk: return WireCode::kOk;
    case StatusCode::kInvalidArgument: return WireCode::kInvalidArgument;
    case StatusCode::kResourceExhausted: return WireCode::kRetryLater;
    case StatusCode::kDeadlineExceeded: return WireCode::kDeadlineExceeded;
    case StatusCode::kUnavailable: return WireCode::kUnavailable;
    case StatusCode::kNotFound: return WireCode::kNotFound;
    default: return WireCode::kInternal;
  }
}

void EncodeFrameHeader(const FrameHeader& header, uint8_t* out) {
  StoreU32(out + 0, header.magic);
  StoreU16(out + 4, header.version);
  StoreU16(out + 6, static_cast<uint16_t>(header.type));
  StoreU64(out + 8, header.request_id);
  StoreI64(out + 16, header.deadline_nanos);
  StoreU32(out + 24, header.payload_len);
  StoreU32(out + 28, header.reserved);
}

void DecodeFrameHeader(const uint8_t* data, FrameHeader* header) {
  header->magic = LoadU32(data + 0);
  header->version = LoadU16(data + 4);
  header->type = static_cast<FrameType>(LoadU16(data + 6));
  header->request_id = LoadU64(data + 8);
  header->deadline_nanos = LoadI64(data + 16);
  header->payload_len = LoadU32(data + 24);
  header->reserved = LoadU32(data + 28);
}

Status ValidateHeader(const FrameHeader& header, uint32_t max_frame_bytes,
                      bool* trusted_framing) {
  *trusted_framing = false;
  if (header.magic != kMagic) {
    return Status::InvalidArgument("bad magic: not a DTDB frame");
  }
  if (header.reserved != 0) {
    return Status::InvalidArgument("reserved header bytes must be zero");
  }
  if (header.payload_len > max_frame_bytes) {
    return Status::InvalidArgument(
        "frame payload " + std::to_string(header.payload_len) +
        " exceeds max frame bytes " + std::to_string(max_frame_bytes));
  }
  // From here the length prefix is believable even if the frame is
  // unserviceable, so the peer deserves an error frame before the close.
  *trusted_framing = true;
  if (header.version < kMinProtocolVersion ||
      header.version > kProtocolVersion) {
    return Status::InvalidArgument(
        "unsupported protocol version " + std::to_string(header.version) +
        " (speaking " + std::to_string(kMinProtocolVersion) + ".." +
        std::to_string(kProtocolVersion) + ")");
  }
  return Status::Ok();
}

std::string EncodeRequestFrame(uint64_t request_id, int64_t deadline_nanos,
                               const serve::InferenceRequest& request,
                               uint16_t version) {
  // Version 1 has no model-name field: the request silently routes to the
  // server's default model, exactly like a pre-fleet client.
  const size_t name_len =
      version >= 2 ? std::min<size_t>(request.model_name.size(), UINT16_MAX)
                   : 0;
  size_t payload_len =
      16 + 4 * (request.tokens.size() + request.style.size() +
                request.emotion.size());
  if (version >= 2) payload_len += 2 + name_len;
  FrameHeader header;
  header.version = version;
  header.type = FrameType::kRequest;
  header.request_id = request_id;
  header.deadline_nanos = deadline_nanos;
  header.payload_len = static_cast<uint32_t>(payload_len);

  std::string frame;
  frame.reserve(kFrameHeaderSize + payload_len);
  uint8_t scratch[kFrameHeaderSize];
  EncodeFrameHeader(header, scratch);
  AppendBytes(&frame, scratch, kFrameHeaderSize);

  uint8_t word[8];
  StoreI32(word, request.domain);
  AppendBytes(&frame, word, 4);
  StoreU32(word, static_cast<uint32_t>(request.tokens.size()));
  AppendBytes(&frame, word, 4);
  StoreU32(word, static_cast<uint32_t>(request.style.size()));
  AppendBytes(&frame, word, 4);
  StoreU32(word, static_cast<uint32_t>(request.emotion.size()));
  AppendBytes(&frame, word, 4);
  for (const int token : request.tokens) {
    StoreI32(word, token);
    AppendBytes(&frame, word, 4);
  }
  for (const float v : request.style) {
    StoreF32(word, v);
    AppendBytes(&frame, word, 4);
  }
  for (const float v : request.emotion) {
    StoreF32(word, v);
    AppendBytes(&frame, word, 4);
  }
  if (version >= 2) {
    StoreU16(word, static_cast<uint16_t>(name_len));
    AppendBytes(&frame, word, 2);
    frame.append(request.model_name.data(), name_len);
  }
  return frame;
}

Status DecodeRequestPayload(const uint8_t* data, size_t len,
                            serve::InferenceRequest* request,
                            uint16_t version) {
  if (len < 16) {
    return Status::InvalidArgument("request payload shorter than its header");
  }
  const int32_t domain = LoadI32(data + 0);
  const uint64_t num_tokens = LoadU32(data + 4);
  const uint64_t style_dim = LoadU32(data + 8);
  const uint64_t emotion_dim = LoadU32(data + 12);
  // Reconcile the advertised counts with the actual byte count in 64-bit so
  // hostile counts near UINT32_MAX cannot wrap the arithmetic.
  const uint64_t arrays_end =
      16 + 4 * (num_tokens + style_dim + emotion_dim);
  uint64_t name_len = 0;
  if (version >= 2) {
    // v2: the model-name field follows the arrays. Its length prefix must
    // itself fit before the total length is reconciled.
    if (arrays_end + 2 > len) {
      return Status::InvalidArgument(
          "request payload length " + std::to_string(len) +
          " cannot hold the advertised counts plus a model-name field");
    }
    name_len = LoadU16(data + arrays_end);
    if (arrays_end + 2 + name_len != len) {
      return Status::InvalidArgument(
          "request payload length " + std::to_string(len) +
          " does not match advertised counts (" +
          std::to_string(arrays_end + 2 + name_len) + ")");
    }
  } else if (arrays_end != len) {
    return Status::InvalidArgument(
        "request payload length " + std::to_string(len) +
        " does not match advertised counts (" + std::to_string(arrays_end) +
        ")");
  }
  request->domain = domain;
  request->tokens.resize(num_tokens);
  request->style.resize(style_dim);
  request->emotion.resize(emotion_dim);
  const uint8_t* p = data + 16;
  for (uint64_t i = 0; i < num_tokens; ++i, p += 4) {
    request->tokens[i] = LoadI32(p);
  }
  for (uint64_t i = 0; i < style_dim; ++i, p += 4) {
    request->style[i] = LoadF32(p);
  }
  for (uint64_t i = 0; i < emotion_dim; ++i, p += 4) {
    request->emotion[i] = LoadF32(p);
  }
  if (version >= 2) {
    request->model_name.assign(
        reinterpret_cast<const char*>(data + arrays_end + 2), name_len);
  } else {
    request->model_name.clear();  // v1: route to the default model
  }
  return Status::Ok();
}

std::string EncodeResponseFrame(uint64_t request_id, WireCode code,
                                uint32_t retry_after_ms,
                                const serve::Prediction* prediction,
                                const std::string& message,
                                uint16_t version) {
  const size_t name_len =
      version >= 2 && prediction != nullptr
          ? std::min<size_t>(prediction->model_name.size(), UINT16_MAX)
          : 0;
  size_t payload_len = 28 + message.size();
  if (version >= 2) payload_len += 2 + name_len;
  FrameHeader header;
  header.version = version;
  header.type = FrameType::kResponse;
  header.request_id = request_id;
  header.payload_len = static_cast<uint32_t>(payload_len);

  std::string frame;
  frame.reserve(kFrameHeaderSize + payload_len);
  uint8_t scratch[kFrameHeaderSize];
  EncodeFrameHeader(header, scratch);
  AppendBytes(&frame, scratch, kFrameHeaderSize);

  uint8_t word[8];
  StoreU16(word, static_cast<uint16_t>(code));
  // v2 reuses the reserved u16 as flags (bit 0 = canary-served); v1
  // encoders always wrote 0 here, which is why the reuse is compatible.
  const uint16_t flags =
      version >= 2 && prediction != nullptr && prediction->canary ? 1 : 0;
  StoreU16(word + 2, flags);
  AppendBytes(&frame, word, 4);
  StoreU32(word, retry_after_ms);
  AppendBytes(&frame, word, 4);
  StoreF32(word, prediction != nullptr ? prediction->p_fake : 0.0f);
  AppendBytes(&frame, word, 4);
  StoreI32(word, prediction != nullptr ? prediction->label : 0);
  AppendBytes(&frame, word, 4);
  StoreI64(word, prediction != nullptr ? prediction->model_version : 0);
  AppendBytes(&frame, word, 8);
  StoreU32(word, static_cast<uint32_t>(message.size()));
  AppendBytes(&frame, word, 4);
  frame += message;
  if (version >= 2) {
    StoreU16(word, static_cast<uint16_t>(name_len));
    AppendBytes(&frame, word, 2);
    if (prediction != nullptr) {
      frame.append(prediction->model_name.data(), name_len);
    }
  }
  return frame;
}

Status DecodeResponsePayload(const uint8_t* data, size_t len,
                             WireResponse* response, uint16_t version) {
  if (len < 28) {
    return Status::InvalidArgument("response payload shorter than fixed part");
  }
  response->code = static_cast<WireCode>(LoadU16(data + 0));
  const uint16_t flags = LoadU16(data + 2);
  response->retry_after_ms = LoadU32(data + 4);
  response->prediction.p_fake = LoadF32(data + 8);
  response->prediction.label = LoadI32(data + 12);
  response->prediction.model_version = LoadI64(data + 16);
  response->prediction.canary = version >= 2 && (flags & 1) != 0;
  const uint64_t message_len = LoadU32(data + 24);
  const uint64_t message_end = 28 + message_len;
  if (version >= 2) {
    if (message_end + 2 > len) {
      return Status::InvalidArgument(
          "response payload cannot hold its message plus a model-name field");
    }
    const uint64_t name_len = LoadU16(data + message_end);
    if (message_end + 2 + name_len != len) {
      return Status::InvalidArgument(
          "response model-name length does not match payload length");
    }
    response->prediction.model_name.assign(
        reinterpret_cast<const char*>(data + message_end + 2), name_len);
  } else {
    if (message_end != len) {
      return Status::InvalidArgument(
          "response message length does not match payload length");
    }
    response->prediction.model_name.clear();
  }
  response->message.assign(reinterpret_cast<const char*>(data + 28),
                           message_len);
  return Status::Ok();
}

std::string EncodeHealthRequestFrame(uint64_t request_id, uint16_t version) {
  FrameHeader header;
  header.version = version;
  header.type = FrameType::kHealthRequest;
  header.request_id = request_id;
  header.payload_len = 0;
  std::string frame;
  uint8_t scratch[kFrameHeaderSize];
  EncodeFrameHeader(header, scratch);
  AppendBytes(&frame, scratch, kFrameHeaderSize);
  return frame;
}

namespace {

// Fixed top-level section of the health payload, before the models array:
// 8 flag/count bytes + 9 i64 counters.
constexpr size_t kHealthFixedBytes = 8 + 9 * 8;
// Fixed per-model section, after the variable-length name: name_len + 2
// flag bytes + 8 cache i64s + 2 quality i64s + 2 quality f64s + 1 int8 i64.
constexpr size_t kHealthPerModelFixedBytes =
    2 + 2 + 8 * 8 + 2 * 8 + 2 * 8 + 8;
// Flag/metric section of one model record, excluding the u16 name_len.
constexpr size_t kHealthPerModelTailBytes = kHealthPerModelFixedBytes - 2;

}  // namespace

std::string EncodeHealthResponseFrame(uint64_t request_id,
                                      const WireHealth& health,
                                      uint16_t version) {
  size_t payload_len = kHealthFixedBytes;
  for (const WireModelHealth& m : health.models) {
    payload_len +=
        kHealthPerModelFixedBytes + std::min<size_t>(m.name.size(), UINT16_MAX);
  }
  FrameHeader header;
  header.version = version;
  header.type = FrameType::kHealthResponse;
  header.request_id = request_id;
  header.payload_len = static_cast<uint32_t>(payload_len);

  std::string frame;
  frame.reserve(kFrameHeaderSize + payload_len);
  uint8_t scratch[kFrameHeaderSize];
  EncodeFrameHeader(header, scratch);
  AppendBytes(&frame, scratch, kFrameHeaderSize);

  uint8_t word[8];
  word[0] = health.cache_enabled ? 1 : 0;
  word[1] = health.degraded ? 1 : 0;
  word[2] = health.quality_degraded ? 1 : 0;
  word[3] = health.int8_active ? 1 : 0;
  StoreU32(word + 4, static_cast<uint32_t>(health.models.size()));
  AppendBytes(&frame, word, 8);
  const int64_t top[9] = {health.cache_bytes_limit, health.cache_hits,
                          health.cache_misses,      health.cache_evicted,
                          health.cache_bytes,       health.deduped,
                          health.served_ok,         health.queue_depth,
                          health.feedback_recorded};
  for (const int64_t v : top) {
    StoreI64(word, v);
    AppendBytes(&frame, word, 8);
  }
  for (const WireModelHealth& m : health.models) {
    const size_t name_len = std::min<size_t>(m.name.size(), UINT16_MAX);
    StoreU16(word, static_cast<uint16_t>(name_len));
    AppendBytes(&frame, word, 2);
    frame.append(m.name.data(), name_len);
    word[0] = m.cache_enabled ? 1 : 0;
    word[1] = static_cast<uint8_t>((m.quality_degraded ? 1 : 0) |
                                   (m.quality_auc_valid ? 2 : 0) |
                                   (m.bias_spread_valid ? 4 : 0) |
                                   (m.int8_active ? 8 : 0));
    AppendBytes(&frame, word, 2);
    const int64_t fields[10] = {m.hits,        m.misses,  m.inserted,
                                m.evicted,     m.invalidated,
                                m.bytes,       m.entries, m.deduped,
                                m.feedback_total, m.quality_window_samples};
    for (const int64_t v : fields) {
      StoreI64(word, v);
      AppendBytes(&frame, word, 8);
    }
    StoreF64(word, m.quality_auc);
    AppendBytes(&frame, word, 8);
    StoreF64(word, m.bias_spread);
    AppendBytes(&frame, word, 8);
    StoreI64(word, m.quantized_bytes);
    AppendBytes(&frame, word, 8);
  }
  return frame;
}

Status DecodeHealthResponsePayload(const uint8_t* data, size_t len,
                                   WireHealth* health) {
  if (len < kHealthFixedBytes) {
    return Status::InvalidArgument("health payload shorter than fixed part");
  }
  health->cache_enabled = data[0] != 0;
  health->degraded = data[1] != 0;
  health->quality_degraded = data[2] != 0;
  health->int8_active = data[3] != 0;
  const uint64_t num_models = LoadU32(data + 4);
  const uint8_t* p = data + 8;
  health->cache_bytes_limit = LoadI64(p + 0);
  health->cache_hits = LoadI64(p + 8);
  health->cache_misses = LoadI64(p + 16);
  health->cache_evicted = LoadI64(p + 24);
  health->cache_bytes = LoadI64(p + 32);
  health->deduped = LoadI64(p + 40);
  health->served_ok = LoadI64(p + 48);
  health->queue_depth = LoadI64(p + 56);
  health->feedback_recorded = LoadI64(p + 64);
  p += 72;
  health->models.clear();
  health->models.reserve(num_models);
  const uint8_t* end = data + len;
  for (uint64_t i = 0; i < num_models; ++i) {
    if (p + 2 > end) {
      return Status::InvalidArgument(
          "health payload truncated inside the models array");
    }
    const uint64_t name_len = LoadU16(p);
    p += 2;
    if (p + name_len + kHealthPerModelTailBytes > end) {
      return Status::InvalidArgument(
          "health payload truncated inside a model record");
    }
    WireModelHealth m;
    m.name.assign(reinterpret_cast<const char*>(p), name_len);
    p += name_len;
    m.cache_enabled = p[0] != 0;
    m.quality_degraded = (p[1] & 1) != 0;
    m.quality_auc_valid = (p[1] & 2) != 0;
    m.bias_spread_valid = (p[1] & 4) != 0;
    m.int8_active = (p[1] & 8) != 0;
    p += 2;
    m.hits = LoadI64(p + 0);
    m.misses = LoadI64(p + 8);
    m.inserted = LoadI64(p + 16);
    m.evicted = LoadI64(p + 24);
    m.invalidated = LoadI64(p + 32);
    m.bytes = LoadI64(p + 40);
    m.entries = LoadI64(p + 48);
    m.deduped = LoadI64(p + 56);
    m.feedback_total = LoadI64(p + 64);
    m.quality_window_samples = LoadI64(p + 72);
    m.quality_auc = LoadF64(p + 80);
    m.bias_spread = LoadF64(p + 88);
    m.quantized_bytes = LoadI64(p + 96);
    p += 104;
    health->models.push_back(std::move(m));
  }
  if (p != end) {
    return Status::InvalidArgument(
        "health payload length does not match its model count");
  }
  return Status::Ok();
}

}  // namespace dtdbd::net
