// Length-prefixed binary wire protocol for the serving front end.
//
// Every frame is a fixed 32-byte header followed by `payload_len` bytes of
// typed payload. All integers are little-endian, all floats IEEE-754
// single-precision, serialized byte-exactly — the response carries the same
// float the in-process Submit() produced, so wire answers are bitwise
// comparable to offline references (the §9.4 parity contract extends to the
// socket).
//
//   offset  size  field
//        0     4  magic          0x42445444 ("DTDB" on the wire)
//        4     2  version        kProtocolVersion
//        6     2  type           FrameType
//        8     8  request_id     client-chosen, echoed verbatim in response
//       16     8  deadline_nanos absolute per the server's monotonic clock;
//                                0 = no deadline (loopback clients share the
//                                machine's steady clock, so "absolute" is
//                                well-defined; cross-machine callers send 0
//                                or over-provision for skew)
//       24     4  payload_len    bytes following the header
//       28     4  reserved       must be 0
//
// Request payload (type kRequest), version 1:
//   i32 domain, u32 num_tokens, u32 style_dim, u32 emotion_dim,
//   i32 tokens[num_tokens], f32 style[style_dim], f32 emotion[emotion_dim]
// Version 2 appends the fleet-routing field AFTER the v1 arrays (the v1
// prefix is byte-identical, so a v2 decoder reads v1 frames by stopping
// early and a v1 frame simply routes to the default model):
//   u16 model_name_len, char model_name[model_name_len]
//
// Response payload (type kResponse), version 1:
//   u16 code (WireCode), u16 reserved, u32 retry_after_ms,
//   f32 p_fake, i32 label, i64 model_version,
//   u32 message_len, char message[message_len]
// Version 2 reuses the reserved u16 at payload offset 2 as `flags`
// (bit 0 = answered by the canary variant; v1 encoders always wrote 0
// there) and appends after the message:
//   u16 model_name_len, char model_name[model_name_len]
//
// Version negotiation is per-frame and server-side passive: the server
// accepts any version in [kMinProtocolVersion, kProtocolVersion], decodes
// the request under the version its header names, and encodes the
// response under that SAME version — an old client never sees a byte it
// cannot parse, and mixed-version clients can share one connection.
//
// The header is validated *before* any payload byte is buffered, so an
// oversized or garbage length can never balloon a read buffer. Header
// trouble falls in two classes: framing still trusted (clean version
// mismatch, non-request type) -> answer a kBadFrame error frame, then close;
// framing untrusted (bad magic, reserved != 0, payload_len > max) -> the
// byte stream cannot be resynchronized, close immediately. A payload that
// decodes inconsistently under a valid header gets a kBadFrame error frame
// and the connection SURVIVES — the length prefix still frames the stream.
#ifndef DTDBD_NET_PROTOCOL_H_
#define DTDBD_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "serve/session.h"
#include "serve/validation.h"

namespace dtdbd::net {

inline constexpr uint32_t kMagic = 0x42445444;  // "DTDB" little-endian
inline constexpr uint16_t kProtocolVersion = 2;
// Oldest version this endpoint still decodes (version-tolerant decode:
// pre-fleet v1 clients keep working against a v2 server).
inline constexpr uint16_t kMinProtocolVersion = 1;
inline constexpr size_t kFrameHeaderSize = 32;
// Default ceiling on payload_len; SocketServerOptions can lower it.
inline constexpr uint32_t kDefaultMaxFrameBytes = 1u << 20;

enum class FrameType : uint16_t {
  kRequest = 1,
  kResponse = 2,
  // Health introspection (v2+ only; a v1 header naming type 3 is answered
  // kBadFrame like any other non-request type). The request has an empty
  // payload; the response carries the serving/cache counters below.
  kHealthRequest = 3,
  kHealthResponse = 4,
};

// Protocol-level result codes carried in every response frame. The serving
// Status taxonomy maps onto these 1:1 (WireCodeForStatus); kBadFrame is
// net-only — the request never reached the queue because the bytes
// themselves were malformed.
enum class WireCode : uint16_t {
  kOk = 0,
  kInvalidArgument = 1,   // Status kInvalidArgument (validation taxonomy)
  kRetryLater = 2,        // Status kResourceExhausted; retry_after_ms is set
  kDeadlineExceeded = 3,  // Status kDeadlineExceeded
  kUnavailable = 4,       // Status kUnavailable (draining / stopped)
  kInternal = 5,          // Status kInternal and anything unmapped
  kBadFrame = 6,          // malformed frame; never entered the queue
  kNotFound = 7,          // Status kNotFound (unknown model name)
};

const char* WireCodeName(WireCode code);
WireCode WireCodeForStatus(const Status& status);

struct FrameHeader {
  uint32_t magic = kMagic;
  uint16_t version = kProtocolVersion;
  FrameType type = FrameType::kRequest;
  uint64_t request_id = 0;
  int64_t deadline_nanos = 0;
  uint32_t payload_len = 0;
  uint32_t reserved = 0;
};

// Decoded response frame, as seen by a client.
struct WireResponse {
  uint64_t request_id = 0;
  WireCode code = WireCode::kInternal;
  uint32_t retry_after_ms = 0;
  serve::Prediction prediction;  // meaningful only when code == kOk
  std::string message;           // human-readable error detail, may be empty
};

// Wire-visible health snapshot (type kHealthResponse, v2+). A deliberate
// SUBSET of serve::HealthReport — the serving, prediction-cache, and
// windowed-quality counters an external probe needs to judge cache
// efficacy and drift health, not the full report.
//
// Payload layout:
//   u8 cache_enabled, u8 degraded, u8 quality_degraded,
//   u8 int8_active (default model; was the reserved byte, always 0 before),
//   u32 num_models,
//   i64 cache_bytes_limit, i64 cache_hits, i64 cache_misses,
//   i64 cache_evicted, i64 cache_bytes, i64 deduped,
//   i64 served_ok, i64 queue_depth, i64 feedback_recorded,
//   then num_models repetitions of:
//     u16 name_len, char name[name_len], u8 cache_enabled,
//     u8 quality_flags (bit0 quality_degraded, bit1 auc_valid,
//                       bit2 bias_spread_valid, bit3 int8_active),
//     i64 hits, i64 misses, i64 inserted, i64 evicted, i64 invalidated,
//     i64 bytes, i64 entries, i64 deduped,
//     i64 feedback_total, i64 quality_window_samples,
//     f64 quality_auc, f64 bias_spread,
//     i64 quantized_bytes
struct WireModelHealth {
  std::string name;
  bool cache_enabled = false;
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t inserted = 0;
  int64_t evicted = 0;
  int64_t invalidated = 0;
  int64_t bytes = 0;
  int64_t entries = 0;
  int64_t deduped = 0;
  // Windowed-quality slice (serve::QualityHealth on the wire). The AUC and
  // bias spread are meaningful only when their validity bit is set — a
  // degenerate window ships 0.0 with the bit clear, never a fake metric.
  bool quality_degraded = false;
  bool quality_auc_valid = false;
  bool bias_spread_valid = false;
  int64_t feedback_total = 0;
  int64_t quality_window_samples = 0;
  double quality_auc = 0.0;
  double bias_spread = 0.0;
  // Int8 weight-quantized serving: whether this model's primary session
  // answers from int8 weight twins, and how many bytes they occupy.
  bool int8_active = false;
  int64_t quantized_bytes = 0;
};

struct WireHealth {
  bool cache_enabled = false;
  bool degraded = false;
  bool quality_degraded = false;  // default model's windowed-quality flag
  bool int8_active = false;       // default model serves from int8 weights
  int64_t cache_bytes_limit = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_evicted = 0;
  int64_t cache_bytes = 0;
  int64_t deduped = 0;
  int64_t served_ok = 0;
  int64_t queue_depth = 0;
  int64_t feedback_recorded = 0;
  std::vector<WireModelHealth> models;
};

void EncodeFrameHeader(const FrameHeader& header, uint8_t* out);
// Byte-level decode only; never fails. Callers judge the fields with
// ValidateHeader.
void DecodeFrameHeader(const uint8_t* data, FrameHeader* header);

// Header sanity against this endpoint's limits. `trusted_framing` reports
// whether the length prefix can still be believed when the status is non-ok
// (version outside the tolerated range: yes; bad magic / oversized length:
// no). Any version in [kMinProtocolVersion, kProtocolVersion] is accepted.
Status ValidateHeader(const FrameHeader& header, uint32_t max_frame_bytes,
                      bool* trusted_framing);

// Full request frame (header + payload) ready to write to a socket,
// encoded under `version` (v1 omits the model-name field — pre-fleet
// byte layout, routes to the server's default model).
std::string EncodeRequestFrame(uint64_t request_id, int64_t deadline_nanos,
                               const serve::InferenceRequest& request,
                               uint16_t version = kProtocolVersion);
// Decodes a request payload under `version` (the header's, already
// range-checked by ValidateHeader); kInvalidArgument when the advertised
// counts do not reconcile with `len` (a garbage frame, distinct from a
// semantically invalid request which serve/validation rejects AFTER decode
// succeeds).
Status DecodeRequestPayload(const uint8_t* data, size_t len,
                            serve::InferenceRequest* request,
                            uint16_t version = kProtocolVersion);

// Full response frame, encoded under `version` — servers pass the
// REQUEST header's version so a v1 client never receives v2 bytes.
// `prediction` may be null for error responses.
std::string EncodeResponseFrame(uint64_t request_id, WireCode code,
                                uint32_t retry_after_ms,
                                const serve::Prediction* prediction,
                                const std::string& message,
                                uint16_t version = kProtocolVersion);
Status DecodeResponsePayload(const uint8_t* data, size_t len,
                             WireResponse* response,
                             uint16_t version = kProtocolVersion);

// Health frames (v2+). The request carries no payload; the response
// carries the WireHealth snapshot documented above. Both sides encode at
// the header's version, which ValidateHeader has already bounded >= 2 by
// the time the socket server consults the type.
std::string EncodeHealthRequestFrame(uint64_t request_id,
                                     uint16_t version = kProtocolVersion);
std::string EncodeHealthResponseFrame(uint64_t request_id,
                                      const WireHealth& health,
                                      uint16_t version = kProtocolVersion);
Status DecodeHealthResponsePayload(const uint8_t* data, size_t len,
                                   WireHealth* health);

}  // namespace dtdbd::net

#endif  // DTDBD_NET_PROTOCOL_H_
