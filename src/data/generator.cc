#include "data/generator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace dtdbd::data {

namespace {

// Writes one news item of the given domain and label.
NewsSample MakeSample(const CorpusConfig& config, const text::Vocab& vocab,
                      int domain, int label, Rng* rng) {
  NewsSample s;
  s.domain = domain;
  s.label = label;
  s.tokens.assign(config.seq_len, vocab.pad_id());

  // Ambiguous items carry no content-level veracity signal; see the
  // CorpusConfig::ambiguous_frac comment.
  const bool ambiguous = rng->Bernoulli(config.ambiguous_frac);
  const double cue_strength = config.cue_strength;
  const double style_alignment = ambiguous ? 0.5 : config.style_alignment;
  const double emotion_alignment =
      ambiguous ? 0.5 : config.emotion_alignment;

  const int min_len = std::max<int>(
      2, static_cast<int>(config.min_len_frac * config.seq_len));
  const int len = min_len + static_cast<int>(rng->UniformInt(
                                std::max<int64_t>(1, config.seq_len - min_len + 1)));

  const std::vector<double>& related = config.relatedness[domain];
  for (int t = 0; t < len; ++t) {
    const double r = rng->Uniform();
    int id;
    if (r < config.p_cue) {
      if (ambiguous) {
        // Ambiguous items carry no veracity cues at all — their cue slots
        // become additional topic tokens. A model can therefore *detect*
        // ambiguity (absence of cues) and, because such items are
        // topic-heavy, easily substitute the per-domain fake-rate prior:
        // the paper's domain-bias shortcut.
        const int src = rng->Categorical(related);
        id = vocab.Topic(src, static_cast<int>(rng->UniformInt(
                                  vocab.topic_count_per_domain())));
      } else {
        // Veracity cue: polarity matches the label with prob cue_strength.
        const bool match = rng->Bernoulli(cue_strength);
        const bool fake_cue = (label == kFake) == match;
        id = fake_cue
                 ? vocab.FakeCue(static_cast<int>(
                       rng->UniformInt(vocab.fake_cue_count())))
                 : vocab.RealCue(static_cast<int>(
                       rng->UniformInt(vocab.real_cue_count())));
      }
    } else if (r < config.p_cue + config.p_topic) {
      // Topic token from this domain or a related one.
      const int src = rng->Categorical(related);
      id = vocab.Topic(src, static_cast<int>(rng->UniformInt(
                                vocab.topic_count_per_domain())));
    } else if (r < config.p_cue + config.p_topic + config.p_style) {
      const bool sensational = (label == kFake)
                                   ? rng->Bernoulli(style_alignment)
                                   : !rng->Bernoulli(style_alignment);
      id = sensational ? vocab.Sensational(static_cast<int>(
                             rng->UniformInt(vocab.style_count())))
                       : vocab.Neutral(static_cast<int>(
                             rng->UniformInt(vocab.style_count())));
    } else if (r < config.p_cue + config.p_topic + config.p_style +
                       config.p_emotion) {
      const bool negative = (label == kFake)
                                ? rng->Bernoulli(emotion_alignment)
                                : !rng->Bernoulli(emotion_alignment);
      id = negative ? vocab.NegativeEmotion(static_cast<int>(
                          rng->UniformInt(vocab.emotion_count())))
                    : vocab.PositiveEmotion(static_cast<int>(
                          rng->UniformInt(vocab.emotion_count())));
    } else {
      id = vocab.Noise(
          static_cast<int>(rng->UniformInt(vocab.noise_count())));
    }
    s.tokens[t] = id;
  }
  s.style = text::StyleFeatures(vocab, s.tokens);
  s.emotion = text::EmotionFeatures(vocab, s.tokens);
  return s;
}

// Scaled count with a floor so tiny profiles keep every cell populated.
int64_t ScaledCount(int64_t count, double scale) {
  return std::max<int64_t>(8, std::llround(count * scale));
}

std::vector<std::vector<double>> UniformRelatedness(int n, double self,
                                                    double base) {
  std::vector<std::vector<double>> m(n, std::vector<double>(n, base));
  for (int i = 0; i < n; ++i) m[i][i] = self;
  return m;
}

}  // namespace

NewsDataset GenerateCorpus(const CorpusConfig& config) {
  const int num_domains = static_cast<int>(config.domains.size());
  DTDBD_CHECK_GT(num_domains, 0);
  DTDBD_CHECK_EQ(static_cast<int>(config.relatedness.size()), num_domains);
  for (const auto& row : config.relatedness) {
    DTDBD_CHECK_EQ(static_cast<int>(row.size()), num_domains);
  }
  DTDBD_CHECK_LE(config.p_cue + config.p_topic + config.p_style +
                     config.p_emotion,
                 1.0 + 1e-9);

  text::Vocab::Config vc;
  vc.num_domains = num_domains;
  auto vocab = std::make_shared<const text::Vocab>(vc);

  NewsDataset dataset;
  dataset.vocab = vocab;
  dataset.seq_len = config.seq_len;
  for (const auto& d : config.domains) dataset.domain_names.push_back(d.name);

  Rng rng(config.seed);
  for (int d = 0; d < num_domains; ++d) {
    const int64_t fake = ScaledCount(config.domains[d].fake_count,
                                     config.scale);
    const int64_t real = ScaledCount(config.domains[d].real_count,
                                     config.scale);
    for (int64_t i = 0; i < fake; ++i) {
      dataset.samples.push_back(MakeSample(config, *vocab, d, kFake, &rng));
    }
    for (int64_t i = 0; i < real; ++i) {
      dataset.samples.push_back(MakeSample(config, *vocab, d, kReal, &rng));
    }
  }
  rng.Shuffle(&dataset.samples);
  return dataset;
}

CorpusConfig Weibo21Config(double scale, uint64_t seed) {
  CorpusConfig config;
  config.scale = scale;
  config.seed = seed;
  // Exact counts of paper Table IV.
  config.domains = {
      {"Science", 93, 143},    {"Military", 222, 121},
      {"Education", 248, 243}, {"Disaster", 591, 185},
      {"Politics", 546, 306},  {"Health", 515, 485},
      {"Finance", 362, 959},   {"Ent.", 440, 1000},
      {"Society", 1471, 1198},
  };
  const int n = static_cast<int>(config.domains.size());
  config.relatedness = UniformRelatedness(n, /*self=*/0.55, /*base=*/0.015);
  // Topically related domain pairs (symmetric boosts). These create the
  // multi-domain relevance structure Weibo21 exhibits (e.g. society news
  // overlaps disaster/politics/entertainment).
  auto boost = [&config](int a, int b, double w) {
    config.relatedness[a][b] += w;
    config.relatedness[b][a] += w;
  };
  boost(kScience, kEducation, 0.12);
  boost(kScience, kHealth, 0.10);
  boost(kMilitary, kPolitics, 0.14);
  boost(kDisaster, kSociety, 0.14);
  boost(kPolitics, kSociety, 0.10);
  boost(kHealth, kSociety, 0.08);
  boost(kFinance, kSociety, 0.10);
  boost(kEntertainment, kSociety, 0.12);
  boost(kEducation, kSociety, 0.06);
  boost(kDisaster, kPolitics, 0.06);
  boost(kHealth, kScience, 0.04);
  return config;
}

CorpusConfig EnglishConfig(double scale, uint64_t seed) {
  CorpusConfig config;
  config.scale = scale;
  config.seed = seed;
  // Exact counts of paper Table V.
  config.domains = {
      {"Gossipcop", 5067, 16804},
      {"Politifact", 379, 447},
      {"COVID", 1317, 4750},
  };
  // The paper notes the three English domains have substantial content
  // gaps, so cross-domain relatedness is weak.
  config.relatedness = UniformRelatedness(3, /*self=*/0.90, /*base=*/0.03);
  config.relatedness[1][2] += 0.04;  // politics touches pandemic policy
  config.relatedness[2][1] += 0.04;
  return config;
}

CorpusConfig MicroConfig(uint64_t seed) {
  CorpusConfig config;
  config.seed = seed;
  config.seq_len = 12;
  config.domains = {
      {"A", 120, 40},
      {"B", 40, 120},
      {"C", 80, 80},
  };
  config.relatedness = UniformRelatedness(3, 0.7, 0.05);
  return config;
}

}  // namespace dtdbd::data
