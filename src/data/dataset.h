// Multi-domain news dataset containers, stratified splitting, and
// mini-batch loading.
#ifndef DTDBD_DATA_DATASET_H_
#define DTDBD_DATA_DATASET_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "tensor/tensor.h"
#include "text/features.h"
#include "text/vocab.h"

namespace dtdbd::data {

// Label convention follows the paper: 0 = real, 1 = fake.
inline constexpr int kReal = 0;
inline constexpr int kFake = 1;

struct NewsSample {
  std::vector<int> tokens;     // fixed length seq_len, PAD-padded
  int domain = 0;
  int label = kReal;
  std::vector<float> style;    // text::kStyleFeatureDim
  std::vector<float> emotion;  // text::kEmotionFeatureDim
};

struct NewsDataset {
  std::shared_ptr<const text::Vocab> vocab;
  std::vector<std::string> domain_names;
  int seq_len = 0;
  std::vector<NewsSample> samples;

  int num_domains() const { return static_cast<int>(domain_names.size()); }
  int64_t size() const { return static_cast<int64_t>(samples.size()); }

  // Per-domain (total, fake) counts.
  struct DomainStat {
    int64_t total = 0;
    int64_t fake = 0;
  };
  std::vector<DomainStat> DomainStats() const;
};

struct DatasetSplits {
  NewsDataset train;
  NewsDataset val;
  NewsDataset test;
};

// Splits stratified by (domain, label) so every split preserves the
// domain/fake marginals that drive the bias phenomenon.
DatasetSplits StratifiedSplit(const NewsDataset& dataset, double train_frac,
                              double val_frac, Rng* rng);

// A materialized mini-batch. Token ids are row-major [batch_size, seq_len];
// the style/emotion views are ready-made feature tensors.
struct Batch {
  int64_t batch_size = 0;
  int64_t seq_len = 0;
  std::vector<int> tokens;
  std::vector<int> labels;
  std::vector<int> domains;
  tensor::Tensor style;    // [B, kStyleFeatureDim]
  tensor::Tensor emotion;  // [B, kEmotionFeatureDim]
};

// Builds a batch from explicit sample indices.
Batch MakeBatch(const NewsDataset& dataset,
                const std::vector<int64_t>& indices);

// Epoch-oriented shuffling batch iterator.
class DataLoader {
 public:
  // Full iteration state. The shuffle is in-place Fisher-Yates, so the next
  // epoch's order depends on both the RNG state and the current permutation;
  // checkpoints must capture both to replay the exact same batch sequence.
  struct State {
    Rng::State rng;
    std::vector<int64_t> order;
  };

  // The dataset must outlive the loader.
  DataLoader(const NewsDataset* dataset, int64_t batch_size, bool shuffle,
             uint64_t seed);

  // Reshuffles (when enabled); call once per epoch.
  void NewEpoch();

  State GetState() const;
  // Restores a captured state; fails if `state.order` is not a permutation
  // of this loader's dataset indices (checkpoint from a different dataset).
  Status SetState(const State& state);

  int64_t num_batches() const;
  Batch GetBatch(int64_t index) const;

 private:
  const NewsDataset* dataset_;
  int64_t batch_size_;
  bool shuffle_;
  Rng rng_;
  std::vector<int64_t> order_;
};

}  // namespace dtdbd::data

#endif  // DTDBD_DATA_DATASET_H_
