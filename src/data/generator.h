// Synthetic multi-domain news corpus generators.
//
// The generators reproduce the *statistical* structure of the paper's
// datasets (Tables I, IV, V): exact per-domain news counts and fake
// ratios, domain-specific topic vocabulary with controlled cross-domain
// relatedness, shared veracity cues of bounded strength, and style/emotion
// signals. Those marginals are what create the domain-bias phenomenon the
// paper studies: with unequal fake ratios the domain identity becomes a
// genuinely useful—but spurious—shortcut, so an unconstrained model learns
// it and exhibits high FPR in fake-heavy domains and high FNR in real-heavy
// domains (paper Table III).
#ifndef DTDBD_DATA_GENERATOR_H_
#define DTDBD_DATA_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace dtdbd::data {

struct DomainSpec {
  std::string name;
  int64_t fake_count = 0;
  int64_t real_count = 0;
};

struct CorpusConfig {
  std::vector<DomainSpec> domains;
  // Row d: unnormalized weights for borrowing topic tokens from each domain
  // when writing a domain-d news item. Diagonal dominance controls how
  // identifiable a domain is; off-diagonal mass creates the multi-domain
  // relevance the paper emphasizes (Sec. IV-B "fuzzy labels").
  std::vector<std::vector<double>> relatedness;

  int seq_len = 24;
  // Minimum effective (non-pad) length as a fraction of seq_len.
  double min_len_frac = 0.6;

  // Token-category mixture per position.
  double p_cue = 0.28;
  double p_topic = 0.34;
  double p_style = 0.14;
  double p_emotion = 0.12;
  // Remainder is noise.

  // P(cue polarity matches the label); < 1 leaves irreducible ambiguity,
  // which is what makes the domain prior attractive to a biased model.
  double cue_strength = 0.92;
  // Fraction of news items that are *ambiguous*: they carry no veracity
  // cues (cue slots degrade to noise) and their style/emotion alignments
  // drop to 0.5. These are the items on which an accuracy-maximizing model
  // falls back on the per-domain fake-rate prior — the root cause of the
  // domain bias pattern in the paper's Table III (high FPR in fake-heavy
  // domains, high FNR in real-heavy ones). A domain-blind model must treat
  // them identically across domains, equalizing the error rates.
  double ambiguous_frac = 0.30;
  // P(sensational style | fake) and P(neutral | real).
  double style_alignment = 0.70;
  // P(negative emotion | fake) and P(positive | real).
  double emotion_alignment = 0.66;

  // Global multiplier on the per-domain counts (quick experiment profiles
  // use < 1); counts are rounded but kept >= 8 per (domain, label) cell.
  double scale = 1.0;

  uint64_t seed = 20240131;
};

// Generates a dataset with exactly round(scale * count) samples per
// (domain, label) cell.
NewsDataset GenerateCorpus(const CorpusConfig& config);

// Weibo21-like Chinese corpus: 9 domains with the counts of paper Table IV.
CorpusConfig Weibo21Config(double scale, uint64_t seed);

// English corpus (FakeNewsNet + COVID): 3 domains per paper Table V, with
// weak cross-domain relatedness (the paper notes large content gaps).
CorpusConfig EnglishConfig(double scale, uint64_t seed);

// Tiny 3-domain corpus for unit tests.
CorpusConfig MicroConfig(uint64_t seed);

// Domain index constants for the Weibo21-like corpus.
enum Weibo21Domain {
  kScience = 0,
  kMilitary,
  kEducation,
  kDisaster,
  kPolitics,
  kHealth,
  kFinance,
  kEntertainment,
  kSociety,
};

}  // namespace dtdbd::data

#endif  // DTDBD_DATA_GENERATOR_H_
