#include "data/dataset.h"

#include <algorithm>
#include <map>
#include <numeric>

namespace dtdbd::data {

std::vector<NewsDataset::DomainStat> NewsDataset::DomainStats() const {
  std::vector<DomainStat> stats(num_domains());
  for (const auto& s : samples) {
    DTDBD_CHECK_GE(s.domain, 0);
    DTDBD_CHECK_LT(s.domain, num_domains());
    ++stats[s.domain].total;
    if (s.label == kFake) ++stats[s.domain].fake;
  }
  return stats;
}

DatasetSplits StratifiedSplit(const NewsDataset& dataset, double train_frac,
                              double val_frac, Rng* rng) {
  DTDBD_CHECK(rng != nullptr);
  DTDBD_CHECK_GT(train_frac, 0.0);
  DTDBD_CHECK_GE(val_frac, 0.0);
  DTDBD_CHECK_LT(train_frac + val_frac, 1.0 + 1e-9);

  auto clone_meta = [&dataset]() {
    NewsDataset d;
    d.vocab = dataset.vocab;
    d.domain_names = dataset.domain_names;
    d.seq_len = dataset.seq_len;
    return d;
  };
  DatasetSplits splits{clone_meta(), clone_meta(), clone_meta()};

  // Group indices by (domain, label) and split each group proportionally.
  std::map<std::pair<int, int>, std::vector<int64_t>> groups;
  for (int64_t i = 0; i < dataset.size(); ++i) {
    const auto& s = dataset.samples[i];
    groups[{s.domain, s.label}].push_back(i);
  }
  for (auto& [key, indices] : groups) {
    rng->Shuffle(&indices);
    const int64_t n = static_cast<int64_t>(indices.size());
    const int64_t n_train = static_cast<int64_t>(n * train_frac);
    const int64_t n_val = static_cast<int64_t>(n * val_frac);
    for (int64_t i = 0; i < n; ++i) {
      const NewsSample& s = dataset.samples[indices[i]];
      if (i < n_train) {
        splits.train.samples.push_back(s);
      } else if (i < n_train + n_val) {
        splits.val.samples.push_back(s);
      } else {
        splits.test.samples.push_back(s);
      }
    }
  }
  return splits;
}

Batch MakeBatch(const NewsDataset& dataset,
                const std::vector<int64_t>& indices) {
  DTDBD_CHECK(!indices.empty());
  Batch batch;
  batch.batch_size = static_cast<int64_t>(indices.size());
  batch.seq_len = dataset.seq_len;
  batch.tokens.reserve(batch.batch_size * batch.seq_len);
  std::vector<float> style;
  std::vector<float> emotion;
  for (int64_t idx : indices) {
    DTDBD_CHECK_GE(idx, 0);
    DTDBD_CHECK_LT(idx, dataset.size());
    const NewsSample& s = dataset.samples[idx];
    DTDBD_CHECK_EQ(static_cast<int64_t>(s.tokens.size()), dataset.seq_len);
    batch.tokens.insert(batch.tokens.end(), s.tokens.begin(), s.tokens.end());
    batch.labels.push_back(s.label);
    batch.domains.push_back(s.domain);
    style.insert(style.end(), s.style.begin(), s.style.end());
    emotion.insert(emotion.end(), s.emotion.begin(), s.emotion.end());
  }
  batch.style = tensor::Tensor::FromData(
      {batch.batch_size, text::kStyleFeatureDim}, std::move(style));
  batch.emotion = tensor::Tensor::FromData(
      {batch.batch_size, text::kEmotionFeatureDim}, std::move(emotion));
  return batch;
}

DataLoader::DataLoader(const NewsDataset* dataset, int64_t batch_size,
                       bool shuffle, uint64_t seed)
    : dataset_(dataset),
      batch_size_(batch_size),
      shuffle_(shuffle),
      rng_(seed) {
  DTDBD_CHECK(dataset_ != nullptr);
  DTDBD_CHECK_GT(batch_size_, 0);
  order_.resize(dataset_->size());
  std::iota(order_.begin(), order_.end(), 0);
  if (shuffle_) rng_.Shuffle(&order_);
}

void DataLoader::NewEpoch() {
  if (shuffle_) rng_.Shuffle(&order_);
}

DataLoader::State DataLoader::GetState() const {
  return State{rng_.GetState(), order_};
}

Status DataLoader::SetState(const State& state) {
  if (static_cast<int64_t>(state.order.size()) != dataset_->size()) {
    return Status::InvalidArgument(
        "loader state holds " + std::to_string(state.order.size()) +
        " indices, dataset has " + std::to_string(dataset_->size()));
  }
  std::vector<bool> seen(state.order.size(), false);
  for (int64_t idx : state.order) {
    if (idx < 0 || idx >= dataset_->size() || seen[idx]) {
      return Status::InvalidArgument("loader state is not a permutation");
    }
    seen[idx] = true;
  }
  rng_.SetState(state.rng);
  order_ = state.order;
  return Status::Ok();
}

int64_t DataLoader::num_batches() const {
  return (dataset_->size() + batch_size_ - 1) / batch_size_;
}

Batch DataLoader::GetBatch(int64_t index) const {
  DTDBD_CHECK_GE(index, 0);
  DTDBD_CHECK_LT(index, num_batches());
  const int64_t begin = index * batch_size_;
  const int64_t end = std::min(begin + batch_size_, dataset_->size());
  std::vector<int64_t> indices(order_.begin() + begin, order_.begin() + end);
  return MakeBatch(*dataset_, indices);
}

}  // namespace dtdbd::data
