#include "dtdbd/dat.h"

#include "tensor/ops.h"

namespace dtdbd {

DatWrapper::DatWrapper(std::unique_ptr<models::FakeNewsModel> base,
                       const models::ModelConfig& config)
    : lambda_(config.adversarial_lambda),
      rng_(config.seed ^ 0x9E3779B9u),
      base_(std::move(base)) {
  DTDBD_CHECK(base_ != nullptr);
  DTDBD_CHECK_GT(config.num_domains, 0);
  name_ = base_->name() + "+DAT";
  RegisterChild("base", base_.get());
  domain_head_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{base_->feature_dim(), config.hidden_dim,
                           config.num_domains},
      config.dropout, &rng_);
  RegisterChild("domain_head", domain_head_.get());
}

models::ModelOutput DatWrapper::Forward(const data::Batch& batch,
                                        bool training) {
  models::ModelOutput out = base_->Forward(batch, training);
  tensor::Tensor reversed = tensor::GradReverse(out.features, lambda_);
  out.domain_logits = domain_head_->Forward(reversed, training, &rng_);
  return out;
}

std::unique_ptr<DatWrapper> TrainUnbiasedTeacher(
    const std::string& arch_name, const models::ModelConfig& config,
    const data::NewsDataset& train, const data::NewsDataset* val,
    const DatIeOptions& options) {
  auto wrapper = std::make_unique<DatWrapper>(
      models::CreateModel(arch_name, config), config);
  TrainOptions train_options = options.train;
  train_options.domain_loss_weight = options.alpha;
  train_options.entropy_loss_weight = options.beta_ratio * options.alpha;
  TrainSupervised(wrapper.get(), train, val, train_options);
  return wrapper;
}

}  // namespace dtdbd
