#include "dtdbd/distill.h"

#include "tensor/loss.h"
#include "tensor/ops.h"

namespace dtdbd {

using tensor::Tensor;

namespace {

// Row-standardizes a [B,B] correlation matrix (zero mean, unit variance per
// row) with constant scale/shift. Without this the softmax contrast would
// depend on each network's arbitrary feature scale: a wide-feature teacher
// would produce near-one-hot rows while a compact student produced
// near-uniform ones, and the KL would carry almost no signal.
Tensor StandardizeRows(const Tensor& m) {
  const int64_t b = m.dim(1);
  Tensor gamma = Tensor::Full({b}, 1.0f);
  Tensor beta = Tensor::Zeros({b});
  return tensor::LayerNormOp(m, gamma, beta);
}

}  // namespace

Tensor AdversarialDebiasDistillLoss(const Tensor& teacher_features,
                                    const Tensor& student_features,
                                    float tau) {
  DTDBD_CHECK_EQ(teacher_features.dim(0), student_features.dim(0))
      << "ADD: teacher and student batch sizes differ";
  // Correlation matrices (Eq. 5), row-standardized so teacher and student
  // softened distributions are comparable. The teacher side is detached:
  // the unbiased distribution is knowledge, not a training signal for the
  // (frozen) teacher.
  Tensor m_teacher = StandardizeRows(
      tensor::PairwiseSquaredDistances(teacher_features.Detach()));
  Tensor m_student = StandardizeRows(
      tensor::PairwiseSquaredDistances(student_features));
  return tensor::DistillKlLoss(m_teacher, m_student, tau);
}

Tensor DomainKnowledgeDistillLoss(const Tensor& teacher_logits,
                                  const Tensor& student_logits, float tau) {
  // DistillKlLoss already treats the teacher side as a constant (no
  // gradient flows to it in either the fused or unfused path), so no
  // explicit Detach is needed here.
  return tensor::DistillKlLoss(teacher_logits, student_logits, tau);
}

}  // namespace dtdbd
