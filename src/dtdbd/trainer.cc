#include "dtdbd/trainer.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "tensor/loss.h"
#include "tensor/quant.h"
#include "tensor/ops.h"
#include "tensor/optim.h"
#include "train/checkpoint.h"

namespace dtdbd {

using tensor::Tensor;

namespace {

// Only trainable parameters go to the optimizer (frozen encoders and
// teachers keep requires_grad = false and are skipped upstream).
std::vector<Tensor> TrainableParams(models::FakeNewsModel* model) {
  std::vector<Tensor> params;
  for (auto& p : model->Parameters()) {
    if (p.requires_grad()) params.push_back(p);
  }
  DTDBD_CHECK(!params.empty()) << model->name() << " has no trainable params";
  return params;
}

}  // namespace

TrainResult TrainSupervised(models::FakeNewsModel* model,
                            const data::NewsDataset& train,
                            const data::NewsDataset* val,
                            const TrainOptions& options) {
  DTDBD_CHECK(model != nullptr);
  DTDBD_CHECK_GT(train.size(), 0);
  DTDBD_CHECK_GT(options.batch_size, 0);
  TrainResult result;
  tensor::Adam optimizer(TrainableParams(model), options.lr, 0.9f, 0.999f,
                         1e-8f, options.weight_decay);
  data::DataLoader loader(&train, options.batch_size, /*shuffle=*/true,
                          options.seed);
  std::map<std::string, Tensor> named = model->NamedParameters();
  std::vector<Rng*> rngs;
  model->CollectRngs(&rngs);

  int epoch = 0;
  if (!options.resume_from.empty()) {
    auto loaded = train::LoadCheckpoint(options.resume_from);
    if (!loaded.ok()) {
      result.status = loaded.status();
      return result;
    }
    const train::CheckpointState& state = loaded.value();
    if (state.kind != "supervised") {
      result.status = Status::InvalidArgument(
          "cannot resume supervised training from a '" + state.kind +
          "' checkpoint");
      return result;
    }
    result.status =
        train::ApplyToTraining(state, &named, &optimizer, rngs, &loader);
    if (!result.status.ok()) return result;
    epoch = static_cast<int>(state.epochs_done);
    if (options.verbose) {
      DTDBD_LOG(Info) << model->name() << " resumed at epoch " << epoch
                      << " from " << options.resume_from;
    }
  }

  train::TrainingGuard guard(options.guard);
  // Rollback target for divergence recovery; refreshed at epoch boundaries.
  train::CheckpointState last_good =
      train::CaptureState("supervised", epoch, named, optimizer, rngs, loader);
  int64_t global_step = static_cast<int64_t>(epoch) * loader.num_batches();

  while (epoch < options.epochs) {
    loader.NewEpoch();
    double epoch_loss = 0.0;
    bool redo_epoch = false;
    for (int64_t b = 0; b < loader.num_batches(); ++b, ++global_step) {
      if (options.fault_injector != nullptr &&
          options.fault_injector->ShouldAbort(global_step)) {
        result.status =
            Status::Internal("simulated crash (fault injector) at step " +
                             std::to_string(global_step));
        return result;
      }
      const data::Batch batch = loader.GetBatch(b);
      models::ModelOutput out = model->Forward(batch, /*training=*/true);
      Tensor loss = tensor::CrossEntropyLoss(out.logits, batch.labels);
      if (out.domain_logits.defined() && options.domain_loss_weight > 0.0f) {
        Tensor domain_ce =
            tensor::CrossEntropyLoss(out.domain_logits, batch.domains);
        loss = tensor::Add(
            loss, tensor::ScalarMul(domain_ce, options.domain_loss_weight));
        if (options.entropy_loss_weight > 0.0f) {
          Tensor ie = tensor::NegativeEntropyLoss(out.domain_logits);
          loss = tensor::Add(
              loss, tensor::ScalarMul(ie, options.entropy_loss_weight));
        }
      }
      optimizer.ZeroGrad();
      loss.Backward();
      if (options.fault_injector != nullptr) {
        options.fault_injector->MaybeCorruptGradients(global_step,
                                                      optimizer.params());
      }
      const auto verdict = guard.Inspect(loss.item(), optimizer.params());
      if (verdict == train::TrainingGuard::Verdict::kOk) {
        tensor::ClipGradNorm(optimizer.params(), options.grad_clip);
        optimizer.Step();
        epoch_loss += loss.item();
      } else if (verdict == train::TrainingGuard::Verdict::kSkip) {
        DTDBD_LOG(Warning) << model->name() << " skipped non-finite step "
                           << global_step;
      } else if (verdict == train::TrainingGuard::Verdict::kRollback) {
        Status s =
            train::ApplyToTraining(last_good, &named, &optimizer, rngs, &loader);
        DTDBD_CHECK(s.ok()) << s.ToString();
        optimizer.set_lr(optimizer.lr() * options.guard.rollback_lr_decay);
        guard.OnRollback();
        DTDBD_LOG(Warning) << model->name() << " rolled back to epoch "
                           << last_good.epochs_done << ", lr reduced to "
                           << optimizer.lr();
        epoch = static_cast<int>(last_good.epochs_done);
        redo_epoch = true;
        break;
      } else {  // kGiveUp
        result.status = Status::Internal(
            "training diverged: " + std::to_string(guard.skipped_steps()) +
            " non-finite steps, rollback budget exhausted");
        return result;
      }
    }
    if (redo_epoch) continue;
    epoch_loss /= static_cast<double>(loader.num_batches());
    result.train_loss_per_epoch.push_back(epoch_loss);
    if (val != nullptr) {
      result.val_reports.push_back(EvaluateModel(model, *val));
    }
    if (options.verbose) {
      DTDBD_LOG(Info) << model->name() << " epoch " << epoch
                      << " loss=" << epoch_loss
                      << (val != nullptr
                              ? " val " + result.val_reports.back().Summary()
                              : "");
    }
    ++epoch;
    last_good = train::CaptureState("supervised", epoch, named, optimizer,
                                    rngs, loader);
    if (!options.checkpoint_path.empty() && options.checkpoint_every > 0 &&
        (epoch % options.checkpoint_every == 0 || epoch == options.epochs)) {
      Status s = train::SaveCheckpoint(last_good, options.checkpoint_path);
      if (!s.ok()) {
        DTDBD_LOG(Error) << "checkpoint save failed: " << s.ToString();
      }
    }
  }
  return result;
}

std::vector<int> Predict(models::FakeNewsModel* model,
                         const data::NewsDataset& dataset,
                         int64_t batch_size) {
  const std::vector<float> probs =
      PredictFakeProbability(model, dataset, batch_size);
  std::vector<int> preds(probs.size());
  for (size_t i = 0; i < probs.size(); ++i) {
    preds[i] = probs[i] >= 0.5f ? data::kFake : data::kReal;
  }
  return preds;
}

metrics::EvalReport EvaluateModel(models::FakeNewsModel* model,
                                  const data::NewsDataset& dataset,
                                  int64_t batch_size) {
  if (dataset.size() == 0 || batch_size <= 0) return metrics::EvalReport{};
  // One forward pass yields both the scores (for AUC) and the thresholded
  // predictions (for the confusion metrics).
  const std::vector<float> probs =
      PredictFakeProbability(model, dataset, batch_size);
  std::vector<int> preds(probs.size());
  for (size_t i = 0; i < probs.size(); ++i) {
    preds[i] = probs[i] >= 0.5f ? data::kFake : data::kReal;
  }
  std::vector<int> labels, domains;
  labels.reserve(dataset.size());
  domains.reserve(dataset.size());
  for (const auto& s : dataset.samples) {
    labels.push_back(s.label);
    domains.push_back(s.domain);
  }
  return metrics::Evaluate(preds, labels, domains, dataset.num_domains(),
                           probs);
}

std::vector<float> PredictFakeProbability(models::FakeNewsModel* model,
                                          const data::NewsDataset& dataset,
                                          int64_t batch_size) {
  DTDBD_CHECK(model != nullptr);
  if (dataset.size() == 0 || batch_size <= 0) return {};
  tensor::NoGradGuard no_grad;
  // Under DTDBD_INT8=1 the offline oracle quantizes through the same
  // eligibility rule as serve::InferenceSession, so serving answers stay
  // bitwise-comparable to this reference in either weight mode.
  std::unique_ptr<tensor::Int8WeightSet> int8;
  if (tensor::Int8Enabled()) {
    int8 = tensor::QuantizeWeightMatrices(model->Parameters());
  }
  tensor::ScopedInt8Weights int8_scope(int8.get());
  data::DataLoader loader(&dataset, batch_size, /*shuffle=*/false, 0);
  std::vector<float> probs;
  probs.reserve(dataset.size());
  for (int64_t b = 0; b < loader.num_batches(); ++b) {
    const data::Batch batch = loader.GetBatch(b);
    models::ModelOutput out = model->Forward(batch, /*training=*/false);
    Tensor p = tensor::Softmax(out.logits);
    for (int64_t i = 0; i < batch.batch_size; ++i) {
      probs.push_back(p.at(i * 2 + data::kFake));
    }
  }
  return probs;
}

std::vector<float> ExtractFeatures(models::FakeNewsModel* model,
                                   const data::NewsDataset& dataset,
                                   int64_t batch_size) {
  DTDBD_CHECK(model != nullptr);
  if (dataset.size() == 0 || batch_size <= 0) return {};
  tensor::NoGradGuard no_grad;
  data::DataLoader loader(&dataset, batch_size, /*shuffle=*/false, 0);
  std::vector<float> features;
  features.reserve(dataset.size() * model->feature_dim());
  for (int64_t b = 0; b < loader.num_batches(); ++b) {
    const data::Batch batch = loader.GetBatch(b);
    models::ModelOutput out = model->Forward(batch, /*training=*/false);
    DTDBD_CHECK_EQ(out.features.dim(1), model->feature_dim());
    const auto& data = out.features.data();
    features.insert(features.end(), data.begin(), data.end());
  }
  return features;
}

}  // namespace dtdbd
