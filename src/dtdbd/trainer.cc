#include "dtdbd/trainer.h"

#include <algorithm>

#include "common/logging.h"
#include "tensor/loss.h"
#include "tensor/ops.h"
#include "tensor/optim.h"

namespace dtdbd {

using tensor::Tensor;

namespace {

// Only trainable parameters go to the optimizer (frozen encoders and
// teachers keep requires_grad = false and are skipped upstream).
std::vector<Tensor> TrainableParams(models::FakeNewsModel* model) {
  std::vector<Tensor> params;
  for (auto& p : model->Parameters()) {
    if (p.requires_grad()) params.push_back(p);
  }
  DTDBD_CHECK(!params.empty()) << model->name() << " has no trainable params";
  return params;
}

}  // namespace

TrainResult TrainSupervised(models::FakeNewsModel* model,
                            const data::NewsDataset& train,
                            const data::NewsDataset* val,
                            const TrainOptions& options) {
  DTDBD_CHECK(model != nullptr);
  DTDBD_CHECK_GT(train.size(), 0);
  TrainResult result;
  tensor::Adam optimizer(TrainableParams(model), options.lr, 0.9f, 0.999f,
                         1e-8f, options.weight_decay);
  data::DataLoader loader(&train, options.batch_size, /*shuffle=*/true,
                          options.seed);
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    loader.NewEpoch();
    double epoch_loss = 0.0;
    for (int64_t b = 0; b < loader.num_batches(); ++b) {
      const data::Batch batch = loader.GetBatch(b);
      models::ModelOutput out = model->Forward(batch, /*training=*/true);
      Tensor loss = tensor::CrossEntropyLoss(out.logits, batch.labels);
      if (out.domain_logits.defined() && options.domain_loss_weight > 0.0f) {
        Tensor domain_ce =
            tensor::CrossEntropyLoss(out.domain_logits, batch.domains);
        loss = tensor::Add(
            loss, tensor::ScalarMul(domain_ce, options.domain_loss_weight));
        if (options.entropy_loss_weight > 0.0f) {
          Tensor ie = tensor::NegativeEntropyLoss(out.domain_logits);
          loss = tensor::Add(
              loss, tensor::ScalarMul(ie, options.entropy_loss_weight));
        }
      }
      optimizer.ZeroGrad();
      loss.Backward();
      tensor::ClipGradNorm(optimizer.params(), options.grad_clip);
      optimizer.Step();
      epoch_loss += loss.item();
    }
    epoch_loss /= static_cast<double>(loader.num_batches());
    result.train_loss_per_epoch.push_back(epoch_loss);
    if (val != nullptr) {
      result.val_reports.push_back(EvaluateModel(model, *val));
    }
    if (options.verbose) {
      DTDBD_LOG(Info) << model->name() << " epoch " << epoch
                      << " loss=" << epoch_loss
                      << (val != nullptr
                              ? " val " + result.val_reports.back().Summary()
                              : "");
    }
  }
  return result;
}

std::vector<int> Predict(models::FakeNewsModel* model,
                         const data::NewsDataset& dataset,
                         int64_t batch_size) {
  const std::vector<float> probs =
      PredictFakeProbability(model, dataset, batch_size);
  std::vector<int> preds(probs.size());
  for (size_t i = 0; i < probs.size(); ++i) {
    preds[i] = probs[i] >= 0.5f ? data::kFake : data::kReal;
  }
  return preds;
}

metrics::EvalReport EvaluateModel(models::FakeNewsModel* model,
                                  const data::NewsDataset& dataset,
                                  int64_t batch_size) {
  const std::vector<int> preds = Predict(model, dataset, batch_size);
  std::vector<int> labels, domains;
  labels.reserve(dataset.size());
  domains.reserve(dataset.size());
  for (const auto& s : dataset.samples) {
    labels.push_back(s.label);
    domains.push_back(s.domain);
  }
  return metrics::Evaluate(preds, labels, domains, dataset.num_domains());
}

std::vector<float> PredictFakeProbability(models::FakeNewsModel* model,
                                          const data::NewsDataset& dataset,
                                          int64_t batch_size) {
  DTDBD_CHECK(model != nullptr);
  DTDBD_CHECK_GT(dataset.size(), 0);
  tensor::NoGradGuard no_grad;
  data::DataLoader loader(&dataset, batch_size, /*shuffle=*/false, 0);
  std::vector<float> probs;
  probs.reserve(dataset.size());
  for (int64_t b = 0; b < loader.num_batches(); ++b) {
    const data::Batch batch = loader.GetBatch(b);
    models::ModelOutput out = model->Forward(batch, /*training=*/false);
    Tensor p = tensor::Softmax(out.logits);
    for (int64_t i = 0; i < batch.batch_size; ++i) {
      probs.push_back(p.at(i * 2 + data::kFake));
    }
  }
  return probs;
}

std::vector<float> ExtractFeatures(models::FakeNewsModel* model,
                                   const data::NewsDataset& dataset,
                                   int64_t batch_size) {
  DTDBD_CHECK(model != nullptr);
  tensor::NoGradGuard no_grad;
  data::DataLoader loader(&dataset, batch_size, /*shuffle=*/false, 0);
  std::vector<float> features;
  features.reserve(dataset.size() * model->feature_dim());
  for (int64_t b = 0; b < loader.num_batches(); ++b) {
    const data::Batch batch = loader.GetBatch(b);
    models::ModelOutput out = model->Forward(batch, /*training=*/false);
    DTDBD_CHECK_EQ(out.features.dim(1), model->feature_dim());
    const auto& data = out.features.data();
    features.insert(features.end(), data.begin(), data.end());
  }
  return features;
}

}  // namespace dtdbd
