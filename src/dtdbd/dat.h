// Domain adversarial training (DAT) and the paper's improved DAT-IE.
//
// DatWrapper attaches a domain-discriminator head behind a gradient
// reversal layer to any FakeNewsModel, turning it into a DANN-style
// domain-adversarial learner. Training it with TrainOptions
// {domain_loss_weight = alpha, entropy_loss_weight = beta} optimizes the
// paper's Eq. 11:
//   L_DAT-IE = L_CE(y) + alpha * L_CE(domain) + beta * L_IE,
// with beta = 0.2 * alpha recommended; beta = 0 recovers plain DAT
// (Table IX compares the two). The trained wrapper *is* DTDBD's unbiased
// teacher.
#ifndef DTDBD_DTDBD_DAT_H_
#define DTDBD_DTDBD_DAT_H_

#include <memory>
#include <string>

#include "dtdbd/trainer.h"
#include "models/model.h"
#include "nn/linear.h"

namespace dtdbd {

class DatWrapper : public models::FakeNewsModel {
 public:
  // Takes ownership of the base student-architecture model.
  DatWrapper(std::unique_ptr<models::FakeNewsModel> base,
             const models::ModelConfig& config);

  models::ModelOutput Forward(const data::Batch& batch,
                              bool training) override;
  const std::string& name() const override { return name_; }
  int64_t feature_dim() const override { return base_->feature_dim(); }

  void CollectRngs(std::vector<Rng*>* rngs) override {
    rngs->push_back(&rng_);
    base_->CollectRngs(rngs);
  }

  models::FakeNewsModel* base() { return base_.get(); }

 private:
  std::string name_;
  float lambda_;
  Rng rng_;
  std::unique_ptr<models::FakeNewsModel> base_;
  std::unique_ptr<nn::Mlp> domain_head_;
};

// Options for training an unbiased teacher (paper Sec. V-B).
struct DatIeOptions {
  TrainOptions train;
  // Domain adversarial weight. At this repo's scaled-down dimensions the
  // discriminator needs a strong-ish pull to actually scrub the domain
  // shortcut (see EXPERIMENTS.md); combine with
  // ModelConfig::adversarial_lambda ~ 1.5 for the unbiased teacher.
  float alpha = 2.5f;
  // beta = beta_ratio * alpha; the paper fixes beta_ratio = 0.2. Set to 0
  // for plain DAT.
  float beta_ratio = 0.2f;
};

// Builds a DatWrapper around a freshly created `arch_name` model and trains
// it with the DAT-IE objective. The returned model is ready to serve as
// DTDBD's unbiased teacher (caller should Freeze() it before distillation).
std::unique_ptr<DatWrapper> TrainUnbiasedTeacher(
    const std::string& arch_name, const models::ModelConfig& config,
    const data::NewsDataset& train, const data::NewsDataset* val,
    const DatIeOptions& options);

}  // namespace dtdbd

#endif  // DTDBD_DTDBD_DAT_H_
