// Generic supervised training and evaluation over FakeNewsModel.
//
// Handles every baseline of the paper's tables: models that expose a
// domain head (EANN, EDDFN, DAT wrappers) automatically get the domain
// cross-entropy term; gradient reversal inside the model turns it into
// adversarial training.
#ifndef DTDBD_DTDBD_TRAINER_H_
#define DTDBD_DTDBD_TRAINER_H_

#include <vector>

#include "data/dataset.h"
#include "metrics/metrics.h"
#include "models/model.h"

namespace dtdbd {

struct TrainOptions {
  int epochs = 3;
  int64_t batch_size = 32;
  float lr = 1e-3f;
  float weight_decay = 0.0f;
  float grad_clip = 5.0f;
  // Weight on the domain-classification loss when the model emits domain
  // logits (alpha in DTDBD Eq. 11; EANN/EDDFN adversarial weight).
  float domain_loss_weight = 0.0f;
  // Weight on the information-entropy term (beta in Eq. 11). The paper
  // sets beta = 0.2 * alpha for DAT-IE; 0 recovers plain DAT.
  float entropy_loss_weight = 0.0f;
  uint64_t seed = 1234;
  bool verbose = false;
};

struct TrainResult {
  std::vector<double> train_loss_per_epoch;
  std::vector<metrics::EvalReport> val_reports;  // empty if no val set
};

// Trains `model` with Adam on cross-entropy (+ optional domain terms).
// `val` may be null.
TrainResult TrainSupervised(models::FakeNewsModel* model,
                            const data::NewsDataset& train,
                            const data::NewsDataset* val,
                            const TrainOptions& options);

// Argmax predictions over a dataset (no grad, eval mode).
std::vector<int> Predict(models::FakeNewsModel* model,
                         const data::NewsDataset& dataset,
                         int64_t batch_size = 64);

// Convenience: Predict + metrics::Evaluate.
metrics::EvalReport EvaluateModel(models::FakeNewsModel* model,
                                  const data::NewsDataset& dataset,
                                  int64_t batch_size = 64);

// P(fake) for each sample (softmax of logits), eval mode.
std::vector<float> PredictFakeProbability(models::FakeNewsModel* model,
                                          const data::NewsDataset& dataset,
                                          int64_t batch_size = 64);

// Intermediate features for each sample, row-major [N, feature_dim];
// used by the t-SNE visualization (Fig. 2) and analysis tools.
std::vector<float> ExtractFeatures(models::FakeNewsModel* model,
                                   const data::NewsDataset& dataset,
                                   int64_t batch_size = 64);

}  // namespace dtdbd

#endif  // DTDBD_DTDBD_TRAINER_H_
