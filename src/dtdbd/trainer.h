// Generic supervised training and evaluation over FakeNewsModel.
//
// Handles every baseline of the paper's tables: models that expose a
// domain head (EANN, EDDFN, DAT wrappers) automatically get the domain
// cross-entropy term; gradient reversal inside the model turns it into
// adversarial training.
//
// The loop is fault-tolerant (see src/train/): it can periodically persist
// an atomic checkpoint, resume from one with a bitwise-identical
// trajectory, skip NaN-poisoned steps, and roll back to the last good
// checkpoint with a reduced learning rate when training diverges.
#ifndef DTDBD_DTDBD_TRAINER_H_
#define DTDBD_DTDBD_TRAINER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "metrics/metrics.h"
#include "models/model.h"
#include "train/fault_injector.h"
#include "train/guard.h"

namespace dtdbd {

struct TrainOptions {
  int epochs = 3;
  int64_t batch_size = 32;
  float lr = 1e-3f;
  float weight_decay = 0.0f;
  float grad_clip = 5.0f;
  // Weight on the domain-classification loss when the model emits domain
  // logits (alpha in DTDBD Eq. 11; EANN/EDDFN adversarial weight).
  float domain_loss_weight = 0.0f;
  // Weight on the information-entropy term (beta in Eq. 11). The paper
  // sets beta = 0.2 * alpha for DAT-IE; 0 recovers plain DAT.
  float entropy_loss_weight = 0.0f;
  uint64_t seed = 1234;
  bool verbose = false;

  // --- Fault tolerance (src/train/) ---
  // When non-empty, an atomic checkpoint is written here every
  // `checkpoint_every` epochs and after the final epoch.
  std::string checkpoint_path;
  int checkpoint_every = 1;
  // When non-empty, the full training state (parameters, Adam moments,
  // RNG streams, loader order, epoch counter) is restored from this file
  // before the first step; the resumed trajectory is bitwise identical to
  // an uninterrupted run. On failure the result carries a non-ok status
  // and no training happens.
  std::string resume_from;
  train::GuardOptions guard;
  // Test hook for fault-injection tests; not owned. May be null.
  train::FaultInjector* fault_injector = nullptr;
};

struct TrainResult {
  // Non-ok when resume failed, the guard gave up on a diverged run, or a
  // fault injector simulated a crash. Histories cover completed epochs.
  Status status = Status::Ok();
  std::vector<double> train_loss_per_epoch;
  std::vector<metrics::EvalReport> val_reports;  // empty if no val set
};

// Trains `model` with Adam on cross-entropy (+ optional domain terms).
// `val` may be null.
TrainResult TrainSupervised(models::FakeNewsModel* model,
                            const data::NewsDataset& train,
                            const data::NewsDataset* val,
                            const TrainOptions& options);

// Argmax predictions over a dataset (no grad, eval mode). An empty dataset
// or non-positive batch_size yields an empty result.
std::vector<int> Predict(models::FakeNewsModel* model,
                         const data::NewsDataset& dataset,
                         int64_t batch_size = 64);

// Convenience: Predict + metrics::Evaluate. An empty dataset or
// non-positive batch_size yields a default (all-zero) report.
metrics::EvalReport EvaluateModel(models::FakeNewsModel* model,
                                  const data::NewsDataset& dataset,
                                  int64_t batch_size = 64);

// P(fake) for each sample (softmax of logits), eval mode. An empty dataset
// or non-positive batch_size yields an empty result.
std::vector<float> PredictFakeProbability(models::FakeNewsModel* model,
                                          const data::NewsDataset& dataset,
                                          int64_t batch_size = 64);

// Intermediate features for each sample, row-major [N, feature_dim];
// used by the t-SNE visualization (Fig. 2) and analysis tools. An empty
// dataset or non-positive batch_size yields an empty result.
std::vector<float> ExtractFeatures(models::FakeNewsModel* model,
                                   const data::NewsDataset& dataset,
                                   int64_t batch_size = 64);

}  // namespace dtdbd

#endif  // DTDBD_DTDBD_TRAINER_H_
