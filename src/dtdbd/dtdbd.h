// The full DTDBD training procedure (paper Algorithm 1).
//
// Two frozen teachers jointly guide a student:
//  * the unbiased teacher (same architecture as the student, pre-trained
//    with DAT-IE) supplies the adversarial de-biasing distillation target;
//  * the clean teacher (a fine-tuned multi-domain detector, MDFEND or
//    M3FEND) supplies the domain knowledge distillation target.
// The per-batch objective is Eq. 13:
//   L = w_ADD * L_ADD + w_DKD * L_DKD + w_S * L_CE,
// with (w_ADD, w_DKD) driven by the momentum-based dynamic adjustment
// algorithm between epochs.
#ifndef DTDBD_DTDBD_DTDBD_H_
#define DTDBD_DTDBD_DTDBD_H_

#include <vector>

#include "data/dataset.h"
#include "dtdbd/momentum.h"
#include "dtdbd/trainer.h"
#include "metrics/metrics.h"
#include "models/model.h"

namespace dtdbd {

struct DtdbdOptions {
  int epochs = 5;
  // Distillation default is larger than the supervised default (32): the
  // ADD correlation matrix is over the batch, and with 9 domains a batch
  // of 32 holds only ~3 samples per domain — too few cross-domain
  // relations for the unbiased structure to transfer.
  int64_t batch_size = 64;
  float lr = 1e-3f;  // paper uses 1e-4 at full scale
  float grad_clip = 5.0f;
  float tau = 2.0f;          // distillation temperature
  // Static pre-scale on L_ADD before the dynamic weighting. The momentum
  // rule (Eq. 14) has fixed point w_ADD ~ E[dF1 - dBias], which settles
  // around 0.1-0.2 once training plateaus; the correlation-matrix KL is
  // also numerically much smaller than the logits KL. This factor puts the
  // two distillation terms on comparable gradient scales so the dynamic
  // weights express a real trade-off rather than a foregone conclusion.
  float add_loss_scale = 8.0f;
  float momentum = 0.8f;     // m of Eq. 14
  double w_add_init = 0.5;   // w_ADD(0)
  // Floor/ceiling for the dynamic weights: w_ADD stays within
  // [min_teacher_weight, 1 - min_teacher_weight] so neither teacher is
  // silenced. Because Eq. 14's fixed point under plateaued training is
  // ~E[dF1 - dBias] ~ 0, a meaningful floor is what keeps the unbiased
  // teacher engaged in late epochs.
  double min_teacher_weight = 0.2;
  float w_student_ce = 1.0f;  // w_S, kept constant
  bool use_add = true;   // ablation: Student+DND sets false
  bool use_dkd = true;   // ablation: Student+ADD sets false
  bool use_daa = true;   // ablation: w/o DAA freezes the weights
  uint64_t seed = 99;
  bool verbose = false;

  // --- Fault tolerance (src/train/); see TrainOptions for semantics. ---
  // Checkpoints additionally carry the DAA momentum state (w_ADD and the
  // previous F1/bias of Eq. 14), so a resumed run replays the exact same
  // dynamic-weight trajectory.
  std::string checkpoint_path;
  int checkpoint_every = 1;
  std::string resume_from;
  train::GuardOptions guard;
  train::FaultInjector* fault_injector = nullptr;  // test hook, not owned
};

struct DtdbdResult {
  // Non-ok when resume failed, the guard gave up on a diverged run, or a
  // fault injector simulated a crash. Histories cover completed epochs.
  Status status = Status::Ok();
  std::vector<double> train_loss_per_epoch;
  std::vector<metrics::EvalReport> val_reports;
  std::vector<double> w_add_per_epoch;  // weight in effect during epoch r
};

// Trains `student` in place. Both teachers must already be trained; their
// parameters are frozen for the duration of the call (and left frozen, as
// in the paper). Either teacher may be null when the corresponding loss is
// disabled by the ablation flags.
DtdbdResult TrainDtdbd(models::FakeNewsModel* student,
                       models::FakeNewsModel* unbiased_teacher,
                       models::FakeNewsModel* clean_teacher,
                       const data::NewsDataset& train,
                       const data::NewsDataset& val,
                       const DtdbdOptions& options);

}  // namespace dtdbd

#endif  // DTDBD_DTDBD_DTDBD_H_
