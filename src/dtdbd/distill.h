// DTDBD's two distillation losses.
//
// Adversarial de-biasing distillation (Eq. 5-6): bias lives in the
// *relative relationships among samples*, so the knowledge transferred from
// the unbiased teacher is the batch correlation matrix M of pairwise
// squared Euclidean distances between intermediate features. The student
// matches the teacher's softened row distributions under a temperature-tau
// KL, scaled by tau^2.
//
// Domain knowledge distillation (Eq. 12): classic logits distillation from
// the clean teacher's classifier, transferring fuzzy cross-domain knowledge
// while regularizing away redundant domain-specific shortcuts.
#ifndef DTDBD_DTDBD_DISTILL_H_
#define DTDBD_DTDBD_DISTILL_H_

#include "tensor/tensor.h"

namespace dtdbd {

// L_ADD: teacher_features and student_features are [B, F_t] / [B, F_s]
// (feature widths may differ — only the BxB correlation matrices are
// compared). No gradient flows to the teacher.
tensor::Tensor AdversarialDebiasDistillLoss(
    const tensor::Tensor& teacher_features,
    const tensor::Tensor& student_features, float tau);

// L_DKD: logits distillation, teacher [B,C] vs student [B,C].
tensor::Tensor DomainKnowledgeDistillLoss(
    const tensor::Tensor& teacher_logits,
    const tensor::Tensor& student_logits, float tau);

}  // namespace dtdbd

#endif  // DTDBD_DTDBD_DISTILL_H_
