// Momentum-based dynamic adjustment of the two teachers' weights
// (paper Eq. 13-15).
//
// After every epoch the student is evaluated; from the change in
// performance (dF1) and bias (dBias = d(FNED+FPED)) the adversarial
// de-biasing weight is updated with momentum m:
//   w_ADD(r) = m * w_ADD(r-1) - (1-m) * (dBias - dF1),
//   w_DKD(r) = 1 - w_ADD(r).
// Falling bias (dBias < 0) and rising F1 (dF1 > 0) both push w_ADD up:
// the algorithm reinforces whichever teacher is currently paying off.
// Weights are clamped to [min_weight, 1 - min_weight] so neither teacher is
// ever silenced completely.
#ifndef DTDBD_DTDBD_MOMENTUM_H_
#define DTDBD_DTDBD_MOMENTUM_H_

namespace dtdbd {

class MomentumWeightAdjuster {
 public:
  // Cross-epoch carry-over (Eq. 14 state). Checkpoints persist it so a
  // resumed run replays the exact same weight trajectory.
  struct State {
    double w_add = 0.0;
    bool has_previous = false;
    double prev_f1 = 0.0;
    double prev_bias = 0.0;
  };

  MomentumWeightAdjuster(double momentum, double initial_w_add,
                         double min_weight = 0.05);

  // Feeds the epoch-r validation measurements; from the second call on the
  // weights move. Returns the new w_ADD.
  double Update(double f1, double bias_total);

  double w_add() const { return w_add_; }
  double w_dkd() const { return 1.0 - w_add_; }

  State GetState() const;
  void SetState(const State& state);

 private:
  double momentum_;
  double min_weight_;
  double w_add_;
  bool has_previous_ = false;
  double prev_f1_ = 0.0;
  double prev_bias_ = 0.0;
};

}  // namespace dtdbd

#endif  // DTDBD_DTDBD_MOMENTUM_H_
