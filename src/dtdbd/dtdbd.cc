#include "dtdbd/dtdbd.h"

#include <map>

#include "common/logging.h"
#include "dtdbd/distill.h"
#include "tensor/loss.h"
#include "tensor/ops.h"
#include "tensor/optim.h"
#include "train/checkpoint.h"

namespace dtdbd {

using tensor::Tensor;

DtdbdResult TrainDtdbd(models::FakeNewsModel* student,
                       models::FakeNewsModel* unbiased_teacher,
                       models::FakeNewsModel* clean_teacher,
                       const data::NewsDataset& train,
                       const data::NewsDataset& val,
                       const DtdbdOptions& options) {
  DTDBD_CHECK(student != nullptr);
  DTDBD_CHECK_GT(options.batch_size, 0);
  DTDBD_CHECK(!options.use_add || unbiased_teacher != nullptr)
      << "ADD enabled but no unbiased teacher";
  DTDBD_CHECK(!options.use_dkd || clean_teacher != nullptr)
      << "DKD enabled but no clean teacher";
  DTDBD_CHECK(options.use_add || options.use_dkd)
      << "at least one distillation loss must be enabled";

  // Freeze the teachers (paper: teacher weights are frozen during
  // distillation).
  if (unbiased_teacher != nullptr) unbiased_teacher->Freeze();
  if (clean_teacher != nullptr) clean_teacher->Freeze();

  std::vector<Tensor> params;
  for (auto& p : student->Parameters()) {
    if (p.requires_grad()) params.push_back(p);
  }
  tensor::Adam optimizer(std::move(params), options.lr);
  data::DataLoader loader(&train, options.batch_size, /*shuffle=*/true,
                          options.seed);
  std::map<std::string, Tensor> named = student->NamedParameters();
  std::vector<Rng*> rngs;
  student->CollectRngs(&rngs);

  MomentumWeightAdjuster adjuster(options.momentum, options.w_add_init,
                                  options.min_teacher_weight);

  DtdbdResult result;
  double w_add = options.w_add_init;
  double w_dkd = 1.0 - w_add;

  int epoch = 0;
  if (!options.resume_from.empty()) {
    auto loaded = train::LoadCheckpoint(options.resume_from);
    if (!loaded.ok()) {
      result.status = loaded.status();
      return result;
    }
    const train::CheckpointState& state = loaded.value();
    if (state.kind != "dtdbd") {
      result.status = Status::InvalidArgument(
          "cannot resume DTDBD training from a '" + state.kind +
          "' checkpoint");
      return result;
    }
    result.status =
        train::ApplyToTraining(state, &named, &optimizer, rngs, &loader);
    if (!result.status.ok()) return result;
    epoch = static_cast<int>(state.epochs_done);
    w_add = state.daa.w_add;
    w_dkd = state.daa.w_dkd;
    adjuster.SetState({state.daa.adjuster_w_add, state.daa.has_previous,
                       state.daa.prev_f1, state.daa.prev_bias});
    if (options.verbose) {
      DTDBD_LOG(Info) << "DTDBD resumed at epoch " << epoch << " from "
                      << options.resume_from;
    }
  }

  // Single-loss ablations put the whole distillation budget on that loss
  // (re-applied after resume: the flags, not the checkpoint, own this).
  if (!options.use_add) {
    w_add = 0.0;
    w_dkd = 1.0;
  } else if (!options.use_dkd) {
    w_add = 1.0;
    w_dkd = 0.0;
  }

  // Packs the live DAA values into the checkpoint's plain-value snapshot.
  auto capture = [&](int64_t epochs_done) {
    train::CheckpointState state = train::CaptureState(
        "dtdbd", epochs_done, named, optimizer, rngs, loader);
    const MomentumWeightAdjuster::State daa = adjuster.GetState();
    state.daa = train::DaaSnapshot{w_add,           w_dkd,
                                   daa.w_add,       daa.has_previous,
                                   daa.prev_f1,     daa.prev_bias};
    return state;
  };

  train::TrainingGuard guard(options.guard);
  train::CheckpointState last_good = capture(epoch);
  int64_t global_step = static_cast<int64_t>(epoch) * loader.num_batches();

  while (epoch < options.epochs) {
    loader.NewEpoch();
    double epoch_loss = 0.0;
    double epoch_ce = 0.0, epoch_add = 0.0, epoch_dkd = 0.0;
    const double epoch_w_add = w_add;
    bool redo_epoch = false;
    for (int64_t b = 0; b < loader.num_batches(); ++b, ++global_step) {
      if (options.fault_injector != nullptr &&
          options.fault_injector->ShouldAbort(global_step)) {
        result.status =
            Status::Internal("simulated crash (fault injector) at step " +
                             std::to_string(global_step));
        return result;
      }
      const data::Batch batch = loader.GetBatch(b);

      // Teachers run without autograd: they are frozen knowledge sources.
      Tensor teacher_features, teacher_logits;
      {
        tensor::NoGradGuard no_grad;
        if (options.use_add) {
          teacher_features =
              unbiased_teacher->Forward(batch, /*training=*/false).features;
        }
        if (options.use_dkd) {
          teacher_logits =
              clean_teacher->Forward(batch, /*training=*/false).logits;
        }
      }

      models::ModelOutput out = student->Forward(batch, /*training=*/true);
      Tensor l_ce = tensor::CrossEntropyLoss(out.logits, batch.labels);
      Tensor loss = tensor::ScalarMul(l_ce, options.w_student_ce);
      double batch_add = 0.0, batch_dkd = 0.0;
      if (options.use_add) {
        Tensor l_add = tensor::ScalarMul(
            AdversarialDebiasDistillLoss(teacher_features, out.features,
                                         options.tau),
            options.add_loss_scale);
        batch_add = l_add.item();
        loss = tensor::Add(loss,
                           tensor::ScalarMul(l_add, static_cast<float>(w_add)));
      }
      if (options.use_dkd) {
        Tensor l_dkd = DomainKnowledgeDistillLoss(teacher_logits, out.logits,
                                                  options.tau);
        batch_dkd = l_dkd.item();
        loss = tensor::Add(loss,
                           tensor::ScalarMul(l_dkd, static_cast<float>(w_dkd)));
      }

      optimizer.ZeroGrad();
      loss.Backward();
      if (options.fault_injector != nullptr) {
        options.fault_injector->MaybeCorruptGradients(global_step,
                                                      optimizer.params());
      }
      const auto verdict = guard.Inspect(loss.item(), optimizer.params());
      if (verdict == train::TrainingGuard::Verdict::kOk) {
        tensor::ClipGradNorm(optimizer.params(), options.grad_clip);
        optimizer.Step();
        epoch_loss += loss.item();
        epoch_ce += l_ce.item();
        epoch_add += batch_add;
        epoch_dkd += batch_dkd;
      } else if (verdict == train::TrainingGuard::Verdict::kSkip) {
        DTDBD_LOG(Warning) << "DTDBD skipped non-finite step " << global_step;
      } else if (verdict == train::TrainingGuard::Verdict::kRollback) {
        Status s =
            train::ApplyToTraining(last_good, &named, &optimizer, rngs, &loader);
        DTDBD_CHECK(s.ok()) << s.ToString();
        w_add = last_good.daa.w_add;
        w_dkd = last_good.daa.w_dkd;
        adjuster.SetState({last_good.daa.adjuster_w_add,
                           last_good.daa.has_previous, last_good.daa.prev_f1,
                           last_good.daa.prev_bias});
        optimizer.set_lr(optimizer.lr() * options.guard.rollback_lr_decay);
        guard.OnRollback();
        DTDBD_LOG(Warning) << "DTDBD rolled back to epoch "
                           << last_good.epochs_done << ", lr reduced to "
                           << optimizer.lr();
        epoch = static_cast<int>(last_good.epochs_done);
        redo_epoch = true;
        break;
      } else {  // kGiveUp
        result.status = Status::Internal(
            "training diverged: " + std::to_string(guard.skipped_steps()) +
            " non-finite steps, rollback budget exhausted");
        return result;
      }
    }
    if (redo_epoch) continue;
    epoch_loss /= static_cast<double>(loader.num_batches());
    result.train_loss_per_epoch.push_back(epoch_loss);
    result.w_add_per_epoch.push_back(epoch_w_add);

    // Epoch-end evaluation drives the momentum-based dynamic adjustment.
    metrics::EvalReport report = EvaluateModel(student, val);
    result.val_reports.push_back(report);
    if (options.use_add && options.use_dkd && options.use_daa) {
      w_add = adjuster.Update(report.f1, report.Total());
      w_dkd = 1.0 - w_add;
    }
    if (options.verbose) {
      const double nb = static_cast<double>(loader.num_batches());
      DTDBD_LOG(Info) << "DTDBD epoch " << epoch << " loss=" << epoch_loss
                      << " (ce=" << epoch_ce / nb << " add=" << epoch_add / nb
                      << " dkd=" << epoch_dkd / nb << ") val "
                      << report.Summary() << " w_add=" << w_add;
    }
    ++epoch;
    last_good = capture(epoch);
    if (!options.checkpoint_path.empty() && options.checkpoint_every > 0 &&
        (epoch % options.checkpoint_every == 0 || epoch == options.epochs)) {
      Status s = train::SaveCheckpoint(last_good, options.checkpoint_path);
      if (!s.ok()) {
        DTDBD_LOG(Error) << "checkpoint save failed: " << s.ToString();
      }
    }
  }
  return result;
}

}  // namespace dtdbd
