#include "dtdbd/dtdbd.h"

#include "common/logging.h"
#include "dtdbd/distill.h"
#include "tensor/loss.h"
#include "tensor/ops.h"
#include "tensor/optim.h"

namespace dtdbd {

using tensor::Tensor;

DtdbdResult TrainDtdbd(models::FakeNewsModel* student,
                       models::FakeNewsModel* unbiased_teacher,
                       models::FakeNewsModel* clean_teacher,
                       const data::NewsDataset& train,
                       const data::NewsDataset& val,
                       const DtdbdOptions& options) {
  DTDBD_CHECK(student != nullptr);
  DTDBD_CHECK(!options.use_add || unbiased_teacher != nullptr)
      << "ADD enabled but no unbiased teacher";
  DTDBD_CHECK(!options.use_dkd || clean_teacher != nullptr)
      << "DKD enabled but no clean teacher";
  DTDBD_CHECK(options.use_add || options.use_dkd)
      << "at least one distillation loss must be enabled";

  // Freeze the teachers (paper: teacher weights are frozen during
  // distillation).
  if (unbiased_teacher != nullptr) unbiased_teacher->Freeze();
  if (clean_teacher != nullptr) clean_teacher->Freeze();

  std::vector<Tensor> params;
  for (auto& p : student->Parameters()) {
    if (p.requires_grad()) params.push_back(p);
  }
  tensor::Adam optimizer(std::move(params), options.lr);
  data::DataLoader loader(&train, options.batch_size, /*shuffle=*/true,
                          options.seed);

  MomentumWeightAdjuster adjuster(options.momentum, options.w_add_init,
                                  options.min_teacher_weight);

  DtdbdResult result;
  double w_add = options.w_add_init;
  double w_dkd = 1.0 - w_add;
  // Single-loss ablations put the whole distillation budget on that loss.
  if (!options.use_add) {
    w_add = 0.0;
    w_dkd = 1.0;
  } else if (!options.use_dkd) {
    w_add = 1.0;
    w_dkd = 0.0;
  }

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    loader.NewEpoch();
    double epoch_loss = 0.0;
    double epoch_ce = 0.0, epoch_add = 0.0, epoch_dkd = 0.0;
    result.w_add_per_epoch.push_back(w_add);
    for (int64_t b = 0; b < loader.num_batches(); ++b) {
      const data::Batch batch = loader.GetBatch(b);

      // Teachers run without autograd: they are frozen knowledge sources.
      Tensor teacher_features, teacher_logits;
      {
        tensor::NoGradGuard no_grad;
        if (options.use_add) {
          teacher_features =
              unbiased_teacher->Forward(batch, /*training=*/false).features;
        }
        if (options.use_dkd) {
          teacher_logits =
              clean_teacher->Forward(batch, /*training=*/false).logits;
        }
      }

      models::ModelOutput out = student->Forward(batch, /*training=*/true);
      Tensor l_ce = tensor::CrossEntropyLoss(out.logits, batch.labels);
      epoch_ce += l_ce.item();
      Tensor loss = tensor::ScalarMul(l_ce, options.w_student_ce);
      if (options.use_add) {
        Tensor l_add = tensor::ScalarMul(
            AdversarialDebiasDistillLoss(teacher_features, out.features,
                                         options.tau),
            options.add_loss_scale);
        epoch_add += l_add.item();
        loss = tensor::Add(loss,
                           tensor::ScalarMul(l_add, static_cast<float>(w_add)));
      }
      if (options.use_dkd) {
        Tensor l_dkd = DomainKnowledgeDistillLoss(teacher_logits, out.logits,
                                                  options.tau);
        epoch_dkd += l_dkd.item();
        loss = tensor::Add(loss,
                           tensor::ScalarMul(l_dkd, static_cast<float>(w_dkd)));
      }

      optimizer.ZeroGrad();
      loss.Backward();
      tensor::ClipGradNorm(optimizer.params(), options.grad_clip);
      optimizer.Step();
      epoch_loss += loss.item();
    }
    epoch_loss /= static_cast<double>(loader.num_batches());
    result.train_loss_per_epoch.push_back(epoch_loss);

    // Epoch-end evaluation drives the momentum-based dynamic adjustment.
    metrics::EvalReport report = EvaluateModel(student, val);
    result.val_reports.push_back(report);
    if (options.use_add && options.use_dkd && options.use_daa) {
      w_add = adjuster.Update(report.f1, report.Total());
      w_dkd = 1.0 - w_add;
    }
    if (options.verbose) {
      const double nb = static_cast<double>(loader.num_batches());
      DTDBD_LOG(Info) << "DTDBD epoch " << epoch << " loss=" << epoch_loss
                      << " (ce=" << epoch_ce / nb << " add=" << epoch_add / nb
                      << " dkd=" << epoch_dkd / nb << ") val "
                      << report.Summary() << " w_add=" << w_add;
    }
  }
  return result;
}

}  // namespace dtdbd
