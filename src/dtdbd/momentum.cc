#include "dtdbd/momentum.h"

#include <algorithm>

#include "common/check.h"

namespace dtdbd {

MomentumWeightAdjuster::MomentumWeightAdjuster(double momentum,
                                               double initial_w_add,
                                               double min_weight)
    : momentum_(momentum), min_weight_(min_weight), w_add_(initial_w_add) {
  DTDBD_CHECK_GE(momentum, 0.0);
  DTDBD_CHECK_LT(momentum, 1.0);
  DTDBD_CHECK_GE(min_weight, 0.0);
  DTDBD_CHECK_LT(min_weight, 0.5);
  DTDBD_CHECK_GE(initial_w_add, min_weight);
  DTDBD_CHECK_LE(initial_w_add, 1.0 - min_weight);
}

MomentumWeightAdjuster::State MomentumWeightAdjuster::GetState() const {
  return State{w_add_, has_previous_, prev_f1_, prev_bias_};
}

void MomentumWeightAdjuster::SetState(const State& state) {
  w_add_ = state.w_add;
  has_previous_ = state.has_previous;
  prev_f1_ = state.prev_f1;
  prev_bias_ = state.prev_bias;
}

double MomentumWeightAdjuster::Update(double f1, double bias_total) {
  if (has_previous_) {
    const double delta_f1 = f1 - prev_f1_;
    const double delta_bias = bias_total - prev_bias_;
    // The raw (dBias - dF1) difference is clamped to +/-1 so one noisy
    // validation epoch (bias metrics on small splits swing by several
    // tenths) cannot slam the weight to an extreme in a single update.
    const double signal = std::clamp(delta_bias - delta_f1, -1.0, 1.0);
    w_add_ = momentum_ * w_add_ - (1.0 - momentum_) * signal;
    w_add_ = std::clamp(w_add_, min_weight_, 1.0 - min_weight_);
  }
  has_previous_ = true;
  prev_f1_ = f1;
  prev_bias_ = bias_total;
  return w_add_;
}

}  // namespace dtdbd
