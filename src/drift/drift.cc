#include "drift/drift.h"

#include <algorithm>
#include <string>
#include <utility>

namespace dtdbd::drift {

namespace {

// Ratio the phase actually uses for `domain`: an explicit in-range entry,
// or the corpus marginal when the vector is empty / the entry is negative.
double EffectiveRatio(const DriftPhase& phase, int domain,
                      const std::vector<double>& marginals) {
  if (phase.fake_ratio.empty()) return marginals[domain];
  const double r = phase.fake_ratio[domain];
  return r < 0.0 ? marginals[domain] : r;
}

}  // namespace

DriftStream::DriftStream(const data::NewsDataset* dataset,
                         DriftTraceConfig config)
    : dataset_(dataset), config_(std::move(config)), rng_(config_.seed) {
  const int num_domains = dataset_->num_domains();
  pools_.assign(num_domains, {std::vector<int64_t>(), std::vector<int64_t>()});
  marginals_.assign(num_domains, 0.0);
  for (int64_t i = 0; i < dataset_->size(); ++i) {
    const data::NewsSample& s = dataset_->samples[static_cast<size_t>(i)];
    pools_[s.domain][s.label == data::kFake ? 1 : 0].push_back(i);
  }
  for (int d = 0; d < num_domains; ++d) {
    const int64_t real = static_cast<int64_t>(pools_[d][0].size());
    const int64_t fake = static_cast<int64_t>(pools_[d][1].size());
    if (real + fake > 0) {
      marginals_[d] =
          static_cast<double>(fake) / static_cast<double>(real + fake);
    }
  }
}

StatusOr<DriftStream> DriftStream::Create(const data::NewsDataset* dataset,
                                          DriftTraceConfig config) {
  if (dataset == nullptr || dataset->size() == 0) {
    return Status::InvalidArgument(
        "drift stream requires a non-empty corpus");
  }
  if (config.phases.empty()) {
    return Status::InvalidArgument("drift trace needs at least one phase");
  }
  const int num_domains = dataset->num_domains();
  for (size_t p = 0; p < config.phases.size(); ++p) {
    const DriftPhase& phase = config.phases[p];
    const std::string where = "phase " + std::to_string(p);
    if (p == 0 && phase.start_index != 0) {
      return Status::InvalidArgument(
          "phase 0 must start at index 0, got " +
          std::to_string(phase.start_index));
    }
    if (p > 0 && phase.start_index <= config.phases[p - 1].start_index) {
      return Status::InvalidArgument(
          where + " start_index " + std::to_string(phase.start_index) +
          " must exceed the previous phase's " +
          std::to_string(config.phases[p - 1].start_index));
    }
    if (static_cast<int>(phase.domain_weights.size()) != num_domains) {
      return Status::InvalidArgument(
          where + " has " + std::to_string(phase.domain_weights.size()) +
          " domain weights for a " + std::to_string(num_domains) +
          "-domain corpus");
    }
    double weight_sum = 0.0;
    for (int d = 0; d < num_domains; ++d) {
      if (phase.domain_weights[d] < 0.0) {
        return Status::InvalidArgument(where + " domain " +
                                       std::to_string(d) +
                                       " has a negative weight");
      }
      weight_sum += phase.domain_weights[d];
    }
    if (weight_sum <= 0.0) {
      return Status::InvalidArgument(where +
                                     " has no positive domain weight");
    }
    if (!phase.fake_ratio.empty() &&
        static_cast<int>(phase.fake_ratio.size()) != num_domains) {
      return Status::InvalidArgument(
          where + " has " + std::to_string(phase.fake_ratio.size()) +
          " fake ratios for a " + std::to_string(num_domains) +
          "-domain corpus (empty = all marginal)");
    }
    for (size_t d = 0; d < phase.fake_ratio.size(); ++d) {
      if (phase.fake_ratio[d] > 1.0) {
        return Status::InvalidArgument(
            where + " domain " + std::to_string(d) + " fake ratio " +
            std::to_string(phase.fake_ratio[d]) +
            " must be in [0, 1] (negative = corpus marginal)");
      }
    }
  }

  DriftStream stream(dataset, std::move(config));
  // Reachability check needs the pools the constructor just built: every
  // (domain, label) cell a phase can draw must be backed by >= 1 sample.
  for (size_t p = 0; p < stream.config_.phases.size(); ++p) {
    const DriftPhase& phase = stream.config_.phases[p];
    for (int d = 0; d < num_domains; ++d) {
      if (phase.domain_weights[d] <= 0.0) continue;
      const int64_t real = static_cast<int64_t>(stream.pools_[d][0].size());
      const int64_t fake = static_cast<int64_t>(stream.pools_[d][1].size());
      if (real + fake == 0) {
        return Status::InvalidArgument(
            "phase " + std::to_string(p) + " weights domain " +
            std::to_string(d) + " but the corpus has no samples for it");
      }
      const double ratio = EffectiveRatio(phase, d, stream.marginals_);
      if (ratio > 0.0 && fake == 0) {
        return Status::InvalidArgument(
            "phase " + std::to_string(p) + " asks for fake samples in " +
            "domain " + std::to_string(d) + " but the corpus has none");
      }
      if (ratio < 1.0 && real == 0) {
        return Status::InvalidArgument(
            "phase " + std::to_string(p) + " asks for real samples in " +
            "domain " + std::to_string(d) + " but the corpus has none");
      }
    }
  }
  return stream;
}

LabeledRequest DriftStream::Next() {
  while (phase_ + 1 < num_phases() &&
         config_.phases[static_cast<size_t>(phase_ + 1)].start_index <=
             index_) {
    ++phase_;
  }
  const DriftPhase& phase = config_.phases[static_cast<size_t>(phase_)];
  const int domain = rng_.Categorical(phase.domain_weights);
  const double ratio = EffectiveRatio(phase, domain, marginals_);
  // The Bernoulli draw happens unconditionally so the stream position in
  // the RNG sequence is independent of which ratios are degenerate.
  const int label = rng_.Bernoulli(ratio) ? data::kFake : data::kReal;
  const std::vector<int64_t>& pool =
      pools_[domain][label == data::kFake ? 1 : 0];
  const int64_t pick =
      pool[static_cast<size_t>(rng_.UniformInt(
          static_cast<int64_t>(pool.size())))];
  const data::NewsSample& sample =
      dataset_->samples[static_cast<size_t>(pick)];

  LabeledRequest out;
  out.request.tokens = sample.tokens;
  out.request.domain = sample.domain;
  out.request.style = sample.style;
  out.request.emotion = sample.emotion;
  out.label = sample.label;
  out.domain = sample.domain;
  out.index = index_;
  out.phase = phase_;
  ++index_;
  return out;
}

data::NewsDataset WithoutDomains(const data::NewsDataset& dataset,
                                 const std::vector<int>& excluded) {
  data::NewsDataset filtered;
  filtered.vocab = dataset.vocab;
  filtered.domain_names = dataset.domain_names;
  filtered.seq_len = dataset.seq_len;
  for (const data::NewsSample& sample : dataset.samples) {
    if (std::find(excluded.begin(), excluded.end(), sample.domain) ==
        excluded.end()) {
      filtered.samples.push_back(sample);
    }
  }
  return filtered;
}

}  // namespace dtdbd::drift
