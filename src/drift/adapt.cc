#include "drift/adapt.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "dtdbd/trainer.h"
#include "tensor/optim.h"
#include "tensor/serialize.h"
#include "train/checkpoint.h"

namespace dtdbd::drift {

OnlineAdapter::OnlineAdapter(
    std::function<std::unique_ptr<models::FakeNewsModel>()> factory,
    const data::NewsDataset* reference, OnlineAdapterOptions options)
    : reference_(reference),
      options_(std::move(options)),
      model_(factory()) {
  ring_.resize(static_cast<size_t>(std::max<int64_t>(1, options_.window)));
}

Status OnlineAdapter::WarmStart(const std::string& checkpoint_path) {
  DTDBD_ASSIGN_OR_RETURN(train::CheckpointState state,
                         train::LoadCheckpoint(checkpoint_path));
  std::map<std::string, tensor::Tensor> named = model_->NamedParameters();
  return tensor::RestoreInto(state.model, &named);
}

void OnlineAdapter::Ingest(const serve::InferenceRequest& request,
                           int label) {
  data::NewsSample sample;
  sample.tokens = request.tokens;
  sample.tokens.resize(static_cast<size_t>(reference_->seq_len),
                       reference_->vocab->pad_id());
  sample.domain = request.domain;
  sample.label = label;
  sample.style = request.style;
  sample.emotion = request.emotion;
  ring_[static_cast<size_t>(next_)] = std::move(sample);
  next_ = (next_ + 1) % static_cast<int64_t>(ring_.size());
  if (count_ < static_cast<int64_t>(ring_.size())) ++count_;
}

StatusOr<std::string> OnlineAdapter::AdaptOnce(const std::string& filename) {
  if (count_ < options_.min_samples) {
    return Status::FailedPrecondition(
        "adaptation window holds " + std::to_string(count_) +
        " samples, need at least " + std::to_string(options_.min_samples));
  }
  data::NewsDataset window;
  window.vocab = reference_->vocab;
  window.domain_names = reference_->domain_names;
  window.seq_len = reference_->seq_len;
  window.samples.reserve(static_cast<size_t>(count_));
  const int64_t capacity = static_cast<int64_t>(ring_.size());
  // Oldest-first so the loader's shuffle seed is the only order authority.
  for (int64_t i = count_; i > 0; --i) {
    const int64_t slot = ((next_ - i) % capacity + capacity) % capacity;
    window.samples.push_back(ring_[static_cast<size_t>(slot)]);
  }

  TrainOptions train_options;
  train_options.epochs = options_.epochs;
  train_options.batch_size = options_.batch_size;
  train_options.lr = options_.lr;
  // Vary the shuffle stream per generation, deterministically.
  train_options.seed = options_.seed + static_cast<uint64_t>(adaptations_);
  const TrainResult result =
      TrainSupervised(model_.get(), window, nullptr, train_options);
  if (!result.status.ok()) return result.status;
  ++adaptations_;

  // Publish through the standard atomic checkpoint path. The optimizer and
  // loader in the capture are placeholders — a servable checkpoint only
  // needs the parameter map (Server::LoadSessionFor reads nothing else).
  std::vector<tensor::Tensor> trainable;
  for (auto& p : model_->Parameters()) {
    if (p.requires_grad()) trainable.push_back(p);
  }
  tensor::Adam adam(trainable, options_.lr, 0.9f, 0.999f, 1e-8f, 0.0f);
  data::DataLoader loader(&window, options_.batch_size, /*shuffle=*/false, 0);
  std::vector<Rng*> rngs;
  model_->CollectRngs(&rngs);
  const train::CheckpointState state = train::CaptureState(
      "supervised", adaptations_, model_->NamedParameters(), adam, rngs,
      loader);
  const std::string path = options_.checkpoint_dir + "/" + filename;
  DTDBD_RETURN_IF_ERROR(train::SaveCheckpoint(state, path));
  return path;
}

}  // namespace dtdbd::drift
