// Streaming domain-shift workload generation.
//
// Production fake-news traffic is non-stationary: the domain mix moves with
// the news cycle, the fake ratio inside a domain drifts as campaigns start
// and stop, and domains the model never trained on appear mid-stream. A
// DriftStream turns a labeled corpus into exactly such a request stream: a
// schedule of phases over virtual time (the request index), each phase
// fixing a domain mixture and per-domain fake ratios, with phase changes
// taking effect at scheduled indices. "Unseen" domains are modeled by
// training the served model on a domain-filtered corpus (WithoutDomains)
// while the stream draws from the full one — the requests stay valid
// against the deployed limits (the domain id exists in the vocabulary of
// domains), the model has simply never seen a single example.
//
// Everything is driven by one seeded Rng, so a (corpus, config) pair yields
// a bit-identical stream on every run and platform — the property the drift
// soak and bench legs pin their assertions on. The emitted LabeledRequest
// carries the ground-truth label alongside the wire-ready request, so one
// stream drives both the serving path (Submit or the socket client) and
// the labeled-feedback path (Server::RecordFeedback).
#ifndef DTDBD_DRIFT_DRIFT_H_
#define DTDBD_DRIFT_DRIFT_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/dataset.h"
#include "serve/validation.h"

namespace dtdbd::drift {

// One stationary segment of the trace. `domain_weights` (size == corpus
// num_domains) is the unnormalized mixture requests are drawn from;
// `fake_ratio` is per-domain P(label == fake): empty = every domain uses
// its corpus marginal, a negative entry = that domain uses its marginal,
// otherwise the entry must lie in [0, 1].
struct DriftPhase {
  int64_t start_index = 0;  // first request index this phase governs
  std::vector<double> domain_weights;
  std::vector<double> fake_ratio;
};

struct DriftTraceConfig {
  std::vector<DriftPhase> phases;
  uint64_t seed = 0;
};

// A request plus the ground truth the serving path must never see but the
// feedback path needs: the label, the drawn domain, and where in the trace
// it sits (for per-phase / per-window bookkeeping by the driver).
struct LabeledRequest {
  serve::InferenceRequest request;
  int label = data::kReal;
  int domain = 0;
  int64_t index = 0;
  int phase = 0;
};

// Deterministic phase-scheduled request stream over a labeled corpus.
class DriftStream {
 public:
  // Validates the schedule against the corpus and fails with a typed
  // kInvalidArgument naming the offending phase/field: phases must be
  // non-empty, start at index 0, and strictly increase; weights must match
  // the corpus domain count, be non-negative, and sum positive; explicit
  // fake ratios must lie in [0, 1]; and every (domain, label) cell a phase
  // can draw (weight > 0 and ratio reaches the label) must have at least
  // one corpus sample backing it. `dataset` must outlive the stream.
  static StatusOr<DriftStream> Create(const data::NewsDataset* dataset,
                                      DriftTraceConfig config);

  // Draws the next request. The stream is infinite: the phase schedule is
  // consulted by index, the last phase governs forever.
  LabeledRequest Next();

  int64_t index() const { return index_; }
  int current_phase() const { return phase_; }
  int num_phases() const { return static_cast<int>(config_.phases.size()); }

 private:
  DriftStream(const data::NewsDataset* dataset, DriftTraceConfig config);

  const data::NewsDataset* dataset_;
  DriftTraceConfig config_;
  Rng rng_;
  int64_t index_ = 0;
  int phase_ = 0;
  // pools_[domain][label] -> sample indices; marginals_[domain] = corpus
  // P(fake | domain), the ratio used when a phase defers to the marginal.
  std::vector<std::vector<std::vector<int64_t>>> pools_;
  std::vector<double> marginals_;
};

// A copy of `dataset` with every sample of the listed domains removed but
// `domain_names` (and therefore num_domains and the serving RequestLimits)
// intact — the "unseen domain" construction: the id stays valid, the
// training set simply never contained it.
data::NewsDataset WithoutDomains(const data::NewsDataset& dataset,
                                 const std::vector<int>& excluded);

}  // namespace dtdbd::drift

#endif  // DTDBD_DRIFT_DRIFT_H_
