// Online adaptation: periodic fine-tuning on recent labeled feedback.
//
// The serving side of the drift loop (QualityMonitor, quality-aware canary
// gates) only DETECTS drift; this is the half that reacts to it. An
// OnlineAdapter owns a persistent training replica of the served model,
// ingests the labeled feedback stream into a bounded window, and on demand
// fine-tunes the replica on that window and publishes the result as a
// servable checkpoint through the same atomic-write path training uses —
// so the server picks it up via its existing hot-reload or canary
// machinery, zero new deployment surface.
//
// The adapter deliberately lives OUTSIDE src/serve/: the server knows
// nothing about training, the adapter knows nothing about queues or
// barriers; the only coupling is a checkpoint file path. Determinism: with
// a fixed seed, the same ingest sequence produces bitwise-identical
// checkpoints at any thread count (TrainSupervised's contract).
#ifndef DTDBD_DRIFT_ADAPT_H_
#define DTDBD_DRIFT_ADAPT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/status.h"
#include "data/dataset.h"
#include "models/model.h"
#include "serve/validation.h"

namespace dtdbd::drift {

struct OnlineAdapterOptions {
  // Sliding window of most-recent labeled feedbacks the fine-tune sees.
  int64_t window = 512;
  // AdaptOnce refuses (kFailedPrecondition) below this many observations —
  // fine-tuning on a handful of samples destroys more than it fixes.
  int64_t min_samples = 64;
  int epochs = 2;
  int64_t batch_size = 16;
  float lr = 1e-3f;
  uint64_t seed = 77;
  // Directory checkpoints are published into (must exist).
  std::string checkpoint_dir;
};

class OnlineAdapter {
 public:
  // `factory` builds the training replica (same config as the served
  // model); `reference` supplies vocab / domain names / seq_len for the
  // window datasets and must outlive the adapter.
  OnlineAdapter(std::function<std::unique_ptr<models::FakeNewsModel>()>
                    factory,
                const data::NewsDataset* reference,
                OnlineAdapterOptions options);

  // Loads a servable checkpoint's parameters into the replica, so
  // adaptation fine-tunes the DEPLOYED weights instead of a fresh init.
  Status WarmStart(const std::string& checkpoint_path);

  // Appends one labeled observation to the window (oldest evicted once
  // `window` is full). Tokens are padded/truncated to the reference
  // seq_len; the request is assumed already served, hence valid.
  void Ingest(const serve::InferenceRequest& request, int label);

  // Fine-tunes the replica on the current window and atomically publishes
  // `<checkpoint_dir>/<filename>`; returns the full path. Typed failures:
  // kFailedPrecondition under min_samples, the training status if the run
  // diverges, the save status if the write fails.
  StatusOr<std::string> AdaptOnce(const std::string& filename);

  int64_t size() const { return count_; }
  int64_t adaptations() const { return adaptations_; }
  models::FakeNewsModel* model() { return model_.get(); }

 private:
  const data::NewsDataset* reference_;
  OnlineAdapterOptions options_;
  std::unique_ptr<models::FakeNewsModel> model_;
  // Ring of window-normalized samples (same shape as the training corpus).
  std::vector<data::NewsSample> ring_;
  int64_t next_ = 0;
  int64_t count_ = 0;
  int64_t adaptations_ = 0;
};

}  // namespace dtdbd::drift

#endif  // DTDBD_DRIFT_ADAPT_H_
