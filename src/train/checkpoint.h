// Atomic training checkpoints.
//
// A checkpoint captures everything a training loop needs to continue with a
// bitwise-identical trajectory after a crash: model parameters, Adam
// moments, every RNG stream that drives training-time stochasticity
// (dropout), the data loader's shuffle state, the epoch counter, the
// current learning rate, and DTDBD's momentum/DAA carry-over (w_ADD and the
// smoothed F1/bias deltas of Eq. 14).
//
// Files are written atomically: the state is serialized to `<path>.tmp`,
// fsync'd, then renamed over `path`, so a reader never observes a partially
// written checkpoint even if the process dies mid-save. Every entry carries
// a CRC32; truncation or bit flips are rejected with a non-ok Status, never
// a crash or a silent partial load.
#ifndef DTDBD_TRAIN_CHECKPOINT_H_
#define DTDBD_TRAIN_CHECKPOINT_H_

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/dataset.h"
#include "tensor/optim.h"
#include "tensor/tensor.h"

namespace dtdbd::train {

// DTDBD's dynamic-adjustment carry-over (mirrors MomentumWeightAdjuster's
// state as plain values so this layer stays independent of src/dtdbd/).
struct DaaSnapshot {
  double w_add = 0.0;
  double w_dkd = 1.0;
  double adjuster_w_add = 0.0;
  bool has_previous = false;
  double prev_f1 = 0.0;
  double prev_bias = 0.0;
};

struct CheckpointState {
  std::string kind;  // "supervised" | "dtdbd"; loops refuse a foreign kind
  int64_t epochs_done = 0;
  float lr = 0.0f;
  // Deep copies of the model's named parameters (never aliases live ones).
  std::map<std::string, tensor::Tensor> model;
  tensor::AdamState optim;
  std::vector<Rng::State> model_rngs;  // from FakeNewsModel::CollectRngs
  data::DataLoader::State loader;
  DaaSnapshot daa;  // meaningful only when kind == "dtdbd"
};

// Atomically persists `state` (temp file + fsync + rename).
Status SaveCheckpoint(const CheckpointState& state, const std::string& path);

// Loads and verifies a checkpoint. Bounds-checked reads and per-entry
// CRC32; any inconsistency yields a non-ok Status and no partial state.
StatusOr<CheckpointState> LoadCheckpoint(const std::string& path);

// Deep-copies the live training state into a CheckpointState. `named`
// comes from Module::NamedParameters(); `rngs` from CollectRngs.
CheckpointState CaptureState(const std::string& kind, int64_t epochs_done,
                             const std::map<std::string, tensor::Tensor>& named,
                             const tensor::Adam& optimizer,
                             const std::vector<Rng*>& rngs,
                             const data::DataLoader& loader);

// Restores `state` into live training objects: copies parameters back into
// `named`, re-imports Adam moments, resets the RNG streams and the loader,
// and restores the learning rate. Returns non-ok when shapes, names, or
// counts do not match (checkpoint from a different model/dataset); callers
// must then abandon the training objects rather than train on them.
Status ApplyToTraining(const CheckpointState& state,
                       std::map<std::string, tensor::Tensor>* named,
                       tensor::Adam* optimizer, const std::vector<Rng*>& rngs,
                       data::DataLoader* loader);

}  // namespace dtdbd::train

#endif  // DTDBD_TRAIN_CHECKPOINT_H_
