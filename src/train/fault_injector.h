// Seeded fault injection for robustness testing.
//
// The injector is handed to a training loop as a test hook. It can poison
// gradients with NaNs (one-shot at a scheduled global step, or i.i.d. with a
// probability per step) and simulate a mid-epoch crash by aborting the run
// at a scheduled step. The static file-corruption helpers (truncation, bit
// flip) exercise the checkpoint loader's integrity checks.
#ifndef DTDBD_TRAIN_FAULT_INJECTOR_H_
#define DTDBD_TRAIN_FAULT_INJECTOR_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "tensor/tensor.h"

namespace dtdbd::train {

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed) : rng_(seed) {}

  // One-shot faults keyed by the loop's global step counter. A scheduled
  // step fires exactly once, so a rolled-back epoch replays clean.
  void ScheduleGradNanAtStep(int64_t step) { nan_steps_.insert(step); }
  void ScheduleAbortAtStep(int64_t step) { abort_steps_.insert(step); }

  // Additionally corrupts every step independently with this probability.
  void set_grad_nan_probability(double p) { nan_probability_ = p; }

  // Called by the trainer after backward; overwrites one randomly chosen
  // gradient element with NaN when a fault fires. Returns true if it did.
  bool MaybeCorruptGradients(int64_t step,
                             const std::vector<tensor::Tensor>& params);

  // Called by the trainer before each batch; true simulates a crash (the
  // trainer returns immediately, losing all non-checkpointed state).
  bool ShouldAbort(int64_t step);

  int64_t injected_nan_steps() const { return injected_nan_steps_; }

  // On-disk corruption, for checkpoint-integrity tests.
  static Status TruncateFile(const std::string& path, double keep_fraction);
  static Status FlipBit(const std::string& path, int64_t byte_offset, int bit);

 private:
  Rng rng_;
  std::set<int64_t> nan_steps_;
  std::set<int64_t> abort_steps_;
  double nan_probability_ = 0.0;
  int64_t injected_nan_steps_ = 0;
};

}  // namespace dtdbd::train

#endif  // DTDBD_TRAIN_FAULT_INJECTOR_H_
