// Seeded fault injection for robustness testing.
//
// The injector is handed to a training loop as a test hook. It can poison
// gradients with NaNs (one-shot at a scheduled global step, or i.i.d. with a
// probability per step) and simulate a mid-epoch crash by aborting the run
// at a scheduled step. The static file-corruption helpers (truncation, bit
// flip) exercise the checkpoint loader's integrity checks.
//
// The serving hooks (load failure, slow load, malformed-request sampling)
// drive the src/serve/ soak tests: checkpoint hot-reload retry/backoff,
// watchdog behavior under a stalled reload, and the request-validation
// taxonomy. They are guarded by a mutex because the serving worker thread
// consults the injector concurrently with the request-generating thread;
// the training hooks stay lock-free and single-threaded as before.
#ifndef DTDBD_TRAIN_FAULT_INJECTOR_H_
#define DTDBD_TRAIN_FAULT_INJECTOR_H_

#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "tensor/tensor.h"

namespace dtdbd::train {

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed) : rng_(seed), serve_rng_(seed ^ 0x5E12) {}

  // One-shot faults keyed by the loop's global step counter. A scheduled
  // step fires exactly once, so a rolled-back epoch replays clean.
  void ScheduleGradNanAtStep(int64_t step) { nan_steps_.insert(step); }
  void ScheduleAbortAtStep(int64_t step) { abort_steps_.insert(step); }

  // Additionally corrupts every step independently with this probability.
  void set_grad_nan_probability(double p) { nan_probability_ = p; }

  // Called by the trainer after backward; overwrites one randomly chosen
  // gradient element with NaN when a fault fires. Returns true if it did.
  bool MaybeCorruptGradients(int64_t step,
                             const std::vector<tensor::Tensor>& params);

  // Called by the trainer before each batch; true simulates a crash (the
  // trainer returns immediately, losing all non-checkpointed state).
  bool ShouldAbort(int64_t step);

  int64_t injected_nan_steps() const { return injected_nan_steps_; }

  // On-disk corruption, for checkpoint-integrity tests.
  static Status TruncateFile(const std::string& path, double keep_fraction);
  static Status FlipBit(const std::string& path, int64_t byte_offset, int bit);

  // --- Serving faults (src/serve/, thread-safe) ---

  // The next `n` checkpoint-load attempts fail with an injected kIoError
  // before the loader even opens the file; exercises the server's
  // retry/backoff and last-good-model degradation paths.
  void ScheduleLoadFailures(int n);
  // Additionally fails each load attempt independently with probability p.
  void set_load_failure_probability(double p);
  // Consulted by the server once per load attempt. Non-ok = simulated
  // failure the caller must treat exactly like a real loader error.
  Status MaybeFailLoad();
  int64_t injected_load_failures() const;

  // Every load attempt additionally stalls for this long (simulates a slow
  // or hung checkpoint volume); the server sleeps before loading so queued
  // requests age against their deadlines meanwhile.
  void set_slow_load_nanos(int64_t ns);
  int64_t slow_load_nanos() const;

  // Every ServeBatch forward additionally stalls for this long BEFORE
  // calling the session (simulates slow model compute). The dedup tests
  // lean on this: pin the first identical request in a slow forward, then
  // prove later twins attach to its in-flight group instead of running.
  void set_slow_predict_nanos(int64_t ns);
  int64_t slow_predict_nanos() const;

  // Canary-only prediction failures: the server consults this once per
  // element served by a CANARY session and converts a `true` into a
  // kInternal response for that element. Primary-path responses are never
  // touched, so the fleet parity contracts (fleet-of-one ≡ pre-refactor,
  // shadow run ≡ no-shadow run) hold even mid-injection — this is the knob
  // the auto-rollback tests use to fake a regressed candidate.
  void ScheduleCanaryPredictFailures(int n);
  void set_canary_predict_failure_probability(double p);
  bool MaybeFailCanaryPredict();
  int64_t injected_canary_failures() const;

  // Malformed-request sampling for serving soak tests. The injector stays
  // ignorant of serve/ types: it only picks WHICH corruption to apply with
  // the configured probability; the test owns the actual request mutation.
  enum class RequestFault {
    kNone,
    kEmptyTokens,
    kOverLength,
    kTokenTooLarge,
    kNegativeToken,
    kBadDomain,
    kNonFiniteStyle,
    kNonFiniteEmotion,
  };
  void set_request_fault_probability(double p);
  RequestFault NextRequestFault();

  // Network-fault sampling for the socket front end (src/net/). Same
  // division of labor as RequestFault: the injector only picks WHICH wire
  // corruption a client should inflict with the configured probability; the
  // test or load generator owns the actual byte mangling, so the injector
  // stays ignorant of net/ framing.
  enum class NetFault {
    kNone,
    kTruncatedFrame,      // header or payload cut short, then a clean close
    kOversizedFrame,      // header advertises payload_len > max frame
    kGarbageFrame,        // valid framing, self-inconsistent payload bytes
    kMidFrameDisconnect,  // hard disconnect partway through a frame
    kStalledReader,       // stop reading responses / dribble bytes (slow-loris)
  };
  void set_net_fault_probability(double p);
  NetFault NextNetFault();
  int64_t injected_net_faults() const;

  // Feedback-fault sampling for the drift soak tests (src/drift/). Same
  // division of labor again: the injector picks WHICH corruption the
  // labeled-feedback pipeline suffers; the driver owns the mutation —
  // flipping the label before RecordFeedback, delaying the call past the
  // quality window, or never delivering it at all.
  enum class FeedbackFault {
    kNone,
    kFlipLabel,      // annotation error: label arrives inverted
    kDropFeedback,   // feedback never delivered for this request
    kDelayFeedback,  // feedback arrives late (driver re-queues it)
  };
  void set_feedback_fault_probability(double p);
  FeedbackFault NextFeedbackFault();
  int64_t injected_feedback_faults() const;

 private:
  Rng rng_;
  std::set<int64_t> nan_steps_;
  std::set<int64_t> abort_steps_;
  double nan_probability_ = 0.0;
  int64_t injected_nan_steps_ = 0;

  mutable std::mutex serve_mu_;
  Rng serve_rng_;  // separate stream so serving faults never perturb
                   // the training-fault schedule of an existing seed
  int scheduled_load_failures_ = 0;
  double load_failure_probability_ = 0.0;
  int64_t injected_load_failures_ = 0;
  int64_t slow_load_nanos_ = 0;
  int64_t slow_predict_nanos_ = 0;
  int scheduled_canary_failures_ = 0;
  double canary_failure_probability_ = 0.0;
  int64_t injected_canary_failures_ = 0;
  double request_fault_probability_ = 0.0;
  double net_fault_probability_ = 0.0;
  int64_t injected_net_faults_ = 0;
  double feedback_fault_probability_ = 0.0;
  int64_t injected_feedback_faults_ = 0;
};

}  // namespace dtdbd::train

#endif  // DTDBD_TRAIN_FAULT_INJECTOR_H_
