#include "train/guard.h"

#include <cmath>

#include "common/check.h"

namespace dtdbd::train {

bool AllFinite(float loss, const std::vector<tensor::Tensor>& params) {
  if (!std::isfinite(loss)) return false;
  for (const auto& p : params) {
    for (float g : p.grad()) {
      if (!std::isfinite(g)) return false;
    }
  }
  return true;
}

TrainingGuard::TrainingGuard(const GuardOptions& options) : options_(options) {
  DTDBD_CHECK_GT(options.max_consecutive_bad, 0);
  DTDBD_CHECK_GT(options.rollback_lr_decay, 0.0f);
  DTDBD_CHECK_LE(options.rollback_lr_decay, 1.0f);
  DTDBD_CHECK_GE(options.max_rollbacks, 0);
}

TrainingGuard::Verdict TrainingGuard::Inspect(
    float loss, const std::vector<tensor::Tensor>& params) {
  if (!options_.skip_non_finite) return Verdict::kOk;
  if (AllFinite(loss, params)) {
    consecutive_bad_ = 0;
    return Verdict::kOk;
  }
  ++consecutive_bad_;
  ++skipped_steps_;
  if (consecutive_bad_ >= options_.max_consecutive_bad) {
    if (rollbacks_ >= options_.max_rollbacks) return Verdict::kGiveUp;
    return Verdict::kRollback;
  }
  return Verdict::kSkip;
}

void TrainingGuard::OnRollback() {
  consecutive_bad_ = 0;
  ++rollbacks_;
}

}  // namespace dtdbd::train
