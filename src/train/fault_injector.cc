#include "train/fault_injector.h"

#include <unistd.h>

#include <cstdio>
#include <limits>

namespace dtdbd::train {

bool FaultInjector::MaybeCorruptGradients(
    int64_t step, const std::vector<tensor::Tensor>& params) {
  bool fire = false;
  auto it = nan_steps_.find(step);
  if (it != nan_steps_.end()) {
    nan_steps_.erase(it);
    fire = true;
  }
  if (!fire && nan_probability_ > 0.0 && rng_.Bernoulli(nan_probability_)) {
    fire = true;
  }
  if (!fire || params.empty()) return false;
  const int64_t p = rng_.UniformInt(static_cast<int64_t>(params.size()));
  auto& grad = const_cast<std::vector<float>&>(params[p].grad());
  if (grad.empty()) return false;
  const int64_t j = rng_.UniformInt(static_cast<int64_t>(grad.size()));
  grad[j] = std::numeric_limits<float>::quiet_NaN();
  ++injected_nan_steps_;
  return true;
}

bool FaultInjector::ShouldAbort(int64_t step) {
  auto it = abort_steps_.find(step);
  if (it == abort_steps_.end()) return false;
  abort_steps_.erase(it);
  return true;
}

void FaultInjector::ScheduleLoadFailures(int n) {
  std::lock_guard<std::mutex> lock(serve_mu_);
  scheduled_load_failures_ += n;
}

void FaultInjector::set_load_failure_probability(double p) {
  std::lock_guard<std::mutex> lock(serve_mu_);
  load_failure_probability_ = p;
}

Status FaultInjector::MaybeFailLoad() {
  std::lock_guard<std::mutex> lock(serve_mu_);
  bool fire = false;
  if (scheduled_load_failures_ > 0) {
    --scheduled_load_failures_;
    fire = true;
  }
  if (!fire && load_failure_probability_ > 0.0 &&
      serve_rng_.Bernoulli(load_failure_probability_)) {
    fire = true;
  }
  if (!fire) return Status::Ok();
  ++injected_load_failures_;
  return Status::IoError("injected checkpoint load failure");
}

int64_t FaultInjector::injected_load_failures() const {
  std::lock_guard<std::mutex> lock(serve_mu_);
  return injected_load_failures_;
}

void FaultInjector::set_slow_load_nanos(int64_t ns) {
  std::lock_guard<std::mutex> lock(serve_mu_);
  slow_load_nanos_ = ns;
}

int64_t FaultInjector::slow_load_nanos() const {
  std::lock_guard<std::mutex> lock(serve_mu_);
  return slow_load_nanos_;
}

void FaultInjector::set_slow_predict_nanos(int64_t ns) {
  std::lock_guard<std::mutex> lock(serve_mu_);
  slow_predict_nanos_ = ns;
}

int64_t FaultInjector::slow_predict_nanos() const {
  std::lock_guard<std::mutex> lock(serve_mu_);
  return slow_predict_nanos_;
}

void FaultInjector::ScheduleCanaryPredictFailures(int n) {
  std::lock_guard<std::mutex> lock(serve_mu_);
  scheduled_canary_failures_ += n;
}

void FaultInjector::set_canary_predict_failure_probability(double p) {
  std::lock_guard<std::mutex> lock(serve_mu_);
  canary_failure_probability_ = p;
}

bool FaultInjector::MaybeFailCanaryPredict() {
  std::lock_guard<std::mutex> lock(serve_mu_);
  bool fire = false;
  if (scheduled_canary_failures_ > 0) {
    --scheduled_canary_failures_;
    fire = true;
  }
  if (!fire && canary_failure_probability_ > 0.0 &&
      serve_rng_.Bernoulli(canary_failure_probability_)) {
    fire = true;
  }
  if (fire) ++injected_canary_failures_;
  return fire;
}

int64_t FaultInjector::injected_canary_failures() const {
  std::lock_guard<std::mutex> lock(serve_mu_);
  return injected_canary_failures_;
}

void FaultInjector::set_request_fault_probability(double p) {
  std::lock_guard<std::mutex> lock(serve_mu_);
  request_fault_probability_ = p;
}

FaultInjector::RequestFault FaultInjector::NextRequestFault() {
  std::lock_guard<std::mutex> lock(serve_mu_);
  if (request_fault_probability_ <= 0.0 ||
      !serve_rng_.Bernoulli(request_fault_probability_)) {
    return RequestFault::kNone;
  }
  // Uniform over the 7 concrete fault kinds (kNone excluded).
  switch (serve_rng_.UniformInt(7)) {
    case 0: return RequestFault::kEmptyTokens;
    case 1: return RequestFault::kOverLength;
    case 2: return RequestFault::kTokenTooLarge;
    case 3: return RequestFault::kNegativeToken;
    case 4: return RequestFault::kBadDomain;
    case 5: return RequestFault::kNonFiniteStyle;
    default: return RequestFault::kNonFiniteEmotion;
  }
}

void FaultInjector::set_net_fault_probability(double p) {
  std::lock_guard<std::mutex> lock(serve_mu_);
  net_fault_probability_ = p;
}

FaultInjector::NetFault FaultInjector::NextNetFault() {
  std::lock_guard<std::mutex> lock(serve_mu_);
  if (net_fault_probability_ <= 0.0 ||
      !serve_rng_.Bernoulli(net_fault_probability_)) {
    return NetFault::kNone;
  }
  ++injected_net_faults_;
  // Uniform over the 5 concrete fault kinds (kNone excluded).
  switch (serve_rng_.UniformInt(5)) {
    case 0: return NetFault::kTruncatedFrame;
    case 1: return NetFault::kOversizedFrame;
    case 2: return NetFault::kGarbageFrame;
    case 3: return NetFault::kMidFrameDisconnect;
    default: return NetFault::kStalledReader;
  }
}

int64_t FaultInjector::injected_net_faults() const {
  std::lock_guard<std::mutex> lock(serve_mu_);
  return injected_net_faults_;
}

void FaultInjector::set_feedback_fault_probability(double p) {
  std::lock_guard<std::mutex> lock(serve_mu_);
  feedback_fault_probability_ = p;
}

FaultInjector::FeedbackFault FaultInjector::NextFeedbackFault() {
  std::lock_guard<std::mutex> lock(serve_mu_);
  if (feedback_fault_probability_ <= 0.0 ||
      !serve_rng_.Bernoulli(feedback_fault_probability_)) {
    return FeedbackFault::kNone;
  }
  ++injected_feedback_faults_;
  // Uniform over the 3 concrete fault kinds (kNone excluded).
  switch (serve_rng_.UniformInt(3)) {
    case 0: return FeedbackFault::kFlipLabel;
    case 1: return FeedbackFault::kDropFeedback;
    default: return FeedbackFault::kDelayFeedback;
  }
}

int64_t FaultInjector::injected_feedback_faults() const {
  std::lock_guard<std::mutex> lock(serve_mu_);
  return injected_feedback_faults_;
}

Status FaultInjector::TruncateFile(const std::string& path,
                                   double keep_fraction) {
  if (keep_fraction < 0.0 || keep_fraction > 1.0) {
    return Status::InvalidArgument("keep_fraction must be in [0, 1]");
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open: " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  if (size < 0) return Status::IoError("cannot stat: " + path);
  const auto new_size = static_cast<off_t>(size * keep_fraction);
  if (truncate(path.c_str(), new_size) != 0) {
    return Status::IoError("truncate failed: " + path);
  }
  return Status::Ok();
}

Status FaultInjector::FlipBit(const std::string& path, int64_t byte_offset,
                              int bit) {
  if (bit < 0 || bit > 7) return Status::InvalidArgument("bit must be in [0, 7]");
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) return Status::IoError("cannot open: " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  if (byte_offset < 0 || byte_offset >= size) {
    std::fclose(f);
    return Status::InvalidArgument("byte_offset out of range");
  }
  unsigned char byte = 0;
  bool ok = std::fseek(f, static_cast<long>(byte_offset), SEEK_SET) == 0 &&
            std::fread(&byte, 1, 1, f) == 1;
  if (ok) {
    byte = static_cast<unsigned char>(byte ^ (1u << bit));
    ok = std::fseek(f, static_cast<long>(byte_offset), SEEK_SET) == 0 &&
         std::fwrite(&byte, 1, 1, f) == 1;
  }
  std::fclose(f);
  if (!ok) return Status::IoError("bit flip failed: " + path);
  return Status::Ok();
}

}  // namespace dtdbd::train
