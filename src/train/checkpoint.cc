#include "train/checkpoint.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <utility>

#include "common/io.h"
#include "tensor/serialize.h"

namespace dtdbd::train {

namespace {

using tensor::Crc32;
using tensor::Tensor;

constexpr char kMagic[4] = {'D', 'T', 'C', 'K'};
constexpr uint32_t kVersion = 2;  // the "format v2" checkpoint layout
constexpr uint64_t kMaxEntries = 1u << 20;
constexpr uint64_t kMaxKeyLen = 1u << 12;
constexpr uint64_t kMaxNdim = 8;
constexpr int64_t kMaxElements = int64_t{1} << 40;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

// ----- payload packing -----

void AppendRaw(std::string* buf, const void* data, size_t n) {
  buf->append(static_cast<const char*>(data), n);
}

template <typename T>
void AppendScalar(std::string* buf, T value) {
  AppendRaw(buf, &value, sizeof(T));
}

void AppendRngState(std::string* buf, const Rng::State& s) {
  for (uint64_t w : s.s) AppendScalar(buf, w);
  AppendScalar<uint8_t>(buf, s.has_cached_normal ? 1 : 0);
  AppendScalar(buf, s.cached_normal);
}

// Sequential reader over one entry's payload bytes.
class PayloadReader {
 public:
  explicit PayloadReader(const std::string& bytes) : bytes_(bytes) {}

  int64_t remaining() const {
    return static_cast<int64_t>(bytes_.size()) - pos_;
  }

  bool Read(void* out, int64_t n) {
    if (n < 0 || n > remaining()) return false;
    std::memcpy(out, bytes_.data() + pos_, static_cast<size_t>(n));
    pos_ += n;
    return true;
  }

  template <typename T>
  bool ReadScalar(T* out) {
    return Read(out, sizeof(T));
  }

  bool ReadRngState(Rng::State* out) {
    for (uint64_t& w : out->s) {
      if (!ReadScalar(&w)) return false;
    }
    uint8_t cached = 0;
    if (!ReadScalar(&cached) || !ReadScalar(&out->cached_normal)) return false;
    out->has_cached_normal = cached != 0;
    return true;
  }

 private:
  const std::string& bytes_;
  int64_t pos_ = 0;
};

std::string PackTensor(const Tensor& t) {
  std::string payload;
  const uint64_t ndim = t.shape().size();
  AppendScalar(&payload, ndim);
  AppendRaw(&payload, t.shape().data(), ndim * sizeof(int64_t));
  // Materializes views into logical row-major order; the on-disk format is
  // layout-free, so files from the pre-view engine stay readable.
  const std::vector<float> data = t.ToVector();
  AppendRaw(&payload, data.data(), data.size() * sizeof(float));
  return payload;
}

Status UnpackTensor(const std::string& payload, const std::string& key,
                    Tensor* out) {
  PayloadReader reader(payload);
  uint64_t ndim = 0;
  if (!reader.ReadScalar(&ndim) || ndim > kMaxNdim) {
    return Status::InvalidArgument("bad tensor header for " + key);
  }
  tensor::Shape shape(ndim);
  if (!reader.Read(shape.data(), static_cast<int64_t>(ndim * sizeof(int64_t)))) {
    return Status::InvalidArgument("bad tensor shape for " + key);
  }
  int64_t n = 1;
  for (int64_t d : shape) {
    if (d < 0 || (d > 0 && n > kMaxElements / d)) {
      return Status::InvalidArgument("absurd tensor size for " + key);
    }
    n *= d;
  }
  if (reader.remaining() != n * static_cast<int64_t>(sizeof(float))) {
    return Status::InvalidArgument("tensor payload size mismatch for " + key);
  }
  std::vector<float> data(n);
  if (!reader.Read(data.data(), n * static_cast<int64_t>(sizeof(float)))) {
    return Status::InvalidArgument("bad tensor data for " + key);
  }
  *out = Tensor::FromData(shape, std::move(data));
  return Status::Ok();
}

std::string PackFloats(const std::vector<float>& values) {
  std::string payload;
  AppendRaw(&payload, values.data(), values.size() * sizeof(float));
  return payload;
}

Status UnpackFloats(const std::string& payload, const std::string& key,
                    std::vector<float>* out) {
  if (payload.size() % sizeof(float) != 0) {
    return Status::InvalidArgument("ragged float payload for " + key);
  }
  out->resize(payload.size() / sizeof(float));
  std::memcpy(out->data(), payload.data(), payload.size());
  return Status::Ok();
}

// ----- entry-level file IO -----

using EntryMap = std::map<std::string, std::string>;

Status WriteEntries(const EntryMap& entries, const std::string& path) {
  // Serialize the whole file into memory, then publish it with the shared
  // temp-file + fsync + rename helper so a reader never observes a partial
  // checkpoint even if the process dies mid-save.
  std::string bytes;
  AppendRaw(&bytes, kMagic, 4);
  AppendScalar(&bytes, kVersion);
  AppendScalar<uint64_t>(&bytes, entries.size());
  for (const auto& [key, payload] : entries) {
    const uint64_t key_len = key.size();
    const uint64_t payload_len = payload.size();
    uint32_t crc = Crc32(&key_len, sizeof(key_len));
    crc = Crc32(key.data(), key.size(), crc);
    crc = Crc32(&payload_len, sizeof(payload_len), crc);
    crc = Crc32(payload.data(), payload.size(), crc);
    AppendScalar(&bytes, key_len);
    AppendRaw(&bytes, key.data(), key.size());
    AppendScalar(&bytes, payload_len);
    AppendRaw(&bytes, payload.data(), payload.size());
    AppendScalar(&bytes, crc);
  }
  return AtomicWriteFile(path, bytes);
}

StatusOr<EntryMap> ReadEntries(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IoError("cannot open for read: " + path);
  if (std::fseek(f.get(), 0, SEEK_END) != 0) {
    return Status::IoError("cannot seek: " + path);
  }
  const long file_size = std::ftell(f.get());
  if (file_size < 0) return Status::IoError("cannot stat: " + path);
  std::rewind(f.get());

  int64_t remaining = file_size;
  auto read = [&](void* out, int64_t n) {
    if (n < 0 || n > remaining) return false;
    if (std::fread(out, 1, static_cast<size_t>(n), f.get()) !=
        static_cast<size_t>(n)) {
      return false;
    }
    remaining -= n;
    return true;
  };

  char magic[4];
  uint32_t version = 0;
  uint64_t count = 0;
  if (!read(magic, 4) || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument("not a checkpoint file: " + path);
  }
  if (!read(&version, sizeof(version)) || version != kVersion) {
    return Status::InvalidArgument("unsupported checkpoint version in " + path);
  }
  if (!read(&count, sizeof(count))) {
    return Status::IoError("truncated checkpoint header in " + path);
  }
  if (count > kMaxEntries) {
    return Status::InvalidArgument("absurd entry count in " + path);
  }

  EntryMap entries;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t key_len = 0;
    if (!read(&key_len, sizeof(key_len))) {
      return Status::IoError("truncated checkpoint entry in " + path);
    }
    if (key_len > kMaxKeyLen) {
      return Status::InvalidArgument("absurd key length in " + path);
    }
    std::string key(key_len, '\0');
    uint64_t payload_len = 0;
    if (!read(key.data(), static_cast<int64_t>(key_len)) ||
        !read(&payload_len, sizeof(payload_len))) {
      return Status::IoError("truncated checkpoint entry in " + path);
    }
    if (payload_len > static_cast<uint64_t>(remaining)) {
      return Status::IoError("truncated checkpoint payload in " + path);
    }
    std::string payload(payload_len, '\0');
    uint32_t stored_crc = 0;
    if (!read(payload.data(), static_cast<int64_t>(payload_len)) ||
        !read(&stored_crc, sizeof(stored_crc))) {
      return Status::IoError("truncated checkpoint payload in " + path);
    }
    uint32_t crc = Crc32(&key_len, sizeof(key_len));
    crc = Crc32(key.data(), key.size(), crc);
    crc = Crc32(&payload_len, sizeof(payload_len), crc);
    crc = Crc32(payload.data(), payload.size(), crc);
    if (crc != stored_crc) {
      return Status::InvalidArgument("CRC mismatch for checkpoint entry '" +
                                     key + "' in " + path);
    }
    entries.emplace(std::move(key), std::move(payload));
  }
  if (remaining != 0) {
    return Status::InvalidArgument("trailing bytes in " + path);
  }
  return entries;
}

StatusOr<const std::string*> GetEntry(const EntryMap& entries,
                                      const std::string& key) {
  auto it = entries.find(key);
  if (it == entries.end()) {
    return Status::NotFound("checkpoint entry missing: " + key);
  }
  return &it->second;
}

template <typename T>
Status GetScalar(const EntryMap& entries, const std::string& key, T* out) {
  DTDBD_ASSIGN_OR_RETURN(const std::string* payload, GetEntry(entries, key));
  if (payload->size() != sizeof(T)) {
    return Status::InvalidArgument("bad size for checkpoint entry " + key);
  }
  std::memcpy(out, payload->data(), sizeof(T));
  return Status::Ok();
}

Status GetRngState(const EntryMap& entries, const std::string& key,
                   Rng::State* out) {
  DTDBD_ASSIGN_OR_RETURN(const std::string* payload, GetEntry(entries, key));
  PayloadReader reader(*payload);
  if (!reader.ReadRngState(out) || reader.remaining() != 0) {
    return Status::InvalidArgument("bad RNG state for checkpoint entry " + key);
  }
  return Status::Ok();
}

}  // namespace

Status SaveCheckpoint(const CheckpointState& state, const std::string& path) {
  if (state.kind != "supervised" && state.kind != "dtdbd") {
    return Status::InvalidArgument("unknown checkpoint kind: " + state.kind);
  }
  EntryMap entries;
  entries["meta/kind"] = state.kind;
  {
    std::string p;
    AppendScalar(&p, state.epochs_done);
    entries["meta/epochs_done"] = std::move(p);
  }
  {
    std::string p;
    AppendScalar(&p, state.lr);
    entries["meta/lr"] = std::move(p);
  }
  for (const auto& [name, t] : state.model) {
    if (!t.defined()) {
      return Status::InvalidArgument("undefined tensor in checkpoint: " + name);
    }
    entries["model/" + name] = PackTensor(t);
  }
  {
    std::string p;
    AppendScalar(&p, state.optim.step_count);
    entries["optim/step"] = std::move(p);
    std::string slots;
    AppendScalar<uint64_t>(&slots, state.optim.m.size());
    entries["optim/slots"] = std::move(slots);
    for (size_t i = 0; i < state.optim.m.size(); ++i) {
      entries["optim/m/" + std::to_string(i)] = PackFloats(state.optim.m[i]);
    }
    for (size_t i = 0; i < state.optim.v.size(); ++i) {
      entries["optim/v/" + std::to_string(i)] = PackFloats(state.optim.v[i]);
    }
  }
  {
    std::string p;
    AppendScalar<uint64_t>(&p, state.model_rngs.size());
    entries["rng/count"] = std::move(p);
    for (size_t i = 0; i < state.model_rngs.size(); ++i) {
      std::string r;
      AppendRngState(&r, state.model_rngs[i]);
      entries["rng/" + std::to_string(i)] = std::move(r);
    }
  }
  {
    std::string r;
    AppendRngState(&r, state.loader.rng);
    entries["loader/rng"] = std::move(r);
    std::string order;
    AppendRaw(&order, state.loader.order.data(),
              state.loader.order.size() * sizeof(int64_t));
    entries["loader/order"] = std::move(order);
  }
  {
    std::string p;
    AppendScalar(&p, state.daa.w_add);
    AppendScalar(&p, state.daa.w_dkd);
    AppendScalar(&p, state.daa.adjuster_w_add);
    AppendScalar<uint8_t>(&p, state.daa.has_previous ? 1 : 0);
    AppendScalar(&p, state.daa.prev_f1);
    AppendScalar(&p, state.daa.prev_bias);
    entries["daa"] = std::move(p);
  }
  return WriteEntries(entries, path);
}

StatusOr<CheckpointState> LoadCheckpoint(const std::string& path) {
  DTDBD_ASSIGN_OR_RETURN(EntryMap entries, ReadEntries(path));
  CheckpointState state;

  DTDBD_ASSIGN_OR_RETURN(const std::string* kind,
                         GetEntry(entries, "meta/kind"));
  state.kind = *kind;
  if (state.kind != "supervised" && state.kind != "dtdbd") {
    return Status::InvalidArgument("unknown checkpoint kind: " + state.kind);
  }
  DTDBD_RETURN_IF_ERROR(
      GetScalar(entries, "meta/epochs_done", &state.epochs_done));
  if (state.epochs_done < 0) {
    return Status::InvalidArgument("negative epoch count in " + path);
  }
  DTDBD_RETURN_IF_ERROR(GetScalar(entries, "meta/lr", &state.lr));

  for (const auto& [key, payload] : entries) {
    if (key.rfind("model/", 0) != 0) continue;
    Tensor t;
    DTDBD_RETURN_IF_ERROR(UnpackTensor(payload, key, &t));
    state.model.emplace(key.substr(6), std::move(t));
  }

  DTDBD_RETURN_IF_ERROR(
      GetScalar(entries, "optim/step", &state.optim.step_count));
  uint64_t slots = 0;
  DTDBD_RETURN_IF_ERROR(GetScalar(entries, "optim/slots", &slots));
  if (slots > kMaxEntries) {
    return Status::InvalidArgument("absurd optimizer slot count in " + path);
  }
  state.optim.m.resize(slots);
  state.optim.v.resize(slots);
  for (uint64_t i = 0; i < slots; ++i) {
    DTDBD_ASSIGN_OR_RETURN(
        const std::string* m_payload,
        GetEntry(entries, "optim/m/" + std::to_string(i)));
    DTDBD_RETURN_IF_ERROR(UnpackFloats(*m_payload, "optim/m", &state.optim.m[i]));
    DTDBD_ASSIGN_OR_RETURN(
        const std::string* v_payload,
        GetEntry(entries, "optim/v/" + std::to_string(i)));
    DTDBD_RETURN_IF_ERROR(UnpackFloats(*v_payload, "optim/v", &state.optim.v[i]));
  }

  uint64_t rng_count = 0;
  DTDBD_RETURN_IF_ERROR(GetScalar(entries, "rng/count", &rng_count));
  if (rng_count > kMaxEntries) {
    return Status::InvalidArgument("absurd RNG count in " + path);
  }
  state.model_rngs.resize(rng_count);
  for (uint64_t i = 0; i < rng_count; ++i) {
    DTDBD_RETURN_IF_ERROR(GetRngState(entries, "rng/" + std::to_string(i),
                                      &state.model_rngs[i]));
  }

  DTDBD_RETURN_IF_ERROR(GetRngState(entries, "loader/rng", &state.loader.rng));
  {
    DTDBD_ASSIGN_OR_RETURN(const std::string* order,
                           GetEntry(entries, "loader/order"));
    if (order->size() % sizeof(int64_t) != 0) {
      return Status::InvalidArgument("ragged loader order in " + path);
    }
    state.loader.order.resize(order->size() / sizeof(int64_t));
    std::memcpy(state.loader.order.data(), order->data(), order->size());
  }

  {
    DTDBD_ASSIGN_OR_RETURN(const std::string* daa, GetEntry(entries, "daa"));
    PayloadReader reader(*daa);
    uint8_t has_previous = 0;
    if (!reader.ReadScalar(&state.daa.w_add) ||
        !reader.ReadScalar(&state.daa.w_dkd) ||
        !reader.ReadScalar(&state.daa.adjuster_w_add) ||
        !reader.ReadScalar(&has_previous) ||
        !reader.ReadScalar(&state.daa.prev_f1) ||
        !reader.ReadScalar(&state.daa.prev_bias) || reader.remaining() != 0) {
      return Status::InvalidArgument("bad DAA state in " + path);
    }
    state.daa.has_previous = has_previous != 0;
  }
  return state;
}

CheckpointState CaptureState(const std::string& kind, int64_t epochs_done,
                             const std::map<std::string, Tensor>& named,
                             const tensor::Adam& optimizer,
                             const std::vector<Rng*>& rngs,
                             const data::DataLoader& loader) {
  CheckpointState state;
  state.kind = kind;
  state.epochs_done = epochs_done;
  state.lr = optimizer.lr();
  for (const auto& [name, t] : named) state.model.emplace(name, t.Clone());
  state.optim = optimizer.ExportState();
  state.model_rngs.reserve(rngs.size());
  for (const Rng* rng : rngs) {
    DTDBD_CHECK(rng != nullptr);
    state.model_rngs.push_back(rng->GetState());
  }
  state.loader = loader.GetState();
  return state;
}

Status ApplyToTraining(const CheckpointState& state,
                       std::map<std::string, Tensor>* named,
                       tensor::Adam* optimizer, const std::vector<Rng*>& rngs,
                       data::DataLoader* loader) {
  DTDBD_CHECK(named != nullptr);
  DTDBD_CHECK(optimizer != nullptr);
  DTDBD_CHECK(loader != nullptr);
  if (rngs.size() != state.model_rngs.size()) {
    return Status::InvalidArgument(
        "checkpoint holds " + std::to_string(state.model_rngs.size()) +
        " RNG streams, model has " + std::to_string(rngs.size()));
  }
  DTDBD_RETURN_IF_ERROR(tensor::RestoreInto(state.model, named));
  DTDBD_RETURN_IF_ERROR(optimizer->ImportState(state.optim));
  DTDBD_RETURN_IF_ERROR(loader->SetState(state.loader));
  for (size_t i = 0; i < rngs.size(); ++i) {
    rngs[i]->SetState(state.model_rngs[i]);
  }
  optimizer->set_lr(state.lr);
  return Status::Ok();
}

}  // namespace dtdbd::train
