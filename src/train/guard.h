// Divergence detection and recovery policy for training loops.
//
// After every backward pass the trainer asks the guard to inspect the loss
// and gradients. A non-finite value marks the step as poisoned: the step is
// skipped (gradients dropped, parameters untouched). After
// `max_consecutive_bad` poisoned steps in a row the guard asks the trainer
// to roll back to the last good checkpoint with a reduced learning rate;
// after `max_rollbacks` rollbacks it gives up and the trainer returns a
// non-ok status instead of looping forever on a diverged run.
#ifndef DTDBD_TRAIN_GUARD_H_
#define DTDBD_TRAIN_GUARD_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace dtdbd::train {

struct GuardOptions {
  // Master switch; false restores the unguarded (pre-robustness) behavior
  // where a NaN loss silently poisons the parameters.
  bool skip_non_finite = true;
  int max_consecutive_bad = 3;
  float rollback_lr_decay = 0.5f;
  int max_rollbacks = 2;
};

// True when the loss and every parameter gradient are finite.
bool AllFinite(float loss, const std::vector<tensor::Tensor>& params);

class TrainingGuard {
 public:
  enum class Verdict {
    kOk,        // step is clean, apply it
    kSkip,      // poisoned step: drop gradients, continue
    kRollback,  // too many consecutive bad steps: restore last checkpoint
    kGiveUp,    // rollback budget exhausted: abort training
  };

  explicit TrainingGuard(const GuardOptions& options);

  // Inspects one step's loss/gradients and advances the policy state.
  Verdict Inspect(float loss, const std::vector<tensor::Tensor>& params);

  // Must be called by the trainer after it restored the checkpoint the
  // guard asked for; resets the consecutive-bad counter.
  void OnRollback();

  int64_t skipped_steps() const { return skipped_steps_; }
  int rollbacks() const { return rollbacks_; }

 private:
  GuardOptions options_;
  int consecutive_bad_ = 0;
  int64_t skipped_steps_ = 0;
  int rollbacks_ = 0;
};

}  // namespace dtdbd::train

#endif  // DTDBD_TRAIN_GUARD_H_
