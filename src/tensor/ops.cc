#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "tensor/quant.h"
#include "tensor/registry.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>  // row-blocked conv fast path (runtime-dispatched)
#endif

namespace dtdbd::tensor {

namespace {

using internal::Node;

// Minimum elements of work per ParallelFor shard; below this, kernels run
// inline. Shard boundaries never influence results (see thread_pool.h), so
// this is purely a scheduling knob.
constexpr int64_t kGrain = 4096;

// Grain for row-sharded loops: enough rows that one shard covers ~kGrain
// scalar operations.
int64_t GrainForRows(int64_t work_per_row) {
  return std::max<int64_t>(1, kGrain / std::max<int64_t>(1, work_per_row));
}

// Strided row-major reader over a node's logical elements. Valid for dense
// tensors (flat) and for views whose trailing dims are canonically strided
// with an arbitrary outer stride — which covers every view the models
// produce in hot loops (SliceLastDim gate slices, SliceTime steps). Layouts
// outside this family (e.g. Transpose2d) are materialized via Contiguous().
struct Reader {
  const float* ptr = nullptr;  // logical element 0
  int64_t cols = 1;            // inner-dense block length
  int64_t row_stride = 1;      // physical stride between blocks
  bool flat = true;

  float at(int64_t i) const {
    return flat ? ptr[i] : ptr[(i / cols) * row_stride + (i % cols)];
  }
  const float* row(int64_t r) const { return ptr + r * row_stride; }
};

bool MakeReader(const Node* n, Reader* r) {
  if (n->contiguous) {
    r->ptr = n->storage->buf.data() + n->offset;
    const int64_t d0 = n->shape.empty() ? 1 : n->shape[0];
    r->cols = d0 > 0 ? n->numel / d0 : 1;
    r->row_stride = r->cols;
    r->flat = true;
    return true;
  }
  const int nd = static_cast<int>(n->shape.size());
  if (nd == 0) return false;
  const Shape canon = CanonicalStrides(n->shape);
  for (int d = 1; d < nd; ++d) {
    if (n->shape[d] > 1 && n->strides[d] != canon[d]) return false;
  }
  r->ptr = n->storage->buf.data() + n->offset;
  r->cols = n->shape[0] > 0 ? n->numel / n->shape[0] : 1;
  r->row_stride = n->strides[0];
  r->flat = false;
  return true;
}

Reader ReadOf(const Node* n) {
  Reader r;
  DTDBD_CHECK(MakeReader(n, &r))
      << n->op_name() << ": layout not readable " << ShapeToString(n->shape);
  return r;
}

// The tensor itself when a Reader can address it; otherwise a materialized
// dense copy recorded through the Contiguous op (so gradient still flows).
Tensor EnsureReadable(const Tensor& t) {
  Reader r;
  if (MakeReader(t.node().get(), &r)) return t;
  return Contiguous(t);
}

void CheckSameShape(const char* op, const Tensor& a, const Tensor& b) {
  DTDBD_CHECK(a.shape() == b.shape())
      << op << ": shape mismatch " << ShapeToString(a.shape()) << " vs "
      << ShapeToString(b.shape());
}

// ----- SIMD fast-path helpers (runtime-dispatched, bitwise-exact) -----
//
// Every helper below performs exactly the scalar reference loop's
// multiply/add sequence per element — separate mul/add (never fmadd; this
// file is built with -ffp-contract=off), comparisons with the same
// NaN/±0 semantics as the scalar predicates, and identical accumulation
// order — so the vector paths are bitwise identical to scalar at every
// thread count. Dispatch is SimdEnabled() (DTDBD_NO_SIMD pins scalar)
// && CpuHasAvx512f(). The int8 helpers at the bottom are the exception:
// they serve the NMSE-bounded quantized eval path and may use fmadd.

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define DTDBD_SIMD_AVX512 1

bool CpuHasAvx512f() {
  static const bool has = __builtin_cpu_supports("avx512f");
  return has;
}

inline bool UseAvx512() { return SimdEnabled() && CpuHasAvx512f(); }

// o[j] += a * b[j] for j in [0, n) — the inner loop of the ikj matmul.
__attribute__((target("avx512f"))) void AxpyRowAvx512(float* o, const float* b,
                                                      float a, int64_t n) {
  const __m512 va = _mm512_set1_ps(a);
  int64_t j = 0;
  for (; j + 16 <= n; j += 16) {
    const __m512 vo = _mm512_add_ps(
        _mm512_loadu_ps(o + j), _mm512_mul_ps(va, _mm512_loadu_ps(b + j)));
    _mm512_storeu_ps(o + j, vo);
  }
  for (; j < n; ++j) o[j] += a * b[j];
}

// dst[j] += src[j] for j in [0, n).
__attribute__((target("avx512f"))) void AddRowAvx512(float* dst,
                                                     const float* src,
                                                     int64_t n) {
  int64_t j = 0;
  for (; j + 16 <= n; j += 16) {
    _mm512_storeu_ps(
        dst + j, _mm512_add_ps(_mm512_loadu_ps(dst + j),
                               _mm512_loadu_ps(src + j)));
  }
  for (; j < n; ++j) dst[j] += src[j];
}

// dst[j] = src[j] for j in [0, n) (explicit vector row copy).
__attribute__((target("avx512f"))) void CopyRowAvx512(float* dst,
                                                      const float* src,
                                                      int64_t n) {
  int64_t j = 0;
  for (; j + 16 <= n; j += 16) {
    _mm512_storeu_ps(dst + j, _mm512_loadu_ps(src + j));
  }
  for (; j < n; ++j) dst[j] = src[j];
}

// out16[l] = sum_j g[j] * bt[j*stride + l], j ascending from a zero
// accumulator — 16 consecutive dot products against a transposed matrix,
// each lane running the scalar chain exactly.
__attribute__((target("avx512f"))) void DotAccum16Avx512(const float* g,
                                                         const float* bt,
                                                         int64_t rows,
                                                         int64_t stride,
                                                         float* out16) {
  __m512 acc = _mm512_setzero_ps();
  for (int64_t j = 0; j < rows; ++j) {
    acc = _mm512_add_ps(
        acc, _mm512_mul_ps(_mm512_set1_ps(g[j]),
                           _mm512_loadu_ps(bt + j * stride)));
  }
  _mm512_storeu_ps(out16, acc);
}

// The LinearRelu epilogue: pre = o[j] + b[j]; mask[j] = pre > 0;
// o[j] = pre > 0 ? pre : 0. _CMP_GT_OQ matches the scalar `pre > 0.0f`
// (quiet, NaN compares false).
__attribute__((target("avx512f"))) void BiasReluRowAvx512(float* o,
                                                          float* mask,
                                                          const float* b,
                                                          int64_t n) {
  const __m512 zero = _mm512_setzero_ps();
  const __m512 one = _mm512_set1_ps(1.0f);
  int64_t j = 0;
  for (; j + 16 <= n; j += 16) {
    const __m512 pre =
        _mm512_add_ps(_mm512_loadu_ps(o + j), _mm512_loadu_ps(b + j));
    const __mmask16 on = _mm512_cmp_ps_mask(pre, zero, _CMP_GT_OQ);
    _mm512_storeu_ps(mask + j, _mm512_mask_blend_ps(on, zero, one));
    _mm512_storeu_ps(o + j, _mm512_mask_blend_ps(on, zero, pre));
  }
  for (; j < n; ++j) {
    const float pre = o[j] + b[j];
    const bool on = pre > 0.0f;
    mask[j] = on ? 1.0f : 0.0f;
    o[j] = on ? pre : 0.0f;
  }
}

// Per-lane running max over the j-major transposed scratch [cols, 16]:
// m = (m < x[j]) ? x[j] : m — exactly std::max's predicate, j ascending
// from x[0]. _CMP_LT_OQ keeps m on NaN, like the scalar chain.
__attribute__((target("avx512f"))) void RowMax16Avx512(const float* scratch,
                                                       int64_t cols,
                                                       float* m16) {
  __m512 m = _mm512_loadu_ps(scratch);
  for (int64_t j = 1; j < cols; ++j) {
    const __m512 xj = _mm512_loadu_ps(scratch + j * 16);
    const __mmask16 lt = _mm512_cmp_ps_mask(m, xj, _CMP_LT_OQ);
    m = _mm512_mask_blend_ps(lt, m, xj);
  }
  _mm512_storeu_ps(m16, m);
}

// y[j] *= s for j in [0, n).
__attribute__((target("avx512f"))) void ScaleRowAvx512(float* y, float s,
                                                       int64_t n) {
  const __m512 vs = _mm512_set1_ps(s);
  int64_t j = 0;
  for (; j + 16 <= n; j += 16) {
    _mm512_storeu_ps(y + j, _mm512_mul_ps(_mm512_loadu_ps(y + j), vs));
  }
  for (; j < n; ++j) y[j] *= s;
}

// y[j] = x[j] - s for j in [0, n) (the log-softmax writeback).
__attribute__((target("avx512f"))) void SubScalarRowAvx512(float* y,
                                                           const float* x,
                                                           float s,
                                                           int64_t n) {
  const __m512 vs = _mm512_set1_ps(s);
  int64_t j = 0;
  for (; j + 16 <= n; j += 16) {
    _mm512_storeu_ps(y + j, _mm512_sub_ps(_mm512_loadu_ps(x + j), vs));
  }
  for (; j < n; ++j) y[j] = x[j] - s;
}

// The fused-MatVec dot for 16 rows at once over the transposed scratch
// [n, 16]: acc += x * v[kk] only where x != 0 — _CMP_NEQ_UQ includes NaN
// and excludes ±0, exactly like the scalar `if (av == 0.0f) continue`.
__attribute__((target("avx512f"))) void MatVec16Avx512(const float* scratch,
                                                       const float* v,
                                                       int64_t n,
                                                       float* out16) {
  const __m512 zero = _mm512_setzero_ps();
  __m512 acc = _mm512_setzero_ps();
  for (int64_t kk = 0; kk < n; ++kk) {
    const __m512 xcol = _mm512_loadu_ps(scratch + kk * 16);
    const __mmask16 nz = _mm512_cmp_ps_mask(xcol, zero, _CMP_NEQ_UQ);
    acc = _mm512_mask_add_ps(acc, nz, acc,
                             _mm512_mul_ps(xcol, _mm512_set1_ps(v[kk])));
  }
  _mm512_storeu_ps(out16, acc);
}

// gv[kk+l] += x[i, kk+l] * g[i] over i ascending, skipping x == 0 — the
// MatVecOverTime grad-v column loop for 16 consecutive kk (x rows are
// contiguous, so no transpose is needed).
__attribute__((target("avx512f"))) void MatVecGradV16Avx512(
    const float* px, const float* g, int64_t bt, int64_t n, float* gv) {
  const __m512 zero = _mm512_setzero_ps();
  __m512 acc = _mm512_loadu_ps(gv);
  for (int64_t i = 0; i < bt; ++i) {
    const __m512 xrow = _mm512_loadu_ps(px + i * n);
    const __mmask16 nz = _mm512_cmp_ps_mask(xrow, zero, _CMP_NEQ_UQ);
    acc = _mm512_mask_add_ps(acc, nz, acc,
                             _mm512_mul_ps(xrow, _mm512_set1_ps(g[i])));
  }
  _mm512_storeu_ps(gv, acc);
}

// Per-lane LayerNorm statistics over the transposed scratch [n, 16]:
// the scalar sum/divide/variance chain per lane. Division and sqrt are
// IEEE correctly-rounded in both scalar and vector forms, so the results
// are bitwise identical to the scalar path.
__attribute__((target("avx512f"))) void LayerNormStats16Avx512(
    const float* scratch, int64_t n, float eps, float* mean16, float* is16) {
  const __m512 vn = _mm512_set1_ps(static_cast<float>(n));
  __m512 sum = _mm512_setzero_ps();
  for (int64_t j = 0; j < n; ++j) {
    sum = _mm512_add_ps(sum, _mm512_loadu_ps(scratch + j * 16));
  }
  const __m512 mean = _mm512_div_ps(sum, vn);
  __m512 var = _mm512_setzero_ps();
  for (int64_t j = 0; j < n; ++j) {
    const __m512 d = _mm512_sub_ps(_mm512_loadu_ps(scratch + j * 16), mean);
    var = _mm512_add_ps(var, _mm512_mul_ps(d, d));
  }
  var = _mm512_div_ps(var, vn);
  const __m512 is = _mm512_div_ps(
      _mm512_set1_ps(1.0f),
      _mm512_sqrt_ps(_mm512_add_ps(var, _mm512_set1_ps(eps))));
  _mm512_storeu_ps(mean16, mean);
  _mm512_storeu_ps(is16, is);
}

// LayerNorm writeback for one row: h = (x[j] - mean) * is;
// o[j] = g[j] * h + beta[j]; xhat[j] = h.
__attribute__((target("avx512f"))) void LayerNormRowAvx512(
    const float* xi, const float* pg, const float* pbeta, float mean,
    float is, float* xhat, float* o, int64_t n) {
  const __m512 vmean = _mm512_set1_ps(mean);
  const __m512 vis = _mm512_set1_ps(is);
  int64_t j = 0;
  for (; j + 16 <= n; j += 16) {
    const __m512 h = _mm512_mul_ps(
        _mm512_sub_ps(_mm512_loadu_ps(xi + j), vmean), vis);
    _mm512_storeu_ps(xhat + j, h);
    _mm512_storeu_ps(
        o + j, _mm512_add_ps(_mm512_mul_ps(_mm512_loadu_ps(pg + j), h),
                             _mm512_loadu_ps(pbeta + j)));
  }
  for (; j < n; ++j) {
    const float h = (xi[j] - mean) * is;
    xhat[j] = h;
    o[j] = pg[j] * h + pbeta[j];
  }
}

// ----- Int8 dequantize-in-register kernels (NMSE-bounded, NOT bitwise) --

// o[j] += float(q[j]) * m for j in [0, n). fmadd is fine here: the int8
// path's contract is NMSE-bounded accuracy, not bitwise parity.
__attribute__((target("avx512f"))) void Int8AxpyRowAvx512(float* o,
                                                          const int8_t* q,
                                                          float m, int64_t n) {
  const __m512 vm = _mm512_set1_ps(m);
  int64_t j = 0;
  for (; j + 16 <= n; j += 16) {
    const __m128i qi =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + j));
    const __m512 f = _mm512_cvtepi32_ps(_mm512_cvtepi8_epi32(qi));
    _mm512_storeu_ps(o + j,
                     _mm512_fmadd_ps(f, vm, _mm512_loadu_ps(o + j)));
  }
  for (; j < n; ++j) o[j] += static_cast<float>(q[j]) * m;
}
#else
inline bool UseAvx512() { return false; }
#endif  // x86_64

// Looks up the quantized twin of weight `w` for the int8 eval path: only
// outside autograd (training never sees int8), only when a session has
// installed an ambient Int8WeightSet, and only when the quantized shape
// matches the operand exactly.
const QuantizedMatrix* Int8WeightFor(const Tensor& w, int64_t k, int64_t n) {
  if (GradEnabled()) return nullptr;
  const Int8WeightSet* set = ActiveInt8Weights();
  if (set == nullptr) return nullptr;
  const QuantizedMatrix* q = set->Find(w.storage_id());
  if (q == nullptr || q->rows != k || q->cols != n) return nullptr;
  return q;
}

// The int8 twin of the ikj matmul accumulation for output rows [s, e):
// per (i, kk) the fp32 activation is folded with the row scale into one
// multiplier, then the int8 row of B is dequantized in-register.
void Int8MatMulRows(const Reader& ra, const QuantizedMatrix& qb, float* po,
                    int64_t k, int64_t n, int64_t s, int64_t e) {
#ifdef DTDBD_SIMD_AVX512
  const bool vec = CpuHasAvx512f() && n >= 16;
#endif
  for (int64_t i = s; i < e; ++i) {
    const float* arow = ra.row(i);
    float* orow = po + i * n;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float m = av * qb.scales[static_cast<size_t>(kk)];
      if (m == 0.0f) continue;  // all-zero weight row
      const int8_t* qrow = qb.q.data() + kk * n;
#ifdef DTDBD_SIMD_AVX512
      if (vec) {
        Int8AxpyRowAvx512(orow, qrow, m, n);
        continue;
      }
#endif
      for (int64_t j = 0; j < n; ++j) {
        orow[j] += static_cast<float>(qrow[j]) * m;
      }
    }
  }
}

// The exact ikj accumulation of MatMul (zero-skip per A element) for
// output rows [s, e) — shared by MatMul and the fused LinearRelu. `vec`
// is hoisted by the caller (SimdEnabled && AVX-512 && n >= 16).
void MatMulAccumulateRows(const Reader& ra, const Reader& rb, float* po,
                          int64_t k, int64_t n, int64_t s, int64_t e,
                          bool vec) {
  (void)vec;
  for (int64_t i = s; i < e; ++i) {
    const float* arow = ra.row(i);
    float* orow = po + i * n;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = rb.row(kk);
#ifdef DTDBD_SIMD_AVX512
      if (vec) {
        AxpyRowAvx512(orow, brow, av, n);
        continue;
      }
#endif
      for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

// gA[i,kk] += sum_j g[i,j] * B[kk,j] for rows [s, e) — shared by the
// MatMul and LinearRelu backwards. When `bt` is non-null it holds B
// transposed ([n, k], bt[j*k+kk] = B[kk,j]) and the vector path computes
// 16 consecutive kk per pass; the tail and the bt==nullptr case run the
// scalar reference chain.
void MatMulBackwardARows(const float* g, const Reader& rb, const float* bt,
                         float* ga, int64_t k, int64_t n, int64_t s,
                         int64_t e) {
  for (int64_t i = s; i < e; ++i) {
    const float* grow = g + i * n;
    int64_t kk = 0;
#ifdef DTDBD_SIMD_AVX512
    if (bt != nullptr) {
      float acc16[16];
      for (; kk + 16 <= k; kk += 16) {
        DotAccum16Avx512(grow, bt + kk, n, k, acc16);
        for (int l = 0; l < 16; ++l) ga[i * k + kk + l] += acc16[l];
      }
    }
#endif
    for (; kk < k; ++kk) {
      const float* brow = rb.row(kk);
      float acc = 0.0f;
      for (int64_t j = 0; j < n; ++j) acc += grow[j] * brow[j];
      ga[i * k + kk] += acc;
    }
  }
}

// Builds the transposed copy of B used by MatMulBackwardARows' vector
// path, or an empty vector when the fast path won't run. Materialized on
// the dispatching thread, before ParallelFor.
std::vector<float> MaybeTransposeForBackward(const Reader& rb, int64_t k,
                                             int64_t n) {
  std::vector<float> bt;
#ifdef DTDBD_SIMD_AVX512
  if (UseAvx512() && k >= 16) {
    bt.resize(static_cast<size_t>(k * n));
    for (int64_t kk = 0; kk < k; ++kk) {
      const float* brow = rb.row(kk);
      for (int64_t j = 0; j < n; ++j) bt[j * k + kk] = brow[j];
    }
  }
#else
  (void)rb;
  (void)k;
  (void)n;
#endif
  return bt;
}

// gB[kk,j] += A[i,kk] * g[i,j] for weight rows [s, e), i ascending with
// the zero-skip — shared by the MatMul and LinearRelu backwards.
void MatMulBackwardBRows(const Reader& ra, const float* g, float* gb,
                         int64_t m, int64_t n, int64_t s, int64_t e,
                         bool vec) {
  (void)vec;
  for (int64_t kk = s; kk < e; ++kk) {
    float* gbrow = gb + kk * n;
    for (int64_t i = 0; i < m; ++i) {
      const float av = ra.row(i)[kk];
      if (av == 0.0f) continue;
      const float* grow = g + i * n;
#ifdef DTDBD_SIMD_AVX512
      if (vec) {
        AxpyRowAvx512(gbrow, grow, av, n);
        continue;
      }
#endif
      for (int64_t j = 0; j < n; ++j) gbrow[j] += av * grow[j];
    }
  }
}

// ----- Contiguous -----

void ContiguousBackward(Node* self) {
  Node* in = self->inputs[0].get();
  if (!in->requires_grad) return;
  const float* g = self->grad.data();
  float* gi = in->grad.data();
  ParallelFor(self->numel, kGrain, [&](int64_t s, int64_t e) {
    for (int64_t i = s; i < e; ++i) gi[i] += g[i];
  });
}

const Op* const kContiguous =
    OpRegistry::Get().Register({"Contiguous", 1, &ContiguousBackward});

}  // namespace

Tensor Contiguous(const Tensor& a) {
  DTDBD_CHECK(a.defined());
  if (a.contiguous()) return a;
  const Node* n = a.node().get();
  ScopedOpTimer timer(kContiguous);
  std::vector<float> out(static_cast<size_t>(n->numel));
  float* po = out.data();
  ParallelFor(n->numel, kGrain, [&](int64_t s, int64_t e) {
    for (int64_t i = s; i < e; ++i) po[i] = n->storage->buf[n->PhysIndex(i)];
  });
  return MakeOp(kContiguous, a.shape(), std::move(out), {a});
}

Tensor Tensor::Contiguous() const { return dtdbd::tensor::Contiguous(*this); }

namespace {

// ----- Elementwise binary -----

void AddBackward(Node* self) {
  const float* g = self->grad.data();
  for (int k = 0; k < 2; ++k) {
    Node* in = self->inputs[k].get();
    if (!in->requires_grad) continue;
    float* gi = in->grad.data();
    ParallelFor(self->numel, kGrain, [&](int64_t s, int64_t e) {
      for (int64_t i = s; i < e; ++i) gi[i] += g[i];
    });
  }
}

void SubBackward(Node* self) {
  const float* g = self->grad.data();
  Node* lhs = self->inputs[0].get();
  Node* rhs = self->inputs[1].get();
  if (lhs->requires_grad) {
    float* gi = lhs->grad.data();
    ParallelFor(self->numel, kGrain, [&](int64_t s, int64_t e) {
      for (int64_t i = s; i < e; ++i) gi[i] += g[i];
    });
  }
  if (rhs->requires_grad) {
    float* gi = rhs->grad.data();
    ParallelFor(self->numel, kGrain, [&](int64_t s, int64_t e) {
      for (int64_t i = s; i < e; ++i) gi[i] -= g[i];
    });
  }
}

void MulBackward(Node* self) {
  const float* g = self->grad.data();
  Node* lhs = self->inputs[0].get();
  Node* rhs = self->inputs[1].get();
  if (lhs->requires_grad) {
    const Reader rb = ReadOf(rhs);
    float* gi = lhs->grad.data();
    ParallelFor(self->numel, kGrain, [&](int64_t s, int64_t e) {
      for (int64_t i = s; i < e; ++i) gi[i] += g[i] * rb.at(i);
    });
  }
  if (rhs->requires_grad) {
    const Reader ra = ReadOf(lhs);
    float* gi = rhs->grad.data();
    ParallelFor(self->numel, kGrain, [&](int64_t s, int64_t e) {
      for (int64_t i = s; i < e; ++i) gi[i] += g[i] * ra.at(i);
    });
  }
}

const Op* const kAdd = OpRegistry::Get().Register({"Add", 2, &AddBackward});
const Op* const kSub = OpRegistry::Get().Register({"Sub", 2, &SubBackward});
const Op* const kMul = OpRegistry::Get().Register({"Mul", 2, &MulBackward});

template <typename F>
Tensor BinaryEw(const Op* op, const Tensor& a_in, const Tensor& b_in, F f) {
  CheckSameShape(op->name.c_str(), a_in, b_in);
  Tensor a = EnsureReadable(a_in);
  Tensor b = EnsureReadable(b_in);
  ScopedOpTimer timer(op);
  const Reader ra = ReadOf(a.node().get());
  const Reader rb = ReadOf(b.node().get());
  std::vector<float> out(static_cast<size_t>(a.numel()));
  float* po = out.data();
  ParallelFor(a.numel(), kGrain, [&](int64_t s, int64_t e) {
    if (ra.flat && rb.flat) {
      for (int64_t i = s; i < e; ++i) po[i] = f(ra.ptr[i], rb.ptr[i]);
    } else {
      for (int64_t i = s; i < e; ++i) po[i] = f(ra.at(i), rb.at(i));
    }
  });
  return MakeOp(op, a.shape(), std::move(out), {a, b});
}

// ----- AddBias -----

void AddBiasBackward(Node* self) {
  Node* xin = self->inputs[0].get();
  Node* bin = self->inputs[1].get();
  const int64_t n = bin->shape[0];
  const int64_t rows = n > 0 ? self->numel / n : 0;
  const float* g = self->grad.data();
  if (xin->requires_grad) {
    float* gx = xin->grad.data();
    ParallelFor(self->numel, kGrain, [&](int64_t s, int64_t e) {
      for (int64_t i = s; i < e; ++i) gx[i] += g[i];
    });
  }
  if (bin->requires_grad) {
    float* gb = bin->grad.data();
    // Sharded over bias columns; each column sums rows in ascending order,
    // matching the serial kernel bit for bit.
    ParallelFor(n, GrainForRows(rows), [&](int64_t s, int64_t e) {
      for (int64_t j = s; j < e; ++j) {
        for (int64_t r = 0; r < rows; ++r) gb[j] += g[r * n + j];
      }
    });
  }
}

const Op* const kAddBias =
    OpRegistry::Get().Register({"AddBias", 2, &AddBiasBackward});

// ----- Unary elementwise family -----

template <typename F>
void UnaryBackward(Node* self) {
  Node* in = self->inputs[0].get();
  if (!in->requires_grad) return;
  const Reader rx = ReadOf(in);
  const float* y = self->cdata();
  const float* g = self->grad.data();
  float* gi = in->grad.data();
  ParallelFor(self->numel, kGrain, [&](int64_t s, int64_t e) {
    for (int64_t i = s; i < e; ++i) gi[i] += g[i] * F::Dydx(rx.at(i), y[i]);
  });
}

template <typename F>
Tensor UnaryEw(const Op* op, const Tensor& a_in) {
  Tensor a = EnsureReadable(a_in);
  ScopedOpTimer timer(op);
  const Reader rx = ReadOf(a.node().get());
  std::vector<float> out(static_cast<size_t>(a.numel()));
  float* po = out.data();
  ParallelFor(a.numel(), kGrain, [&](int64_t s, int64_t e) {
    if (rx.flat) {
      for (int64_t i = s; i < e; ++i) po[i] = F::Fwd(rx.ptr[i]);
    } else {
      for (int64_t i = s; i < e; ++i) po[i] = F::Fwd(rx.at(i));
    }
  });
  return MakeOp(op, a.shape(), std::move(out), {a});
}

struct NegFn {
  static float Fwd(float x) { return -x; }
  static float Dydx(float, float) { return -1.0f; }
};
struct ReluFn {
  static float Fwd(float x) { return x > 0.0f ? x : 0.0f; }
  static float Dydx(float x, float) { return x > 0.0f ? 1.0f : 0.0f; }
};
struct TanhFn {
  static float Fwd(float x) { return std::tanh(x); }
  static float Dydx(float, float y) { return 1.0f - y * y; }
};
struct SigmoidFn {
  static float Fwd(float x) { return 1.0f / (1.0f + std::exp(-x)); }
  static float Dydx(float, float y) { return y * (1.0f - y); }
};
struct ExpFn {
  static float Fwd(float x) { return std::exp(x); }
  static float Dydx(float, float y) { return y; }
};
struct LogFn {
  static float Fwd(float x) { return std::log(x); }
  static float Dydx(float x, float) { return 1.0f / x; }
};
struct SquareFn {
  static float Fwd(float x) { return x * x; }
  static float Dydx(float x, float) { return 2.0f * x; }
};

const Op* const kNeg =
    OpRegistry::Get().Register({"Neg", 1, &UnaryBackward<NegFn>});
const Op* const kRelu =
    OpRegistry::Get().Register({"Relu", 1, &UnaryBackward<ReluFn>});
const Op* const kTanh =
    OpRegistry::Get().Register({"Tanh", 1, &UnaryBackward<TanhFn>});
const Op* const kSigmoid =
    OpRegistry::Get().Register({"Sigmoid", 1, &UnaryBackward<SigmoidFn>});
const Op* const kExp =
    OpRegistry::Get().Register({"Exp", 1, &UnaryBackward<ExpFn>});
const Op* const kLog =
    OpRegistry::Get().Register({"Log", 1, &UnaryBackward<LogFn>});
const Op* const kSquare =
    OpRegistry::Get().Register({"Square", 1, &UnaryBackward<SquareFn>});

// ScalarMul carries its factor in the saved state.
struct ScalarMulState {
  float s;
};

void ScalarMulBackward(Node* self) {
  Node* in = self->inputs[0].get();
  if (!in->requires_grad) return;
  const float s = static_cast<const ScalarMulState*>(self->saved.get())->s;
  const float* g = self->grad.data();
  float* gi = in->grad.data();
  ParallelFor(self->numel, kGrain, [&](int64_t s0, int64_t e) {
    for (int64_t i = s0; i < e; ++i) gi[i] += g[i] * s;
  });
}

const Op* const kScalarMul =
    OpRegistry::Get().Register({"ScalarMul", 1, &ScalarMulBackward});

// ----- MatMul -----

void MatMulBackward(Node* self) {
  Node* an = self->inputs[0].get();
  Node* bn = self->inputs[1].get();
  const int64_t m = an->shape[0], k = an->shape[1], n = bn->shape[1];
  const float* g = self->grad.data();
  if (an->requires_grad) {
    // gA[i,kk] += sum_j g[i,j] * B[kk,j]; sharded over rows of A.
    const Reader rb = ReadOf(bn);
    float* ga = an->grad.data();
    const std::vector<float> bt = MaybeTransposeForBackward(rb, k, n);
    const float* pbt = bt.empty() ? nullptr : bt.data();
    ParallelFor(m, GrainForRows(k * n), [&](int64_t s, int64_t e) {
      MatMulBackwardARows(g, rb, pbt, ga, k, n, s, e);
    });
  }
  if (bn->requires_grad) {
    // gB[kk,j] += sum_i A[i,kk] * g[i,j]; sharded over rows of B. Each
    // (kk,j) accumulates over i ascending, matching the serial kernel.
    const Reader ra = ReadOf(an);
    float* gb = bn->grad.data();
    const bool vec = UseAvx512() && n >= 16;
    ParallelFor(k, GrainForRows(m * n), [&](int64_t s, int64_t e) {
      MatMulBackwardBRows(ra, g, gb, m, n, s, e, vec);
    });
  }
}

const Op* const kMatMul =
    OpRegistry::Get().Register({"MatMul", 2, &MatMulBackward});

// ----- LinearRelu (fused MatMul + AddBias + Relu) -----
//
// Bitwise-equality contract with the unfused chain: the forward runs the
// exact MatMul accumulation (ikj order, zero-skip) into the output buffer,
// then adds the bias and clamps in place; the backward first gates the
// incoming grad through the saved ReLU mask into a scratch buffer — exactly
// the value the unfused chain leaves in the AddBias node's grad — and then
// replays the AddBias and MatMul backward kernels against that scratch.

struct LinearReluState {
  std::vector<float> mask;  // 1.0 where the pre-activation was > 0
};

void LinearReluBackward(Node* self) {
  Node* xn = self->inputs[0].get();
  Node* wn = self->inputs[1].get();
  Node* bn = self->inputs[2].get();
  const int64_t m = xn->shape[0], k = xn->shape[1], n = wn->shape[1];
  const auto* st = static_cast<const LinearReluState*>(self->saved.get());
  const float* g = self->grad.data();
  const float* mask = st->mask.data();
  // The unfused Relu backward accumulates g * {0,1} into a zeroed buffer;
  // the + 0.0f reproduces that add (canonicalizing -0 products to +0).
  std::vector<float> g2(static_cast<size_t>(m * n));
  float* pg2 = g2.data();
  ParallelFor(m * n, kGrain, [&](int64_t s, int64_t e) {
    for (int64_t i = s; i < e; ++i) pg2[i] = g[i] * mask[i] + 0.0f;
  });
  if (bn->requires_grad) {
    // AddBias backward: bias columns sharded, rows ascending. The vector
    // path interchanges the loops within the shard's column range — each
    // gb[j] still accumulates over r ascending.
    float* gb = bn->grad.data();
    const bool vec = UseAvx512();
    ParallelFor(n, GrainForRows(m), [&](int64_t s, int64_t e) {
      if (vec && e - s >= 16) {
        for (int64_t r = 0; r < m; ++r) {
#ifdef DTDBD_SIMD_AVX512
          AddRowAvx512(gb + s, pg2 + r * n + s, e - s);
#endif
        }
        return;
      }
      for (int64_t j = s; j < e; ++j) {
        for (int64_t r = 0; r < m; ++r) gb[j] += pg2[r * n + j];
      }
    });
  }
  if (xn->requires_grad) {
    const Reader rb = ReadOf(wn);
    float* gx = xn->grad.data();
    const std::vector<float> bt = MaybeTransposeForBackward(rb, k, n);
    const float* pbt = bt.empty() ? nullptr : bt.data();
    ParallelFor(m, GrainForRows(k * n), [&](int64_t s, int64_t e) {
      MatMulBackwardARows(pg2, rb, pbt, gx, k, n, s, e);
    });
  }
  if (wn->requires_grad) {
    const Reader ra = ReadOf(xn);
    float* gw = wn->grad.data();
    const bool vec = UseAvx512() && n >= 16;
    ParallelFor(k, GrainForRows(m * n), [&](int64_t s, int64_t e) {
      MatMulBackwardBRows(ra, pg2, gw, m, n, s, e, vec);
    });
  }
}

const Op* const kLinearRelu =
    OpRegistry::Get().Register({"LinearRelu", 3, &LinearReluBackward});

// ----- MatVecOverTime (fused Reshape + MatMul + Reshape) -----
//
// The attention score path multiplies x[B,T,N] by a single score vector;
// running it as MatMul records two reshape views plus a [B*T,1] matmul node.
// Fused: one node, one [B,T] buffer, sharded over the B*T rows with the
// same accumulation order (and zero-skip) as the n=1 MatMul column.

void MatVecOverTimeBackward(Node* self) {
  Node* xn = self->inputs[0].get();
  Node* vn = self->inputs[1].get();
  const int64_t bt = self->numel;
  const int64_t n = xn->shape[2];
  const float* g = self->grad.data();
  if (xn->requires_grad) {
    const Reader rv = ReadOf(vn);
    float* gx = xn->grad.data();
    const bool vec = UseAvx512() && rv.flat && n >= 16;
    ParallelFor(bt, GrainForRows(n), [&](int64_t s, int64_t e) {
      for (int64_t i = s; i < e; ++i) {
        const float gv = g[i];
        float* gxrow = gx + i * n;
#ifdef DTDBD_SIMD_AVX512
        if (vec) {
          AxpyRowAvx512(gxrow, rv.ptr, gv, n);
          continue;
        }
#else
        (void)vec;
#endif
        for (int64_t kk = 0; kk < n; ++kk) gxrow[kk] += gv * rv.at(kk);
      }
    });
  }
  if (vn->requires_grad) {
    const float* px = xn->cdata();
    float* gv = vn->grad.data();
    const bool vec = UseAvx512();
    ParallelFor(n, GrainForRows(bt), [&](int64_t s, int64_t e) {
      int64_t kk = s;
#ifdef DTDBD_SIMD_AVX512
      if (vec) {
        for (; kk + 16 <= e; kk += 16) {
          MatVecGradV16Avx512(px + kk, g, bt, n, gv + kk);
        }
      }
#else
      (void)vec;
#endif
      for (; kk < e; ++kk) {
        for (int64_t i = 0; i < bt; ++i) {
          const float av = px[i * n + kk];
          if (av == 0.0f) continue;
          gv[kk] += av * g[i];
        }
      }
    });
  }
}

const Op* const kMatVecOverTime =
    OpRegistry::Get().Register({"MatVecOverTime", 2, &MatVecOverTimeBackward});

// ----- Views: Transpose2d / Reshape / SliceLastDim / SliceTime -----

void Transpose2dBackward(Node* self) {
  Node* in = self->inputs[0].get();
  if (!in->requires_grad) return;
  const int64_t m = in->shape[0], n = in->shape[1];
  const float* g = self->grad.data();  // logical [n, m]
  float* gi = in->grad.data();
  ParallelFor(n, GrainForRows(m), [&](int64_t s, int64_t e) {
    for (int64_t j = s; j < e; ++j) {
      for (int64_t i = 0; i < m; ++i) gi[i * n + j] += g[j * m + i];
    }
  });
}

const Op* const kTranspose2d = OpRegistry::Get().Register(
    {"Transpose2d", 1, &Transpose2dBackward, /*is_view=*/true});

void ReshapeBackward(Node* self) {
  Node* in = self->inputs[0].get();
  if (!in->requires_grad) return;
  const float* g = self->grad.data();
  float* gi = in->grad.data();
  ParallelFor(self->numel, kGrain, [&](int64_t s, int64_t e) {
    for (int64_t i = s; i < e; ++i) gi[i] += g[i];
  });
}

const Op* const kReshape =
    OpRegistry::Get().Register({"Reshape", 1, &ReshapeBackward,
                                /*is_view=*/true});

struct SliceLastDimState {
  int64_t start;
};

void SliceLastDimBackward(Node* self) {
  Node* in = self->inputs[0].get();
  if (!in->requires_grad) return;
  const int64_t rows = self->shape[0], len = self->shape[1];
  const int64_t cols = in->shape[1];
  const int64_t start =
      static_cast<const SliceLastDimState*>(self->saved.get())->start;
  const float* g = self->grad.data();
  float* gi = in->grad.data();
  ParallelFor(rows, GrainForRows(len), [&](int64_t s, int64_t e) {
    for (int64_t r = s; r < e; ++r) {
      for (int64_t j = 0; j < len; ++j) {
        gi[r * cols + start + j] += g[r * len + j];
      }
    }
  });
}

const Op* const kSliceLastDim = OpRegistry::Get().Register(
    {"SliceLastDim", 1, &SliceLastDimBackward, /*is_view=*/true});

struct SliceTimeState {
  int64_t t;
};

void SliceTimeBackward(Node* self) {
  Node* in = self->inputs[0].get();
  if (!in->requires_grad) return;
  const int64_t b = in->shape[0], tt = in->shape[1], n = in->shape[2];
  const int64_t t = static_cast<const SliceTimeState*>(self->saved.get())->t;
  const float* g = self->grad.data();
  float* gi = in->grad.data();
  ParallelFor(b, GrainForRows(n), [&](int64_t s, int64_t e) {
    for (int64_t bi = s; bi < e; ++bi) {
      for (int64_t j = 0; j < n; ++j) {
        gi[(bi * tt + t) * n + j] += g[bi * n + j];
      }
    }
  });
}

const Op* const kSliceTime = OpRegistry::Get().Register(
    {"SliceTime", 1, &SliceTimeBackward, /*is_view=*/true});

// ----- Reductions -----

void SumBackward(Node* self) {
  Node* in = self->inputs[0].get();
  if (!in->requires_grad) return;
  const float g = self->grad[0];
  float* gi = in->grad.data();
  ParallelFor(in->numel, kGrain, [&](int64_t s, int64_t e) {
    for (int64_t i = s; i < e; ++i) gi[i] += g;
  });
}

void MeanBackward(Node* self) {
  Node* in = self->inputs[0].get();
  if (!in->requires_grad) return;
  const float inv_n = 1.0f / static_cast<float>(in->numel);
  const float g = self->grad[0] * inv_n;
  float* gi = in->grad.data();
  ParallelFor(in->numel, kGrain, [&](int64_t s, int64_t e) {
    for (int64_t i = s; i < e; ++i) gi[i] += g;
  });
}

const Op* const kSum = OpRegistry::Get().Register({"Sum", 1, &SumBackward});
const Op* const kMean = OpRegistry::Get().Register({"Mean", 1, &MeanBackward});

void MeanOverTimeBackward(Node* self) {
  Node* in = self->inputs[0].get();
  if (!in->requires_grad) return;
  const int64_t b = in->shape[0], t = in->shape[1], n = in->shape[2];
  const float inv_t = 1.0f / static_cast<float>(t);
  const float* g = self->grad.data();
  float* gi = in->grad.data();
  ParallelFor(b, GrainForRows(t * n), [&](int64_t s, int64_t e) {
    for (int64_t bi = s; bi < e; ++bi) {
      for (int64_t ti = 0; ti < t; ++ti) {
        for (int64_t j = 0; j < n; ++j) {
          gi[(bi * t + ti) * n + j] += g[bi * n + j] * inv_t;
        }
      }
    }
  });
}

const Op* const kMeanOverTime =
    OpRegistry::Get().Register({"MeanOverTime", 1, &MeanOverTimeBackward});

struct MaxOverTimeState {
  std::vector<int32_t> argmax;
};

void MaxOverTimeBackward(Node* self) {
  Node* in = self->inputs[0].get();
  if (!in->requires_grad) return;
  const int64_t b = in->shape[0], t = in->shape[1], n = in->shape[2];
  const auto* st = static_cast<const MaxOverTimeState*>(self->saved.get());
  const float* g = self->grad.data();
  float* gi = in->grad.data();
  ParallelFor(b, GrainForRows(n), [&](int64_t s, int64_t e) {
    for (int64_t bi = s; bi < e; ++bi) {
      for (int64_t j = 0; j < n; ++j) {
        const int32_t ti = st->argmax[bi * n + j];
        gi[(bi * t + ti) * n + j] += g[bi * n + j];
      }
    }
  });
}

const Op* const kMaxOverTime =
    OpRegistry::Get().Register({"MaxOverTime", 1, &MaxOverTimeBackward});

// ----- Concat / Stack -----

void ConcatLastDimBackward(Node* self) {
  const int64_t rows = self->shape[0], total = self->shape[1];
  const float* g = self->grad.data();
  // Inputs handled serially (an input may appear more than once); rows
  // sharded inside.
  int64_t off = 0;
  for (size_t k = 0; k < self->inputs.size(); ++k) {
    Node* in = self->inputs[k].get();
    const int64_t w = in->shape[1];
    if (in->requires_grad) {
      float* gi = in->grad.data();
      const int64_t o = off;
      ParallelFor(rows, GrainForRows(w), [&](int64_t s, int64_t e) {
        for (int64_t r = s; r < e; ++r) {
          for (int64_t j = 0; j < w; ++j) {
            gi[r * w + j] += g[r * total + o + j];
          }
        }
      });
    }
    off += w;
  }
}

const Op* const kConcatLastDim = OpRegistry::Get().Register(
    {"ConcatLastDim", kVariadicArity, &ConcatLastDimBackward});

void StackTimeBackward(Node* self) {
  const int64_t b = self->shape[0], t = self->shape[1], h = self->shape[2];
  const float* g = self->grad.data();
  for (int64_t ti = 0; ti < t; ++ti) {
    Node* in = self->inputs[static_cast<size_t>(ti)].get();
    if (!in->requires_grad) continue;
    float* gi = in->grad.data();
    ParallelFor(b, GrainForRows(h), [&](int64_t s, int64_t e) {
      for (int64_t bi = s; bi < e; ++bi) {
        for (int64_t j = 0; j < h; ++j) {
          gi[bi * h + j] += g[(bi * t + ti) * h + j];
        }
      }
    });
  }
}

const Op* const kStackTime = OpRegistry::Get().Register(
    {"StackTime", kVariadicArity, &StackTimeBackward});

// ----- Softmax family -----

// Scalar reference row-wise softmax of `in` (rows x cols) into `out`.
void RowSoftmaxScalar(const float* in, float* out, int64_t rows,
                      int64_t cols) {
  for (int64_t r = 0; r < rows; ++r) {
    const float* x = in + r * cols;
    float* y = out + r * cols;
    float mx = x[0];
    for (int64_t j = 1; j < cols; ++j) mx = std::max(mx, x[j]);
    float sum = 0.0f;
    for (int64_t j = 0; j < cols; ++j) {
      y[j] = std::exp(x[j] - mx);
      sum += y[j];
    }
    const float inv = 1.0f / sum;
    for (int64_t j = 0; j < cols; ++j) y[j] *= inv;
  }
}

// Row-wise softmax with the vector fast path: blocks of 16 rows compute
// their maxima lane-per-row over a transposed scratch and scale their
// outputs with vector multiplies; the exp+sum stage stays scalar per row
// (std::exp has no bitwise vector equivalent). Tail rows take the
// reference loop.
void RowSoftmax(const float* in, float* out, int64_t rows, int64_t cols) {
  int64_t r = 0;
#ifdef DTDBD_SIMD_AVX512
  if (UseAvx512() && rows >= 16 && cols >= 2) {
    std::vector<float> scratch(static_cast<size_t>(cols) * 16);
    float m16[16];
    for (; r + 16 <= rows; r += 16) {
      for (int rr = 0; rr < 16; ++rr) {
        const float* x = in + (r + rr) * cols;
        for (int64_t j = 0; j < cols; ++j) scratch[j * 16 + rr] = x[j];
      }
      RowMax16Avx512(scratch.data(), cols, m16);
      for (int rr = 0; rr < 16; ++rr) {
        const float* x = in + (r + rr) * cols;
        float* y = out + (r + rr) * cols;
        const float mx = m16[rr];
        float sum = 0.0f;
        for (int64_t j = 0; j < cols; ++j) {
          y[j] = std::exp(x[j] - mx);
          sum += y[j];
        }
        ScaleRowAvx512(y, 1.0f / sum, cols);
      }
    }
  }
#endif
  RowSoftmaxScalar(in + r * cols, out + r * cols, rows - r, cols);
}

void SoftmaxBackward(Node* self) {
  Node* in = self->inputs[0].get();
  if (!in->requires_grad) return;
  const int64_t cols = self->shape.back();
  const int64_t rows = cols > 0 ? self->numel / cols : 0;
  ParallelFor(rows, GrainForRows(cols), [&](int64_t s, int64_t e) {
    for (int64_t r = s; r < e; ++r) {
      const float* y = self->cdata() + r * cols;
      const float* g = self->grad.data() + r * cols;
      float dot = 0.0f;
      for (int64_t j = 0; j < cols; ++j) dot += g[j] * y[j];
      float* gi = in->grad.data() + r * cols;
      for (int64_t j = 0; j < cols; ++j) gi[j] += y[j] * (g[j] - dot);
    }
  });
}

const Op* const kSoftmax =
    OpRegistry::Get().Register({"Softmax", 1, &SoftmaxBackward});

void LogSoftmaxBackward(Node* self) {
  Node* in = self->inputs[0].get();
  if (!in->requires_grad) return;
  const int64_t cols = self->shape.back();
  const int64_t rows = cols > 0 ? self->numel / cols : 0;
  ParallelFor(rows, GrainForRows(cols), [&](int64_t s, int64_t e) {
    for (int64_t r = s; r < e; ++r) {
      const float* y = self->cdata() + r * cols;
      const float* g = self->grad.data() + r * cols;
      float gsum = 0.0f;
      for (int64_t j = 0; j < cols; ++j) gsum += g[j];
      float* gi = in->grad.data() + r * cols;
      for (int64_t j = 0; j < cols; ++j) {
        gi[j] += g[j] - std::exp(y[j]) * gsum;
      }
    }
  });
}

const Op* const kLogSoftmax =
    OpRegistry::Get().Register({"LogSoftmax", 1, &LogSoftmaxBackward});

// ----- EmbeddingGather -----

struct EmbeddingGatherState {
  std::vector<int> ids;
};

void EmbeddingGatherBackward(Node* self) {
  Node* in = self->inputs[0].get();
  if (!in->requires_grad) return;
  const int64_t e = in->shape[1];
  const auto* st = static_cast<const EmbeddingGatherState*>(self->saved.get());
  const int64_t count = static_cast<int64_t>(st->ids.size());
  const float* g = self->grad.data();
  float* gi = in->grad.data();
  // Sharded over embedding columns: repeated ids land in the same column
  // range of the table gradient inside one shard, accumulated over i in
  // ascending order — matching the serial kernel bit for bit. The vector
  // path interchanges the loops within the shard (contiguous column
  // stripes instead of stride-e walks); each (row, j) element still
  // accumulates over i ascending.
  const bool vec = UseAvx512();
  ParallelFor(e, GrainForRows(count), [&](int64_t s, int64_t e2) {
    if (vec && e2 - s >= 16) {
      for (int64_t i = 0; i < count; ++i) {
        const int64_t row = st->ids[static_cast<size_t>(i)];
#ifdef DTDBD_SIMD_AVX512
        AddRowAvx512(gi + row * e + s, g + i * e + s, e2 - s);
#endif
      }
      return;
    }
    for (int64_t j = s; j < e2; ++j) {
      for (int64_t i = 0; i < count; ++i) {
        const int64_t row = st->ids[static_cast<size_t>(i)];
        gi[row * e + j] += g[i * e + j];
      }
    }
  });
}

const Op* const kEmbeddingGather =
    OpRegistry::Get().Register({"EmbeddingGather", 1,
                                &EmbeddingGatherBackward});

// ----- Conv1dSeq -----

// Shared by Conv1dSeq and the fused Conv1dSeqRelu (which passes the
// ReLU-gated grad); `g` addresses self->numel elements in logical order.
void Conv1dSeqBackwardWithGrad(Node* self, const float* g) {
  Node* xn = self->inputs[0].get();
  Node* wn = self->inputs[1].get();
  Node* bn = self->inputs[2].get();
  const int64_t b = self->shape[0], to = self->shape[1], c = self->shape[2];
  const int64_t t = xn->shape[1], e = xn->shape[2];
  const int64_t win = wn->shape[1];
  // Phase 1: weight/bias gradients, sharded over output channels — each
  // channel's gw row and gb entry belong to exactly one shard, accumulated
  // over (bi, o) in ascending order like the serial kernel.
  if (wn->requires_grad || bn->requires_grad) {
    const float* px = xn->cdata();
    ParallelFor(c, GrainForRows(b * to * win), [&](int64_t s, int64_t e2) {
      for (int64_t ci = s; ci < e2; ++ci) {
        for (int64_t bi = 0; bi < b; ++bi) {
          for (int64_t o = 0; o < to; ++o) {
            const float gv = g[(bi * to + o) * c + ci];
            if (gv == 0.0f) continue;
            if (bn->requires_grad) bn->grad[ci] += gv;
            if (wn->requires_grad) {
              const float* window = px + (bi * t + o) * e;
              float* gw = wn->grad.data() + ci * win;
              for (int64_t j = 0; j < win; ++j) gw[j] += gv * window[j];
            }
          }
        }
      }
    });
  }
  // Phase 2: input gradient, sharded over the batch — overlapping windows
  // only overlap within one sequence, so shards write disjoint gx rows.
  if (xn->requires_grad) {
    const float* pw = wn->cdata();
    ParallelFor(b, GrainForRows(to * c * win), [&](int64_t s, int64_t e2) {
      for (int64_t bi = s; bi < e2; ++bi) {
        for (int64_t o = 0; o < to; ++o) {
          const float* grow = g + (bi * to + o) * c;
          float* gx = xn->grad.data() + (bi * t + o) * e;
          for (int64_t ci = 0; ci < c; ++ci) {
            const float gv = grow[ci];
            if (gv == 0.0f) continue;
            const float* wrow = pw + ci * win;
            for (int64_t j = 0; j < win; ++j) gx[j] += gv * wrow[j];
          }
        }
      }
    });
  }
}

void Conv1dSeqBackward(Node* self) {
  Conv1dSeqBackwardWithGrad(self, self->grad.data());
}

const Op* const kConv1dSeq =
    OpRegistry::Get().Register({"Conv1dSeq", 3, &Conv1dSeqBackward});

// ----- Conv1dSeqRelu (fused Conv1dSeq + Relu) -----

struct Conv1dSeqReluState {
  std::vector<float> mask;  // 1.0 where the pre-activation was > 0
};

void Conv1dSeqReluBackward(Node* self) {
  const auto* st = static_cast<const Conv1dSeqReluState*>(self->saved.get());
  const float* g = self->grad.data();
  const float* mask = st->mask.data();
  // Gate through the ReLU exactly as the unfused Relu backward would leave
  // it in the conv node's grad, then replay the conv backward phases.
  std::vector<float> g2(static_cast<size_t>(self->numel));
  float* pg2 = g2.data();
  ParallelFor(self->numel, kGrain, [&](int64_t s, int64_t e) {
    for (int64_t i = s; i < e; ++i) pg2[i] = g[i] * mask[i] + 0.0f;
  });
  Conv1dSeqBackwardWithGrad(self, pg2);
}

const Op* const kConv1dSeqRelu =
    OpRegistry::Get().Register({"Conv1dSeqRelu", 3, &Conv1dSeqReluBackward});

// ----- GradReverse -----

struct GradReverseState {
  float lambda;
};

void GradReverseBackward(Node* self) {
  Node* in = self->inputs[0].get();
  if (!in->requires_grad) return;
  const float lambda =
      static_cast<const GradReverseState*>(self->saved.get())->lambda;
  const float* g = self->grad.data();
  float* gi = in->grad.data();
  ParallelFor(self->numel, kGrain, [&](int64_t s, int64_t e) {
    for (int64_t i = s; i < e; ++i) gi[i] -= lambda * g[i];
  });
}

const Op* const kGradReverse = OpRegistry::Get().Register(
    {"GradReverse", 1, &GradReverseBackward, /*is_view=*/true});

// ----- Dropout -----

struct DropoutState {
  std::vector<float> mask;
};

void DropoutBackward(Node* self) {
  Node* in = self->inputs[0].get();
  if (!in->requires_grad) return;
  const auto* st = static_cast<const DropoutState*>(self->saved.get());
  const float* g = self->grad.data();
  const float* mask = st->mask.data();
  float* gi = in->grad.data();
  ParallelFor(self->numel, kGrain, [&](int64_t s, int64_t e) {
    for (int64_t i = s; i < e; ++i) gi[i] += g[i] * mask[i];
  });
}

const Op* const kDropout =
    OpRegistry::Get().Register({"Dropout", 1, &DropoutBackward});

// ----- LayerNorm -----

struct LayerNormState {
  std::vector<float> xhat;     // normalized values pre gamma/beta
  std::vector<float> inv_std;  // per row
};

void LayerNormBackward(Node* self) {
  Node* xn = self->inputs[0].get();
  Node* gn = self->inputs[1].get();
  Node* bn = self->inputs[2].get();
  const int64_t n = gn->shape[0];
  const int64_t rows = n > 0 ? self->numel / n : 0;
  const auto* st = static_cast<const LayerNormState*>(self->saved.get());
  const float* g = self->grad.data();
  const float* xhat = st->xhat.data();
  // gamma/beta: sharded over columns, rows accumulated in ascending order.
  if (gn->requires_grad || bn->requires_grad) {
    ParallelFor(n, GrainForRows(rows), [&](int64_t s, int64_t e) {
      for (int64_t j = s; j < e; ++j) {
        for (int64_t r = 0; r < rows; ++r) {
          if (gn->requires_grad) gn->grad[j] += g[r * n + j] * xhat[r * n + j];
          if (bn->requires_grad) bn->grad[j] += g[r * n + j];
        }
      }
    });
  }
  if (!xn->requires_grad) return;
  const float* pgamma = gn->cdata();
  const float inv_n = 1.0f / static_cast<float>(n);
  float* gxbase = xn->grad.data();
  ParallelFor(rows, GrainForRows(n), [&](int64_t s, int64_t e) {
    for (int64_t r = s; r < e; ++r) {
      const float* gr = g + r * n;
      const float* h = xhat + r * n;
      // dL/dxhat_j = g_j * gamma_j; standard layernorm backward.
      float sum_dh = 0.0f, sum_dh_h = 0.0f;
      for (int64_t j = 0; j < n; ++j) {
        const float dh = gr[j] * pgamma[j];
        sum_dh += dh;
        sum_dh_h += dh * h[j];
      }
      const float is = st->inv_std[static_cast<size_t>(r)];
      float* gx = gxbase + r * n;
      for (int64_t j = 0; j < n; ++j) {
        const float dh = gr[j] * pgamma[j];
        gx[j] += is * (dh - inv_n * sum_dh - h[j] * inv_n * sum_dh_h);
      }
    }
  });
}

const Op* const kLayerNorm =
    OpRegistry::Get().Register({"LayerNorm", 3, &LayerNormBackward});

// ----- WeightedSumOverTime -----

void WeightedSumOverTimeBackward(Node* self) {
  Node* xn = self->inputs[0].get();
  Node* wn = self->inputs[1].get();
  const int64_t b = xn->shape[0], t = xn->shape[1], n = xn->shape[2];
  const float* g = self->grad.data();
  // Two batched-GEMM passes over the B*T rows instead of one per-batch-row
  // loop: each gx row / gw entry receives exactly one contribution, so the
  // finer sharding changes no accumulation order.
  if (xn->requires_grad) {
    const float* pw = wn->cdata();
    float* gx = xn->grad.data();
    ParallelFor(b * t, GrainForRows(n), [&](int64_t s, int64_t e) {
      for (int64_t r = s; r < e; ++r) {
        const float wv = pw[r];
        const float* grow = g + (r / t) * n;
        float* gxr = gx + r * n;
        for (int64_t j = 0; j < n; ++j) gxr[j] += wv * grow[j];
      }
    });
  }
  if (wn->requires_grad) {
    const float* px = xn->cdata();
    float* gw = wn->grad.data();
    ParallelFor(b * t, GrainForRows(n), [&](int64_t s, int64_t e) {
      for (int64_t r = s; r < e; ++r) {
        const float* grow = g + (r / t) * n;
        const float* xr = px + r * n;
        float acc = 0.0f;
        for (int64_t j = 0; j < n; ++j) acc += xr[j] * grow[j];
        gw[r] += acc;
      }
    });
  }
}

const Op* const kWeightedSumOverTime = OpRegistry::Get().Register(
    {"WeightedSumOverTime", 2, &WeightedSumOverTimeBackward});

// ----- RowL2Normalize -----

struct RowL2NormalizeState {
  std::vector<float> inv_norms;
};

void RowL2NormalizeBackward(Node* self) {
  Node* in = self->inputs[0].get();
  if (!in->requires_grad) return;
  const int64_t b = self->shape[0], n = self->shape[1];
  const auto* st = static_cast<const RowL2NormalizeState*>(self->saved.get());
  ParallelFor(b, GrainForRows(n), [&](int64_t s, int64_t e) {
    for (int64_t i = s; i < e; ++i) {
      const float* y = self->cdata() + i * n;
      const float* g = self->grad.data() + i * n;
      float dot = 0.0f;
      for (int64_t j = 0; j < n; ++j) dot += g[j] * y[j];
      const float inv = st->inv_norms[static_cast<size_t>(i)];
      float* gx = in->grad.data() + i * n;
      for (int64_t j = 0; j < n; ++j) gx[j] += inv * (g[j] - dot * y[j]);
    }
  });
}

const Op* const kRowL2Normalize =
    OpRegistry::Get().Register({"RowL2Normalize", 1, &RowL2NormalizeBackward});

// ----- PairwiseSquaredDistances -----

void PairwiseSquaredDistancesBackward(Node* self) {
  Node* in = self->inputs[0].get();
  if (!in->requires_grad) return;
  const int64_t b = in->shape[0], n = in->shape[1];
  const float* px = in->cdata();
  const float* g = self->grad.data();
  float* gibase = in->grad.data();
  // Row-sharded: row i collects the gradient from both symmetric entries
  // (i,j) and (j,i) itself, so shards never write another shard's rows.
  ParallelFor(b, GrainForRows(b * n), [&](int64_t s, int64_t e) {
    for (int64_t i = s; i < e; ++i) {
      float* gi = gibase + i * n;
      const float* xi = px + i * n;
      for (int64_t j = 0; j < b; ++j) {
        if (j == i) continue;
        const float gsum = g[i * b + j] + g[j * b + i];
        if (gsum == 0.0f) continue;
        const float* xj = px + j * n;
        for (int64_t kk = 0; kk < n; ++kk) {
          gi[kk] += 2.0f * (xi[kk] - xj[kk]) * gsum;
        }
      }
    }
  });
}

const Op* const kPairwiseSquaredDistances = OpRegistry::Get().Register(
    {"PairwiseSquaredDistances", 1, &PairwiseSquaredDistancesBackward});

}  // namespace

// ===== Public forward functions =====

Tensor Add(const Tensor& a, const Tensor& b) {
  return BinaryEw(kAdd, a, b, [](float x, float y) { return x + y; });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryEw(kSub, a, b, [](float x, float y) { return x - y; });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return BinaryEw(kMul, a, b, [](float x, float y) { return x * y; });
}

Tensor AddBias(const Tensor& x_in, const Tensor& bias_in) {
  DTDBD_CHECK_EQ(bias_in.ndim(), 1);
  const int64_t n = bias_in.dim(0);
  DTDBD_CHECK(x_in.ndim() >= 1 && x_in.shape().back() == n)
      << "AddBias: last dim of " << ShapeToString(x_in.shape()) << " vs bias "
      << n;
  Tensor x = EnsureReadable(x_in);
  // The row decomposition below needs rows of length n; a non-contiguous
  // reader only guarantees that for 2-D inputs.
  if (!x.contiguous() && x.ndim() != 2) x = Contiguous(x);
  Tensor bias = Contiguous(bias_in);
  ScopedOpTimer timer(kAddBias);
  const Reader rx = ReadOf(x.node().get());
  const float* pb = bias.data().data();
  const int64_t rows = n > 0 ? x.numel() / n : 0;
  const bool flat = x.contiguous();
  const float* px = flat ? x.node()->cdata() : nullptr;
  std::vector<float> out(static_cast<size_t>(x.numel()));
  float* po = out.data();
  ParallelFor(rows, GrainForRows(n), [&](int64_t s, int64_t e) {
    for (int64_t r = s; r < e; ++r) {
      const float* xrow = flat ? px + r * n : rx.row(r);
      float* orow = po + r * n;
      for (int64_t j = 0; j < n; ++j) orow[j] = xrow[j] + pb[j];
    }
  });
  return MakeOp(kAddBias, x.shape(), std::move(out), {x, bias});
}

Tensor Neg(const Tensor& a) { return UnaryEw<NegFn>(kNeg, a); }

Tensor ScalarMul(const Tensor& a_in, float s) {
  Tensor a = EnsureReadable(a_in);
  ScopedOpTimer timer(kScalarMul);
  const Reader rx = ReadOf(a.node().get());
  std::vector<float> out(static_cast<size_t>(a.numel()));
  float* po = out.data();
  ParallelFor(a.numel(), kGrain, [&](int64_t s0, int64_t e) {
    for (int64_t i = s0; i < e; ++i) po[i] = s * rx.at(i);
  });
  return MakeOp(kScalarMul, a.shape(), std::move(out), {a},
                std::make_shared<ScalarMulState>(ScalarMulState{s}));
}

Tensor Relu(const Tensor& a) { return UnaryEw<ReluFn>(kRelu, a); }
Tensor Tanh(const Tensor& a) { return UnaryEw<TanhFn>(kTanh, a); }
Tensor Sigmoid(const Tensor& a) { return UnaryEw<SigmoidFn>(kSigmoid, a); }
Tensor Exp(const Tensor& a) { return UnaryEw<ExpFn>(kExp, a); }

Tensor Log(const Tensor& a) {
  for (float v : a.data()) {
    DTDBD_CHECK_GT(v, 0.0f) << "Log: non-positive input";
  }
  return UnaryEw<LogFn>(kLog, a);
}

Tensor Square(const Tensor& a) { return UnaryEw<SquareFn>(kSquare, a); }

Tensor MatMul(const Tensor& a_in, const Tensor& b_in) {
  DTDBD_CHECK_EQ(a_in.ndim(), 2);
  DTDBD_CHECK_EQ(b_in.ndim(), 2);
  Tensor a = EnsureReadable(a_in);
  Tensor b = EnsureReadable(b_in);
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  DTDBD_CHECK_EQ(k, b.dim(0)) << "MatMul: inner dims "
                              << ShapeToString(a.shape()) << " x "
                              << ShapeToString(b.shape());
  ScopedOpTimer timer(kMatMul);
  const Reader ra = ReadOf(a.node().get());
  const Reader rb = ReadOf(b.node().get());
  // Serving eval path: when the session installed an int8 twin of this
  // weight, dequantize-in-register instead of streaming the fp32 rows.
  const QuantizedMatrix* qb = Int8WeightFor(b, k, n);
  std::vector<float> out(static_cast<size_t>(m * n), 0.0f);
  float* po = out.data();
  const bool vec = UseAvx512() && n >= 16;
  // ikj order per output row: streaming access to b and out rows. Each
  // output row is produced by exactly one shard.
  ParallelFor(m, GrainForRows(k * n), [&](int64_t s, int64_t e) {
    if (qb != nullptr) {
      Int8MatMulRows(ra, *qb, po, k, n, s, e);
      return;
    }
    MatMulAccumulateRows(ra, rb, po, k, n, s, e, vec);
  });
  return MakeOp(kMatMul, {m, n}, std::move(out), {a, b});
}

Tensor Transpose2d(const Tensor& a) {
  DTDBD_CHECK_EQ(a.ndim(), 2);
  ScopedOpTimer timer(kTranspose2d);
  const auto& n = a.node();
  return MakeView(kTranspose2d, {a.dim(1), a.dim(0)},
                  {n->strides[1], n->strides[0]}, n->offset, a);
}

Tensor Sum(const Tensor& a) {
  ScopedOpTimer timer(kSum);
  float total = 0.0f;
  for (float v : a.data()) total += v;
  return MakeOp(kSum, {1}, {total}, {a});
}

Tensor Mean(const Tensor& a) {
  DTDBD_CHECK_GT(a.numel(), 0);
  ScopedOpTimer timer(kMean);
  float total = 0.0f;
  for (float v : a.data()) total += v;
  const float inv_n = 1.0f / static_cast<float>(a.numel());
  return MakeOp(kMean, {1}, {total * inv_n}, {a});
}

Tensor MeanOverTime(const Tensor& x_in) {
  DTDBD_CHECK_EQ(x_in.ndim(), 3);
  Tensor x = Contiguous(x_in);
  const int64_t b = x.dim(0), t = x.dim(1), n = x.dim(2);
  DTDBD_CHECK_GT(t, 0);
  ScopedOpTimer timer(kMeanOverTime);
  const float* px = x.data().data();
  std::vector<float> out(static_cast<size_t>(b * n), 0.0f);
  float* po = out.data();
  const float inv_t = 1.0f / static_cast<float>(t);
  ParallelFor(b, GrainForRows(t * n), [&](int64_t s, int64_t e) {
    for (int64_t bi = s; bi < e; ++bi) {
      float* orow = po + bi * n;
      for (int64_t ti = 0; ti < t; ++ti) {
        const float* xr = px + (bi * t + ti) * n;
        for (int64_t j = 0; j < n; ++j) orow[j] += xr[j];
      }
      for (int64_t j = 0; j < n; ++j) orow[j] *= inv_t;
    }
  });
  return MakeOp(kMeanOverTime, {b, n}, std::move(out), {x});
}

Tensor MaxOverTime(const Tensor& x_in) {
  DTDBD_CHECK_EQ(x_in.ndim(), 3);
  Tensor x = Contiguous(x_in);
  const int64_t b = x.dim(0), t = x.dim(1), n = x.dim(2);
  DTDBD_CHECK_GT(t, 0);
  ScopedOpTimer timer(kMaxOverTime);
  const float* px = x.data().data();
  std::vector<float> out(static_cast<size_t>(b * n));
  auto state = std::make_shared<MaxOverTimeState>();
  state->argmax.resize(static_cast<size_t>(b * n));
  float* po = out.data();
  int32_t* pam = state->argmax.data();
  ParallelFor(b, GrainForRows(t * n), [&](int64_t s, int64_t e) {
    for (int64_t bi = s; bi < e; ++bi) {
      for (int64_t j = 0; j < n; ++j) {
        float best = px[(bi * t + 0) * n + j];
        int32_t best_t = 0;
        for (int64_t ti = 1; ti < t; ++ti) {
          const float v = px[(bi * t + ti) * n + j];
          if (v > best) {
            best = v;
            best_t = static_cast<int32_t>(ti);
          }
        }
        po[bi * n + j] = best;
        pam[bi * n + j] = best_t;
      }
    }
  });
  return MakeOp(kMaxOverTime, {b, n}, std::move(out), {x}, state);
}

Tensor Reshape(const Tensor& a_in, const Shape& new_shape) {
  DTDBD_CHECK_EQ(NumElements(new_shape), a_in.numel())
      << "Reshape to " << ShapeToString(new_shape);
  // A reshape view needs a dense source; contiguous inputs stay zero-copy.
  Tensor a = Contiguous(a_in);
  ScopedOpTimer timer(kReshape);
  return MakeView(kReshape, new_shape, CanonicalStrides(new_shape),
                  a.node()->offset, a);
}

Tensor ConcatLastDim(const std::vector<Tensor>& parts_in) {
  DTDBD_CHECK(!parts_in.empty());
  std::vector<Tensor> parts;
  parts.reserve(parts_in.size());
  for (const auto& p : parts_in) {
    DTDBD_CHECK_EQ(p.ndim(), 2);
    parts.push_back(EnsureReadable(p));
  }
  const int64_t rows = parts[0].dim(0);
  int64_t total = 0;
  std::vector<int64_t> offsets;
  std::vector<Reader> readers;
  for (const auto& p : parts) {
    DTDBD_CHECK_EQ(p.dim(0), rows);
    offsets.push_back(total);
    total += p.dim(1);
    readers.push_back(ReadOf(p.node().get()));
  }
  ScopedOpTimer timer(kConcatLastDim);
  std::vector<float> out(static_cast<size_t>(rows * total));
  float* po = out.data();
  ParallelFor(rows, GrainForRows(total), [&](int64_t s, int64_t e) {
    for (int64_t r = s; r < e; ++r) {
      float* orow = po + r * total;
      for (size_t k = 0; k < parts.size(); ++k) {
        std::copy_n(readers[k].row(r), parts[k].dim(1), orow + offsets[k]);
      }
    }
  });
  return MakeOp(kConcatLastDim, {rows, total}, std::move(out), parts);
}

Tensor SliceLastDim(const Tensor& x, int64_t start, int64_t len) {
  DTDBD_CHECK_EQ(x.ndim(), 2);
  const int64_t rows = x.dim(0), cols = x.dim(1);
  DTDBD_CHECK_GE(start, 0);
  DTDBD_CHECK_LE(start + len, cols);
  ScopedOpTimer timer(kSliceLastDim);
  const auto& n = x.node();
  return MakeView(kSliceLastDim, {rows, len}, {n->strides[0], n->strides[1]},
                  n->offset + start * n->strides[1], x,
                  std::make_shared<SliceLastDimState>(
                      SliceLastDimState{start}));
}

Tensor SliceTime(const Tensor& x, int64_t t) {
  DTDBD_CHECK_EQ(x.ndim(), 3);
  const int64_t b = x.dim(0), tt = x.dim(1), n = x.dim(2);
  DTDBD_CHECK_GE(t, 0);
  DTDBD_CHECK_LT(t, tt);
  (void)b;
  ScopedOpTimer timer(kSliceTime);
  const auto& nd = x.node();
  return MakeView(kSliceTime, {b, n}, {nd->strides[0], nd->strides[2]},
                  nd->offset + t * nd->strides[1], x,
                  std::make_shared<SliceTimeState>(SliceTimeState{t}));
}

Tensor StackTime(const std::vector<Tensor>& steps_in) {
  DTDBD_CHECK(!steps_in.empty());
  std::vector<Tensor> steps;
  steps.reserve(steps_in.size());
  for (const auto& s : steps_in) {
    DTDBD_CHECK_EQ(s.ndim(), 2);
    steps.push_back(EnsureReadable(s));
  }
  const int64_t b = steps[0].dim(0), h = steps[0].dim(1);
  const int64_t t = static_cast<int64_t>(steps.size());
  std::vector<Reader> readers;
  for (const auto& s : steps) {
    DTDBD_CHECK_EQ(s.dim(0), b);
    DTDBD_CHECK_EQ(s.dim(1), h);
    readers.push_back(ReadOf(s.node().get()));
  }
  ScopedOpTimer timer(kStackTime);
  std::vector<float> out(static_cast<size_t>(b * t * h));
  float* po = out.data();
  ParallelFor(t, GrainForRows(b * h), [&](int64_t s, int64_t e) {
    for (int64_t ti = s; ti < e; ++ti) {
      for (int64_t bi = 0; bi < b; ++bi) {
        std::copy_n(readers[static_cast<size_t>(ti)].row(bi), h,
                    po + (bi * t + ti) * h);
      }
    }
  });
  return MakeOp(kStackTime, {b, t, h}, std::move(out), steps);
}

Tensor Softmax(const Tensor& x_in) {
  DTDBD_CHECK_GE(x_in.ndim(), 1);
  Tensor x = Contiguous(x_in);
  const int64_t cols = x.shape().back();
  const int64_t rows = cols > 0 ? x.numel() / cols : 0;
  ScopedOpTimer timer(kSoftmax);
  const float* px = x.data().data();
  std::vector<float> out(static_cast<size_t>(x.numel()));
  float* po = out.data();
  ParallelFor(rows, GrainForRows(cols), [&](int64_t s, int64_t e) {
    RowSoftmax(px + s * cols, po + s * cols, e - s, cols);
  });
  return MakeOp(kSoftmax, x.shape(), std::move(out), {x});
}

Tensor LogSoftmax(const Tensor& x_in) {
  DTDBD_CHECK_GE(x_in.ndim(), 1);
  Tensor x = Contiguous(x_in);
  const int64_t cols = x.shape().back();
  const int64_t rows = cols > 0 ? x.numel() / cols : 0;
  ScopedOpTimer timer(kLogSoftmax);
  const float* px = x.data().data();
  std::vector<float> out(static_cast<size_t>(x.numel()));
  float* po = out.data();
  ParallelFor(rows, GrainForRows(cols), [&](int64_t s, int64_t e) {
    int64_t r = s;
#ifdef DTDBD_SIMD_AVX512
    // Vector path: row maxima lane-per-row over a transposed scratch,
    // vector writeback; the sum-of-exp stays scalar per row.
    if (UseAvx512() && e - r >= 16) {
      std::vector<float> scratch(static_cast<size_t>(cols) * 16);
      float m16[16];
      for (; r + 16 <= e; r += 16) {
        for (int rr = 0; rr < 16; ++rr) {
          const float* xi = px + (r + rr) * cols;
          for (int64_t j = 0; j < cols; ++j) scratch[j * 16 + rr] = xi[j];
        }
        RowMax16Avx512(scratch.data(), cols, m16);
        for (int rr = 0; rr < 16; ++rr) {
          const float* xi = px + (r + rr) * cols;
          const float mx = m16[rr];
          float sum = 0.0f;
          for (int64_t j = 0; j < cols; ++j) sum += std::exp(xi[j] - mx);
          SubScalarRowAvx512(po + (r + rr) * cols, xi, mx + std::log(sum),
                             cols);
        }
      }
    }
#endif
    for (; r < e; ++r) {
      const float* xi = px + r * cols;
      float* y = po + r * cols;
      float mx = xi[0];
      for (int64_t j = 1; j < cols; ++j) mx = std::max(mx, xi[j]);
      float sum = 0.0f;
      for (int64_t j = 0; j < cols; ++j) sum += std::exp(xi[j] - mx);
      const float lse = mx + std::log(sum);
      for (int64_t j = 0; j < cols; ++j) y[j] = xi[j] - lse;
    }
  });
  return MakeOp(kLogSoftmax, x.shape(), std::move(out), {x});
}

Status ValidateTokenIds(const std::vector<int>& ids, int64_t vocab_size) {
  for (size_t i = 0; i < ids.size(); ++i) {
    const int id = ids[i];
    if (id < 0 || static_cast<int64_t>(id) >= vocab_size) {
      return Status::InvalidArgument(
          "token id " + std::to_string(id) + " at position " +
          std::to_string(i) + " out of vocabulary range [0, " +
          std::to_string(vocab_size) + ")");
    }
  }
  return Status::Ok();
}

Tensor EmbeddingGather(const Tensor& table_in, const std::vector<int>& ids,
                       int64_t batch, int64_t time) {
  DTDBD_CHECK_EQ(table_in.ndim(), 2);
  DTDBD_CHECK_EQ(static_cast<int64_t>(ids.size()), batch * time);
  Tensor table = Contiguous(table_in);
  const int64_t v = table.dim(0), e = table.dim(1);
  // Ids validated serially before any parallel dispatch, in every build
  // mode: an out-of-range id must never reach the gather loop, where it
  // would be silent UB. Recoverable callers (the serving path) run
  // ValidateTokenIds themselves first and surface a typed Status; reaching
  // this check is tensor-API misuse and dies with a readable message.
  {
    const Status ids_ok = ValidateTokenIds(ids, v);
    DTDBD_CHECK(ids_ok.ok()) << "EmbeddingGather: " << ids_ok.message();
  }
  ScopedOpTimer timer(kEmbeddingGather);
  const float* pt = table.data().data();
  std::vector<float> out(static_cast<size_t>(batch * time * e));
  float* po = out.data();
  const bool vec = UseAvx512() && e >= 16;
  ParallelFor(batch * time, GrainForRows(e), [&](int64_t s, int64_t e2) {
    for (int64_t i = s; i < e2; ++i) {
      const int64_t row = ids[static_cast<size_t>(i)];
#ifdef DTDBD_SIMD_AVX512
      if (vec) {
        CopyRowAvx512(po + i * e, pt + row * e, e);
        continue;
      }
#else
      (void)vec;
#endif
      std::copy_n(pt + row * e, e, po + i * e);
    }
  });
  auto state = std::make_shared<EmbeddingGatherState>();
  state->ids = ids;
  return MakeOp(kEmbeddingGather, {batch, time, e}, std::move(out), {table},
                state);
}

namespace {

// ----- Row-blocked conv execution (shared by Conv1dSeq / Conv1dSeqRelu) --
//
// The conv hot loop is a length-`win` dot product per (row, channel): one
// scalar accumulator chain, latency-bound on the FP add. Batched serving
// hands the kernel many independent output rows, so the fast path computes
// 16 rows at once — one vector lane per row, each lane performing exactly
// the scalar chain's multiply/add sequence in the same j order. Per-lane
// mulps/addps round identically to mulss/addss, so every output element is
// bitwise identical to the scalar path (and therefore batch-of-N stays
// bitwise identical to batch-of-one, at any thread count: shard boundaries
// only change block membership, never an element's accumulation order).
// Sub-block tails — in particular batch-of-one forwards, whose row count
// is below the block size — and machines without AVX-512 take the
// reference scalar loop. The vector path must NOT be contracted into FMA
// (fused rounding would diverge from the scalar chain); this file is built
// with -ffp-contract=off, a no-op for the baseline scalar ISA.

// Reference path: rows [s, e2) of the [b*to, c] output, one scalar chain
// per element. pmask != nullptr selects the fused ReLU variant (mask of
// positive pre-activations, clamped output).
inline void ConvRowsScalar(const float* px, const float* pw,
                           const float* pbias, float* po, float* pmask,
                           int64_t t, int64_t e, int64_t to, int64_t c,
                           int64_t win, int64_t s, int64_t e2) {
  for (int64_t r = s; r < e2; ++r) {
    const int64_t bi = r / to, o = r % to;
    // The window x[bi, o:o+k, :] is contiguous of length k*E.
    const float* window = px + (bi * t + o) * e;
    float* orow = po + r * c;
    for (int64_t ci = 0; ci < c; ++ci) {
      const float* wrow = pw + ci * win;
      float acc = pbias[ci];
      for (int64_t j = 0; j < win; ++j) acc += window[j] * wrow[j];
      if (pmask != nullptr) {
        const bool on = acc > 0.0f;
        pmask[r * c + ci] = on ? 1.0f : 0.0f;
        orow[ci] = on ? acc : 0.0f;
      } else {
        orow[ci] = acc;
      }
    }
  }
}

#ifdef DTDBD_SIMD_AVX512
// One block of 16 rows, all channels. `scratch` is [win, 16] (the 16
// windows transposed so each j reads one contiguous vector of row values),
// `out16` is [c, 16] of raw pre-activations.
__attribute__((target("avx512f"))) void ConvBlock16Avx512(
    const float* const* wins, const float* pw, const float* pbias, int64_t c,
    int64_t win, float* scratch, float* out16) {
  for (int64_t j = 0; j < win; ++j) {
    float* srow = scratch + j * 16;
    for (int rr = 0; rr < 16; ++rr) srow[rr] = wins[rr][j];
  }
  for (int64_t ci = 0; ci < c; ++ci) {
    __m512 acc = _mm512_set1_ps(pbias[ci]);
    const float* wrow = pw + ci * win;
    for (int64_t j = 0; j < win; ++j) {
      // Separate mul/add, never fmadd: each lane must round exactly like
      // the scalar chain.
      acc = _mm512_add_ps(
          acc, _mm512_mul_ps(_mm512_loadu_ps(scratch + j * 16),
                             _mm512_set1_ps(wrow[j])));
    }
    _mm512_storeu_ps(out16 + ci * 16, acc);
  }
}
#endif  // x86_64

// Shard body for both conv ops: vector blocks while 16 rows remain, scalar
// reference loop for the tail.
void ConvRows(const float* px, const float* pw, const float* pbias, float* po,
              float* pmask, int64_t t, int64_t e, int64_t to, int64_t c,
              int64_t win, int64_t s, int64_t e2) {
  int64_t r = s;
#ifdef DTDBD_SIMD_AVX512
  if (UseAvx512() && e2 - r >= 16) {
    std::vector<float> scratch(static_cast<size_t>(win) * 16);
    std::vector<float> out16(static_cast<size_t>(c) * 16);
    for (; r + 16 <= e2; r += 16) {
      const float* wins[16];
      for (int rr = 0; rr < 16; ++rr) {
        const int64_t rw = r + rr;
        wins[rr] = px + ((rw / to) * t + rw % to) * e;
      }
      ConvBlock16Avx512(wins, pw, pbias, c, win, scratch.data(),
                        out16.data());
      for (int rr = 0; rr < 16; ++rr) {
        float* orow = po + (r + rr) * c;
        for (int64_t ci = 0; ci < c; ++ci) {
          const float acc = out16[ci * 16 + rr];
          if (pmask != nullptr) {
            const bool on = acc > 0.0f;
            pmask[(r + rr) * c + ci] = on ? 1.0f : 0.0f;
            orow[ci] = on ? acc : 0.0f;
          } else {
            orow[ci] = acc;
          }
        }
      }
    }
  }
#endif
  ConvRowsScalar(px, pw, pbias, po, pmask, t, e, to, c, win, r, e2);
}

}  // namespace

Tensor Conv1dSeq(const Tensor& x_in, const Tensor& weight_in,
                 const Tensor& bias_in, int64_t kernel_width) {
  DTDBD_CHECK_EQ(x_in.ndim(), 3);
  DTDBD_CHECK_EQ(weight_in.ndim(), 2);
  DTDBD_CHECK_EQ(bias_in.ndim(), 1);
  Tensor x = Contiguous(x_in);
  Tensor weight = Contiguous(weight_in);
  Tensor bias = Contiguous(bias_in);
  const int64_t b = x.dim(0), t = x.dim(1), e = x.dim(2);
  const int64_t c = weight.dim(0);
  DTDBD_CHECK_EQ(weight.dim(1), kernel_width * e)
      << "Conv1dSeq: weight must be [C, k*E]";
  DTDBD_CHECK_EQ(bias.dim(0), c);
  DTDBD_CHECK_GE(t, kernel_width)
      << "Conv1dSeq: sequence shorter than kernel";
  const int64_t to = t - kernel_width + 1;
  ScopedOpTimer timer(kConv1dSeq);
  std::vector<float> out(static_cast<size_t>(b * to * c));
  const float* px = x.data().data();
  const float* pw = weight.data().data();
  const float* pbias = bias.data().data();
  const int64_t win = kernel_width * e;
  float* po = out.data();
  ParallelFor(b * to, GrainForRows(c * win), [&](int64_t s, int64_t e2) {
    ConvRows(px, pw, pbias, po, /*pmask=*/nullptr, t, e, to, c, win, s, e2);
  });
  return MakeOp(kConv1dSeq, {b, to, c}, std::move(out), {x, weight, bias});
}

Tensor LinearRelu(const Tensor& x_in, const Tensor& w_in,
                  const Tensor& bias_in) {
  if (!FusionEnabled()) {
    return Relu(AddBias(MatMul(x_in, w_in), bias_in));
  }
  DTDBD_CHECK_EQ(x_in.ndim(), 2);
  DTDBD_CHECK_EQ(w_in.ndim(), 2);
  DTDBD_CHECK_EQ(bias_in.ndim(), 1);
  Tensor x = EnsureReadable(x_in);
  Tensor w = EnsureReadable(w_in);
  Tensor bias = Contiguous(bias_in);
  const int64_t m = x.dim(0), k = x.dim(1), n = w.dim(1);
  DTDBD_CHECK_EQ(k, w.dim(0)) << "LinearRelu: inner dims "
                              << ShapeToString(x.shape()) << " x "
                              << ShapeToString(w.shape());
  DTDBD_CHECK_EQ(bias.dim(0), n);
  ScopedOpTimer timer(kLinearRelu);
  const Reader ra = ReadOf(x.node().get());
  const Reader rb = ReadOf(w.node().get());
  const float* pb = bias.data().data();
  auto state = std::make_shared<LinearReluState>();
  state->mask.resize(static_cast<size_t>(m * n));
  float* pmask = state->mask.data();
  // Serving eval path: int8 twin of the weight, fp32 bias/ReLU epilogue.
  const QuantizedMatrix* qw = Int8WeightFor(w, k, n);
  std::vector<float> out(static_cast<size_t>(m * n), 0.0f);
  float* po = out.data();
  const bool vec = UseAvx512() && n >= 16;
  // MatMul's exact ikj accumulation, then bias-add + clamp in place.
  ParallelFor(m, GrainForRows(k * n), [&](int64_t s, int64_t e) {
    if (qw != nullptr) {
      Int8MatMulRows(ra, *qw, po, k, n, s, e);
    } else {
      MatMulAccumulateRows(ra, rb, po, k, n, s, e, vec);
    }
    for (int64_t i = s; i < e; ++i) {
      float* orow = po + i * n;
      float* mrow = pmask + i * n;
#ifdef DTDBD_SIMD_AVX512
      if (vec) {
        BiasReluRowAvx512(orow, mrow, pb, n);
        continue;
      }
#endif
      for (int64_t j = 0; j < n; ++j) {
        const float pre = orow[j] + pb[j];
        const bool on = pre > 0.0f;
        mrow[j] = on ? 1.0f : 0.0f;
        orow[j] = on ? pre : 0.0f;
      }
    }
  });
  return MakeOp(kLinearRelu, {m, n}, std::move(out), {x, w, bias}, state);
}

Tensor Conv1dSeqRelu(const Tensor& x_in, const Tensor& weight_in,
                     const Tensor& bias_in, int64_t kernel_width) {
  if (!FusionEnabled()) {
    return Relu(Conv1dSeq(x_in, weight_in, bias_in, kernel_width));
  }
  DTDBD_CHECK_EQ(x_in.ndim(), 3);
  DTDBD_CHECK_EQ(weight_in.ndim(), 2);
  DTDBD_CHECK_EQ(bias_in.ndim(), 1);
  Tensor x = Contiguous(x_in);
  Tensor weight = Contiguous(weight_in);
  Tensor bias = Contiguous(bias_in);
  const int64_t b = x.dim(0), t = x.dim(1), e = x.dim(2);
  const int64_t c = weight.dim(0);
  DTDBD_CHECK_EQ(weight.dim(1), kernel_width * e)
      << "Conv1dSeqRelu: weight must be [C, k*E]";
  DTDBD_CHECK_EQ(bias.dim(0), c);
  DTDBD_CHECK_GE(t, kernel_width)
      << "Conv1dSeqRelu: sequence shorter than kernel";
  const int64_t to = t - kernel_width + 1;
  ScopedOpTimer timer(kConv1dSeqRelu);
  std::vector<float> out(static_cast<size_t>(b * to * c));
  auto state = std::make_shared<Conv1dSeqReluState>();
  state->mask.resize(static_cast<size_t>(b * to * c));
  const float* px = x.data().data();
  const float* pw = weight.data().data();
  const float* pbias = bias.data().data();
  const int64_t win = kernel_width * e;
  float* po = out.data();
  float* pmask = state->mask.data();
  ParallelFor(b * to, GrainForRows(c * win), [&](int64_t s, int64_t e2) {
    ConvRows(px, pw, pbias, po, pmask, t, e, to, c, win, s, e2);
  });
  return MakeOp(kConv1dSeqRelu, {b, to, c}, std::move(out), {x, weight, bias},
                state);
}

Tensor MatVecOverTime(const Tensor& x_in, const Tensor& v_in) {
  DTDBD_CHECK_EQ(x_in.ndim(), 3);
  const int64_t b = x_in.dim(0), t = x_in.dim(1), n = x_in.dim(2);
  DTDBD_CHECK(v_in.ndim() == 1 || (v_in.ndim() == 2 && v_in.dim(1) == 1))
      << "MatVecOverTime: v must be [N] or [N,1], got "
      << ShapeToString(v_in.shape());
  DTDBD_CHECK_EQ(v_in.dim(0), n);
  if (!FusionEnabled()) {
    Tensor flat = Reshape(x_in, {b * t, n});
    Tensor v2 = v_in.ndim() == 2 ? v_in : Reshape(v_in, {n, 1});
    return Reshape(MatMul(flat, v2), {b, t});
  }
  Tensor x = Contiguous(x_in);
  Tensor v = EnsureReadable(v_in);
  ScopedOpTimer timer(kMatVecOverTime);
  const float* px = x.data().data();
  const Reader rv = ReadOf(v.node().get());
  std::vector<float> out(static_cast<size_t>(b * t));
  float* po = out.data();
  const bool vec = UseAvx512() && rv.flat;
  ParallelFor(b * t, GrainForRows(n), [&](int64_t s, int64_t e) {
    int64_t i = s;
#ifdef DTDBD_SIMD_AVX512
    // Lane-per-row over a transposed scratch: 16 dot products at once,
    // each lane running the scalar zero-skip chain exactly.
    if (vec && e - i >= 16) {
      std::vector<float> scratch(static_cast<size_t>(n) * 16);
      float out16[16];
      for (; i + 16 <= e; i += 16) {
        for (int rr = 0; rr < 16; ++rr) {
          const float* xrow = px + (i + rr) * n;
          for (int64_t kk = 0; kk < n; ++kk) {
            scratch[kk * 16 + rr] = xrow[kk];
          }
        }
        MatVec16Avx512(scratch.data(), rv.ptr, n, out16);
        for (int rr = 0; rr < 16; ++rr) po[i + rr] = out16[rr];
      }
    }
#else
    (void)vec;
#endif
    for (; i < e; ++i) {
      const float* xrow = px + i * n;
      float acc = 0.0f;
      for (int64_t kk = 0; kk < n; ++kk) {
        const float av = xrow[kk];
        if (av == 0.0f) continue;
        acc += av * rv.at(kk);
      }
      po[i] = acc;
    }
  });
  return MakeOp(kMatVecOverTime, {b, t}, std::move(out), {x, v});
}

Tensor GradReverse(const Tensor& x, float lambda) {
  DTDBD_CHECK(x.defined());
  ScopedOpTimer timer(kGradReverse);
  // Identity view: zero-copy forward, backward multiplies by -lambda.
  const auto& n = x.node();
  return MakeView(kGradReverse, n->shape, n->strides, n->offset, x,
                  std::make_shared<GradReverseState>(GradReverseState{lambda}));
}

Tensor Dropout(const Tensor& x_in, double p, Rng* rng, bool training) {
  DTDBD_CHECK_GE(p, 0.0);
  DTDBD_CHECK_LT(p, 1.0);
  // Eval mode is a true identity: no mask, no RNG draw, no output buffer,
  // and no graph node — the serving fast path relies on this being free.
  if (!training || p == 0.0) return x_in;
  DTDBD_CHECK(rng != nullptr);
  Tensor x = EnsureReadable(x_in);
  ScopedOpTimer timer(kDropout);
  const float scale = static_cast<float>(1.0 / (1.0 - p));
  const int64_t numel = x.numel();
  auto state = std::make_shared<DropoutState>();
  state->mask.resize(static_cast<size_t>(numel));
  // The RNG stream is consumed sequentially on the calling thread, in
  // logical element order, BEFORE any parallel dispatch: masks (and thus
  // training math and checkpoint/resume reproducibility) are independent of
  // the thread count.
  for (int64_t i = 0; i < numel; ++i) {
    state->mask[static_cast<size_t>(i)] = rng->Bernoulli(p) ? 0.0f : scale;
  }
  const Reader rx = ReadOf(x.node().get());
  const float* mask = state->mask.data();
  std::vector<float> out(static_cast<size_t>(numel));
  float* po = out.data();
  ParallelFor(numel, kGrain, [&](int64_t s, int64_t e) {
    for (int64_t i = s; i < e; ++i) po[i] = rx.at(i) * mask[i];
  });
  return MakeOp(kDropout, x.shape(), std::move(out), {x}, state);
}

Tensor LayerNormOp(const Tensor& x_in, const Tensor& gamma_in,
                   const Tensor& beta_in, float eps) {
  DTDBD_CHECK_GE(x_in.ndim(), 1);
  const int64_t n = x_in.shape().back();
  DTDBD_CHECK_EQ(gamma_in.ndim(), 1);
  DTDBD_CHECK_EQ(gamma_in.dim(0), n);
  DTDBD_CHECK_EQ(beta_in.ndim(), 1);
  DTDBD_CHECK_EQ(beta_in.dim(0), n);
  Tensor x = Contiguous(x_in);
  Tensor gamma = Contiguous(gamma_in);
  Tensor beta = Contiguous(beta_in);
  const int64_t rows = n > 0 ? x.numel() / n : 0;
  ScopedOpTimer timer(kLayerNorm);
  const float* px = x.data().data();
  const float* pg = gamma.data().data();
  const float* pbeta = beta.data().data();
  std::vector<float> out(static_cast<size_t>(x.numel()));
  auto state = std::make_shared<LayerNormState>();
  state->xhat.resize(static_cast<size_t>(x.numel()));
  state->inv_std.resize(static_cast<size_t>(rows));
  float* po = out.data();
  float* pxhat = state->xhat.data();
  float* pis = state->inv_std.data();
  ParallelFor(rows, GrainForRows(n), [&](int64_t s, int64_t e) {
    int64_t r = s;
#ifdef DTDBD_SIMD_AVX512
    // Vector path: mean/variance chains lane-per-row over a transposed
    // scratch (division and sqrt are correctly rounded in both forms),
    // then a vector writeback per row.
    if (UseAvx512() && e - r >= 16) {
      std::vector<float> scratch(static_cast<size_t>(n) * 16);
      float mean16[16], is16[16];
      for (; r + 16 <= e; r += 16) {
        for (int rr = 0; rr < 16; ++rr) {
          const float* xi = px + (r + rr) * n;
          for (int64_t j = 0; j < n; ++j) scratch[j * 16 + rr] = xi[j];
        }
        LayerNormStats16Avx512(scratch.data(), n, eps, mean16, is16);
        for (int rr = 0; rr < 16; ++rr) {
          pis[r + rr] = is16[rr];
          LayerNormRowAvx512(px + (r + rr) * n, pg, pbeta, mean16[rr],
                             is16[rr], pxhat + (r + rr) * n,
                             po + (r + rr) * n, n);
        }
      }
    }
#endif
    for (; r < e; ++r) {
      const float* xi = px + r * n;
      float mean = 0.0f;
      for (int64_t j = 0; j < n; ++j) mean += xi[j];
      mean /= static_cast<float>(n);
      float var = 0.0f;
      for (int64_t j = 0; j < n; ++j) {
        const float d = xi[j] - mean;
        var += d * d;
      }
      var /= static_cast<float>(n);
      const float is = 1.0f / std::sqrt(var + eps);
      pis[r] = is;
      for (int64_t j = 0; j < n; ++j) {
        const float h = (xi[j] - mean) * is;
        pxhat[r * n + j] = h;
        po[r * n + j] = pg[j] * h + pbeta[j];
      }
    }
  });
  return MakeOp(kLayerNorm, x.shape(), std::move(out), {x, gamma, beta},
                state);
}

Tensor WeightedSumOverTime(const Tensor& x_in, const Tensor& w_in) {
  DTDBD_CHECK_EQ(x_in.ndim(), 3);
  DTDBD_CHECK_EQ(w_in.ndim(), 2);
  Tensor x = Contiguous(x_in);
  Tensor w = Contiguous(w_in);
  const int64_t b = x.dim(0), t = x.dim(1), n = x.dim(2);
  DTDBD_CHECK_EQ(w.dim(0), b);
  DTDBD_CHECK_EQ(w.dim(1), t);
  ScopedOpTimer timer(kWeightedSumOverTime);
  const float* px = x.data().data();
  const float* pw = w.data().data();
  std::vector<float> out(static_cast<size_t>(b * n), 0.0f);
  float* po = out.data();
  // Batched 1×t · t×n GEMM, sharded over (batch row, feature-column tile)
  // pairs so small batches with wide features still spread across the pool.
  // Every output element accumulates over ti in ascending order no matter
  // which shard owns its tile — bitwise identical across thread counts.
  constexpr int64_t kTile = 256;
  const int64_t tiles = (n + kTile - 1) / kTile;
  ParallelFor(b * tiles, GrainForRows(t * kTile), [&](int64_t s, int64_t e) {
    for (int64_t r = s; r < e; ++r) {
      const int64_t bi = r / tiles;
      const int64_t j0 = (r % tiles) * kTile;
      const int64_t j1 = std::min(n, j0 + kTile);
      float* orow = po + bi * n;
      for (int64_t ti = 0; ti < t; ++ti) {
        const float wv = pw[bi * t + ti];
        const float* xr = px + (bi * t + ti) * n;
        for (int64_t j = j0; j < j1; ++j) orow[j] += wv * xr[j];
      }
    }
  });
  return MakeOp(kWeightedSumOverTime, {b, n}, std::move(out), {x, w});
}

Tensor RowL2Normalize(const Tensor& x_in, float eps) {
  DTDBD_CHECK_EQ(x_in.ndim(), 2);
  Tensor x = Contiguous(x_in);
  const int64_t b = x.dim(0), n = x.dim(1);
  ScopedOpTimer timer(kRowL2Normalize);
  const float* px = x.data().data();
  std::vector<float> out(static_cast<size_t>(x.numel()));
  auto state = std::make_shared<RowL2NormalizeState>();
  state->inv_norms.resize(static_cast<size_t>(b));
  float* po = out.data();
  float* pinv = state->inv_norms.data();
  ParallelFor(b, GrainForRows(n), [&](int64_t s, int64_t e) {
    for (int64_t i = s; i < e; ++i) {
      const float* xi = px + i * n;
      float acc = 0.0f;
      for (int64_t j = 0; j < n; ++j) acc += xi[j] * xi[j];
      const float inv = 1.0f / std::max(std::sqrt(acc), eps);
      pinv[i] = inv;
      for (int64_t j = 0; j < n; ++j) po[i * n + j] = xi[j] * inv;
    }
  });
  return MakeOp(kRowL2Normalize, x.shape(), std::move(out), {x}, state);
}

Tensor PairwiseSquaredDistances(const Tensor& x_in) {
  DTDBD_CHECK_EQ(x_in.ndim(), 2);
  Tensor x = Contiguous(x_in);
  const int64_t b = x.dim(0), n = x.dim(1);
  ScopedOpTimer timer(kPairwiseSquaredDistances);
  const float* px = x.data().data();
  std::vector<float> out(static_cast<size_t>(b * b), 0.0f);
  float* po = out.data();
  // Row-sharded; (i,j) and (j,i) compute the same value bit for bit, since
  // (a-b)^2 and (b-a)^2 round identically.
  ParallelFor(b, GrainForRows(b * n), [&](int64_t s, int64_t e) {
    for (int64_t i = s; i < e; ++i) {
      const float* xi = px + i * n;
      float* orow = po + i * b;
      for (int64_t j = 0; j < b; ++j) {
        if (j == i) {
          orow[j] = 0.0f;
          continue;
        }
        const float* xj = px + j * n;
        float acc = 0.0f;
        for (int64_t kk = 0; kk < n; ++kk) {
          const float d = xi[kk] - xj[kk];
          acc += d * d;
        }
        orow[j] = acc;
      }
    }
  });
  return MakeOp(kPairwiseSquaredDistances, {b, b}, std::move(out), {x});
}

}  // namespace dtdbd::tensor
