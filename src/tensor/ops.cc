#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace dtdbd::tensor {

namespace {

using internal::Node;

// Creates the output node for an op. `inputs` are recorded (and the backward
// closure installed via `set_backward`) only when gradient mode is on and at
// least one input is differentiable.
Tensor MakeOp(const char* op_name, Shape shape, std::vector<float> data,
              std::vector<Tensor> inputs,
              const std::function<std::function<void()>(Node*)>&
                  make_backward) {
  auto node = std::make_shared<Node>();
  node->shape = std::move(shape);
  node->data = std::move(data);
  node->op_name = op_name;
  bool any_grad = false;
  for (const auto& in : inputs) {
    DTDBD_CHECK(in.defined()) << op_name << ": undefined input";
    any_grad = any_grad || in.requires_grad();
  }
  if (GradEnabled() && any_grad) {
    node->requires_grad = true;
    for (const auto& in : inputs) node->inputs.push_back(in.node());
    node->backward = make_backward(node.get());
  }
  return Tensor::FromNode(std::move(node));
}

void CheckSameShape(const char* op, const Tensor& a, const Tensor& b) {
  DTDBD_CHECK(a.shape() == b.shape())
      << op << ": shape mismatch " << ShapeToString(a.shape()) << " vs "
      << ShapeToString(b.shape());
}

// Shared implementation for unary elementwise ops.
//   fwd(x) -> y;  dydx(x, y) -> local derivative
template <typename Fwd, typename Dydx>
Tensor UnaryOp(const char* name, const Tensor& a, Fwd fwd, Dydx dydx) {
  std::vector<float> out(a.data().size());
  for (size_t i = 0; i < out.size(); ++i) out[i] = fwd(a.data()[i]);
  return MakeOp(name, a.shape(), std::move(out), {a}, [=](Node* self) {
    return [self, dydx]() {
      Node* in = self->inputs[0].get();
      if (!in->requires_grad) return;
      for (size_t i = 0; i < self->data.size(); ++i) {
        in->grad[i] += self->grad[i] * dydx(in->data[i], self->data[i]);
      }
    };
  });
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  CheckSameShape("Add", a, b);
  std::vector<float> out(a.data().size());
  for (size_t i = 0; i < out.size(); ++i) out[i] = a.data()[i] + b.data()[i];
  return MakeOp("Add", a.shape(), std::move(out), {a, b}, [](Node* self) {
    return [self]() {
      for (int k = 0; k < 2; ++k) {
        Node* in = self->inputs[k].get();
        if (!in->requires_grad) continue;
        for (size_t i = 0; i < self->data.size(); ++i) {
          in->grad[i] += self->grad[i];
        }
      }
    };
  });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CheckSameShape("Sub", a, b);
  std::vector<float> out(a.data().size());
  for (size_t i = 0; i < out.size(); ++i) out[i] = a.data()[i] - b.data()[i];
  return MakeOp("Sub", a.shape(), std::move(out), {a, b}, [](Node* self) {
    return [self]() {
      Node* lhs = self->inputs[0].get();
      Node* rhs = self->inputs[1].get();
      for (size_t i = 0; i < self->data.size(); ++i) {
        if (lhs->requires_grad) lhs->grad[i] += self->grad[i];
        if (rhs->requires_grad) rhs->grad[i] -= self->grad[i];
      }
    };
  });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CheckSameShape("Mul", a, b);
  std::vector<float> out(a.data().size());
  for (size_t i = 0; i < out.size(); ++i) out[i] = a.data()[i] * b.data()[i];
  return MakeOp("Mul", a.shape(), std::move(out), {a, b}, [](Node* self) {
    return [self]() {
      Node* lhs = self->inputs[0].get();
      Node* rhs = self->inputs[1].get();
      for (size_t i = 0; i < self->data.size(); ++i) {
        if (lhs->requires_grad) lhs->grad[i] += self->grad[i] * rhs->data[i];
        if (rhs->requires_grad) rhs->grad[i] += self->grad[i] * lhs->data[i];
      }
    };
  });
}

Tensor AddBias(const Tensor& x, const Tensor& bias) {
  DTDBD_CHECK_EQ(bias.ndim(), 1);
  const int64_t n = bias.dim(0);
  DTDBD_CHECK(x.ndim() >= 1 && x.shape().back() == n)
      << "AddBias: last dim of " << ShapeToString(x.shape()) << " vs bias "
      << n;
  std::vector<float> out(x.data().size());
  const int64_t rows = x.numel() / n;
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t j = 0; j < n; ++j) {
      out[r * n + j] = x.data()[r * n + j] + bias.data()[j];
    }
  }
  return MakeOp("AddBias", x.shape(), std::move(out), {x, bias},
                [n, rows](Node* self) {
                  return [self, n, rows]() {
                    Node* xin = self->inputs[0].get();
                    Node* bin = self->inputs[1].get();
                    for (int64_t r = 0; r < rows; ++r) {
                      for (int64_t j = 0; j < n; ++j) {
                        const float g = self->grad[r * n + j];
                        if (xin->requires_grad) xin->grad[r * n + j] += g;
                        if (bin->requires_grad) bin->grad[j] += g;
                      }
                    }
                  };
                });
}

Tensor Neg(const Tensor& a) {
  return UnaryOp(
      "Neg", a, [](float x) { return -x; },
      [](float, float) { return -1.0f; });
}

Tensor ScalarMul(const Tensor& a, float s) {
  return UnaryOp(
      "ScalarMul", a, [s](float x) { return s * x; },
      [s](float, float) { return s; });
}

Tensor Relu(const Tensor& a) {
  return UnaryOp(
      "Relu", a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

Tensor Tanh(const Tensor& a) {
  return UnaryOp(
      "Tanh", a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor Sigmoid(const Tensor& a) {
  return UnaryOp(
      "Sigmoid", a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor Exp(const Tensor& a) {
  return UnaryOp(
      "Exp", a, [](float x) { return std::exp(x); },
      [](float, float y) { return y; });
}

Tensor Log(const Tensor& a) {
  for (float v : a.data()) {
    DTDBD_CHECK_GT(v, 0.0f) << "Log: non-positive input";
  }
  return UnaryOp(
      "Log", a, [](float x) { return std::log(x); },
      [](float x, float) { return 1.0f / x; });
}

Tensor Square(const Tensor& a) {
  return UnaryOp(
      "Square", a, [](float x) { return x * x; },
      [](float x, float) { return 2.0f * x; });
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  DTDBD_CHECK_EQ(a.ndim(), 2);
  DTDBD_CHECK_EQ(b.ndim(), 2);
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  DTDBD_CHECK_EQ(k, b.dim(0)) << "MatMul: inner dims "
                              << ShapeToString(a.shape()) << " x "
                              << ShapeToString(b.shape());
  std::vector<float> out(static_cast<size_t>(m * n), 0.0f);
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  // ikj order: streaming access to b and out rows.
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = pa[i * k + kk];
      if (av == 0.0f) continue;
      const float* brow = pb + kk * n;
      float* orow = out.data() + i * n;
      for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
  return MakeOp("MatMul", {m, n}, std::move(out), {a, b},
                [m, k, n](Node* self) {
                  return [self, m, k, n]() {
                    Node* an = self->inputs[0].get();
                    Node* bn = self->inputs[1].get();
                    const float* g = self->grad.data();
                    if (an->requires_grad) {
                      // gA[i,kk] += sum_j g[i,j] * B[kk,j]
                      const float* pb = bn->data.data();
                      for (int64_t i = 0; i < m; ++i) {
                        for (int64_t kk = 0; kk < k; ++kk) {
                          const float* brow = pb + kk * n;
                          const float* grow = g + i * n;
                          float acc = 0.0f;
                          for (int64_t j = 0; j < n; ++j) {
                            acc += grow[j] * brow[j];
                          }
                          an->grad[i * k + kk] += acc;
                        }
                      }
                    }
                    if (bn->requires_grad) {
                      // gB[kk,j] += sum_i A[i,kk] * g[i,j]
                      const float* pa = an->data.data();
                      for (int64_t i = 0; i < m; ++i) {
                        const float* grow = g + i * n;
                        for (int64_t kk = 0; kk < k; ++kk) {
                          const float av = pa[i * k + kk];
                          if (av == 0.0f) continue;
                          float* brow = bn->grad.data() + kk * n;
                          for (int64_t j = 0; j < n; ++j) {
                            brow[j] += av * grow[j];
                          }
                        }
                      }
                    }
                  };
                });
}

Tensor Transpose2d(const Tensor& a) {
  DTDBD_CHECK_EQ(a.ndim(), 2);
  const int64_t m = a.dim(0), n = a.dim(1);
  std::vector<float> out(static_cast<size_t>(m * n));
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) out[j * m + i] = a.data()[i * n + j];
  }
  return MakeOp("Transpose2d", {n, m}, std::move(out), {a},
                [m, n](Node* self) {
                  return [self, m, n]() {
                    Node* in = self->inputs[0].get();
                    if (!in->requires_grad) return;
                    for (int64_t i = 0; i < m; ++i) {
                      for (int64_t j = 0; j < n; ++j) {
                        in->grad[i * n + j] += self->grad[j * m + i];
                      }
                    }
                  };
                });
}

Tensor Sum(const Tensor& a) {
  float total = 0.0f;
  for (float v : a.data()) total += v;
  return MakeOp("Sum", {1}, {total}, {a}, [](Node* self) {
    return [self]() {
      Node* in = self->inputs[0].get();
      if (!in->requires_grad) return;
      const float g = self->grad[0];
      for (auto& gv : in->grad) gv += g;
    };
  });
}

Tensor Mean(const Tensor& a) {
  DTDBD_CHECK_GT(a.numel(), 0);
  float total = 0.0f;
  for (float v : a.data()) total += v;
  const float inv_n = 1.0f / static_cast<float>(a.numel());
  return MakeOp("Mean", {1}, {total * inv_n}, {a}, [inv_n](Node* self) {
    return [self, inv_n]() {
      Node* in = self->inputs[0].get();
      if (!in->requires_grad) return;
      const float g = self->grad[0] * inv_n;
      for (auto& gv : in->grad) gv += g;
    };
  });
}

Tensor MeanOverTime(const Tensor& x) {
  DTDBD_CHECK_EQ(x.ndim(), 3);
  const int64_t b = x.dim(0), t = x.dim(1), n = x.dim(2);
  DTDBD_CHECK_GT(t, 0);
  std::vector<float> out(static_cast<size_t>(b * n), 0.0f);
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t ti = 0; ti < t; ++ti) {
      for (int64_t j = 0; j < n; ++j) {
        out[bi * n + j] += x.data()[(bi * t + ti) * n + j];
      }
    }
  }
  const float inv_t = 1.0f / static_cast<float>(t);
  for (auto& v : out) v *= inv_t;
  return MakeOp("MeanOverTime", {b, n}, std::move(out), {x},
                [b, t, n, inv_t](Node* self) {
                  return [self, b, t, n, inv_t]() {
                    Node* in = self->inputs[0].get();
                    if (!in->requires_grad) return;
                    for (int64_t bi = 0; bi < b; ++bi) {
                      for (int64_t ti = 0; ti < t; ++ti) {
                        for (int64_t j = 0; j < n; ++j) {
                          in->grad[(bi * t + ti) * n + j] +=
                              self->grad[bi * n + j] * inv_t;
                        }
                      }
                    }
                  };
                });
}

Tensor MaxOverTime(const Tensor& x) {
  DTDBD_CHECK_EQ(x.ndim(), 3);
  const int64_t b = x.dim(0), t = x.dim(1), n = x.dim(2);
  DTDBD_CHECK_GT(t, 0);
  std::vector<float> out(static_cast<size_t>(b * n));
  auto argmax = std::make_shared<std::vector<int32_t>>(
      static_cast<size_t>(b * n));
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t j = 0; j < n; ++j) {
      float best = x.data()[(bi * t + 0) * n + j];
      int32_t best_t = 0;
      for (int64_t ti = 1; ti < t; ++ti) {
        const float v = x.data()[(bi * t + ti) * n + j];
        if (v > best) {
          best = v;
          best_t = static_cast<int32_t>(ti);
        }
      }
      out[bi * n + j] = best;
      (*argmax)[bi * n + j] = best_t;
    }
  }
  return MakeOp("MaxOverTime", {b, n}, std::move(out), {x},
                [b, t, n, argmax](Node* self) {
                  return [self, b, t, n, argmax]() {
                    Node* in = self->inputs[0].get();
                    if (!in->requires_grad) return;
                    for (int64_t bi = 0; bi < b; ++bi) {
                      for (int64_t j = 0; j < n; ++j) {
                        const int32_t ti = (*argmax)[bi * n + j];
                        in->grad[(bi * t + ti) * n + j] +=
                            self->grad[bi * n + j];
                      }
                    }
                  };
                });
}

Tensor Reshape(const Tensor& a, const Shape& new_shape) {
  DTDBD_CHECK_EQ(NumElements(new_shape), a.numel())
      << "Reshape to " << ShapeToString(new_shape);
  std::vector<float> out = a.data();
  return MakeOp("Reshape", new_shape, std::move(out), {a}, [](Node* self) {
    return [self]() {
      Node* in = self->inputs[0].get();
      if (!in->requires_grad) return;
      for (size_t i = 0; i < self->data.size(); ++i) {
        in->grad[i] += self->grad[i];
      }
    };
  });
}

Tensor ConcatLastDim(const std::vector<Tensor>& parts) {
  DTDBD_CHECK(!parts.empty());
  const int64_t rows = parts[0].dim(0);
  int64_t total = 0;
  for (const auto& p : parts) {
    DTDBD_CHECK_EQ(p.ndim(), 2);
    DTDBD_CHECK_EQ(p.dim(0), rows);
    total += p.dim(1);
  }
  std::vector<float> out(static_cast<size_t>(rows * total));
  std::vector<int64_t> offsets;
  int64_t off = 0;
  for (const auto& p : parts) {
    offsets.push_back(off);
    const int64_t w = p.dim(1);
    for (int64_t r = 0; r < rows; ++r) {
      std::copy_n(p.data().data() + r * w, w,
                  out.data() + r * total + off);
    }
    off += w;
  }
  return MakeOp("ConcatLastDim", {rows, total}, std::move(out), parts,
                [rows, total, offsets](Node* self) {
                  return [self, rows, total, offsets]() {
                    for (size_t k = 0; k < self->inputs.size(); ++k) {
                      Node* in = self->inputs[k].get();
                      if (!in->requires_grad) continue;
                      const int64_t w = in->shape[1];
                      for (int64_t r = 0; r < rows; ++r) {
                        for (int64_t j = 0; j < w; ++j) {
                          in->grad[r * w + j] +=
                              self->grad[r * total + offsets[k] + j];
                        }
                      }
                    }
                  };
                });
}

Tensor SliceLastDim(const Tensor& x, int64_t start, int64_t len) {
  DTDBD_CHECK_EQ(x.ndim(), 2);
  const int64_t rows = x.dim(0), cols = x.dim(1);
  DTDBD_CHECK_GE(start, 0);
  DTDBD_CHECK_LE(start + len, cols);
  std::vector<float> out(static_cast<size_t>(rows * len));
  for (int64_t r = 0; r < rows; ++r) {
    std::copy_n(x.data().data() + r * cols + start, len,
                out.data() + r * len);
  }
  return MakeOp("SliceLastDim", {rows, len}, std::move(out), {x},
                [rows, cols, start, len](Node* self) {
                  return [self, rows, cols, start, len]() {
                    Node* in = self->inputs[0].get();
                    if (!in->requires_grad) return;
                    for (int64_t r = 0; r < rows; ++r) {
                      for (int64_t j = 0; j < len; ++j) {
                        in->grad[r * cols + start + j] +=
                            self->grad[r * len + j];
                      }
                    }
                  };
                });
}

Tensor SliceTime(const Tensor& x, int64_t t) {
  DTDBD_CHECK_EQ(x.ndim(), 3);
  const int64_t b = x.dim(0), tt = x.dim(1), n = x.dim(2);
  DTDBD_CHECK_GE(t, 0);
  DTDBD_CHECK_LT(t, tt);
  std::vector<float> out(static_cast<size_t>(b * n));
  for (int64_t bi = 0; bi < b; ++bi) {
    std::copy_n(x.data().data() + (bi * tt + t) * n, n, out.data() + bi * n);
  }
  return MakeOp("SliceTime", {b, n}, std::move(out), {x},
                [b, tt, n, t](Node* self) {
                  return [self, b, tt, n, t]() {
                    Node* in = self->inputs[0].get();
                    if (!in->requires_grad) return;
                    for (int64_t bi = 0; bi < b; ++bi) {
                      for (int64_t j = 0; j < n; ++j) {
                        in->grad[(bi * tt + t) * n + j] +=
                            self->grad[bi * n + j];
                      }
                    }
                  };
                });
}

Tensor StackTime(const std::vector<Tensor>& steps) {
  DTDBD_CHECK(!steps.empty());
  const int64_t b = steps[0].dim(0), h = steps[0].dim(1);
  const int64_t t = static_cast<int64_t>(steps.size());
  for (const auto& s : steps) {
    DTDBD_CHECK_EQ(s.ndim(), 2);
    DTDBD_CHECK_EQ(s.dim(0), b);
    DTDBD_CHECK_EQ(s.dim(1), h);
  }
  std::vector<float> out(static_cast<size_t>(b * t * h));
  for (int64_t ti = 0; ti < t; ++ti) {
    for (int64_t bi = 0; bi < b; ++bi) {
      std::copy_n(steps[ti].data().data() + bi * h, h,
                  out.data() + (bi * t + ti) * h);
    }
  }
  return MakeOp("StackTime", {b, t, h}, std::move(out), steps,
                [b, t, h](Node* self) {
                  return [self, b, t, h]() {
                    for (int64_t ti = 0; ti < t; ++ti) {
                      Node* in = self->inputs[ti].get();
                      if (!in->requires_grad) continue;
                      for (int64_t bi = 0; bi < b; ++bi) {
                        for (int64_t j = 0; j < h; ++j) {
                          in->grad[bi * h + j] +=
                              self->grad[(bi * t + ti) * h + j];
                        }
                      }
                    }
                  };
                });
}

namespace {

// Computes row-wise softmax of `in` (rows x cols) into `out`.
void RowSoftmax(const float* in, float* out, int64_t rows, int64_t cols) {
  for (int64_t r = 0; r < rows; ++r) {
    const float* x = in + r * cols;
    float* y = out + r * cols;
    float mx = x[0];
    for (int64_t j = 1; j < cols; ++j) mx = std::max(mx, x[j]);
    float sum = 0.0f;
    for (int64_t j = 0; j < cols; ++j) {
      y[j] = std::exp(x[j] - mx);
      sum += y[j];
    }
    const float inv = 1.0f / sum;
    for (int64_t j = 0; j < cols; ++j) y[j] *= inv;
  }
}

}  // namespace

Tensor Softmax(const Tensor& x) {
  DTDBD_CHECK_GE(x.ndim(), 1);
  const int64_t cols = x.shape().back();
  const int64_t rows = x.numel() / cols;
  std::vector<float> out(x.data().size());
  RowSoftmax(x.data().data(), out.data(), rows, cols);
  return MakeOp("Softmax", x.shape(), std::move(out), {x},
                [rows, cols](Node* self) {
                  return [self, rows, cols]() {
                    Node* in = self->inputs[0].get();
                    if (!in->requires_grad) return;
                    for (int64_t r = 0; r < rows; ++r) {
                      const float* y = self->data.data() + r * cols;
                      const float* g = self->grad.data() + r * cols;
                      float dot = 0.0f;
                      for (int64_t j = 0; j < cols; ++j) dot += g[j] * y[j];
                      float* gi = in->grad.data() + r * cols;
                      for (int64_t j = 0; j < cols; ++j) {
                        gi[j] += y[j] * (g[j] - dot);
                      }
                    }
                  };
                });
}

Tensor LogSoftmax(const Tensor& x) {
  DTDBD_CHECK_GE(x.ndim(), 1);
  const int64_t cols = x.shape().back();
  const int64_t rows = x.numel() / cols;
  std::vector<float> out(x.data().size());
  for (int64_t r = 0; r < rows; ++r) {
    const float* xi = x.data().data() + r * cols;
    float* y = out.data() + r * cols;
    float mx = xi[0];
    for (int64_t j = 1; j < cols; ++j) mx = std::max(mx, xi[j]);
    float sum = 0.0f;
    for (int64_t j = 0; j < cols; ++j) sum += std::exp(xi[j] - mx);
    const float lse = mx + std::log(sum);
    for (int64_t j = 0; j < cols; ++j) y[j] = xi[j] - lse;
  }
  return MakeOp("LogSoftmax", x.shape(), std::move(out), {x},
                [rows, cols](Node* self) {
                  return [self, rows, cols]() {
                    Node* in = self->inputs[0].get();
                    if (!in->requires_grad) return;
                    for (int64_t r = 0; r < rows; ++r) {
                      const float* y = self->data.data() + r * cols;
                      const float* g = self->grad.data() + r * cols;
                      float gsum = 0.0f;
                      for (int64_t j = 0; j < cols; ++j) gsum += g[j];
                      float* gi = in->grad.data() + r * cols;
                      for (int64_t j = 0; j < cols; ++j) {
                        gi[j] += g[j] - std::exp(y[j]) * gsum;
                      }
                    }
                  };
                });
}

Tensor EmbeddingGather(const Tensor& table, const std::vector<int>& ids,
                       int64_t batch, int64_t time) {
  DTDBD_CHECK_EQ(table.ndim(), 2);
  DTDBD_CHECK_EQ(static_cast<int64_t>(ids.size()), batch * time);
  const int64_t v = table.dim(0), e = table.dim(1);
  std::vector<float> out(static_cast<size_t>(batch * time * e));
  for (int64_t i = 0; i < batch * time; ++i) {
    DTDBD_CHECK_GE(ids[i], 0);
    DTDBD_CHECK_LT(ids[i], v) << "token id out of vocabulary";
    std::copy_n(table.data().data() + static_cast<int64_t>(ids[i]) * e, e,
                out.data() + i * e);
  }
  auto ids_copy = std::make_shared<std::vector<int>>(ids);
  return MakeOp("EmbeddingGather", {batch, time, e}, std::move(out), {table},
                [e, ids_copy](Node* self) {
                  return [self, e, ids_copy]() {
                    Node* in = self->inputs[0].get();
                    if (!in->requires_grad) return;
                    for (size_t i = 0; i < ids_copy->size(); ++i) {
                      const int64_t row = (*ids_copy)[i];
                      for (int64_t j = 0; j < e; ++j) {
                        in->grad[row * e + j] += self->grad[i * e + j];
                      }
                    }
                  };
                });
}

Tensor Conv1dSeq(const Tensor& x, const Tensor& weight, const Tensor& bias,
                 int64_t kernel_width) {
  DTDBD_CHECK_EQ(x.ndim(), 3);
  DTDBD_CHECK_EQ(weight.ndim(), 2);
  DTDBD_CHECK_EQ(bias.ndim(), 1);
  const int64_t b = x.dim(0), t = x.dim(1), e = x.dim(2);
  const int64_t c = weight.dim(0);
  DTDBD_CHECK_EQ(weight.dim(1), kernel_width * e)
      << "Conv1dSeq: weight must be [C, k*E]";
  DTDBD_CHECK_EQ(bias.dim(0), c);
  DTDBD_CHECK_GE(t, kernel_width)
      << "Conv1dSeq: sequence shorter than kernel";
  const int64_t to = t - kernel_width + 1;
  std::vector<float> out(static_cast<size_t>(b * to * c));
  const float* px = x.data().data();
  const float* pw = weight.data().data();
  const float* pbias = bias.data().data();
  const int64_t win = kernel_width * e;
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t o = 0; o < to; ++o) {
      // The window x[bi, o:o+k, :] is contiguous of length k*E.
      const float* window = px + (bi * t + o) * e;
      float* orow = out.data() + (bi * to + o) * c;
      for (int64_t ci = 0; ci < c; ++ci) {
        const float* wrow = pw + ci * win;
        float acc = pbias[ci];
        for (int64_t j = 0; j < win; ++j) acc += window[j] * wrow[j];
        orow[ci] = acc;
      }
    }
  }
  return MakeOp(
      "Conv1dSeq", {b, to, c}, std::move(out), {x, weight, bias},
      [b, t, e, c, to, win](Node* self) {
        return [self, b, t, e, c, to, win]() {
          Node* xn = self->inputs[0].get();
          Node* wn = self->inputs[1].get();
          Node* bn = self->inputs[2].get();
          (void)t;
          for (int64_t bi = 0; bi < b; ++bi) {
            for (int64_t o = 0; o < to; ++o) {
              const float* g = self->grad.data() + (bi * to + o) * c;
              const int64_t window_off = (bi * t + o) * e;
              for (int64_t ci = 0; ci < c; ++ci) {
                const float gv = g[ci];
                if (gv == 0.0f) continue;
                if (bn->requires_grad) bn->grad[ci] += gv;
                const float* wrow = wn->data.data() + ci * win;
                if (xn->requires_grad) {
                  float* gx = xn->grad.data() + window_off;
                  for (int64_t j = 0; j < win; ++j) gx[j] += gv * wrow[j];
                }
                if (wn->requires_grad) {
                  const float* window = xn->data.data() + window_off;
                  float* gw = wn->grad.data() + ci * win;
                  for (int64_t j = 0; j < win; ++j) gw[j] += gv * window[j];
                }
              }
            }
          }
        };
      });
}

Tensor GradReverse(const Tensor& x, float lambda) {
  std::vector<float> out = x.data();
  return MakeOp("GradReverse", x.shape(), std::move(out), {x},
                [lambda](Node* self) {
                  return [self, lambda]() {
                    Node* in = self->inputs[0].get();
                    if (!in->requires_grad) return;
                    for (size_t i = 0; i < self->data.size(); ++i) {
                      in->grad[i] -= lambda * self->grad[i];
                    }
                  };
                });
}

Tensor Dropout(const Tensor& x, double p, Rng* rng, bool training) {
  DTDBD_CHECK_GE(p, 0.0);
  DTDBD_CHECK_LT(p, 1.0);
  if (!training || p == 0.0) return ScalarMul(x, 1.0f);
  DTDBD_CHECK(rng != nullptr);
  const float scale = static_cast<float>(1.0 / (1.0 - p));
  auto mask = std::make_shared<std::vector<float>>(x.data().size());
  std::vector<float> out(x.data().size());
  for (size_t i = 0; i < out.size(); ++i) {
    const float m = rng->Bernoulli(p) ? 0.0f : scale;
    (*mask)[i] = m;
    out[i] = x.data()[i] * m;
  }
  return MakeOp("Dropout", x.shape(), std::move(out), {x},
                [mask](Node* self) {
                  return [self, mask]() {
                    Node* in = self->inputs[0].get();
                    if (!in->requires_grad) return;
                    for (size_t i = 0; i < self->data.size(); ++i) {
                      in->grad[i] += self->grad[i] * (*mask)[i];
                    }
                  };
                });
}

Tensor LayerNormOp(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                   float eps) {
  DTDBD_CHECK_GE(x.ndim(), 1);
  const int64_t n = x.shape().back();
  DTDBD_CHECK_EQ(gamma.ndim(), 1);
  DTDBD_CHECK_EQ(gamma.dim(0), n);
  DTDBD_CHECK_EQ(beta.ndim(), 1);
  DTDBD_CHECK_EQ(beta.dim(0), n);
  const int64_t rows = x.numel() / n;
  std::vector<float> out(x.data().size());
  // Normalized values (pre gamma/beta) retained for backward.
  auto xhat = std::make_shared<std::vector<float>>(x.data().size());
  auto inv_std = std::make_shared<std::vector<float>>(rows);
  for (int64_t r = 0; r < rows; ++r) {
    const float* xi = x.data().data() + r * n;
    float mean = 0.0f;
    for (int64_t j = 0; j < n; ++j) mean += xi[j];
    mean /= static_cast<float>(n);
    float var = 0.0f;
    for (int64_t j = 0; j < n; ++j) {
      const float d = xi[j] - mean;
      var += d * d;
    }
    var /= static_cast<float>(n);
    const float is = 1.0f / std::sqrt(var + eps);
    (*inv_std)[r] = is;
    for (int64_t j = 0; j < n; ++j) {
      const float h = (xi[j] - mean) * is;
      (*xhat)[r * n + j] = h;
      out[r * n + j] = gamma.data()[j] * h + beta.data()[j];
    }
  }
  return MakeOp(
      "LayerNorm", x.shape(), std::move(out), {x, gamma, beta},
      [rows, n, xhat, inv_std](Node* self) {
        return [self, rows, n, xhat, inv_std]() {
          Node* xn = self->inputs[0].get();
          Node* gn = self->inputs[1].get();
          Node* bn = self->inputs[2].get();
          for (int64_t r = 0; r < rows; ++r) {
            const float* g = self->grad.data() + r * n;
            const float* h = xhat->data() + r * n;
            // Gradients wrt gamma/beta.
            for (int64_t j = 0; j < n; ++j) {
              if (gn->requires_grad) gn->grad[j] += g[j] * h[j];
              if (bn->requires_grad) bn->grad[j] += g[j];
            }
            if (!xn->requires_grad) continue;
            // dL/dxhat_j = g_j * gamma_j; standard layernorm backward.
            float sum_dh = 0.0f, sum_dh_h = 0.0f;
            for (int64_t j = 0; j < n; ++j) {
              const float dh = g[j] * gn->data[j];
              sum_dh += dh;
              sum_dh_h += dh * h[j];
            }
            const float is = (*inv_std)[r];
            const float inv_n = 1.0f / static_cast<float>(n);
            float* gx = xn->grad.data() + r * n;
            for (int64_t j = 0; j < n; ++j) {
              const float dh = g[j] * gn->data[j];
              gx[j] += is * (dh - inv_n * sum_dh - h[j] * inv_n * sum_dh_h);
            }
          }
        };
      });
}

Tensor WeightedSumOverTime(const Tensor& x, const Tensor& w) {
  DTDBD_CHECK_EQ(x.ndim(), 3);
  DTDBD_CHECK_EQ(w.ndim(), 2);
  const int64_t b = x.dim(0), t = x.dim(1), n = x.dim(2);
  DTDBD_CHECK_EQ(w.dim(0), b);
  DTDBD_CHECK_EQ(w.dim(1), t);
  std::vector<float> out(static_cast<size_t>(b * n), 0.0f);
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t ti = 0; ti < t; ++ti) {
      const float wv = w.data()[bi * t + ti];
      const float* xr = x.data().data() + (bi * t + ti) * n;
      float* orow = out.data() + bi * n;
      for (int64_t j = 0; j < n; ++j) orow[j] += wv * xr[j];
    }
  }
  return MakeOp("WeightedSumOverTime", {b, n}, std::move(out), {x, w},
                [b, t, n](Node* self) {
                  return [self, b, t, n]() {
                    Node* xn = self->inputs[0].get();
                    Node* wn = self->inputs[1].get();
                    for (int64_t bi = 0; bi < b; ++bi) {
                      const float* g = self->grad.data() + bi * n;
                      for (int64_t ti = 0; ti < t; ++ti) {
                        const float wv = wn->data[bi * t + ti];
                        const float* xr =
                            xn->data.data() + (bi * t + ti) * n;
                        if (xn->requires_grad) {
                          float* gx =
                              xn->grad.data() + (bi * t + ti) * n;
                          for (int64_t j = 0; j < n; ++j) {
                            gx[j] += wv * g[j];
                          }
                        }
                        if (wn->requires_grad) {
                          float acc = 0.0f;
                          for (int64_t j = 0; j < n; ++j) {
                            acc += xr[j] * g[j];
                          }
                          wn->grad[bi * t + ti] += acc;
                        }
                      }
                    }
                  };
                });
}

Tensor RowL2Normalize(const Tensor& x, float eps) {
  DTDBD_CHECK_EQ(x.ndim(), 2);
  const int64_t b = x.dim(0), n = x.dim(1);
  std::vector<float> out(x.data().size());
  auto inv_norms = std::make_shared<std::vector<float>>(b);
  for (int64_t i = 0; i < b; ++i) {
    const float* xi = x.data().data() + i * n;
    float acc = 0.0f;
    for (int64_t j = 0; j < n; ++j) acc += xi[j] * xi[j];
    const float inv = 1.0f / std::max(std::sqrt(acc), eps);
    (*inv_norms)[i] = inv;
    for (int64_t j = 0; j < n; ++j) out[i * n + j] = xi[j] * inv;
  }
  return MakeOp("RowL2Normalize", x.shape(), std::move(out), {x},
                [b, n, inv_norms](Node* self) {
                  return [self, b, n, inv_norms]() {
                    Node* in = self->inputs[0].get();
                    if (!in->requires_grad) return;
                    for (int64_t i = 0; i < b; ++i) {
                      const float* y = self->data.data() + i * n;
                      const float* g = self->grad.data() + i * n;
                      float dot = 0.0f;
                      for (int64_t j = 0; j < n; ++j) dot += g[j] * y[j];
                      const float inv = (*inv_norms)[i];
                      float* gx = in->grad.data() + i * n;
                      for (int64_t j = 0; j < n; ++j) {
                        gx[j] += inv * (g[j] - dot * y[j]);
                      }
                    }
                  };
                });
}

Tensor PairwiseSquaredDistances(const Tensor& x) {
  DTDBD_CHECK_EQ(x.ndim(), 2);
  const int64_t b = x.dim(0), n = x.dim(1);
  std::vector<float> out(static_cast<size_t>(b * b), 0.0f);
  const float* px = x.data().data();
  for (int64_t i = 0; i < b; ++i) {
    for (int64_t j = i + 1; j < b; ++j) {
      float acc = 0.0f;
      const float* xi = px + i * n;
      const float* xj = px + j * n;
      for (int64_t kk = 0; kk < n; ++kk) {
        const float d = xi[kk] - xj[kk];
        acc += d * d;
      }
      out[i * b + j] = acc;
      out[j * b + i] = acc;
    }
  }
  return MakeOp("PairwiseSquaredDistances", {b, b}, std::move(out), {x},
                [b, n](Node* self) {
                  return [self, b, n]() {
                    Node* in = self->inputs[0].get();
                    if (!in->requires_grad) return;
                    const float* px = in->data.data();
                    for (int64_t i = 0; i < b; ++i) {
                      for (int64_t j = 0; j < b; ++j) {
                        if (i == j) continue;
                        // d M[i,j] / d x[i,:] = 2 (x_i - x_j); gradient from
                        // both symmetric entries flows through.
                        const float g = self->grad[i * b + j];
                        if (g == 0.0f) continue;
                        const float* xi = px + i * n;
                        const float* xj = px + j * n;
                        float* gi = in->grad.data() + i * n;
                        float* gj = in->grad.data() + j * n;
                        for (int64_t kk = 0; kk < n; ++kk) {
                          const float d = 2.0f * (xi[kk] - xj[kk]) * g;
                          gi[kk] += d;
                          gj[kk] -= d;
                        }
                      }
                    }
                  };
                });
}

}  // namespace dtdbd::tensor
