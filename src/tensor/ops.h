// Differentiable operations on Tensor. Each op records a backward closure
// when gradient mode is enabled and at least one input requires grad.
//
// Conventions:
//  * 2-D tensors are row-major [rows, cols]; batched sequences are
//    [batch, time, features].
//  * "last dim" ops (softmax, concat, bias) operate on the final axis.
#ifndef DTDBD_TENSOR_OPS_H_
#define DTDBD_TENSOR_OPS_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "tensor/tensor.h"

namespace dtdbd::tensor {

// ----- Elementwise binary (shapes must match exactly) -----
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);

// Adds bias[N] to every row of x[..., N].
Tensor AddBias(const Tensor& x, const Tensor& bias);

// ----- Elementwise unary -----
Tensor Neg(const Tensor& a);
Tensor ScalarMul(const Tensor& a, float s);
Tensor Relu(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Exp(const Tensor& a);
Tensor Log(const Tensor& a);  // input must be strictly positive
Tensor Square(const Tensor& a);

// ----- Linear algebra -----
// [m,k] x [k,n] -> [m,n].
Tensor MatMul(const Tensor& a, const Tensor& b);
// [m,n] -> [n,m]. Zero-copy view (strides swapped); consumers that need a
// dense layout materialize it through Contiguous().
Tensor Transpose2d(const Tensor& a);

// ----- Reductions -----
Tensor Sum(const Tensor& a);   // -> scalar
Tensor Mean(const Tensor& a);  // -> scalar
// [B,T,N] -> [B,N] mean / max over the time axis. MaxOverTime is the
// "max-over-time pooling" used by TextCNN.
Tensor MeanOverTime(const Tensor& x);
Tensor MaxOverTime(const Tensor& x);

// ----- Shape manipulation -----
// The tensor itself when already dense row-major; otherwise a materialized
// dense copy, recorded as a graph op so gradient flows back to the view.
Tensor Contiguous(const Tensor& x);
// Zero-copy view when the input is contiguous (materializes it first
// otherwise); shares storage with the input.
Tensor Reshape(const Tensor& a, const Shape& new_shape);
// Concatenates 2-D tensors [B, Ni] along the last dim.
Tensor ConcatLastDim(const std::vector<Tensor>& parts);
// x[B, N] -> x[:, start:start+len]. Zero-copy view.
Tensor SliceLastDim(const Tensor& x, int64_t start, int64_t len);
// x[B,T,E] -> x[:, t, :] as [B,E]. Zero-copy view.
Tensor SliceTime(const Tensor& x, int64_t t);
// Stacks T tensors of shape [B,H] into [B,T,H].
Tensor StackTime(const std::vector<Tensor>& steps);

// ----- Softmax family (over the last dim) -----
Tensor Softmax(const Tensor& x);
Tensor LogSoftmax(const Tensor& x);

// ----- Embedding lookup -----
// Non-crashing bounds check over a flat id list: kInvalidArgument naming
// the first out-of-range id and its position, OK otherwise. The serving
// validation layer runs this before ids ever reach a gather kernel;
// EmbeddingGather itself re-checks and treats a failure as tensor-API
// misuse (DTDBD_CHECK), so hostile ids can never index the table.
Status ValidateTokenIds(const std::vector<int>& ids, int64_t vocab_size);

// table[V,E]; ids laid out row-major as [batch, time]; returns [batch,time,E].
Tensor EmbeddingGather(const Tensor& table, const std::vector<int>& ids,
                       int64_t batch, int64_t time);

// ----- Convolution over a token sequence (TextCNN) -----
// x[B,T,E], weight[C, k*E], bias[C], kernel width k; returns [B, T-k+1, C].
Tensor Conv1dSeq(const Tensor& x, const Tensor& weight, const Tensor& bias,
                 int64_t kernel_width);

// ----- Fused chains -----
// Each fused entry point records ONE graph node (one output buffer, saved
// ReLU mask) and is bitwise identical — forward and backward — to the
// unfused composition it replaces, which it also self-falls-back to when
// fusion is disabled (DTDBD_NO_FUSION / SetFusionEnabled(false)).
//
// relu(x[m,k] @ w[k,n] + bias[n]); replaces Relu(AddBias(MatMul(x, w), b)).
Tensor LinearRelu(const Tensor& x, const Tensor& w, const Tensor& bias);
// relu(Conv1dSeq(x, weight, bias, k)) — the TextCNN expert hot path.
Tensor Conv1dSeqRelu(const Tensor& x, const Tensor& weight,
                     const Tensor& bias, int64_t kernel_width);
// Batched matrix-vector product over time: x[B,T,N] · v (v is [N] or
// [N,1]) -> [B,T]. Replaces the Reshape -> MatMul -> Reshape chain in
// attention score computation.
Tensor MatVecOverTime(const Tensor& x, const Tensor& v);

// ----- Gradient reversal (domain adversarial training) -----
// Identity forward (zero-copy view); backward multiplies the incoming
// gradient by -lambda.
Tensor GradReverse(const Tensor& x, float lambda);

// ----- Dropout (inverted scaling). Identity when !training. -----
Tensor Dropout(const Tensor& x, double p, Rng* rng, bool training);

// ----- Layer normalization over the last dim -----
// x[..., N], gamma[N], beta[N]; y = gamma * (x - mean) / sqrt(var + eps) + beta.
Tensor LayerNormOp(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                   float eps = 1e-5f);

// ----- Attention-weighted pooling -----
// x[B,T,N], w[B,T] -> [B,N]; out[b,:] = sum_t w[b,t] * x[b,t,:].
Tensor WeightedSumOverTime(const Tensor& x, const Tensor& w);

// ----- Row-wise L2 normalization -----
// x[B,N] -> y with y[i,:] = x[i,:] / max(||x[i,:]||, eps).
Tensor RowL2Normalize(const Tensor& x, float eps = 1e-8f);

// ----- Pairwise squared Euclidean distances -----
// x[B,N] -> [B,B]; entry (i,j) = ||x_i - x_j||^2. This is the correlation
// matrix M of DTDBD Eq. (5).
Tensor PairwiseSquaredDistances(const Tensor& x);

}  // namespace dtdbd::tensor

#endif  // DTDBD_TENSOR_OPS_H_
