#include "tensor/optim.h"

#include <cmath>

namespace dtdbd::tensor {

Optimizer::Optimizer(std::vector<Tensor> params) : params_(std::move(params)) {
  for (const auto& p : params_) {
    DTDBD_CHECK(p.defined());
    DTDBD_CHECK(p.requires_grad()) << "optimizer given a frozen tensor";
  }
}

void Optimizer::ZeroGrad() {
  for (auto& p : params_) p.ZeroGrad();
}

Sgd::Sgd(std::vector<Tensor> params, float lr, float momentum,
         float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  velocity_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    velocity_[i].assign(params_[i].numel(), 0.0f);
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    float* data = params_[i].data().data();
    auto& grad = params_[i].grad();
    auto& vel = velocity_[i];
    const size_t n = static_cast<size_t>(params_[i].numel());
    for (size_t j = 0; j < n; ++j) {
      float g = grad[j] + weight_decay_ * data[j];
      if (momentum_ != 0.0f) {
        vel[j] = momentum_ * vel[j] + g;
        g = vel[j];
      }
      data[j] -= lr_ * g;
    }
  }
}

Adam::Adam(std::vector<Tensor> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    m_[i].assign(params_[i].numel(), 0.0f);
    v_[i].assign(params_[i].numel(), 0.0f);
  }
}

void Adam::Step() {
  ++step_count_;
  const float bc1 =
      1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bc2 =
      1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  for (size_t i = 0; i < params_.size(); ++i) {
    float* data = params_[i].data().data();
    auto& grad = params_[i].grad();
    auto& m = m_[i];
    auto& v = v_[i];
    const size_t n = static_cast<size_t>(params_[i].numel());
    for (size_t j = 0; j < n; ++j) {
      const float g = grad[j] + weight_decay_ * data[j];
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g * g;
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      data[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

AdamState Adam::ExportState() const {
  AdamState state;
  state.step_count = step_count_;
  state.m = m_;
  state.v = v_;
  return state;
}

Status Adam::ImportState(const AdamState& state) {
  if (state.m.size() != params_.size() || state.v.size() != params_.size()) {
    return Status::InvalidArgument(
        "Adam state has " + std::to_string(state.m.size()) +
        " slots, optimizer has " + std::to_string(params_.size()));
  }
  for (size_t i = 0; i < params_.size(); ++i) {
    const size_t n = static_cast<size_t>(params_[i].numel());
    if (state.m[i].size() != n || state.v[i].size() != n) {
      return Status::InvalidArgument(
          "Adam moment size mismatch at slot " + std::to_string(i));
    }
  }
  if (state.step_count < 0) {
    return Status::InvalidArgument("negative Adam step count");
  }
  step_count_ = state.step_count;
  m_ = state.m;
  v_ = state.v;
  return Status::Ok();
}

float ClipGradNorm(const std::vector<Tensor>& params, float max_norm) {
  DTDBD_CHECK_GT(max_norm, 0.0f);
  double total = 0.0;
  for (const auto& p : params) {
    for (float g : p.grad()) total += static_cast<double>(g) * g;
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm) {
    const float scale = max_norm / (norm + 1e-12f);
    for (const auto& p : params) {
      for (auto& g : const_cast<std::vector<float>&>(p.grad())) g *= scale;
    }
  }
  return norm;
}

}  // namespace dtdbd::tensor
