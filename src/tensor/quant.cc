#include "tensor/quant.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <string>
#include <utility>

#include "common/logging.h"

namespace dtdbd::tensor {

QuantizedMatrix QuantizeRowwise(const float* w, int64_t rows, int64_t cols) {
  QuantizedMatrix m;
  m.rows = rows;
  m.cols = cols;
  m.q.resize(static_cast<size_t>(rows * cols));
  m.scales.resize(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = w + r * cols;
    float maxabs = 0.0f;
    for (int64_t c = 0; c < cols; ++c) {
      maxabs = std::max(maxabs, std::fabs(row[c]));
    }
    if (maxabs == 0.0f) {
      m.scales[r] = 0.0f;
      // q already zero-initialized by resize.
      continue;
    }
    const float scale = maxabs / 127.0f;
    m.scales[r] = scale;
    const float inv = 1.0f / scale;
    int8_t* qrow = m.q.data() + r * cols;
    for (int64_t c = 0; c < cols; ++c) {
      long v = std::lroundf(row[c] * inv);
      if (v > 127) v = 127;
      if (v < -127) v = -127;
      qrow[c] = static_cast<int8_t>(v);
    }
  }
  return m;
}

std::vector<float> Dequantize(const QuantizedMatrix& m) {
  std::vector<float> out(static_cast<size_t>(m.rows * m.cols));
  for (int64_t r = 0; r < m.rows; ++r) {
    const float scale = m.scales[static_cast<size_t>(r)];
    const int8_t* qrow = m.q.data() + r * m.cols;
    float* orow = out.data() + r * m.cols;
    for (int64_t c = 0; c < m.cols; ++c) {
      orow[c] = static_cast<float>(qrow[c]) * scale;
    }
  }
  return out;
}

void Int8WeightSet::Add(const void* key, const float* w, int64_t rows,
                        int64_t cols) {
  QuantizedMatrix m = QuantizeRowwise(w, rows, cols);
  auto it = weights_.find(key);
  if (it != weights_.end()) {
    total_bytes_ -= it->second.bytes();
    it->second = std::move(m);
    total_bytes_ += it->second.bytes();
    return;
  }
  total_bytes_ += m.bytes();
  weights_.emplace(key, std::move(m));
}

const QuantizedMatrix* Int8WeightSet::Find(const void* key) const {
  auto it = weights_.find(key);
  return it == weights_.end() ? nullptr : &it->second;
}

std::unique_ptr<Int8WeightSet> QuantizeWeightMatrices(
    const std::vector<Tensor>& params) {
  auto set = std::make_unique<Int8WeightSet>();
  for (const Tensor& p : params) {
    if (p.ndim() != 2 || p.dim(0) <= 1 || p.dim(1) <= 1) continue;
    if (!p.contiguous()) continue;
    set->Add(p.storage_id(), p.data().data(), p.dim(0), p.dim(1));
  }
  return set;
}

namespace {

thread_local const Int8WeightSet* g_active_int8_weights = nullptr;

// Strict parse of DTDBD_INT8: unset/"0" → off, "1" → on, anything else →
// warn and pin off. Mirrors the ParsePositiveInt philosophy — an operator
// typo must never silently flip a serving-accuracy knob.
bool Int8Default() {
  const char* env = std::getenv("DTDBD_INT8");
  if (env == nullptr) return false;
  const std::string value(env);
  if (value == "0") return false;
  if (value == "1") return true;
  DTDBD_LOG(Warning) << "invalid DTDBD_INT8 value \"" << value
                     << "\" (want 0 or 1); int8 serving stays off";
  return false;
}

std::atomic<bool>& Int8Flag() {
  static std::atomic<bool> flag{Int8Default()};
  return flag;
}

}  // namespace

const Int8WeightSet* ActiveInt8Weights() { return g_active_int8_weights; }

ScopedInt8Weights::ScopedInt8Weights(const Int8WeightSet* set)
    : saved_(g_active_int8_weights) {
  g_active_int8_weights = set;
}

ScopedInt8Weights::~ScopedInt8Weights() { g_active_int8_weights = saved_; }

bool Int8Enabled() { return Int8Flag().load(std::memory_order_relaxed); }

void SetInt8Enabled(bool enabled) {
  Int8Flag().store(enabled, std::memory_order_relaxed);
}

}  // namespace dtdbd::tensor
