#include "tensor/init.h"

#include <cmath>

namespace dtdbd::tensor {

Tensor UniformInit(const Shape& shape, float bound, Rng* rng,
                   bool requires_grad) {
  DTDBD_CHECK(rng != nullptr);
  std::vector<float> data(NumElements(shape));
  for (auto& v : data) v = static_cast<float>(rng->Uniform(-bound, bound));
  return Tensor::FromData(shape, std::move(data), requires_grad);
}

Tensor XavierInit(const Shape& shape, int64_t fan_in, int64_t fan_out,
                  Rng* rng, bool requires_grad) {
  DTDBD_CHECK_GT(fan_in + fan_out, 0);
  const float bound =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return UniformInit(shape, bound, rng, requires_grad);
}

Tensor NormalInit(const Shape& shape, float stddev, Rng* rng,
                  bool requires_grad) {
  DTDBD_CHECK(rng != nullptr);
  std::vector<float> data(NumElements(shape));
  for (auto& v : data) v = static_cast<float>(rng->Normal(0.0, stddev));
  return Tensor::FromData(shape, std::move(data), requires_grad);
}

}  // namespace dtdbd::tensor
