// Deterministic parameter initializers.
#ifndef DTDBD_TENSOR_INIT_H_
#define DTDBD_TENSOR_INIT_H_

#include "common/rng.h"
#include "tensor/tensor.h"

namespace dtdbd::tensor {

// Uniform in [-bound, bound].
Tensor UniformInit(const Shape& shape, float bound, Rng* rng,
                   bool requires_grad = true);

// Glorot/Xavier uniform for a [fan_out, fan_in]-style weight.
Tensor XavierInit(const Shape& shape, int64_t fan_in, int64_t fan_out,
                  Rng* rng, bool requires_grad = true);

// N(0, stddev).
Tensor NormalInit(const Shape& shape, float stddev, Rng* rng,
                  bool requires_grad = true);

}  // namespace dtdbd::tensor

#endif  // DTDBD_TENSOR_INIT_H_
