#include "tensor/registry.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace dtdbd::tensor {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool g_profiling = false;
// Keyed by op pointer; only touched from the dispatching (main) thread —
// kernels fan work out through ParallelFor but dispatch itself is serial.
std::unordered_map<const Op*, OpStats>& StatsMap() {
  static auto* stats = new std::unordered_map<const Op*, OpStats>();
  return *stats;
}

}  // namespace

OpRegistry& OpRegistry::Get() {
  static auto* registry = new OpRegistry();  // leaked: outlives static dtors
  return *registry;
}

const Op* OpRegistry::Register(Op op) {
  DTDBD_CHECK(!op.name.empty());
  DTDBD_CHECK(by_name_.find(op.name) == by_name_.end())
      << "duplicate op registration: " << op.name;
  ops_.push_back(std::make_unique<Op>(std::move(op)));
  const Op* ptr = ops_.back().get();
  by_name_[ptr->name] = ptr;
  return ptr;
}

const Op* OpRegistry::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

std::vector<const Op*> OpRegistry::All() const {
  std::vector<const Op*> out;
  out.reserve(ops_.size());
  for (const auto& op : ops_) out.push_back(op.get());
  return out;
}

Tensor MakeOp(const Op* op, Shape shape, std::vector<float> data,
              std::vector<Tensor> inputs, std::shared_ptr<void> saved) {
  DTDBD_CHECK(op != nullptr);
  DTDBD_CHECK(op->arity == kVariadicArity ||
              static_cast<size_t>(op->arity) == inputs.size())
      << op->name << ": expected " << op->arity << " inputs, got "
      << inputs.size();
  auto node = std::make_shared<internal::Node>();
  node->shape = std::move(shape);
  node->numel = NumElements(node->shape);
  DTDBD_CHECK_EQ(node->numel, static_cast<int64_t>(data.size()))
      << op->name << ": kernel output size mismatch";
  node->strides = CanonicalStrides(node->shape);
  node->contiguous = true;
  node->storage = std::make_shared<internal::Storage>();
  node->storage->buf = std::move(data);
  node->op = op;
  bool any_grad = false;
  for (const auto& in : inputs) {
    DTDBD_CHECK(in.defined()) << op->name << ": undefined input";
    any_grad = any_grad || in.requires_grad();
  }
  if (GradEnabled() && any_grad) {
    node->requires_grad = true;
    for (const auto& in : inputs) node->inputs.push_back(in.node());
    node->saved = std::move(saved);
  }
  return Tensor::FromNode(std::move(node));
}

Tensor MakeView(const Op* op, Shape shape, Shape strides, int64_t offset,
                const Tensor& base, std::shared_ptr<void> saved) {
  DTDBD_CHECK(op != nullptr);
  DTDBD_CHECK(op->is_view) << op->name << " is not registered as a view";
  DTDBD_CHECK(base.defined()) << op->name << ": undefined input";
  auto node = std::make_shared<internal::Node>();
  node->shape = std::move(shape);
  node->strides = std::move(strides);
  node->offset = offset;
  node->numel = NumElements(node->shape);
  node->contiguous = IsContiguousLayout(node->shape, node->strides);
  node->storage = base.node()->storage;
  node->op = op;
  if (GradEnabled() && base.requires_grad()) {
    node->requires_grad = true;
    node->inputs.push_back(base.node());
    node->saved = std::move(saved);
  }
  return Tensor::FromNode(std::move(node));
}

void SetOpProfiling(bool enabled) { g_profiling = enabled; }
bool OpProfilingEnabled() { return g_profiling; }

std::map<std::string, OpStats> GetOpStats() {
  std::map<std::string, OpStats> out;
  for (const auto& [op, stats] : StatsMap()) out[op->name] = stats;
  return out;
}

void ResetOpStats() { StatsMap().clear(); }

std::string FormatOpStats() {
  struct Row {
    std::string name;
    OpStats stats;
  };
  std::vector<Row> rows;
  for (const auto& [name, stats] : GetOpStats()) rows.push_back({name, stats});
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.stats.forward_ns + a.stats.backward_ns >
           b.stats.forward_ns + b.stats.backward_ns;
  });
  std::ostringstream out;
  out << "op                        fwd_calls     fwd_ms bwd_calls     bwd_ms\n";
  char line[160];
  for (const Row& row : rows) {
    std::snprintf(line, sizeof(line), "%-24s %10llu %10.3f %9llu %10.3f\n",
                  row.name.c_str(),
                  static_cast<unsigned long long>(row.stats.forward_calls),
                  row.stats.forward_ns / 1e6,
                  static_cast<unsigned long long>(row.stats.backward_calls),
                  row.stats.backward_ns / 1e6);
    out << line;
  }
  return out.str();
}

void RecordForward(const Op* op, uint64_t ns) {
  OpStats& stats = StatsMap()[op];
  ++stats.forward_calls;
  stats.forward_ns += ns;
}

void RecordBackward(const Op* op, uint64_t ns) {
  OpStats& stats = StatsMap()[op];
  ++stats.backward_calls;
  stats.backward_ns += ns;
}

ScopedOpTimer::ScopedOpTimer(const Op* op)
    : op_(g_profiling ? op : nullptr), start_ns_(op_ ? NowNs() : 0) {}

ScopedOpTimer::~ScopedOpTimer() {
  if (op_ != nullptr) RecordForward(op_, NowNs() - start_ns_);
}

std::string DumpGraph(const Tensor& root) {
  DTDBD_CHECK(root.defined());
  using internal::Node;
  using internal::Storage;
  // Topological order over the recorded graph (same walk as Backward, but
  // ignoring requires_grad so frozen branches are shown too).
  std::vector<const Node*> order;
  std::unordered_set<const Node*> visited;
  std::vector<std::pair<const Node*, size_t>> stack;
  stack.emplace_back(root.node().get(), 0);
  visited.insert(root.node().get());
  while (!stack.empty()) {
    auto& [node, next_input] = stack.back();
    if (next_input < node->inputs.size()) {
      const Node* input = node->inputs[next_input++].get();
      if (visited.insert(input).second) stack.emplace_back(input, 0);
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }

  std::unordered_map<const Node*, int> node_id;
  for (const Node* node : order) {
    node_id[node] = static_cast<int>(node_id.size());
  }
  std::unordered_map<const Storage*, int> storage_id;
  std::ostringstream out;
  for (const Node* node : order) {
    auto sit = storage_id.emplace(node->storage.get(),
                                  static_cast<int>(storage_id.size()));
    out << "%" << node_id[node] << " = " << node->op_name() << "(";
    for (size_t i = 0; i < node->inputs.size(); ++i) {
      if (i > 0) out << ", ";
      out << "%" << node_id[node->inputs[i].get()];
    }
    out << ") " << ShapeToString(node->shape);
    if (node->contiguous) {
      out << " dense";
    } else {
      out << " view{strides=" << ShapeToString(node->strides)
          << ", offset=" << node->offset << "}";
    }
    out << " storage=S" << sit.first->second;
    if (node->requires_grad) out << " grad";
    out << "\n";
  }
  return out.str();
}

}  // namespace dtdbd::tensor
