#include "tensor/registry.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <sstream>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace dtdbd::tensor {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::atomic<bool> g_profiling{false};

// One atomic counter block per registered op, indexed by Op::id. Relaxed
// ordering is enough: counters are independent monotonic sums, and readers
// (GetOpStats) only run between steps, not concurrently with a kernel that
// matters for the numbers they report.
struct AtomicOpStats {
  std::atomic<uint64_t> forward_calls{0};
  std::atomic<uint64_t> forward_ns{0};
  std::atomic<uint64_t> backward_calls{0};
  std::atomic<uint64_t> backward_ns{0};
  std::atomic<uint64_t> nodes{0};
  std::atomic<uint64_t> allocs{0};
  std::atomic<uint64_t> bytes{0};
  std::atomic<uint64_t> graph_recorded{0};
};

// Leaked like the registry itself: ops record stats from static-init
// through static-destruction time.
std::vector<std::unique_ptr<AtomicOpStats>>& StatsSlabs() {
  static auto* slabs = new std::vector<std::unique_ptr<AtomicOpStats>>();
  return *slabs;
}

AtomicOpStats& SlabOf(const Op* op) { return *StatsSlabs()[op->id]; }

bool FusionDefault() {
  const char* env = std::getenv("DTDBD_NO_FUSION");
  return env == nullptr || std::string(env) == "0";
}

std::atomic<bool>& FusionFlag() {
  static std::atomic<bool> flag{FusionDefault()};
  return flag;
}

bool SimdDefault() {
  const char* env = std::getenv("DTDBD_NO_SIMD");
  return env == nullptr || std::string(env) == "0";
}

std::atomic<bool>& SimdFlag() {
  static std::atomic<bool> flag{SimdDefault()};
  return flag;
}

}  // namespace

bool FusionEnabled() {
  return FusionFlag().load(std::memory_order_relaxed);
}

void SetFusionEnabled(bool enabled) {
  FusionFlag().store(enabled, std::memory_order_relaxed);
}

bool SimdEnabled() {
  return SimdFlag().load(std::memory_order_relaxed);
}

void SetSimdEnabled(bool enabled) {
  SimdFlag().store(enabled, std::memory_order_relaxed);
}

OpRegistry& OpRegistry::Get() {
  static auto* registry = new OpRegistry();  // leaked: outlives static dtors
  return *registry;
}

const Op* OpRegistry::Register(Op op) {
  DTDBD_CHECK(!op.name.empty());
  DTDBD_CHECK(by_name_.find(op.name) == by_name_.end())
      << "duplicate op registration: " << op.name;
  op.id = static_cast<int>(ops_.size());
  ops_.push_back(std::make_unique<Op>(std::move(op)));
  const Op* ptr = ops_.back().get();
  by_name_[ptr->name] = ptr;
  StatsSlabs().push_back(std::make_unique<AtomicOpStats>());
  return ptr;
}

const Op* OpRegistry::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

std::vector<const Op*> OpRegistry::All() const {
  std::vector<const Op*> out;
  out.reserve(ops_.size());
  for (const auto& op : ops_) out.push_back(op.get());
  return out;
}

Tensor MakeOp(const Op* op, Shape shape, std::vector<float> data,
              std::vector<Tensor> inputs, std::shared_ptr<void> saved) {
  DTDBD_CHECK(op != nullptr);
  DTDBD_CHECK(op->arity == kVariadicArity ||
              static_cast<size_t>(op->arity) == inputs.size())
      << op->name << ": expected " << op->arity << " inputs, got "
      << inputs.size();
  auto node = std::make_shared<internal::Node>();
  node->shape = std::move(shape);
  node->numel = NumElements(node->shape);
  DTDBD_CHECK_EQ(node->numel, static_cast<int64_t>(data.size()))
      << op->name << ": kernel output size mismatch";
  node->strides = CanonicalStrides(node->shape);
  node->contiguous = true;
  node->storage = std::make_shared<internal::Storage>();
  node->storage->buf = std::move(data);
  node->op = op;
  if (g_profiling.load(std::memory_order_relaxed)) {
    AtomicOpStats& slab = SlabOf(op);
    slab.nodes.fetch_add(1, std::memory_order_relaxed);
    slab.allocs.fetch_add(1, std::memory_order_relaxed);
    slab.bytes.fetch_add(node->storage->buf.size() * sizeof(float),
                         std::memory_order_relaxed);
  }
  bool any_grad = false;
  for (const auto& in : inputs) {
    DTDBD_CHECK(in.defined()) << op->name << ": undefined input";
    any_grad = any_grad || in.requires_grad();
  }
  if (GradEnabled() && any_grad) {
    node->requires_grad = true;
    for (const auto& in : inputs) node->inputs.push_back(in.node());
    node->saved = std::move(saved);
    if (g_profiling.load(std::memory_order_relaxed)) {
      SlabOf(op).graph_recorded.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return Tensor::FromNode(std::move(node));
}

Tensor MakeView(const Op* op, Shape shape, Shape strides, int64_t offset,
                const Tensor& base, std::shared_ptr<void> saved) {
  DTDBD_CHECK(op != nullptr);
  DTDBD_CHECK(op->is_view) << op->name << " is not registered as a view";
  DTDBD_CHECK(base.defined()) << op->name << ": undefined input";
  auto node = std::make_shared<internal::Node>();
  node->shape = std::move(shape);
  node->strides = std::move(strides);
  node->offset = offset;
  node->numel = NumElements(node->shape);
  node->contiguous = IsContiguousLayout(node->shape, node->strides);
  node->storage = base.node()->storage;
  node->op = op;
  if (g_profiling.load(std::memory_order_relaxed)) {
    // Views add a graph node but neither allocate nor copy.
    SlabOf(op).nodes.fetch_add(1, std::memory_order_relaxed);
  }
  if (GradEnabled() && base.requires_grad()) {
    node->requires_grad = true;
    node->inputs.push_back(base.node());
    node->saved = std::move(saved);
    if (g_profiling.load(std::memory_order_relaxed)) {
      SlabOf(op).graph_recorded.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return Tensor::FromNode(std::move(node));
}

void SetOpProfiling(bool enabled) {
  g_profiling.store(enabled, std::memory_order_relaxed);
}
bool OpProfilingEnabled() {
  return g_profiling.load(std::memory_order_relaxed);
}

std::map<std::string, OpStats> GetOpStats() {
  std::map<std::string, OpStats> out;
  for (const Op* op : OpRegistry::Get().All()) {
    const AtomicOpStats& slab = SlabOf(op);
    OpStats stats;
    stats.forward_calls = slab.forward_calls.load(std::memory_order_relaxed);
    stats.forward_ns = slab.forward_ns.load(std::memory_order_relaxed);
    stats.backward_calls = slab.backward_calls.load(std::memory_order_relaxed);
    stats.backward_ns = slab.backward_ns.load(std::memory_order_relaxed);
    stats.nodes = slab.nodes.load(std::memory_order_relaxed);
    stats.allocs = slab.allocs.load(std::memory_order_relaxed);
    stats.bytes = slab.bytes.load(std::memory_order_relaxed);
    stats.graph_recorded = slab.graph_recorded.load(std::memory_order_relaxed);
    const bool touched = stats.forward_calls || stats.backward_calls ||
                         stats.nodes || stats.allocs || stats.bytes ||
                         stats.graph_recorded;
    if (touched) out[op->name] = stats;
  }
  return out;
}

void ResetOpStats() {
  for (const auto& slab : StatsSlabs()) {
    slab->forward_calls.store(0, std::memory_order_relaxed);
    slab->forward_ns.store(0, std::memory_order_relaxed);
    slab->backward_calls.store(0, std::memory_order_relaxed);
    slab->backward_ns.store(0, std::memory_order_relaxed);
    slab->nodes.store(0, std::memory_order_relaxed);
    slab->allocs.store(0, std::memory_order_relaxed);
    slab->bytes.store(0, std::memory_order_relaxed);
    slab->graph_recorded.store(0, std::memory_order_relaxed);
  }
}

OpStats TotalOpStats() {
  OpStats total;
  for (const auto& [name, stats] : GetOpStats()) {
    total.forward_calls += stats.forward_calls;
    total.forward_ns += stats.forward_ns;
    total.backward_calls += stats.backward_calls;
    total.backward_ns += stats.backward_ns;
    total.nodes += stats.nodes;
    total.allocs += stats.allocs;
    total.bytes += stats.bytes;
    total.graph_recorded += stats.graph_recorded;
  }
  return total;
}

std::string FormatOpStats() {
  struct Row {
    std::string name;
    OpStats stats;
  };
  std::vector<Row> rows;
  for (const auto& [name, stats] : GetOpStats()) rows.push_back({name, stats});
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.stats.forward_ns + a.stats.backward_ns >
           b.stats.forward_ns + b.stats.backward_ns;
  });
  std::ostringstream out;
  out << "op                        fwd_calls     fwd_ms bwd_calls     bwd_ms"
         "     nodes    allocs        KiB\n";
  char line[200];
  for (const Row& row : rows) {
    std::snprintf(line, sizeof(line),
                  "%-24s %10llu %10.3f %9llu %10.3f %9llu %9llu %10.1f\n",
                  row.name.c_str(),
                  static_cast<unsigned long long>(row.stats.forward_calls),
                  row.stats.forward_ns / 1e6,
                  static_cast<unsigned long long>(row.stats.backward_calls),
                  row.stats.backward_ns / 1e6,
                  static_cast<unsigned long long>(row.stats.nodes),
                  static_cast<unsigned long long>(row.stats.allocs),
                  row.stats.bytes / 1024.0);
    out << line;
  }
  return out.str();
}

void RecordForward(const Op* op, uint64_t ns) {
  AtomicOpStats& slab = SlabOf(op);
  slab.forward_calls.fetch_add(1, std::memory_order_relaxed);
  slab.forward_ns.fetch_add(ns, std::memory_order_relaxed);
}

void RecordBackward(const Op* op, uint64_t ns) {
  AtomicOpStats& slab = SlabOf(op);
  slab.backward_calls.fetch_add(1, std::memory_order_relaxed);
  slab.backward_ns.fetch_add(ns, std::memory_order_relaxed);
}

ScopedOpTimer::ScopedOpTimer(const Op* op)
    : op_(OpProfilingEnabled() ? op : nullptr),
      start_ns_(op_ ? NowNs() : 0) {}

ScopedOpTimer::~ScopedOpTimer() {
  if (op_ != nullptr) RecordForward(op_, NowNs() - start_ns_);
}

std::string DumpGraph(const Tensor& root) {
  DTDBD_CHECK(root.defined());
  using internal::Node;
  using internal::Storage;
  // Topological order over the recorded graph (same walk as Backward, but
  // ignoring requires_grad so frozen branches are shown too).
  std::vector<const Node*> order;
  std::unordered_set<const Node*> visited;
  std::vector<std::pair<const Node*, size_t>> stack;
  stack.emplace_back(root.node().get(), 0);
  visited.insert(root.node().get());
  while (!stack.empty()) {
    auto& [node, next_input] = stack.back();
    if (next_input < node->inputs.size()) {
      const Node* input = node->inputs[next_input++].get();
      if (visited.insert(input).second) stack.emplace_back(input, 0);
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }

  std::unordered_map<const Node*, int> node_id;
  for (const Node* node : order) {
    node_id[node] = static_cast<int>(node_id.size());
  }
  std::unordered_map<const Storage*, int> storage_id;
  std::ostringstream out;
  for (const Node* node : order) {
    auto sit = storage_id.emplace(node->storage.get(),
                                  static_cast<int>(storage_id.size()));
    out << "%" << node_id[node] << " = " << node->op_name() << "(";
    for (size_t i = 0; i < node->inputs.size(); ++i) {
      if (i > 0) out << ", ";
      out << "%" << node_id[node->inputs[i].get()];
    }
    out << ") " << ShapeToString(node->shape);
    if (node->contiguous) {
      out << " dense";
    } else {
      out << " view{strides=" << ShapeToString(node->strides)
          << ", offset=" << node->offset << "}";
    }
    out << " storage=S" << sit.first->second;
    if (node->requires_grad) out << " grad";
    out << "\n";
  }
  return out.str();
}

}  // namespace dtdbd::tensor
