// Loss functions. All return scalar tensors (mean over the batch) and are
// differentiable with respect to their logits arguments.
//
// CrossEntropyLoss and DistillKlLoss record a single fused graph node
// (SoftmaxCrossEntropy / SoftmaxKl) that computes the softmax once and
// applies the closed-form backward. When fusion is disabled
// (DTDBD_NO_FUSION / SetFusionEnabled(false)) they fall back to the
// reference composition of primitive ops (LogSoftmax + NllLoss, resp.
// ScalarMul + LogSoftmax + KlFromLogProbs); both paths produce bitwise
// identical losses and gradients.
#ifndef DTDBD_TENSOR_LOSS_H_
#define DTDBD_TENSOR_LOSS_H_

#include <vector>

#include "tensor/tensor.h"

namespace dtdbd::tensor {

// Softmax cross entropy: logits [B,C], labels[i] in [0,C).
Tensor CrossEntropyLoss(const Tensor& logits, const std::vector<int>& labels);

// Temperature-scaled distillation KL (Hinton 2015; DTDBD Eq. 6 and 12):
//   tau^2 * mean_rows KL( softmax(teacher/tau) || softmax(student/tau) ).
// The teacher side is treated as a constant (no gradient flows to it even if
// it requires grad), matching the frozen-teacher setting.
Tensor DistillKlLoss(const Tensor& teacher_logits, const Tensor& student_logits,
                     float tau);

// Negative entropy of softmax(logits), averaged over rows (DTDBD Eq. 10):
//   mean_rows sum_c p_c log p_c.
// Minimizing this maximizes the entropy of the domain classifier output,
// which is the information-entropy term of the DAT-IE loss.
Tensor NegativeEntropyLoss(const Tensor& logits);

// Mean squared error between same-shape tensors.
Tensor MseLoss(const Tensor& a, const Tensor& b);

}  // namespace dtdbd::tensor

#endif  // DTDBD_TENSOR_LOSS_H_
