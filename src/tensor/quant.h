// Int8 weight quantization for the serving eval path (DESIGN.md §8).
//
// Weights are quantized ONCE, at checkpoint/session load, with per-row
// symmetric scales: scale_r = maxabs(row_r) / 127, q = round(w / scale_r)
// clamped to [-127, 127]. Activations stay fp32 end to end; the matmul /
// linear kernels dequantize in-register (q * scale folded into the
// per-element multiplier), so there is no int8 activation path and no
// calibration step. The contract is explicitly NOT bitwise: the int8 path
// is NMSE-bounded against the fp32 oracle (pinned by quantize_test and
// reported per-op and end-to-end by the benches).
//
// Ownership: an Int8WeightSet is built by serve::InferenceSession from the
// live parameter tensors of a loaded model and keyed by Tensor::storage_id(),
// so a kernel can look up "is this weight quantized?" by pointer identity
// with zero per-call hashing of tensor contents. The set is installed as a
// thread-local ambient scope (ScopedInt8Weights) only around eval forwards;
// training paths (GradEnabled()) never consult it.
#ifndef DTDBD_TENSOR_QUANT_H_
#define DTDBD_TENSOR_QUANT_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "tensor/tensor.h"

namespace dtdbd::tensor {

// One row-major int8 matrix plus its per-row dequantization scales.
struct QuantizedMatrix {
  int64_t rows = 0;
  int64_t cols = 0;
  std::vector<int8_t> q;      // rows * cols, row-major
  std::vector<float> scales;  // rows; 0.0f for an all-zero row (q == 0)

  int64_t bytes() const {
    return static_cast<int64_t>(q.size() * sizeof(int8_t) +
                                scales.size() * sizeof(float));
  }
};

// Per-row symmetric quantization of a row-major [rows, cols] fp32 matrix.
// An all-zero row gets scale 0 and all-zero codes (dequantizes exactly).
QuantizedMatrix QuantizeRowwise(const float* w, int64_t rows, int64_t cols);

// Dequantizes back to fp32 (test/NMSE helper; kernels dequantize in-register
// and never materialize this).
std::vector<float> Dequantize(const QuantizedMatrix& m);

// The quantized twins of a model's weight matrices, keyed by the storage
// identity of the live fp32 parameter they shadow.
class Int8WeightSet {
 public:
  // Quantizes w ([rows, cols], row-major, inner-dense) and files it under
  // `key` (the parameter tensor's storage_id()). Re-adding a key replaces
  // the entry (hot-reload builds a fresh set instead, but be safe).
  void Add(const void* key, const float* w, int64_t rows, int64_t cols);

  // Returns the quantized twin for `key`, or nullptr if this weight was
  // never quantized. Callers must still shape-check the result against the
  // operand they are about to multiply.
  const QuantizedMatrix* Find(const void* key) const;

  int64_t total_bytes() const { return total_bytes_; }
  int64_t size() const { return static_cast<int64_t>(weights_.size()); }

 private:
  std::unordered_map<const void*, QuantizedMatrix> weights_;
  int64_t total_bytes_ = 0;
};

// Quantizes every true weight matrix in `params` — contiguous, 2D, both
// dims > 1 — into a fresh set keyed by storage identity. This is THE
// eligibility rule: the serving session and the offline evaluator both
// build their sets through it, so the two paths quantize identical fp32
// weights identically and stay bitwise-comparable under DTDBD_INT8=1.
std::unique_ptr<Int8WeightSet> QuantizeWeightMatrices(
    const std::vector<Tensor>& params);

// Thread-local ambient set consulted by the MatMul / LinearRelu eval
// kernels. Null (the default) means "serve fp32".
const Int8WeightSet* ActiveInt8Weights();

// RAII installer for the ambient set; restores the previous value so eval
// scopes nest with training code on the same thread.
class ScopedInt8Weights {
 public:
  explicit ScopedInt8Weights(const Int8WeightSet* set);
  ~ScopedInt8Weights();
  ScopedInt8Weights(const ScopedInt8Weights&) = delete;
  ScopedInt8Weights& operator=(const ScopedInt8Weights&) = delete;

 private:
  const Int8WeightSet* saved_;
};

// Process-wide default for "quantize weights at session load". The initial
// value comes from DTDBD_INT8 with a strict parse: unset or "0" → off,
// "1" → on, anything else → warn once and pin off (never a silent guess).
// The --int8 serving flag resolves through serve::ResolveInt8 and calls
// SetInt8Enabled before sessions are constructed.
bool Int8Enabled();
void SetInt8Enabled(bool enabled);

}  // namespace dtdbd::tensor

#endif  // DTDBD_TENSOR_QUANT_H_
