#include "tensor/serialize.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

namespace dtdbd::tensor {

namespace {

constexpr char kMagic[4] = {'D', 'T', 'D', 'B'};
constexpr uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteBytes(std::FILE* f, const void* data, size_t n) {
  return std::fwrite(data, 1, n, f) == n;
}

bool ReadBytes(std::FILE* f, void* data, size_t n) {
  return std::fread(data, 1, n, f) == n;
}

}  // namespace

Status SaveTensors(const std::map<std::string, Tensor>& tensors,
                   const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IoError("cannot open for write: " + path);
  const uint64_t count = tensors.size();
  if (!WriteBytes(f.get(), kMagic, 4) ||
      !WriteBytes(f.get(), &kVersion, sizeof(kVersion)) ||
      !WriteBytes(f.get(), &count, sizeof(count))) {
    return Status::IoError("write failed: " + path);
  }
  for (const auto& [name, t] : tensors) {
    if (!t.defined()) return Status::InvalidArgument("undefined tensor: " + name);
    const uint64_t name_len = name.size();
    const uint64_t ndim = t.shape().size();
    if (!WriteBytes(f.get(), &name_len, sizeof(name_len)) ||
        !WriteBytes(f.get(), name.data(), name.size()) ||
        !WriteBytes(f.get(), &ndim, sizeof(ndim)) ||
        !WriteBytes(f.get(), t.shape().data(), ndim * sizeof(int64_t)) ||
        !WriteBytes(f.get(), t.data().data(),
                    t.data().size() * sizeof(float))) {
      return Status::IoError("write failed: " + path);
    }
  }
  return Status::Ok();
}

StatusOr<std::map<std::string, Tensor>> LoadTensors(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IoError("cannot open for read: " + path);
  char magic[4];
  uint32_t version = 0;
  uint64_t count = 0;
  if (!ReadBytes(f.get(), magic, 4) ||
      std::memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument("bad magic in " + path);
  }
  if (!ReadBytes(f.get(), &version, sizeof(version)) || version != kVersion) {
    return Status::InvalidArgument("unsupported version in " + path);
  }
  if (!ReadBytes(f.get(), &count, sizeof(count))) {
    return Status::IoError("truncated header in " + path);
  }
  std::map<std::string, Tensor> result;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t name_len = 0;
    if (!ReadBytes(f.get(), &name_len, sizeof(name_len)) ||
        name_len > (1u << 20)) {
      return Status::IoError("truncated entry in " + path);
    }
    std::string name(name_len, '\0');
    uint64_t ndim = 0;
    if (!ReadBytes(f.get(), name.data(), name_len) ||
        !ReadBytes(f.get(), &ndim, sizeof(ndim)) || ndim > 8) {
      return Status::IoError("truncated entry in " + path);
    }
    Shape shape(ndim);
    if (!ReadBytes(f.get(), shape.data(), ndim * sizeof(int64_t))) {
      return Status::IoError("truncated shape in " + path);
    }
    const int64_t n = NumElements(shape);
    std::vector<float> data(n);
    if (!ReadBytes(f.get(), data.data(), n * sizeof(float))) {
      return Status::IoError("truncated data in " + path);
    }
    result.emplace(std::move(name),
                   Tensor::FromData(shape, std::move(data)));
  }
  return result;
}

Status RestoreInto(const std::map<std::string, Tensor>& loaded,
                   std::map<std::string, Tensor>* params) {
  DTDBD_CHECK(params != nullptr);
  for (auto& [name, dst] : *params) {
    auto it = loaded.find(name);
    if (it == loaded.end()) {
      return Status::NotFound("missing parameter: " + name);
    }
    if (it->second.shape() != dst.shape()) {
      return Status::InvalidArgument(
          "shape mismatch for " + name + ": saved " +
          ShapeToString(it->second.shape()) + " vs model " +
          ShapeToString(dst.shape()));
    }
    dst.data() = it->second.data();
  }
  return Status::Ok();
}

}  // namespace dtdbd::tensor
