#include "tensor/serialize.h"

#include <array>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "common/io.h"

namespace dtdbd::tensor {

namespace {

constexpr char kMagic[4] = {'D', 'T', 'D', 'B'};
constexpr uint32_t kVersionLegacy = 1;  // no per-entry CRC
constexpr uint32_t kVersion = 2;

// Hard ceilings on header fields; anything larger is rejected before any
// allocation is attempted.
constexpr uint64_t kMaxEntries = 1u << 20;
constexpr uint64_t kMaxNameLen = 1u << 16;
constexpr uint64_t kMaxNdim = 8;
constexpr int64_t kMaxElements = int64_t{1} << 40;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

// Stream reader that refuses to read past the known file size, so hostile
// length fields can never trigger oversized reads or allocations.
class BoundedReader {
 public:
  BoundedReader(std::FILE* f, int64_t size) : f_(f), size_(size) {}

  int64_t remaining() const { return size_ - pos_; }

  bool Read(void* data, int64_t n) {
    if (n < 0 || n > remaining()) return false;
    if (std::fread(data, 1, static_cast<size_t>(n), f_) !=
        static_cast<size_t>(n)) {
      return false;
    }
    pos_ += n;
    return true;
  }

  template <typename T>
  bool ReadScalar(T* value) {
    return Read(value, sizeof(T));
  }

 private:
  std::FILE* f_;
  int64_t size_;
  int64_t pos_ = 0;
};

// Element count of a shape with explicit overflow/negativity checks.
Status CheckedNumElements(const Shape& shape, int64_t* out) {
  int64_t n = 1;
  for (int64_t d : shape) {
    if (d < 0) return Status::InvalidArgument("negative dimension");
    if (d > 0 && n > kMaxElements / d) {
      return Status::InvalidArgument("absurd tensor size");
    }
    n *= d;
  }
  *out = n;
  return Status::Ok();
}

Status ReadOneTensor(BoundedReader* reader, uint32_t version,
                     const std::string& path, std::string* name_out,
                     Tensor* tensor_out) {
  uint64_t name_len = 0;
  if (!reader->ReadScalar(&name_len)) {
    return Status::IoError("truncated entry in " + path);
  }
  if (name_len > kMaxNameLen) {
    return Status::InvalidArgument("absurd name length in " + path);
  }
  uint32_t crc = Crc32(&name_len, sizeof(name_len));
  std::string name(name_len, '\0');
  uint64_t ndim = 0;
  if (!reader->Read(name.data(), static_cast<int64_t>(name_len)) ||
      !reader->ReadScalar(&ndim)) {
    return Status::IoError("truncated entry in " + path);
  }
  if (ndim > kMaxNdim) {
    return Status::InvalidArgument("absurd ndim in " + path);
  }
  crc = Crc32(name.data(), name.size(), crc);
  crc = Crc32(&ndim, sizeof(ndim), crc);
  Shape shape(ndim);
  if (!reader->Read(shape.data(),
                    static_cast<int64_t>(ndim * sizeof(int64_t)))) {
    return Status::IoError("truncated shape in " + path);
  }
  crc = Crc32(shape.data(), ndim * sizeof(int64_t), crc);
  int64_t n = 0;
  DTDBD_RETURN_IF_ERROR(CheckedNumElements(shape, &n));
  if (n * static_cast<int64_t>(sizeof(float)) > reader->remaining()) {
    return Status::IoError("truncated data in " + path);
  }
  std::vector<float> data(n);
  if (!reader->Read(data.data(), n * static_cast<int64_t>(sizeof(float)))) {
    return Status::IoError("truncated data in " + path);
  }
  if (version >= kVersion) {
    crc = Crc32(data.data(), data.size() * sizeof(float), crc);
    uint32_t stored = 0;
    if (!reader->ReadScalar(&stored)) {
      return Status::IoError("truncated CRC in " + path);
    }
    if (stored != crc) {
      return Status::InvalidArgument("CRC mismatch for entry '" + name +
                                     "' in " + path);
    }
  }
  *name_out = std::move(name);
  *tensor_out = Tensor::FromData(shape, std::move(data));
  return Status::Ok();
}

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t crc) {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

Status SaveTensors(const std::map<std::string, Tensor>& tensors,
                   const std::string& path) {
  std::string bytes;
  auto append = [&bytes](const void* data, size_t n) {
    bytes.append(static_cast<const char*>(data), n);
  };
  const uint64_t count = tensors.size();
  append(kMagic, 4);
  append(&kVersion, sizeof(kVersion));
  append(&count, sizeof(count));
  for (const auto& [name, t] : tensors) {
    if (!t.defined()) return Status::InvalidArgument("undefined tensor: " + name);
    // Views are materialized to logical row-major order here, so the
    // on-disk format stays layout-free and old files remain readable.
    const std::vector<float> data = t.ToVector();
    const uint64_t name_len = name.size();
    const uint64_t ndim = t.shape().size();
    uint32_t crc = Crc32(&name_len, sizeof(name_len));
    crc = Crc32(name.data(), name.size(), crc);
    crc = Crc32(&ndim, sizeof(ndim), crc);
    crc = Crc32(t.shape().data(), ndim * sizeof(int64_t), crc);
    crc = Crc32(data.data(), data.size() * sizeof(float), crc);
    append(&name_len, sizeof(name_len));
    append(name.data(), name.size());
    append(&ndim, sizeof(ndim));
    append(t.shape().data(), ndim * sizeof(int64_t));
    append(data.data(), data.size() * sizeof(float));
    append(&crc, sizeof(crc));
  }
  // Atomic publish (temp file + fsync + rename): a hot-reloading server that
  // races a concurrent save never loads a half-written file.
  return AtomicWriteFile(path, bytes);
}

StatusOr<std::map<std::string, Tensor>> LoadTensors(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IoError("cannot open for read: " + path);
  if (std::fseek(f.get(), 0, SEEK_END) != 0) {
    return Status::IoError("cannot seek: " + path);
  }
  const long file_size = std::ftell(f.get());
  if (file_size < 0) return Status::IoError("cannot stat: " + path);
  std::rewind(f.get());

  BoundedReader reader(f.get(), file_size);
  char magic[4];
  uint32_t version = 0;
  uint64_t count = 0;
  if (!reader.Read(magic, 4) || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument("bad magic in " + path);
  }
  if (!reader.ReadScalar(&version) ||
      (version != kVersionLegacy && version != kVersion)) {
    return Status::InvalidArgument("unsupported version in " + path);
  }
  if (!reader.ReadScalar(&count)) {
    return Status::IoError("truncated header in " + path);
  }
  if (count > kMaxEntries) {
    return Status::InvalidArgument("absurd entry count in " + path);
  }
  std::map<std::string, Tensor> result;
  for (uint64_t i = 0; i < count; ++i) {
    std::string name;
    Tensor t;
    DTDBD_RETURN_IF_ERROR(ReadOneTensor(&reader, version, path, &name, &t));
    result.emplace(std::move(name), std::move(t));
  }
  if (reader.remaining() != 0) {
    return Status::InvalidArgument("trailing bytes in " + path);
  }
  return result;
}

Status RestoreInto(const std::map<std::string, Tensor>& loaded,
                   std::map<std::string, Tensor>* params) {
  DTDBD_CHECK(params != nullptr);
  for (auto& [name, dst] : *params) {
    auto it = loaded.find(name);
    if (it == loaded.end()) {
      return Status::NotFound("missing parameter: " + name);
    }
    if (it->second.shape() != dst.shape()) {
      return Status::InvalidArgument(
          "shape mismatch for " + name + ": saved " +
          ShapeToString(it->second.shape()) + " vs model " +
          ShapeToString(dst.shape()));
    }
    dst.CopyDataFrom(it->second);
  }
  return Status::Ok();
}

}  // namespace dtdbd::tensor
