// Binary (de)serialization of named parameter sets. Format v2:
//   magic "DTDB" | u32 version |u64 count |
//   per entry: u64 name_len | name bytes | u64 ndim | i64 dims[] |
//              f32 data[] | u32 crc32(name..data)
// Version 1 files (no per-entry CRC) are still readable. All reads are
// bounds-checked against the file size so a hostile or truncated file can
// never trigger a huge allocation or a partial load.
#ifndef DTDBD_TENSOR_SERIALIZE_H_
#define DTDBD_TENSOR_SERIALIZE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "common/status.h"
#include "tensor/tensor.h"

namespace dtdbd::tensor {

// CRC-32 (IEEE, reflected). Chainable: Crc32(b, nb, Crc32(a, na)) equals the
// CRC of the concatenation a||b. Used for per-entry integrity in tensor and
// checkpoint files.
uint32_t Crc32(const void* data, size_t n, uint32_t crc = 0);

// Writes the named tensors to `path` (format v2, per-entry CRC32).
Status SaveTensors(const std::map<std::string, Tensor>& tensors,
                   const std::string& path);

// Reads tensors from `path`. Loaded tensors are leaves with
// requires_grad=false; callers re-enable grad as needed. Truncated files
// yield kIoError, corrupt or absurd metadata kInvalidArgument; on any error
// no partial data is returned.
StatusOr<std::map<std::string, Tensor>> LoadTensors(const std::string& path);

// Copies loaded values into an existing parameter map (shapes must match).
Status RestoreInto(const std::map<std::string, Tensor>& loaded,
                   std::map<std::string, Tensor>* params);

}  // namespace dtdbd::tensor

#endif  // DTDBD_TENSOR_SERIALIZE_H_
