// Binary (de)serialization of named parameter sets. Format:
//   magic "DTDB" | u32 version | u64 count |
//   per entry: u64 name_len | name bytes | u64 ndim | i64 dims[] | f32 data[]
#ifndef DTDBD_TENSOR_SERIALIZE_H_
#define DTDBD_TENSOR_SERIALIZE_H_

#include <map>
#include <string>

#include "common/status.h"
#include "tensor/tensor.h"

namespace dtdbd::tensor {

// Writes the named tensors to `path`.
Status SaveTensors(const std::map<std::string, Tensor>& tensors,
                   const std::string& path);

// Reads tensors from `path`. Loaded tensors are leaves with
// requires_grad=false; callers re-enable grad as needed.
StatusOr<std::map<std::string, Tensor>> LoadTensors(const std::string& path);

// Copies loaded values into an existing parameter map (shapes must match).
Status RestoreInto(const std::map<std::string, Tensor>& loaded,
                   std::map<std::string, Tensor>* params);

}  // namespace dtdbd::tensor

#endif  // DTDBD_TENSOR_SERIALIZE_H_
