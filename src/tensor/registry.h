// Typed op registry for the tensor engine.
//
// Every differentiable operation is a named `Op` entry: name, arity, and a
// backward kernel that reads the saved forward context off the node. The
// public functions in ops.h/loss.h are thin typed front-ends that run the
// forward kernel and record an op node through MakeOp / MakeView. Benefits
// over the previous anonymous-closure design:
//   * the graph is introspectable (DumpGraph prints op names, shapes,
//     storage aliasing),
//   * per-op wall-clock counters come for free (SetOpProfiling),
//   * later PRs can hook tracing / fusion / alternate backends at a single
//     dispatch point instead of per-callsite closures.
#ifndef DTDBD_TENSOR_REGISTRY_H_
#define DTDBD_TENSOR_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace dtdbd::tensor {

namespace internal {
struct Node;
}  // namespace internal

// A registered operation. Backward kernels accumulate into the dense
// logical gradient buffers of self->inputs; the saved forward context (per
// op state such as dropout masks or argmax indices) lives in self->saved.
struct Op {
  std::string name;
  // Number of tensor inputs; kVariadic for ops like ConcatLastDim.
  int arity = 0;
  // Null for ops that never propagate gradient (e.g. leaves).
  void (*backward)(internal::Node* self) = nullptr;
  // True when the op's output aliases its input's storage (zero-copy view).
  bool is_view = false;
  // Dense index into the registry's per-op stats slabs; assigned by
  // Register(). Registration sites brace-init the fields above and leave
  // this one alone.
  int id = -1;
};

inline constexpr int kVariadicArity = -1;

class OpRegistry {
 public:
  static OpRegistry& Get();

  // Registers an op under a unique name; dies on duplicates. The returned
  // pointer is stable for the process lifetime.
  const Op* Register(Op op);

  // Null when no op with that name exists.
  const Op* Find(const std::string& name) const;

  // All registered ops in registration order.
  std::vector<const Op*> All() const;

 private:
  std::vector<std::unique_ptr<Op>> ops_;
  std::map<std::string, const Op*> by_name_;
};

// ----- Node construction (used by ops.cc / loss.cc) -----

// Creates a dense op output node. `inputs` are recorded (and `saved`
// retained for backward) only when gradient mode is on and at least one
// input is differentiable.
Tensor MakeOp(const Op* op, Shape shape, std::vector<float> data,
              std::vector<Tensor> inputs,
              std::shared_ptr<void> saved = nullptr);

// Creates a zero-copy view node over base's storage.
Tensor MakeView(const Op* op, Shape shape, Shape strides, int64_t offset,
                const Tensor& base, std::shared_ptr<void> saved = nullptr);

// ----- Op fusion toggle -----

// Fused kernels (LinearRelu, Conv1dSeqRelu, MatVecOverTime, and the
// softmax-fused losses SoftmaxCrossEntropy / SoftmaxKl) are enabled by
// default. Every fused public entry point self-falls-back to its unfused
// reference composition of primitive ops when fusion is off, so callers
// never branch. The initial value comes from the environment: setting
// DTDBD_NO_FUSION to anything other than "0" disables fusion process-wide.
bool FusionEnabled();
void SetFusionEnabled(bool enabled);

// ----- SIMD dispatch toggle -----

// Runtime-dispatched vector fast paths (the AVX-512 row-blocked Conv1dSeq
// kernel plus the MatMul / LinearRelu / MatVecOverTime / softmax-row /
// LayerNorm / EmbeddingGather paths) are enabled by default and are bitwise
// identical to their scalar reference loops, so callers never branch.
// Setting DTDBD_NO_SIMD to anything other than "0" pins the scalar paths
// process-wide (used by tests to produce the scalar oracle).
bool SimdEnabled();
void SetSimdEnabled(bool enabled);

// ----- Per-op profiling counters -----

struct OpStats {
  uint64_t forward_calls = 0;
  uint64_t forward_ns = 0;
  uint64_t backward_calls = 0;
  uint64_t backward_ns = 0;
  // Graph-shape counters (hardware-independent perf signal): op nodes
  // recorded, dense output buffers allocated, and bytes in those buffers.
  uint64_t nodes = 0;
  uint64_t allocs = 0;
  uint64_t bytes = 0;
  // Nodes that actually entered the autograd graph (inputs + saved state
  // retained for backward). Zero under NoGradGuard / for frozen inputs —
  // the serving fast-path invariant InferenceSession tests assert.
  uint64_t graph_recorded = 0;
};

// Profiling is off by default, and when disabled the hot path performs no
// clock reads and no counter writes. When enabled, counters accumulate into
// per-op relaxed atomics owned by the registry, so kernels that record
// nodes or timings from thread-pool workers stay race-free.
void SetOpProfiling(bool enabled);
bool OpProfilingEnabled();
std::map<std::string, OpStats> GetOpStats();
void ResetOpStats();
// Sum of GetOpStats() across all ops (bench convenience).
OpStats TotalOpStats();
// One line per op, sorted by total wall-clock, e.g. for bench logs.
std::string FormatOpStats();

// Internal accounting hooks (called by ScopedOpTimer and Backward()).
void RecordForward(const Op* op, uint64_t ns);
void RecordBackward(const Op* op, uint64_t ns);

// RAII forward timer; a no-op unless profiling is enabled.
class ScopedOpTimer {
 public:
  explicit ScopedOpTimer(const Op* op);
  ~ScopedOpTimer();
  ScopedOpTimer(const ScopedOpTimer&) = delete;
  ScopedOpTimer& operator=(const ScopedOpTimer&) = delete;

 private:
  const Op* op_;
  uint64_t start_ns_;
};

// ----- Graph introspection -----

// Human-readable dump of the autograd graph below `root` in topological
// order: node id, op name, shape, layout, and which nodes share storage.
std::string DumpGraph(const Tensor& root);

}  // namespace dtdbd::tensor

#endif  // DTDBD_TENSOR_REGISTRY_H_
