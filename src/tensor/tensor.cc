#include "tensor/tensor.h"

#include <algorithm>
#include <chrono>
#include <ostream>
#include <sstream>
#include <unordered_set>

#include "tensor/registry.h"

namespace dtdbd::tensor {

namespace {

thread_local bool g_grad_enabled = true;

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

int64_t NumElements(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    DTDBD_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) out << ", ";
    out << shape[i];
  }
  out << "]";
  return out.str();
}

Shape CanonicalStrides(const Shape& shape) {
  Shape strides(shape.size());
  int64_t acc = 1;
  for (int i = static_cast<int>(shape.size()) - 1; i >= 0; --i) {
    strides[i] = acc;
    acc *= shape[i];
  }
  return strides;
}

bool IsContiguousLayout(const Shape& shape, const Shape& strides) {
  DTDBD_CHECK_EQ(shape.size(), strides.size());
  int64_t expect = 1;
  for (int i = static_cast<int>(shape.size()) - 1; i >= 0; --i) {
    if (shape[i] == 0) return true;  // no elements: trivially dense
    if (shape[i] == 1) continue;     // stride irrelevant for extent-1 dims
    if (strides[i] != expect) return false;
    expect *= shape[i];
  }
  return true;
}

namespace internal {

const char* Node::op_name() const { return op ? op->name.c_str() : "leaf"; }

}  // namespace internal

std::vector<float> ConstDataRef::ToVector() const {
  std::vector<float> out(static_cast<size_t>(node_->numel));
  if (node_->contiguous) {
    std::copy_n(node_->cdata(), out.size(), out.data());
  } else {
    for (int64_t i = 0; i < node_->numel; ++i) {
      out[static_cast<size_t>(i)] = node_->storage->buf[node_->PhysIndex(i)];
    }
  }
  return out;
}

bool operator==(const ConstDataRef& a, const ConstDataRef& b) {
  return a.ToVector() == b.ToVector();
}
bool operator==(const ConstDataRef& a, const std::vector<float>& b) {
  return a.ToVector() == b;
}
bool operator==(const std::vector<float>& a, const ConstDataRef& b) {
  return b == a;
}

namespace {
std::ostream& PrintElements(std::ostream& os, const std::vector<float>& v) {
  os << "{";
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) os << ", ";
    os << v[i];
  }
  return os << "}";
}
}  // namespace

std::ostream& operator<<(std::ostream& os, const ConstDataRef& ref) {
  return PrintElements(os, ref.ToVector());
}
std::ostream& operator<<(std::ostream& os, const DataRef& ref) {
  return PrintElements(os, ref.ToVector());
}

Tensor Tensor::Zeros(const Shape& shape, bool requires_grad) {
  return Full(shape, 0.0f, requires_grad);
}

Tensor Tensor::Full(const Shape& shape, float value, bool requires_grad) {
  std::vector<float> data(static_cast<size_t>(NumElements(shape)), value);
  return FromData(shape, std::move(data), requires_grad);
}

Tensor Tensor::FromData(const Shape& shape, std::vector<float> data,
                        bool requires_grad) {
  DTDBD_CHECK_EQ(NumElements(shape), static_cast<int64_t>(data.size()))
      << "shape " << ShapeToString(shape) << " does not match data size";
  auto node = std::make_shared<internal::Node>();
  node->shape = shape;
  node->strides = CanonicalStrides(shape);
  node->numel = static_cast<int64_t>(data.size());
  node->contiguous = true;
  node->storage = std::make_shared<internal::Storage>();
  node->storage->buf = std::move(data);
  node->requires_grad = requires_grad;
  return FromNode(std::move(node));
}

Tensor Tensor::Scalar(float value, bool requires_grad) {
  return FromData({1}, {value}, requires_grad);
}

const Shape& Tensor::shape() const {
  DTDBD_CHECK(defined());
  return node_->shape;
}

const Shape& Tensor::strides() const {
  DTDBD_CHECK(defined());
  return node_->strides;
}

int64_t Tensor::dim(int i) const {
  DTDBD_CHECK(defined());
  DTDBD_CHECK_GE(i, 0);
  DTDBD_CHECK_LT(i, ndim());
  return node_->shape[i];
}

int Tensor::ndim() const {
  DTDBD_CHECK(defined());
  return static_cast<int>(node_->shape.size());
}

int64_t Tensor::numel() const {
  DTDBD_CHECK(defined());
  return node_->numel;
}

bool Tensor::contiguous() const {
  DTDBD_CHECK(defined());
  return node_->contiguous;
}

DataRef Tensor::data() {
  DTDBD_CHECK(defined());
  return DataRef(node_.get());
}

ConstDataRef Tensor::data() const {
  DTDBD_CHECK(defined());
  return ConstDataRef(node_.get());
}

std::vector<float> Tensor::ToVector() const {
  DTDBD_CHECK(defined());
  return ConstDataRef(node_.get()).ToVector();
}

void Tensor::CopyDataFrom(const Tensor& src) {
  DTDBD_CHECK(defined());
  DTDBD_CHECK(src.defined());
  DTDBD_CHECK(shape() == src.shape())
      << "CopyDataFrom: " << ShapeToString(src.shape()) << " into "
      << ShapeToString(shape());
  internal::Node* dst = node_.get();
  const internal::Node* from = src.node_.get();
  if (dst->contiguous && from->contiguous) {
    std::copy_n(from->cdata(), static_cast<size_t>(dst->numel), dst->mdata());
    return;
  }
  for (int64_t i = 0; i < dst->numel; ++i) {
    dst->storage->buf[dst->PhysIndex(i)] =
        from->storage->buf[from->PhysIndex(i)];
  }
}

std::vector<float>& Tensor::grad() {
  DTDBD_CHECK(defined());
  node_->EnsureGrad();
  return node_->grad;
}

const std::vector<float>& Tensor::grad() const {
  DTDBD_CHECK(defined());
  const_cast<internal::Node*>(node_.get())->EnsureGrad();
  return node_->grad;
}

bool Tensor::requires_grad() const {
  DTDBD_CHECK(defined());
  return node_->requires_grad;
}

void Tensor::set_requires_grad(bool value) {
  DTDBD_CHECK(defined());
  DTDBD_CHECK(node_->inputs.empty())
      << "set_requires_grad is only valid on leaf tensors";
  node_->requires_grad = value;
}

float Tensor::item() const {
  DTDBD_CHECK(defined());
  DTDBD_CHECK_EQ(numel(), 1) << "item() requires a 1-element tensor";
  return node_->storage->buf[node_->PhysIndex(0)];
}

float Tensor::at(int64_t flat_index) const {
  DTDBD_CHECK(defined());
  DTDBD_CHECK_GE(flat_index, 0);
  DTDBD_CHECK_LT(flat_index, numel());
  return node_->storage->buf[node_->PhysIndex(flat_index)];
}

void Tensor::ZeroGrad() {
  DTDBD_CHECK(defined());
  node_->EnsureGrad();
  std::fill(node_->grad.begin(), node_->grad.end(), 0.0f);
}

void Tensor::Backward() {
  DTDBD_CHECK(defined());
  DTDBD_CHECK_EQ(numel(), 1) << "Backward() must start from a scalar";
  DTDBD_CHECK(requires_grad()) << "Backward() on a non-differentiable tensor";

  // Topological order via iterative DFS.
  std::vector<internal::Node*> order;
  std::unordered_set<internal::Node*> visited;
  std::vector<std::pair<internal::Node*, size_t>> stack;
  stack.emplace_back(node_.get(), 0);
  visited.insert(node_.get());
  while (!stack.empty()) {
    auto& [node, next_input] = stack.back();
    if (next_input < node->inputs.size()) {
      internal::Node* input = node->inputs[next_input++].get();
      if (input->requires_grad && visited.insert(input).second) {
        stack.emplace_back(input, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }

  node_->EnsureGrad();
  node_->grad[0] += 1.0f;
  const bool profile = OpProfilingEnabled();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    internal::Node* node = *it;
    if (node->op == nullptr || node->op->backward == nullptr) continue;
    for (auto& input : node->inputs) {
      if (input->requires_grad) input->EnsureGrad();
    }
    if (profile) {
      const uint64_t start = NowNs();
      node->op->backward(node);
      RecordBackward(node->op, NowNs() - start);
    } else {
      node->op->backward(node);
    }
  }
}

Tensor Tensor::Detach() const {
  DTDBD_CHECK(defined());
  // Zero-copy: the detached leaf aliases this tensor's storage (writes
  // through either are visible in both); only the graph link is dropped.
  auto node = std::make_shared<internal::Node>();
  node->shape = node_->shape;
  node->strides = node_->strides;
  node->offset = node_->offset;
  node->numel = node_->numel;
  node->contiguous = node_->contiguous;
  node->storage = node_->storage;
  node->requires_grad = false;
  return FromNode(std::move(node));
}

Tensor Tensor::Clone() const {
  DTDBD_CHECK(defined());
  return FromData(node_->shape, ToVector(), node_->requires_grad);
}

const void* Tensor::storage_id() const {
  DTDBD_CHECK(defined());
  return node_->storage.get();
}

Tensor Tensor::FromNode(std::shared_ptr<internal::Node> node) {
  Tensor t;
  t.node_ = std::move(node);
  return t;
}

NoGradGuard::NoGradGuard() : previous_(g_grad_enabled) {
  g_grad_enabled = false;
}

NoGradGuard::~NoGradGuard() { g_grad_enabled = previous_; }

bool GradEnabled() { return g_grad_enabled; }

}  // namespace dtdbd::tensor
