#include "tensor/tensor.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace dtdbd::tensor {

namespace {
thread_local bool g_grad_enabled = true;
}  // namespace

int64_t NumElements(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    DTDBD_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) out << ", ";
    out << shape[i];
  }
  out << "]";
  return out.str();
}

Tensor Tensor::Zeros(const Shape& shape, bool requires_grad) {
  return Full(shape, 0.0f, requires_grad);
}

Tensor Tensor::Full(const Shape& shape, float value, bool requires_grad) {
  auto node = std::make_shared<internal::Node>();
  node->shape = shape;
  node->data.assign(NumElements(shape), value);
  node->requires_grad = requires_grad;
  node->op_name = "leaf";
  return FromNode(std::move(node));
}

Tensor Tensor::FromData(const Shape& shape, std::vector<float> data,
                        bool requires_grad) {
  DTDBD_CHECK_EQ(NumElements(shape), static_cast<int64_t>(data.size()))
      << "shape " << ShapeToString(shape) << " does not match data size";
  auto node = std::make_shared<internal::Node>();
  node->shape = shape;
  node->data = std::move(data);
  node->requires_grad = requires_grad;
  node->op_name = "leaf";
  return FromNode(std::move(node));
}

Tensor Tensor::Scalar(float value, bool requires_grad) {
  return FromData({1}, {value}, requires_grad);
}

const Shape& Tensor::shape() const {
  DTDBD_CHECK(defined());
  return node_->shape;
}

int64_t Tensor::dim(int i) const {
  DTDBD_CHECK(defined());
  DTDBD_CHECK_GE(i, 0);
  DTDBD_CHECK_LT(i, ndim());
  return node_->shape[i];
}

int Tensor::ndim() const {
  DTDBD_CHECK(defined());
  return static_cast<int>(node_->shape.size());
}

int64_t Tensor::numel() const {
  DTDBD_CHECK(defined());
  return static_cast<int64_t>(node_->data.size());
}

std::vector<float>& Tensor::data() {
  DTDBD_CHECK(defined());
  return node_->data;
}

const std::vector<float>& Tensor::data() const {
  DTDBD_CHECK(defined());
  return node_->data;
}

std::vector<float>& Tensor::grad() {
  DTDBD_CHECK(defined());
  node_->EnsureGrad();
  return node_->grad;
}

const std::vector<float>& Tensor::grad() const {
  DTDBD_CHECK(defined());
  const_cast<internal::Node*>(node_.get())->EnsureGrad();
  return node_->grad;
}

bool Tensor::requires_grad() const {
  DTDBD_CHECK(defined());
  return node_->requires_grad;
}

void Tensor::set_requires_grad(bool value) {
  DTDBD_CHECK(defined());
  DTDBD_CHECK(node_->inputs.empty())
      << "set_requires_grad is only valid on leaf tensors";
  node_->requires_grad = value;
}

float Tensor::item() const {
  DTDBD_CHECK(defined());
  DTDBD_CHECK_EQ(numel(), 1) << "item() requires a 1-element tensor";
  return node_->data[0];
}

float Tensor::at(int64_t flat_index) const {
  DTDBD_CHECK(defined());
  DTDBD_CHECK_GE(flat_index, 0);
  DTDBD_CHECK_LT(flat_index, numel());
  return node_->data[flat_index];
}

void Tensor::ZeroGrad() {
  DTDBD_CHECK(defined());
  node_->EnsureGrad();
  std::fill(node_->grad.begin(), node_->grad.end(), 0.0f);
}

void Tensor::Backward() {
  DTDBD_CHECK(defined());
  DTDBD_CHECK_EQ(numel(), 1) << "Backward() must start from a scalar";
  DTDBD_CHECK(requires_grad()) << "Backward() on a non-differentiable tensor";

  // Topological order via iterative DFS.
  std::vector<internal::Node*> order;
  std::unordered_set<internal::Node*> visited;
  std::vector<std::pair<internal::Node*, size_t>> stack;
  stack.emplace_back(node_.get(), 0);
  visited.insert(node_.get());
  while (!stack.empty()) {
    auto& [node, next_input] = stack.back();
    if (next_input < node->inputs.size()) {
      internal::Node* input = node->inputs[next_input++].get();
      if (input->requires_grad && visited.insert(input).second) {
        stack.emplace_back(input, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }

  node_->EnsureGrad();
  node_->grad[0] += 1.0f;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    internal::Node* node = *it;
    if (node->backward) {
      for (auto& input : node->inputs) {
        if (input->requires_grad) input->EnsureGrad();
      }
      node->backward();
    }
  }
}

Tensor Tensor::Detach() const {
  DTDBD_CHECK(defined());
  auto node = std::make_shared<internal::Node>();
  node->shape = node_->shape;
  node->data = node_->data;  // copy: keeps semantics simple and safe
  node->requires_grad = false;
  node->op_name = "detach";
  return FromNode(std::move(node));
}

Tensor Tensor::Clone() const {
  DTDBD_CHECK(defined());
  return FromData(node_->shape, node_->data, node_->requires_grad);
}

Tensor Tensor::FromNode(std::shared_ptr<internal::Node> node) {
  Tensor t;
  t.node_ = std::move(node);
  return t;
}

NoGradGuard::NoGradGuard() : previous_(g_grad_enabled) {
  g_grad_enabled = false;
}

NoGradGuard::~NoGradGuard() { g_grad_enabled = previous_; }

bool GradEnabled() { return g_grad_enabled; }

}  // namespace dtdbd::tensor
