#include "tensor/loss.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "tensor/ops.h"
#include "tensor/registry.h"

namespace dtdbd::tensor {

namespace {

using internal::Node;

constexpr int64_t kGrain = 4096;

int64_t GrainForRows(int64_t work_per_row) {
  return std::max<int64_t>(1, kGrain / std::max<int64_t>(1, work_per_row));
}

// Row-wise softmax with temperature, sharded over rows; also fills log
// probabilities if log_out != nullptr. The temperature is applied as a
// multiplication by 1/tau, after which each row runs the exact LogSoftmax
// kernel arithmetic on the scaled logits — that is what keeps the fused
// losses bitwise identical to their unfused LogSoftmax(ScalarMul(...))
// reference compositions.
void SoftmaxRows(const float* in, float* out, float* log_out, int64_t rows,
                 int64_t cols, float inv_tau) {
  ParallelFor(rows, GrainForRows(cols), [&](int64_t rs, int64_t re) {
    for (int64_t r = rs; r < re; ++r) {
      const float* x = in + r * cols;
      float mx = x[0] * inv_tau;
      for (int64_t j = 1; j < cols; ++j) mx = std::max(mx, x[j] * inv_tau);
      float sum = 0.0f;
      for (int64_t j = 0; j < cols; ++j) {
        sum += std::exp(x[j] * inv_tau - mx);
      }
      const float lse = mx + std::log(sum);
      for (int64_t j = 0; j < cols; ++j) {
        const float lp = x[j] * inv_tau - lse;
        out[r * cols + j] = std::exp(lp);
        if (log_out != nullptr) log_out[r * cols + j] = lp;
      }
    }
  });
}

// ----- SoftmaxCrossEntropy (fused LogSoftmax + NllLoss) -----

struct CrossEntropyState {
  std::vector<float> probs;
  std::vector<int> labels;
};

void SoftmaxCrossEntropyBackward(Node* self) {
  Node* in = self->inputs[0].get();
  if (!in->requires_grad) return;
  const int64_t c = in->shape[1];
  const int64_t b = in->shape[0];
  const auto* st = static_cast<const CrossEntropyState*>(self->saved.get());
  const float g = self->grad[0] / static_cast<float>(b);
  const float* probs = st->probs.data();
  const int* labels = st->labels.data();
  float* gi = in->grad.data();
  // Closed form g * (p - onehot), evaluated as (g*p) then "- g" on the
  // label element so every term lands on the same bits as the unfused
  // NllLoss -> LogSoftmax backward chain.
  ParallelFor(b, GrainForRows(c), [&](int64_t s, int64_t e) {
    for (int64_t i = s; i < e; ++i) {
      const int64_t lab = labels[i];
      const float* pr = probs + i * c;
      float* gr = gi + i * c;
      for (int64_t j = 0; j < c; ++j) {
        const float t = g * pr[j];
        gr[j] += (j == lab) ? t - g : t;
      }
    }
  });
}

const Op* const kSoftmaxCrossEntropy = OpRegistry::Get().Register(
    {"SoftmaxCrossEntropy", 1, &SoftmaxCrossEntropyBackward});

// ----- NllLoss (reference half of the unfused cross entropy) -----

struct NllState {
  std::vector<int> labels;
};

void NllBackward(Node* self) {
  Node* in = self->inputs[0].get();
  if (!in->requires_grad) return;
  const int64_t c = in->shape[1];
  const int64_t b = in->shape[0];
  const auto* st = static_cast<const NllState*>(self->saved.get());
  const float g = self->grad[0] / static_cast<float>(b);
  for (int64_t i = 0; i < b; ++i) {
    in->grad[i * c + st->labels[static_cast<size_t>(i)]] -= g;
  }
}

const Op* const kNllLoss =
    OpRegistry::Get().Register({"NllLoss", 1, &NllBackward});

// Mean negative log-likelihood of row-wise log-probabilities.
Tensor NllLossOp(const Tensor& logp_in, const std::vector<int>& labels) {
  Tensor logp = Contiguous(logp_in);
  const int64_t b = logp.dim(0), c = logp.dim(1);
  ScopedOpTimer timer(kNllLoss);
  auto state = std::make_shared<NllState>();
  state->labels = labels;
  const float* lp = logp.data().data();
  float loss = 0.0f;
  for (int64_t i = 0; i < b; ++i) {
    loss -= lp[i * c + labels[static_cast<size_t>(i)]];
  }
  loss /= static_cast<float>(b);
  return MakeOp(kNllLoss, {1}, {loss}, {logp}, state);
}

// ----- SoftmaxKl (fused temperature softmax + KL) -----

struct DistillKlState {
  std::vector<float> pt;
  std::vector<float> ps;
  float tau;
};

void SoftmaxKlBackward(Node* self) {
  Node* in = self->inputs[0].get();
  if (!in->requires_grad) return;
  const int64_t c = in->shape.back();
  const int64_t b = c > 0 ? in->numel / c : 0;
  const auto* st = static_cast<const DistillKlState*>(self->saved.get());
  const float inv_tau = 1.0f / st->tau;
  const float c0 = self->grad[0] * st->tau * st->tau / static_cast<float>(b);
  const float* pt = st->pt.data();
  const float* ps = st->ps.data();
  float* gi = in->grad.data();
  // Per row, mirror the unfused KlFromLogProbs -> LogSoftmax -> ScalarMul
  // backward chain term by term so gradients land on the same bits:
  //   gl_j  = -(c0 * pt_j)           (KL grad wrt student log-probs)
  //   gsum  = sum_j gl_j             (LogSoftmax row sum, ascending)
  //   dx_j += (gl_j - ps_j * gsum) * inv_tau
  ParallelFor(b, GrainForRows(c), [&](int64_t s, int64_t e) {
    for (int64_t r = s; r < e; ++r) {
      const float* ptr = pt + r * c;
      const float* psr = ps + r * c;
      float* gr = gi + r * c;
      float gsum = 0.0f;
      for (int64_t j = 0; j < c; ++j) gsum += -(c0 * ptr[j]);
      for (int64_t j = 0; j < c; ++j) {
        const float gl = -(c0 * ptr[j]);
        gr[j] += (gl - psr[j] * gsum) * inv_tau;
      }
    }
  });
}

const Op* const kSoftmaxKl =
    OpRegistry::Get().Register({"SoftmaxKl", 1, &SoftmaxKlBackward});

// ----- KlFromLogProbs (reference half of the unfused distillation KL) -----

struct KlFromLogProbsState {
  std::vector<float> pt;  // exp(teacher log-probs)
  float tau;
};

void KlFromLogProbsBackward(Node* self) {
  // Gradient flows only to the student log-probs (input 1); the teacher
  // side always enters detached.
  Node* ls = self->inputs[1].get();
  if (!ls->requires_grad) return;
  const auto* st =
      static_cast<const KlFromLogProbsState*>(self->saved.get());
  const int64_t c = ls->shape.back();
  const int64_t b = c > 0 ? ls->numel / c : 0;
  const float c0 = self->grad[0] * st->tau * st->tau / static_cast<float>(b);
  const float* pt = st->pt.data();
  float* gi = ls->grad.data();
  ParallelFor(ls->numel, kGrain, [&](int64_t s, int64_t e) {
    for (int64_t i = s; i < e; ++i) gi[i] += -(c0 * pt[i]);
  });
}

const Op* const kKlFromLogProbs = OpRegistry::Get().Register(
    {"KlFromLogProbs", 2, &KlFromLogProbsBackward});

// tau^2 * mean-row KL between two log-probability tensors.
Tensor KlFromLogProbsOp(const Tensor& lt_in, const Tensor& ls_in, float tau) {
  Tensor lt = Contiguous(lt_in);
  Tensor ls = Contiguous(ls_in);
  const int64_t c = lt.shape().back();
  const int64_t b = c > 0 ? lt.numel() / c : 0;
  ScopedOpTimer timer(kKlFromLogProbs);
  auto state = std::make_shared<KlFromLogProbsState>();
  state->tau = tau;
  state->pt.resize(static_cast<size_t>(lt.numel()));
  const float* plt = lt.data().data();
  const float* pls = ls.data().data();
  float* ppt = state->pt.data();
  float loss = 0.0f;
  for (int64_t i = 0; i < b * c; ++i) {
    const float pt = std::exp(plt[i]);
    ppt[i] = pt;
    if (pt > 0.0f) loss += pt * (plt[i] - pls[i]);
  }
  loss = loss * tau * tau / static_cast<float>(b);
  return MakeOp(kKlFromLogProbs, {1}, {loss}, {lt, ls}, state);
}

// ----- NegativeEntropyLoss -----

struct NegativeEntropyState {
  std::vector<float> probs;
  std::vector<float> logp;
};

void NegativeEntropyBackward(Node* self) {
  Node* in = self->inputs[0].get();
  if (!in->requires_grad) return;
  const int64_t c = in->shape.back();
  const int64_t b = c > 0 ? in->numel / c : 0;
  const auto* st = static_cast<const NegativeEntropyState*>(self->saved.get());
  const float g = self->grad[0] / static_cast<float>(b);
  const float* probs = st->probs.data();
  const float* logp = st->logp.data();
  float* gi = in->grad.data();
  // L_row = sum_c p_c log p_c; dL/dx_j = p_j (log p_j - L_row).
  ParallelFor(b, GrainForRows(c), [&](int64_t s, int64_t e) {
    for (int64_t r = s; r < e; ++r) {
      float row_ne = 0.0f;
      for (int64_t j = 0; j < c; ++j) {
        row_ne += probs[r * c + j] * logp[r * c + j];
      }
      for (int64_t j = 0; j < c; ++j) {
        gi[r * c + j] += g * probs[r * c + j] * (logp[r * c + j] - row_ne);
      }
    }
  });
}

const Op* const kNegativeEntropyLoss = OpRegistry::Get().Register(
    {"NegativeEntropyLoss", 1, &NegativeEntropyBackward});

// ----- MseLoss -----

void MseBackward(Node* self) {
  Node* an = self->inputs[0].get();
  Node* bn = self->inputs[1].get();
  const int64_t n = an->numel;
  const float* pa = an->cdata();
  const float* pb = bn->cdata();
  const float g = self->grad[0] * 2.0f / static_cast<float>(n);
  for (int64_t i = 0; i < n; ++i) {
    const float d = g * (pa[i] - pb[i]);
    if (an->requires_grad) an->grad[i] += d;
    if (bn->requires_grad) bn->grad[i] -= d;
  }
}

const Op* const kMseLoss =
    OpRegistry::Get().Register({"MseLoss", 2, &MseBackward});

}  // namespace

Tensor CrossEntropyLoss(const Tensor& logits_in,
                        const std::vector<int>& labels) {
  DTDBD_CHECK_EQ(logits_in.ndim(), 2);
  const int64_t b = logits_in.dim(0), c = logits_in.dim(1);
  DTDBD_CHECK_EQ(static_cast<int64_t>(labels.size()), b);
  for (int64_t i = 0; i < b; ++i) {
    DTDBD_CHECK_GE(labels[static_cast<size_t>(i)], 0);
    DTDBD_CHECK_LT(labels[static_cast<size_t>(i)], c);
  }
  if (!FusionEnabled()) {
    return NllLossOp(LogSoftmax(logits_in), labels);
  }
  Tensor logits = Contiguous(logits_in);
  ScopedOpTimer timer(kSoftmaxCrossEntropy);
  auto state = std::make_shared<CrossEntropyState>();
  state->probs.resize(static_cast<size_t>(logits.numel()));
  state->labels = labels;
  std::vector<float> logp(static_cast<size_t>(logits.numel()));
  SoftmaxRows(logits.data().data(), state->probs.data(), logp.data(), b, c,
              /*inv_tau=*/1.0f);
  float loss = 0.0f;
  for (int64_t i = 0; i < b; ++i) {
    loss -= logp[static_cast<size_t>(i * c + labels[static_cast<size_t>(i)])];
  }
  loss /= static_cast<float>(b);
  return MakeOp(kSoftmaxCrossEntropy, {1}, {loss}, {logits}, state);
}

Tensor DistillKlLoss(const Tensor& teacher_logits,
                     const Tensor& student_logits_in, float tau) {
  DTDBD_CHECK_GT(tau, 0.0f);
  DTDBD_CHECK(teacher_logits.shape() == student_logits_in.shape())
      << "DistillKlLoss: teacher " << ShapeToString(teacher_logits.shape())
      << " vs student " << ShapeToString(student_logits_in.shape());
  const float inv_tau = 1.0f / tau;
  if (!FusionEnabled()) {
    // Reference composition. The teacher enters detached in both paths: it
    // is knowledge, not a trainee.
    Tensor lt = LogSoftmax(ScalarMul(teacher_logits.Detach(), inv_tau));
    Tensor ls = LogSoftmax(ScalarMul(student_logits_in, inv_tau));
    return KlFromLogProbsOp(lt, ls, tau);
  }
  Tensor teacher = Contiguous(teacher_logits);
  Tensor student = Contiguous(student_logits_in);
  const int64_t c = teacher.shape().back();
  const int64_t b = c > 0 ? teacher.numel() / c : 0;
  ScopedOpTimer timer(kSoftmaxKl);
  auto state = std::make_shared<DistillKlState>();
  state->tau = tau;
  state->pt.resize(static_cast<size_t>(teacher.numel()));
  state->ps.resize(static_cast<size_t>(student.numel()));
  std::vector<float> log_pt(static_cast<size_t>(teacher.numel()));
  std::vector<float> log_ps(static_cast<size_t>(student.numel()));
  SoftmaxRows(teacher.data().data(), state->pt.data(), log_pt.data(), b, c,
              inv_tau);
  SoftmaxRows(student.data().data(), state->ps.data(), log_ps.data(), b, c,
              inv_tau);
  float loss = 0.0f;
  for (int64_t i = 0; i < b * c; ++i) {
    const size_t si = static_cast<size_t>(i);
    if (state->pt[si] > 0.0f) {
      loss += state->pt[si] * (log_pt[si] - log_ps[si]);
    }
  }
  loss = loss * tau * tau / static_cast<float>(b);
  // Only the student receives gradient: the teacher is knowledge, not a
  // trainee (paper: teacher weights are frozen during distillation).
  return MakeOp(kSoftmaxKl, {1}, {loss}, {student}, state);
}

Tensor NegativeEntropyLoss(const Tensor& logits_in) {
  DTDBD_CHECK_GE(logits_in.ndim(), 1);
  Tensor logits = Contiguous(logits_in);
  const int64_t c = logits.shape().back();
  const int64_t b = c > 0 ? logits.numel() / c : 0;
  ScopedOpTimer timer(kNegativeEntropyLoss);
  auto state = std::make_shared<NegativeEntropyState>();
  state->probs.resize(static_cast<size_t>(logits.numel()));
  state->logp.resize(static_cast<size_t>(logits.numel()));
  SoftmaxRows(logits.data().data(), state->probs.data(), state->logp.data(),
              b, c, /*inv_tau=*/1.0f);
  float loss = 0.0f;
  for (int64_t i = 0; i < b * c; ++i) {
    const size_t si = static_cast<size_t>(i);
    loss += state->probs[si] * state->logp[si];
  }
  loss /= static_cast<float>(b);
  return MakeOp(kNegativeEntropyLoss, {1}, {loss}, {logits}, state);
}

Tensor MseLoss(const Tensor& a_in, const Tensor& b_in) {
  DTDBD_CHECK(a_in.shape() == b_in.shape());
  Tensor a = Contiguous(a_in);
  Tensor b = Contiguous(b_in);
  const int64_t n = a.numel();
  ScopedOpTimer timer(kMseLoss);
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float loss = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    const float d = pa[i] - pb[i];
    loss += d * d;
  }
  loss /= static_cast<float>(n);
  return MakeOp(kMseLoss, {1}, {loss}, {a, b});
}

}  // namespace dtdbd::tensor
