#include "tensor/loss.h"

#include <algorithm>
#include <cmath>

#include "tensor/ops.h"

namespace dtdbd::tensor {

namespace {

using internal::Node;

// Row-wise softmax with temperature into out; also fills log probabilities
// if log_out != nullptr.
void SoftmaxWithTemperature(const float* in, float* out, float* log_out,
                            int64_t rows, int64_t cols, float tau) {
  for (int64_t r = 0; r < rows; ++r) {
    const float* x = in + r * cols;
    float mx = x[0];
    for (int64_t j = 1; j < cols; ++j) mx = std::max(mx, x[j]);
    float sum = 0.0f;
    for (int64_t j = 0; j < cols; ++j) sum += std::exp((x[j] - mx) / tau);
    const float lse = mx / tau + std::log(sum);
    for (int64_t j = 0; j < cols; ++j) {
      const float lp = x[j] / tau - lse;
      out[r * cols + j] = std::exp(lp);
      if (log_out != nullptr) log_out[r * cols + j] = lp;
    }
  }
}

Tensor MakeScalarLoss(const char* name, float value, std::vector<Tensor> inputs,
                      const std::function<std::function<void()>(Node*)>&
                          make_backward) {
  auto node = std::make_shared<Node>();
  node->shape = {1};
  node->data = {value};
  node->op_name = name;
  bool any_grad = false;
  for (const auto& in : inputs) any_grad = any_grad || in.requires_grad();
  if (GradEnabled() && any_grad) {
    node->requires_grad = true;
    for (const auto& in : inputs) node->inputs.push_back(in.node());
    node->backward = make_backward(node.get());
  }
  return Tensor::FromNode(std::move(node));
}

}  // namespace

Tensor CrossEntropyLoss(const Tensor& logits, const std::vector<int>& labels) {
  DTDBD_CHECK_EQ(logits.ndim(), 2);
  const int64_t b = logits.dim(0), c = logits.dim(1);
  DTDBD_CHECK_EQ(static_cast<int64_t>(labels.size()), b);
  // probs and the loss value.
  auto probs = std::make_shared<std::vector<float>>(logits.data().size());
  std::vector<float> logp(logits.data().size());
  SoftmaxWithTemperature(logits.data().data(), probs->data(), logp.data(), b,
                         c, 1.0f);
  float loss = 0.0f;
  for (int64_t i = 0; i < b; ++i) {
    DTDBD_CHECK_GE(labels[i], 0);
    DTDBD_CHECK_LT(labels[i], c);
    loss -= logp[i * c + labels[i]];
  }
  loss /= static_cast<float>(b);
  auto labels_copy = std::make_shared<std::vector<int>>(labels);
  return MakeScalarLoss(
      "CrossEntropyLoss", loss, {logits}, [b, c, probs, labels_copy](
                                              Node* self) {
        return [self, b, c, probs, labels_copy]() {
          Node* in = self->inputs[0].get();
          if (!in->requires_grad) return;
          const float g = self->grad[0] / static_cast<float>(b);
          for (int64_t i = 0; i < b; ++i) {
            for (int64_t j = 0; j < c; ++j) {
              float d = (*probs)[i * c + j];
              if (j == (*labels_copy)[i]) d -= 1.0f;
              in->grad[i * c + j] += g * d;
            }
          }
        };
      });
}

Tensor DistillKlLoss(const Tensor& teacher_logits,
                     const Tensor& student_logits, float tau) {
  DTDBD_CHECK_GT(tau, 0.0f);
  DTDBD_CHECK(teacher_logits.shape() == student_logits.shape())
      << "DistillKlLoss: teacher " << ShapeToString(teacher_logits.shape())
      << " vs student " << ShapeToString(student_logits.shape());
  const int64_t c = teacher_logits.shape().back();
  const int64_t b = teacher_logits.numel() / c;
  auto pt = std::make_shared<std::vector<float>>(teacher_logits.numel());
  std::vector<float> log_pt(teacher_logits.numel());
  SoftmaxWithTemperature(teacher_logits.data().data(), pt->data(),
                         log_pt.data(), b, c, tau);
  auto ps = std::make_shared<std::vector<float>>(student_logits.numel());
  std::vector<float> log_ps(student_logits.numel());
  SoftmaxWithTemperature(student_logits.data().data(), ps->data(),
                         log_ps.data(), b, c, tau);
  float loss = 0.0f;
  for (int64_t i = 0; i < b * c; ++i) {
    if ((*pt)[i] > 0.0f) loss += (*pt)[i] * (log_pt[i] - log_ps[i]);
  }
  loss = loss * tau * tau / static_cast<float>(b);
  // Only the student receives gradient: the teacher is knowledge, not a
  // trainee (paper: teacher weights are frozen during distillation).
  return MakeScalarLoss(
      "DistillKlLoss", loss, {student_logits},
      [b, c, tau, pt, ps](Node* self) {
        return [self, b, c, tau, pt, ps]() {
          Node* in = self->inputs[0].get();
          if (!in->requires_grad) return;
          // d loss / d s = tau^2/B * (1/tau) (p_s - p_t) = tau/B (p_s - p_t).
          const float g = self->grad[0] * tau / static_cast<float>(b);
          for (int64_t i = 0; i < b * c; ++i) {
            in->grad[i] += g * ((*ps)[i] - (*pt)[i]);
          }
        };
      });
}

Tensor NegativeEntropyLoss(const Tensor& logits) {
  DTDBD_CHECK_GE(logits.ndim(), 1);
  const int64_t c = logits.shape().back();
  const int64_t b = logits.numel() / c;
  auto probs = std::make_shared<std::vector<float>>(logits.numel());
  std::vector<float> logp(logits.numel());
  SoftmaxWithTemperature(logits.data().data(), probs->data(), logp.data(), b,
                         c, 1.0f);
  float loss = 0.0f;
  for (int64_t i = 0; i < b * c; ++i) loss += (*probs)[i] * logp[i];
  loss /= static_cast<float>(b);
  auto logp_copy = std::make_shared<std::vector<float>>(std::move(logp));
  return MakeScalarLoss(
      "NegativeEntropyLoss", loss, {logits},
      [b, c, probs, logp_copy](Node* self) {
        return [self, b, c, probs, logp_copy]() {
          Node* in = self->inputs[0].get();
          if (!in->requires_grad) return;
          const float g = self->grad[0] / static_cast<float>(b);
          // L_row = sum_c p_c log p_c; dL/dx_j = p_j (log p_j - L_row).
          for (int64_t r = 0; r < b; ++r) {
            float row_ne = 0.0f;
            for (int64_t j = 0; j < c; ++j) {
              row_ne += (*probs)[r * c + j] * (*logp_copy)[r * c + j];
            }
            for (int64_t j = 0; j < c; ++j) {
              in->grad[r * c + j] += g * (*probs)[r * c + j] *
                                     ((*logp_copy)[r * c + j] - row_ne);
            }
          }
        };
      });
}

Tensor MseLoss(const Tensor& a, const Tensor& b) {
  DTDBD_CHECK(a.shape() == b.shape());
  const int64_t n = a.numel();
  float loss = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    const float d = a.data()[i] - b.data()[i];
    loss += d * d;
  }
  loss /= static_cast<float>(n);
  return MakeScalarLoss("MseLoss", loss, {a, b}, [n](Node* self) {
    return [self, n]() {
      Node* an = self->inputs[0].get();
      Node* bn = self->inputs[1].get();
      const float g = self->grad[0] * 2.0f / static_cast<float>(n);
      for (int64_t i = 0; i < n; ++i) {
        const float d = g * (an->data[i] - bn->data[i]);
        if (an->requires_grad) an->grad[i] += d;
        if (bn->requires_grad) bn->grad[i] -= d;
      }
    };
  });
}

}  // namespace dtdbd::tensor
