#include "tensor/loss.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "tensor/ops.h"
#include "tensor/registry.h"

namespace dtdbd::tensor {

namespace {

using internal::Node;

// Row-wise softmax with temperature into out; also fills log probabilities
// if log_out != nullptr.
void SoftmaxWithTemperature(const float* in, float* out, float* log_out,
                            int64_t rows, int64_t cols, float tau) {
  for (int64_t r = 0; r < rows; ++r) {
    const float* x = in + r * cols;
    float mx = x[0];
    for (int64_t j = 1; j < cols; ++j) mx = std::max(mx, x[j]);
    float sum = 0.0f;
    for (int64_t j = 0; j < cols; ++j) sum += std::exp((x[j] - mx) / tau);
    const float lse = mx / tau + std::log(sum);
    for (int64_t j = 0; j < cols; ++j) {
      const float lp = x[j] / tau - lse;
      out[r * cols + j] = std::exp(lp);
      if (log_out != nullptr) log_out[r * cols + j] = lp;
    }
  }
}

// ----- CrossEntropyLoss -----

struct CrossEntropyState {
  std::vector<float> probs;
  std::vector<int> labels;
};

void CrossEntropyBackward(Node* self) {
  Node* in = self->inputs[0].get();
  if (!in->requires_grad) return;
  const int64_t c = in->shape[1];
  const int64_t b = in->shape[0];
  const auto* st = static_cast<const CrossEntropyState*>(self->saved.get());
  const float g = self->grad[0] / static_cast<float>(b);
  for (int64_t i = 0; i < b; ++i) {
    for (int64_t j = 0; j < c; ++j) {
      float d = st->probs[static_cast<size_t>(i * c + j)];
      if (j == st->labels[static_cast<size_t>(i)]) d -= 1.0f;
      in->grad[i * c + j] += g * d;
    }
  }
}

const Op* const kCrossEntropyLoss =
    OpRegistry::Get().Register({"CrossEntropyLoss", 1, &CrossEntropyBackward});

// ----- DistillKlLoss -----

struct DistillKlState {
  std::vector<float> pt;
  std::vector<float> ps;
  float tau;
};

void DistillKlBackward(Node* self) {
  Node* in = self->inputs[0].get();
  if (!in->requires_grad) return;
  const int64_t c = in->shape.back();
  const int64_t b = c > 0 ? in->numel / c : 0;
  const auto* st = static_cast<const DistillKlState*>(self->saved.get());
  // d loss / d s = tau^2/B * (1/tau) (p_s - p_t) = tau/B (p_s - p_t).
  const float g = self->grad[0] * st->tau / static_cast<float>(b);
  for (int64_t i = 0; i < b * c; ++i) {
    in->grad[i] += g * (st->ps[static_cast<size_t>(i)] -
                        st->pt[static_cast<size_t>(i)]);
  }
}

const Op* const kDistillKlLoss =
    OpRegistry::Get().Register({"DistillKlLoss", 1, &DistillKlBackward});

// ----- NegativeEntropyLoss -----

struct NegativeEntropyState {
  std::vector<float> probs;
  std::vector<float> logp;
};

void NegativeEntropyBackward(Node* self) {
  Node* in = self->inputs[0].get();
  if (!in->requires_grad) return;
  const int64_t c = in->shape.back();
  const int64_t b = c > 0 ? in->numel / c : 0;
  const auto* st = static_cast<const NegativeEntropyState*>(self->saved.get());
  const float g = self->grad[0] / static_cast<float>(b);
  // L_row = sum_c p_c log p_c; dL/dx_j = p_j (log p_j - L_row).
  for (int64_t r = 0; r < b; ++r) {
    float row_ne = 0.0f;
    for (int64_t j = 0; j < c; ++j) {
      row_ne += st->probs[static_cast<size_t>(r * c + j)] *
                st->logp[static_cast<size_t>(r * c + j)];
    }
    for (int64_t j = 0; j < c; ++j) {
      in->grad[r * c + j] += g * st->probs[static_cast<size_t>(r * c + j)] *
                             (st->logp[static_cast<size_t>(r * c + j)] -
                              row_ne);
    }
  }
}

const Op* const kNegativeEntropyLoss = OpRegistry::Get().Register(
    {"NegativeEntropyLoss", 1, &NegativeEntropyBackward});

// ----- MseLoss -----

void MseBackward(Node* self) {
  Node* an = self->inputs[0].get();
  Node* bn = self->inputs[1].get();
  const int64_t n = an->numel;
  const float* pa = an->cdata();
  const float* pb = bn->cdata();
  const float g = self->grad[0] * 2.0f / static_cast<float>(n);
  for (int64_t i = 0; i < n; ++i) {
    const float d = g * (pa[i] - pb[i]);
    if (an->requires_grad) an->grad[i] += d;
    if (bn->requires_grad) bn->grad[i] -= d;
  }
}

const Op* const kMseLoss =
    OpRegistry::Get().Register({"MseLoss", 2, &MseBackward});

}  // namespace

Tensor CrossEntropyLoss(const Tensor& logits_in,
                        const std::vector<int>& labels) {
  DTDBD_CHECK_EQ(logits_in.ndim(), 2);
  Tensor logits = Contiguous(logits_in);
  const int64_t b = logits.dim(0), c = logits.dim(1);
  DTDBD_CHECK_EQ(static_cast<int64_t>(labels.size()), b);
  ScopedOpTimer timer(kCrossEntropyLoss);
  auto state = std::make_shared<CrossEntropyState>();
  state->probs.resize(static_cast<size_t>(logits.numel()));
  state->labels = labels;
  std::vector<float> logp(static_cast<size_t>(logits.numel()));
  SoftmaxWithTemperature(logits.data().data(), state->probs.data(),
                         logp.data(), b, c, 1.0f);
  float loss = 0.0f;
  for (int64_t i = 0; i < b; ++i) {
    DTDBD_CHECK_GE(labels[static_cast<size_t>(i)], 0);
    DTDBD_CHECK_LT(labels[static_cast<size_t>(i)], c);
    loss -= logp[static_cast<size_t>(i * c + labels[static_cast<size_t>(i)])];
  }
  loss /= static_cast<float>(b);
  return MakeOp(kCrossEntropyLoss, {1}, {loss}, {logits}, state);
}

Tensor DistillKlLoss(const Tensor& teacher_logits,
                     const Tensor& student_logits_in, float tau) {
  DTDBD_CHECK_GT(tau, 0.0f);
  DTDBD_CHECK(teacher_logits.shape() == student_logits_in.shape())
      << "DistillKlLoss: teacher " << ShapeToString(teacher_logits.shape())
      << " vs student " << ShapeToString(student_logits_in.shape());
  Tensor teacher = Contiguous(teacher_logits);
  Tensor student = Contiguous(student_logits_in);
  const int64_t c = teacher.shape().back();
  const int64_t b = c > 0 ? teacher.numel() / c : 0;
  ScopedOpTimer timer(kDistillKlLoss);
  auto state = std::make_shared<DistillKlState>();
  state->tau = tau;
  state->pt.resize(static_cast<size_t>(teacher.numel()));
  state->ps.resize(static_cast<size_t>(student.numel()));
  std::vector<float> log_pt(static_cast<size_t>(teacher.numel()));
  std::vector<float> log_ps(static_cast<size_t>(student.numel()));
  SoftmaxWithTemperature(teacher.data().data(), state->pt.data(),
                         log_pt.data(), b, c, tau);
  SoftmaxWithTemperature(student.data().data(), state->ps.data(),
                         log_ps.data(), b, c, tau);
  float loss = 0.0f;
  for (int64_t i = 0; i < b * c; ++i) {
    const size_t si = static_cast<size_t>(i);
    if (state->pt[si] > 0.0f) {
      loss += state->pt[si] * (log_pt[si] - log_ps[si]);
    }
  }
  loss = loss * tau * tau / static_cast<float>(b);
  // Only the student receives gradient: the teacher is knowledge, not a
  // trainee (paper: teacher weights are frozen during distillation).
  return MakeOp(kDistillKlLoss, {1}, {loss}, {student}, state);
}

Tensor NegativeEntropyLoss(const Tensor& logits_in) {
  DTDBD_CHECK_GE(logits_in.ndim(), 1);
  Tensor logits = Contiguous(logits_in);
  const int64_t c = logits.shape().back();
  const int64_t b = c > 0 ? logits.numel() / c : 0;
  ScopedOpTimer timer(kNegativeEntropyLoss);
  auto state = std::make_shared<NegativeEntropyState>();
  state->probs.resize(static_cast<size_t>(logits.numel()));
  state->logp.resize(static_cast<size_t>(logits.numel()));
  SoftmaxWithTemperature(logits.data().data(), state->probs.data(),
                         state->logp.data(), b, c, 1.0f);
  float loss = 0.0f;
  for (int64_t i = 0; i < b * c; ++i) {
    const size_t si = static_cast<size_t>(i);
    loss += state->probs[si] * state->logp[si];
  }
  loss /= static_cast<float>(b);
  return MakeOp(kNegativeEntropyLoss, {1}, {loss}, {logits}, state);
}

Tensor MseLoss(const Tensor& a_in, const Tensor& b_in) {
  DTDBD_CHECK(a_in.shape() == b_in.shape());
  Tensor a = Contiguous(a_in);
  Tensor b = Contiguous(b_in);
  const int64_t n = a.numel();
  ScopedOpTimer timer(kMseLoss);
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float loss = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    const float d = pa[i] - pb[i];
    loss += d * d;
  }
  loss /= static_cast<float>(n);
  return MakeOp(kMseLoss, {1}, {loss}, {a, b});
}

}  // namespace dtdbd::tensor
