// Optimizers over a flat parameter list. Parameters are leaf tensors with
// requires_grad(); the optimizer owns per-parameter state keyed by position.
#ifndef DTDBD_TENSOR_OPTIM_H_
#define DTDBD_TENSOR_OPTIM_H_

#include <vector>

#include "common/status.h"
#include "tensor/tensor.h"

namespace dtdbd::tensor {

// Snapshot of Adam's per-parameter moments, keyed by parameter position.
// Exported into training checkpoints so a resumed run continues with the
// exact same update trajectory.
struct AdamState {
  int64_t step_count = 0;
  std::vector<std::vector<float>> m;
  std::vector<std::vector<float>> v;
};

// Interface shared by all optimizers.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params);
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  // Zeroes all parameter gradients.
  void ZeroGrad();

  // Applies one update from the accumulated gradients.
  virtual void Step() = 0;

  const std::vector<Tensor>& params() const { return params_; }

 protected:
  std::vector<Tensor> params_;
};

// SGD with optional momentum and L2 weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, float lr, float momentum = 0.0f,
      float weight_decay = 0.0f);

  void Step() override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_;
  float momentum_;
  float weight_decay_;
  std::vector<std::vector<float>> velocity_;
};

// Adam (Kingma & Ba 2015) with optional L2 weight decay.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);

  void Step() override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

  // Deep-copies the optimizer state (step count + both moment buffers).
  AdamState ExportState() const;

  // Restores previously exported state; fails if the moment buffers do not
  // match this optimizer's parameter count/sizes (wrong model or ordering).
  Status ImportState(const AdamState& state);

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  int64_t step_count_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

// Clips the global L2 norm of all parameter gradients to max_norm.
// Returns the pre-clip norm.
float ClipGradNorm(const std::vector<Tensor>& params, float max_norm);

}  // namespace dtdbd::tensor

#endif  // DTDBD_TENSOR_OPTIM_H_
