// A small CPU tensor with reverse-mode automatic differentiation.
//
// Tensor is a cheap shared handle to a graph Node. A Node no longer owns a
// private buffer: it references a refcounted Storage (contiguous float
// buffer) through {offset, shape, strides}, so Reshape / Detach / SliceTime
// / SliceLastDim / Transpose2d are zero-copy views where layout allows.
// Ops that need dense input materialize through Contiguous(). Gradients are
// always dense per-node buffers in logical row-major order, which keeps
// backward kernels layout-free.
//
// Every op is a named entry in the typed op registry (tensor/registry.h);
// Backward() dispatches through Op::backward instead of per-callsite
// closures, making the graph introspectable and profilable.
//
// This is the substrate that replaces PyTorch for the DTDBD reproduction:
// it supports exactly what the paper's training loops need (dense layers,
// conv-over-sequence, recurrent cells, softmax/KL losses, gradient
// reversal) on CPU with deterministic seeded initialization, and runs its
// hot kernels on the deterministic parallel backend in common/thread_pool.
#ifndef DTDBD_TENSOR_TENSOR_H_
#define DTDBD_TENSOR_TENSOR_H_

#include <cstdint>
#include <iosfwd>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"

namespace dtdbd::tensor {

using Shape = std::vector<int64_t>;

struct Op;  // tensor/registry.h

// Number of elements implied by a shape.
int64_t NumElements(const Shape& shape);

// Human-readable shape, e.g. "[2, 3]".
std::string ShapeToString(const Shape& shape);

// Row-major strides for a dense tensor of this shape.
Shape CanonicalStrides(const Shape& shape);

// True when {shape, strides} describe a dense row-major layout (dimensions
// of extent 1 may carry any stride).
bool IsContiguousLayout(const Shape& shape, const Shape& strides);

namespace internal {

// Refcounted contiguous float buffer, shared between a base tensor and all
// views carved out of it.
struct Storage {
  std::vector<float> buf;
};

// Graph node. Owned via shared_ptr by Tensor handles and by downstream
// nodes (each op output keeps its inputs alive until backward).
struct Node {
  Shape shape;
  Shape strides;           // element strides, same rank as shape
  int64_t offset = 0;      // element offset into storage->buf
  int64_t numel = 0;
  bool contiguous = true;  // strides are row-major for shape
  std::shared_ptr<Storage> storage;

  // Dense gradient in logical row-major order (allocated lazily). Views
  // keep their own dense grad; view backward kernels scatter it into the
  // base through the stride mapping.
  std::vector<float> grad;
  bool requires_grad = false;

  std::vector<std::shared_ptr<Node>> inputs;
  const Op* op = nullptr;        // registry entry; null for leaves
  std::shared_ptr<void> saved;   // op-specific context for backward

  const char* op_name() const;   // op->name, or "leaf"

  void EnsureGrad() {
    if (static_cast<int64_t>(grad.size()) != numel) {
      grad.assign(static_cast<size_t>(numel), 0.0f);
    }
  }

  // Flat data pointer; only valid for contiguous layouts.
  const float* cdata() const {
    DTDBD_CHECK(contiguous) << op_name() << ": non-contiguous data access";
    return storage->buf.data() + offset;
  }
  float* mdata() {
    DTDBD_CHECK(contiguous) << op_name() << ": non-contiguous data access";
    return storage->buf.data() + offset;
  }

  // Physical storage index of logical element i.
  int64_t PhysIndex(int64_t i) const {
    if (contiguous) return offset + i;
    int64_t phys = offset;
    for (int d = static_cast<int>(shape.size()) - 1; d >= 0; --d) {
      phys += (i % shape[d]) * strides[d];
      i /= shape[d];
    }
    return phys;
  }
};

}  // namespace internal

// Read-only accessor for a tensor's elements in logical row-major order.
// Cheap to copy; writes through the underlying (possibly shared) storage
// are visible to every tensor aliasing it.
class ConstDataRef {
 public:
  explicit ConstDataRef(const internal::Node* node) : node_(node) {}

  int64_t size() const { return node_->numel; }
  bool contiguous() const { return node_->contiguous; }

  // Flat pointer; requires a contiguous layout (use Tensor::Contiguous()
  // or ToVector() for views that are not).
  const float* data() const { return node_->cdata(); }

  float operator[](int64_t i) const {
    return node_->storage->buf[node_->PhysIndex(i)];
  }

  std::vector<float> ToVector() const;
  operator std::vector<float>() const { return ToVector(); }

  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = float;
    using difference_type = std::ptrdiff_t;
    using pointer = const float*;
    using reference = float;

    const_iterator(const internal::Node* node, int64_t i)
        : node_(node), i_(i) {}
    float operator*() const {
      return node_->storage->buf[node_->PhysIndex(i_)];
    }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator==(const const_iterator& o) const { return i_ == o.i_; }
    bool operator!=(const const_iterator& o) const { return i_ != o.i_; }

   private:
    const internal::Node* node_;
    int64_t i_;
  };

  const_iterator begin() const { return {node_, 0}; }
  const_iterator end() const { return {node_, node_->numel}; }

  const internal::Node* node() const { return node_; }

 private:
  const internal::Node* node_;
};

// Mutable variant of ConstDataRef.
class DataRef {
 public:
  explicit DataRef(internal::Node* node) : node_(node) {}

  int64_t size() const { return node_->numel; }
  bool contiguous() const { return node_->contiguous; }

  float* data() { return node_->mdata(); }
  const float* data() const { return node_->cdata(); }

  // Overwrites the elements (logical order) from a vector of equal size.
  DataRef& operator=(const std::vector<float>& values) {
    DTDBD_CHECK_EQ(static_cast<int64_t>(values.size()), node_->numel);
    for (int64_t i = 0; i < node_->numel; ++i) {
      node_->storage->buf[node_->PhysIndex(i)] =
          values[static_cast<size_t>(i)];
    }
    return *this;
  }

  float& operator[](int64_t i) {
    return node_->storage->buf[node_->PhysIndex(i)];
  }
  float operator[](int64_t i) const {
    return node_->storage->buf[node_->PhysIndex(i)];
  }

  std::vector<float> ToVector() const { return ConstDataRef(node_); }
  operator std::vector<float>() const { return ToVector(); }

  ConstDataRef::const_iterator begin() const {
    return ConstDataRef(node_).begin();
  }
  ConstDataRef::const_iterator end() const {
    return ConstDataRef(node_).end();
  }

 private:
  internal::Node* node_;
};

bool operator==(const ConstDataRef& a, const ConstDataRef& b);
bool operator==(const ConstDataRef& a, const std::vector<float>& b);
bool operator==(const std::vector<float>& a, const ConstDataRef& b);
inline bool operator==(const DataRef& a, const std::vector<float>& b) {
  return a.ToVector() == b;
}
inline bool operator==(const std::vector<float>& a, const DataRef& b) {
  return b == a;
}
inline bool operator==(const DataRef& a, const DataRef& b) {
  return a.ToVector() == b.ToVector();
}
inline bool operator==(const ConstDataRef& a, const DataRef& b) {
  return a.ToVector() == b.ToVector();
}
inline bool operator==(const DataRef& a, const ConstDataRef& b) {
  return a.ToVector() == b.ToVector();
}
std::ostream& operator<<(std::ostream& os, const ConstDataRef& ref);
std::ostream& operator<<(std::ostream& os, const DataRef& ref);

// Value-semantic handle to a graph node. Copies alias the same storage.
class Tensor {
 public:
  // Null handle; most APIs DTDBD_CHECK against using it.
  Tensor() = default;

  // ----- Factories -----
  static Tensor Zeros(const Shape& shape, bool requires_grad = false);
  static Tensor Full(const Shape& shape, float value,
                     bool requires_grad = false);
  static Tensor FromData(const Shape& shape, std::vector<float> data,
                         bool requires_grad = false);
  static Tensor Scalar(float value, bool requires_grad = false);

  bool defined() const { return node_ != nullptr; }

  const Shape& shape() const;
  const Shape& strides() const;
  int64_t dim(int i) const;
  int ndim() const;
  int64_t numel() const;

  // True when the elements are laid out dense row-major in storage.
  bool contiguous() const;

  // Logical element accessors. Writing through data() on a view writes the
  // shared storage, i.e. is visible in the base tensor.
  DataRef data();
  ConstDataRef data() const;

  // Copy of the elements in logical row-major order (works for any view).
  std::vector<float> ToVector() const;

  // Overwrites this tensor's elements from src (same shape required);
  // handles arbitrary layouts on both sides.
  void CopyDataFrom(const Tensor& src);

  // Gradient buffer; only meaningful after Backward(). Allocates if needed.
  std::vector<float>& grad();
  const std::vector<float>& grad() const;

  bool requires_grad() const;
  // Marks a leaf tensor as trainable. Must not be called on op outputs.
  void set_requires_grad(bool value);

  float item() const;  // value of a 1-element tensor
  float at(int64_t flat_index) const;

  // Fills the gradient buffer with zeros (used by optimizers between steps).
  void ZeroGrad();

  // Runs backpropagation from this scalar tensor (numel()==1).
  void Backward();

  // Returns a leaf tensor aliasing this tensor's storage (zero copies) but
  // detached from the autograd graph (used for frozen teacher outputs).
  Tensor Detach() const;

  // Deep copy of data into a fresh (contiguous) leaf tensor.
  Tensor Clone() const;

  // This tensor if already dense row-major; otherwise a materialized dense
  // copy, recorded as a graph op so gradient still flows to the view.
  Tensor Contiguous() const;

  // Identity of the underlying storage buffer; equal for tensors that alias
  // (used by the zero-copy view tests).
  const void* storage_id() const;

  // Internal: used by ops to build graph nodes.
  const std::shared_ptr<internal::Node>& node() const { return node_; }
  static Tensor FromNode(std::shared_ptr<internal::Node> node);

 private:
  std::shared_ptr<internal::Node> node_;
};

// RAII guard that disables gradient recording in its scope. Ops executed
// under the guard produce detached outputs; used for evaluation and for
// frozen-teacher forward passes.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

// True when gradient recording is currently enabled.
bool GradEnabled();

}  // namespace dtdbd::tensor

#endif  // DTDBD_TENSOR_TENSOR_H_
