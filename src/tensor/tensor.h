// A small CPU tensor with reverse-mode automatic differentiation.
//
// Tensor is a cheap shared handle to a Node holding float storage, an
// optional gradient buffer, and the backward closure linking it to its
// inputs. Calling Backward() on a scalar tensor propagates gradients through
// the recorded graph in reverse topological order.
//
// This is the substrate that replaces PyTorch for the DTDBD reproduction: it
// supports exactly what the paper's training loops need (dense layers,
// conv-over-sequence, recurrent cells, softmax/KL losses, gradient reversal)
// on CPU with deterministic seeded initialization.
#ifndef DTDBD_TENSOR_TENSOR_H_
#define DTDBD_TENSOR_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"

namespace dtdbd::tensor {

using Shape = std::vector<int64_t>;

// Number of elements implied by a shape.
int64_t NumElements(const Shape& shape);

// Human-readable shape, e.g. "[2, 3]".
std::string ShapeToString(const Shape& shape);

namespace internal {

// Graph node. Owned via shared_ptr by Tensor handles and by downstream
// nodes (each op output keeps its inputs alive until backward).
struct Node {
  Shape shape;
  std::vector<float> data;
  std::vector<float> grad;   // allocated lazily, same size as data
  bool requires_grad = false;
  std::vector<std::shared_ptr<Node>> inputs;
  std::function<void()> backward;  // accumulates into inputs' grads
  std::string op_name;             // for error messages

  void EnsureGrad() {
    if (grad.size() != data.size()) grad.assign(data.size(), 0.0f);
  }
};

}  // namespace internal

// Value-semantic handle to a graph node. Copies alias the same storage.
class Tensor {
 public:
  // Null handle; most APIs DTDBD_CHECK against using it.
  Tensor() = default;

  // ----- Factories -----
  static Tensor Zeros(const Shape& shape, bool requires_grad = false);
  static Tensor Full(const Shape& shape, float value,
                     bool requires_grad = false);
  static Tensor FromData(const Shape& shape, std::vector<float> data,
                         bool requires_grad = false);
  static Tensor Scalar(float value, bool requires_grad = false);

  bool defined() const { return node_ != nullptr; }

  const Shape& shape() const;
  int64_t dim(int i) const;
  int ndim() const;
  int64_t numel() const;

  std::vector<float>& data();
  const std::vector<float>& data() const;

  // Gradient buffer; only meaningful after Backward(). Allocates if needed.
  std::vector<float>& grad();
  const std::vector<float>& grad() const;

  bool requires_grad() const;
  // Marks a leaf tensor as trainable. Must not be called on op outputs.
  void set_requires_grad(bool value);

  float item() const;  // value of a 1-element tensor
  float at(int64_t flat_index) const;

  // Fills the gradient buffer with zeros (used by optimizers between steps).
  void ZeroGrad();

  // Runs backpropagation from this scalar tensor (numel()==1).
  void Backward();

  // Returns a new leaf tensor sharing this tensor's storage but detached
  // from the autograd graph (used for frozen teacher outputs).
  Tensor Detach() const;

  // Deep copy of data into a fresh leaf tensor.
  Tensor Clone() const;

  // Internal: used by ops to build graph nodes.
  const std::shared_ptr<internal::Node>& node() const { return node_; }
  static Tensor FromNode(std::shared_ptr<internal::Node> node);

 private:
  std::shared_ptr<internal::Node> node_;
};

// RAII guard that disables gradient recording in its scope. Ops executed
// under the guard produce detached outputs; used for evaluation and for
// frozen-teacher forward passes.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

// True when gradient recording is currently enabled.
bool GradEnabled();

}  // namespace dtdbd::tensor

#endif  // DTDBD_TENSOR_TENSOR_H_
