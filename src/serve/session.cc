#include "serve/session.h"

#include <cmath>
#include <utility>
#include <vector>

#include "data/dataset.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "text/features.h"

namespace dtdbd::serve {

namespace {

// Appends a feature row (zero-filled when absent) to a flat [*, dim]
// buffer. Validation already guaranteed size() is 0 or dim.
void AppendFeatureRow(const std::vector<float>& values, int dim,
                      std::vector<float>* out) {
  out->insert(out->end(), values.begin(), values.end());
  out->resize(out->size() + static_cast<size_t>(dim) - values.size(), 0.0f);
}

}  // namespace

InferenceSession::InferenceSession(
    std::unique_ptr<models::FakeNewsModel> model, RequestLimits limits,
    int64_t model_version)
    : model_(std::move(model)),
      limits_(limits),
      model_version_(model_version) {
  DTDBD_CHECK(model_ != nullptr);
  if (tensor::Int8Enabled()) {
    // Quantize every true weight matrix at load time, via the shared
    // eligibility rule (the offline evaluator quantizes through the same
    // helper, keeping serve-vs-offline comparisons bitwise under int8).
    // The set is keyed by storage identity, so only ops fed these exact
    // parameter tensors — MatMul and LinearRelu consult it — hit the int8
    // path; conv/embedding tables are quantized (and counted in
    // quantized_bytes) but their kernels stay fp32.
    int8_weights_ = tensor::QuantizeWeightMatrices(model_->Parameters());
  }
}

StatusOr<Prediction> InferenceSession::Predict(
    const InferenceRequest& request) {
  std::vector<StatusOr<Prediction>> results = PredictBatch({&request});
  return std::move(results[0]);
}

std::vector<StatusOr<Prediction>> InferenceSession::PredictBatch(
    const std::vector<const InferenceRequest*>& requests) {
  const size_t count = requests.size();
  // Per-element validation first: a malformed request is answered typed and
  // excluded from the forward without failing its batchmates.
  std::vector<Status> element_status(count, Status::Ok());
  std::vector<size_t> live;
  live.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    DTDBD_CHECK(requests[i] != nullptr);
    element_status[i] = ValidateRequest(*requests[i], limits_);
    if (element_status[i].ok()) live.push_back(i);
  }

  std::vector<float> p_fake(count, 0.0f);
  if (!live.empty()) {
    tensor::NoGradGuard no_grad;
    const int64_t m = static_cast<int64_t>(live.size());

    data::Batch batch;
    batch.batch_size = m;
    batch.seq_len = limits_.seq_len;
    batch.tokens.reserve(static_cast<size_t>(m * limits_.seq_len));
    batch.labels.assign(static_cast<size_t>(m), data::kReal);  // shape filler
    batch.domains.reserve(static_cast<size_t>(m));
    std::vector<float> style, emotion;
    style.reserve(static_cast<size_t>(m) * text::kStyleFeatureDim);
    emotion.reserve(static_cast<size_t>(m) * text::kEmotionFeatureDim);
    for (const size_t i : live) {
      const InferenceRequest& request = *requests[i];
      batch.tokens.insert(batch.tokens.end(), request.tokens.begin(),
                          request.tokens.end());
      batch.tokens.resize(batch.tokens.size() +
                              static_cast<size_t>(limits_.seq_len) -
                              request.tokens.size(),
                          0);  // PAD id 0
      batch.domains.push_back(request.domain);
      AppendFeatureRow(request.style, text::kStyleFeatureDim, &style);
      AppendFeatureRow(request.emotion, text::kEmotionFeatureDim, &emotion);
    }
    batch.style = tensor::Tensor::FromData({m, text::kStyleFeatureDim},
                                           std::move(style));
    batch.emotion = tensor::Tensor::FromData({m, text::kEmotionFeatureDim},
                                             std::move(emotion));

    // Install the quantized weight twins (if any) for the duration of the
    // eval forward; the kernels only consult them outside autograd, so a
    // training step on the same thread could never see int8 weights.
    tensor::ScopedInt8Weights int8_scope(int8_weights_.get());
    models::ModelOutput out = model_->Forward(batch, /*training=*/false);
    tensor::Tensor p = tensor::Softmax(out.logits);
    for (int64_t row = 0; row < m; ++row) {
      const size_t i = live[static_cast<size_t>(row)];
      const float prob = p.at(row * 2 + data::kFake);
      if (!std::isfinite(prob)) {
        element_status[i] =
            Status::Internal("model produced a non-finite probability");
      } else {
        p_fake[i] = prob;
      }
    }
  }

  std::vector<StatusOr<Prediction>> results;
  results.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    if (!element_status[i].ok()) {
      results.emplace_back(element_status[i]);
      continue;
    }
    Prediction pred;
    pred.p_fake = p_fake[i];
    pred.label = p_fake[i] >= 0.5f ? data::kFake : data::kReal;
    pred.model_version = model_version_;
    results.emplace_back(std::move(pred));
  }
  return results;
}

}  // namespace dtdbd::serve
