#include "serve/session.h"

#include <cmath>
#include <utility>
#include <vector>

#include "data/dataset.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "text/features.h"

namespace dtdbd::serve {

namespace {

// Zero-fills an absent feature vector and lifts it into the [1, dim] tensor
// shape the models expect. Validation already guaranteed size() is 0 or dim.
tensor::Tensor FeatureRow(const std::vector<float>& values, int dim) {
  std::vector<float> row = values;
  row.resize(static_cast<size_t>(dim), 0.0f);
  return tensor::Tensor::FromData({1, dim}, std::move(row));
}

}  // namespace

InferenceSession::InferenceSession(
    std::unique_ptr<models::FakeNewsModel> model, RequestLimits limits,
    int64_t model_version)
    : model_(std::move(model)),
      limits_(limits),
      model_version_(model_version) {
  DTDBD_CHECK(model_ != nullptr);
}

StatusOr<Prediction> InferenceSession::Predict(
    const InferenceRequest& request) {
  DTDBD_RETURN_IF_ERROR(ValidateRequest(request, limits_));
  tensor::NoGradGuard no_grad;

  data::Batch batch;
  batch.batch_size = 1;
  batch.seq_len = limits_.seq_len;
  batch.tokens = request.tokens;
  batch.tokens.resize(static_cast<size_t>(limits_.seq_len), 0);  // PAD id 0
  batch.labels = {data::kReal};  // unused by eval forwards; shape filler
  batch.domains = {request.domain};
  batch.style = FeatureRow(request.style, text::kStyleFeatureDim);
  batch.emotion = FeatureRow(request.emotion, text::kEmotionFeatureDim);

  models::ModelOutput out = model_->Forward(batch, /*training=*/false);
  tensor::Tensor p = tensor::Softmax(out.logits);
  const float p_fake = p.at(data::kFake);
  if (!std::isfinite(p_fake)) {
    return Status::Internal("model produced a non-finite probability");
  }
  Prediction pred;
  pred.p_fake = p_fake;
  pred.label = p_fake >= 0.5f ? data::kFake : data::kReal;
  pred.model_version = model_version_;
  return pred;
}

}  // namespace dtdbd::serve
