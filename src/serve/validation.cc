#include "serve/validation.h"

#include <cmath>
#include <string>

#include "tensor/ops.h"
#include "text/features.h"

namespace dtdbd::serve {

namespace {

// Empty is allowed (the session zero-fills); otherwise the dimension must
// match exactly and every value must be finite.
Status ValidateFeatureVector(const std::vector<float>& values,
                             int expected_dim, const char* field) {
  if (values.empty()) return Status::Ok();
  if (static_cast<int>(values.size()) != expected_dim) {
    return Status::InvalidArgument(
        std::string(field) + " has " + std::to_string(values.size()) +
        " values, expected " + std::to_string(expected_dim));
  }
  for (size_t i = 0; i < values.size(); ++i) {
    if (!std::isfinite(values[i])) {
      return Status::InvalidArgument(
          std::string(field) + " value at position " + std::to_string(i) +
          " is not finite");
    }
  }
  return Status::Ok();
}

}  // namespace

Status ValidateRequest(const InferenceRequest& request,
                       const RequestLimits& limits) {
  if (limits.vocab_size <= 0 || limits.num_domains <= 0 ||
      limits.seq_len <= 0) {
    return Status::FailedPrecondition("request limits are not configured");
  }
  if (request.tokens.empty()) {
    return Status::InvalidArgument("empty token sequence");
  }
  if (static_cast<int64_t>(request.tokens.size()) > limits.seq_len) {
    return Status::InvalidArgument(
        "token sequence length " + std::to_string(request.tokens.size()) +
        " exceeds model sequence length " + std::to_string(limits.seq_len));
  }
  DTDBD_RETURN_IF_ERROR(
      tensor::ValidateTokenIds(request.tokens, limits.vocab_size));
  if (request.domain < 0 || request.domain >= limits.num_domains) {
    return Status::InvalidArgument(
        "domain id " + std::to_string(request.domain) +
        " out of range [0, " + std::to_string(limits.num_domains) + ")");
  }
  DTDBD_RETURN_IF_ERROR(ValidateFeatureVector(
      request.style, text::kStyleFeatureDim, "style feature"));
  DTDBD_RETURN_IF_ERROR(ValidateFeatureVector(
      request.emotion, text::kEmotionFeatureDim, "emotion feature"));
  return Status::Ok();
}

}  // namespace dtdbd::serve
