#include "serve/cache.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/check.h"

namespace dtdbd::serve {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

inline void Mix(uint64_t v, uint64_t* h) {
  for (int i = 0; i < 8; ++i) {
    *h ^= (v >> (i * 8)) & 0xFFu;
    *h *= kFnvPrime;
  }
}

inline uint64_t FloatBits(float f) {
  uint32_t bits = 0;
  std::memcpy(&bits, &f, sizeof(bits));
  return bits;
}

// Per-entry bookkeeping overhead beyond the payload vectors: list node,
// index slot, key/entry scalars. An estimate — the budget is a resource
// bound, not an allocator audit.
constexpr int64_t kEntryOverhead = 128;

}  // namespace

uint64_t ContentHash(const InferenceRequest& request) {
  // Same FNV-1a construction as RouteHash, but over the FULL content.
  // Each variable-length section is preceded by its length so e.g.
  // ({1,2}, style={}) can never collide with ({1}, style={2.8e-45}).
  uint64_t h = kFnvOffset;
  Mix(static_cast<uint64_t>(static_cast<int64_t>(request.domain)), &h);
  Mix(static_cast<uint64_t>(request.tokens.size()), &h);
  for (int token : request.tokens) {
    Mix(static_cast<uint64_t>(static_cast<int64_t>(token)), &h);
  }
  Mix(static_cast<uint64_t>(request.style.size()), &h);
  for (float f : request.style) Mix(FloatBits(f), &h);
  Mix(static_cast<uint64_t>(request.emotion.size()), &h);
  for (float f : request.emotion) Mix(FloatBits(f), &h);
  return h;
}

PredictionCache::Key PredictionCache::MakeKey(const InferenceRequest& request,
                                             bool canary) {
  Key key;
  key.hash = ContentHash(request);
  key.canary = canary;
  key.domain = request.domain;
  key.tokens = request.tokens;
  key.style = request.style;
  key.emotion = request.emotion;
  return key;
}

bool PredictionCache::KeyEquals(const Key& a, const Key& b) {
  if (a.hash != b.hash || a.canary != b.canary || a.domain != b.domain ||
      a.tokens.size() != b.tokens.size() || a.style.size() != b.style.size() ||
      a.emotion.size() != b.emotion.size()) {
    return false;
  }
  if (!a.tokens.empty() &&
      std::memcmp(a.tokens.data(), b.tokens.data(),
                  a.tokens.size() * sizeof(int)) != 0) {
    return false;
  }
  if (!a.style.empty() &&
      std::memcmp(a.style.data(), b.style.data(),
                  a.style.size() * sizeof(float)) != 0) {
    return false;
  }
  if (!a.emotion.empty() &&
      std::memcmp(a.emotion.data(), b.emotion.data(),
                  a.emotion.size() * sizeof(float)) != 0) {
    return false;
  }
  return true;
}

int64_t PredictionCache::Cost(const Key& key) {
  return kEntryOverhead +
         static_cast<int64_t>(key.tokens.size() * sizeof(int)) +
         static_cast<int64_t>((key.style.size() + key.emotion.size()) *
                              sizeof(float));
}

PredictionCache::PredictionCache(int64_t capacity_bytes, int num_shards)
    : capacity_bytes_(capacity_bytes),
      shard_capacity_(std::max<int64_t>(
          1, capacity_bytes / std::max(1, num_shards))) {
  DTDBD_CHECK_GT(capacity_bytes, 0);
  DTDBD_CHECK_GT(num_shards, 0);
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

PredictionCache::Shard* PredictionCache::ShardFor(uint64_t hash) {
  // Top bits: the low bits already select canary slices (mod 100) and the
  // index buckets, so reuse from the other end of the word.
  return shards_[(hash >> 48) % shards_.size()].get();
}

bool PredictionCache::Lookup(const Key& key, Entry* out) {
  Shard* shard = ShardFor(key.hash);
  std::lock_guard<std::mutex> lock(shard->mu);
  auto range = shard->index.equal_range(key.hash);
  for (auto it = range.first; it != range.second; ++it) {
    if (KeyEquals(it->second->key, key)) {
      shard->lru.splice(shard->lru.begin(), shard->lru, it->second);
      *out = it->second->entry;
      ++shard->hits;
      return true;
    }
  }
  ++shard->misses;
  return false;
}

void PredictionCache::Insert(const Key& key, const Entry& entry) {
  Shard* shard = ShardFor(key.hash);
  std::lock_guard<std::mutex> lock(shard->mu);
  auto range = shard->index.equal_range(key.hash);
  for (auto it = range.first; it != range.second; ++it) {
    if (KeyEquals(it->second->key, key)) {
      // Refresh (the entry is identical by purity, but a reinsert after a
      // version bump raced with Clear() must win).
      it->second->entry = entry;
      shard->lru.splice(shard->lru.begin(), shard->lru, it->second);
      return;
    }
  }
  Node node;
  node.key = key;
  node.entry = entry;
  node.cost = Cost(key);
  shard->bytes += node.cost;
  shard->lru.push_front(std::move(node));
  shard->index.emplace(key.hash, shard->lru.begin());
  ++shard->inserted;
  while (shard->bytes > shard_capacity_ && !shard->lru.empty()) {
    auto victim = std::prev(shard->lru.end());
    auto vrange = shard->index.equal_range(victim->key.hash);
    for (auto it = vrange.first; it != vrange.second; ++it) {
      if (it->second == victim) {
        shard->index.erase(it);
        break;
      }
    }
    shard->bytes -= victim->cost;
    shard->lru.erase(victim);
    ++shard->evicted;
  }
}

void PredictionCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->invalidated += static_cast<int64_t>(shard->lru.size());
    shard->lru.clear();
    shard->index.clear();
    shard->bytes = 0;
  }
}

void PredictionCache::ClearVariant(bool canary) {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      if (it->key.canary != canary) {
        ++it;
        continue;
      }
      auto range = shard->index.equal_range(it->key.hash);
      for (auto idx = range.first; idx != range.second; ++idx) {
        if (idx->second == it) {
          shard->index.erase(idx);
          break;
        }
      }
      shard->bytes -= it->cost;
      it = shard->lru.erase(it);
      ++shard->invalidated;
    }
  }
}

CacheStats PredictionCache::Stats() const {
  CacheStats stats;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.inserted += shard->inserted;
    stats.evicted += shard->evicted;
    stats.invalidated += shard->invalidated;
    stats.bytes += shard->bytes;
    stats.entries += static_cast<int64_t>(shard->lru.size());
  }
  return stats;
}

}  // namespace dtdbd::serve
