// Overload-aware serving front end: bounded queue, deadlines, admission
// control, a watchdog, and checkpoint hot-reload with graceful degradation.
//
// Threading model. All tensor work — inference forwards AND reload-time
// model construction/restore — runs on ONE worker thread that the Server
// owns. This is forced by the deterministic thread pool: Pool::Run admits a
// single caller at a time, so two threads running forwards concurrently
// would race on the shared dispatch state. Funneling every forward through
// one thread also makes serving reproducible: requests are answered in
// admission order, and each answer is bitwise identical to the offline
// evaluator regardless of DTDBD_NUM_THREADS. Client threads only touch the
// queue + promise; the watchdog thread only reads atomics.
//
// Overload semantics (see DESIGN.md §9):
//   - Admission control: Submit() fails fast with kResourceExhausted when
//     `max_queue_depth` inference requests are already waiting. Control
//     jobs (reload, stop) bypass the depth limit so an overloaded server
//     can still be fixed or shut down.
//   - Deadlines: each request carries an absolute deadline (clock nanos;
//     0 = none). The worker sheds expired requests at dequeue time with
//     kDeadlineExceeded — it never starts a forward it cannot finish in
//     time usefully.
//   - Shutdown: Stop() fails everything still queued with kUnavailable.
//
// Hot-reload state machine: loading -> serving | degraded. A reload runs on
// the worker thread (so in-flight forwards never observe a half-swapped
// model): load the CRC-checked checkpoint, build a fresh model from the
// factory, restore parameters, swap the session under a bumped version. Any
// step failing is retried with exponential backoff up to
// `reload_max_attempts`; on exhaustion the server keeps the last-good model
// and marks itself degraded in the HealthReport (cleared by the next
// successful reload). FaultInjector hooks (load failure, slow load) drive
// the failure paths in tests.
#ifndef DTDBD_SERVE_SERVER_H_
#define DTDBD_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "models/model.h"
#include "serve/session.h"
#include "train/fault_injector.h"

namespace dtdbd::serve {

// Injectable time source. Production uses SystemClock (steady, monotonic);
// tests use ManualClock to make deadline behaviour deterministic.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual int64_t NowNanos() const = 0;
};

class SystemClock : public Clock {
 public:
  int64_t NowNanos() const override;
  static const SystemClock* Get();
};

class ManualClock : public Clock {
 public:
  int64_t NowNanos() const override {
    return now_.load(std::memory_order_relaxed);
  }
  void Set(int64_t nanos) { now_.store(nanos, std::memory_order_relaxed); }
  void Advance(int64_t nanos) {
    now_.fetch_add(nanos, std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> now_{0};
};

struct ServerOptions {
  // Admission control: max requests waiting (excludes the one being served
  // and control jobs).
  int64_t max_queue_depth = 64;
  // Applied at Submit() when the caller passes deadline 0. 0 = no deadline.
  int64_t default_deadline_nanos = 0;
  // Watchdog snapshot period; <= 0 disables the watchdog thread.
  int64_t watchdog_period_nanos = 50'000'000;  // 50 ms
  // Hot-reload retry policy.
  int reload_max_attempts = 3;
  int64_t reload_backoff_initial_nanos = 1'000'000;  // 1 ms
  double reload_backoff_multiplier = 2.0;
  // Sliding window of recent request latencies backing p50/p99.
  int64_t latency_window = 1024;
  // nullptr = SystemClock::Get(). Must outlive the server.
  const Clock* clock = nullptr;
  // Optional failure-injection hooks (load failure, slow load) for tests.
  train::FaultInjector* fault_injector = nullptr;
  // Builds a fresh model for hot-reload; must produce the same architecture
  // the serving checkpoints were written from. Reload fails with
  // kFailedPrecondition if unset.
  std::function<std::unique_ptr<models::FakeNewsModel>()> model_factory;
};

// One watchdog/Health() snapshot. Counters are cumulative since start.
struct HealthReport {
  int64_t queue_depth = 0;
  int64_t max_queue_depth = 0;
  int64_t submitted = 0;
  int64_t admitted = 0;
  int64_t rejected_queue_full = 0;  // kResourceExhausted at admission
  int64_t shed_deadline = 0;        // kDeadlineExceeded at dequeue
  int64_t served_ok = 0;
  int64_t invalid_requests = 0;  // kInvalidArgument from validation
  int64_t internal_errors = 0;   // any other non-ok Predict status
  int64_t reload_attempts = 0;
  int64_t reload_successes = 0;
  int64_t reload_failures = 0;  // individual failed attempts
  bool degraded = false;        // last reload exhausted all attempts
  std::string last_reload_error;
  int64_t model_version = 0;
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  int64_t latency_samples = 0;
  int64_t watchdog_ticks = 0;
};

class Server {
 public:
  // Takes ownership of the initial session and starts the worker (and,
  // unless disabled, the watchdog).
  Server(std::unique_ptr<InferenceSession> session, ServerOptions options);
  ~Server();  // Stop()s

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Enqueues a request. `deadline_nanos` is absolute per the server clock;
  // 0 means "apply default_deadline_nanos, else none". The future resolves
  // with the prediction or a typed error: kInvalidArgument (validation),
  // kResourceExhausted (queue full — resolved immediately),
  // kDeadlineExceeded (shed), kUnavailable (server stopped), kInternal
  // (non-finite output).
  std::future<StatusOr<Prediction>> Submit(InferenceRequest request,
                                           int64_t deadline_nanos = 0);

  // Synchronous convenience wrapper around Submit(). Do not call from the
  // worker's own callbacks (it would self-deadlock).
  StatusOr<Prediction> Predict(const InferenceRequest& request);

  // Schedules a hot-reload from a v2 checkpoint; resolves with the final
  // outcome after retries. Queued behind in-flight requests, ahead of
  // nothing — strict FIFO with inference.
  std::future<Status> ReloadFromCheckpoint(std::string checkpoint_path);

  // Current snapshot, computed on the calling thread.
  HealthReport Health() const;
  // Most recent snapshot taken by the watchdog thread.
  HealthReport LastWatchdogReport() const;

  bool degraded() const { return degraded_.load(std::memory_order_acquire); }
  int64_t model_version() const {
    return model_version_.load(std::memory_order_acquire);
  }

  // Rejects new work, fails everything still queued with kUnavailable, and
  // joins both threads. Idempotent.
  void Stop();

 private:
  struct Job {
    enum class Kind { kInfer, kReload };
    Kind kind = Kind::kInfer;
    // kInfer:
    InferenceRequest request;
    int64_t deadline_nanos = 0;  // absolute; 0 = none
    int64_t enqueue_nanos = 0;
    std::promise<StatusOr<Prediction>> reply;
    // kReload:
    std::string checkpoint_path;
    std::promise<Status> reload_reply;
  };

  void WorkerLoop();
  void WatchdogLoop();
  void ServeOne(Job* job);
  // Runs on the worker thread; one attempt of the reload state machine.
  Status TryLoadInto(const std::string& path);
  Status RunReload(const std::string& path);
  void RecordLatency(int64_t nanos);

  const ServerOptions options_;
  const Clock* const clock_;

  // session_ is touched only by the worker thread after construction.
  std::unique_ptr<InferenceSession> session_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Job> queue_;
  int64_t inference_depth_ = 0;  // kInfer jobs currently queued
  bool stopped_ = false;

  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> admitted_{0};
  std::atomic<int64_t> rejected_queue_full_{0};
  std::atomic<int64_t> shed_deadline_{0};
  std::atomic<int64_t> served_ok_{0};
  std::atomic<int64_t> invalid_requests_{0};
  std::atomic<int64_t> internal_errors_{0};
  std::atomic<int64_t> reload_attempts_{0};
  std::atomic<int64_t> reload_successes_{0};
  std::atomic<int64_t> reload_failures_{0};
  std::atomic<int64_t> watchdog_ticks_{0};
  std::atomic<bool> degraded_{false};
  std::atomic<int64_t> model_version_{0};

  mutable std::mutex stats_mu_;  // guards latencies_ + last_reload_error_
  std::vector<int64_t> latencies_;  // ring buffer of size latency_window
  int64_t latency_next_ = 0;
  int64_t latency_count_ = 0;
  std::string last_reload_error_;

  mutable std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;
  HealthReport last_watchdog_report_;

  std::thread worker_;
  std::thread watchdog_;
};

}  // namespace dtdbd::serve

#endif  // DTDBD_SERVE_SERVER_H_
