// Overload-aware serving front end: bounded queue, deadlines, admission
// control, dynamic micro-batching over N workers, a watchdog, and
// checkpoint hot-reload with graceful degradation.
//
// Threading model. `num_workers` serving threads pull from one bounded
// FIFO. Each worker owns a private KernelPool (installed with
// ScopedKernelPool for the worker's lifetime), so concurrent forwards
// never share kernel-dispatch state; shard boundaries are a pure function
// of (n, grain, nthreads), so which pool runs a kernel cannot change any
// result. Client threads only touch the queue + promise; the watchdog
// thread only reads atomics.
//
// Micro-batching (see DESIGN.md §9.5): a worker that dequeues an inference
// request greedily coalesces up to `max_batch` consecutive queued
// inference requests into one batch-of-N forward. The fill window is zero
// — only requests already waiting are taken, so a request is NEVER held
// waiting for the batch to fill (and therefore can never miss its deadline
// because of batching). Expired elements are shed per element at dequeue;
// per-element results are bitwise identical to batch-of-one because eval
// kernels never accumulate across rows. All elements of a batch are served
// by the same session, so the compatibility key (model version) holds by
// construction: a reload is a quiescent barrier (below), never interleaved
// with a batch.
//
// Overload semantics (see DESIGN.md §9):
//   - Admission control: Submit() fails fast with kResourceExhausted when
//     `max_queue_depth` inference requests are already waiting. Control
//     jobs (reload, stop) bypass the depth limit so an overloaded server
//     can still be fixed or shut down.
//   - Deadlines: each request carries an absolute deadline (clock nanos;
//     0 = none). Workers shed expired requests at dequeue time with
//     kDeadlineExceeded — a forward that cannot finish usefully is never
//     started, and batch coalescing never delays the check.
//   - Shutdown: Stop() fails everything still queued — including requests
//     not yet coalesced into any batch — with kUnavailable.
//
// Hot-reload state machine: loading -> serving | degraded. The worker that
// dequeues a reload raises a barrier: no new batches start, and it waits
// for in-flight batches to drain before touching the session, so a forward
// never observes a half-swapped model even with N workers. Requests queued
// behind the reload are served after it under the new version (strict
// queue order); requests dequeued by other workers *before* the reload was
// popped may complete after it — the per-response `model_version` stamp is
// authoritative. Any load step failing is retried with exponential backoff
// up to `reload_max_attempts`; on exhaustion the server keeps the
// last-good model and marks itself degraded in the HealthReport (cleared
// by the next successful reload). FaultInjector hooks (load failure, slow
// load) drive the failure paths in tests.
#ifndef DTDBD_SERVE_SERVER_H_
#define DTDBD_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "models/model.h"
#include "serve/session.h"
#include "train/fault_injector.h"

namespace dtdbd {
class FlagParser;
}  // namespace dtdbd

namespace dtdbd::serve {

// Injectable time source. Production uses SystemClock (steady, monotonic);
// tests use ManualClock to make deadline behaviour deterministic.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual int64_t NowNanos() const = 0;
};

class SystemClock : public Clock {
 public:
  int64_t NowNanos() const override;
  static const SystemClock* Get();
};

class ManualClock : public Clock {
 public:
  int64_t NowNanos() const override {
    return now_.load(std::memory_order_relaxed);
  }
  void Set(int64_t nanos) { now_.store(nanos, std::memory_order_relaxed); }
  void Advance(int64_t nanos) {
    now_.fetch_add(nanos, std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> now_{0};
};

struct ServerOptions {
  // Serving worker threads. 0 = resolve from DTDBD_SERVE_WORKERS (strict
  // parse; unset -> 1, invalid -> warning + 1).
  int num_workers = 0;
  // Max inference requests coalesced into one forward (>= 1). 1 disables
  // batching.
  int max_batch = 1;
  // Admission control: max requests waiting (excludes those being served
  // and control jobs).
  int64_t max_queue_depth = 64;
  // Applied at Submit() when the caller passes deadline 0. 0 = no deadline.
  int64_t default_deadline_nanos = 0;
  // Watchdog snapshot period; <= 0 disables the watchdog thread.
  int64_t watchdog_period_nanos = 50'000'000;  // 50 ms
  // Hot-reload retry policy.
  int reload_max_attempts = 3;
  int64_t reload_backoff_initial_nanos = 1'000'000;  // 1 ms
  double reload_backoff_multiplier = 2.0;
  // Sliding window of recent request latencies backing p50/p99.
  int64_t latency_window = 1024;
  // nullptr = SystemClock::Get(). Must outlive the server.
  const Clock* clock = nullptr;
  // Optional failure-injection hooks (load failure, slow load) for tests.
  train::FaultInjector* fault_injector = nullptr;
  // Builds a fresh model for hot-reload; must produce the same architecture
  // the serving checkpoints were written from. Reload fails with
  // kFailedPrecondition if unset.
  std::function<std::unique_ptr<models::FakeNewsModel>()> model_factory;
};

// Strict resolution for the serving knobs, matching the --threads rule: a
// present-but-invalid value (non-numeric, zero, negative, trailing junk)
// logs a warning and yields the safe default of 1 instead of being
// silently reinterpreted.
int ServeWorkersFromEnv();  // DTDBD_SERVE_WORKERS; unset -> 1
// --serve-workers flag, falling back to DTDBD_SERVE_WORKERS, then 1.
int ResolveServeWorkers(const FlagParser& flags);
// --max-batch flag; absent -> 1.
int ResolveMaxBatch(const FlagParser& flags);

// One watchdog/Health() snapshot. Counters are cumulative since start.
struct HealthReport {
  int64_t queue_depth = 0;
  int64_t max_queue_depth = 0;
  int64_t num_workers = 0;
  int64_t max_batch = 0;
  int64_t submitted = 0;
  int64_t admitted = 0;
  int64_t rejected_queue_full = 0;  // kResourceExhausted at admission
  int64_t shed_deadline = 0;        // kDeadlineExceeded at dequeue
  int64_t served_ok = 0;
  int64_t invalid_requests = 0;  // kInvalidArgument from validation
  int64_t internal_errors = 0;   // any other non-ok Predict status
  int64_t reload_attempts = 0;
  int64_t reload_successes = 0;
  int64_t reload_failures = 0;  // individual failed attempts
  bool degraded = false;        // last reload exhausted all attempts
  std::string last_reload_error;
  int64_t model_version = 0;
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  int64_t latency_samples = 0;
  int64_t watchdog_ticks = 0;
  // True when the latency window holds no samples yet. The percentiles
  // above are meaningless zeros in that case; consumers (watchdog alerts,
  // bench JSON) must branch on this flag instead of treating 0.0 ms as a
  // real — and suspiciously excellent — p99.
  bool latency_no_samples = true;
  // Micro-batching: histogram[s] = forwards executed with s live elements
  // (index 0 unused), plus the cumulative queue-wait vs compute split so
  // operators can see whether latency is fill or forward.
  std::vector<int64_t> batch_size_histogram;
  int64_t batches_run = 0;
  double avg_batch_size = 0.0;
  double queue_wait_ms_total = 0.0;  // admission -> dequeue, served elements
  double compute_ms_total = 0.0;     // forward wall-clock across batches
  // Per-element / per-batch averages of the split above, 0.0 (never NaN)
  // before any batch has run.
  double avg_queue_wait_ms = 0.0;
  double avg_compute_ms = 0.0;
};

class Server {
 public:
  // Takes ownership of the initial session and starts the workers (and,
  // unless disabled, the watchdog).
  Server(std::unique_ptr<InferenceSession> session, ServerOptions options);
  ~Server();  // Stop()s

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Enqueues a request. `deadline_nanos` is absolute per the server clock;
  // 0 means "apply default_deadline_nanos, else none". The future resolves
  // with the prediction or a typed error: kInvalidArgument (validation),
  // kResourceExhausted (queue full — resolved immediately),
  // kDeadlineExceeded (shed), kUnavailable (server stopped), kInternal
  // (non-finite output).
  std::future<StatusOr<Prediction>> Submit(InferenceRequest request,
                                           int64_t deadline_nanos = 0);

  // Callback flavor of Submit() for event-loop callers (the socket front
  // end) that must not block a thread per pending request. `done` is invoked
  // exactly once with the same outcomes Submit() produces — on the
  // submitting thread for immediate rejections (queue full, stopped), on a
  // worker thread otherwise. It must be fast and must not call back into
  // this Server (a worker thread invoking Submit().get() would self-
  // deadlock); enqueue-and-wake is the intended shape.
  void SubmitAsync(InferenceRequest request, int64_t deadline_nanos,
                   std::function<void(StatusOr<Prediction>)> done);

  // Synchronous convenience wrapper around Submit(). Do not call from a
  // worker's own callbacks (it would self-deadlock).
  StatusOr<Prediction> Predict(const InferenceRequest& request);

  // Schedules a hot-reload from a v2 checkpoint; resolves with the final
  // outcome after retries. A quiescent barrier: strictly ordered against
  // everything still queued, and no forward overlaps the swap.
  std::future<Status> ReloadFromCheckpoint(std::string checkpoint_path);

  // Current snapshot, computed on the calling thread.
  HealthReport Health() const;
  // Most recent snapshot taken by the watchdog thread.
  HealthReport LastWatchdogReport() const;

  bool degraded() const { return degraded_.load(std::memory_order_acquire); }
  int64_t model_version() const {
    return model_version_.load(std::memory_order_acquire);
  }
  int num_workers() const { return num_workers_; }
  int max_batch() const { return max_batch_; }

  // Rejects new work, fails everything still queued — coalesced into a
  // batch or not — with kUnavailable, and joins all threads. Idempotent.
  void Stop();

 private:
  struct Job {
    enum class Kind { kInfer, kReload };
    Kind kind = Kind::kInfer;
    // kInfer: `done` is the single resolution path — Submit() wraps a
    // promise into it, SubmitAsync() passes the caller's callback through.
    InferenceRequest request;
    int64_t deadline_nanos = 0;  // absolute; 0 = none
    int64_t enqueue_nanos = 0;
    std::function<void(StatusOr<Prediction>)> done;
    // kReload:
    std::string checkpoint_path;
    std::promise<Status> reload_reply;
  };

  void WorkerLoop(KernelPool* pool);
  void WatchdogLoop();
  // Serves one coalesced batch: per-element deadline shed, one PredictBatch
  // forward, per-element replies and counters.
  void ServeBatch(std::vector<Job>* jobs);
  // Fails everything still queued with kUnavailable. Caller holds mu_.
  void DrainQueueLocked();
  // Runs on a worker thread inside the reload barrier; one attempt of the
  // reload state machine.
  Status TryLoadInto(const std::string& path);
  Status RunReload(const std::string& path);
  void RecordLatency(int64_t nanos);

  const ServerOptions options_;
  const Clock* const clock_;
  int num_workers_ = 1;  // resolved from options/env in the constructor
  int max_batch_ = 1;

  // session_ is read by workers only between the inflight-batch increment
  // and decrement (both under mu_), and written only inside the reload
  // barrier after in-flight batches drained — so the pointer is stable for
  // the duration of every forward.
  std::unique_ptr<InferenceSession> session_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Job> queue_;
  int64_t inference_depth_ = 0;   // kInfer jobs currently queued
  int64_t inflight_batches_ = 0;  // batches between dequeue and reply
  bool reload_active_ = false;    // barrier: blocks all dequeue
  bool stopped_ = false;

  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> admitted_{0};
  std::atomic<int64_t> rejected_queue_full_{0};
  std::atomic<int64_t> shed_deadline_{0};
  std::atomic<int64_t> served_ok_{0};
  std::atomic<int64_t> invalid_requests_{0};
  std::atomic<int64_t> internal_errors_{0};
  std::atomic<int64_t> reload_attempts_{0};
  std::atomic<int64_t> reload_successes_{0};
  std::atomic<int64_t> reload_failures_{0};
  std::atomic<int64_t> watchdog_ticks_{0};
  std::atomic<int64_t> queue_wait_nanos_{0};
  std::atomic<int64_t> compute_nanos_{0};
  std::atomic<bool> degraded_{false};
  std::atomic<int64_t> model_version_{0};

  mutable std::mutex stats_mu_;  // guards latencies_, batch hist, reload err
  std::vector<int64_t> latencies_;  // ring buffer of size latency_window
  int64_t latency_next_ = 0;
  int64_t latency_count_ = 0;
  std::vector<int64_t> batch_size_hist_;  // [0, max_batch_], index 0 unused
  int64_t batches_run_ = 0;
  int64_t batched_elements_ = 0;  // live elements across all batches
  std::string last_reload_error_;

  mutable std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;
  HealthReport last_watchdog_report_;

  std::vector<std::unique_ptr<KernelPool>> pools_;  // one per worker
  std::vector<std::thread> workers_;
  std::thread watchdog_;
};

}  // namespace dtdbd::serve

#endif  // DTDBD_SERVE_SERVER_H_
