// Overload-aware serving front end: bounded queue, deadlines, admission
// control, dynamic micro-batching over N workers, a watchdog, and a
// multi-model fleet with per-model hot-reload, canary, and shadow
// deployments.
//
// Fleet model (see DESIGN.md §11). The server owns a registry of N named
// models (ModelFleet); every model has its own InferenceSession stack
// (primary + optional canary candidate + optional shadow), its own version
// counter, reload state, and telemetry — but all models share ONE
// admission gate, ONE bounded FIFO, and ONE worker pool. The router
// resolves each request at admission by `InferenceRequest::model_name`
// (empty = the configured default, so pre-fleet call sites are a
// fleet-of-one and behave bitwise identically); an unknown name is
// rejected immediately with kNotFound.
//
// Threading model. `num_workers` serving threads pull from one bounded
// FIFO. Each worker owns a private KernelPool (installed with
// ScopedKernelPool for the worker's lifetime), so concurrent forwards
// never share kernel-dispatch state; shard boundaries are a pure function
// of (n, grain, nthreads), so which pool runs a kernel cannot change any
// result. Client threads only touch the queue + promise; the watchdog
// thread only reads atomics.
//
// Micro-batching (see DESIGN.md §9.5): a worker that dequeues an inference
// request greedily coalesces up to `max_batch` consecutive queued
// inference requests into one batch-of-N forward — but only while they
// agree on (model, canary-variant): a coalesced batch NEVER mixes models
// or variants, so the per-batch compatibility key (one session, one
// version) holds by construction. The fill window is zero — only requests
// already waiting are taken, so a request is NEVER held waiting for the
// batch to fill. Expired elements are shed per element at dequeue;
// per-element results are bitwise identical to batch-of-one because eval
// kernels never accumulate across rows.
//
// Prediction cache + in-flight dedup (see DESIGN.md §12): when
// `cache_bytes` > 0, admission first consults the routed model's
// content-addressed PredictionCache (an exact hit replies immediately,
// bitwise identical to a forward) and then the in-flight dedup wait-set
// (an identical request already queued or running absorbs this one as a
// follower; the leader's result is fanned to every member at completion,
// each judged against its OWN deadline). Both layers stand down while any
// control job is queued or running, and the barrier closures clear the
// affected cache scope on reload/promote/cancel/rollback, so control-job
// ordering and every bitwise-parity contract hold exactly as without the
// cache. cache_bytes == 0 IS the pre-cache code path.
//
// Overload semantics (see DESIGN.md §9):
//   - Admission control: Submit() fails fast with kResourceExhausted when
//     `max_queue_depth` inference requests are already waiting (the gate is
//     shared across the fleet). Control jobs (reload, canary ops, stop)
//     bypass the depth limit so an overloaded server can still be fixed or
//     shut down.
//   - Deadlines: each request carries an absolute deadline (clock nanos;
//     0 = none). Workers shed expired requests at dequeue time with
//     kDeadlineExceeded.
//   - Shutdown: Stop() fails everything still queued with kUnavailable.
//
// Control jobs and the quiescent barrier. Reload, canary start / promote /
// cancel, shadow start / stop, and canary auto-rollback all run as control
// jobs: the worker that dequeues one raises a barrier — no new batches
// start, in-flight batches drain — and then runs the job's closure, so a
// forward never observes a half-swapped session even with N workers.
// Control jobs are strictly ordered against the queue (requests queued
// behind one are served after it under the new state).
//
// Canary (see DESIGN.md §11.2): StartCanary loads a candidate version next
// to the primary and routes a deterministic hash slice (`percent`% by
// content hash) of that model's traffic to it. A windowed monitor compares
// canary vs primary error rate (and optionally mean compute) every
// `window` canary-served elements; on regression the server flips the
// model's `canary_draining` flag — so routing stops feeding the candidate
// immediately — and pushes an auto-rollback control job to the FRONT of
// the queue, which frees the candidate under the barrier. Requests already
// queued for the canary slice simply fall back to the primary at dequeue:
// a rollback never fails or drops a request. PromoteCanary installs the
// candidate as the new primary; CancelCanary discards it.
//
// Shadow (see DESIGN.md §11.3): StartShadow loads a candidate that scores
// every primary-path batch of that model OFF the response path — the
// primary's replies are sent first and are bitwise identical to a
// no-shadow run; afterwards the worker runs the shadow forward on the same
// inputs and records per-request score deltas (|Δ p_fake|, label
// disagreements) into the model's ShadowStats. Shadow runs inside the
// in-flight-batch window, so barrier jobs never overlap it.
//
// Hot-reload state machine (per model): loading -> serving | degraded.
// Any load step failing is retried with exponential backoff up to
// `reload_max_attempts`; on exhaustion the model keeps its last-good
// primary and marks itself degraded (cleared by the next success). The
// top-level HealthReport reload fields mirror the DEFAULT model for
// backward compatibility; per-model state lives in HealthReport::models.
#ifndef DTDBD_SERVE_SERVER_H_
#define DTDBD_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "models/model.h"
#include "serve/cache.h"
#include "serve/fleet.h"
#include "serve/session.h"
#include "train/fault_injector.h"

namespace dtdbd {
class FlagParser;
}  // namespace dtdbd

namespace dtdbd::serve {

// Injectable time source. Production uses SystemClock (steady, monotonic);
// tests use ManualClock to make deadline behaviour deterministic.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual int64_t NowNanos() const = 0;
};

class SystemClock : public Clock {
 public:
  int64_t NowNanos() const override;
  static const SystemClock* Get();
};

class ManualClock : public Clock {
 public:
  int64_t NowNanos() const override {
    return now_.load(std::memory_order_relaxed);
  }
  void Set(int64_t nanos) { now_.store(nanos, std::memory_order_relaxed); }
  void Advance(int64_t nanos) {
    now_.fetch_add(nanos, std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> now_{0};
};

struct ServerOptions {
  // Serving worker threads. 0 = resolve from DTDBD_SERVE_WORKERS (strict
  // parse; unset -> 1, invalid -> warning + 1).
  int num_workers = 0;
  // Max inference requests coalesced into one forward (>= 1). 1 disables
  // batching.
  int max_batch = 1;
  // Admission control: max requests waiting (excludes those being served
  // and control jobs). Shared across all models in the fleet.
  int64_t max_queue_depth = 64;
  // Applied at Submit() when the caller passes deadline 0. 0 = no deadline.
  int64_t default_deadline_nanos = 0;
  // Watchdog snapshot period; <= 0 disables the watchdog thread.
  int64_t watchdog_period_nanos = 50'000'000;  // 50 ms
  // Hot-reload retry policy (applies to every model's reload and to
  // canary/shadow candidate loads).
  int reload_max_attempts = 3;
  int64_t reload_backoff_initial_nanos = 1'000'000;  // 1 ms
  double reload_backoff_multiplier = 2.0;
  // Sliding window of recent request latencies backing p50/p99 (aggregate
  // and per model).
  int64_t latency_window = 1024;
  // Fleet name the constructor registers the initial session under, and
  // the model requests with an empty model_name route to.
  std::string default_model_name = kDefaultModelName;
  // Prediction cache + in-flight dedup byte budget PER MODEL (DESIGN.md
  // §12). 0 = off (the pre-cache bitwise-pinned path: every request runs a
  // forward). -1 = resolve from DTDBD_CACHE_BYTES (strict parse; unset or
  // invalid -> 0). Positive = both layers on.
  int64_t cache_bytes = -1;
  // --- labeled-feedback quality monitoring (DESIGN.md §13) ---
  // Capacity of each per-model, per-variant labeled-feedback ring. 0 =
  // resolve from DTDBD_FEEDBACK_RING (strict parse; unset or invalid ->
  // 1024). The ring bounds memory; the window below bounds every verdict.
  int64_t feedback_ring = 0;
  // Observations per windowed quality evaluation: the primary snapshot
  // size behind HealthReport, the degraded-flag cadence, and the primary
  // side of the canary quality gate. 0 = resolve from DTDBD_DRIFT_WINDOW
  // (strict parse; unset or invalid -> 256).
  int64_t drift_window = 0;
  // Windowed-AUC floor for the PRIMARY: when its windowed AUC — over at
  // least min_quality_samples labeled feedbacks with a defined AUC —
  // falls below this, the model raises its typed quality_degraded flag;
  // recovering to >= the floor clears it. Degenerate windows (too few
  // samples, single class) move the flag in NEITHER direction. <= 0
  // disables the flag entirely.
  double primary_min_auc = 0.0;
  // Minimum window samples before any primary quality verdict.
  int64_t min_quality_samples = 32;
  // Per-domain floor for the bias-spread computation in HealthReport.
  int64_t min_domain_quality_samples = 8;
  // nullptr = SystemClock::Get(). Must outlive the server.
  const Clock* clock = nullptr;
  // Optional failure-injection hooks (load failure, slow load, canary
  // predict failure) for tests.
  train::FaultInjector* fault_injector = nullptr;
  // Builds a fresh model for hot-reload of the DEFAULT model; must produce
  // the same architecture the serving checkpoints were written from.
  // (AddModel takes a per-model factory.) Reload fails with
  // kFailedPrecondition if unset.
  std::function<std::unique_ptr<models::FakeNewsModel>()> model_factory;
};

// Strict resolution for the serving knobs, matching the --threads rule: a
// present-but-invalid value (non-numeric, zero, negative, trailing junk)
// logs a warning and yields the safe default of 1 instead of being
// silently reinterpreted.
int ServeWorkersFromEnv();  // DTDBD_SERVE_WORKERS; unset -> 1
// --serve-workers flag, falling back to DTDBD_SERVE_WORKERS, then 1.
int ResolveServeWorkers(const FlagParser& flags);
// --max-batch flag; absent -> 1.
int ResolveMaxBatch(const FlagParser& flags);
// Prediction-cache budget. Unlike the worker knobs, 0 is a VALID value
// ("cache off"), so these use the strict non-negative parse: unset -> 0,
// invalid (sign, junk, overflow) -> warning + 0 — a typo'd budget must
// disable the cache, not conjure one of surprise size.
int64_t CacheBytesFromEnv();  // DTDBD_CACHE_BYTES; unset -> 0
// --cache-bytes flag, falling back to DTDBD_CACHE_BYTES, then 0.
int64_t ResolveCacheBytes(const FlagParser& flags);
// Quality-monitoring knobs, strict-parsed like the worker knobs: a
// present-but-invalid value warns and pins the documented default instead
// of being silently reinterpreted or falling through to the env.
int FeedbackRingFromEnv();  // DTDBD_FEEDBACK_RING; unset -> 1024
// --feedback-ring flag, falling back to DTDBD_FEEDBACK_RING, then 1024.
int ResolveFeedbackRing(const FlagParser& flags);
int DriftWindowFromEnv();  // DTDBD_DRIFT_WINDOW; unset -> 256
// --drift-window flag, falling back to DTDBD_DRIFT_WINDOW, then 256.
int ResolveDriftWindow(const FlagParser& flags);
// AUC slack in integer percentage points (5 -> 0.05) so the shared strict
// positive-int parser applies; 0 would mean "any dip regresses" and is
// rejected like every other invalid value.
int QualitySlackPercentFromEnv();  // DTDBD_QUALITY_SLACK; unset -> 5
// --quality-slack flag, falling back to DTDBD_QUALITY_SLACK, then 5.
int ResolveQualitySlackPercent(const FlagParser& flags);
// Int8 weight-quantized serving (strict parse, default OFF — an accuracy
// knob must never turn itself on from a typo): DTDBD_INT8 unset/"0" ->
// off, "1" -> on, anything else -> warning + off.
bool Int8FromEnv();
// --int8 flag, falling back to DTDBD_INT8, then off. Follows the PR 9
// rule: a present-but-invalid flag value pins the default (off) and never
// falls through to the env. `--int8` / `--int8=1` -> on, `--no-int8` /
// `--int8=0` -> off. Callers pass the result to tensor::SetInt8Enabled
// BEFORE constructing sessions — quantization happens at session load.
bool ResolveInt8(const FlagParser& flags);

// Nearest-rank percentiles over the first `count` slots of an (unordered)
// latency ring, in milliseconds. p50 is the ceil(0.50*count)-th smallest
// sample, p99 the ceil(0.99*count)-th; count==1 returns that sample for
// both, count<=0 leaves the outputs untouched (the caller's
// latency_no_samples flag owns that case). By construction the picked
// rank is always in [1, count] — never past the filled window — and is
// monotone in q, so p99 can never come from a lower slot than p50.
// Exposed for the table-driven tests.
void LatencyPercentiles(const std::vector<int64_t>& ring, int64_t count,
                        double* p50_ms, double* p99_ms);

// One watchdog/Health() snapshot. Counters are cumulative since start.
// Top-level fields are fleet aggregates, except model_version / degraded /
// last_reload_error which mirror the DEFAULT model (the pre-fleet
// contract); `models` carries the per-model breakdown.
struct HealthReport {
  int64_t queue_depth = 0;
  int64_t max_queue_depth = 0;
  int64_t num_workers = 0;
  int64_t max_batch = 0;
  int64_t submitted = 0;
  int64_t admitted = 0;
  int64_t rejected_queue_full = 0;  // kResourceExhausted at admission
  int64_t shed_deadline = 0;        // kDeadlineExceeded at dequeue
  int64_t served_ok = 0;
  int64_t invalid_requests = 0;  // kInvalidArgument from validation
  int64_t internal_errors = 0;   // any other non-ok Predict status
  int64_t reload_attempts = 0;
  int64_t reload_successes = 0;
  int64_t reload_failures = 0;  // individual failed attempts
  bool degraded = false;        // DEFAULT model: last reload exhausted
  std::string last_reload_error;  // DEFAULT model
  int64_t model_version = 0;      // DEFAULT model
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  int64_t latency_samples = 0;
  int64_t watchdog_ticks = 0;
  // True when the latency window holds no samples yet. The percentiles
  // above are meaningless zeros in that case; consumers (watchdog alerts,
  // bench JSON) must branch on this flag instead of treating 0.0 ms as a
  // real — and suspiciously excellent — p99.
  bool latency_no_samples = true;
  // Micro-batching: histogram[s] = forwards executed with s live elements
  // (index 0 unused), plus the cumulative queue-wait vs compute split so
  // operators can see whether latency is fill or forward.
  std::vector<int64_t> batch_size_histogram;
  int64_t batches_run = 0;
  double avg_batch_size = 0.0;
  double queue_wait_ms_total = 0.0;  // admission -> dequeue, served elements
  double compute_ms_total = 0.0;     // forward wall-clock across batches
  // Per-element / per-batch averages of the split above, 0.0 (never NaN)
  // before any batch has run.
  double avg_queue_wait_ms = 0.0;
  double avg_compute_ms = 0.0;
  // Fleet section. A model registered after the mu_ snapshot of one
  // Health() call simply appears in the next report — `models` is built
  // from a pointer snapshot, so a watchdog tick racing AddModel can never
  // observe a half-registered entry.
  std::string default_model;
  int64_t num_models = 0;
  int64_t rejected_unknown_model = 0;  // kNotFound at admission
  std::vector<ModelHealth> models;
  // Prediction cache + dedup aggregates across the fleet (per-model
  // breakdown in models[i].cache). Hits and deduped followers count into
  // served_ok like any other answered request but never into
  // batches_run / the batch histogram — no forward ran for them.
  bool cache_enabled = false;
  int64_t cache_bytes_limit = 0;  // per-model byte budget; 0 = off
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_evicted = 0;
  int64_t cache_bytes = 0;
  int64_t deduped = 0;
  // Labeled-feedback quality (per-model breakdown in models[i].quality;
  // quality_degraded mirrors the DEFAULT model like the reload fields).
  int64_t feedback_recorded = 0;  // accepted RecordFeedback calls, fleet-wide
  bool quality_degraded = false;
  // Int8 weight-quantized serving (per-model breakdown in models[i]).
  // Mirrors the DEFAULT model's primary session, like the reload fields:
  // operators can tell at a glance which kernel path answered a window.
  bool int8_active = false;
};

// One labeled-feedback observation: "request X was answered p_fake by
// model M's primary/canary; the truth turned out to be `label`". The drift
// harnesses feed these back after each response; a production caller would
// wire its moderation/annotation pipeline here.
struct Feedback {
  std::string model_name;  // "" = the fleet default
  int domain = 0;          // the request's domain id
  float p_fake = 0.0f;     // the score the server answered with
  int label = 0;           // ground truth, data:: convention (0 real, 1 fake)
  bool canary = false;     // Prediction::canary of the answer being judged
};

class Server {
 public:
  // Takes ownership of the initial session — registered under
  // options.default_model_name with options.model_factory as its reload
  // factory — and starts the workers (and, unless disabled, the watchdog).
  Server(std::unique_ptr<InferenceSession> session, ServerOptions options);
  ~Server();  // Stop()s

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Registers another named model behind the shared queue. Safe while
  // serving (the registry is append-only; nothing existing is touched).
  // kInvalidArgument for empty name / null session, kFailedPrecondition
  // for a duplicate, kUnavailable after Stop(). `factory` builds fresh
  // models for this model's reload / canary / shadow loads (may be null —
  // those loads then fail with kFailedPrecondition).
  Status AddModel(
      const std::string& name, std::unique_ptr<InferenceSession> session,
      std::function<std::unique_ptr<models::FakeNewsModel>()> factory =
          nullptr);

  // Enqueues a request; the router resolves request.model_name (empty =
  // default model). `deadline_nanos` is absolute per the server clock;
  // 0 means "apply default_deadline_nanos, else none". The future resolves
  // with the prediction or a typed error: kNotFound (unknown model name),
  // kInvalidArgument (validation), kResourceExhausted (queue full —
  // resolved immediately), kDeadlineExceeded (shed), kUnavailable (server
  // stopped), kInternal (non-finite output).
  std::future<StatusOr<Prediction>> Submit(InferenceRequest request,
                                           int64_t deadline_nanos = 0);

  // Callback flavor of Submit() for event-loop callers (the socket front
  // end) that must not block a thread per pending request. `done` is invoked
  // exactly once with the same outcomes Submit() produces — on the
  // submitting thread for immediate rejections (unknown model, queue full,
  // stopped), on a worker thread otherwise. It must be fast and must not
  // call back into this Server (a worker thread invoking Submit().get()
  // would self-deadlock); enqueue-and-wake is the intended shape.
  void SubmitAsync(InferenceRequest request, int64_t deadline_nanos,
                   std::function<void(StatusOr<Prediction>)> done);

  // Synchronous convenience wrapper around Submit(). Do not call from a
  // worker's own callbacks (it would self-deadlock).
  StatusOr<Prediction> Predict(const InferenceRequest& request);

  // Schedules a hot-reload of the DEFAULT model from a v2 checkpoint;
  // resolves with the final outcome after retries. A quiescent barrier:
  // strictly ordered against everything still queued, and no forward
  // overlaps the swap.
  std::future<Status> ReloadFromCheckpoint(std::string checkpoint_path);
  // Same, for a named model ("" = default). kNotFound for unknown names.
  std::future<Status> ReloadModelFromCheckpoint(const std::string& model_name,
                                                std::string checkpoint_path);

  // Canary deployment for a named model ("" = default). StartCanary loads
  // the checkpoint as a candidate (version = current + 1) and begins
  // routing `options.percent`% of the model's traffic (by deterministic
  // content hash) to it, monitored per `options`. Fails with
  // kFailedPrecondition if a canary is already active. PromoteCanary
  // installs the candidate as primary; CancelCanary discards it; both fail
  // with kFailedPrecondition when no canary is active (or, for promote,
  // when the canary is draining after a detected regression).
  std::future<Status> StartCanary(const std::string& model_name,
                                  std::string checkpoint_path,
                                  CanaryOptions options = CanaryOptions());
  std::future<Status> PromoteCanary(const std::string& model_name);
  std::future<Status> CancelCanary(const std::string& model_name);

  // Shadow deployment for a named model ("" = default). StartShadow loads
  // the checkpoint as an off-path scorer (replacing any active shadow and
  // resetting ShadowStats); StopShadow removes it (idempotent).
  std::future<Status> StartShadow(const std::string& model_name,
                                  std::string checkpoint_path);
  std::future<Status> StopShadow(const std::string& model_name);

  // Labeled-feedback path (DESIGN.md §13). Records one observation into
  // the routed model's quality monitor (primary or canary ring per
  // feedback.canary), evaluates the canary quality gate every
  // CanaryOptions::quality_window canary feedbacks — a quality regression
  // takes the SAME drain-flag + front-of-queue rollback path as an
  // error-rate regression, zero dropped requests included — and moves the
  // primary's typed quality_degraded flag against
  // ServerOptions::primary_min_auc. Typed failures: kInvalidArgument
  // (label outside {0,1}, non-finite or out-of-range score, negative
  // domain), kNotFound (unknown model), kUnavailable (stopped). Callable
  // from any thread EXCEPT a worker callback (like Submit).
  Status RecordFeedback(const Feedback& feedback);

  // Current snapshot, computed on the calling thread.
  HealthReport Health() const;
  // Most recent snapshot taken by the watchdog thread.
  HealthReport LastWatchdogReport() const;

  // DEFAULT-model convenience accessors (the pre-fleet contract).
  bool degraded() const;
  int64_t model_version() const;
  int num_workers() const { return num_workers_; }
  int max_batch() const { return max_batch_; }
  const std::string& default_model() const;

  // Rejects new work, fails everything still queued — coalesced into a
  // batch or not — with kUnavailable, and joins all threads. Idempotent.
  void Stop();

 private:
  struct Job {
    enum class Kind { kInfer, kControl };
    Kind kind = Kind::kInfer;
    // kInfer: `done` is the single resolution path — Submit() wraps a
    // promise into it, SubmitAsync() passes the caller's callback through.
    // `model` was resolved by the router at admission (stable address for
    // the server's lifetime); `route_hash` is the precomputed content hash
    // the canary slice test uses at dequeue.
    InferenceRequest request;
    int64_t deadline_nanos = 0;  // absolute; 0 = none
    int64_t enqueue_nanos = 0;
    std::function<void(StatusOr<Prediction>)> done;
    ModelState* model = nullptr;
    uint64_t route_hash = 0;
    // Cache/dedup layer (only when the cache is on and admission was not
    // gated by a pending control job): the full content hash, and the
    // dedup group this job leads — followers attach to it under mu_ and
    // are fanned this job's outcome at completion.
    uint64_t content_hash = 0;
    std::shared_ptr<DedupGroup> group;
    // kControl: the closure runs on a worker thread inside the quiescent
    // barrier (no batches in flight, dequeue blocked); its Status resolves
    // the promise. Reload, canary, shadow, and auto-rollback all take this
    // path.
    std::function<Status()> control;
    std::promise<Status> control_reply;
  };

  void WorkerLoop(KernelPool* pool);
  void WatchdogLoop();
  // Serves one coalesced single-(model,variant) batch: per-element deadline
  // shed, one PredictBatch forward on `session`, per-element replies and
  // counters, then (primary path only) the optional shadow forward.
  // `dequeue_nanos` is the batch's shed timestamp, read under mu_ at
  // dequeue so it is ordered against every dedup attach (see SubmitAsync).
  void ServeBatch(ModelState* model, bool use_canary,
                  InferenceSession* session, InferenceSession* shadow,
                  std::vector<Job>* jobs, int64_t dequeue_nanos);
  // Marks `group` resolved, removes it from the model's dedup wait-set,
  // and moves its followers into *followers. Caller holds mu_.
  void DetachGroupLocked(ModelState* model,
                         const std::shared_ptr<DedupGroup>& group,
                         std::vector<DedupFollower>* followers);
  // True when this queued job should be served by `model`'s canary
  // session. Caller holds mu_.
  bool RouteToCanaryLocked(const Job& job) const;
  // Fails everything still queued with kUnavailable. Caller holds mu_.
  void DrainQueueLocked();
  // Enqueues a control job whose closure receives the resolved model;
  // resolves immediately with kNotFound / kUnavailable when the name is
  // unknown or the server is stopped. `front` jumps the queue (used by
  // auto-rollback so the drain is bounded by one batch, not the backlog).
  std::future<Status> EnqueueControl(const std::string& model_name,
                                     std::function<Status(ModelState*)> fn,
                                     bool front = false);
  // Loads `path` into a fresh session for `model` (fresh factory model so
  // a mismatched checkpoint can never half-overwrite anything live),
  // stamping it `version`. One attempt; fault-injector hooks apply.
  StatusOr<std::unique_ptr<InferenceSession>> LoadSessionFor(
      ModelState* model, const std::string& path, int64_t version);
  // Runs on a worker thread inside the barrier; full retry/backoff state
  // machine for one model's primary reload.
  Status RunReload(ModelState* model, const std::string& path);
  // Same retry/backoff, but produces a candidate session instead of
  // swapping the primary (shared by canary and shadow starts).
  StatusOr<std::unique_ptr<InferenceSession>> LoadCandidate(
      ModelState* model, const std::string& path);
  // Barrier-side of the canary auto-rollback (the control closure).
  Status RollbackCanary(ModelState* model, const std::string& reason);
  // Initializes a model's latency ring. Caller holds mu_ (nested
  // stats_mu_ acquisition; the one-way mu_ -> stats_mu_ order is safe
  // because no path locks stats_mu_ first).
  void InitModelStatsLocked(ModelState* model);

  const ServerOptions options_;
  const Clock* const clock_;
  int num_workers_ = 1;  // resolved from options/env in the constructor
  int max_batch_ = 1;
  int64_t cache_bytes_ = 0;    // resolved; 0 = cache + dedup off
  int64_t feedback_ring_ = 0;  // resolved quality-ring capacity
  int64_t drift_window_ = 0;   // resolved quality-evaluation window

  // Fleet registry: guarded by mu_; ModelState addresses are stable (the
  // registry is append-only), so workers may keep pointers across unlock.
  // Session pointers inside a ModelState are written only inside the
  // control-job barrier; a worker reads them under mu_ at dequeue and may
  // use them lock-free while its batch is in flight (the barrier waits for
  // inflight_batches_ == 0).
  ModelFleet fleet_;
  ModelState* default_state_ = nullptr;  // set in ctor, never changes

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Job> queue_;
  int64_t inference_depth_ = 0;   // kInfer jobs currently queued (all models)
  int64_t inflight_batches_ = 0;  // batches between dequeue and reply
  bool barrier_active_ = false;   // a control job holds the barrier
  // kControl jobs currently queued. While any control job is queued or
  // running, admission skips cache lookups and dedup attach entirely, so a
  // request submitted after a reload/promote was enqueued can never be
  // answered from (or attached to) pre-swap state — the strict
  // control-job ordering contract survives the cache.
  int64_t control_pending_ = 0;
  bool stopped_ = false;

  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> admitted_{0};
  std::atomic<int64_t> rejected_queue_full_{0};
  std::atomic<int64_t> rejected_unknown_model_{0};
  std::atomic<int64_t> shed_deadline_{0};
  std::atomic<int64_t> served_ok_{0};
  std::atomic<int64_t> deduped_{0};
  std::atomic<int64_t> invalid_requests_{0};
  std::atomic<int64_t> internal_errors_{0};
  std::atomic<int64_t> reload_attempts_{0};
  std::atomic<int64_t> reload_successes_{0};
  std::atomic<int64_t> reload_failures_{0};
  std::atomic<int64_t> feedback_recorded_{0};
  std::atomic<int64_t> watchdog_ticks_{0};
  std::atomic<int64_t> queue_wait_nanos_{0};
  std::atomic<int64_t> compute_nanos_{0};

  mutable std::mutex stats_mu_;  // guards aggregate + per-model stats blocks
  std::vector<int64_t> latencies_;  // aggregate ring of size latency_window
  int64_t latency_next_ = 0;
  int64_t latency_count_ = 0;
  std::vector<int64_t> batch_size_hist_;  // [0, max_batch_], index 0 unused
  int64_t batches_run_ = 0;
  int64_t batched_elements_ = 0;  // live elements across all batches

  mutable std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;
  HealthReport last_watchdog_report_;

  std::vector<std::unique_ptr<KernelPool>> pools_;  // one per worker
  std::vector<std::thread> workers_;
  std::thread watchdog_;
};

}  // namespace dtdbd::serve

#endif  // DTDBD_SERVE_SERVER_H_
