// Windowed per-domain prediction-quality monitoring for serving.
//
// The canary monitor of DESIGN.md §11 watches *infrastructure* signals
// (error rate, compute time); this file adds the *distribution* signal the
// paper is about: does the model still rank fake above real on live
// traffic, per domain, right now? A QualityMonitor is a fixed-capacity
// ring of labeled observations — (score, true label, domain) triples fed
// by the server's labeled-feedback path (Server::RecordFeedback) — from
// which Snapshot() computes windowed AUC, accuracy, and a cross-domain
// bias spread (max − min per-domain AUC, the serving-time analogue of the
// paper's equality-difference metrics: a model leaning on the domain prior
// shows a wide spread even when its pooled AUC looks fine).
//
// Degenerate windows follow the metrics:: convention (metrics.h): an empty
// window or one holding a single class CANNOT produce an AUC, so the
// snapshot reports auc_valid = false instead of 0.0-pretending-to-be-bad —
// and every consumer (the canary quality gate, the degraded-quality flag)
// treats !auc_valid as "no verdict", never as a regression. Same for
// bias_spread_valid, which additionally needs >= 2 domains with a valid
// AUC over at least min_domain_samples observations.
//
// Thread-safety: none. A QualityMonitor is a stats block owned by a
// ModelState and guarded by Server::stats_mu_, exactly like the latency
// rings and canary window counters next to it.
#ifndef DTDBD_SERVE_QUALITY_H_
#define DTDBD_SERVE_QUALITY_H_

#include <cstdint>
#include <vector>

namespace dtdbd::serve {

// One labeled feedback observation, as stored in the ring.
struct QualityObservation {
  float score = 0.0f;  // the P(fake) the server answered with
  int label = 0;       // ground truth, data:: convention (0 real, 1 fake)
  int domain = 0;
};

// Per-domain slice of a quality window.
struct DomainQuality {
  int domain = 0;
  int64_t samples = 0;
  double auc = 0.0;        // meaningful only when auc_valid
  bool auc_valid = false;  // both classes present in this domain's slice
  double accuracy = 0.0;
};

// One windowed evaluation over the most recent observations.
struct QualityWindowSnapshot {
  int64_t samples = 0;         // observations this snapshot covers
  int64_t total_observed = 0;  // cumulative Observe() calls (ring may drop)
  double auc = 0.0;            // pooled; meaningful only when auc_valid
  bool auc_valid = false;
  double accuracy = 0.0;  // fraction where (score >= 0.5) matches label
  // max − min per-domain AUC across domains that qualify (>= the caller's
  // min_domain_samples observations AND a valid per-domain AUC). Needs at
  // least two qualifying domains to mean anything.
  double bias_spread = 0.0;
  bool bias_spread_valid = false;
  std::vector<DomainQuality> domains;  // ascending domain id, observed only
};

// Fixed-capacity ring of labeled observations with windowed evaluation.
class QualityMonitor {
 public:
  // capacity <= 0 constructs a disabled monitor: Observe() is a no-op and
  // every snapshot is empty. The server sizes real monitors from the
  // resolved --feedback-ring knob at model registration.
  explicit QualityMonitor(int64_t capacity = 0);

  // Appends one observation, evicting the oldest when full.
  void Observe(float score, int label, int domain);

  // Drops every buffered observation (but not total_observed_): reload and
  // canary barriers call this so no quality window ever straddles a
  // session swap.
  void Clear();

  // Evaluates the `window` most recent observations (<= 0 or more than
  // buffered: all of them). min_domain_samples gates which domains count
  // toward bias_spread — a freshly-appeared domain with 3 samples must not
  // swing a fleet-wide bias verdict.
  QualityWindowSnapshot Snapshot(int64_t window,
                                 int64_t min_domain_samples) const;

  int64_t size() const { return count_; }
  int64_t capacity() const { return capacity_; }
  int64_t total_observed() const { return total_observed_; }

 private:
  int64_t capacity_ = 0;
  std::vector<QualityObservation> ring_;
  int64_t next_ = 0;   // slot the next Observe() writes
  int64_t count_ = 0;  // filled slots, <= capacity_
  int64_t total_observed_ = 0;
};

}  // namespace dtdbd::serve

#endif  // DTDBD_SERVE_QUALITY_H_
