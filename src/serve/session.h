// A no-graph inference path over any FakeNewsModel.
//
// InferenceSession is the serving counterpart of the training forward pass:
// it validates a request against the deployed model's limits, runs a
// batch-of-one eval-mode forward under NoGradGuard (no autograd nodes are
// recorded — the `graph_recorded` op counter stays at zero, a tested
// invariant), and reduces the logits to a fake-probability exactly the way
// PredictFakeProbability does. Eval-mode forwards are per-row deterministic,
// so a session's batch-of-one answer is bitwise identical to the batched
// offline evaluator — the parity contract the soak test enforces.
//
// A session is NOT thread-safe: the Server funnels all calls (and model
// swaps) through its single worker thread, because tensor kernels share the
// process-wide deterministic thread pool whose Run() admits one caller at a
// time.
#ifndef DTDBD_SERVE_SESSION_H_
#define DTDBD_SERVE_SESSION_H_

#include <cstdint>
#include <memory>

#include "common/status.h"
#include "models/model.h"
#include "serve/validation.h"

namespace dtdbd::serve {

struct Prediction {
  float p_fake = 0.0f;       // P(label == fake), from Softmax over the logits
  int label = 0;             // data::kFake iff p_fake >= 0.5
  int64_t model_version = 0; // which hot-reload generation answered
};

class InferenceSession {
 public:
  // Takes ownership of the model. `limits` must describe the config the
  // model was built with; `model_version` stamps every Prediction so
  // responses produced across a hot-reload are attributable.
  InferenceSession(std::unique_ptr<models::FakeNewsModel> model,
                   RequestLimits limits, int64_t model_version);

  // Validate -> pad to seq_len -> eval forward -> softmax. Returns
  // kInvalidArgument for malformed requests (never reaches a kernel),
  // kInternal if the model emits a non-finite probability.
  StatusOr<Prediction> Predict(const InferenceRequest& request);

  models::FakeNewsModel* model() { return model_.get(); }
  const RequestLimits& limits() const { return limits_; }
  int64_t model_version() const { return model_version_; }

 private:
  std::unique_ptr<models::FakeNewsModel> model_;
  RequestLimits limits_;
  int64_t model_version_;
};

}  // namespace dtdbd::serve

#endif  // DTDBD_SERVE_SESSION_H_
