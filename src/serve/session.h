// A no-graph inference path over any FakeNewsModel.
//
// InferenceSession is the serving counterpart of the training forward pass:
// it validates each request against the deployed model's limits, runs one
// eval-mode forward under NoGradGuard (no autograd nodes are recorded — the
// `graph_recorded` op counter stays at zero, a tested invariant), and
// reduces the logits to a fake-probability exactly the way
// PredictFakeProbability does. Eval-mode kernels are per-row deterministic
// (no cross-row accumulation), so every per-request answer is bitwise
// identical whether it was computed batch-of-one, inside a coalesced
// micro-batch (PredictBatch), or by the batched offline evaluator — the
// parity contract the serve and soak tests enforce.
//
// Concurrency: Predict/PredictBatch are read-only over the model (eval
// forwards mutate no model state; dropout is an identity that draws no
// RNG), so distinct server workers may call them concurrently on one
// session — provided each calling thread dispatches kernels into its own
// KernelPool (ScopedKernelPool) and model swaps are quiesced, which is
// exactly what serve::Server arranges.
#ifndef DTDBD_SERVE_SESSION_H_
#define DTDBD_SERVE_SESSION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "models/model.h"
#include "serve/validation.h"
#include "tensor/quant.h"

namespace dtdbd::serve {

struct Prediction {
  float p_fake = 0.0f;       // P(label == fake), from Softmax over the logits
  int label = 0;             // data::kFake iff p_fake >= 0.5
  int64_t model_version = 0; // which hot-reload generation answered
  // Fleet attribution, stamped by the server (a session doesn't know its
  // fleet name): which named model answered, and whether the canary
  // candidate (rather than the primary) produced this response.
  std::string model_name;
  bool canary = false;
};

class InferenceSession {
 public:
  // Takes ownership of the model. `limits` must describe the config the
  // model was built with; `model_version` stamps every Prediction so
  // responses produced across a hot-reload are attributable.
  InferenceSession(std::unique_ptr<models::FakeNewsModel> model,
                   RequestLimits limits, int64_t model_version);

  // Validate -> pad to seq_len -> eval forward -> softmax. Returns
  // kInvalidArgument for malformed requests (never reaches a kernel),
  // kInternal if the model emits a non-finite probability. Exactly
  // PredictBatch of one request.
  StatusOr<Prediction> Predict(const InferenceRequest& request);

  // Batched variant: one batch-of-M forward over every request that passes
  // validation. results[i] corresponds to requests[i]; malformed requests
  // get kInvalidArgument without suppressing the rest of the batch, and a
  // non-finite output row poisons only its own element (kInternal). Because
  // eval kernels never accumulate across rows, each OK element is bitwise
  // identical to what a batch-of-one Predict of the same request returns.
  std::vector<StatusOr<Prediction>> PredictBatch(
      const std::vector<const InferenceRequest*>& requests);

  models::FakeNewsModel* model() { return model_.get(); }
  const RequestLimits& limits() const { return limits_; }
  int64_t model_version() const { return model_version_; }

  // Int8 serving state (DESIGN.md §8): when tensor::Int8Enabled() was set
  // at construction time, every 2-D weight matrix of the model was
  // quantized to per-row-scaled int8 alongside the fp32 original, and
  // PredictBatch serves MatMul/LinearRelu from the quantized twins.
  // Hot-reload replaces the whole session, so weights are quantized
  // exactly once per deployed model generation.
  bool int8_active() const { return int8_weights_ != nullptr; }
  int64_t quantized_bytes() const {
    return int8_weights_ == nullptr ? 0 : int8_weights_->total_bytes();
  }

 private:
  std::unique_ptr<models::FakeNewsModel> model_;
  RequestLimits limits_;
  int64_t model_version_;
  // Quantized twins of the model's weight matrices, keyed by parameter
  // storage identity; null when int8 serving is off. The set is installed
  // as a thread-local ambient scope only around the eval forward — the
  // training path (GradEnabled) never consults it.
  std::unique_ptr<tensor::Int8WeightSet> int8_weights_;
};

}  // namespace dtdbd::serve

#endif  // DTDBD_SERVE_SESSION_H_
