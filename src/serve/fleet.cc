#include "serve/fleet.h"

#include <utility>

namespace dtdbd::serve {

uint64_t RouteHash(const InferenceRequest& request) {
  // FNV-1a, 64-bit. Domain first, then token ids, each mixed byte-wise so
  // the hash is endianness-independent in spirit (we only ever compute it
  // in-process, but determinism across builds is what the tests pin).
  constexpr uint64_t kOffset = 1469598103934665603ULL;
  constexpr uint64_t kPrime = 1099511628211ULL;
  uint64_t h = kOffset;
  const auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFFu;
      h *= kPrime;
    }
  };
  mix(static_cast<uint64_t>(static_cast<int64_t>(request.domain)));
  for (int token : request.tokens) {
    mix(static_cast<uint64_t>(static_cast<int64_t>(token)));
  }
  return h;
}

bool InCanarySlice(uint64_t hash, int percent) {
  if (percent <= 0) return false;
  if (percent >= 100) return true;
  return hash % 100 < static_cast<uint64_t>(percent);
}

CanaryVerdict EvaluateCanaryWindow(const CanaryWindowStats& window,
                                   const CanaryOptions& options) {
  CanaryVerdict verdict;
  // Gates 1+2 judge served traffic; a feedback-triggered evaluation with
  // canary_served == 0 skips straight to the quality gate below.
  if (window.canary_served > 0) {
    const double canary_error_rate =
        static_cast<double>(window.canary_errors) /
        static_cast<double>(window.canary_served);
    // No primary traffic in the window (e.g. percent=100) degenerates to an
    // absolute threshold against zero baseline error.
    const double primary_error_rate =
        window.primary_served > 0
            ? static_cast<double>(window.primary_errors) /
                  static_cast<double>(window.primary_served)
            : 0.0;
    if (canary_error_rate >
        primary_error_rate + options.max_error_rate_increase) {
      verdict.regression = true;
      verdict.reason =
          "canary error rate " + std::to_string(canary_error_rate) +
          " exceeds primary " + std::to_string(primary_error_rate) +
          " by more than " + std::to_string(options.max_error_rate_increase);
      return verdict;
    }

    if (options.max_latency_ratio > 0.0 &&
        window.primary_served >= options.min_primary_samples &&
        window.primary_compute_nanos > 0) {
      const double canary_mean =
          static_cast<double>(window.canary_compute_nanos) /
          static_cast<double>(window.canary_served);
      const double primary_mean =
          static_cast<double>(window.primary_compute_nanos) /
          static_cast<double>(window.primary_served);
      if (canary_mean > primary_mean * options.max_latency_ratio) {
        verdict.regression = true;
        verdict.reason =
            "canary mean compute " + std::to_string(canary_mean) +
            "ns exceeds primary mean " + std::to_string(primary_mean) +
            "ns x " + std::to_string(options.max_latency_ratio);
        return verdict;
      }
    }
  }

  // Gate 3: labeled-feedback AUC. Fires only on EVIDENCE of regression:
  // both variants need a defined pooled AUC over at least
  // min_quality_samples observations — a single-class window, an empty
  // window, or a cold-started canary produces no verdict at all (the
  // metrics:: degenerate convention, lifted to the rollback decision).
  if (options.quality_window <= 0) return verdict;
  const QualityWindowSnapshot& canary = window.canary_quality;
  const QualityWindowSnapshot& primary = window.primary_quality;
  if (!canary.auc_valid || !primary.auc_valid ||
      canary.samples < options.min_quality_samples ||
      primary.samples < options.min_quality_samples) {
    return verdict;
  }
  if (canary.auc < primary.auc - options.max_auc_regression) {
    verdict.regression = true;
    verdict.quality = true;
    verdict.reason = "canary windowed AUC " + std::to_string(canary.auc) +
                     " trails primary " + std::to_string(primary.auc) +
                     " by more than " +
                     std::to_string(options.max_auc_regression);
    return verdict;
  }
  // Per-domain deltas, each side guarded by its own min-samples floor: a
  // canary that holds pooled AUC by sacrificing one domain regresses too,
  // but a domain either variant has barely seen proves nothing.
  for (const DomainQuality& cd : canary.domains) {
    if (!cd.auc_valid || cd.samples < options.min_domain_quality_samples) {
      continue;
    }
    for (const DomainQuality& pd : primary.domains) {
      if (pd.domain != cd.domain) continue;
      if (!pd.auc_valid || pd.samples < options.min_domain_quality_samples) {
        break;
      }
      if (cd.auc < pd.auc - options.max_auc_regression) {
        verdict.regression = true;
        verdict.quality = true;
        verdict.reason = "canary domain " + std::to_string(cd.domain) +
                         " windowed AUC " + std::to_string(cd.auc) +
                         " trails primary " + std::to_string(pd.auc) +
                         " by more than " +
                         std::to_string(options.max_auc_regression);
        return verdict;
      }
      break;
    }
  }
  return verdict;
}

StatusOr<ModelState*> ModelFleet::Add(
    const std::string& name, std::unique_ptr<InferenceSession> session,
    std::function<std::unique_ptr<models::FakeNewsModel>()> factory) {
  if (name.empty()) {
    return Status::InvalidArgument("model name must be non-empty");
  }
  if (session == nullptr) {
    return Status::InvalidArgument("model '" + name +
                                   "' registered with a null session");
  }
  if (Find(name) != nullptr) {
    return Status::FailedPrecondition("model '" + name +
                                      "' is already registered");
  }
  auto state = std::make_unique<ModelState>();
  state->name = name;
  state->is_default = name == default_model_;
  state->factory = std::move(factory);
  state->version.store(session->model_version(), std::memory_order_release);
  state->primary = std::move(session);
  models_.push_back(std::move(state));
  return models_.back().get();
}

ModelState* ModelFleet::Resolve(const std::string& name) {
  return Find(name.empty() ? default_model_ : name);
}

ModelState* ModelFleet::Find(const std::string& name) {
  for (const auto& model : models_) {
    if (model->name == name) return model.get();
  }
  return nullptr;
}

}  // namespace dtdbd::serve
