// Multi-model fleet primitives for serve::Server: a named-model registry
// with a default-routing rule, the deterministic canary hash slice, the
// windowed canary regression monitor, and the per-model health structs the
// HealthReport models[] section is built from.
//
// Ownership and locking. ModelFleet and ModelState hold no locks of their
// own — they are data owned by serve::Server and synchronized by ITS
// mutexes, with the same discipline the single-model server used for its
// one session:
//   - the registry (ModelFleet::Add / Resolve / models) and every
//     InferenceSession pointer inside a ModelState are read and written
//     only under Server::mu_, and sessions are SWAPPED only inside the
//     quiescent barrier (no in-flight batches) — so a forward that started
//     on a session can never watch it be replaced;
//   - a worker serving an in-flight batch may read the session pointers it
//     resolved at dequeue without mu_, because the barrier cannot complete
//     until the batch does;
//   - the plain counter fields below the "stats" marker are guarded by
//     Server::stats_mu_;
//   - `version`, `degraded`, and `canary_draining` are atomics readable
//     anywhere.
// ModelState objects are never destroyed while the server lives: the
// registry only appends (models can be added mid-flight, never removed),
// so a ModelState* stored in a queued Job stays valid without refcounting.
//
// Canary routing is deterministic: RouteHash hashes the request CONTENT
// (tokens + domain), so whether a given request falls in the canary slice
// is a pure function of the request and the configured percent —
// replayable in tests and stable across retries of the same post. The
// slice membership is evaluated at DEQUEUE time, so a rollback between
// admission and dequeue simply reroutes the request to the primary; no
// queued request is ever failed because its canary disappeared.
#ifndef DTDBD_SERVE_FLEET_H_
#define DTDBD_SERVE_FLEET_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "models/model.h"
#include "serve/cache.h"
#include "serve/quality.h"
#include "serve/session.h"

namespace dtdbd::serve {

// The model a request routes to when it names none (wire v1 clients and
// in-process callers that leave InferenceRequest::model_name empty).
inline constexpr char kDefaultModelName[] = "default";

// Deterministic content hash for canary slicing: FNV-1a over domain and
// token ids. Feature values are deliberately excluded — two deliveries of
// the same post with slightly different float features still land in the
// same slice. That exclusion is exactly why RouteHash must NEVER be used
// as a content identity: requests that differ only in style/emotion alias
// under it. The prediction cache keys on ContentHash (cache.h), which
// mixes the feature bits in.
uint64_t RouteHash(const InferenceRequest& request);

// True when `hash` falls in the canary slice of `percent` (clamped to
// [0, 100]; 0 = nothing, 100 = everything).
bool InCanarySlice(uint64_t hash, int percent);

struct CanaryOptions {
  // Hash-slice size in percent of traffic routed to the candidate.
  int percent = 10;
  // Canary responses per evaluation window; the monitor judges the
  // candidate every time this many canary-served elements complete.
  int64_t window = 64;
  // Regression if canary error rate exceeds the primary's (over the same
  // window) by more than this absolute slack. Errors are unexpected
  // failures (kInternal and friends); client mistakes (kInvalidArgument)
  // and deadline sheds are charged to neither variant.
  double max_error_rate_increase = 0.05;
  // Regression if canary mean per-element compute exceeds primary mean *
  // this ratio. <= 0 disables the latency check (useful under ManualClock
  // where compute time reads as zero).
  double max_latency_ratio = 0.0;
  // The latency check only fires once the primary contributed at least
  // this many elements to the window (a ratio against nothing is noise).
  int64_t min_primary_samples = 1;
  // --- quality gate (DESIGN.md §13) ---
  // Labeled canary feedbacks per quality evaluation; 0 disables the gate
  // (the pre-quality monitor judged error rate and latency only). When on,
  // the server snapshots both variants' QualityMonitors every this many
  // canary-side feedbacks and judges AUC deltas below.
  int64_t quality_window = 0;
  // Regression if the canary's windowed AUC falls below the primary's by
  // more than this absolute slack — pooled, or within any single domain
  // that clears the min-samples guards. A canary may not buy its pooled
  // AUC by abandoning one domain.
  double max_auc_regression = 0.05;
  // Both variants must have at least this many observations in their
  // windows (and a VALID pooled AUC — single-class windows never fire)
  // before the pooled-quality check can judge anything.
  int64_t min_quality_samples = 32;
  // Per-domain AUC deltas only count where BOTH variants saw at least this
  // many observations of that domain (an unseen domain trickling in with 3
  // samples must not kill a canary).
  int64_t min_domain_quality_samples = 8;
};

// One evaluation window of paired canary-vs-primary observations for a
// single model. Reset after every verdict.
struct CanaryWindowStats {
  int64_t canary_served = 0;  // elements answered by the candidate
  int64_t canary_errors = 0;
  int64_t canary_compute_nanos = 0;
  int64_t primary_served = 0;
  int64_t primary_errors = 0;
  int64_t primary_compute_nanos = 0;
  // Labeled-feedback quality snapshots (empty / auc_valid = false when the
  // evaluation was triggered by the serving-side window, which carries no
  // labels). The quality gate in EvaluateCanaryWindow judges these
  // independently of the served counters above — a feedback-triggered
  // evaluation legitimately has canary_served == 0.
  QualityWindowSnapshot canary_quality;
  QualityWindowSnapshot primary_quality;
};

struct CanaryVerdict {
  bool regression = false;
  bool quality = false;  // the regression came from the AUC gate
  std::string reason;    // set when regression; human-readable
};

// Pure decision function for the windowed monitor — deterministic and
// testable without a server. Three independent gates, first regression
// wins: error rate and mean-compute (both need canary_served > 0 — they
// judge served traffic), then the labeled-feedback AUC gate (needs only
// the quality snapshots — it legitimately fires on a window in which the
// serving-side counters are zero). Degenerate quality windows (either side
// !auc_valid, or below min_quality_samples) produce NO quality verdict:
// absence of evidence never rolls a canary back.
CanaryVerdict EvaluateCanaryWindow(const CanaryWindowStats& window,
                                   const CanaryOptions& options);

// Cumulative off-path shadow-scoring telemetry for one model.
struct ShadowStats {
  int64_t scored = 0;  // elements where primary and shadow both answered OK
  int64_t shadow_errors = 0;          // shadow failed where primary succeeded
  int64_t label_disagreements = 0;    // argmax flipped
  double abs_delta_sum = 0.0;         // sum |p_fake_shadow - p_fake_primary|
  double abs_delta_max = 0.0;
};

// Per-model slices of a HealthReport (the models[] section).
struct CanaryHealth {
  bool active = false;
  bool draining = false;  // regression detected, rollback barrier pending
  int percent = 0;
  int64_t candidate_version = 0;
  int64_t window = 0;
  int64_t window_canary_served = 0;  // progress of the current window
  int64_t windows_evaluated = 0;
  int64_t started = 0;      // cumulative StartCanary successes
  int64_t rollbacks = 0;    // cumulative auto-rollbacks
  int64_t promotions = 0;   // cumulative PromoteCanary successes
  int64_t cancels = 0;      // cumulative CancelCanary on an active canary
  std::string last_event;   // most recent start/rollback/promote/cancel
};

struct ShadowHealth {
  bool active = false;
  int64_t scored = 0;
  int64_t shadow_errors = 0;
  int64_t label_disagreements = 0;
  double mean_abs_delta = 0.0;
  double max_abs_delta = 0.0;
};

// Per-model prediction-cache + dedup telemetry (HealthReport and the wire
// health frame both carry this shape).
struct PredictionCacheHealth {
  bool enabled = false;
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t inserted = 0;
  int64_t evicted = 0;
  int64_t invalidated = 0;
  int64_t bytes = 0;
  int64_t entries = 0;
  int64_t deduped = 0;  // followers answered by fan-out instead of a forward
};

// Per-model windowed-quality telemetry (DESIGN.md §13): the primary's
// current quality window plus the counters of the canary quality gate.
struct QualityHealth {
  int64_t feedback_total = 0;         // cumulative primary-path feedbacks
  int64_t canary_feedback_total = 0;  // cumulative canary-path feedbacks
  // Primary window snapshot (over the server's resolved drift window).
  int64_t window_samples = 0;
  double auc = 0.0;
  bool auc_valid = false;
  double accuracy = 0.0;
  double bias_spread = 0.0;
  bool bias_spread_valid = false;
  std::vector<DomainQuality> domains;
  // Typed degraded-quality flag: the primary's windowed AUC fell below the
  // configured floor. Orthogonal to `degraded` (reload exhaustion) — a
  // model can serve every request flawlessly and still be quality-degraded.
  bool quality_degraded = false;
  int64_t quality_evals = 0;      // canary quality-gate evaluations
  int64_t quality_rollbacks = 0;  // auto-rollbacks the AUC gate triggered
};

struct ModelHealth {
  std::string name;
  bool is_default = false;
  int64_t version = 0;
  bool degraded = false;
  std::string last_reload_error;
  int64_t queue_depth = 0;  // requests routed here, still waiting
  int64_t served_ok = 0;
  int64_t invalid_requests = 0;
  int64_t internal_errors = 0;
  int64_t shed_deadline = 0;
  int64_t reload_attempts = 0;
  int64_t reload_successes = 0;
  int64_t reload_failures = 0;
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  int64_t latency_samples = 0;
  bool latency_no_samples = true;  // same contract as the aggregate flag
  CanaryHealth canary;
  ShadowHealth shadow;
  PredictionCacheHealth cache;
  QualityHealth quality;
  // Int8 weight-quantized serving (DESIGN.md §8): whether this model's
  // primary session serves from quantized weight twins, and how many bytes
  // of int8 weights + scales it carries. Snapshot of the primary only —
  // canary/shadow sessions quantize under the same process-wide toggle.
  bool int8_active = false;
  int64_t quantized_bytes = 0;
};

// One named model in the fleet. See the file comment for which of
// Server::mu_ / Server::stats_mu_ guards each group.
struct ModelState {
  std::string name;
  bool is_default = false;
  // Builds a fresh architecture-matched model for reload / canary / shadow
  // checkpoint loads. May be null (loads then fail kFailedPrecondition).
  std::function<std::unique_ptr<models::FakeNewsModel>()> factory;

  // Sessions — written only inside the quiescent barrier under Server::mu_.
  std::unique_ptr<InferenceSession> primary;
  std::unique_ptr<InferenceSession> canary;
  std::unique_ptr<InferenceSession> shadow;
  CanaryOptions canary_options;  // meaningful while canary != nullptr

  std::atomic<int64_t> version{0};
  std::atomic<bool> degraded{false};
  // Set at regression detection so routing stops feeding the candidate
  // immediately, before the rollback barrier job lands.
  std::atomic<bool> canary_draining{false};
  // Windowed primary AUC fell below ServerOptions::primary_min_auc. Raised
  // and cleared by RecordFeedback; reset by a successful reload/promote
  // (the fresh primary starts with a clean slate AND a cleared window).
  std::atomic<bool> quality_degraded{false};

  // --- prediction cache + in-flight dedup (DESIGN.md §12) ---
  // Created by the server at registration when caching is enabled; entry
  // scope is (this model, variant) and every barrier job that swaps a
  // session clears the affected scope. Thread-safe internally.
  std::unique_ptr<PredictionCache> cache;  // null = caching disabled
  // In-flight dedup wait-set: content hash -> unresolved groups with that
  // hash (a vector so colliding hashes coexist; membership is decided by
  // exact key equality). Guarded by Server::mu_.
  std::unordered_map<uint64_t, std::vector<std::shared_ptr<DedupGroup>>>
      dedup_waitset;

  // --- guarded by Server::mu_ ---
  int64_t queued = 0;

  // --- stats: guarded by Server::stats_mu_ ---
  int64_t deduped = 0;  // followers served by dedup fan-out, not a forward
  int64_t served_ok = 0;
  int64_t invalid_requests = 0;
  int64_t internal_errors = 0;
  int64_t shed_deadline = 0;
  int64_t reload_attempts = 0;
  int64_t reload_successes = 0;
  int64_t reload_failures = 0;
  std::string last_reload_error;
  std::vector<int64_t> latencies;  // ring buffer, sized by the server
  int64_t latency_next = 0;
  int64_t latency_count = 0;
  CanaryWindowStats window;
  int64_t windows_evaluated = 0;
  int64_t canaries_started = 0;
  int64_t canary_rollbacks = 0;
  int64_t canary_promotions = 0;
  int64_t canary_cancels = 0;
  std::string last_canary_event;
  ShadowStats shadow_stats;
  // --- labeled-feedback quality (DESIGN.md §13), also under stats_mu_ ---
  // Sized by the server at registration from the resolved feedback-ring
  // knob; cleared inside the same barriers that swap the session they
  // observe (reload/promote for the primary ring, every canary transition
  // for the canary ring) so no window straddles a swap.
  QualityMonitor primary_quality;
  QualityMonitor canary_quality;
  int64_t feedback_total = 0;         // primary-path feedbacks accepted
  int64_t canary_feedback_total = 0;  // canary-path feedbacks accepted
  int64_t canary_feedback_since_eval = 0;
  int64_t quality_evals = 0;
  int64_t quality_rollbacks = 0;
};

// Registry + router. Externally synchronized: every method requires the
// owning Server's mu_. Append-only — ModelState addresses are stable for
// the life of the fleet.
class ModelFleet {
 public:
  explicit ModelFleet(std::string default_model)
      : default_model_(std::move(default_model)) {}

  ModelFleet(const ModelFleet&) = delete;
  ModelFleet& operator=(const ModelFleet&) = delete;

  // Registers a model. kInvalidArgument for an empty name or null session,
  // kFailedPrecondition for a duplicate. The returned pointer is stable.
  StatusOr<ModelState*> Add(
      const std::string& name, std::unique_ptr<InferenceSession> session,
      std::function<std::unique_ptr<models::FakeNewsModel>()> factory);

  // Routing rule: empty name -> the configured default; otherwise exact
  // match. nullptr when unknown (the caller owes a typed kNotFound).
  ModelState* Resolve(const std::string& name);
  ModelState* Find(const std::string& name);

  const std::string& default_model() const { return default_model_; }
  const std::vector<std::unique_ptr<ModelState>>& models() const {
    return models_;
  }

 private:
  std::string default_model_;
  std::vector<std::unique_ptr<ModelState>> models_;
};

}  // namespace dtdbd::serve

#endif  // DTDBD_SERVE_FLEET_H_
