// Request validation for the inference serving path.
//
// Serving is the trust boundary of the system: a request arrives from the
// network, not from our own data pipeline, so every field is hostile until
// proven otherwise. ValidateRequest rejects anything that could crash a
// kernel (out-of-range token ids through EmbeddingGather / FrozenEncoder),
// poison a prediction (non-finite feature values), or break a model's shape
// contract (wrong feature dims, empty or over-length sequences) — with a
// typed kInvalidArgument Status instead of a DTDBD_CHECK abort. Per-domain
// gating models (MDFEND-style) make the domain-id check load-bearing: an
// unknown domain id would index the domain embedding out of range.
#ifndef DTDBD_SERVE_VALIDATION_H_
#define DTDBD_SERVE_VALIDATION_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace dtdbd::serve {

// One inference request: the same per-sample fields data::NewsSample
// carries, but unvalidated. Tokens shorter than the model's sequence
// length are PAD-padded by the session; style/emotion may be empty
// (zero-filled) or exactly the expected dimension.
struct InferenceRequest {
  std::vector<int> tokens;
  int domain = 0;
  std::vector<float> style;
  std::vector<float> emotion;
  // Fleet routing: which named model should answer. Empty routes to the
  // server's configured default, so single-model callers never set it.
  // Resolution (including the kNotFound rejection for unknown names)
  // happens at admission, not in ValidateRequest — validation stays a pure
  // function of the request against one model's limits.
  std::string model_name;
};

// The envelope of requests a deployed model can execute safely. Derived
// from the model's construction config and the corpus it was trained on.
struct RequestLimits {
  int vocab_size = 0;
  int num_domains = 0;
  int64_t seq_len = 0;  // fixed model input length; requests are padded to it
};

// Typed taxonomy (see DESIGN.md §9): every rejection is kInvalidArgument
// with a message naming the offending field; an OK request is safe to hand
// to any FakeNewsModel built under the same limits.
Status ValidateRequest(const InferenceRequest& request,
                       const RequestLimits& limits);

}  // namespace dtdbd::serve

#endif  // DTDBD_SERVE_VALIDATION_H_
