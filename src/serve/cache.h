// Content-addressed prediction cache + in-flight request dedup for
// serve::Server (DESIGN.md §12).
//
// Why this is sound: FrozenEncoder is frozen and seeded and eval kernels
// are per-row deterministic, so a prediction is a PURE function of
// (model, version, variant, request content). That makes two layers of
// reuse safe without ever weakening the bitwise-parity contracts:
//
//   1. Completed-prediction cache (PredictionCache): a sharded LRU mapping
//      the FULL request content — domain, tokens, AND the style/emotion
//      feature vectors — to the served (p_fake, label, version). The key
//      is ContentHash, NOT RouteHash: RouteHash deliberately excludes
//      features so feature-jittered re-deliveries of a post stay in one
//      canary slice, which is exactly the property that makes it WRONG as
//      a content identity (it would alias requests that differ only in
//      features). Hash collisions cannot alias either: every entry stores
//      its full key material and Lookup compares it exactly.
//
//   2. In-flight dedup (DedupGroup): a second identical request admitted
//      while the first is still queued or running attaches to the first
//      request's Job as a follower and is fanned the same result on
//      completion — one forward, N replies. Per-element deadlines are
//      still honored per member: a follower with an earlier deadline than
//      the leader sheds independently at fan-out, and a follower with a
//      LATER deadline extends the queued leader's shed horizon so joining
//      a group can never lose a request that would have been served alone.
//
// Scope and invalidation. The cache is scoped per (model, variant): each
// ModelState owns one PredictionCache whose keys carry a primary/canary
// variant bit, and entries stamp the version that produced them. There is
// no TTL — entries are exact until the model changes, and every mutation
// of a model's session stack (reload success, canary promote / cancel /
// auto-rollback) already runs as a quiescent-barrier control job, so those
// closures clear the affected scope while nothing is in flight. Admission
// additionally skips cache/dedup participation while any control job is
// queued or running, preserving the "requests queued behind a control job
// are served under the new state" ordering contract bit-for-bit.
//
// Locking. PredictionCache has one mutex per shard and is safe to call
// from any thread; Server calls Lookup under mu_ (one-way mu_ -> shard
// order, nothing locks a shard first) and Insert from ServeBatch with no
// server lock held. DedupGroup contents are guarded by Server::mu_.
#ifndef DTDBD_SERVE_CACHE_H_
#define DTDBD_SERVE_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "serve/session.h"
#include "serve/validation.h"

namespace dtdbd::serve {

// Full content identity: FNV-1a over domain, token ids, AND the
// style/emotion feature bit patterns (dimension-delimited so boundary
// shifts between the three sequences cannot collide by construction).
// Contrast with RouteHash (fleet.h), which excludes features on purpose.
uint64_t ContentHash(const InferenceRequest& request);

// Cumulative counters + current gauges for one PredictionCache. Counters
// are monotonic; bytes/entries are point-in-time.
struct CacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t inserted = 0;
  int64_t evicted = 0;      // LRU capacity evictions only
  int64_t invalidated = 0;  // entries dropped by barrier Clear()s
  int64_t bytes = 0;        // gauge: approximate resident key+entry bytes
  int64_t entries = 0;      // gauge
};

class PredictionCache {
 public:
  // Exact cache key: the variant bit plus the full content the hash was
  // computed over. Lookup compares all of it, so a 64-bit collision
  // degrades to a miss, never to a wrong answer.
  struct Key {
    uint64_t hash = 0;    // ContentHash(request); excludes `canary`
    bool canary = false;  // primary vs canary-candidate variant
    int domain = 0;
    std::vector<int> tokens;
    std::vector<float> style;
    std::vector<float> emotion;
  };
  static Key MakeKey(const InferenceRequest& request, bool canary);
  // Bitwise equality over the full key material (floats compared by bit
  // pattern, so it is a pure identity check with no NaN special case).
  static bool KeyEquals(const Key& a, const Key& b);

  // What a hit replays. model_name / canary attribution are stamped by the
  // server at reply time, exactly as for a computed result.
  struct Entry {
    float p_fake = 0.0f;
    int label = 0;
    int64_t model_version = 0;
  };

  // `capacity_bytes` > 0; the budget is split evenly across `num_shards`
  // independently-locked LRU shards (shard = top bits of the content hash).
  explicit PredictionCache(int64_t capacity_bytes, int num_shards = 8);

  PredictionCache(const PredictionCache&) = delete;
  PredictionCache& operator=(const PredictionCache&) = delete;

  // True + *out on an exact hit (refreshes LRU recency). Counts hit/miss.
  bool Lookup(const Key& key, Entry* out);
  // Inserts or refreshes, then evicts LRU entries until the shard is back
  // under budget (an entry larger than a whole shard just doesn't stick).
  void Insert(const Key& key, const Entry& entry);
  // Barrier invalidation: drop everything / one variant's entries.
  void Clear();
  void ClearVariant(bool canary);

  CacheStats Stats() const;
  int64_t capacity_bytes() const { return capacity_bytes_; }

 private:
  struct Node {
    Key key;
    Entry entry;
    int64_t cost = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Node> lru;  // front = most recent
    // hash -> iterators; a multimap so colliding keys coexist.
    std::unordered_multimap<uint64_t, std::list<Node>::iterator> index;
    int64_t bytes = 0;
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t inserted = 0;
    int64_t evicted = 0;
    int64_t invalidated = 0;
  };
  Shard* ShardFor(uint64_t hash);
  static int64_t Cost(const Key& key);

  const int64_t capacity_bytes_;
  const int64_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

// One in-flight dedup group: the leader is the Job that actually sits in
// the queue / runs in a batch; followers are later identical submissions
// that attached instead of enqueueing. All fields are guarded by
// Server::mu_; the group outlives its Job via shared_ptr (the wait-set and
// the Job both hold one).
struct DedupFollower {
  std::function<void(StatusOr<Prediction>)> done;
  int64_t deadline_nanos = 0;  // absolute; 0 = none
  int64_t enqueue_nanos = 0;   // when this follower attached
};

struct DedupGroup {
  PredictionCache::Key key;
  std::vector<DedupFollower> followers;
  // Max shed horizon across leader + followers (0 = none). Mirrored into
  // the queued Job's deadline so a follower with a later deadline keeps
  // the whole group alive; each member is still judged against its OWN
  // deadline at fan-out.
  int64_t group_deadline_nanos = 0;
  // True once the result (or shed/drain status) has been fanned out; a
  // group in this state can no longer accept followers.
  bool resolved = false;
  // True while the leader Job still sits in the queue (its deadline can be
  // extended in place); false once a worker popped it into a batch.
  bool queued = true;
};

}  // namespace dtdbd::serve

#endif  // DTDBD_SERVE_CACHE_H_
