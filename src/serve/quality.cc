#include "serve/quality.h"

#include <algorithm>
#include <map>

#include "metrics/metrics.h"

namespace dtdbd::serve {

QualityMonitor::QualityMonitor(int64_t capacity)
    : capacity_(std::max<int64_t>(0, capacity)) {
  ring_.resize(static_cast<size_t>(capacity_));
}

void QualityMonitor::Observe(float score, int label, int domain) {
  if (capacity_ <= 0) return;
  ring_[static_cast<size_t>(next_)] = {score, label, domain};
  next_ = (next_ + 1) % capacity_;
  if (count_ < capacity_) ++count_;
  ++total_observed_;
}

void QualityMonitor::Clear() {
  next_ = 0;
  count_ = 0;
}

namespace {

// AUC gated on class presence: metrics::Auc already maps degenerate input
// to 0.0 with a logged warning, but a serving monitor evaluates every
// window forever — so the caller counts classes first and only asks for an
// AUC it knows is defined, keeping auc_valid honest and the log quiet.
struct SliceAccumulator {
  std::vector<float> scores;
  std::vector<int> labels;
  int64_t positives = 0;
  int64_t negatives = 0;
  int64_t correct = 0;

  void Add(const QualityObservation& obs) {
    scores.push_back(obs.score);
    labels.push_back(obs.label);
    if (obs.label == 1) {
      ++positives;
    } else {
      ++negatives;
    }
    if ((obs.score >= 0.5f ? 1 : 0) == obs.label) ++correct;
  }

  int64_t size() const { return positives + negatives; }
  bool auc_defined() const { return positives > 0 && negatives > 0; }
  double Accuracy() const {
    return size() > 0
               ? static_cast<double>(correct) / static_cast<double>(size())
               : 0.0;
  }
};

}  // namespace

QualityWindowSnapshot QualityMonitor::Snapshot(
    int64_t window, int64_t min_domain_samples) const {
  QualityWindowSnapshot snapshot;
  snapshot.total_observed = total_observed_;
  int64_t take = count_;
  if (window > 0) take = std::min(take, window);
  snapshot.samples = take;
  if (take <= 0) return snapshot;

  SliceAccumulator pooled;
  std::map<int, SliceAccumulator> by_domain;  // ordered -> stable output
  // Walk the `take` most recent slots, oldest first (order is irrelevant
  // to the metrics but keeps the walk obviously bounded).
  for (int64_t i = take; i > 0; --i) {
    const int64_t slot = ((next_ - i) % capacity_ + capacity_) % capacity_;
    const QualityObservation& obs = ring_[static_cast<size_t>(slot)];
    pooled.Add(obs);
    by_domain[obs.domain].Add(obs);
  }

  snapshot.accuracy = pooled.Accuracy();
  if (pooled.auc_defined()) {
    snapshot.auc = metrics::Auc(pooled.scores, pooled.labels);
    snapshot.auc_valid = true;
  }

  double min_auc = 2.0;
  double max_auc = -1.0;
  int qualifying = 0;
  for (const auto& [domain, slice] : by_domain) {
    DomainQuality dq;
    dq.domain = domain;
    dq.samples = slice.size();
    dq.accuracy = slice.Accuracy();
    if (slice.auc_defined()) {
      dq.auc = metrics::Auc(slice.scores, slice.labels);
      dq.auc_valid = true;
      if (dq.samples >= min_domain_samples) {
        min_auc = std::min(min_auc, dq.auc);
        max_auc = std::max(max_auc, dq.auc);
        ++qualifying;
      }
    }
    snapshot.domains.push_back(std::move(dq));
  }
  if (qualifying >= 2) {
    snapshot.bias_spread = max_auc - min_auc;
    snapshot.bias_spread_valid = true;
  }
  return snapshot;
}

}  // namespace dtdbd::serve
