#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <utility>

#include "common/logging.h"
#include "tensor/serialize.h"
#include "train/checkpoint.h"

namespace dtdbd::serve {

int64_t SystemClock::NowNanos() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const SystemClock* SystemClock::Get() {
  static const SystemClock clock;
  return &clock;
}

Server::Server(std::unique_ptr<InferenceSession> session,
               ServerOptions options)
    : options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock
                                       : SystemClock::Get()),
      session_(std::move(session)) {
  DTDBD_CHECK(session_ != nullptr);
  DTDBD_CHECK_GT(options_.max_queue_depth, 0);
  DTDBD_CHECK_GT(options_.latency_window, 0);
  model_version_.store(session_->model_version(), std::memory_order_release);
  latencies_.assign(static_cast<size_t>(options_.latency_window), 0);
  worker_ = std::thread([this] { WorkerLoop(); });
  if (options_.watchdog_period_nanos > 0) {
    watchdog_ = std::thread([this] { WatchdogLoop(); });
  }
}

Server::~Server() { Stop(); }

std::future<StatusOr<Prediction>> Server::Submit(InferenceRequest request,
                                                 int64_t deadline_nanos) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  const int64_t now = clock_->NowNanos();
  if (deadline_nanos == 0 && options_.default_deadline_nanos > 0) {
    deadline_nanos = now + options_.default_deadline_nanos;
  }

  Job job;
  job.kind = Job::Kind::kInfer;
  job.request = std::move(request);
  job.deadline_nanos = deadline_nanos;
  job.enqueue_nanos = now;
  std::future<StatusOr<Prediction>> future = job.reply.get_future();

  std::unique_lock<std::mutex> lock(mu_);
  if (stopped_) {
    lock.unlock();
    job.reply.set_value(Status::Unavailable("server is stopped"));
    return future;
  }
  if (inference_depth_ >= options_.max_queue_depth) {
    lock.unlock();
    rejected_queue_full_.fetch_add(1, std::memory_order_relaxed);
    job.reply.set_value(Status::ResourceExhausted(
        "serving queue full (" + std::to_string(options_.max_queue_depth) +
        " requests waiting)"));
    return future;
  }
  ++inference_depth_;
  admitted_.fetch_add(1, std::memory_order_relaxed);
  queue_.push_back(std::move(job));
  lock.unlock();
  cv_.notify_one();
  return future;
}

StatusOr<Prediction> Server::Predict(const InferenceRequest& request) {
  return Submit(request).get();
}

std::future<Status> Server::ReloadFromCheckpoint(std::string checkpoint_path) {
  Job job;
  job.kind = Job::Kind::kReload;
  job.checkpoint_path = std::move(checkpoint_path);
  std::future<Status> future = job.reload_reply.get_future();

  std::unique_lock<std::mutex> lock(mu_);
  if (stopped_) {
    lock.unlock();
    job.reload_reply.set_value(Status::Unavailable("server is stopped"));
    return future;
  }
  // Control jobs bypass the depth limit: an overloaded server must still
  // accept the reload that might fix it.
  queue_.push_back(std::move(job));
  lock.unlock();
  cv_.notify_one();
  return future;
}

void Server::WorkerLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopped_ || !queue_.empty(); });
      if (stopped_) {
        // Fail everything still queued; admission is already closed.
        while (!queue_.empty()) {
          Job dropped = std::move(queue_.front());
          queue_.pop_front();
          if (dropped.kind == Job::Kind::kInfer) {
            dropped.reply.set_value(
                Status::Unavailable("server stopped before serving request"));
          } else if (dropped.kind == Job::Kind::kReload) {
            dropped.reload_reply.set_value(
                Status::Unavailable("server stopped before reload"));
          }
        }
        return;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
      if (job.kind == Job::Kind::kInfer) --inference_depth_;
    }
    if (job.kind == Job::Kind::kInfer) {
      ServeOne(&job);
    } else {
      job.reload_reply.set_value(RunReload(job.checkpoint_path));
    }
  }
}

void Server::ServeOne(Job* job) {
  const int64_t now = clock_->NowNanos();
  if (job->deadline_nanos > 0 && now > job->deadline_nanos) {
    shed_deadline_.fetch_add(1, std::memory_order_relaxed);
    job->reply.set_value(Status::DeadlineExceeded(
        "request shed: deadline expired before serving"));
    return;
  }
  StatusOr<Prediction> result = session_->Predict(job->request);
  if (result.ok()) {
    served_ok_.fetch_add(1, std::memory_order_relaxed);
    RecordLatency(clock_->NowNanos() - job->enqueue_nanos);
  } else if (result.status().code() == StatusCode::kInvalidArgument) {
    invalid_requests_.fetch_add(1, std::memory_order_relaxed);
  } else {
    internal_errors_.fetch_add(1, std::memory_order_relaxed);
  }
  job->reply.set_value(std::move(result));
}

Status Server::TryLoadInto(const std::string& path) {
  if (options_.fault_injector != nullptr) {
    const int64_t slow = options_.fault_injector->slow_load_nanos();
    if (slow > 0) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(slow));
    }
    DTDBD_RETURN_IF_ERROR(options_.fault_injector->MaybeFailLoad());
  }
  if (!options_.model_factory) {
    return Status::FailedPrecondition(
        "hot-reload requires ServerOptions::model_factory");
  }
  DTDBD_ASSIGN_OR_RETURN(train::CheckpointState state,
                         train::LoadCheckpoint(path));
  // Both "supervised" and "dtdbd" checkpoints are servable; only the model
  // parameter map matters here. Restore into a FRESH model so a mismatched
  // checkpoint can never leave the live session half-overwritten.
  std::unique_ptr<models::FakeNewsModel> model = options_.model_factory();
  if (model == nullptr) {
    return Status::FailedPrecondition("model_factory returned null");
  }
  std::map<std::string, tensor::Tensor> named = model->NamedParameters();
  DTDBD_RETURN_IF_ERROR(tensor::RestoreInto(state.model, &named));
  const int64_t next_version =
      model_version_.load(std::memory_order_acquire) + 1;
  session_ = std::make_unique<InferenceSession>(
      std::move(model), session_->limits(), next_version);
  model_version_.store(next_version, std::memory_order_release);
  return Status::Ok();
}

Status Server::RunReload(const std::string& path) {
  int64_t backoff = options_.reload_backoff_initial_nanos;
  Status last = Status::Ok();
  const int attempts = std::max(1, options_.reload_max_attempts);
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    reload_attempts_.fetch_add(1, std::memory_order_relaxed);
    last = TryLoadInto(path);
    if (last.ok()) {
      reload_successes_.fetch_add(1, std::memory_order_relaxed);
      degraded_.store(false, std::memory_order_release);
      std::lock_guard<std::mutex> lock(stats_mu_);
      last_reload_error_.clear();
      return last;
    }
    reload_failures_.fetch_add(1, std::memory_order_relaxed);
    DTDBD_LOG(Warning) << "hot-reload attempt " << attempt << "/" << attempts
                       << " failed: " << last.ToString();
    if (attempt < attempts && backoff > 0) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(backoff));
      backoff = static_cast<int64_t>(
          static_cast<double>(backoff) * options_.reload_backoff_multiplier);
    }
  }
  // Exhausted: keep serving the last-good model, but say so loudly.
  degraded_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    last_reload_error_ = last.ToString();
  }
  DTDBD_LOG(Error) << "hot-reload of " << path
                   << " failed after " << attempts
                   << " attempts; serving degraded on model version "
                   << model_version_.load(std::memory_order_acquire);
  return last;
}

void Server::RecordLatency(int64_t nanos) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  latencies_[static_cast<size_t>(latency_next_)] = nanos;
  latency_next_ = (latency_next_ + 1) % options_.latency_window;
  if (latency_count_ < options_.latency_window) ++latency_count_;
}

HealthReport Server::Health() const {
  HealthReport report;
  {
    std::lock_guard<std::mutex> lock(mu_);
    report.queue_depth = inference_depth_;
  }
  report.max_queue_depth = options_.max_queue_depth;
  report.submitted = submitted_.load(std::memory_order_relaxed);
  report.admitted = admitted_.load(std::memory_order_relaxed);
  report.rejected_queue_full =
      rejected_queue_full_.load(std::memory_order_relaxed);
  report.shed_deadline = shed_deadline_.load(std::memory_order_relaxed);
  report.served_ok = served_ok_.load(std::memory_order_relaxed);
  report.invalid_requests = invalid_requests_.load(std::memory_order_relaxed);
  report.internal_errors = internal_errors_.load(std::memory_order_relaxed);
  report.reload_attempts = reload_attempts_.load(std::memory_order_relaxed);
  report.reload_successes = reload_successes_.load(std::memory_order_relaxed);
  report.reload_failures = reload_failures_.load(std::memory_order_relaxed);
  report.degraded = degraded_.load(std::memory_order_acquire);
  report.model_version = model_version_.load(std::memory_order_acquire);
  report.watchdog_ticks = watchdog_ticks_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    report.last_reload_error = last_reload_error_;
    report.latency_samples = latency_count_;
    if (latency_count_ > 0) {
      std::vector<int64_t> window(
          latencies_.begin(), latencies_.begin() + latency_count_);
      std::sort(window.begin(), window.end());
      const auto pick = [&window](double q) {
        const auto idx = static_cast<size_t>(
            q * static_cast<double>(window.size() - 1) + 0.5);
        return static_cast<double>(window[idx]) / 1e6;
      };
      report.p50_latency_ms = pick(0.50);
      report.p99_latency_ms = pick(0.99);
    }
  }
  return report;
}

HealthReport Server::LastWatchdogReport() const {
  std::lock_guard<std::mutex> lock(watchdog_mu_);
  return last_watchdog_report_;
}

void Server::WatchdogLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(watchdog_mu_);
      watchdog_cv_.wait_for(
          lock, std::chrono::nanoseconds(options_.watchdog_period_nanos),
          [this] { return watchdog_stop_; });
      if (watchdog_stop_) return;
    }
    watchdog_ticks_.fetch_add(1, std::memory_order_relaxed);
    HealthReport report = Health();
    std::lock_guard<std::mutex> lock(watchdog_mu_);
    last_watchdog_report_ = std::move(report);
  }
}

void Server::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  {
    std::lock_guard<std::mutex> lock(watchdog_mu_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
}

}  // namespace dtdbd::serve
