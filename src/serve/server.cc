#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <iterator>
#include <map>
#include <utility>

#include "common/flags.h"
#include "common/logging.h"
#include "data/dataset.h"
#include "tensor/serialize.h"
#include "train/checkpoint.h"

namespace dtdbd::serve {

int64_t SystemClock::NowNanos() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const SystemClock* SystemClock::Get() {
  static const SystemClock clock;
  return &clock;
}

int ServeWorkersFromEnv() {
  const char* env = std::getenv("DTDBD_SERVE_WORKERS");
  if (env == nullptr) return 1;
  int n = 0;
  if (ParsePositiveInt(env, &n)) return n;
  DTDBD_LOG(Warning) << "DTDBD_SERVE_WORKERS='" << env
                     << "' is not a positive integer; using 1 worker";
  return 1;
}

int ResolveServeWorkers(const FlagParser& flags) {
  return ResolvePositiveIntFlag(flags, "serve-workers", ServeWorkersFromEnv(),
                                /*invalid_value=*/1);
}

int ResolveMaxBatch(const FlagParser& flags) {
  return ResolvePositiveIntFlag(flags, "max-batch", /*absent_value=*/1,
                                /*invalid_value=*/1);
}

int64_t CacheBytesFromEnv() {
  const char* env = std::getenv("DTDBD_CACHE_BYTES");
  if (env == nullptr) return 0;
  int64_t n = 0;
  if (ParseNonNegativeInt64(env, &n)) return n;
  DTDBD_LOG(Warning) << "DTDBD_CACHE_BYTES='" << env
                     << "' is not a non-negative integer; caching stays off";
  return 0;
}

int64_t ResolveCacheBytes(const FlagParser& flags) {
  if (!flags.Has("cache-bytes")) return CacheBytesFromEnv();
  const std::string value = flags.GetString("cache-bytes", "");
  int64_t n = 0;
  if (ParseNonNegativeInt64(value.c_str(), &n)) return n;
  DTDBD_LOG(Warning) << "--cache-bytes '" << value
                     << "' is not a non-negative integer; caching stays off";
  return 0;
}

namespace {

// Shared strict-env rule for the quality knobs: unset -> the documented
// default, present-but-invalid -> warning + the same default (never a
// silently reinterpreted prefix).
int PositiveIntFromEnv(const char* name, int fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  int n = 0;
  if (ParsePositiveInt(env, &n)) return n;
  DTDBD_LOG(Warning) << name << "='" << env
                     << "' is not a positive integer; using " << fallback;
  return fallback;
}

}  // namespace

int FeedbackRingFromEnv() {
  return PositiveIntFromEnv("DTDBD_FEEDBACK_RING", 1024);
}

int ResolveFeedbackRing(const FlagParser& flags) {
  return ResolvePositiveIntFlag(flags, "feedback-ring", FeedbackRingFromEnv(),
                                /*invalid_value=*/1024);
}

int DriftWindowFromEnv() {
  return PositiveIntFromEnv("DTDBD_DRIFT_WINDOW", 256);
}

int ResolveDriftWindow(const FlagParser& flags) {
  return ResolvePositiveIntFlag(flags, "drift-window", DriftWindowFromEnv(),
                                /*invalid_value=*/256);
}

int QualitySlackPercentFromEnv() {
  return PositiveIntFromEnv("DTDBD_QUALITY_SLACK", 5);
}

int ResolveQualitySlackPercent(const FlagParser& flags) {
  return ResolvePositiveIntFlag(flags, "quality-slack",
                                QualitySlackPercentFromEnv(),
                                /*invalid_value=*/5);
}

bool Int8FromEnv() {
  const char* env = std::getenv("DTDBD_INT8");
  if (env == nullptr) return false;
  const std::string value(env);
  if (value == "0") return false;
  if (value == "1") return true;
  DTDBD_LOG(Warning) << "DTDBD_INT8='" << value
                     << "' is not 0 or 1; int8 serving stays off";
  return false;
}

bool ResolveInt8(const FlagParser& flags) {
  if (!flags.Has("int8")) return Int8FromEnv();
  // Bare `--int8` parses as "true", `--no-int8` as "false" (FlagParser
  // contract); explicit values accept the same spellings plus 0/1.
  const std::string value = flags.GetString("int8", "");
  if (value == "1" || value == "true") return true;
  if (value == "0" || value == "false") return false;
  DTDBD_LOG(Warning) << "--int8 '" << value
                     << "' is not a boolean; int8 serving stays off";
  return false;
}

Server::Server(std::unique_ptr<InferenceSession> session,
               ServerOptions options)
    : options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock
                                       : SystemClock::Get()),
      fleet_(options_.default_model_name) {
  DTDBD_CHECK(session != nullptr);
  DTDBD_CHECK_GT(options_.max_queue_depth, 0);
  DTDBD_CHECK_GT(options_.latency_window, 0);
  num_workers_ =
      options_.num_workers > 0 ? options_.num_workers : ServeWorkersFromEnv();
  max_batch_ = std::max(1, options_.max_batch);
  cache_bytes_ =
      options_.cache_bytes >= 0 ? options_.cache_bytes : CacheBytesFromEnv();
  feedback_ring_ =
      options_.feedback_ring > 0 ? options_.feedback_ring : FeedbackRingFromEnv();
  drift_window_ =
      options_.drift_window > 0 ? options_.drift_window : DriftWindowFromEnv();
  latencies_.assign(static_cast<size_t>(options_.latency_window), 0);
  batch_size_hist_.assign(static_cast<size_t>(max_batch_) + 1, 0);
  {
    std::lock_guard<std::mutex> lock(mu_);
    StatusOr<ModelState*> added = fleet_.Add(
        options_.default_model_name, std::move(session), options_.model_factory);
    DTDBD_CHECK(added.ok()) << added.status().ToString();
    default_state_ = added.value();
    if (cache_bytes_ > 0) {
      default_state_->cache = std::make_unique<PredictionCache>(cache_bytes_);
    }
    InitModelStatsLocked(default_state_);
  }
  pools_.reserve(static_cast<size_t>(num_workers_));
  workers_.reserve(static_cast<size_t>(num_workers_));
  for (int i = 0; i < num_workers_; ++i) {
    // Each worker dispatches kernels into its own pool, sized like the
    // process-wide one, so concurrent forwards share no dispatch state and
    // shard boundaries (hence results) are unchanged.
    pools_.push_back(std::make_unique<KernelPool>(GetNumThreads()));
    workers_.emplace_back(
        [this, pool = pools_.back().get()] { WorkerLoop(pool); });
  }
  if (options_.watchdog_period_nanos > 0) {
    watchdog_ = std::thread([this] { WatchdogLoop(); });
  }
}

Server::~Server() { Stop(); }

void Server::InitModelStatsLocked(ModelState* model) {
  // Nested stats_mu_ under mu_ — the one-way mu_ -> stats_mu_ order is
  // deadlock-free (no path locks stats_mu_ first). Sizing the ring inside
  // the same mu_ hold that registers the model guarantees no request can
  // be served (let alone record a latency) against an unsized ring.
  std::lock_guard<std::mutex> lock(stats_mu_);
  model->latencies.assign(static_cast<size_t>(options_.latency_window), 0);
  model->primary_quality = QualityMonitor(feedback_ring_);
  model->canary_quality = QualityMonitor(feedback_ring_);
}

Status Server::AddModel(
    const std::string& name, std::unique_ptr<InferenceSession> session,
    std::function<std::unique_ptr<models::FakeNewsModel>()> factory) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopped_) return Status::Unavailable("server is stopped");
  StatusOr<ModelState*> added =
      fleet_.Add(name, std::move(session), std::move(factory));
  if (!added.ok()) return added.status();
  if (cache_bytes_ > 0) {
    added.value()->cache = std::make_unique<PredictionCache>(cache_bytes_);
  }
  InitModelStatsLocked(added.value());
  return Status::Ok();
}

std::future<StatusOr<Prediction>> Server::Submit(InferenceRequest request,
                                                 int64_t deadline_nanos) {
  auto reply = std::make_shared<std::promise<StatusOr<Prediction>>>();
  std::future<StatusOr<Prediction>> future = reply->get_future();
  SubmitAsync(std::move(request), deadline_nanos,
              [reply](StatusOr<Prediction> result) {
                reply->set_value(std::move(result));
              });
  return future;
}

void Server::SubmitAsync(InferenceRequest request, int64_t deadline_nanos,
                         std::function<void(StatusOr<Prediction>)> done) {
  DTDBD_CHECK(done != nullptr);
  submitted_.fetch_add(1, std::memory_order_relaxed);
  const int64_t now = clock_->NowNanos();
  if (deadline_nanos == 0 && options_.default_deadline_nanos > 0) {
    deadline_nanos = now + options_.default_deadline_nanos;
  }

  Job job;
  job.kind = Job::Kind::kInfer;
  job.request = std::move(request);
  job.deadline_nanos = deadline_nanos;
  job.enqueue_nanos = now;
  job.done = std::move(done);
  // Content hash for the canary slice, computed outside the lock; the
  // slice test itself happens at dequeue so a rollback between admission
  // and dequeue reroutes (never fails) the request.
  job.route_hash = RouteHash(job.request);
  // Cache/dedup identity, also outside the lock: the full content hash and
  // the exact key material it summarizes (the variant bit is filled in
  // under mu_ once routing is known).
  PredictionCache::Key key;
  if (cache_bytes_ > 0) {
    key = PredictionCache::MakeKey(job.request, /*canary=*/false);
    job.content_hash = key.hash;
  }

  std::unique_lock<std::mutex> lock(mu_);
  if (stopped_) {
    lock.unlock();
    job.done(Status::Unavailable("server is stopped"));
    return;
  }
  job.model = fleet_.Resolve(job.request.model_name);
  if (job.model == nullptr) {
    lock.unlock();
    rejected_unknown_model_.fetch_add(1, std::memory_order_relaxed);
    job.done(Status::NotFound("unknown model '" + job.request.model_name +
                              "' (fleet default is '" + fleet_.default_model() +
                              "')"));
    return;
  }
  // Cache + dedup participation (DESIGN.md §12). Gated off whenever a
  // control job is queued or running: a request submitted behind a
  // reload/promote must be served under the NEW state, so it may neither
  // hit pre-swap cache entries nor attach to a pre-swap leader. The gate
  // also keeps the wait-set empty across every barrier by construction.
  // Canary-slice requests bypass both layers too: a canary exists to be
  // JUDGED on live traffic, and answering its slice from cache (or fanning
  // one forward to N members) would starve the windowed monitor of the
  // samples the regression verdict needs. The slice test is deterministic
  // in the request content, so a group leader admitted here can never be
  // rerouted into the canary at dequeue (draining only ever flips traffic
  // TOWARD the primary).
  // A request whose deadline already expired at admission participates in
  // neither layer: a hit must never resurrect a request the forward path
  // would shed, so it falls through to the queue and takes the standard
  // shed-at-dequeue (same status, same counters as with the cache off).
  const bool expired = job.deadline_nanos > 0 && now > job.deadline_nanos;
  const bool participate = job.model->cache != nullptr && !expired &&
                           control_pending_ == 0 && !barrier_active_ &&
                           !RouteToCanaryLocked(job);
  if (participate) {
    PredictionCache::Entry entry;
    if (job.model->cache->Lookup(key, &entry)) {
      // Completed-prediction hit: reply immediately, bitwise identical to
      // the forward that populated the entry. Counted as served (and into
      // the latency rings) but never into batches_run — no forward ran.
      ModelState* model = job.model;
      admitted_.fetch_add(1, std::memory_order_relaxed);
      served_ok_.fetch_add(1, std::memory_order_relaxed);
      const int64_t reply_nanos = clock_->NowNanos();
      {
        std::lock_guard<std::mutex> stats(stats_mu_);
        ++model->served_ok;
        const int64_t nanos = reply_nanos - job.enqueue_nanos;
        latencies_[static_cast<size_t>(latency_next_)] = nanos;
        latency_next_ = (latency_next_ + 1) % options_.latency_window;
        if (latency_count_ < options_.latency_window) ++latency_count_;
        model->latencies[static_cast<size_t>(model->latency_next)] = nanos;
        model->latency_next =
            (model->latency_next + 1) % options_.latency_window;
        if (model->latency_count < options_.latency_window) {
          ++model->latency_count;
        }
      }
      Prediction hit;
      hit.p_fake = entry.p_fake;
      hit.label = entry.label;
      hit.model_version = entry.model_version;
      hit.model_name = model->name;
      hit.canary = key.canary;
      lock.unlock();
      job.done(std::move(hit));
      return;
    }
    // Miss: attach to an in-flight identical request if one exists. The
    // clock read happens under mu_, so it is ordered after the batch's
    // dequeue timestamp (also taken under mu_): if the leader's group was
    // (or will be) shed at dequeue, this read is already past the group
    // deadline and the attach is refused — a follower can never be
    // silently dragged into a shed it didn't earn.
    auto waiting = job.model->dedup_waitset.find(job.content_hash);
    if (waiting != job.model->dedup_waitset.end()) {
      const int64_t attach_nanos = clock_->NowNanos();
      for (const std::shared_ptr<DedupGroup>& group : waiting->second) {
        if (group->resolved ||
            !PredictionCache::KeyEquals(group->key, key)) {
          continue;
        }
        if (!group->queued && group->group_deadline_nanos > 0 &&
            attach_nanos > group->group_deadline_nanos) {
          continue;  // leader already past its shed horizon
        }
        group->followers.push_back(
            {std::move(job.done), job.deadline_nanos, job.enqueue_nanos});
        // A follower with a later (or absent) deadline extends the shed
        // horizon of the whole group; one with an earlier deadline is
        // still judged against its own at fan-out.
        if (group->group_deadline_nanos != 0) {
          group->group_deadline_nanos =
              job.deadline_nanos == 0
                  ? 0
                  : std::max(group->group_deadline_nanos, job.deadline_nanos);
        }
        admitted_.fetch_add(1, std::memory_order_relaxed);
        deduped_.fetch_add(1, std::memory_order_relaxed);
        {
          std::lock_guard<std::mutex> stats(stats_mu_);
          ++job.model->deduped;
        }
        return;  // lock released by ~unique_lock; no queue entry to signal
      }
    }
  }
  if (inference_depth_ >= options_.max_queue_depth) {
    lock.unlock();
    rejected_queue_full_.fetch_add(1, std::memory_order_relaxed);
    job.done(Status::ResourceExhausted(
        "serving queue full (" + std::to_string(options_.max_queue_depth) +
        " requests waiting)"));
    return;
  }
  if (participate) {
    // This job becomes the leader of a fresh dedup group.
    job.group = std::make_shared<DedupGroup>();
    job.group->key = std::move(key);
    job.group->group_deadline_nanos = job.deadline_nanos;
    job.model->dedup_waitset[job.content_hash].push_back(job.group);
  }
  ++inference_depth_;
  ++job.model->queued;
  admitted_.fetch_add(1, std::memory_order_relaxed);
  queue_.push_back(std::move(job));
  lock.unlock();
  cv_.notify_one();
}

StatusOr<Prediction> Server::Predict(const InferenceRequest& request) {
  return Submit(request).get();
}

Status Server::RecordFeedback(const Feedback& feedback) {
  // Feedback is a trust boundary like the request path: labels come from
  // an external annotation pipeline, so every field is validated with a
  // typed rejection before it can touch a monitor.
  if (feedback.label != data::kReal && feedback.label != data::kFake) {
    return Status::InvalidArgument("feedback label must be 0 (real) or 1 "
                                   "(fake), got " +
                                   std::to_string(feedback.label));
  }
  if (!std::isfinite(feedback.p_fake) || feedback.p_fake < 0.0f ||
      feedback.p_fake > 1.0f) {
    return Status::InvalidArgument(
        "feedback score must be a finite probability in [0, 1]");
  }
  if (feedback.domain < 0) {
    return Status::InvalidArgument("feedback domain must be >= 0, got " +
                                   std::to_string(feedback.domain));
  }

  ModelState* model = nullptr;
  bool canary_active = false;
  CanaryOptions canary_options;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return Status::Unavailable("server is stopped");
    model = fleet_.Resolve(feedback.model_name);
    if (model == nullptr) {
      return Status::NotFound("unknown model '" + feedback.model_name +
                              "' (fleet default is '" +
                              fleet_.default_model() + "')");
    }
    // The quality gate only judges a LIVE, non-draining canary; its
    // options are only meaningful while the session exists, so both facts
    // are snapshotted under the same mu_ hold.
    canary_active =
        model->canary != nullptr &&
        !model->canary_draining.load(std::memory_order_acquire);
    if (canary_active) canary_options = model->canary_options;
  }
  feedback_recorded_.fetch_add(1, std::memory_order_relaxed);

  bool trigger_rollback = false;
  std::string rollback_reason;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (feedback.canary) {
      model->canary_quality.Observe(feedback.p_fake, feedback.label,
                                    feedback.domain);
      ++model->canary_feedback_total;
      if (canary_active && canary_options.quality_window > 0 &&
          ++model->canary_feedback_since_eval >=
              canary_options.quality_window) {
        model->canary_feedback_since_eval = 0;
        ++model->quality_evals;
        // Quality-only evaluation: the served-traffic counters stay zero,
        // so only gate 3 of EvaluateCanaryWindow can judge. The canary
        // ring holds exactly this candidate's feedback (cleared at every
        // canary transition); the primary side is its most recent window.
        CanaryWindowStats window;
        window.canary_quality = model->canary_quality.Snapshot(
            /*window=*/0, canary_options.min_domain_quality_samples);
        window.primary_quality = model->primary_quality.Snapshot(
            drift_window_, canary_options.min_domain_quality_samples);
        const CanaryVerdict verdict =
            EvaluateCanaryWindow(window, canary_options);
        if (verdict.regression) {
          trigger_rollback = true;
          rollback_reason = verdict.reason;
        }
      }
    } else {
      model->primary_quality.Observe(feedback.p_fake, feedback.label,
                                     feedback.domain);
      ++model->feedback_total;
      if (options_.primary_min_auc > 0.0) {
        const QualityWindowSnapshot snapshot =
            model->primary_quality.Snapshot(
                drift_window_, options_.min_domain_quality_samples);
        // The flag moves only on evidence: a defined AUC over enough
        // samples. Degenerate windows leave it where it was, so the flag's
        // trajectory is a deterministic function of the feedback stream.
        if (snapshot.auc_valid &&
            snapshot.samples >= options_.min_quality_samples) {
          const bool low = snapshot.auc < options_.primary_min_auc;
          if (low !=
              model->quality_degraded.load(std::memory_order_acquire)) {
            model->quality_degraded.store(low, std::memory_order_release);
            DTDBD_LOG(Warning)
                << "model '" << model->name << "': windowed AUC "
                << snapshot.auc << " over " << snapshot.samples
                << " feedbacks " << (low ? "fell below" : "recovered to")
                << " the " << options_.primary_min_auc
                << " floor; quality_degraded=" << (low ? "true" : "false");
          }
        }
      }
    }
  }
  if (trigger_rollback &&
      !model->canary_draining.exchange(true, std::memory_order_acq_rel)) {
    // Same path as an error-rate regression (ServeBatch): drain flag
    // first so routing stops feeding the candidate, then a front-of-queue
    // barrier job frees it — queued slice members fall back to the
    // primary, zero requests dropped.
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++model->quality_rollbacks;
    }
    DTDBD_LOG(Warning) << "model '" << model->name
                       << "': canary quality regression detected — "
                       << rollback_reason
                       << "; rolling back to last-good version "
                       << model->version.load(std::memory_order_acquire);
    EnqueueControl(
        model->name,
        [this, rollback_reason](ModelState* m) {
          return RollbackCanary(m, rollback_reason);
        },
        /*front=*/true);
  }
  return Status::Ok();
}

std::future<Status> Server::EnqueueControl(
    const std::string& model_name, std::function<Status(ModelState*)> fn,
    bool front) {
  Job job;
  job.kind = Job::Kind::kControl;
  std::future<Status> future = job.control_reply.get_future();

  std::unique_lock<std::mutex> lock(mu_);
  if (stopped_) {
    lock.unlock();
    job.control_reply.set_value(Status::Unavailable("server is stopped"));
    return future;
  }
  ModelState* model = fleet_.Resolve(model_name);
  if (model == nullptr) {
    lock.unlock();
    job.control_reply.set_value(
        Status::NotFound("unknown model '" + model_name + "'"));
    return future;
  }
  job.control = [fn = std::move(fn), model] { return fn(model); };
  // Control jobs bypass the depth limit: an overloaded server must still
  // accept the reload that might fix it. `front` jumps the backlog — used
  // by auto-rollback so the drain is bounded by in-flight work, not by
  // every queued request ahead of it.
  ++control_pending_;  // gates cache/dedup until the closure retires
  if (front) {
    queue_.push_front(std::move(job));
  } else {
    queue_.push_back(std::move(job));
  }
  lock.unlock();
  cv_.notify_all();
  return future;
}

std::future<Status> Server::ReloadFromCheckpoint(std::string checkpoint_path) {
  return ReloadModelFromCheckpoint(std::string(), std::move(checkpoint_path));
}

std::future<Status> Server::ReloadModelFromCheckpoint(
    const std::string& model_name, std::string checkpoint_path) {
  return EnqueueControl(
      model_name, [this, path = std::move(checkpoint_path)](ModelState* model) {
        return RunReload(model, path);
      });
}

std::future<Status> Server::StartCanary(const std::string& model_name,
                                        std::string checkpoint_path,
                                        CanaryOptions options) {
  if (options.percent < 1 || options.percent > 100) {
    std::promise<Status> reply;
    reply.set_value(Status::InvalidArgument(
        "canary percent must be in [1, 100], got " +
        std::to_string(options.percent)));
    return reply.get_future();
  }
  if (options.window < 1) {
    std::promise<Status> reply;
    reply.set_value(Status::InvalidArgument(
        "canary window must be >= 1, got " + std::to_string(options.window)));
    return reply.get_future();
  }
  return EnqueueControl(
      model_name,
      [this, path = std::move(checkpoint_path), options](ModelState* model) {
        // Inside the barrier: no batch is in flight and no other control
        // job runs, so session pointers are ours to read and write (mu_ is
        // still taken for the write so Health() snapshots stay coherent).
        if (model->canary != nullptr) {
          return Status::FailedPrecondition(
              "model '" + model->name +
              "' already has an active canary; promote or cancel it first");
        }
        StatusOr<std::unique_ptr<InferenceSession>> candidate =
            LoadCandidate(model, path);
        if (!candidate.ok()) return candidate.status();
        const int64_t candidate_version = candidate.value()->model_version();
        {
          std::lock_guard<std::mutex> lock(mu_);
          model->canary = std::move(candidate).value();
          model->canary_options = options;
        }
        model->canary_draining.store(false, std::memory_order_release);
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++model->canaries_started;
          model->window = CanaryWindowStats();
          // A fresh candidate starts with an empty quality ring: feedback
          // for a PREVIOUS canary must never judge this one.
          model->canary_quality.Clear();
          model->canary_feedback_since_eval = 0;
          model->last_canary_event =
              "canary started at version " + std::to_string(candidate_version) +
              " (" + std::to_string(options.percent) + "% slice)";
        }
        DTDBD_LOG(Info) << "model '" << model->name << "': canary version "
                        << candidate_version << " serving "
                        << options.percent << "% of traffic";
        return Status::Ok();
      });
}

std::future<Status> Server::PromoteCanary(const std::string& model_name) {
  return EnqueueControl(model_name, [this](ModelState* model) {
    if (model->canary == nullptr) {
      return Status::FailedPrecondition("model '" + model->name +
                                        "' has no active canary to promote");
    }
    if (model->canary_draining.load(std::memory_order_acquire)) {
      return Status::FailedPrecondition(
          "model '" + model->name +
          "' canary is draining after a detected regression; cancel instead");
    }
    const int64_t version = model->canary->model_version();
    {
      std::lock_guard<std::mutex> lock(mu_);
      model->primary = std::move(model->canary);
      model->canary.reset();
    }
    // The primary's answers just changed identity: drop every cached
    // prediction inside the same barrier, before any request can run.
    // (The wait-set is empty here by construction — admission stopped
    // creating groups the moment this control job was enqueued.)
    if (model->cache != nullptr) model->cache->Clear();
    model->version.store(version, std::memory_order_release);
    model->degraded.store(false, std::memory_order_release);
    model->quality_degraded.store(false, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++model->canary_promotions;
      model->window = CanaryWindowStats();
      // The primary just changed identity: both quality windows die inside
      // the same barrier, so no window ever straddles the swap (feedback
      // recorded after this observes only the promoted model's answers...
      // modulo in-flight feedback for pre-swap answers, which the WINDOW
      // bounds — see DESIGN.md §13).
      model->primary_quality.Clear();
      model->canary_quality.Clear();
      model->canary_feedback_since_eval = 0;
      model->last_canary_event =
          "canary promoted to primary at version " + std::to_string(version);
    }
    DTDBD_LOG(Info) << "model '" << model->name
                    << "': canary promoted to primary, version " << version;
    return Status::Ok();
  });
}

std::future<Status> Server::CancelCanary(const std::string& model_name) {
  return EnqueueControl(model_name, [this](ModelState* model) {
    if (model->canary == nullptr) {
      return Status::FailedPrecondition("model '" + model->name +
                                        "' has no active canary to cancel");
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      model->canary.reset();
    }
    model->canary_draining.store(false, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++model->canary_cancels;
      model->window = CanaryWindowStats();
      model->canary_quality.Clear();
      model->canary_feedback_since_eval = 0;
      model->last_canary_event = "canary canceled";
    }
    return Status::Ok();
  });
}

std::future<Status> Server::StartShadow(const std::string& model_name,
                                        std::string checkpoint_path) {
  return EnqueueControl(
      model_name, [this, path = std::move(checkpoint_path)](ModelState* model) {
        StatusOr<std::unique_ptr<InferenceSession>> candidate =
            LoadCandidate(model, path);
        if (!candidate.ok()) return candidate.status();
        const int64_t version = candidate.value()->model_version();
        {
          std::lock_guard<std::mutex> lock(mu_);
          model->shadow = std::move(candidate).value();
        }
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          model->shadow_stats = ShadowStats();
        }
        DTDBD_LOG(Info) << "model '" << model->name
                        << "': shadow scoring version " << version
                        << " off the response path";
        return Status::Ok();
      });
}

std::future<Status> Server::StopShadow(const std::string& model_name) {
  return EnqueueControl(model_name, [this](ModelState* model) {
    std::lock_guard<std::mutex> lock(mu_);
    model->shadow.reset();
    return Status::Ok();
  });
}

bool Server::RouteToCanaryLocked(const Job& job) const {
  const ModelState* model = job.model;
  return model->canary != nullptr &&
         !model->canary_draining.load(std::memory_order_acquire) &&
         InCanarySlice(job.route_hash, model->canary_options.percent);
}

void Server::DetachGroupLocked(ModelState* model,
                               const std::shared_ptr<DedupGroup>& group,
                               std::vector<DedupFollower>* followers) {
  group->resolved = true;
  followers->insert(followers->end(),
                    std::make_move_iterator(group->followers.begin()),
                    std::make_move_iterator(group->followers.end()));
  group->followers.clear();
  auto it = model->dedup_waitset.find(group->key.hash);
  if (it != model->dedup_waitset.end()) {
    auto& groups = it->second;
    groups.erase(std::remove(groups.begin(), groups.end(), group),
                 groups.end());
    if (groups.empty()) model->dedup_waitset.erase(it);
  }
}

void Server::DrainQueueLocked() {
  while (!queue_.empty()) {
    Job dropped = std::move(queue_.front());
    queue_.pop_front();
    if (dropped.kind == Job::Kind::kInfer) {
      --inference_depth_;
      --dropped.model->queued;
      dropped.done(
          Status::Unavailable("server stopped before serving request"));
      if (dropped.group != nullptr) {
        // Followers die with their leader: same status, exactly once each.
        std::vector<DedupFollower> followers;
        DetachGroupLocked(dropped.model, dropped.group, &followers);
        for (DedupFollower& follower : followers) {
          follower.done(
              Status::Unavailable("server stopped before serving request"));
        }
      }
    } else {
      --control_pending_;
      dropped.control_reply.set_value(
          Status::Unavailable("server stopped before reload"));
    }
  }
}

void Server::WorkerLoop(KernelPool* pool) {
  // Every kernel this thread dispatches — inference forwards AND
  // control-job model construction/restore — runs on this worker's private
  // pool, never the process-wide one.
  ScopedKernelPool scoped(pool);
  std::vector<Job> batch;
  for (;;) {
    batch.clear();
    Job control_job;
    bool have_control = false;
    ModelState* model = nullptr;
    bool use_canary = false;
    InferenceSession* session = nullptr;
    InferenceSession* shadow = nullptr;
    int64_t dequeue_nanos = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      // The control barrier (barrier_active_) parks every other worker
      // here, so a session swap never overlaps a dequeue, let alone a
      // forward.
      cv_.wait(lock, [this] {
        return stopped_ || (!queue_.empty() && !barrier_active_);
      });
      if (stopped_) {
        // Fail everything still queued — coalesced or not; admission is
        // already closed, so whichever worker gets here first drains.
        DrainQueueLocked();
        return;
      }
      if (queue_.front().kind == Job::Kind::kControl) {
        control_job = std::move(queue_.front());
        queue_.pop_front();
        have_control = true;
        // barrier_active_ takes over the cache/dedup admission gate from
        // control_pending_ with both flags under this one mu_ hold, so
        // there is no instant where a request could slip into the cache
        // layer between "dequeued" and "running".
        --control_pending_;
        barrier_active_ = true;
        // Quiesce: in-flight batches must finish before the closure runs.
        cv_.wait(lock, [this] { return inflight_batches_ == 0; });
      } else {
        // Greedy coalescing: take only what is already waiting (fill
        // window zero — nobody is ever held for batchmates), stop at a
        // control job so barrier work stays strictly ordered with the
        // queue, and NEVER mix (model, canary-variant) — every batch is
        // served by exactly one session.
        model = queue_.front().model;
        use_canary = RouteToCanaryLocked(queue_.front());
        while (!queue_.empty() &&
               queue_.front().kind == Job::Kind::kInfer &&
               queue_.front().model == model &&
               RouteToCanaryLocked(queue_.front()) == use_canary &&
               static_cast<int>(batch.size()) < max_batch_) {
          batch.push_back(std::move(queue_.front()));
          queue_.pop_front();
          --inference_depth_;
          --model->queued;
          if (batch.back().group != nullptr) {
            // The leader leaves the queue: followers can no longer extend
            // its deadline in place, so freeze the group's shed horizon
            // into the job the shed check will consult.
            batch.back().group->queued = false;
            batch.back().deadline_nanos =
                batch.back().group->group_deadline_nanos;
          }
        }
        // Session pointers resolved under mu_ stay valid lock-free for the
        // whole batch: the barrier waits for inflight_batches_ == 0.
        session = use_canary ? model->canary.get() : model->primary.get();
        shadow = use_canary ? nullptr : model->shadow.get();
        ++inflight_batches_;
        // The shed timestamp is read under mu_ so it is ordered against
        // every dedup attach (which also reads the clock under mu_): a
        // follower observing "now <= group deadline" is guaranteed the
        // batch did not shed its group.
        dequeue_nanos = clock_->NowNanos();
      }
    }
    if (have_control) {
      // Run the closure and drop the barrier BEFORE resolving the caller's
      // future: the moment .get() returns, a follow-up request must find
      // the admission gate open again (cache/dedup participation restored).
      // Resolving first left a window where a request admitted right after
      // the control completed silently skipped the cache layer — visible
      // as a "never hits" flake in the promote/invalidate tests.
      Status control_status = control_job.control();
      {
        std::lock_guard<std::mutex> lock(mu_);
        barrier_active_ = false;
      }
      cv_.notify_all();
      control_job.control_reply.set_value(std::move(control_status));
      continue;
    }
    ServeBatch(model, use_canary, session, shadow, &batch, dequeue_nanos);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --inflight_batches_;
    }
    cv_.notify_all();
  }
}

void Server::ServeBatch(ModelState* model, bool use_canary,
                        InferenceSession* session, InferenceSession* shadow,
                        std::vector<Job>* jobs, int64_t dequeue_nanos) {
  // Per-element shed at dequeue: batching never delays the deadline check,
  // and one expired element never poisons its batchmates. A job whose
  // dedup group sheds sheds every member with it — the group deadline is
  // the max over members, so an expired group means every member's own
  // deadline is expired too (and the mu_-ordered clock reads guarantee no
  // still-live follower attached after this timestamp was taken).
  std::vector<Job*> live;
  live.reserve(jobs->size());
  int64_t local_shed = 0;
  for (Job& job : *jobs) {
    if (job.deadline_nanos > 0 && dequeue_nanos > job.deadline_nanos) {
      shed_deadline_.fetch_add(1, std::memory_order_relaxed);
      ++local_shed;
      job.done(Status::DeadlineExceeded(
          "request shed: deadline expired before serving"));
      if (job.group != nullptr) {
        std::vector<DedupFollower> followers;
        {
          std::lock_guard<std::mutex> lock(mu_);
          DetachGroupLocked(model, job.group, &followers);
        }
        for (DedupFollower& follower : followers) {
          shed_deadline_.fetch_add(1, std::memory_order_relaxed);
          ++local_shed;
          follower.done(Status::DeadlineExceeded(
              "request shed: deadline expired before serving"));
        }
      }
    } else {
      live.push_back(&job);
    }
  }
  if (live.empty()) {
    if (local_shed > 0) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      model->shed_deadline += local_shed;
    }
    return;
  }

  std::vector<const InferenceRequest*> requests;
  requests.reserve(live.size());
  int64_t queue_wait = 0;
  for (const Job* job : live) {
    requests.push_back(&job->request);
    queue_wait += dequeue_nanos - job->enqueue_nanos;
  }
  // Test hook: a configured slow-predict stall simulates an expensive
  // forward (it is real wall-clock, independent of the injectable Clock),
  // so dedup/idle-sweep tests can park followers behind a running leader
  // deterministically.
  if (options_.fault_injector != nullptr) {
    const int64_t slow = options_.fault_injector->slow_predict_nanos();
    if (slow > 0) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(slow));
    }
  }
  std::vector<StatusOr<Prediction>> results = session->PredictBatch(requests);
  // Canary-only failure injection: converts a would-be OK canary answer
  // into kInternal so tests can fake a regressed candidate without ever
  // perturbing a primary response (the parity contracts depend on that).
  if (use_canary && options_.fault_injector != nullptr) {
    for (StatusOr<Prediction>& result : results) {
      if (result.ok() && options_.fault_injector->MaybeFailCanaryPredict()) {
        result = Status::Internal("injected canary prediction failure");
      }
    }
  }
  const int64_t done_nanos = clock_->NowNanos();
  const int64_t batch_compute = done_nanos - dequeue_nanos;
  queue_wait_nanos_.fetch_add(queue_wait, std::memory_order_relaxed);
  compute_nanos_.fetch_add(batch_compute, std::memory_order_relaxed);

  // Stamp fleet attribution and classify. No reply leaves yet: every
  // counter and histogram cell a caller could observe right after its
  // future resolves must already be committed when it does. When a shadow
  // is active the primary outcomes are also copied here — replies consume
  // the results, and the shadow comparison must never delay them.
  struct ShadowBaseline {
    bool ok = false;
    float p_fake = 0.0f;
    int label = 0;
  };
  std::vector<ShadowBaseline> baseline;
  if (shadow != nullptr) baseline.resize(live.size());
  std::vector<int64_t> ok_latencies;
  ok_latencies.reserve(live.size());
  int64_t local_ok = 0;
  int64_t local_invalid = 0;
  int64_t local_internal = 0;
  for (size_t i = 0; i < live.size(); ++i) {
    StatusOr<Prediction>& result = results[i];
    if (result.ok()) {
      result.value().model_name = model->name;
      result.value().canary = use_canary;
      if (shadow != nullptr) {
        baseline[i] = {true, result.value().p_fake, result.value().label};
      }
      ++local_ok;
      served_ok_.fetch_add(1, std::memory_order_relaxed);
      ok_latencies.push_back(done_nanos - live[i]->enqueue_nanos);
    } else if (result.status().code() == StatusCode::kInvalidArgument) {
      ++local_invalid;
      invalid_requests_.fetch_add(1, std::memory_order_relaxed);
    } else {
      ++local_internal;
      internal_errors_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Cache insert + dedup fan-out (DESIGN.md §12). Insertion happens BEFORE
  // the group detaches from the wait-set, so a concurrent identical
  // admission either attaches (and is fanned below) or — once detached —
  // finds the entry in the cache: there is no window where it would
  // recompute. Followers are fanned a copy of the leader's outcome,
  // errors included (the outcome is a pure function of the shared
  // content), but each is first judged against its OWN deadline — that is
  // the "sheds independently" half of the dedup deadline contract.
  struct FollowerReply {
    std::function<void(StatusOr<Prediction>)> done;
    StatusOr<Prediction> result;
  };
  std::vector<FollowerReply> follower_replies;
  for (size_t i = 0; i < live.size(); ++i) {
    Job* job = live[i];
    if (job->group == nullptr) continue;
    const StatusOr<Prediction>& result = results[i];
    if (result.ok() && !use_canary && model->cache != nullptr) {
      PredictionCache::Entry entry;
      entry.p_fake = result.value().p_fake;
      entry.label = result.value().label;
      entry.model_version = result.value().model_version;
      model->cache->Insert(job->group->key, entry);
    }
    std::vector<DedupFollower> followers;
    {
      std::lock_guard<std::mutex> lock(mu_);
      DetachGroupLocked(model, job->group, &followers);
    }
    for (DedupFollower& follower : followers) {
      // The shed horizon a follower is judged at: the batch's dequeue for
      // members that were waiting then, its own attach time for members
      // that joined a running leader with an already-expired deadline.
      const int64_t effective =
          std::max(dequeue_nanos, follower.enqueue_nanos);
      if (follower.deadline_nanos > 0 &&
          effective > follower.deadline_nanos) {
        shed_deadline_.fetch_add(1, std::memory_order_relaxed);
        ++local_shed;
        follower_replies.push_back(
            {std::move(follower.done),
             Status::DeadlineExceeded(
                 "request shed: deadline expired before serving")});
        continue;
      }
      if (result.ok()) {
        ++local_ok;
        served_ok_.fetch_add(1, std::memory_order_relaxed);
        ok_latencies.push_back(
            std::max<int64_t>(0, done_nanos - follower.enqueue_nanos));
      } else if (result.status().code() == StatusCode::kInvalidArgument) {
        ++local_invalid;
        invalid_requests_.fetch_add(1, std::memory_order_relaxed);
      } else {
        ++local_internal;
        internal_errors_.fetch_add(1, std::memory_order_relaxed);
      }
      follower_replies.push_back({std::move(follower.done), result});
    }
  }

  bool trigger_rollback = false;
  std::string rollback_reason;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++batches_run_;
    batched_elements_ += static_cast<int64_t>(live.size());
    ++batch_size_hist_[live.size()];
    model->shed_deadline += local_shed;
    model->served_ok += local_ok;
    model->invalid_requests += local_invalid;
    model->internal_errors += local_internal;
    for (int64_t nanos : ok_latencies) {
      latencies_[static_cast<size_t>(latency_next_)] = nanos;
      latency_next_ = (latency_next_ + 1) % options_.latency_window;
      if (latency_count_ < options_.latency_window) ++latency_count_;
      model->latencies[static_cast<size_t>(model->latency_next)] = nanos;
      model->latency_next = (model->latency_next + 1) % options_.latency_window;
      if (model->latency_count < options_.latency_window) {
        ++model->latency_count;
      }
    }
    // Canary monitor: both variants feed the shared window (reading the
    // canary session pointer here is safe — this batch is still in flight,
    // so no barrier job can swap it). Only canary-side batches can
    // complete a window, so a verdict always includes fresh canary data.
    if (model->canary != nullptr &&
        !model->canary_draining.load(std::memory_order_acquire)) {
      CanaryWindowStats& window = model->window;
      const int64_t reached_forward = local_ok + local_internal;
      if (use_canary) {
        window.canary_served += reached_forward;
        window.canary_errors += local_internal;
        window.canary_compute_nanos += batch_compute;
      } else {
        window.primary_served += reached_forward;
        window.primary_errors += local_internal;
        window.primary_compute_nanos += batch_compute;
      }
      if (use_canary &&
          window.canary_served >= model->canary_options.window) {
        ++model->windows_evaluated;
        const CanaryVerdict verdict =
            EvaluateCanaryWindow(window, model->canary_options);
        window = CanaryWindowStats();
        if (verdict.regression) {
          trigger_rollback = true;
          rollback_reason = verdict.reason;
        }
      }
    }
  }

  for (size_t i = 0; i < live.size(); ++i) {
    live[i]->done(std::move(results[i]));
  }
  // Dedup fan-out: one forward, N replies — every follower sees exactly
  // the bytes its leader saw (or its own typed shed).
  for (FollowerReply& reply : follower_replies) {
    reply.done(std::move(reply.result));
  }

  // Off-path shadow scoring: primary replies are already on their way and
  // bitwise identical to a no-shadow run. This runs inside the in-flight
  // window, so no barrier job can swap sessions under it; its wall-clock
  // is deliberately NOT charged to compute_ms/latency telemetry.
  if (shadow != nullptr) {
    ShadowStats delta;
    std::vector<StatusOr<Prediction>> shadow_results =
        shadow->PredictBatch(requests);
    for (size_t i = 0; i < live.size(); ++i) {
      if (!baseline[i].ok) continue;  // compare only where primary answered
      if (!shadow_results[i].ok()) {
        ++delta.shadow_errors;
        continue;
      }
      ++delta.scored;
      const double d = std::fabs(
          static_cast<double>(shadow_results[i].value().p_fake) -
          static_cast<double>(baseline[i].p_fake));
      delta.abs_delta_sum += d;
      delta.abs_delta_max = std::max(delta.abs_delta_max, d);
      if (shadow_results[i].value().label != baseline[i].label) {
        ++delta.label_disagreements;
      }
    }
    std::lock_guard<std::mutex> lock(stats_mu_);
    ShadowStats& stats = model->shadow_stats;
    stats.scored += delta.scored;
    stats.shadow_errors += delta.shadow_errors;
    stats.label_disagreements += delta.label_disagreements;
    stats.abs_delta_sum += delta.abs_delta_sum;
    stats.abs_delta_max = std::max(stats.abs_delta_max, delta.abs_delta_max);
  }
  if (trigger_rollback &&
      !model->canary_draining.exchange(true, std::memory_order_acq_rel)) {
    // Draining flips BEFORE the rollback job runs, so dequeue stops
    // feeding the candidate immediately; queued slice members fall back to
    // the primary. The barrier job then frees the candidate. exchange()
    // guards against two workers observing the same regression.
    DTDBD_LOG(Warning) << "model '" << model->name
                       << "': canary regression detected — " << rollback_reason
                       << "; rolling back to last-good version "
                       << model->version.load(std::memory_order_acquire);
    EnqueueControl(
        model->name,
        [this, rollback_reason](ModelState* m) {
          return RollbackCanary(m, rollback_reason);
        },
        /*front=*/true);
  }
}

Status Server::RollbackCanary(ModelState* model, const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (model->canary == nullptr) {
      // Already canceled/promoted between detection and the barrier; the
      // drain flag must still be cleared so a future canary can route.
      model->canary_draining.store(false, std::memory_order_release);
      return Status::Ok();
    }
    model->canary.reset();
  }
  model->canary_draining.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++model->canary_rollbacks;
    model->window = CanaryWindowStats();
    model->canary_quality.Clear();
    model->canary_feedback_since_eval = 0;
    model->last_canary_event = "auto-rollback: " + reason;
  }
  DTDBD_LOG(Warning) << "model '" << model->name
                     << "': canary rolled back to last-good version "
                     << model->version.load(std::memory_order_acquire) << " ("
                     << reason << ")";
  return Status::Ok();
}

StatusOr<std::unique_ptr<InferenceSession>> Server::LoadSessionFor(
    ModelState* model, const std::string& path, int64_t version) {
  if (options_.fault_injector != nullptr) {
    const int64_t slow = options_.fault_injector->slow_load_nanos();
    if (slow > 0) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(slow));
    }
    DTDBD_RETURN_IF_ERROR(options_.fault_injector->MaybeFailLoad());
  }
  if (!model->factory) {
    if (model->is_default) {
      return Status::FailedPrecondition(
          "hot-reload requires ServerOptions::model_factory");
    }
    return Status::FailedPrecondition("model '" + model->name +
                                      "' was registered without a factory");
  }
  DTDBD_ASSIGN_OR_RETURN(train::CheckpointState state,
                         train::LoadCheckpoint(path));
  // Both "supervised" and "dtdbd" checkpoints are servable; only the model
  // parameter map matters here. Restore into a FRESH model so a mismatched
  // checkpoint can never leave any live session half-overwritten.
  std::unique_ptr<models::FakeNewsModel> fresh = model->factory();
  if (fresh == nullptr) {
    return Status::FailedPrecondition("model_factory returned null");
  }
  std::map<std::string, tensor::Tensor> named = fresh->NamedParameters();
  DTDBD_RETURN_IF_ERROR(tensor::RestoreInto(state.model, &named));
  // The primary pointer is stable here: loads only run inside the barrier,
  // the one context that may also write it.
  return std::make_unique<InferenceSession>(std::move(fresh),
                                            model->primary->limits(), version);
}

StatusOr<std::unique_ptr<InferenceSession>> Server::LoadCandidate(
    ModelState* model, const std::string& path) {
  int64_t backoff = options_.reload_backoff_initial_nanos;
  Status last = Status::Ok();
  const int attempts = std::max(1, options_.reload_max_attempts);
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    reload_attempts_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++model->reload_attempts;
    }
    const int64_t version =
        model->version.load(std::memory_order_acquire) + 1;
    StatusOr<std::unique_ptr<InferenceSession>> loaded =
        LoadSessionFor(model, path, version);
    if (loaded.ok()) {
      reload_successes_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++model->reload_successes;
      return loaded;
    }
    last = loaded.status();
    reload_failures_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++model->reload_failures;
    }
    DTDBD_LOG(Warning) << "model '" << model->name << "': load attempt "
                       << attempt << "/" << attempts
                       << " failed: " << last.ToString();
    if (attempt < attempts && backoff > 0) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(backoff));
      backoff = static_cast<int64_t>(
          static_cast<double>(backoff) * options_.reload_backoff_multiplier);
    }
  }
  return last;
}

Status Server::RunReload(ModelState* model, const std::string& path) {
  StatusOr<std::unique_ptr<InferenceSession>> candidate =
      LoadCandidate(model, path);
  if (candidate.ok()) {
    const int64_t version = candidate.value()->model_version();
    {
      std::lock_guard<std::mutex> lock(mu_);
      model->primary = std::move(candidate).value();
    }
    // Invalidate-by-barrier: stale entries die inside the same quiescent
    // window that swapped the session, so a post-reload request can only
    // ever hit post-reload entries. (Failed reloads keep the last-good
    // primary AND its still-exact cache.)
    if (model->cache != nullptr) model->cache->Clear();
    model->version.store(version, std::memory_order_release);
    model->degraded.store(false, std::memory_order_release);
    // The swapped-in primary starts with a clean quality slate: the old
    // window described the old weights, and a degraded-quality verdict must
    // never outlive the model that earned it. Cleared inside the barrier,
    // so no quality window straddles the swap.
    model->quality_degraded.store(false, std::memory_order_release);
    std::lock_guard<std::mutex> lock(stats_mu_);
    model->primary_quality.Clear();
    model->last_reload_error.clear();
    return Status::Ok();
  }
  // Exhausted: keep serving the last-good model, but say so loudly.
  model->degraded.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    model->last_reload_error = candidate.status().ToString();
  }
  DTDBD_LOG(Error) << "model '" << model->name << "': hot-reload of " << path
                   << " failed; serving degraded on version "
                   << model->version.load(std::memory_order_acquire);
  return candidate.status();
}

// p50/p99 over the first `count` slots of a latency ring. The ring is
// unordered (it wraps), so order statistics need a sorted copy. The pick
// is canonical nearest-rank — rank = ceil(q * count), clamped into
// [1, count] — which the old round-half-up interpolation was not: for
// count == 2 it returned the UPPER sample as p50, and its index was only
// accidentally in range (q * (count-1) + 0.5 flirts with `count` for
// q -> 1). Nearest-rank can never read past the filled window, returns
// the single sample for count == 1, and is monotone in q so p99 is never
// a lower slot than p50.
void LatencyPercentiles(const std::vector<int64_t>& ring, int64_t count,
                        double* p50_ms, double* p99_ms) {
  if (count <= 0) return;
  count = std::min<int64_t>(count, static_cast<int64_t>(ring.size()));
  std::vector<int64_t> window(ring.begin(), ring.begin() + count);
  std::sort(window.begin(), window.end());
  const auto pick = [&window](double q) {
    int64_t rank = static_cast<int64_t>(
        std::ceil(q * static_cast<double>(window.size())));
    rank = std::max<int64_t>(1, rank);
    rank = std::min<int64_t>(rank, static_cast<int64_t>(window.size()));
    return static_cast<double>(window[static_cast<size_t>(rank - 1)]) / 1e6;
  };
  *p50_ms = pick(0.50);
  *p99_ms = pick(0.99);
}

HealthReport Server::Health() const {
  HealthReport report;
  // Phase 1 (mu_): queue depths, registry snapshot, and session-pointer
  // facts (canary/shadow active). The pointer snapshot makes the report
  // immune to a model registered mid-call: it simply appears next time.
  std::vector<ModelState*> states;
  {
    std::lock_guard<std::mutex> lock(mu_);
    report.queue_depth = inference_depth_;
    report.num_models = static_cast<int64_t>(fleet_.models().size());
    states.reserve(fleet_.models().size());
    for (const auto& model : fleet_.models()) {
      ModelState* m = model.get();
      states.push_back(m);
      ModelHealth health;
      health.name = m->name;
      health.is_default = m->is_default;
      health.queue_depth = m->queued;
      health.canary.active = m->canary != nullptr;
      health.canary.draining =
          m->canary_draining.load(std::memory_order_acquire);
      if (m->canary != nullptr) {
        health.canary.percent = m->canary_options.percent;
        health.canary.window = m->canary_options.window;
        health.canary.candidate_version = m->canary->model_version();
      }
      health.shadow.active = m->shadow != nullptr;
      // Int8 facts are session properties, fixed at load — read under mu_
      // like the other session-pointer facts so a concurrent reload (which
      // swaps the session inside the quiescent barrier) can't race us.
      if (m->primary != nullptr) {
        health.int8_active = m->primary->int8_active();
        health.quantized_bytes = m->primary->quantized_bytes();
      }
      if (m->is_default) report.int8_active = health.int8_active;
      report.models.push_back(std::move(health));
    }
  }
  report.default_model = fleet_.default_model();
  report.max_queue_depth = options_.max_queue_depth;
  report.num_workers = num_workers_;
  report.max_batch = max_batch_;
  report.submitted = submitted_.load(std::memory_order_relaxed);
  report.admitted = admitted_.load(std::memory_order_relaxed);
  report.rejected_queue_full =
      rejected_queue_full_.load(std::memory_order_relaxed);
  report.rejected_unknown_model =
      rejected_unknown_model_.load(std::memory_order_relaxed);
  report.shed_deadline = shed_deadline_.load(std::memory_order_relaxed);
  report.served_ok = served_ok_.load(std::memory_order_relaxed);
  report.invalid_requests = invalid_requests_.load(std::memory_order_relaxed);
  report.internal_errors = internal_errors_.load(std::memory_order_relaxed);
  report.reload_attempts = reload_attempts_.load(std::memory_order_relaxed);
  report.reload_successes = reload_successes_.load(std::memory_order_relaxed);
  report.reload_failures = reload_failures_.load(std::memory_order_relaxed);
  // Top-level reload/version fields mirror the DEFAULT model — the
  // pre-fleet contract every existing consumer was written against.
  report.degraded = default_state_->degraded.load(std::memory_order_acquire);
  report.model_version =
      default_state_->version.load(std::memory_order_acquire);
  report.watchdog_ticks = watchdog_ticks_.load(std::memory_order_relaxed);
  report.queue_wait_ms_total =
      static_cast<double>(queue_wait_nanos_.load(std::memory_order_relaxed)) /
      1e6;
  report.compute_ms_total =
      static_cast<double>(compute_nanos_.load(std::memory_order_relaxed)) /
      1e6;
  report.feedback_recorded = feedback_recorded_.load(std::memory_order_relaxed);
  report.quality_degraded =
      default_state_->quality_degraded.load(std::memory_order_acquire);
  for (size_t i = 0; i < states.size(); ++i) {
    ModelHealth& health = report.models[i];
    health.version = states[i]->version.load(std::memory_order_acquire);
    health.degraded = states[i]->degraded.load(std::memory_order_acquire);
    health.quality.quality_degraded =
        states[i]->quality_degraded.load(std::memory_order_acquire);
  }
  // Phase 2 (stats_mu_): counters, latency windows, canary/shadow
  // telemetry. Never held together with mu_ (one-way order, and Health
  // releases mu_ first anyway).
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    report.last_reload_error = default_state_->last_reload_error;
    report.batch_size_histogram = batch_size_hist_;
    report.batches_run = batches_run_;
    // Guard both splits against an empty window: before the first batch the
    // denominators are zero and the averages must read 0.0, not NaN.
    report.avg_batch_size =
        batches_run_ > 0 ? static_cast<double>(batched_elements_) /
                               static_cast<double>(batches_run_)
                         : 0.0;
    report.avg_queue_wait_ms =
        batched_elements_ > 0
            ? report.queue_wait_ms_total /
                  static_cast<double>(batched_elements_)
            : 0.0;
    report.avg_compute_ms =
        batches_run_ > 0
            ? report.compute_ms_total / static_cast<double>(batches_run_)
            : 0.0;
    report.latency_samples = latency_count_;
    report.latency_no_samples = latency_count_ == 0;
    LatencyPercentiles(latencies_, latency_count_, &report.p50_latency_ms,
                       &report.p99_latency_ms);
    for (size_t i = 0; i < states.size(); ++i) {
      ModelState* m = states[i];
      ModelHealth& health = report.models[i];
      health.last_reload_error = m->last_reload_error;
      health.served_ok = m->served_ok;
      health.invalid_requests = m->invalid_requests;
      health.internal_errors = m->internal_errors;
      health.shed_deadline = m->shed_deadline;
      health.reload_attempts = m->reload_attempts;
      health.reload_successes = m->reload_successes;
      health.reload_failures = m->reload_failures;
      health.latency_samples = m->latency_count;
      health.latency_no_samples = m->latency_count == 0;
      LatencyPercentiles(m->latencies, m->latency_count,
                         &health.p50_latency_ms, &health.p99_latency_ms);
      health.canary.window_canary_served = m->window.canary_served;
      health.canary.windows_evaluated = m->windows_evaluated;
      health.canary.started = m->canaries_started;
      health.canary.rollbacks = m->canary_rollbacks;
      health.canary.promotions = m->canary_promotions;
      health.canary.cancels = m->canary_cancels;
      health.canary.last_event = m->last_canary_event;
      health.shadow.scored = m->shadow_stats.scored;
      health.shadow.shadow_errors = m->shadow_stats.shadow_errors;
      health.shadow.label_disagreements = m->shadow_stats.label_disagreements;
      health.shadow.mean_abs_delta =
          m->shadow_stats.scored > 0
              ? m->shadow_stats.abs_delta_sum /
                    static_cast<double>(m->shadow_stats.scored)
              : 0.0;
      health.shadow.max_abs_delta = m->shadow_stats.abs_delta_max;
      health.cache.deduped = m->deduped;
      health.quality.feedback_total = m->feedback_total;
      health.quality.canary_feedback_total = m->canary_feedback_total;
      health.quality.quality_evals = m->quality_evals;
      health.quality.quality_rollbacks = m->quality_rollbacks;
      const QualityWindowSnapshot snapshot = m->primary_quality.Snapshot(
          drift_window_, options_.min_domain_quality_samples);
      health.quality.window_samples = snapshot.samples;
      health.quality.auc = snapshot.auc;
      health.quality.auc_valid = snapshot.auc_valid;
      health.quality.accuracy = snapshot.accuracy;
      health.quality.bias_spread = snapshot.bias_spread;
      health.quality.bias_spread_valid = snapshot.bias_spread_valid;
      health.quality.domains = snapshot.domains;
    }
  }
  // Phase 3 (cache internals): each PredictionCache is internally locked,
  // so no server mutex is needed to read its shard counters. Aggregate the
  // per-model stats into the top-level report as we go.
  report.cache_enabled = cache_bytes_ > 0;
  report.cache_bytes_limit = cache_bytes_;
  report.deduped = deduped_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < states.size(); ++i) {
    ModelState* m = states[i];
    ModelHealth& health = report.models[i];
    health.cache.enabled = m->cache != nullptr;
    if (m->cache == nullptr) continue;
    const CacheStats stats = m->cache->Stats();
    health.cache.hits = stats.hits;
    health.cache.misses = stats.misses;
    health.cache.inserted = stats.inserted;
    health.cache.evicted = stats.evicted;
    health.cache.invalidated = stats.invalidated;
    health.cache.bytes = stats.bytes;
    health.cache.entries = stats.entries;
    report.cache_hits += stats.hits;
    report.cache_misses += stats.misses;
    report.cache_evicted += stats.evicted;
    report.cache_bytes += stats.bytes;
  }
  return report;
}

HealthReport Server::LastWatchdogReport() const {
  std::lock_guard<std::mutex> lock(watchdog_mu_);
  return last_watchdog_report_;
}

bool Server::degraded() const {
  return default_state_->degraded.load(std::memory_order_acquire);
}

int64_t Server::model_version() const {
  return default_state_->version.load(std::memory_order_acquire);
}

const std::string& Server::default_model() const {
  return fleet_.default_model();
}

void Server::WatchdogLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(watchdog_mu_);
      watchdog_cv_.wait_for(
          lock, std::chrono::nanoseconds(options_.watchdog_period_nanos),
          [this] { return watchdog_stop_; });
      if (watchdog_stop_) return;
    }
    watchdog_ticks_.fetch_add(1, std::memory_order_relaxed);
    HealthReport report = Health();
    std::lock_guard<std::mutex> lock(watchdog_mu_);
    last_watchdog_report_ = std::move(report);
  }
}

void Server::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  {
    std::lock_guard<std::mutex> lock(watchdog_mu_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
}

}  // namespace dtdbd::serve
