#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <map>
#include <utility>

#include "common/flags.h"
#include "common/logging.h"
#include "tensor/serialize.h"
#include "train/checkpoint.h"

namespace dtdbd::serve {

int64_t SystemClock::NowNanos() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const SystemClock* SystemClock::Get() {
  static const SystemClock clock;
  return &clock;
}

int ServeWorkersFromEnv() {
  const char* env = std::getenv("DTDBD_SERVE_WORKERS");
  if (env == nullptr) return 1;
  int n = 0;
  if (ParsePositiveInt(env, &n)) return n;
  DTDBD_LOG(Warning) << "DTDBD_SERVE_WORKERS='" << env
                     << "' is not a positive integer; using 1 worker";
  return 1;
}

int ResolveServeWorkers(const FlagParser& flags) {
  return ResolvePositiveIntFlag(flags, "serve-workers", ServeWorkersFromEnv(),
                                /*invalid_value=*/1);
}

int ResolveMaxBatch(const FlagParser& flags) {
  return ResolvePositiveIntFlag(flags, "max-batch", /*absent_value=*/1,
                                /*invalid_value=*/1);
}

Server::Server(std::unique_ptr<InferenceSession> session,
               ServerOptions options)
    : options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock
                                       : SystemClock::Get()),
      session_(std::move(session)) {
  DTDBD_CHECK(session_ != nullptr);
  DTDBD_CHECK_GT(options_.max_queue_depth, 0);
  DTDBD_CHECK_GT(options_.latency_window, 0);
  num_workers_ =
      options_.num_workers > 0 ? options_.num_workers : ServeWorkersFromEnv();
  max_batch_ = std::max(1, options_.max_batch);
  model_version_.store(session_->model_version(), std::memory_order_release);
  latencies_.assign(static_cast<size_t>(options_.latency_window), 0);
  batch_size_hist_.assign(static_cast<size_t>(max_batch_) + 1, 0);
  pools_.reserve(static_cast<size_t>(num_workers_));
  workers_.reserve(static_cast<size_t>(num_workers_));
  for (int i = 0; i < num_workers_; ++i) {
    // Each worker dispatches kernels into its own pool, sized like the
    // process-wide one, so concurrent forwards share no dispatch state and
    // shard boundaries (hence results) are unchanged.
    pools_.push_back(std::make_unique<KernelPool>(GetNumThreads()));
    workers_.emplace_back(
        [this, pool = pools_.back().get()] { WorkerLoop(pool); });
  }
  if (options_.watchdog_period_nanos > 0) {
    watchdog_ = std::thread([this] { WatchdogLoop(); });
  }
}

Server::~Server() { Stop(); }

std::future<StatusOr<Prediction>> Server::Submit(InferenceRequest request,
                                                 int64_t deadline_nanos) {
  auto reply = std::make_shared<std::promise<StatusOr<Prediction>>>();
  std::future<StatusOr<Prediction>> future = reply->get_future();
  SubmitAsync(std::move(request), deadline_nanos,
              [reply](StatusOr<Prediction> result) {
                reply->set_value(std::move(result));
              });
  return future;
}

void Server::SubmitAsync(InferenceRequest request, int64_t deadline_nanos,
                         std::function<void(StatusOr<Prediction>)> done) {
  DTDBD_CHECK(done != nullptr);
  submitted_.fetch_add(1, std::memory_order_relaxed);
  const int64_t now = clock_->NowNanos();
  if (deadline_nanos == 0 && options_.default_deadline_nanos > 0) {
    deadline_nanos = now + options_.default_deadline_nanos;
  }

  Job job;
  job.kind = Job::Kind::kInfer;
  job.request = std::move(request);
  job.deadline_nanos = deadline_nanos;
  job.enqueue_nanos = now;
  job.done = std::move(done);

  std::unique_lock<std::mutex> lock(mu_);
  if (stopped_) {
    lock.unlock();
    job.done(Status::Unavailable("server is stopped"));
    return;
  }
  if (inference_depth_ >= options_.max_queue_depth) {
    lock.unlock();
    rejected_queue_full_.fetch_add(1, std::memory_order_relaxed);
    job.done(Status::ResourceExhausted(
        "serving queue full (" + std::to_string(options_.max_queue_depth) +
        " requests waiting)"));
    return;
  }
  ++inference_depth_;
  admitted_.fetch_add(1, std::memory_order_relaxed);
  queue_.push_back(std::move(job));
  lock.unlock();
  cv_.notify_one();
}

StatusOr<Prediction> Server::Predict(const InferenceRequest& request) {
  return Submit(request).get();
}

std::future<Status> Server::ReloadFromCheckpoint(std::string checkpoint_path) {
  Job job;
  job.kind = Job::Kind::kReload;
  job.checkpoint_path = std::move(checkpoint_path);
  std::future<Status> future = job.reload_reply.get_future();

  std::unique_lock<std::mutex> lock(mu_);
  if (stopped_) {
    lock.unlock();
    job.reload_reply.set_value(Status::Unavailable("server is stopped"));
    return future;
  }
  // Control jobs bypass the depth limit: an overloaded server must still
  // accept the reload that might fix it.
  queue_.push_back(std::move(job));
  lock.unlock();
  cv_.notify_all();
  return future;
}

void Server::DrainQueueLocked() {
  while (!queue_.empty()) {
    Job dropped = std::move(queue_.front());
    queue_.pop_front();
    if (dropped.kind == Job::Kind::kInfer) {
      --inference_depth_;
      dropped.done(
          Status::Unavailable("server stopped before serving request"));
    } else if (dropped.kind == Job::Kind::kReload) {
      dropped.reload_reply.set_value(
          Status::Unavailable("server stopped before reload"));
    }
  }
}

void Server::WorkerLoop(KernelPool* pool) {
  // Every kernel this thread dispatches — inference forwards AND
  // reload-time model construction/restore — runs on this worker's private
  // pool, never the process-wide one.
  ScopedKernelPool scoped(pool);
  std::vector<Job> batch;
  for (;;) {
    batch.clear();
    Job reload_job;
    bool have_reload = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      // The reload barrier (reload_active_) parks every other worker here,
      // so a swap never overlaps a dequeue, let alone a forward.
      cv_.wait(lock, [this] {
        return stopped_ || (!queue_.empty() && !reload_active_);
      });
      if (stopped_) {
        // Fail everything still queued — coalesced or not; admission is
        // already closed, so whichever worker gets here first drains.
        DrainQueueLocked();
        return;
      }
      if (queue_.front().kind == Job::Kind::kReload) {
        reload_job = std::move(queue_.front());
        queue_.pop_front();
        have_reload = true;
        reload_active_ = true;
        // Quiesce: in-flight batches must finish before the swap.
        cv_.wait(lock, [this] { return inflight_batches_ == 0; });
      } else {
        // Greedy coalescing: take only what is already waiting (fill
        // window zero — nobody is ever held for batchmates), stop at a
        // control job so reloads stay strictly ordered with the queue.
        while (!queue_.empty() &&
               queue_.front().kind == Job::Kind::kInfer &&
               static_cast<int>(batch.size()) < max_batch_) {
          batch.push_back(std::move(queue_.front()));
          queue_.pop_front();
          --inference_depth_;
        }
        ++inflight_batches_;
      }
    }
    if (have_reload) {
      reload_job.reload_reply.set_value(RunReload(reload_job.checkpoint_path));
      {
        std::lock_guard<std::mutex> lock(mu_);
        reload_active_ = false;
      }
      cv_.notify_all();
      continue;
    }
    ServeBatch(&batch);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --inflight_batches_;
    }
    cv_.notify_all();
  }
}

void Server::ServeBatch(std::vector<Job>* jobs) {
  const int64_t dequeue_nanos = clock_->NowNanos();
  // Per-element shed at dequeue: batching never delays the deadline check,
  // and one expired element never poisons its batchmates.
  std::vector<Job*> live;
  live.reserve(jobs->size());
  for (Job& job : *jobs) {
    if (job.deadline_nanos > 0 && dequeue_nanos > job.deadline_nanos) {
      shed_deadline_.fetch_add(1, std::memory_order_relaxed);
      job.done(Status::DeadlineExceeded(
          "request shed: deadline expired before serving"));
    } else {
      live.push_back(&job);
    }
  }
  if (live.empty()) return;

  std::vector<const InferenceRequest*> requests;
  requests.reserve(live.size());
  int64_t queue_wait = 0;
  for (const Job* job : live) {
    requests.push_back(&job->request);
    queue_wait += dequeue_nanos - job->enqueue_nanos;
  }
  std::vector<StatusOr<Prediction>> results =
      session_->PredictBatch(requests);
  const int64_t done_nanos = clock_->NowNanos();
  queue_wait_nanos_.fetch_add(queue_wait, std::memory_order_relaxed);
  compute_nanos_.fetch_add(done_nanos - dequeue_nanos,
                           std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++batches_run_;
    batched_elements_ += static_cast<int64_t>(live.size());
    ++batch_size_hist_[live.size()];
  }
  for (size_t i = 0; i < live.size(); ++i) {
    Job* job = live[i];
    StatusOr<Prediction>& result = results[i];
    if (result.ok()) {
      served_ok_.fetch_add(1, std::memory_order_relaxed);
      RecordLatency(done_nanos - job->enqueue_nanos);
    } else if (result.status().code() == StatusCode::kInvalidArgument) {
      invalid_requests_.fetch_add(1, std::memory_order_relaxed);
    } else {
      internal_errors_.fetch_add(1, std::memory_order_relaxed);
    }
    job->done(std::move(result));
  }
}

Status Server::TryLoadInto(const std::string& path) {
  if (options_.fault_injector != nullptr) {
    const int64_t slow = options_.fault_injector->slow_load_nanos();
    if (slow > 0) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(slow));
    }
    DTDBD_RETURN_IF_ERROR(options_.fault_injector->MaybeFailLoad());
  }
  if (!options_.model_factory) {
    return Status::FailedPrecondition(
        "hot-reload requires ServerOptions::model_factory");
  }
  DTDBD_ASSIGN_OR_RETURN(train::CheckpointState state,
                         train::LoadCheckpoint(path));
  // Both "supervised" and "dtdbd" checkpoints are servable; only the model
  // parameter map matters here. Restore into a FRESH model so a mismatched
  // checkpoint can never leave the live session half-overwritten.
  std::unique_ptr<models::FakeNewsModel> model = options_.model_factory();
  if (model == nullptr) {
    return Status::FailedPrecondition("model_factory returned null");
  }
  std::map<std::string, tensor::Tensor> named = model->NamedParameters();
  DTDBD_RETURN_IF_ERROR(tensor::RestoreInto(state.model, &named));
  const int64_t next_version =
      model_version_.load(std::memory_order_acquire) + 1;
  session_ = std::make_unique<InferenceSession>(
      std::move(model), session_->limits(), next_version);
  model_version_.store(next_version, std::memory_order_release);
  return Status::Ok();
}

Status Server::RunReload(const std::string& path) {
  int64_t backoff = options_.reload_backoff_initial_nanos;
  Status last = Status::Ok();
  const int attempts = std::max(1, options_.reload_max_attempts);
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    reload_attempts_.fetch_add(1, std::memory_order_relaxed);
    last = TryLoadInto(path);
    if (last.ok()) {
      reload_successes_.fetch_add(1, std::memory_order_relaxed);
      degraded_.store(false, std::memory_order_release);
      std::lock_guard<std::mutex> lock(stats_mu_);
      last_reload_error_.clear();
      return last;
    }
    reload_failures_.fetch_add(1, std::memory_order_relaxed);
    DTDBD_LOG(Warning) << "hot-reload attempt " << attempt << "/" << attempts
                       << " failed: " << last.ToString();
    if (attempt < attempts && backoff > 0) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(backoff));
      backoff = static_cast<int64_t>(
          static_cast<double>(backoff) * options_.reload_backoff_multiplier);
    }
  }
  // Exhausted: keep serving the last-good model, but say so loudly.
  degraded_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    last_reload_error_ = last.ToString();
  }
  DTDBD_LOG(Error) << "hot-reload of " << path
                   << " failed after " << attempts
                   << " attempts; serving degraded on model version "
                   << model_version_.load(std::memory_order_acquire);
  return last;
}

void Server::RecordLatency(int64_t nanos) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  latencies_[static_cast<size_t>(latency_next_)] = nanos;
  latency_next_ = (latency_next_ + 1) % options_.latency_window;
  if (latency_count_ < options_.latency_window) ++latency_count_;
}

HealthReport Server::Health() const {
  HealthReport report;
  {
    std::lock_guard<std::mutex> lock(mu_);
    report.queue_depth = inference_depth_;
  }
  report.max_queue_depth = options_.max_queue_depth;
  report.num_workers = num_workers_;
  report.max_batch = max_batch_;
  report.submitted = submitted_.load(std::memory_order_relaxed);
  report.admitted = admitted_.load(std::memory_order_relaxed);
  report.rejected_queue_full =
      rejected_queue_full_.load(std::memory_order_relaxed);
  report.shed_deadline = shed_deadline_.load(std::memory_order_relaxed);
  report.served_ok = served_ok_.load(std::memory_order_relaxed);
  report.invalid_requests = invalid_requests_.load(std::memory_order_relaxed);
  report.internal_errors = internal_errors_.load(std::memory_order_relaxed);
  report.reload_attempts = reload_attempts_.load(std::memory_order_relaxed);
  report.reload_successes = reload_successes_.load(std::memory_order_relaxed);
  report.reload_failures = reload_failures_.load(std::memory_order_relaxed);
  report.degraded = degraded_.load(std::memory_order_acquire);
  report.model_version = model_version_.load(std::memory_order_acquire);
  report.watchdog_ticks = watchdog_ticks_.load(std::memory_order_relaxed);
  report.queue_wait_ms_total =
      static_cast<double>(queue_wait_nanos_.load(std::memory_order_relaxed)) /
      1e6;
  report.compute_ms_total =
      static_cast<double>(compute_nanos_.load(std::memory_order_relaxed)) /
      1e6;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    report.last_reload_error = last_reload_error_;
    report.batch_size_histogram = batch_size_hist_;
    report.batches_run = batches_run_;
    // Guard both splits against an empty window: before the first batch the
    // denominators are zero and the averages must read 0.0, not NaN.
    report.avg_batch_size =
        batches_run_ > 0 ? static_cast<double>(batched_elements_) /
                               static_cast<double>(batches_run_)
                         : 0.0;
    report.avg_queue_wait_ms =
        batched_elements_ > 0
            ? report.queue_wait_ms_total /
                  static_cast<double>(batched_elements_)
            : 0.0;
    report.avg_compute_ms =
        batches_run_ > 0
            ? report.compute_ms_total / static_cast<double>(batches_run_)
            : 0.0;
    report.latency_samples = latency_count_;
    report.latency_no_samples = latency_count_ == 0;
    if (latency_count_ > 0) {
      std::vector<int64_t> window(
          latencies_.begin(), latencies_.begin() + latency_count_);
      std::sort(window.begin(), window.end());
      const auto pick = [&window](double q) {
        const auto idx = static_cast<size_t>(
            q * static_cast<double>(window.size() - 1) + 0.5);
        return static_cast<double>(window[idx]) / 1e6;
      };
      report.p50_latency_ms = pick(0.50);
      report.p99_latency_ms = pick(0.99);
    }
  }
  return report;
}

HealthReport Server::LastWatchdogReport() const {
  std::lock_guard<std::mutex> lock(watchdog_mu_);
  return last_watchdog_report_;
}

void Server::WatchdogLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(watchdog_mu_);
      watchdog_cv_.wait_for(
          lock, std::chrono::nanoseconds(options_.watchdog_period_nanos),
          [this] { return watchdog_stop_; });
      if (watchdog_stop_) return;
    }
    watchdog_ticks_.fetch_add(1, std::memory_order_relaxed);
    HealthReport report = Health();
    std::lock_guard<std::mutex> lock(watchdog_mu_);
    last_watchdog_report_ = std::move(report);
  }
}

void Server::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  {
    std::lock_guard<std::mutex> lock(watchdog_mu_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
}

}  // namespace dtdbd::serve
