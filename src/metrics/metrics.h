// Performance and bias metrics for multi-domain fake news detection.
//
// Follows the paper's evaluation protocol: macro F1 for performance, and
// the equality-difference bias metrics of Dixon et al. (Eq. 16-17):
//   FPED = sum_d |FPR - FPR_d|,  FNED = sum_d |FNR - FNR_d|,
//   Total = FPED + FNED.
// The fake class (label 1) is the positive class.
#ifndef DTDBD_METRICS_METRICS_H_
#define DTDBD_METRICS_METRICS_H_

#include <string>
#include <vector>

namespace dtdbd::metrics {

// Binary confusion counts with fake (1) as positive.
struct Confusion {
  int64_t tp = 0;
  int64_t fp = 0;
  int64_t tn = 0;
  int64_t fn = 0;

  int64_t total() const { return tp + fp + tn + fn; }
  // False negative rate P(pred=real | fake); 0 when no positives.
  double Fnr() const;
  // False positive rate P(pred=fake | real); 0 when no negatives.
  double Fpr() const;
  double Accuracy() const;
  // Precision / recall of the positive (fake) class; 0 when undefined
  // (no predicted positives / no actual positives).
  double Precision() const;
  double Recall() const;
  // F1 of the positive class.
  double F1Positive() const;
  // F1 of the negative class.
  double F1Negative() const;
  // Macro F1 (mean of both class F1s) — the paper's "F1".
  double MacroF1() const;
};

Confusion CountConfusion(const std::vector<int>& predictions,
                         const std::vector<int>& labels);

// Area under the ROC curve via the rank-sum (Mann-Whitney U) statistic with
// average ranks for tied scores. `scores` are P(fake); labels in {0,1}.
// Degenerate inputs — empty set, a single class only, or non-finite scores
// — return 0.0 and log a warning instead of producing NaN, so Table 6/7
// style per-domain output never propagates NaN into the report.
double Auc(const std::vector<float>& scores, const std::vector<int>& labels);

// Full evaluation report over a labeled multi-domain prediction set.
struct EvalReport {
  Confusion overall;
  std::vector<Confusion> per_domain;

  double f1 = 0.0;                 // overall macro F1
  std::vector<double> domain_f1;   // per-domain macro F1
  double auc = 0.0;                // overall AUC; 0 when scores absent
  std::vector<double> domain_auc;  // per-domain AUC (0 when degenerate)
  double fned = 0.0;
  double fped = 0.0;

  double Total() const { return fned + fped; }
  std::string Summary() const;
};

// predictions/labels in {0,1}; domains in [0, num_domains). Domains whose
// label slice is empty or single-class get 0.0 for the affected metrics
// (AUC, and implicitly one of the class F1s) with a logged warning — never
// NaN.
EvalReport Evaluate(const std::vector<int>& predictions,
                    const std::vector<int>& labels,
                    const std::vector<int>& domains, int num_domains);

// As above, additionally computing overall and per-domain AUC from
// `scores` = P(fake) per sample.
EvalReport Evaluate(const std::vector<int>& predictions,
                    const std::vector<int>& labels,
                    const std::vector<int>& domains, int num_domains,
                    const std::vector<float>& scores);

}  // namespace dtdbd::metrics

#endif  // DTDBD_METRICS_METRICS_H_
