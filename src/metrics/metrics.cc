#include "metrics/metrics.h"

#include <cmath>
#include <sstream>

#include "common/check.h"

namespace dtdbd::metrics {

namespace {
double SafeDiv(double num, double den) { return den > 0.0 ? num / den : 0.0; }
}  // namespace

double Confusion::Fnr() const {
  return SafeDiv(static_cast<double>(fn), static_cast<double>(fn + tp));
}

double Confusion::Fpr() const {
  return SafeDiv(static_cast<double>(fp), static_cast<double>(fp + tn));
}

double Confusion::Accuracy() const {
  return SafeDiv(static_cast<double>(tp + tn), static_cast<double>(total()));
}

double Confusion::F1Positive() const {
  const double precision =
      SafeDiv(static_cast<double>(tp), static_cast<double>(tp + fp));
  const double recall =
      SafeDiv(static_cast<double>(tp), static_cast<double>(tp + fn));
  return SafeDiv(2.0 * precision * recall, precision + recall);
}

double Confusion::F1Negative() const {
  const double precision =
      SafeDiv(static_cast<double>(tn), static_cast<double>(tn + fn));
  const double recall =
      SafeDiv(static_cast<double>(tn), static_cast<double>(tn + fp));
  return SafeDiv(2.0 * precision * recall, precision + recall);
}

double Confusion::MacroF1() const {
  return 0.5 * (F1Positive() + F1Negative());
}

Confusion CountConfusion(const std::vector<int>& predictions,
                         const std::vector<int>& labels) {
  DTDBD_CHECK_EQ(predictions.size(), labels.size());
  Confusion c;
  for (size_t i = 0; i < predictions.size(); ++i) {
    const bool pred_fake = predictions[i] == 1;
    const bool is_fake = labels[i] == 1;
    if (pred_fake && is_fake) {
      ++c.tp;
    } else if (pred_fake && !is_fake) {
      ++c.fp;
    } else if (!pred_fake && is_fake) {
      ++c.fn;
    } else {
      ++c.tn;
    }
  }
  return c;
}

EvalReport Evaluate(const std::vector<int>& predictions,
                    const std::vector<int>& labels,
                    const std::vector<int>& domains, int num_domains) {
  DTDBD_CHECK_EQ(predictions.size(), labels.size());
  DTDBD_CHECK_EQ(predictions.size(), domains.size());
  DTDBD_CHECK_GT(num_domains, 0);

  EvalReport report;
  report.overall = CountConfusion(predictions, labels);
  report.per_domain.assign(num_domains, Confusion{});
  for (size_t i = 0; i < predictions.size(); ++i) {
    DTDBD_CHECK_GE(domains[i], 0);
    DTDBD_CHECK_LT(domains[i], num_domains);
    Confusion& c = report.per_domain[domains[i]];
    const bool pred_fake = predictions[i] == 1;
    const bool is_fake = labels[i] == 1;
    if (pred_fake && is_fake) {
      ++c.tp;
    } else if (pred_fake && !is_fake) {
      ++c.fp;
    } else if (!pred_fake && is_fake) {
      ++c.fn;
    } else {
      ++c.tn;
    }
  }

  report.f1 = report.overall.MacroF1();
  const double fnr = report.overall.Fnr();
  const double fpr = report.overall.Fpr();
  for (const Confusion& c : report.per_domain) {
    report.domain_f1.push_back(c.MacroF1());
    // Domains with no samples contribute zero (rather than |rate - 0|):
    // otherwise empty evaluation slices would inflate the bias measure.
    if (c.total() == 0) continue;
    report.fned += std::abs(fnr - c.Fnr());
    report.fped += std::abs(fpr - c.Fpr());
  }
  return report;
}

std::string EvalReport::Summary() const {
  std::ostringstream out;
  out << "F1=" << f1 << " FNED=" << fned << " FPED=" << fped
      << " Total=" << Total();
  return out.str();
}

}  // namespace dtdbd::metrics
