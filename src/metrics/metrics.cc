#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/check.h"
#include "common/logging.h"

namespace dtdbd::metrics {

namespace {
double SafeDiv(double num, double den) { return den > 0.0 ? num / den : 0.0; }
}  // namespace

double Confusion::Fnr() const {
  return SafeDiv(static_cast<double>(fn), static_cast<double>(fn + tp));
}

double Confusion::Fpr() const {
  return SafeDiv(static_cast<double>(fp), static_cast<double>(fp + tn));
}

double Confusion::Accuracy() const {
  return SafeDiv(static_cast<double>(tp + tn), static_cast<double>(total()));
}

double Confusion::Precision() const {
  return SafeDiv(static_cast<double>(tp), static_cast<double>(tp + fp));
}

double Confusion::Recall() const {
  return SafeDiv(static_cast<double>(tp), static_cast<double>(tp + fn));
}

double Confusion::F1Positive() const {
  const double precision = Precision();
  const double recall = Recall();
  return SafeDiv(2.0 * precision * recall, precision + recall);
}

double Confusion::F1Negative() const {
  const double precision =
      SafeDiv(static_cast<double>(tn), static_cast<double>(tn + fn));
  const double recall =
      SafeDiv(static_cast<double>(tn), static_cast<double>(tn + fp));
  return SafeDiv(2.0 * precision * recall, precision + recall);
}

double Confusion::MacroF1() const {
  return 0.5 * (F1Positive() + F1Negative());
}

Confusion CountConfusion(const std::vector<int>& predictions,
                         const std::vector<int>& labels) {
  DTDBD_CHECK_EQ(predictions.size(), labels.size());
  Confusion c;
  for (size_t i = 0; i < predictions.size(); ++i) {
    const bool pred_fake = predictions[i] == 1;
    const bool is_fake = labels[i] == 1;
    if (pred_fake && is_fake) {
      ++c.tp;
    } else if (pred_fake && !is_fake) {
      ++c.fp;
    } else if (!pred_fake && is_fake) {
      ++c.fn;
    } else {
      ++c.tn;
    }
  }
  return c;
}

double Auc(const std::vector<float>& scores, const std::vector<int>& labels) {
  DTDBD_CHECK_EQ(scores.size(), labels.size());
  if (scores.empty()) {
    DTDBD_LOG(Warning) << "Auc: empty label set; returning 0";
    return 0.0;
  }
  int64_t pos = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (!std::isfinite(scores[i])) {
      DTDBD_LOG(Warning) << "Auc: non-finite score at index " << i
                         << "; returning 0";
      return 0.0;
    }
    if (labels[i] == 1) ++pos;
  }
  const int64_t neg = static_cast<int64_t>(scores.size()) - pos;
  if (pos == 0 || neg == 0) {
    DTDBD_LOG(Warning) << "Auc: single-class label set (" << pos
                       << " positive, " << neg << " negative); returning 0";
    return 0.0;
  }
  // Sort indices by score; ties get the average of the rank range they span
  // (Mann-Whitney with mid-ranks), so equal scores contribute 0.5 each.
  std::vector<int> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return scores[a] < scores[b];
  });
  double rank_sum_pos = 0.0;
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j < order.size() && scores[order[j]] == scores[order[i]]) ++j;
    // 1-based ranks i+1 .. j averaged over the tie block.
    const double avg_rank = 0.5 * (static_cast<double>(i + 1) +
                                   static_cast<double>(j));
    for (size_t k = i; k < j; ++k) {
      if (labels[order[k]] == 1) rank_sum_pos += avg_rank;
    }
    i = j;
  }
  const double u = rank_sum_pos -
                   0.5 * static_cast<double>(pos) * static_cast<double>(pos + 1);
  return u / (static_cast<double>(pos) * static_cast<double>(neg));
}

EvalReport Evaluate(const std::vector<int>& predictions,
                    const std::vector<int>& labels,
                    const std::vector<int>& domains, int num_domains) {
  DTDBD_CHECK_EQ(predictions.size(), labels.size());
  DTDBD_CHECK_EQ(predictions.size(), domains.size());
  DTDBD_CHECK_GT(num_domains, 0);

  EvalReport report;
  report.overall = CountConfusion(predictions, labels);
  report.per_domain.assign(num_domains, Confusion{});
  for (size_t i = 0; i < predictions.size(); ++i) {
    DTDBD_CHECK_GE(domains[i], 0);
    DTDBD_CHECK_LT(domains[i], num_domains);
    Confusion& c = report.per_domain[domains[i]];
    const bool pred_fake = predictions[i] == 1;
    const bool is_fake = labels[i] == 1;
    if (pred_fake && is_fake) {
      ++c.tp;
    } else if (pred_fake && !is_fake) {
      ++c.fp;
    } else if (!pred_fake && is_fake) {
      ++c.fn;
    } else {
      ++c.tn;
    }
  }

  report.f1 = report.overall.MacroF1();
  const double fnr = report.overall.Fnr();
  const double fpr = report.overall.Fpr();
  for (int d = 0; d < num_domains; ++d) {
    const Confusion& c = report.per_domain[d];
    report.domain_f1.push_back(c.MacroF1());
    const int64_t pos = c.tp + c.fn;
    const int64_t neg = c.fp + c.tn;
    if (c.total() == 0) {
      DTDBD_LOG(Warning) << "Evaluate: domain " << d
                         << " has no samples; its metrics are reported as 0";
      // Empty slices contribute zero to the bias sums (rather than
      // |rate - 0|): they would otherwise inflate the bias measure.
      continue;
    }
    if (pos == 0 || neg == 0) {
      DTDBD_LOG(Warning) << "Evaluate: domain " << d
                         << " labels are single-class (" << pos
                         << " fake, " << neg
                         << " real); class-conditional metrics for the "
                            "missing class are reported as 0";
    }
    report.fned += std::abs(fnr - c.Fnr());
    report.fped += std::abs(fpr - c.Fpr());
  }
  report.domain_auc.assign(num_domains, 0.0);
  return report;
}

EvalReport Evaluate(const std::vector<int>& predictions,
                    const std::vector<int>& labels,
                    const std::vector<int>& domains, int num_domains,
                    const std::vector<float>& scores) {
  DTDBD_CHECK_EQ(predictions.size(), scores.size());
  EvalReport report = Evaluate(predictions, labels, domains, num_domains);
  report.auc = Auc(scores, labels);
  for (int d = 0; d < num_domains; ++d) {
    std::vector<float> s;
    std::vector<int> y;
    for (size_t i = 0; i < scores.size(); ++i) {
      if (domains[i] != d) continue;
      s.push_back(scores[i]);
      y.push_back(labels[i]);
    }
    report.domain_auc[d] = Auc(s, y);
  }
  return report;
}

std::string EvalReport::Summary() const {
  std::ostringstream out;
  out << "F1=" << f1;
  if (auc > 0.0) out << " AUC=" << auc;
  out << " FNED=" << fned << " FPED=" << fped << " Total=" << Total();
  return out.str();
}

}  // namespace dtdbd::metrics
