// Vocabulary layout for the synthetic multi-domain news corpora.
//
// The generator (src/data) composes news items from typed token blocks:
//   * veracity cues: tokens correlated with the fake/real label, shared by
//     all domains (the transferable signal a good detector should use);
//   * per-domain topic tokens: identify the domain (the spurious signal a
//     biased detector latches onto when fake ratios differ per domain);
//   * style tokens: sensational vs. neutral writing style;
//   * emotion tokens: positive vs. negative affect lexicon;
//   * noise tokens: uninformative filler.
// This mirrors the structure the paper attributes to real news: domain
// drift in vocabulary/style/emotion plus cross-domain shared veracity
// signals (Sec. IV-B).
#ifndef DTDBD_TEXT_VOCAB_H_
#define DTDBD_TEXT_VOCAB_H_

#include <string>
#include <vector>

#include "common/check.h"

namespace dtdbd::text {

enum class TokenKind {
  kPad = 0,
  kFakeCue,
  kRealCue,
  kTopic,
  kSensationalStyle,
  kNeutralStyle,
  kPositiveEmotion,
  kNegativeEmotion,
  kNoise,
};

// Immutable id-space description. Token ids are assigned contiguously per
// block; the class answers "what kind is id x" and "give me the i-th token
// of kind k (for domain d)".
class Vocab {
 public:
  struct Config {
    int num_domains = 9;
    int fake_cues = 24;
    int real_cues = 24;
    int topic_tokens_per_domain = 40;
    int style_tokens = 16;    // per style polarity
    int emotion_tokens = 16;  // per emotion polarity
    // Kept deliberately small: a large noise vocabulary would let models
    // reduce training loss by memorizing per-sample noise patterns instead
    // of learning the (domain-prior) shortcut the bias study needs.
    int noise_tokens = 48;
  };

  explicit Vocab(const Config& config);

  int size() const { return size_; }
  int num_domains() const { return config_.num_domains; }

  int pad_id() const { return 0; }

  // Token id accessors; `index` addresses within the block.
  int FakeCue(int index) const;
  int RealCue(int index) const;
  int Topic(int domain, int index) const;
  int Sensational(int index) const;
  int Neutral(int index) const;
  int PositiveEmotion(int index) const;
  int NegativeEmotion(int index) const;
  int Noise(int index) const;

  int fake_cue_count() const { return config_.fake_cues; }
  int real_cue_count() const { return config_.real_cues; }
  int topic_count_per_domain() const { return config_.topic_tokens_per_domain; }
  int style_count() const { return config_.style_tokens; }
  int emotion_count() const { return config_.emotion_tokens; }
  int noise_count() const { return config_.noise_tokens; }

  TokenKind KindOf(int id) const;
  // For kTopic tokens, the owning domain; DTDBD_CHECKs otherwise.
  int TopicDomainOf(int id) const;

  // Debug name such as "fake_cue_3" or "topic_d2_17".
  std::string TokenName(int id) const;

 private:
  Config config_;
  int fake_cue_base_;
  int real_cue_base_;
  int topic_base_;
  int sensational_base_;
  int neutral_base_;
  int pos_emotion_base_;
  int neg_emotion_base_;
  int noise_base_;
  int size_;
};

}  // namespace dtdbd::text

#endif  // DTDBD_TEXT_VOCAB_H_
