// Hand-crafted auxiliary feature extractors: the "style" and "emotion"
// views consumed by the StyleLSTM, DualEmo and M3FEND baselines. Both are
// deterministic lexicon-count functions of the token sequence, mirroring
// the engineered features those papers derive from text.
#ifndef DTDBD_TEXT_FEATURES_H_
#define DTDBD_TEXT_FEATURES_H_

#include <vector>

#include "text/vocab.h"

namespace dtdbd::text {

// Dimension of the style feature vector.
inline constexpr int kStyleFeatureDim = 6;
// Dimension of the emotion feature vector.
inline constexpr int kEmotionFeatureDim = 6;

// Style view: sensational/neutral token rates, cue density, lexical
// diversity, padding ratio, topic concentration.
std::vector<float> StyleFeatures(const Vocab& vocab,
                                 const std::vector<int>& tokens);

// Emotion view: positive/negative token rates, polarity balance, affect
// density, fake-cue vs real-cue affect interaction terms.
std::vector<float> EmotionFeatures(const Vocab& vocab,
                                   const std::vector<int>& tokens);

}  // namespace dtdbd::text

#endif  // DTDBD_TEXT_FEATURES_H_
