#include "text/features.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace dtdbd::text {

namespace {

struct TokenCounts {
  int total = 0;  // non-pad
  int pad = 0;
  int fake_cue = 0;
  int real_cue = 0;
  int topic = 0;
  int sensational = 0;
  int neutral = 0;
  int pos_emotion = 0;
  int neg_emotion = 0;
  int noise = 0;
  int distinct = 0;
};

TokenCounts Count(const Vocab& vocab, const std::vector<int>& tokens) {
  TokenCounts c;
  std::set<int> seen;
  for (int id : tokens) {
    switch (vocab.KindOf(id)) {
      case TokenKind::kPad:
        ++c.pad;
        continue;
      case TokenKind::kFakeCue:
        ++c.fake_cue;
        break;
      case TokenKind::kRealCue:
        ++c.real_cue;
        break;
      case TokenKind::kTopic:
        ++c.topic;
        break;
      case TokenKind::kSensationalStyle:
        ++c.sensational;
        break;
      case TokenKind::kNeutralStyle:
        ++c.neutral;
        break;
      case TokenKind::kPositiveEmotion:
        ++c.pos_emotion;
        break;
      case TokenKind::kNegativeEmotion:
        ++c.neg_emotion;
        break;
      case TokenKind::kNoise:
        ++c.noise;
        break;
    }
    ++c.total;
    seen.insert(id);
  }
  c.distinct = static_cast<int>(seen.size());
  return c;
}

float SafeRate(int count, int total) {
  return total > 0 ? static_cast<float>(count) / static_cast<float>(total)
                   : 0.0f;
}

}  // namespace

std::vector<float> StyleFeatures(const Vocab& vocab,
                                 const std::vector<int>& tokens) {
  const TokenCounts c = Count(vocab, tokens);
  const int n = c.total;
  std::vector<float> f(kStyleFeatureDim);
  f[0] = SafeRate(c.sensational, n);
  f[1] = SafeRate(c.neutral, n);
  f[2] = SafeRate(c.fake_cue + c.real_cue, n);   // cue density
  f[3] = SafeRate(c.distinct, n + c.pad);        // lexical diversity
  f[4] = SafeRate(c.pad, n + c.pad);             // padding ratio
  f[5] = SafeRate(c.topic, n);                   // topic concentration
  return f;
}

std::vector<float> EmotionFeatures(const Vocab& vocab,
                                   const std::vector<int>& tokens) {
  const TokenCounts c = Count(vocab, tokens);
  const int n = c.total;
  std::vector<float> f(kEmotionFeatureDim);
  f[0] = SafeRate(c.pos_emotion, n);
  f[1] = SafeRate(c.neg_emotion, n);
  const float affect = SafeRate(c.pos_emotion + c.neg_emotion, n);
  f[2] = affect;  // affect density
  // Polarity balance in [-1, 1].
  f[3] = (c.pos_emotion + c.neg_emotion) > 0
             ? static_cast<float>(c.pos_emotion - c.neg_emotion) /
                   static_cast<float>(c.pos_emotion + c.neg_emotion)
             : 0.0f;
  // Interaction terms: affect co-occurring with veracity cues.
  f[4] = affect * SafeRate(c.fake_cue, n);
  f[5] = affect * SafeRate(c.real_cue, n);
  return f;
}

}  // namespace dtdbd::text
