#include "text/vocab.h"

namespace dtdbd::text {

Vocab::Vocab(const Config& config) : config_(config) {
  DTDBD_CHECK_GT(config_.num_domains, 0);
  int next = 1;  // 0 is PAD
  fake_cue_base_ = next;
  next += config_.fake_cues;
  real_cue_base_ = next;
  next += config_.real_cues;
  topic_base_ = next;
  next += config_.num_domains * config_.topic_tokens_per_domain;
  sensational_base_ = next;
  next += config_.style_tokens;
  neutral_base_ = next;
  next += config_.style_tokens;
  pos_emotion_base_ = next;
  next += config_.emotion_tokens;
  neg_emotion_base_ = next;
  next += config_.emotion_tokens;
  noise_base_ = next;
  next += config_.noise_tokens;
  size_ = next;
}

int Vocab::FakeCue(int index) const {
  DTDBD_CHECK_GE(index, 0);
  DTDBD_CHECK_LT(index, config_.fake_cues);
  return fake_cue_base_ + index;
}

int Vocab::RealCue(int index) const {
  DTDBD_CHECK_GE(index, 0);
  DTDBD_CHECK_LT(index, config_.real_cues);
  return real_cue_base_ + index;
}

int Vocab::Topic(int domain, int index) const {
  DTDBD_CHECK_GE(domain, 0);
  DTDBD_CHECK_LT(domain, config_.num_domains);
  DTDBD_CHECK_GE(index, 0);
  DTDBD_CHECK_LT(index, config_.topic_tokens_per_domain);
  return topic_base_ + domain * config_.topic_tokens_per_domain + index;
}

int Vocab::Sensational(int index) const {
  DTDBD_CHECK_GE(index, 0);
  DTDBD_CHECK_LT(index, config_.style_tokens);
  return sensational_base_ + index;
}

int Vocab::Neutral(int index) const {
  DTDBD_CHECK_GE(index, 0);
  DTDBD_CHECK_LT(index, config_.style_tokens);
  return neutral_base_ + index;
}

int Vocab::PositiveEmotion(int index) const {
  DTDBD_CHECK_GE(index, 0);
  DTDBD_CHECK_LT(index, config_.emotion_tokens);
  return pos_emotion_base_ + index;
}

int Vocab::NegativeEmotion(int index) const {
  DTDBD_CHECK_GE(index, 0);
  DTDBD_CHECK_LT(index, config_.emotion_tokens);
  return neg_emotion_base_ + index;
}

int Vocab::Noise(int index) const {
  DTDBD_CHECK_GE(index, 0);
  DTDBD_CHECK_LT(index, config_.noise_tokens);
  return noise_base_ + index;
}

TokenKind Vocab::KindOf(int id) const {
  DTDBD_CHECK_GE(id, 0);
  DTDBD_CHECK_LT(id, size_);
  if (id == 0) return TokenKind::kPad;
  if (id < real_cue_base_) return TokenKind::kFakeCue;
  if (id < topic_base_) return TokenKind::kRealCue;
  if (id < sensational_base_) return TokenKind::kTopic;
  if (id < neutral_base_) return TokenKind::kSensationalStyle;
  if (id < pos_emotion_base_) return TokenKind::kNeutralStyle;
  if (id < neg_emotion_base_) return TokenKind::kPositiveEmotion;
  if (id < noise_base_) return TokenKind::kNegativeEmotion;
  return TokenKind::kNoise;
}

int Vocab::TopicDomainOf(int id) const {
  DTDBD_CHECK(KindOf(id) == TokenKind::kTopic);
  return (id - topic_base_) / config_.topic_tokens_per_domain;
}

std::string Vocab::TokenName(int id) const {
  switch (KindOf(id)) {
    case TokenKind::kPad:
      return "<pad>";
    case TokenKind::kFakeCue:
      return "fake_cue_" + std::to_string(id - fake_cue_base_);
    case TokenKind::kRealCue:
      return "real_cue_" + std::to_string(id - real_cue_base_);
    case TokenKind::kTopic: {
      const int d = TopicDomainOf(id);
      const int i = (id - topic_base_) % config_.topic_tokens_per_domain;
      return "topic_d" + std::to_string(d) + "_" + std::to_string(i);
    }
    case TokenKind::kSensationalStyle:
      return "style_sens_" + std::to_string(id - sensational_base_);
    case TokenKind::kNeutralStyle:
      return "style_neut_" + std::to_string(id - neutral_base_);
    case TokenKind::kPositiveEmotion:
      return "emo_pos_" + std::to_string(id - pos_emotion_base_);
    case TokenKind::kNegativeEmotion:
      return "emo_neg_" + std::to_string(id - neg_emotion_base_);
    case TokenKind::kNoise:
      return "noise_" + std::to_string(id - noise_base_);
  }
  return "<unknown>";
}

}  // namespace dtdbd::text
