#include "text/frozen_encoder.h"

#include <cmath>

#include "tensor/init.h"
#include "tensor/ops.h"

namespace dtdbd::text {

using tensor::Tensor;

FrozenEncoder::FrozenEncoder(int vocab_size, int64_t dim, uint64_t seed)
    : dim_(dim) {
  Rng rng(seed);
  table_ = tensor::NormalInit({vocab_size, dim}, 0.5f, &rng,
                              /*requires_grad=*/false);
  mix_w_ = tensor::XavierInit({2 * dim, dim}, 2 * dim, dim, &rng,
                              /*requires_grad=*/false);
  mix_b_ = tensor::UniformInit({dim}, 0.1f, &rng, /*requires_grad=*/false);
}

Tensor FrozenEncoder::Encode(const std::vector<int>& ids, int64_t batch,
                             int64_t time) const {
  DTDBD_CHECK_EQ(static_cast<int64_t>(ids.size()), batch * time);
  const int64_t v = table_.dim(0);
  // All ids bounds-checked up front (the neighborhood loop below reads ids
  // at offsets other than the current position, so a per-element check at
  // use would not cover every read). Recoverable callers validate first via
  // tensor::ValidateTokenIds; reaching this check is API misuse.
  {
    const Status ids_ok = tensor::ValidateTokenIds(ids, v);
    DTDBD_CHECK(ids_ok.ok()) << "FrozenEncoder::Encode: " << ids_ok.message();
  }
  std::vector<float> out(static_cast<size_t>(batch * time * dim_));
  const float* tab = table_.data().data();
  const float* w = mix_w_.data().data();
  const float* b = mix_b_.data().data();
  // h_t = tanh(W [e_t ; ctx_t] + b), ctx_t = mean of the +/-1 neighborhood.
  std::vector<float> cat(2 * dim_);
  for (int64_t bi = 0; bi < batch; ++bi) {
    for (int64_t ti = 0; ti < time; ++ti) {
      const int id = ids[bi * time + ti];
      const float* e = tab + static_cast<int64_t>(id) * dim_;
      // Context: average of neighbors (PAD-free best effort at edges).
      for (int64_t j = 0; j < dim_; ++j) cat[j] = e[j];
      int count = 0;
      for (int64_t j = 0; j < dim_; ++j) cat[dim_ + j] = 0.0f;
      for (int64_t dt : {int64_t{-1}, int64_t{1}}) {
        const int64_t tn = ti + dt;
        if (tn < 0 || tn >= time) continue;
        const int idn = ids[bi * time + tn];
        const float* en = tab + static_cast<int64_t>(idn) * dim_;
        for (int64_t j = 0; j < dim_; ++j) cat[dim_ + j] += en[j];
        ++count;
      }
      if (count > 0) {
        const float inv = 1.0f / static_cast<float>(count);
        for (int64_t j = 0; j < dim_; ++j) cat[dim_ + j] *= inv;
      }
      float* orow = out.data() + (bi * time + ti) * dim_;
      for (int64_t j = 0; j < dim_; ++j) {
        float acc = b[j];
        for (int64_t k = 0; k < 2 * dim_; ++k) {
          acc += cat[k] * w[k * dim_ + j];
        }
        orow[j] = std::tanh(acc);
      }
    }
  }
  return Tensor::FromData({batch, time, dim_}, std::move(out));
}

}  // namespace dtdbd::text
