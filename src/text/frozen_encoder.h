// FrozenEncoder: a deterministic stand-in for the paper's frozen BERT.
//
// The paper uses a frozen pre-trained BERT (layer-11 activations) purely as
// a fixed token-to-vector feature map under trainable heads. This class
// plays that role with a seeded random embedding table followed by one
// fixed random mixing layer over a local context window, giving mildly
// contextual, information-preserving token features. No parameter is ever
// trained (all tensors have requires_grad = false), matching the frozen
// setting; see DESIGN.md §1 for the substitution rationale.
#ifndef DTDBD_TEXT_FROZEN_ENCODER_H_
#define DTDBD_TEXT_FROZEN_ENCODER_H_

#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace dtdbd::text {

class FrozenEncoder {
 public:
  // vocab_size tokens mapped to `dim`-dimensional features.
  FrozenEncoder(int vocab_size, int64_t dim, uint64_t seed);

  FrozenEncoder(const FrozenEncoder&) = delete;
  FrozenEncoder& operator=(const FrozenEncoder&) = delete;

  // ids row-major [batch, time] -> features [batch, time, dim]. The output
  // is detached (no autograd history), like a frozen upstream model.
  tensor::Tensor Encode(const std::vector<int>& ids, int64_t batch,
                        int64_t time) const;

  int64_t dim() const { return dim_; }

 private:
  int64_t dim_;
  tensor::Tensor table_;   // [V, dim], frozen
  tensor::Tensor mix_w_;   // [2*dim, dim], frozen context mixer
  tensor::Tensor mix_b_;   // [dim]
};

}  // namespace dtdbd::text

#endif  // DTDBD_TEXT_FROZEN_ENCODER_H_
