#include "nn/attention.h"

#include "tensor/init.h"
#include "tensor/ops.h"

namespace dtdbd::nn {

using tensor::Tensor;

AttentionPool::AttentionPool(int64_t feature_dim, Rng* rng)
    : feature_dim_(feature_dim) {
  score_ = RegisterParam(
      "score", tensor::XavierInit({feature_dim, 1}, feature_dim, 1, rng));
}

Tensor AttentionPool::Forward(const Tensor& x) const {
  DTDBD_CHECK_EQ(x.ndim(), 3);
  DTDBD_CHECK_EQ(x.dim(2), feature_dim_);
  // MatVecOverTime replaces the Reshape -> MatMul -> Reshape score chain
  // with a single graph node (and falls back to it when fusion is off).
  Tensor scores = tensor::MatVecOverTime(x, score_);
  Tensor weights = tensor::Softmax(scores);
  return tensor::WeightedSumOverTime(x, weights);
}

}  // namespace dtdbd::nn
