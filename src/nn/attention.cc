#include "nn/attention.h"

#include "tensor/init.h"
#include "tensor/ops.h"

namespace dtdbd::nn {

using tensor::Tensor;

AttentionPool::AttentionPool(int64_t feature_dim, Rng* rng)
    : feature_dim_(feature_dim) {
  score_ = RegisterParam(
      "score", tensor::XavierInit({feature_dim, 1}, feature_dim, 1, rng));
}

Tensor AttentionPool::Forward(const Tensor& x) const {
  DTDBD_CHECK_EQ(x.ndim(), 3);
  DTDBD_CHECK_EQ(x.dim(2), feature_dim_);
  const int64_t b = x.dim(0), t = x.dim(1);
  Tensor flat = tensor::Reshape(x, {b * t, feature_dim_});
  Tensor scores = tensor::Reshape(tensor::MatMul(flat, score_), {b, t});
  Tensor weights = tensor::Softmax(scores);
  return tensor::WeightedSumOverTime(x, weights);
}

}  // namespace dtdbd::nn
