#include "nn/rnn.h"

#include <vector>

#include "tensor/init.h"
#include "tensor/ops.h"

namespace dtdbd::nn {

using tensor::Tensor;

GruCell::GruCell(int64_t input_dim, int64_t hidden_dim, Rng* rng)
    : input_dim_(input_dim), hidden_dim_(hidden_dim) {
  wx_ = RegisterParam("wx", tensor::XavierInit({input_dim, 3 * hidden_dim},
                                               input_dim, hidden_dim, rng));
  wh_ = RegisterParam("wh", tensor::XavierInit({hidden_dim, 3 * hidden_dim},
                                               hidden_dim, hidden_dim, rng));
  bias_ = RegisterParam("bias", Tensor::Zeros({3 * hidden_dim}, true));
}

Tensor GruCell::Step(const Tensor& x, const Tensor& h) const {
  DTDBD_CHECK_EQ(x.dim(1), input_dim_);
  DTDBD_CHECK_EQ(h.dim(1), hidden_dim_);
  const int64_t hd = hidden_dim_;
  // Gates packed as [z | r | n] along the last dim.
  Tensor gx = tensor::AddBias(tensor::MatMul(x, wx_), bias_);
  Tensor gh = tensor::MatMul(h, wh_);
  Tensor z = tensor::Sigmoid(tensor::Add(tensor::SliceLastDim(gx, 0, hd),
                                         tensor::SliceLastDim(gh, 0, hd)));
  Tensor r = tensor::Sigmoid(tensor::Add(tensor::SliceLastDim(gx, hd, hd),
                                         tensor::SliceLastDim(gh, hd, hd)));
  Tensor n = tensor::Tanh(
      tensor::Add(tensor::SliceLastDim(gx, 2 * hd, hd),
                  tensor::Mul(r, tensor::SliceLastDim(gh, 2 * hd, hd))));
  // h' = n + z * (h - n): interpolation between candidate and previous state.
  return tensor::Add(n, tensor::Mul(z, tensor::Sub(h, n)));
}

LstmCell::LstmCell(int64_t input_dim, int64_t hidden_dim, Rng* rng)
    : input_dim_(input_dim), hidden_dim_(hidden_dim) {
  wx_ = RegisterParam("wx", tensor::XavierInit({input_dim, 4 * hidden_dim},
                                               input_dim, hidden_dim, rng));
  wh_ = RegisterParam("wh", tensor::XavierInit({hidden_dim, 4 * hidden_dim},
                                               hidden_dim, hidden_dim, rng));
  bias_ = RegisterParam("bias", Tensor::Zeros({4 * hidden_dim}, true));
}

LstmCell::State LstmCell::Step(const Tensor& x, const State& state) const {
  DTDBD_CHECK_EQ(x.dim(1), input_dim_);
  const int64_t hd = hidden_dim_;
  // Gates packed as [i | f | o | g].
  Tensor gates = tensor::Add(tensor::AddBias(tensor::MatMul(x, wx_), bias_),
                             tensor::MatMul(state.h, wh_));
  Tensor i = tensor::Sigmoid(tensor::SliceLastDim(gates, 0, hd));
  Tensor f = tensor::Sigmoid(tensor::SliceLastDim(gates, hd, hd));
  Tensor o = tensor::Sigmoid(tensor::SliceLastDim(gates, 2 * hd, hd));
  Tensor g = tensor::Tanh(tensor::SliceLastDim(gates, 3 * hd, hd));
  Tensor c = tensor::Add(tensor::Mul(f, state.c), tensor::Mul(i, g));
  Tensor h = tensor::Mul(o, tensor::Tanh(c));
  return {h, c};
}

BiGru::BiGru(int64_t input_dim, int64_t hidden_dim, Rng* rng) {
  fwd_ = std::make_unique<GruCell>(input_dim, hidden_dim, rng);
  bwd_ = std::make_unique<GruCell>(input_dim, hidden_dim, rng);
  RegisterChild("fwd", fwd_.get());
  RegisterChild("bwd", bwd_.get());
}

Tensor BiGru::Forward(const Tensor& x) const {
  DTDBD_CHECK_EQ(x.ndim(), 3);
  const int64_t b = x.dim(0), t = x.dim(1);
  const int64_t hd = fwd_->hidden_dim();
  std::vector<Tensor> fwd_out(t), bwd_out(t);
  Tensor h = Tensor::Zeros({b, hd});
  for (int64_t ti = 0; ti < t; ++ti) {
    h = fwd_->Step(tensor::SliceTime(x, ti), h);
    fwd_out[ti] = h;
  }
  h = Tensor::Zeros({b, hd});
  for (int64_t ti = t - 1; ti >= 0; --ti) {
    h = bwd_->Step(tensor::SliceTime(x, ti), h);
    bwd_out[ti] = h;
  }
  std::vector<Tensor> merged(t);
  for (int64_t ti = 0; ti < t; ++ti) {
    merged[ti] = tensor::ConcatLastDim({fwd_out[ti], bwd_out[ti]});
  }
  return tensor::StackTime(merged);
}

int64_t BiGru::output_dim() const { return 2 * fwd_->hidden_dim(); }

BiLstm::BiLstm(int64_t input_dim, int64_t hidden_dim, Rng* rng) {
  fwd_ = std::make_unique<LstmCell>(input_dim, hidden_dim, rng);
  bwd_ = std::make_unique<LstmCell>(input_dim, hidden_dim, rng);
  RegisterChild("fwd", fwd_.get());
  RegisterChild("bwd", bwd_.get());
}

Tensor BiLstm::Forward(const Tensor& x) const {
  DTDBD_CHECK_EQ(x.ndim(), 3);
  const int64_t b = x.dim(0), t = x.dim(1);
  const int64_t hd = fwd_->hidden_dim();
  std::vector<Tensor> fwd_out(t), bwd_out(t);
  LstmCell::State state{Tensor::Zeros({b, hd}), Tensor::Zeros({b, hd})};
  for (int64_t ti = 0; ti < t; ++ti) {
    state = fwd_->Step(tensor::SliceTime(x, ti), state);
    fwd_out[ti] = state.h;
  }
  state = {Tensor::Zeros({b, hd}), Tensor::Zeros({b, hd})};
  for (int64_t ti = t - 1; ti >= 0; --ti) {
    state = bwd_->Step(tensor::SliceTime(x, ti), state);
    bwd_out[ti] = state.h;
  }
  std::vector<Tensor> merged(t);
  for (int64_t ti = 0; ti < t; ++ti) {
    merged[ti] = tensor::ConcatLastDim({fwd_out[ti], bwd_out[ti]});
  }
  return tensor::StackTime(merged);
}

int64_t BiLstm::output_dim() const { return 2 * fwd_->hidden_dim(); }

}  // namespace dtdbd::nn
