// Recurrent layers: GRU and LSTM cells plus bidirectional wrappers that
// unroll over a [B,T,E] sequence via the autograd tape (backprop through
// time comes for free).
#ifndef DTDBD_NN_RNN_H_
#define DTDBD_NN_RNN_H_

#include <memory>

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace dtdbd::nn {

class GruCell : public Module {
 public:
  GruCell(int64_t input_dim, int64_t hidden_dim, Rng* rng);

  // x [B,in], h [B,H] -> new h [B,H].
  tensor::Tensor Step(const tensor::Tensor& x, const tensor::Tensor& h) const;

  int64_t hidden_dim() const { return hidden_dim_; }

 private:
  int64_t input_dim_;
  int64_t hidden_dim_;
  // Gate weights: x-projections [in, 3H], h-projections [H, 3H], bias [3H].
  tensor::Tensor wx_;
  tensor::Tensor wh_;
  tensor::Tensor bias_;
};

class LstmCell : public Module {
 public:
  LstmCell(int64_t input_dim, int64_t hidden_dim, Rng* rng);

  struct State {
    tensor::Tensor h;
    tensor::Tensor c;
  };

  State Step(const tensor::Tensor& x, const State& state) const;

  int64_t hidden_dim() const { return hidden_dim_; }

 private:
  int64_t input_dim_;
  int64_t hidden_dim_;
  tensor::Tensor wx_;    // [in, 4H]
  tensor::Tensor wh_;    // [H, 4H]
  tensor::Tensor bias_;  // [4H]
};

// Bidirectional GRU; output at each step is the concatenation of the
// forward and backward hidden states.
class BiGru : public Module {
 public:
  BiGru(int64_t input_dim, int64_t hidden_dim, Rng* rng);

  // x [B,T,E] -> sequence outputs [B,T,2H].
  tensor::Tensor Forward(const tensor::Tensor& x) const;

  int64_t output_dim() const;

 private:
  std::unique_ptr<GruCell> fwd_;
  std::unique_ptr<GruCell> bwd_;
};

// Bidirectional LSTM, same interface as BiGru.
class BiLstm : public Module {
 public:
  BiLstm(int64_t input_dim, int64_t hidden_dim, Rng* rng);

  tensor::Tensor Forward(const tensor::Tensor& x) const;

  int64_t output_dim() const;

 private:
  std::unique_ptr<LstmCell> fwd_;
  std::unique_ptr<LstmCell> bwd_;
};

}  // namespace dtdbd::nn

#endif  // DTDBD_NN_RNN_H_
