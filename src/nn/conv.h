// TextCNN-style convolution bank: parallel 1-D convolutions of different
// kernel widths over a token-embedding sequence, each followed by ReLU and
// max-over-time pooling, concatenated into a fixed-size feature vector
// (Kim 2014, used by the paper's TextCNN baseline, the MDFEND experts, and
// the TextCNN-S student).
#ifndef DTDBD_NN_CONV_H_
#define DTDBD_NN_CONV_H_

#include <vector>

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace dtdbd::nn {

class Conv1dBank : public Module {
 public:
  // One convolution per entry of kernel_widths, each with `channels`
  // output channels.
  Conv1dBank(int64_t embed_dim, int64_t channels,
             std::vector<int64_t> kernel_widths, Rng* rng);

  // x [B,T,E] -> [B, channels * kernel_widths.size()]. T must be >= the
  // largest kernel width.
  tensor::Tensor Forward(const tensor::Tensor& x) const;

  int64_t output_dim() const;

 private:
  int64_t embed_dim_;
  int64_t channels_;
  std::vector<int64_t> kernel_widths_;
  std::vector<tensor::Tensor> weights_;  // [C, k*E] each
  std::vector<tensor::Tensor> biases_;   // [C] each
};

}  // namespace dtdbd::nn

#endif  // DTDBD_NN_CONV_H_
