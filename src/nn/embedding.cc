#include "nn/embedding.h"

#include "tensor/init.h"
#include "tensor/ops.h"

namespace dtdbd::nn {

using tensor::Tensor;

Embedding::Embedding(int64_t vocab_size, int64_t embed_dim, Rng* rng)
    : vocab_size_(vocab_size), embed_dim_(embed_dim) {
  table_ = RegisterParam(
      "table", tensor::NormalInit({vocab_size, embed_dim}, 0.1f, rng));
}

Tensor Embedding::Forward(const std::vector<int>& ids, int64_t batch,
                          int64_t time) const {
  return tensor::EmbeddingGather(table_, ids, batch, time);
}

}  // namespace dtdbd::nn
