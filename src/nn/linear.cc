#include "nn/linear.h"

#include "tensor/init.h"
#include "tensor/ops.h"

namespace dtdbd::nn {

using tensor::Tensor;

Linear::Linear(int64_t in_features, int64_t out_features, Rng* rng)
    : in_features_(in_features), out_features_(out_features) {
  weight_ = RegisterParam(
      "weight", tensor::XavierInit({in_features, out_features}, in_features,
                                   out_features, rng));
  bias_ = RegisterParam("bias", Tensor::Zeros({out_features}, true));
}

Tensor Linear::Forward(const Tensor& x) const {
  DTDBD_CHECK_EQ(x.ndim(), 2);
  DTDBD_CHECK_EQ(x.dim(1), in_features_);
  return tensor::AddBias(tensor::MatMul(x, weight_), bias_);
}

Tensor Linear::ForwardRelu(const Tensor& x) const {
  DTDBD_CHECK_EQ(x.ndim(), 2);
  DTDBD_CHECK_EQ(x.dim(1), in_features_);
  return tensor::LinearRelu(x, weight_, bias_);
}

Mlp::Mlp(const std::vector<int64_t>& dims, double dropout, Rng* rng)
    : dropout_(dropout) {
  DTDBD_CHECK_GE(dims.size(), 2u);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(dims[i], dims[i + 1], rng));
    RegisterChild("fc" + std::to_string(i), layers_.back().get());
  }
}

Tensor Mlp::Forward(const Tensor& x, bool training, Rng* rng,
                    bool output_relu) const {
  Tensor h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    const bool hidden = i + 1 < layers_.size();
    if (hidden || output_relu) {
      h = layers_[i]->ForwardRelu(h);
    } else {
      h = layers_[i]->Forward(h);
    }
    if (hidden && dropout_ > 0.0) {
      h = tensor::Dropout(h, dropout_, rng, training);
    }
  }
  return h;
}

}  // namespace dtdbd::nn
