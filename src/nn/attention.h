// Additive attention pooling: a learned scoring vector turns a [B,T,N]
// sequence into a [B,N] summary. Used by the M3FEND view aggregators.
#ifndef DTDBD_NN_ATTENTION_H_
#define DTDBD_NN_ATTENTION_H_

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace dtdbd::nn {

class AttentionPool : public Module {
 public:
  AttentionPool(int64_t feature_dim, Rng* rng);

  // x [B,T,N] -> [B,N]; weights = softmax_t(x · w).
  tensor::Tensor Forward(const tensor::Tensor& x) const;

 private:
  int64_t feature_dim_;
  tensor::Tensor score_;  // [N, 1]
};

}  // namespace dtdbd::nn

#endif  // DTDBD_NN_ATTENTION_H_
