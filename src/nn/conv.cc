#include "nn/conv.h"

#include "tensor/init.h"
#include "tensor/ops.h"

namespace dtdbd::nn {

using tensor::Tensor;

Conv1dBank::Conv1dBank(int64_t embed_dim, int64_t channels,
                       std::vector<int64_t> kernel_widths, Rng* rng)
    : embed_dim_(embed_dim),
      channels_(channels),
      kernel_widths_(std::move(kernel_widths)) {
  DTDBD_CHECK(!kernel_widths_.empty());
  for (size_t i = 0; i < kernel_widths_.size(); ++i) {
    const int64_t k = kernel_widths_[i];
    DTDBD_CHECK_GT(k, 0);
    weights_.push_back(RegisterParam(
        "conv" + std::to_string(k) + ".weight",
        tensor::XavierInit({channels_, k * embed_dim_}, k * embed_dim_,
                           channels_, rng)));
    biases_.push_back(RegisterParam("conv" + std::to_string(k) + ".bias",
                                    Tensor::Zeros({channels_}, true)));
  }
}

Tensor Conv1dBank::Forward(const Tensor& x) const {
  DTDBD_CHECK_EQ(x.ndim(), 3);
  DTDBD_CHECK_EQ(x.dim(2), embed_dim_);
  std::vector<Tensor> pooled;
  for (size_t i = 0; i < kernel_widths_.size(); ++i) {
    // Fused conv+ReLU: one node and one buffer per kernel width.
    Tensor conv = tensor::Conv1dSeqRelu(x, weights_[i], biases_[i],
                                        kernel_widths_[i]);
    pooled.push_back(tensor::MaxOverTime(conv));
  }
  return tensor::ConcatLastDim(pooled);
}

int64_t Conv1dBank::output_dim() const {
  return channels_ * static_cast<int64_t>(kernel_widths_.size());
}

}  // namespace dtdbd::nn
