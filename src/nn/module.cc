#include "nn/module.h"

namespace dtdbd::nn {

std::vector<tensor::Tensor> Module::Parameters() const {
  std::vector<tensor::Tensor> out;
  for (const auto& [name, t] : params_) out.push_back(t);
  for (const auto& [name, child] : children_) {
    auto sub = child->Parameters();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

std::map<std::string, tensor::Tensor> Module::NamedParameters() const {
  std::map<std::string, tensor::Tensor> out;
  CollectNamed("", &out);
  return out;
}

void Module::CollectNamed(const std::string& prefix,
                          std::map<std::string, tensor::Tensor>* out) const {
  for (const auto& [name, t] : params_) {
    (*out)[prefix + name] = t;
  }
  for (const auto& [name, child] : children_) {
    child->CollectNamed(prefix + name + ".", out);
  }
}

void Module::Freeze() {
  for (auto& t : Parameters()) t.set_requires_grad(false);
}

void Module::Unfreeze() {
  for (auto& t : Parameters()) t.set_requires_grad(true);
}

int64_t Module::ParameterCount() const {
  int64_t n = 0;
  for (const auto& t : Parameters()) n += t.numel();
  return n;
}

tensor::Tensor Module::RegisterParam(const std::string& name,
                                     tensor::Tensor t) {
  DTDBD_CHECK(t.defined());
  params_.emplace_back(name, t);
  return t;
}

void Module::RegisterChild(const std::string& name, Module* child) {
  DTDBD_CHECK(child != nullptr);
  children_.emplace_back(name, child);
}

}  // namespace dtdbd::nn
