// LayerNorm module wrapping the fused tensor op with learned scale/shift.
#ifndef DTDBD_NN_NORM_H_
#define DTDBD_NN_NORM_H_

#include "nn/module.h"
#include "tensor/tensor.h"

namespace dtdbd::nn {

class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t dim, float eps = 1e-5f);

  tensor::Tensor Forward(const tensor::Tensor& x) const;

 private:
  int64_t dim_;
  float eps_;
  tensor::Tensor gamma_;
  tensor::Tensor beta_;
};

}  // namespace dtdbd::nn

#endif  // DTDBD_NN_NORM_H_
