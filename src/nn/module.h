// Module base class: a named tree of parameters. Layers register their
// tensors (and sub-modules) so trainers, optimizers, and serialization can
// walk the whole model generically.
#ifndef DTDBD_NN_MODULE_H_
#define DTDBD_NN_MODULE_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace dtdbd::nn {

class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  // All parameters of this module and its children, in registration order.
  std::vector<tensor::Tensor> Parameters() const;

  // Parameters keyed by hierarchical name ("child.weight").
  std::map<std::string, tensor::Tensor> NamedParameters() const;

  // Marks every parameter trainable / frozen. A frozen module still runs
  // forward but contributes no gradients (DTDBD freezes both teachers).
  void Freeze();
  void Unfreeze();

  // Total number of scalar parameters (the paper quotes model sizes:
  // MDFEND 8.14M, M3FEND 11.36M, TextCNN-S 7.71M).
  int64_t ParameterCount() const;

 protected:
  // Registers a parameter under `name` and returns it.
  tensor::Tensor RegisterParam(const std::string& name, tensor::Tensor t);

  // Registers a child module; `child` must outlive this module (it is
  // normally a data member of the subclass).
  void RegisterChild(const std::string& name, Module* child);

 private:
  void CollectNamed(const std::string& prefix,
                    std::map<std::string, tensor::Tensor>* out) const;

  std::vector<std::pair<std::string, tensor::Tensor>> params_;
  std::vector<std::pair<std::string, Module*>> children_;
};

}  // namespace dtdbd::nn

#endif  // DTDBD_NN_MODULE_H_
