// Dense layers: Linear and a small multilayer perceptron.
#ifndef DTDBD_NN_LINEAR_H_
#define DTDBD_NN_LINEAR_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace dtdbd::nn {

// y = x W + b with W [in, out], b [out].
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng* rng);

  // x [B, in] -> [B, out].
  tensor::Tensor Forward(const tensor::Tensor& x) const;

  // relu(x W + b) as one fused LinearRelu graph node (bitwise identical to
  // Relu(Forward(x)); falls back to that composition when fusion is off).
  tensor::Tensor ForwardRelu(const tensor::Tensor& x) const;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  tensor::Tensor weight_;
  tensor::Tensor bias_;
};

// MLP with ReLU activations between layers and optional dropout. The last
// layer has no activation by default (it produces logits / features);
// pass output_relu to apply ReLU after the last layer too.
class Mlp : public Module {
 public:
  // dims: {in, h1, ..., out}; at least {in, out}.
  Mlp(const std::vector<int64_t>& dims, double dropout, Rng* rng);

  // `training` enables dropout; `rng` is the dropout stream (may be null
  // when !training or dropout == 0). Hidden layers run through the fused
  // LinearRelu path.
  tensor::Tensor Forward(const tensor::Tensor& x, bool training, Rng* rng,
                         bool output_relu = false) const;

 private:
  double dropout_;
  std::vector<std::unique_ptr<Linear>> layers_;
};

}  // namespace dtdbd::nn

#endif  // DTDBD_NN_LINEAR_H_
