// Trainable token embedding table.
#ifndef DTDBD_NN_EMBEDDING_H_
#define DTDBD_NN_EMBEDDING_H_

#include <vector>

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace dtdbd::nn {

class Embedding : public Module {
 public:
  Embedding(int64_t vocab_size, int64_t embed_dim, Rng* rng);

  // ids laid out row-major [batch, time] -> [batch, time, E].
  tensor::Tensor Forward(const std::vector<int>& ids, int64_t batch,
                         int64_t time) const;

  int64_t embed_dim() const { return embed_dim_; }

 private:
  int64_t vocab_size_;
  int64_t embed_dim_;
  tensor::Tensor table_;
};

}  // namespace dtdbd::nn

#endif  // DTDBD_NN_EMBEDDING_H_
