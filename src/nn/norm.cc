#include "nn/norm.h"

#include "tensor/ops.h"

namespace dtdbd::nn {

using tensor::Tensor;

LayerNorm::LayerNorm(int64_t dim, float eps) : dim_(dim), eps_(eps) {
  gamma_ = RegisterParam("gamma", Tensor::Full({dim}, 1.0f, true));
  beta_ = RegisterParam("beta", Tensor::Zeros({dim}, true));
}

Tensor LayerNorm::Forward(const Tensor& x) const {
  DTDBD_CHECK_EQ(x.shape().back(), dim_);
  return tensor::LayerNormOp(x, gamma_, beta_, eps_);
}

}  // namespace dtdbd::nn
