#include "eval/tsne.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dtdbd::eval {
namespace {

// Two well-separated Gaussian blobs in 5-D.
std::vector<float> TwoBlobs(int per_blob, int dim, std::vector<int>* groups,
                            uint64_t seed) {
  Rng rng(seed);
  std::vector<float> x;
  for (int blob = 0; blob < 2; ++blob) {
    for (int i = 0; i < per_blob; ++i) {
      for (int d = 0; d < dim; ++d) {
        x.push_back(static_cast<float>(rng.Normal(blob * 20.0, 0.5)));
      }
      groups->push_back(blob);
    }
  }
  return x;
}

TEST(TsneTest, OutputShapeAndFinite) {
  std::vector<int> groups;
  auto x = TwoBlobs(20, 5, &groups, 1);
  TsneOptions opts;
  opts.perplexity = 8.0;
  opts.iterations = 150;
  auto y = RunTsne(x, 40, 5, opts);
  ASSERT_EQ(y.size(), 80u);
  for (double v : y) EXPECT_TRUE(std::isfinite(v));
}

TEST(TsneTest, Deterministic) {
  std::vector<int> groups;
  auto x = TwoBlobs(15, 4, &groups, 2);
  TsneOptions opts;
  opts.perplexity = 6.0;
  opts.iterations = 100;
  auto y1 = RunTsne(x, 30, 4, opts);
  auto y2 = RunTsne(x, 30, 4, opts);
  EXPECT_EQ(y1, y2);
}

TEST(TsneTest, SeparatedBlobsStaySeparated) {
  std::vector<int> groups;
  auto x = TwoBlobs(25, 5, &groups, 3);
  TsneOptions opts;
  opts.perplexity = 10.0;
  opts.iterations = 250;
  auto y = RunTsne(x, 50, 5, opts);
  // Nearly all near neighbors should come from the same blob.
  const double mixing = DomainMixingScore(y, 50, groups, 5);
  EXPECT_LT(mixing, 0.1);
}

TEST(DomainMixingScoreTest, HandComputedCases) {
  // Four points on a line: two groups interleaved vs separated.
  std::vector<double> separated = {0, 0, 1, 0, 10, 0, 11, 0};
  std::vector<int> grp_separated = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(DomainMixingScore(separated, 4, grp_separated, 1), 0.0);

  std::vector<double> interleaved = {0, 0, 1, 0, 2, 0, 3, 0};
  std::vector<int> grp_inter = {0, 1, 0, 1};
  // Every point's nearest neighbor is from the other group.
  EXPECT_DOUBLE_EQ(DomainMixingScore(interleaved, 4, grp_inter, 1), 1.0);
}

TEST(DomainMixingScoreTest, UniformMixtureNearHalf) {
  // Random 2-D scatter with random groups: expected mixing ~ 0.5.
  Rng rng(4);
  const int n = 200;
  std::vector<double> y;
  std::vector<int> groups;
  for (int i = 0; i < n; ++i) {
    y.push_back(rng.Uniform());
    y.push_back(rng.Uniform());
    groups.push_back(static_cast<int>(rng.UniformInt(2)));
  }
  const double mixing = DomainMixingScore(y, n, groups, 10);
  EXPECT_GT(mixing, 0.4);
  EXPECT_LT(mixing, 0.6);
}

TEST(TsneDeathTest, PerplexityTooLargeForN) {
  std::vector<float> x(10 * 3, 0.0f);
  TsneOptions opts;
  opts.perplexity = 10.0;  // needs n > 3 * perplexity
  EXPECT_DEATH(RunTsne(x, 10, 3, opts), "perplexity");
}

}  // namespace
}  // namespace dtdbd::eval
