#include "tensor/loss.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace dtdbd::tensor {
namespace {

TEST(CrossEntropyTest, MatchesHandComputation) {
  // Logits [1,2] = {0, ln(3)} -> p = {0.25, 0.75}; label 1 -> loss = -ln 0.75.
  Tensor logits = Tensor::FromData({1, 2}, {0.0f, std::log(3.0f)});
  Tensor loss = CrossEntropyLoss(logits, {1});
  EXPECT_NEAR(loss.item(), -std::log(0.75f), 1e-5f);
}

TEST(CrossEntropyTest, UniformLogitsGiveLogC) {
  Tensor logits = Tensor::Zeros({4, 5});
  Tensor loss = CrossEntropyLoss(logits, {0, 1, 2, 3});
  EXPECT_NEAR(loss.item(), std::log(5.0f), 1e-5f);
}

TEST(CrossEntropyTest, GradientIsProbsMinusOneHot) {
  Tensor logits = Tensor::FromData({1, 3}, {1.0f, 2.0f, 3.0f}, true);
  Tensor loss = CrossEntropyLoss(logits, {2});
  loss.Backward();
  Tensor p = Softmax(Tensor::FromData({1, 3}, {1.0f, 2.0f, 3.0f}));
  EXPECT_NEAR(logits.grad()[0], p.at(0), 1e-5f);
  EXPECT_NEAR(logits.grad()[1], p.at(1), 1e-5f);
  EXPECT_NEAR(logits.grad()[2], p.at(2) - 1.0f, 1e-5f);
}

TEST(DistillKlTest, ZeroWhenLogitsEqual) {
  Tensor logits = Tensor::FromData({2, 3}, {1, 2, 3, -1, 0, 1});
  Tensor loss = DistillKlLoss(logits, logits.Clone(), 2.0f);
  EXPECT_NEAR(loss.item(), 0.0f, 1e-6f);
}

TEST(DistillKlTest, NonNegative) {
  Tensor t = Tensor::FromData({2, 2}, {2, 0, -1, 1});
  Tensor s = Tensor::FromData({2, 2}, {0, 2, 1, -1});
  for (float tau : {0.5f, 1.0f, 4.0f}) {
    EXPECT_GE(DistillKlLoss(t, s, tau).item(), 0.0f);
  }
}

TEST(DistillKlTest, TemperatureScalesTowardsUniform) {
  // As tau -> infinity both distributions approach uniform, so the raw KL
  // (before the tau^2 factor) vanishes; with the tau^2 factor the loss
  // approaches a finite limit. Check the KL ordering at fixed tau^2 by
  // comparing normalized values.
  Tensor t = Tensor::FromData({1, 2}, {4.0f, 0.0f});
  Tensor s = Tensor::FromData({1, 2}, {0.0f, 4.0f});
  const float kl_sharp = DistillKlLoss(t, s, 1.0f).item();          // tau^2=1
  const float kl_soft = DistillKlLoss(t, s, 8.0f).item() / 64.0f;   // raw KL
  EXPECT_GT(kl_sharp, kl_soft);
}

TEST(DistillKlTest, NoGradientToTeacher) {
  Tensor t = Tensor::FromData({1, 2}, {1.0f, 0.0f}, true);
  Tensor s = Tensor::FromData({1, 2}, {0.0f, 1.0f}, true);
  Tensor loss = DistillKlLoss(t, s, 1.0f);
  loss.Backward();
  EXPECT_FLOAT_EQ(t.grad()[0], 0.0f);
  EXPECT_FLOAT_EQ(t.grad()[1], 0.0f);
  // Student does receive gradient.
  EXPECT_NE(s.grad()[0], 0.0f);
}

TEST(NegativeEntropyTest, UniformIsMinusLogC) {
  // For uniform probs, sum p log p = -log C (the entropy maximum).
  Tensor logits = Tensor::Zeros({3, 4});
  EXPECT_NEAR(NegativeEntropyLoss(logits).item(), -std::log(4.0f), 1e-5f);
}

TEST(NegativeEntropyTest, PeakedDistributionNearZero) {
  Tensor logits = Tensor::FromData({1, 3}, {50.0f, 0.0f, 0.0f});
  EXPECT_NEAR(NegativeEntropyLoss(logits).item(), 0.0f, 1e-4f);
}

TEST(NegativeEntropyTest, MinimizingItFlattensDistribution) {
  // One gradient step on L_IE should move logits toward uniform.
  Tensor logits = Tensor::FromData({1, 2}, {1.0f, -1.0f}, true);
  Tensor loss = NegativeEntropyLoss(logits);
  loss.Backward();
  // d/dlogit0 should be positive (reduce the large logit)? Moving against
  // gradient: logit0 decreases, logit1 increases -> flatter.
  EXPECT_GT(logits.grad()[0], 0.0f);
  EXPECT_LT(logits.grad()[1], 0.0f);
}

TEST(MseTest, KnownValueAndSymmetry) {
  Tensor a = Tensor::FromData({2}, {1.0f, 3.0f});
  Tensor b = Tensor::FromData({2}, {2.0f, 1.0f});
  EXPECT_NEAR(MseLoss(a, b).item(), (1.0f + 4.0f) / 2.0f, 1e-6f);
  EXPECT_NEAR(MseLoss(b, a).item(), MseLoss(a, b).item(), 1e-6f);
}

}  // namespace
}  // namespace dtdbd::tensor
