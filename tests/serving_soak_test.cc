// Serving soak: >= 11k requests through the Server under fault injection —
// malformed inputs, deadline pressure, and mid-run hot-reloads (including
// injected load failures) — swept over serving workers {1, 4} x kernel
// thread counts {1, 2, 4, 8} with micro-batching enabled (max_batch 8).
// The contract under test: zero crashes, every request answered with OK or
// a typed error, and every OK answer bitwise identical to the offline
// evaluator (PredictFakeProbability) for the model version that served it —
// no matter which worker served it or how large a batch it rode in.
#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "data/generator.h"
#include "dtdbd/trainer.h"
#include "models/model.h"
#include "serve/server.h"
#include "serve/session.h"
#include "tensor/optim.h"
#include "text/frozen_encoder.h"
#include "train/checkpoint.h"
#include "train/fault_injector.h"

namespace dtdbd::serve {
namespace {

constexpr uint64_t kServingSeed = 3;   // the deployed model
constexpr uint64_t kReloadSeed = 99;   // the "newly trained" weights

class ServingSoakTest : public ::testing::Test {
 protected:
  ServingSoakTest() {
    dataset_ = data::GenerateCorpus(data::MicroConfig(23));
    // Keep the request pool small so references stay cheap but still cover
    // every domain and both labels.
    dataset_.samples.resize(64);
    encoder_ = std::make_unique<text::FrozenEncoder>(dataset_.vocab->size(),
                                                     16, 5);
    config_.vocab_size = dataset_.vocab->size();
    config_.num_domains = dataset_.num_domains();
    config_.encoder = encoder_.get();
    config_.embed_dim = 12;
    config_.hidden_dim = 16;
    config_.conv_channels = 8;
    config_.rnn_hidden = 8;
    config_.num_experts = 3;
    limits_.vocab_size = config_.vocab_size;
    limits_.num_domains = config_.num_domains;
    limits_.seq_len = dataset_.seq_len;
  }

  models::ModelConfig ConfigWithSeed(uint64_t seed) const {
    models::ModelConfig c = config_;
    c.seed = seed;
    return c;
  }

  InferenceRequest RequestFor(const data::NewsSample& sample) const {
    InferenceRequest request;
    request.tokens = sample.tokens;
    request.domain = sample.domain;
    request.style = sample.style;
    request.emotion = sample.emotion;
    return request;
  }

  std::string WriteReloadCheckpoint() const {
    auto model = models::CreateModel("MDFEND", ConfigWithSeed(kReloadSeed));
    std::vector<tensor::Tensor> trainable;
    for (auto& p : model->Parameters()) {
      if (p.requires_grad()) trainable.push_back(p);
    }
    tensor::Adam adam(trainable, 1e-3f, 0.9f, 0.999f, 1e-8f, 0.0f);
    data::DataLoader loader(&dataset_, 8, /*shuffle=*/false, 0);
    std::vector<Rng*> rngs;
    model->CollectRngs(&rngs);
    const train::CheckpointState state = train::CaptureState(
        "supervised", 0, model->NamedParameters(), adam, rngs, loader);
    const std::string path = ::testing::TempDir() + "soak_reload.ckpt";
    const Status saved = train::SaveCheckpoint(state, path);
    EXPECT_TRUE(saved.ok()) << saved.ToString();
    return path;
  }

  data::NewsDataset dataset_;
  std::unique_ptr<text::FrozenEncoder> encoder_;
  models::ModelConfig config_;
  RequestLimits limits_;
};

// Applies one FaultInjector-chosen malformation to a copy of a good request.
InferenceRequest Corrupt(InferenceRequest request,
                         train::FaultInjector::RequestFault fault,
                         const RequestLimits& limits) {
  using Fault = train::FaultInjector::RequestFault;
  switch (fault) {
    case Fault::kEmptyTokens:
      request.tokens.clear();
      break;
    case Fault::kOverLength:
      request.tokens.assign(static_cast<size_t>(limits.seq_len) * 2, 1);
      break;
    case Fault::kTokenTooLarge:
      request.tokens[0] = limits.vocab_size + 7;
      break;
    case Fault::kNegativeToken:
      request.tokens[0] = -3;
      break;
    case Fault::kBadDomain:
      request.domain = limits.num_domains + 1;
      break;
    case Fault::kNonFiniteStyle:
      request.style[1] = std::numeric_limits<float>::quiet_NaN();
      break;
    case Fault::kNonFiniteEmotion:
      request.emotion[4] = std::numeric_limits<float>::infinity();
      break;
    case Fault::kNone:
      break;
  }
  return request;
}

TEST_F(ServingSoakTest, ElevenThousandFaultyRequestsAcrossWorkersAndThreads) {
  const std::string checkpoint = WriteReloadCheckpoint();

  // Offline references, computed once at 1 thread; every served answer at
  // every thread count must match these bitwise. Versions 2+ all carry the
  // reload checkpoint's weights.
  SetNumThreads(1);
  std::vector<std::vector<float>> reference_by_params(2);
  {
    auto v1 = models::CreateModel("MDFEND", ConfigWithSeed(kServingSeed));
    auto v2 = models::CreateModel("MDFEND", ConfigWithSeed(kReloadSeed));
    reference_by_params[0] = PredictFakeProbability(v1.get(), dataset_, 64);
    reference_by_params[1] = PredictFakeProbability(v2.get(), dataset_, 64);
  }
  const auto reference_for = [&](int64_t version, size_t sample) {
    return version <= 1 ? reference_by_params[0][sample]
                        : reference_by_params[1][sample];
  };

  constexpr int kClientThreads = 4;
  constexpr int kRequestsPerClient = 350;
  // 2 worker counts x 4 thread counts x 4 clients x 350 = 11200 requests.
  int64_t total_ok = 0, total_invalid = 0, total_shed = 0, total_rejected = 0;
  int64_t total_requests = 0;

  for (const int num_workers : {1, 4}) {
  for (const int num_threads : {1, 2, 4, 8}) {
    SCOPED_TRACE("workers=" + std::to_string(num_workers) +
                 " threads=" + std::to_string(num_threads));
    SetNumThreads(num_threads);

    train::FaultInjector injector(static_cast<uint64_t>(num_threads) * 31 +
                                  static_cast<uint64_t>(num_workers));
    injector.set_request_fault_probability(0.15);
    ServerOptions options;
    options.num_workers = num_workers;
    options.max_batch = 8;  // exercise coalescing in every config
    options.max_queue_depth = 256;
    options.watchdog_period_nanos = 2'000'000;
    options.reload_max_attempts = 2;
    options.reload_backoff_initial_nanos = 100'000;
    options.fault_injector = &injector;
    options.model_factory = [this] {
      return models::CreateModel("MDFEND", ConfigWithSeed(kReloadSeed));
    };
    auto server = std::make_unique<Server>(
        std::make_unique<InferenceSession>(
            models::CreateModel("MDFEND", ConfigWithSeed(kServingSeed)),
            limits_, /*model_version=*/1),
        std::move(options));

    struct Outcome {
      size_t sample;
      bool corrupted;
      bool tight_deadline;
      std::future<StatusOr<Prediction>> future;
    };
    std::vector<std::vector<Outcome>> outcomes(kClientThreads);
    std::atomic<bool> clients_done{false};

    std::vector<std::thread> clients;
    for (int c = 0; c < kClientThreads; ++c) {
      clients.emplace_back([&, c] {
        Rng rng(static_cast<uint64_t>(c) * 977 + num_threads);
        auto& mine = outcomes[static_cast<size_t>(c)];
        mine.reserve(kRequestsPerClient);
        for (int i = 0; i < kRequestsPerClient; ++i) {
          const size_t sample = static_cast<size_t>(
              rng.UniformInt(static_cast<int64_t>(dataset_.samples.size())));
          const auto fault = injector.NextRequestFault();
          const bool corrupted =
              fault != train::FaultInjector::RequestFault::kNone;
          InferenceRequest request =
              Corrupt(RequestFor(dataset_.samples[sample]), fault, limits_);
          // Deadline pressure: ~5% of requests are already expired.
          const bool tight = rng.Bernoulli(0.05);
          const int64_t deadline =
              tight ? 1 : 0;  // 1 ns after the epoch = long expired
          mine.push_back(Outcome{sample, corrupted, tight,
                                 server->Submit(std::move(request), deadline)});
        }
      });
    }

    // Ops thread: mid-run hot-reloads, some forced to fail (and therefore to
    // degrade), interleaved with the request storm.
    std::thread ops([&] {
      std::vector<std::future<Status>> reloads;
      for (int r = 0; r < 6; ++r) {
        if (r % 2 == 1) injector.ScheduleLoadFailures(2);  // both attempts
        reloads.push_back(server->ReloadFromCheckpoint(checkpoint));
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        if (clients_done.load()) break;
      }
      for (auto& f : reloads) (void)f.get();  // each resolves, ok or not
    });

    for (auto& t : clients) t.join();
    clients_done.store(true);
    ops.join();

    int64_t ok = 0, invalid = 0, shed = 0, rejected = 0;
    for (auto& per_client : outcomes) {
      for (Outcome& o : per_client) {
        StatusOr<Prediction> result = o.future.get();
        ++total_requests;
        if (result.ok()) {
          ++ok;
          ASSERT_FALSE(o.corrupted)
              << "malformed request was served as OK (sample " << o.sample
              << ")";
          const Prediction& p = result.value();
          ASSERT_EQ(p.p_fake, reference_for(p.model_version, o.sample))
              << "bitwise mismatch at sample " << o.sample << " version "
              << p.model_version << " threads " << num_threads;
          continue;
        }
        switch (result.status().code()) {
          case StatusCode::kInvalidArgument:
            ++invalid;
            EXPECT_TRUE(o.corrupted) << result.status().ToString();
            break;
          case StatusCode::kDeadlineExceeded:
            ++shed;
            EXPECT_TRUE(o.tight_deadline) << result.status().ToString();
            break;
          case StatusCode::kResourceExhausted:
            ++rejected;
            break;
          default:
            FAIL() << "unexpected status: " << result.status().ToString();
        }
      }
    }
    EXPECT_GT(ok, 0);
    EXPECT_GT(invalid, 0);  // fault probability 0.15 over 2800 requests

    const HealthReport health = server->Health();
    EXPECT_EQ(health.submitted, kClientThreads * kRequestsPerClient);
    EXPECT_EQ(health.served_ok, ok);
    EXPECT_EQ(health.invalid_requests, invalid);
    EXPECT_EQ(health.shed_deadline, shed);
    EXPECT_EQ(health.rejected_queue_full, rejected);
    EXPECT_GT(health.reload_attempts, 0);
    EXPECT_GT(health.reload_successes, 0);
    EXPECT_GT(health.watchdog_ticks, 0);
    EXPECT_GE(server->model_version(), 2);

    // Batching telemetry must account for exactly the dequeued elements:
    // every non-shed request rode in some batch of size 1..max_batch.
    EXPECT_EQ(health.num_workers, num_workers);
    EXPECT_EQ(health.max_batch, 8);
    ASSERT_EQ(health.batch_size_histogram.size(), 9u);
    int64_t hist_batches = 0, hist_elements = 0;
    for (size_t s = 1; s < health.batch_size_histogram.size(); ++s) {
      hist_batches += health.batch_size_histogram[s];
      hist_elements +=
          health.batch_size_histogram[s] * static_cast<int64_t>(s);
    }
    EXPECT_EQ(hist_batches, health.batches_run);
    if (health.cache_enabled) {
      // Cache hits and dedup fan-outs are answered without riding a
      // batch. A follower shed at fan-out is counted in both `deduped`
      // and `shed`, so the element count is bracketed, not pinned.
      EXPECT_GE(hist_elements,
                ok + invalid - health.cache_hits - health.deduped);
      EXPECT_LE(hist_elements, ok + invalid);
    } else {
      EXPECT_EQ(hist_elements, ok + invalid);
    }
    EXPECT_GT(health.batches_run, 0);
    EXPECT_GE(health.avg_batch_size, 1.0);

    server->Stop();
    total_ok += ok;
    total_invalid += invalid;
    total_shed += shed;
    total_rejected += rejected;
  }
  }

  EXPECT_GE(total_requests, 11'000);
  EXPECT_EQ(total_requests,
            total_ok + total_invalid + total_shed + total_rejected);
  SetNumThreads(0);  // restore the environment default
}

}  // namespace
}  // namespace dtdbd::serve
