// Fault-injected drift soak (DESIGN.md §13, EXPERIMENTS.md): a >=10.5k
// request stream whose domain mix, fake ratios, and domain coverage shift
// on a schedule (including a domain the served model never trained on),
// with ~8% feedback faults (label flips, drops, delays). Proves the full
// drift-robustness loop end to end:
//   - a quality-regressing canary (untrained weights: error-clean but
//     chance-level ranking) is auto-rolled-back by the labeled-feedback
//     gate with ZERO dropped in-flight requests;
//   - the primary's typed degraded-quality flag raises when the unseen
//     domain floods the window and clears after adaptation, both
//     deterministically;
//   - the online-adaptation loop (fine-tune on the recent labeled window,
//     publish through the atomic checkpoint + hot-reload path) recovers
//     AUC where a frozen control does not.
// The whole trajectory is a pure function of the seeds: responses are
// bitwise identical at any worker count and with the cache on or off, so
// every assertion here holds across the CI serving matrix.
#include <cstdint>
#include <cstring>
#include <functional>
#include <future>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"
#include "data/dataset.h"
#include "data/generator.h"
#include "drift/adapt.h"
#include "drift/drift.h"
#include "dtdbd/trainer.h"
#include "metrics/metrics.h"
#include "models/model.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/socket_server.h"
#include "serve/server.h"
#include "serve/session.h"
#include "tensor/optim.h"
#include "tensor/serialize.h"
#include "text/frozen_encoder.h"
#include "train/checkpoint.h"
#include "train/fault_injector.h"

namespace dtdbd {
namespace {

constexpr int kUnseenDomain = 2;

class DriftSoakTest : public ::testing::Test {
 protected:
  DriftSoakTest() {
    corpus_ = data::GenerateCorpus(data::MicroConfig(29));
    train_set_ = drift::WithoutDomains(corpus_, {kUnseenDomain});
    encoder_ =
        std::make_unique<text::FrozenEncoder>(corpus_.vocab->size(), 16, 5);
    config_.vocab_size = corpus_.vocab->size();
    config_.num_domains = corpus_.num_domains();
    config_.encoder = encoder_.get();
    config_.embed_dim = 12;
    config_.hidden_dim = 16;
    config_.conv_channels = 8;
    config_.rnn_hidden = 8;
    config_.num_experts = 3;
    config_.seed = 3;
    limits_.vocab_size = config_.vocab_size;
    limits_.num_domains = config_.num_domains;
    limits_.seq_len = corpus_.seq_len;
  }

  models::ModelConfig ConfigWithSeed(uint64_t seed) const {
    models::ModelConfig c = config_;
    c.seed = seed;
    return c;
  }

  std::function<std::unique_ptr<models::FakeNewsModel>()> Factory(
      uint64_t seed) const {
    return [this, seed] {
      return models::CreateModel("MDFEND", ConfigWithSeed(seed));
    };
  }

  // Trains the base model on the unseen-domain-free corpus and persists it
  // through the standard atomic checkpoint path.
  std::string TrainBaseCheckpoint(const std::string& filename) const {
    auto model = models::CreateModel("MDFEND", ConfigWithSeed(3));
    TrainOptions options;
    options.epochs = 12;
    options.batch_size = 16;
    options.lr = 1e-3f;
    options.seed = 5;
    options.checkpoint_path = ::testing::TempDir() + filename;
    const TrainResult result =
        TrainSupervised(model.get(), train_set_, nullptr, options);
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
    return options.checkpoint_path;
  }

  // Fresh (never trained) weights as a servable checkpoint: the "bad
  // candidate" — it answers every request cleanly, it just cannot rank.
  std::string WriteUntrainedCheckpoint(uint64_t seed,
                                       const std::string& filename) const {
    auto model = models::CreateModel("MDFEND", ConfigWithSeed(seed));
    std::vector<tensor::Tensor> trainable;
    for (auto& p : model->Parameters()) {
      if (p.requires_grad()) trainable.push_back(p);
    }
    tensor::Adam adam(trainable, 1e-3f, 0.9f, 0.999f, 1e-8f, 0.0f);
    data::DataLoader loader(&corpus_, 8, /*shuffle=*/false, 0);
    std::vector<Rng*> rngs;
    model->CollectRngs(&rngs);
    const train::CheckpointState state = train::CaptureState(
        "supervised", 0, model->NamedParameters(), adam, rngs, loader);
    const std::string path = ::testing::TempDir() + filename;
    const Status saved = train::SaveCheckpoint(state, path);
    EXPECT_TRUE(saved.ok()) << saved.ToString();
    return path;
  }

  std::unique_ptr<models::FakeNewsModel> ModelFromCheckpoint(
      const std::string& path) const {
    auto model = models::CreateModel("MDFEND", ConfigWithSeed(3));
    auto state = train::LoadCheckpoint(path);
    EXPECT_TRUE(state.ok()) << state.status().ToString();
    std::map<std::string, tensor::Tensor> named = model->NamedParameters();
    const Status restored = tensor::RestoreInto(state.value().model, &named);
    EXPECT_TRUE(restored.ok()) << restored.ToString();
    return model;
  }

  data::NewsDataset DomainSubset(int domain) const {
    data::NewsDataset subset;
    subset.vocab = corpus_.vocab;
    subset.domain_names = corpus_.domain_names;
    subset.seq_len = corpus_.seq_len;
    for (const data::NewsSample& s : corpus_.samples) {
      if (s.domain == domain) subset.samples.push_back(s);
    }
    return subset;
  }

  static double AucOn(models::FakeNewsModel* model,
                      const data::NewsDataset& dataset) {
    const std::vector<float> probs = PredictFakeProbability(model, dataset);
    std::vector<int> labels;
    labels.reserve(dataset.samples.size());
    for (const data::NewsSample& s : dataset.samples) {
      labels.push_back(s.label);
    }
    return metrics::Auc(probs, labels);
  }

  // The soak's three-phase trace: stationary -> mix + fake-ratio shift ->
  // unseen-domain flood.
  drift::DriftTraceConfig SoakTrace(int64_t total, uint64_t seed) const {
    drift::DriftTraceConfig trace;
    trace.seed = seed;
    drift::DriftPhase p0;
    p0.start_index = 0;
    p0.domain_weights = {1.0, 1.0, 0.0};
    drift::DriftPhase p1;
    p1.start_index = total / 3;
    p1.domain_weights = {0.3, 1.0, 0.0};
    p1.fake_ratio = {-1.0, 0.85, -1.0};
    drift::DriftPhase p2;
    p2.start_index = 2 * total / 3;
    p2.domain_weights = {0.2, 0.2, 1.0};
    trace.phases = {p0, p1, p2};
    return trace;
  }

  data::NewsDataset corpus_;
  data::NewsDataset train_set_;
  std::unique_ptr<text::FrozenEncoder> encoder_;
  models::ModelConfig config_;
  serve::RequestLimits limits_;
};

// A feedback delivery pipeline with injected faults: flips mislabel, drops
// never deliver, delays re-queue until 64 later deliveries have happened.
// Deliveries feed both the server's monitor and (primary traffic only) the
// online adapter — faults poison both consumers identically, as they would
// in production where the label source is shared.
struct FeedbackPipeline {
  serve::Server* server = nullptr;
  drift::OnlineAdapter* adapter = nullptr;
  train::FaultInjector* injector = nullptr;
  int64_t delivered = 0;
  int64_t dropped = 0;
  int64_t flipped = 0;
  int64_t delayed = 0;

  struct Pending {
    serve::Feedback feedback;
    serve::InferenceRequest request;
    int64_t due = 0;
  };
  std::vector<Pending> pending;

  void Deliver(const serve::Feedback& feedback,
               const serve::InferenceRequest& request) {
    const Status status = server->RecordFeedback(feedback);
    ASSERT_TRUE(status.ok()) << status.ToString();
    ++delivered;
    if (adapter != nullptr && !feedback.canary) {
      adapter->Ingest(request, feedback.label);
    }
  }

  void Observe(const drift::LabeledRequest& labeled,
               const serve::Prediction& prediction) {
    serve::Feedback feedback;
    feedback.domain = labeled.domain;
    feedback.p_fake = prediction.p_fake;
    feedback.label = labeled.label;
    feedback.canary = prediction.canary;
    using Fault = train::FaultInjector::FeedbackFault;
    const Fault fault =
        injector != nullptr ? injector->NextFeedbackFault() : Fault::kNone;
    if (fault == Fault::kDropFeedback) {
      ++dropped;
      return;
    }
    if (fault == Fault::kDelayFeedback) {
      ++delayed;
      pending.push_back({feedback, labeled.request, delivered + 64});
      return;
    }
    if (fault == Fault::kFlipLabel) {
      feedback.label = 1 - feedback.label;
      ++flipped;
    }
    Deliver(feedback, labeled.request);
    Flush();
  }

  void Flush(bool all = false) {
    for (size_t i = 0; i < pending.size();) {
      if (all || pending[i].due <= delivered) {
        const Pending p = pending[i];
        pending.erase(pending.begin() + static_cast<int64_t>(i));
        Deliver(p.feedback, p.request);
      } else {
        ++i;
      }
    }
  }
};

TEST_F(DriftSoakTest, FaultInjectedDriftSoakWithRollbackAndAdaptation) {
  constexpr int64_t kTotal = 10'512;  // chunk-aligned, >= the 10k floor
  constexpr int64_t kChunk = 8;
  const int64_t phase2_start = 2 * kTotal / 3;  // 7008
  const std::string base = TrainBaseCheckpoint("drift_soak_base.ckpt");
  const std::string doomed =
      WriteUntrainedCheckpoint(31, "drift_soak_doomed.ckpt");

  // Offline frozen baseline, BEFORE any serving: the gap between trained
  // and unseen domains is what the drift machinery must detect.
  const auto frozen = ModelFromCheckpoint(base);
  const double frozen_ab_auc = AucOn(frozen.get(), train_set_);
  const double frozen_c_auc = AucOn(frozen.get(), DomainSubset(kUnseenDomain));
  std::cerr << "[soak] frozen AUC: trained domains " << frozen_ab_auc
            << ", unseen domain " << frozen_c_auc << "\n";
  ASSERT_GT(frozen_ab_auc, 0.85);
  ASSERT_LT(frozen_c_auc, frozen_ab_auc - 0.1)
      << "corpus no longer exhibits an unseen-domain gap";

  serve::ServerOptions options;
  options.watchdog_period_nanos = 0;
  options.reload_backoff_initial_nanos = 100'000;
  options.model_factory = Factory(3);
  options.max_batch = 8;
  options.max_queue_depth = 4096;
  options.feedback_ring = 512;
  options.drift_window = 256;
  options.min_quality_samples = 64;
  options.min_domain_quality_samples = 16;
  // Midpoint of the measured frozen gap: healthy windows sit above it,
  // unseen-domain-flooded windows below.
  options.primary_min_auc = (frozen_ab_auc + frozen_c_auc) / 2.0;
  serve::Server server(std::make_unique<serve::InferenceSession>(
                           ModelFromCheckpoint(base), limits_, 1),
                       options);

  train::FaultInjector injector(7);
  injector.set_feedback_fault_probability(0.08);

  drift::OnlineAdapterOptions adapter_options;
  adapter_options.window = 512;
  adapter_options.min_samples = 256;
  adapter_options.epochs = 6;
  adapter_options.batch_size = 16;
  adapter_options.lr = 1e-3f;
  adapter_options.seed = 21;
  adapter_options.checkpoint_dir = ::testing::TempDir();
  drift::OnlineAdapter adapter(Factory(3), &corpus_, adapter_options);
  ASSERT_TRUE(adapter.WarmStart(base).ok());

  auto stream = drift::DriftStream::Create(&corpus_, SoakTrace(kTotal, 99));
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();

  FeedbackPipeline pipeline;
  pipeline.server = &server;
  pipeline.adapter = &adapter;
  pipeline.injector = &injector;

  int64_t ok_responses = 0;
  int64_t canary_responses = 0;
  bool canary_started = false;
  bool canary_rolled_back = false;
  int64_t first_degraded_index = -1;
  int64_t adapted_at_index = -1;

  for (int64_t index = 0; index < kTotal; index += kChunk) {
    if (!canary_started && index >= 5'000) {
      // Mid-drift canary of untrained weights: 30% slice, judged ONLY by
      // the labeled-feedback quality gate (the huge served-traffic window
      // keeps the error-rate monitor out of the way; the candidate is
      // error-clean anyway).
      serve::CanaryOptions canary;
      canary.percent = 30;
      canary.window = 1 << 20;
      canary.quality_window = 96;
      canary.max_auc_regression = 0.1;
      canary.min_quality_samples = 48;
      canary.min_domain_quality_samples = 16;
      ASSERT_TRUE(server.StartCanary("", doomed, canary).get().ok());
      canary_started = true;
    }
    if (adapted_at_index < 0 && first_degraded_index >= 0 &&
        index >= phase2_start + 1'200) {
      // React to the raised flag: fine-tune on the recent labeled window
      // and publish through the standard checkpoint + hot-reload path.
      const auto published = adapter.AdaptOnce("drift_soak_adapted.ckpt");
      ASSERT_TRUE(published.ok()) << published.status().ToString();
      ASSERT_TRUE(server.ReloadFromCheckpoint(published.value()).get().ok());
      // The reload barrier clears the stale window AND the flag: scores of
      // the replaced weights say nothing about the new ones.
      EXPECT_FALSE(server.Health().quality_degraded);
      adapted_at_index = index;
      std::cerr << "[soak] adapted + hot-reloaded at request " << index
                << " (window size " << adapter.size() << ")\n";
    }

    std::vector<drift::LabeledRequest> chunk;
    std::vector<std::future<StatusOr<serve::Prediction>>> futures;
    for (int64_t i = 0; i < kChunk; ++i) {
      chunk.push_back(stream.value().Next());
      futures.push_back(server.Submit(chunk.back().request));
    }
    for (int64_t i = 0; i < kChunk; ++i) {
      StatusOr<serve::Prediction> result = futures[static_cast<size_t>(i)].get();
      // ZERO dropped / failed in-flight requests across canary install,
      // rollback, and the adaptation reload.
      ASSERT_TRUE(result.ok())
          << "request " << index + i << ": " << result.status().ToString();
      ++ok_responses;
      if (result.value().canary) ++canary_responses;
      pipeline.Observe(chunk[static_cast<size_t>(i)], result.value());
    }

    if (canary_started && !canary_rolled_back) {
      const serve::HealthReport health = server.Health();
      if (health.models[0].canary.rollbacks > 0) {
        canary_rolled_back = true;
        std::cerr << "[soak] canary rolled back by request " << index + kChunk
                  << ": " << health.models[0].canary.last_event << "\n";
        EXPECT_LT(index, phase2_start)
            << "quality rollback should fire well before the phase shift";
      }
    }
    if (first_degraded_index < 0 && index >= phase2_start &&
        server.Health().quality_degraded) {
      first_degraded_index = index;
      std::cerr << "[soak] degraded-quality flag raised at request " << index
                << "\n";
    }
  }
  pipeline.Flush(/*all=*/true);

  EXPECT_EQ(ok_responses, kTotal);
  EXPECT_GT(canary_responses, 0);
  EXPECT_TRUE(canary_rolled_back);
  ASSERT_GE(first_degraded_index, phase2_start);
  ASSERT_GE(adapted_at_index, 0) << "adaptation never triggered";
  EXPECT_GT(injector.injected_feedback_faults(), 0);
  EXPECT_GT(pipeline.flipped, 0);
  EXPECT_GT(pipeline.dropped, 0);
  EXPECT_GT(pipeline.delayed, 0);

  const serve::HealthReport final_health = server.Health();
  std::cerr << "[soak] final windowed AUC " << final_health.models[0].quality.auc
            << " over " << final_health.models[0].quality.window_samples
            << " samples; feedback_recorded " << final_health.feedback_recorded
            << " (flipped " << pipeline.flipped << ", dropped "
            << pipeline.dropped << ", delayed " << pipeline.delayed << ")\n";
  ASSERT_EQ(final_health.models.size(), 1u);
  // The flag cleared at the adaptation reload and must STAY clear: the
  // adapted primary handles the post-shift mix.
  EXPECT_FALSE(final_health.quality_degraded);
  EXPECT_FALSE(final_health.models[0].quality.quality_degraded);
  EXPECT_TRUE(final_health.models[0].quality.auc_valid);
  EXPECT_GT(final_health.models[0].quality.auc, options.primary_min_auc);
  EXPECT_EQ(final_health.models[0].canary.rollbacks, 1);
  EXPECT_EQ(final_health.models[0].quality.quality_rollbacks, 1);
  EXPECT_FALSE(final_health.models[0].canary.active);
  EXPECT_EQ(final_health.feedback_recorded, pipeline.delivered);
  EXPECT_EQ(final_health.invalid_requests, 0);
  EXPECT_EQ(final_health.internal_errors, 0);

  // Adaptation recovery vs the frozen control, judged offline on the full
  // unseen-domain set: the fine-tuned replica must beat the frozen weights
  // by a real margin.
  const double adapted_c_auc =
      AucOn(adapter.model(), DomainSubset(kUnseenDomain));
  std::cerr << "[soak] unseen-domain AUC: frozen " << frozen_c_auc
            << " -> adapted " << adapted_c_auc << "\n";
  EXPECT_GT(adapted_c_auc, frozen_c_auc + 0.1);
  EXPECT_GT(adapted_c_auc, 0.75);

  server.Stop();
}

TEST_F(DriftSoakTest, SoakTrajectoryIsDeterministicUnderFixedSeed) {
  // Two independent servers, streams, and injectors built from the same
  // seeds must produce bitwise-identical responses and identical quality
  // telemetry — at ANY worker count / cache setting, which is how the CI
  // matrix runs this binary.
  const std::string base = TrainBaseCheckpoint("drift_det_base.ckpt");
  constexpr int64_t kRequests = 600;

  const auto run = [&](std::vector<float>* scores, int64_t* delivered,
                       double* final_auc) {
    serve::ServerOptions options;
    options.watchdog_period_nanos = 0;
    options.reload_backoff_initial_nanos = 100'000;
    options.model_factory = Factory(3);
    options.max_batch = 8;
    options.feedback_ring = 256;
    options.drift_window = 128;
    serve::Server server(std::make_unique<serve::InferenceSession>(
                             ModelFromCheckpoint(base), limits_, 1),
                         options);
    train::FaultInjector injector(13);
    injector.set_feedback_fault_probability(0.08);
    auto stream =
        drift::DriftStream::Create(&corpus_, SoakTrace(kRequests, 41));
    ASSERT_TRUE(stream.ok());
    FeedbackPipeline pipeline;
    pipeline.server = &server;
    pipeline.injector = &injector;
    for (int64_t index = 0; index < kRequests; index += 8) {
      std::vector<drift::LabeledRequest> chunk;
      std::vector<std::future<StatusOr<serve::Prediction>>> futures;
      for (int64_t i = 0; i < 8; ++i) {
        chunk.push_back(stream.value().Next());
        futures.push_back(server.Submit(chunk.back().request));
      }
      for (int64_t i = 0; i < 8; ++i) {
        StatusOr<serve::Prediction> result =
            futures[static_cast<size_t>(i)].get();
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        scores->push_back(result.value().p_fake);
        pipeline.Observe(chunk[static_cast<size_t>(i)], result.value());
      }
    }
    const serve::HealthReport health = server.Health();
    *delivered = health.feedback_recorded;
    *final_auc = health.models[0].quality.auc;
    server.Stop();
  };

  std::vector<float> scores_a, scores_b;
  int64_t delivered_a = 0, delivered_b = 0;
  double auc_a = 0.0, auc_b = 0.0;
  run(&scores_a, &delivered_a, &auc_a);
  run(&scores_b, &delivered_b, &auc_b);
  ASSERT_EQ(scores_a.size(), scores_b.size());
  for (size_t i = 0; i < scores_a.size(); ++i) {
    ASSERT_EQ(std::memcmp(&scores_a[i], &scores_b[i], sizeof(float)), 0)
        << "response " << i << " diverged";
  }
  EXPECT_EQ(delivered_a, delivered_b);
  EXPECT_EQ(std::memcmp(&auc_a, &auc_b, sizeof(double)), 0);
  EXPECT_GT(delivered_a, 0);
}

TEST_F(DriftSoakTest, SocketPathCarriesDriftTrafficAndQualityHealth) {
  const std::string base = TrainBaseCheckpoint("drift_sock_base.ckpt");
  serve::ServerOptions options;
  options.watchdog_period_nanos = 0;
  options.reload_backoff_initial_nanos = 100'000;
  options.model_factory = Factory(3);
  options.feedback_ring = 128;
  options.drift_window = 64;
  options.primary_min_auc = 0.6;
  options.min_quality_samples = 32;
  serve::Server server(std::make_unique<serve::InferenceSession>(
                           ModelFromCheckpoint(base), limits_, 1),
                       options);
  net::SocketServerOptions net_options;
  net_options.idle_timeout_ms = 60'000;
  net::SocketServer net(&server, net_options);
  ASSERT_TRUE(net.Start().ok());
  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", net.port()).ok());

  // A drift stream over the TRAINED domains drives the SOCKET path;
  // feedback closes the loop in-process (labels never ride the request
  // wire). The unseen domain stays out so the only degradation below is
  // the deliberate one.
  drift::DriftTraceConfig trace;
  trace.seed = 77;
  drift::DriftPhase p0;
  p0.start_index = 0;
  p0.domain_weights = {1.0, 1.0, 0.0};
  drift::DriftPhase p1;
  p1.start_index = 150;
  p1.domain_weights = {0.4, 1.0, 0.0};
  p1.fake_ratio = {-1.0, 0.8, -1.0};
  trace.phases = {p0, p1};
  auto stream = drift::DriftStream::Create(&corpus_, trace);
  ASSERT_TRUE(stream.ok());
  for (int64_t i = 0; i < 300; ++i) {
    const drift::LabeledRequest labeled = stream.value().Next();
    net::WireResponse response;
    const Status called = client.Call(static_cast<uint64_t>(i + 1), 0,
                                      labeled.request, &response);
    ASSERT_TRUE(called.ok()) << called.ToString();
    ASSERT_EQ(response.code, net::WireCode::kOk) << "request " << i;
    serve::Feedback feedback;
    feedback.domain = labeled.domain;
    feedback.p_fake = response.prediction.p_fake;
    feedback.label = labeled.label;
    ASSERT_TRUE(server.RecordFeedback(feedback).ok());
  }

  // The v2 health frame must mirror the in-process quality section.
  net::WireHealth health;
  ASSERT_TRUE(client.GetHealth(9'001, &health).ok());
  const serve::HealthReport direct = server.Health();
  EXPECT_EQ(health.feedback_recorded, direct.feedback_recorded);
  EXPECT_EQ(health.feedback_recorded, 300);
  EXPECT_EQ(health.quality_degraded, direct.quality_degraded);
  EXPECT_FALSE(health.quality_degraded);  // trained model, trained domains
  ASSERT_EQ(health.models.size(), 1u);
  EXPECT_EQ(health.models[0].feedback_total,
            direct.models[0].quality.feedback_total);
  EXPECT_EQ(health.models[0].quality_window_samples,
            direct.models[0].quality.window_samples);
  EXPECT_TRUE(health.models[0].quality_auc_valid);
  EXPECT_EQ(std::memcmp(&health.models[0].quality_auc,
                        &direct.models[0].quality.auc, sizeof(double)),
            0);

  // Degrade on purpose: inverted labels crater the windowed AUC, and the
  // raised flag must be visible END TO END through the wire.
  for (int64_t i = 0; i < 64; ++i) {
    serve::Feedback feedback;
    feedback.domain = static_cast<int>(i % 2);
    feedback.p_fake = i % 2 == 0 ? 0.9f : 0.1f;
    feedback.label = i % 2 == 0 ? 0 : 1;
    ASSERT_TRUE(server.RecordFeedback(feedback).ok());
  }
  net::WireHealth degraded;
  ASSERT_TRUE(client.GetHealth(9'002, &degraded).ok());
  EXPECT_TRUE(degraded.quality_degraded);
  ASSERT_EQ(degraded.models.size(), 1u);
  EXPECT_TRUE(degraded.models[0].quality_degraded);

  net.Stop();
  server.Stop();
}

}  // namespace
}  // namespace dtdbd
