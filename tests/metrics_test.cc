#include "metrics/metrics.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dtdbd::metrics {
namespace {

TEST(ConfusionTest, CountsAndRates) {
  // preds:  1 1 0 0 1 0
  // labels: 1 0 0 1 1 0
  Confusion c = CountConfusion({1, 1, 0, 0, 1, 0}, {1, 0, 0, 1, 1, 0});
  EXPECT_EQ(c.tp, 2);
  EXPECT_EQ(c.fp, 1);
  EXPECT_EQ(c.fn, 1);
  EXPECT_EQ(c.tn, 2);
  EXPECT_DOUBLE_EQ(c.Fnr(), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(c.Fpr(), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(c.Accuracy(), 4.0 / 6.0);
}

TEST(ConfusionTest, F1HandComputed) {
  Confusion c;
  c.tp = 8;
  c.fp = 2;
  c.fn = 4;
  c.tn = 6;
  const double precision = 8.0 / 10.0;
  const double recall = 8.0 / 12.0;
  EXPECT_DOUBLE_EQ(c.F1Positive(),
                   2 * precision * recall / (precision + recall));
  const double nprec = 6.0 / 10.0;
  const double nrec = 6.0 / 8.0;
  EXPECT_DOUBLE_EQ(c.F1Negative(), 2 * nprec * nrec / (nprec + nrec));
  EXPECT_DOUBLE_EQ(c.MacroF1(),
                   0.5 * (c.F1Positive() + c.F1Negative()));
}

TEST(ConfusionTest, EmptyDenominatorsAreZero) {
  Confusion c;  // all zero
  EXPECT_DOUBLE_EQ(c.Fnr(), 0.0);
  EXPECT_DOUBLE_EQ(c.Fpr(), 0.0);
  EXPECT_DOUBLE_EQ(c.F1Positive(), 0.0);
}

TEST(ConfusionTest, PerfectClassifier) {
  Confusion c = CountConfusion({1, 0, 1, 0}, {1, 0, 1, 0});
  EXPECT_DOUBLE_EQ(c.MacroF1(), 1.0);
  EXPECT_DOUBLE_EQ(c.Fnr(), 0.0);
  EXPECT_DOUBLE_EQ(c.Fpr(), 0.0);
}

TEST(EvaluateTest, UnbiasedClassifierHasZeroEqualityDifference) {
  // Same error rates in both domains -> FNED = FPED = 0.
  std::vector<int> preds, labels, domains;
  for (int d = 0; d < 2; ++d) {
    // Per domain: 2 fake (1 caught, 1 missed), 2 real (1 ok, 1 false pos).
    preds.insert(preds.end(), {1, 0, 0, 1});
    labels.insert(labels.end(), {1, 1, 0, 0});
    domains.insert(domains.end(), {d, d, d, d});
  }
  EvalReport report = Evaluate(preds, labels, domains, 2);
  EXPECT_NEAR(report.fned, 0.0, 1e-12);
  EXPECT_NEAR(report.fped, 0.0, 1e-12);
}

TEST(EvaluateTest, BiasedClassifierMeasuredPerEquation) {
  // Domain 0: FNR 0, FPR 1 (always predicts fake).
  // Domain 1: FNR 1, FPR 0 (always predicts real).
  std::vector<int> preds = {1, 1, 0, 0};
  std::vector<int> labels = {1, 0, 1, 0};
  std::vector<int> domains = {0, 0, 1, 1};
  EvalReport report = Evaluate(preds, labels, domains, 2);
  // Overall FNR = 0.5, FPR = 0.5.
  EXPECT_DOUBLE_EQ(report.overall.Fnr(), 0.5);
  EXPECT_DOUBLE_EQ(report.overall.Fpr(), 0.5);
  // FNED = |0.5-0| + |0.5-1| = 1; FPED likewise.
  EXPECT_DOUBLE_EQ(report.fned, 1.0);
  EXPECT_DOUBLE_EQ(report.fped, 1.0);
  EXPECT_DOUBLE_EQ(report.Total(), 2.0);
}

TEST(EvaluateTest, SampleOrderInvariance) {
  Rng rng(3);
  std::vector<int> preds, labels, domains;
  for (int i = 0; i < 200; ++i) {
    preds.push_back(rng.Bernoulli(0.4));
    labels.push_back(rng.Bernoulli(0.5));
    domains.push_back(static_cast<int>(rng.UniformInt(4)));
  }
  EvalReport a = Evaluate(preds, labels, domains, 4);
  // Shuffle consistently.
  std::vector<int> order(200);
  for (int i = 0; i < 200; ++i) order[i] = i;
  rng.Shuffle(&order);
  std::vector<int> p2, l2, d2;
  for (int i : order) {
    p2.push_back(preds[i]);
    l2.push_back(labels[i]);
    d2.push_back(domains[i]);
  }
  EvalReport b = Evaluate(p2, l2, d2, 4);
  EXPECT_DOUBLE_EQ(a.f1, b.f1);
  EXPECT_DOUBLE_EQ(a.fned, b.fned);
  EXPECT_DOUBLE_EQ(a.fped, b.fped);
}

TEST(EvaluateTest, EmptyDomainContributesNothing) {
  std::vector<int> preds = {1, 0};
  std::vector<int> labels = {1, 0};
  std::vector<int> domains = {0, 0};
  EvalReport report = Evaluate(preds, labels, domains, 3);
  EXPECT_DOUBLE_EQ(report.fned, 0.0);
  EXPECT_DOUBLE_EQ(report.fped, 0.0);
  EXPECT_EQ(report.per_domain[2].total(), 0);
}

TEST(EvaluateTest, PerDomainF1Computed) {
  std::vector<int> preds = {1, 0, 1, 1};
  std::vector<int> labels = {1, 0, 1, 0};
  std::vector<int> domains = {0, 0, 1, 1};
  EvalReport report = Evaluate(preds, labels, domains, 2);
  EXPECT_DOUBLE_EQ(report.domain_f1[0], 1.0);
  EXPECT_LT(report.domain_f1[1], 1.0);
}

TEST(EvaluateTest, MoreBiasedMeansLargerTotal) {
  // Gradually skew one domain's errors and confirm Total is monotone.
  auto total_for = [](int biased_fp) {
    std::vector<int> preds, labels, domains;
    for (int d = 0; d < 2; ++d) {
      for (int i = 0; i < 10; ++i) {
        labels.push_back(i < 5 ? 1 : 0);
        const bool flip = d == 1 && i >= 5 && (i - 5) < biased_fp;
        preds.push_back(flip ? 1 : labels.back());
        domains.push_back(d);
      }
    }
    return Evaluate(preds, labels, domains, 2).Total();
  };
  EXPECT_LT(total_for(0), total_for(2));
  EXPECT_LT(total_for(2), total_for(4));
}

TEST(EvaluateDeathTest, SizeMismatch) {
  EXPECT_DEATH(Evaluate({1}, {1, 0}, {0, 0}, 1), "");
  EXPECT_DEATH(Evaluate({1}, {1}, {5}, 2), "");
}

TEST(AucTest, PerfectRankingIsOne) {
  EXPECT_DOUBLE_EQ(Auc({0.9f, 0.8f, 0.2f, 0.1f}, {1, 1, 0, 0}), 1.0);
}

TEST(AucTest, ReversedRankingIsZero) {
  EXPECT_DOUBLE_EQ(Auc({0.1f, 0.2f, 0.8f, 0.9f}, {1, 1, 0, 0}), 0.0);
}

TEST(AucTest, TiedScoresCountHalf) {
  // All scores equal: every positive/negative pair is a tie -> AUC 0.5.
  EXPECT_DOUBLE_EQ(Auc({0.5f, 0.5f, 0.5f, 0.5f}, {1, 0, 1, 0}), 0.5);
}

TEST(AucTest, HandComputedMixedRanking) {
  // Sorted: 0.1(neg) 0.3(pos) 0.6(neg) 0.8(pos).
  // Pairs: (0.3 vs 0.1)=1, (0.3 vs 0.6)=0, (0.8 vs both)=2 -> 3/4.
  EXPECT_DOUBLE_EQ(Auc({0.3f, 0.8f, 0.1f, 0.6f}, {1, 1, 0, 0}), 0.75);
}

// ----- degenerate inputs must yield 0, never NaN -----

TEST(AucTest, DegenerateInputsReturnZeroNotNan) {
  EXPECT_DOUBLE_EQ(Auc({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(Auc({0.4f, 0.6f}, {1, 1}), 0.0);  // all positive
  EXPECT_DOUBLE_EQ(Auc({0.4f, 0.6f}, {0, 0}), 0.0);  // all negative
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_DOUBLE_EQ(Auc({0.4f, nan}, {1, 0}), 0.0);
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_DOUBLE_EQ(Auc({0.4f, inf}, {1, 0}), 0.0);
}

TEST(EvaluateTest, SingleClassDomainProducesFiniteMetrics) {
  // Domain 0 is all-fake, domain 1 all-real, domain 2 mixed. Every reported
  // number must be finite (Table 6/7 output must never show NaN).
  std::vector<int> preds = {1, 0, 0, 0, 1, 0};
  std::vector<int> labels = {1, 1, 0, 0, 1, 0};
  std::vector<int> domains = {0, 0, 1, 1, 2, 2};
  std::vector<float> scores = {0.9f, 0.4f, 0.3f, 0.2f, 0.8f, 0.1f};
  EvalReport report = Evaluate(preds, labels, domains, 3, scores);
  EXPECT_TRUE(std::isfinite(report.f1));
  EXPECT_TRUE(std::isfinite(report.auc));
  EXPECT_TRUE(std::isfinite(report.fned));
  EXPECT_TRUE(std::isfinite(report.fped));
  ASSERT_EQ(report.domain_f1.size(), 3u);
  ASSERT_EQ(report.domain_auc.size(), 3u);
  for (int d = 0; d < 3; ++d) {
    EXPECT_TRUE(std::isfinite(report.domain_f1[d])) << "domain " << d;
    EXPECT_TRUE(std::isfinite(report.domain_auc[d])) << "domain " << d;
  }
  // Single-class domains get AUC 0 by convention; the mixed one is real.
  EXPECT_DOUBLE_EQ(report.domain_auc[0], 0.0);
  EXPECT_DOUBLE_EQ(report.domain_auc[1], 0.0);
  EXPECT_DOUBLE_EQ(report.domain_auc[2], 1.0);
}

TEST(EvaluateTest, EmptyDomainProducesFiniteMetrics) {
  std::vector<int> preds = {1, 0, 1, 0};
  std::vector<int> labels = {1, 0, 1, 0};
  std::vector<int> domains = {0, 0, 0, 0};
  std::vector<float> scores = {0.8f, 0.2f, 0.7f, 0.3f};
  // Domains 1 and 2 have no samples at all.
  EvalReport report = Evaluate(preds, labels, domains, 3, scores);
  for (int d = 0; d < 3; ++d) {
    EXPECT_TRUE(std::isfinite(report.domain_f1[d])) << "domain " << d;
    EXPECT_TRUE(std::isfinite(report.domain_auc[d])) << "domain " << d;
  }
  EXPECT_DOUBLE_EQ(report.domain_auc[0], 1.0);
  EXPECT_DOUBLE_EQ(report.domain_auc[1], 0.0);
  EXPECT_DOUBLE_EQ(report.domain_auc[2], 0.0);
  EXPECT_TRUE(std::isfinite(report.Total()));
  // Summary string itself must not contain "nan".
  EXPECT_EQ(report.Summary().find("nan"), std::string::npos);
}

TEST(EvaluateTest, AucMatchesStandaloneComputation) {
  std::vector<int> preds = {1, 0, 1, 0, 1, 0};
  std::vector<int> labels = {1, 0, 0, 1, 1, 0};
  std::vector<int> domains = {0, 0, 0, 1, 1, 1};
  std::vector<float> scores = {0.7f, 0.2f, 0.6f, 0.4f, 0.9f, 0.3f};
  EvalReport report = Evaluate(preds, labels, domains, 2, scores);
  EXPECT_DOUBLE_EQ(report.auc, Auc(scores, labels));
}

TEST(ConfusionTest, PrecisionRecallAccessors) {
  Confusion c;
  c.tp = 8;
  c.fp = 2;
  c.fn = 4;
  c.tn = 6;
  EXPECT_DOUBLE_EQ(c.Precision(), 0.8);
  EXPECT_DOUBLE_EQ(c.Recall(), 8.0 / 12.0);
  Confusion empty;
  EXPECT_DOUBLE_EQ(empty.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(empty.Recall(), 0.0);
}

}  // namespace
}  // namespace dtdbd::metrics
