#include "serve/server.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <future>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/flags.h"
#include "common/thread_pool.h"
#include "data/generator.h"
#include "dtdbd/trainer.h"
#include "models/model.h"
#include "serve/session.h"
#include "serve/validation.h"
#include "tensor/ops.h"
#include "tensor/optim.h"
#include "tensor/registry.h"
#include "tensor/tensor.h"
#include "text/features.h"
#include "text/frozen_encoder.h"
#include "train/checkpoint.h"
#include "train/fault_injector.h"

namespace dtdbd::serve {
namespace {

class ServeTest : public ::testing::Test {
 protected:
  ServeTest() {
    dataset_ = data::GenerateCorpus(data::MicroConfig(17));
    encoder_ = std::make_unique<text::FrozenEncoder>(dataset_.vocab->size(),
                                                     16, 5);
    config_.vocab_size = dataset_.vocab->size();
    config_.num_domains = dataset_.num_domains();
    config_.encoder = encoder_.get();
    config_.embed_dim = 12;
    config_.hidden_dim = 16;
    config_.conv_channels = 8;
    config_.rnn_hidden = 8;
    config_.num_experts = 3;
    config_.seed = 3;
    limits_.vocab_size = config_.vocab_size;
    limits_.num_domains = config_.num_domains;
    limits_.seq_len = dataset_.seq_len;
  }

  models::ModelConfig ConfigWithSeed(uint64_t seed) const {
    models::ModelConfig c = config_;
    c.seed = seed;
    return c;
  }

  InferenceRequest RequestFor(const data::NewsSample& sample) const {
    InferenceRequest request;
    request.tokens = sample.tokens;
    request.domain = sample.domain;
    request.style = sample.style;
    request.emotion = sample.emotion;
    return request;
  }

  InferenceRequest ValidRequest() const {
    return RequestFor(dataset_.samples[0]);
  }

  std::unique_ptr<InferenceSession> MakeSession(const std::string& name,
                                                uint64_t seed,
                                                int64_t version = 1) const {
    return std::make_unique<InferenceSession>(
        models::CreateModel(name, ConfigWithSeed(seed)), limits_, version);
  }

  // Writes a servable v2 checkpoint whose parameters come from a fresh
  // seed-`seed` model (a stand-in for "newly trained weights").
  std::string WriteCheckpoint(const std::string& name, uint64_t seed,
                              const std::string& filename) const {
    auto model = models::CreateModel(name, ConfigWithSeed(seed));
    std::vector<tensor::Tensor> trainable;
    for (auto& p : model->Parameters()) {
      if (p.requires_grad()) trainable.push_back(p);
    }
    tensor::Adam adam(trainable, 1e-3f, 0.9f, 0.999f, 1e-8f, 0.0f);
    data::DataLoader loader(&dataset_, 8, /*shuffle=*/false, 0);
    std::vector<Rng*> rngs;
    model->CollectRngs(&rngs);
    const train::CheckpointState state = train::CaptureState(
        "supervised", 0, model->NamedParameters(), adam, rngs, loader);
    const std::string path = ::testing::TempDir() + filename;
    const Status saved = train::SaveCheckpoint(state, path);
    EXPECT_TRUE(saved.ok()) << saved.ToString();
    return path;
  }

  ServerOptions BaseOptions(uint64_t factory_seed = 3) {
    ServerOptions options;
    options.watchdog_period_nanos = 0;  // most tests poll Health() directly
    options.reload_backoff_initial_nanos = 100'000;  // keep retries fast
    options.model_factory = [this, factory_seed] {
      return models::CreateModel("MDFEND", ConfigWithSeed(factory_seed));
    };
    return options;
  }

  data::NewsDataset dataset_;
  std::unique_ptr<text::FrozenEncoder> encoder_;
  models::ModelConfig config_;
  RequestLimits limits_;
};

// ----- Validation taxonomy -----

TEST_F(ServeTest, ValidRequestPasses) {
  EXPECT_TRUE(ValidateRequest(ValidRequest(), limits_).ok());
  // Short sequences and absent features are legal (padded / zero-filled).
  InferenceRequest r = ValidRequest();
  r.tokens.resize(3);
  r.style.clear();
  r.emotion.clear();
  EXPECT_TRUE(ValidateRequest(r, limits_).ok());
}

TEST_F(ServeTest, ValidationRejectsEachMalformation) {
  struct Case {
    const char* label;
    std::function<void(InferenceRequest*)> corrupt;
  };
  const std::vector<Case> cases = {
      {"empty tokens", [](InferenceRequest* r) { r->tokens.clear(); }},
      {"over length",
       [this](InferenceRequest* r) {
         r->tokens.assign(static_cast<size_t>(limits_.seq_len) + 1, 1);
       }},
      {"token too large",
       [this](InferenceRequest* r) { r->tokens[0] = limits_.vocab_size; }},
      {"negative token", [](InferenceRequest* r) { r->tokens[0] = -1; }},
      {"domain too large",
       [this](InferenceRequest* r) { r->domain = limits_.num_domains; }},
      {"negative domain", [](InferenceRequest* r) { r->domain = -1; }},
      {"style wrong dim", [](InferenceRequest* r) { r->style.push_back(0); }},
      {"style NaN",
       [](InferenceRequest* r) {
         r->style[2] = std::numeric_limits<float>::quiet_NaN();
       }},
      {"emotion inf",
       [](InferenceRequest* r) {
         r->emotion[0] = std::numeric_limits<float>::infinity();
       }},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.label);
    InferenceRequest r = ValidRequest();
    c.corrupt(&r);
    const Status status = ValidateRequest(r, limits_);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_FALSE(status.message().empty());
  }
}

TEST_F(ServeTest, UnconfiguredLimitsAreFailedPrecondition) {
  EXPECT_EQ(ValidateRequest(ValidRequest(), RequestLimits{}).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ServeTest, SessionReturnsTypedErrorNotCrashOnHostileTokens) {
  auto session = MakeSession("MDFEND", 3);
  InferenceRequest r = ValidRequest();
  r.tokens[0] = limits_.vocab_size + 12345;  // would be UB at the gather
  const auto result = session->Predict(r);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ServeTest, CreateModelOrRejectsUnknownName) {
  EXPECT_TRUE(models::CreateModelOr("MDFEND", config_).ok());
  const auto bad = models::CreateModelOr("NoSuchModel", config_);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

// ----- Bitwise parity with the offline evaluator -----

TEST_F(ServeTest, SessionMatchesOfflineEvaluatorBitwise) {
  // PredictFakeProbability runs batched (64) forwards over the same model
  // instance the session owns; per-row eval kernels must agree exactly.
  for (const char* name : {"MDFEND", "TextCNN", "BERT", "M3FEND"}) {
    SCOPED_TRACE(name);
    auto session = MakeSession(name, 3);
    data::NewsDataset subset = dataset_;
    subset.samples.resize(96);
    const std::vector<float> reference =
        PredictFakeProbability(session->model(), subset, 64);
    ASSERT_EQ(reference.size(), subset.samples.size());
    for (size_t i = 0; i < subset.samples.size(); ++i) {
      const auto result = session->Predict(RequestFor(subset.samples[i]));
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(result.value().p_fake, reference[i]) << "sample " << i;
    }
  }
}

// ----- No-graph fast path -----

TEST_F(ServeTest, ServingRecordsZeroGraphNodes) {
  auto session = MakeSession("MDFEND", 3);
  tensor::SetOpProfiling(true);
  tensor::ResetOpStats();
  ASSERT_TRUE(session->Predict(ValidRequest()).ok());
  const tensor::OpStats serving = tensor::TotalOpStats();
  EXPECT_GT(serving.nodes, 0u);           // ops did run...
  EXPECT_EQ(serving.graph_recorded, 0u);  // ...but none joined the graph

  // The same model in a training forward does record graph nodes.
  tensor::ResetOpStats();
  const data::Batch batch = data::MakeBatch(dataset_, {0, 1, 2, 3});
  session->model()->Forward(batch, /*training=*/true);
  EXPECT_GT(tensor::TotalOpStats().graph_recorded, 0u);
  tensor::SetOpProfiling(false);
}

TEST_F(ServeTest, NoGradGuardIsReentrant) {
  EXPECT_TRUE(tensor::GradEnabled());
  {
    tensor::NoGradGuard outer;
    EXPECT_FALSE(tensor::GradEnabled());
    {
      tensor::NoGradGuard inner;
      EXPECT_FALSE(tensor::GradEnabled());
    }
    // Inner guard must restore "disabled", not blindly re-enable.
    EXPECT_FALSE(tensor::GradEnabled());
  }
  EXPECT_TRUE(tensor::GradEnabled());
}

TEST_F(ServeTest, DropoutEvalIsTrueIdentity) {
  Rng rng(5);
  tensor::Tensor x =
      tensor::Tensor::FromData({2, 3}, {1.f, -2.f, 3.f, 0.f, 4.f, -5.f});
  const tensor::Tensor y = tensor::Dropout(x, 0.5, &rng, /*training=*/false);
  // Identity: the exact same storage comes back, not a scaled/masked copy.
  EXPECT_EQ(y.data().data(), x.data().data());
  // And the RNG stream was not consumed (bitwise-resume contract).
  Rng fresh(5);
  EXPECT_EQ(rng.Next(), fresh.Next());
  // p == 0 in training mode is equally free.
  const tensor::Tensor z = tensor::Dropout(x, 0.0, &rng, /*training=*/true);
  EXPECT_EQ(z.data().data(), x.data().data());
}

// ----- Server: queueing, deadlines, admission -----

TEST_F(ServeTest, ServerServesLikeSession) {
  auto reference = MakeSession("MDFEND", 3);
  Server server(MakeSession("MDFEND", 3), BaseOptions());
  for (int i = 0; i < 8; ++i) {
    const InferenceRequest request = RequestFor(dataset_.samples[i]);
    const auto served = server.Predict(request);
    const auto expected = reference->Predict(request);
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    EXPECT_EQ(served.value().p_fake, expected.value().p_fake);
    EXPECT_EQ(served.value().model_version, 1);
  }
  const HealthReport health = server.Health();
  EXPECT_EQ(health.submitted, 8);
  EXPECT_EQ(health.served_ok, 8);
  EXPECT_EQ(health.invalid_requests, 0);
  EXPECT_GT(health.latency_samples, 0);
  EXPECT_GE(health.p99_latency_ms, health.p50_latency_ms);
}

TEST_F(ServeTest, ServerCountsInvalidRequests) {
  Server server(MakeSession("MDFEND", 3), BaseOptions());
  InferenceRequest bad = ValidRequest();
  bad.tokens[0] = -7;
  const auto result = server.Predict(bad);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(server.Health().invalid_requests, 1);
  EXPECT_EQ(server.Health().served_ok, 0);
}

TEST_F(ServeTest, ExpiredDeadlineIsShedWithTypedStatus) {
  ManualClock clock;
  clock.Set(1'000'000);
  ServerOptions options = BaseOptions();
  options.clock = &clock;
  Server server(MakeSession("MDFEND", 3), options);
  // Already past its deadline when the worker dequeues it.
  auto shed = server.Submit(ValidRequest(), /*deadline_nanos=*/500'000);
  const auto result = shed.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  // A deadline still in the future is served normally.
  EXPECT_TRUE(server.Submit(ValidRequest(), 2'000'000).get().ok());
  const HealthReport health = server.Health();
  EXPECT_EQ(health.shed_deadline, 1);
  EXPECT_EQ(health.served_ok, 1);
}

TEST_F(ServeTest, AdmissionControlRejectsWhenQueueFull) {
  train::FaultInjector injector(7);
  injector.set_slow_load_nanos(200'000'000);  // pin the worker for 200 ms
  ServerOptions options = BaseOptions();
  options.max_queue_depth = 2;
  options.reload_max_attempts = 1;
  options.fault_injector = &injector;
  Server server(MakeSession("MDFEND", 3), options);

  // The reload (a control job, immune to the depth limit) occupies the
  // worker; inference requests pile up behind it.
  auto reload = server.ReloadFromCheckpoint("/nonexistent/checkpoint.bin");
  auto first = server.Submit(ValidRequest());
  auto second = server.Submit(ValidRequest());
  auto rejected = server.Submit(ValidRequest());
  const auto rejection = rejected.get();  // resolved immediately
  ASSERT_FALSE(rejection.ok());
  EXPECT_EQ(rejection.status().code(), StatusCode::kResourceExhausted);

  // Queued work survives the overload and the failed reload.
  EXPECT_TRUE(first.get().ok());
  EXPECT_TRUE(second.get().ok());
  EXPECT_FALSE(reload.get().ok());
  const HealthReport health = server.Health();
  EXPECT_EQ(health.rejected_queue_full, 1);
  EXPECT_EQ(health.served_ok, 2);
  EXPECT_TRUE(health.degraded);
}

TEST_F(ServeTest, StopFailsPendingWithUnavailable) {
  train::FaultInjector injector(7);
  injector.set_slow_load_nanos(100'000'000);
  ServerOptions options = BaseOptions();
  options.reload_max_attempts = 1;
  options.fault_injector = &injector;
  Server server(MakeSession("MDFEND", 3), options);
  auto reload = server.ReloadFromCheckpoint("/nonexistent/checkpoint.bin");
  auto pending = server.Submit(ValidRequest());
  server.Stop();
  const auto result = pending.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  // Post-stop submissions are rejected up front.
  const auto after = server.Submit(ValidRequest()).get();
  EXPECT_EQ(after.status().code(), StatusCode::kUnavailable);
  EXPECT_FALSE(reload.get().ok());
}

// ----- Hot-reload state machine -----

TEST_F(ServeTest, HotReloadSwapsModelAndBumpsVersion) {
  const std::string path =
      WriteCheckpoint("MDFEND", /*seed=*/99, "reload_good.ckpt");
  Server server(MakeSession("MDFEND", 3), BaseOptions());
  const InferenceRequest request = ValidRequest();
  const float before = server.Predict(request).value().p_fake;

  const Status reloaded = server.ReloadFromCheckpoint(path).get();
  ASSERT_TRUE(reloaded.ok()) << reloaded.ToString();
  EXPECT_EQ(server.model_version(), 2);
  EXPECT_FALSE(server.degraded());

  const Prediction after = server.Predict(request).value();
  EXPECT_EQ(after.model_version, 2);
  EXPECT_NE(after.p_fake, before);
  // The swapped-in weights serve exactly like a fresh seed-99 model.
  const auto reference = MakeSession("MDFEND", 99, 2)->Predict(request);
  EXPECT_EQ(after.p_fake, reference.value().p_fake);
}

TEST_F(ServeTest, ReloadRetriesThroughTransientFailure) {
  const std::string path =
      WriteCheckpoint("MDFEND", /*seed=*/99, "reload_retry.ckpt");
  train::FaultInjector injector(7);
  injector.ScheduleLoadFailures(1);  // first attempt fails, second succeeds
  ServerOptions options = BaseOptions();
  options.reload_max_attempts = 3;
  options.fault_injector = &injector;
  Server server(MakeSession("MDFEND", 3), options);
  ASSERT_TRUE(server.ReloadFromCheckpoint(path).get().ok());
  EXPECT_EQ(injector.injected_load_failures(), 1);
  EXPECT_FALSE(server.degraded());
  const HealthReport health = server.Health();
  EXPECT_EQ(health.reload_attempts, 2);
  EXPECT_EQ(health.reload_failures, 1);
  EXPECT_EQ(health.reload_successes, 1);
  EXPECT_EQ(server.model_version(), 2);
}

TEST_F(ServeTest, ExhaustedReloadDegradesButKeepsServing) {
  const std::string path =
      WriteCheckpoint("MDFEND", /*seed=*/99, "reload_degraded.ckpt");
  train::FaultInjector injector(7);
  injector.ScheduleLoadFailures(3);  // every attempt fails
  ServerOptions options = BaseOptions();
  options.reload_max_attempts = 3;
  options.fault_injector = &injector;
  Server server(MakeSession("MDFEND", 3), options);

  const InferenceRequest request = ValidRequest();
  const float before = server.Predict(request).value().p_fake;
  const Status failed = server.ReloadFromCheckpoint(path).get();
  ASSERT_FALSE(failed.ok());

  // Degraded, on the last-good model, and still answering correctly.
  EXPECT_TRUE(server.degraded());
  EXPECT_EQ(server.model_version(), 1);
  HealthReport health = server.Health();
  EXPECT_TRUE(health.degraded);
  EXPECT_NE(health.last_reload_error.find("injected"), std::string::npos);
  EXPECT_EQ(health.reload_failures, 3);
  const auto still = server.Predict(request);
  ASSERT_TRUE(still.ok());
  EXPECT_EQ(still.value().p_fake, before);
  EXPECT_EQ(still.value().model_version, 1);

  // A later successful reload clears the degraded state.
  ASSERT_TRUE(server.ReloadFromCheckpoint(path).get().ok());
  EXPECT_FALSE(server.degraded());
  EXPECT_EQ(server.model_version(), 2);
  EXPECT_TRUE(server.Health().last_reload_error.empty());
}

TEST_F(ServeTest, ReloadRejectsMismatchedCheckpoint) {
  // A checkpoint from a different architecture must not half-overwrite the
  // live model: the restore happens into a throwaway instance.
  const std::string path =
      WriteCheckpoint("TextCNN", /*seed=*/5, "reload_mismatch.ckpt");
  Server server(MakeSession("MDFEND", 3), BaseOptions());
  const InferenceRequest request = ValidRequest();
  const float before = server.Predict(request).value().p_fake;
  EXPECT_FALSE(server.ReloadFromCheckpoint(path).get().ok());
  EXPECT_TRUE(server.degraded());
  EXPECT_EQ(server.model_version(), 1);
  EXPECT_EQ(server.Predict(request).value().p_fake, before);
}

TEST_F(ServeTest, ReloadWithoutFactoryIsFailedPrecondition) {
  ServerOptions options = BaseOptions();
  options.model_factory = nullptr;
  options.reload_max_attempts = 1;
  Server server(MakeSession("MDFEND", 3), options);
  const Status status = server.ReloadFromCheckpoint("/anything").get();
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

// ----- Micro-batching: bitwise parity -----

TEST_F(ServeTest, PredictBatchMatchesBatchOfOneBitwiseAcrossZooAndThreads) {
  // The batching contract from DESIGN.md §9.5: for EVERY model in the zoo,
  // each element of a batch-of-N forward is bitwise identical to the
  // batch-of-one answer and to the offline evaluator, at every kernel
  // thread count. The reference is computed once at 1 thread; every other
  // configuration must reproduce it exactly.
  constexpr size_t kBatch = 24;
  std::vector<InferenceRequest> requests;
  std::vector<const InferenceRequest*> pointers;
  for (size_t i = 0; i < kBatch; ++i) {
    requests.push_back(RequestFor(dataset_.samples[i]));
  }
  for (const InferenceRequest& r : requests) pointers.push_back(&r);

  data::NewsDataset subset = dataset_;
  subset.samples.resize(kBatch);

  const int prev_threads = GetNumThreads();
  for (const std::string& name : models::AllModelNames()) {
    SCOPED_TRACE(name);
    SetNumThreads(1);
    auto session = MakeSession(name, 3);
    const std::vector<float> reference =
        PredictFakeProbability(session->model(), subset, 64);
    ASSERT_EQ(reference.size(), kBatch);

    for (const int threads : {1, 2, 4, 8}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      SetNumThreads(threads);
      const auto batched = session->PredictBatch(pointers);
      ASSERT_EQ(batched.size(), kBatch);
      for (size_t i = 0; i < kBatch; ++i) {
        ASSERT_TRUE(batched[i].ok()) << batched[i].status().ToString();
        EXPECT_EQ(batched[i].value().p_fake, reference[i]) << "sample " << i;
        const auto single = session->Predict(requests[i]);
        ASSERT_TRUE(single.ok());
        EXPECT_EQ(batched[i].value().p_fake, single.value().p_fake)
            << "sample " << i;
      }
    }
  }
  SetNumThreads(prev_threads);
}

TEST_F(ServeTest, PredictBatchIsolatesPerElementFailures) {
  auto session = MakeSession("MDFEND", 3);
  std::vector<InferenceRequest> requests;
  for (int i = 0; i < 5; ++i) {
    requests.push_back(RequestFor(dataset_.samples[static_cast<size_t>(i)]));
  }
  requests[1].tokens[0] = -9;                     // invalid
  requests[3].domain = limits_.num_domains + 4;   // invalid
  std::vector<const InferenceRequest*> pointers;
  for (const InferenceRequest& r : requests) pointers.push_back(&r);

  const auto results = session->PredictBatch(pointers);
  ASSERT_EQ(results.size(), requests.size());
  for (const size_t bad : {size_t{1}, size_t{3}}) {
    ASSERT_FALSE(results[bad].ok());
    EXPECT_EQ(results[bad].status().code(), StatusCode::kInvalidArgument);
  }
  for (const size_t good : {size_t{0}, size_t{2}, size_t{4}}) {
    ASSERT_TRUE(results[good].ok()) << results[good].status().ToString();
    EXPECT_EQ(results[good].value().p_fake,
              session->Predict(requests[good]).value().p_fake);
  }
}

TEST_F(ServeTest, BatchedMultiWorkerServerMatchesSessionBitwise) {
  // Concurrent clients against a 2-worker batching server: every answer
  // must equal the serial single-request reference, and the batching
  // telemetry must be internally consistent.
  constexpr int kClients = 8;
  constexpr int kPerClient = 25;
  auto reference = MakeSession("MDFEND", 3);
  std::vector<float> expected;
  for (int i = 0; i < kClients * kPerClient; ++i) {
    const auto r = reference->Predict(RequestFor(
        dataset_.samples[static_cast<size_t>(i) % dataset_.samples.size()]));
    ASSERT_TRUE(r.ok());
    expected.push_back(r.value().p_fake);
  }

  ServerOptions options = BaseOptions();
  options.num_workers = 2;
  options.max_batch = 8;
  options.max_queue_depth = 128;
  Server server(MakeSession("MDFEND", 3), options);
  EXPECT_EQ(server.num_workers(), 2);
  EXPECT_EQ(server.max_batch(), 8);

  std::atomic<int> next{0};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (;;) {
        const int i = next.fetch_add(1);
        if (i >= kClients * kPerClient) return;
        const auto served = server.Predict(RequestFor(
            dataset_.samples[static_cast<size_t>(i) %
                             dataset_.samples.size()]));
        if (!served.ok() ||
            served.value().p_fake != expected[static_cast<size_t>(i)]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  const HealthReport health = server.Health();
  EXPECT_EQ(health.served_ok, kClients * kPerClient);
  EXPECT_EQ(health.num_workers, 2);
  EXPECT_EQ(health.max_batch, 8);
  ASSERT_EQ(health.batch_size_histogram.size(), 9u);
  int64_t hist_batches = 0, hist_elements = 0;
  for (size_t s = 1; s < health.batch_size_histogram.size(); ++s) {
    hist_batches += health.batch_size_histogram[s];
    hist_elements += health.batch_size_histogram[s] * static_cast<int64_t>(s);
  }
  EXPECT_EQ(hist_batches, health.batches_run);
  // Requests answered from the prediction cache or fanned from a dedup
  // group never run a forward, so they are absent from the histogram by
  // design. With caching off (the default) both subtrahends are zero and
  // this is the exact pre-cache assertion.
  EXPECT_EQ(hist_elements,
            kClients * kPerClient - health.cache_hits - health.deduped);
  EXPECT_GE(health.avg_batch_size, 1.0);
  EXPECT_GE(health.compute_ms_total, 0.0);
  EXPECT_GE(health.queue_wait_ms_total, 0.0);
}

// ----- Micro-batching: deadlines and shutdown -----

TEST_F(ServeTest, SingleRequestIsNeverHeldForBatchFill) {
  // Fill window is zero: with max_batch=16 and no other traffic, a lone
  // request runs immediately as a batch of one rather than waiting for
  // companions that will never arrive.
  ServerOptions options = BaseOptions();
  options.num_workers = 1;
  options.max_batch = 16;
  Server server(MakeSession("MDFEND", 3), options);
  auto pending = server.Submit(ValidRequest());
  ASSERT_EQ(pending.wait_for(std::chrono::seconds(30)),
            std::future_status::ready);
  EXPECT_TRUE(pending.get().ok());
  const HealthReport health = server.Health();
  EXPECT_EQ(health.batches_run, 1);
  ASSERT_GT(health.batch_size_histogram.size(), 1u);
  EXPECT_EQ(health.batch_size_histogram[1], 1);
}

TEST_F(ServeTest, ExpiredElementIsShedFromCoalescedBatchAtDequeue) {
  // Pin the single worker with a slow reload so three requests queue up,
  // one already past its deadline. When the worker drains them it must
  // coalesce all three, shed the expired element, and serve the two live
  // ones in ONE batch — proving the deadline check happens per element at
  // dequeue and batching never delays it.
  ManualClock clock;
  clock.Set(1'000'000);
  train::FaultInjector injector(7);
  injector.set_slow_load_nanos(200'000'000);
  ServerOptions options = BaseOptions();
  options.clock = &clock;
  options.num_workers = 1;
  options.max_batch = 16;
  options.reload_max_attempts = 1;
  options.fault_injector = &injector;
  Server server(MakeSession("MDFEND", 3), options);

  auto reload = server.ReloadFromCheckpoint("/nonexistent/checkpoint.bin");
  auto expired = server.Submit(ValidRequest(), /*deadline_nanos=*/500'000);
  auto live_a = server.Submit(ValidRequest(), /*deadline_nanos=*/0);
  auto live_b = server.Submit(ValidRequest(), /*deadline_nanos=*/0);

  const auto shed = expired.get();
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(live_a.get().ok());
  EXPECT_TRUE(live_b.get().ok());
  EXPECT_FALSE(reload.get().ok());

  const HealthReport health = server.Health();
  EXPECT_EQ(health.shed_deadline, 1);
  EXPECT_EQ(health.served_ok, 2);
  EXPECT_EQ(health.batches_run, 1);
  ASSERT_GT(health.batch_size_histogram.size(), 2u);
  EXPECT_EQ(health.batch_size_histogram[2], 1);
}

TEST_F(ServeTest, StopFailsQueuedUncoalescedRequestsUnderMultiWorker) {
  // Regression: with N workers, requests queued behind a reload barrier
  // have not been coalesced into any batch when Stop() lands. Every one of
  // them must resolve kUnavailable — none may hang or be dropped.
  train::FaultInjector injector(7);
  injector.set_slow_load_nanos(200'000'000);
  ServerOptions options = BaseOptions();
  options.num_workers = 4;
  options.max_batch = 4;
  options.reload_max_attempts = 1;
  options.fault_injector = &injector;
  Server server(MakeSession("MDFEND", 3), options);

  auto reload = server.ReloadFromCheckpoint("/nonexistent/checkpoint.bin");
  std::vector<std::future<StatusOr<Prediction>>> pending;
  for (int i = 0; i < 6; ++i) {
    pending.push_back(server.Submit(ValidRequest()));
  }
  server.Stop();
  for (auto& f : pending) {
    const auto result = f.get();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  }
  EXPECT_FALSE(reload.get().ok());
  EXPECT_EQ(server.Health().served_ok, 0);
}

// ----- Serving knobs: strict flag / env resolution -----

// Save/restore DTDBD_SERVE_WORKERS around a test (mirrors the
// DTDBD_NUM_THREADS helper in thread_pool_test).
class ScopedServeWorkersEnv {
 public:
  ScopedServeWorkersEnv() {
    const char* old = std::getenv("DTDBD_SERVE_WORKERS");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
  }
  ~ScopedServeWorkersEnv() {
    if (had_old_) {
      setenv("DTDBD_SERVE_WORKERS", old_.c_str(), 1);
    } else {
      unsetenv("DTDBD_SERVE_WORKERS");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

template <typename Fn>
int WithFlags(std::vector<std::string> args, Fn fn) {
  args.insert(args.begin(), "serve_test");
  std::vector<char*> argv;
  for (std::string& a : args) argv.push_back(a.data());
  const FlagParser flags(static_cast<int>(argv.size()), argv.data());
  return fn(flags);
}

TEST_F(ServeTest, ServeWorkersFromEnvParsesStrictly) {
  ScopedServeWorkersEnv guard;
  unsetenv("DTDBD_SERVE_WORKERS");
  EXPECT_EQ(ServeWorkersFromEnv(), 1);
  setenv("DTDBD_SERVE_WORKERS", "3", 1);
  EXPECT_EQ(ServeWorkersFromEnv(), 3);
  for (const char* bad : {"0", "-2", "abc", "4x", " 4", "2.5", ""}) {
    setenv("DTDBD_SERVE_WORKERS", bad, 1);
    EXPECT_EQ(ServeWorkersFromEnv(), 1) << "'" << bad << "'";
  }
}

TEST_F(ServeTest, ResolveServeWorkersPrefersFlagThenEnv) {
  ScopedServeWorkersEnv guard;
  const auto resolve = [](const FlagParser& f) {
    return ResolveServeWorkers(f);
  };
  unsetenv("DTDBD_SERVE_WORKERS");
  EXPECT_EQ(WithFlags({}, resolve), 1);
  EXPECT_EQ(WithFlags({"--serve-workers=4"}, resolve), 4);
  setenv("DTDBD_SERVE_WORKERS", "2", 1);
  EXPECT_EQ(WithFlags({}, resolve), 2);                      // env fallback
  EXPECT_EQ(WithFlags({"--serve-workers=4"}, resolve), 4);   // flag wins
  // A present-but-invalid flag pins to the safe default of 1; it does NOT
  // silently fall through to the env (same rule as --threads).
  EXPECT_EQ(WithFlags({"--serve-workers=zero"}, resolve), 1);
  EXPECT_EQ(WithFlags({"--serve-workers=0"}, resolve), 1);
  EXPECT_EQ(WithFlags({"--serve-workers=-1"}, resolve), 1);
}

TEST_F(ServeTest, ResolveMaxBatchParsesStrictly) {
  const auto resolve = [](const FlagParser& f) { return ResolveMaxBatch(f); };
  EXPECT_EQ(WithFlags({}, resolve), 1);
  EXPECT_EQ(WithFlags({"--max-batch=16"}, resolve), 16);
  EXPECT_EQ(WithFlags({"--max-batch=0"}, resolve), 1);
  EXPECT_EQ(WithFlags({"--max-batch=-8"}, resolve), 1);
  EXPECT_EQ(WithFlags({"--max-batch=lots"}, resolve), 1);
  EXPECT_EQ(WithFlags({"--max-batch=4x"}, resolve), 1);
}

TEST_F(ServeTest, ServerResolvesWorkerCountFromOptionsThenEnv) {
  ScopedServeWorkersEnv guard;
  setenv("DTDBD_SERVE_WORKERS", "3", 1);
  {
    ServerOptions options = BaseOptions();
    options.num_workers = 0;  // resolve from env
    Server server(MakeSession("MDFEND", 3), options);
    EXPECT_EQ(server.num_workers(), 3);
    EXPECT_EQ(server.Health().num_workers, 3);
  }
  {
    ServerOptions options = BaseOptions();
    options.num_workers = 2;  // explicit option beats env
    Server server(MakeSession("MDFEND", 3), options);
    EXPECT_EQ(server.num_workers(), 2);
  }
  setenv("DTDBD_SERVE_WORKERS", "bogus", 1);
  {
    Server server(MakeSession("MDFEND", 3), BaseOptions());
    EXPECT_EQ(server.num_workers(), 1);  // invalid env -> warn + 1
  }
}

// ----- Watchdog -----

TEST_F(ServeTest, WatchdogSnapshotsHealth) {
  ServerOptions options = BaseOptions();
  options.watchdog_period_nanos = 1'000'000;  // 1 ms
  Server server(MakeSession("MDFEND", 3), options);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(server.Predict(ValidRequest()).ok());
  }
  HealthReport report;
  for (int spin = 0; spin < 2000; ++spin) {
    report = server.LastWatchdogReport();
    if (report.watchdog_ticks >= 2 && report.served_ok >= 4) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(report.watchdog_ticks, 2);
  EXPECT_EQ(report.served_ok, 4);
  EXPECT_EQ(report.max_queue_depth, server.Health().max_queue_depth);
  EXPECT_LE(report.queue_depth, report.max_queue_depth);
}

TEST_F(ServeTest, EmptyLatencyWindowIsFlaggedNotSilentZero) {
  // A server that has served nothing must say so explicitly instead of
  // reporting a suspiciously excellent p99 of 0.0 ms, and the queue-wait /
  // compute averages must be exactly 0.0 (never NaN from a 0/0).
  Server server(MakeSession("MDFEND", 3), BaseOptions());
  const HealthReport before = server.Health();
  EXPECT_TRUE(before.latency_no_samples);
  EXPECT_EQ(before.latency_samples, 0);
  EXPECT_EQ(before.p50_latency_ms, 0.0);
  EXPECT_EQ(before.p99_latency_ms, 0.0);
  EXPECT_FALSE(std::isnan(before.avg_queue_wait_ms));
  EXPECT_FALSE(std::isnan(before.avg_compute_ms));
  EXPECT_FALSE(std::isnan(before.avg_batch_size));
  EXPECT_EQ(before.avg_queue_wait_ms, 0.0);
  EXPECT_EQ(before.avg_compute_ms, 0.0);

  ASSERT_TRUE(server.Predict(ValidRequest()).ok());
  const HealthReport after = server.Health();
  EXPECT_FALSE(after.latency_no_samples);
  EXPECT_EQ(after.latency_samples, 1);
  EXPECT_GE(after.avg_queue_wait_ms, 0.0);
  EXPECT_GT(after.avg_compute_ms, 0.0);
}

TEST_F(ServeTest, LatencyPercentilesUseNearestRankNeverPastTheWindow) {
  // Nearest-rank: the q-th percentile is the ceil(q*count)-th smallest
  // sample. The old rounding formula `q*(count-1)+0.5` indexed past the
  // filled window for small counts (p99 of a 2-sample window read slot 2
  // of {0,1}) and could land p99 on a LOWER slot than p50; this pins the
  // fixed behaviour over the degenerate sizes that exposed it.
  struct Case {
    const char* label;
    std::vector<int64_t> ring;  // nanoseconds
    int64_t count;
    double want_p50_ms;
    double want_p99_ms;
  };
  const std::vector<Case> cases = {
      // count <= 0 leaves the outputs untouched (the latency_no_samples
      // flag owns that case); the sentinel must survive.
      {"empty", {}, 0, -1.0, -1.0},
      {"single sample is both percentiles", {7'000'000}, 1, 7.0, 7.0},
      // ceil(.5*2)=1st, ceil(.99*2)=2nd — in range, and p99 >= p50.
      {"two samples", {20'000'000, 10'000'000}, 2, 10.0, 20.0},
      {"hundred samples", {}, 100, 50.0, 99.0},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.label);
    std::vector<int64_t> ring = c.ring;
    if (c.count == 100) {  // 1..100 ms, shuffled order must not matter
      for (int64_t i = 100; i >= 1; --i) ring.push_back(i * 1'000'000);
    }
    double p50 = -1.0, p99 = -1.0;
    LatencyPercentiles(ring, c.count, &p50, &p99);
    EXPECT_EQ(p50, c.want_p50_ms);
    EXPECT_EQ(p99, c.want_p99_ms);
    EXPECT_LE(p50, p99);
  }
  // A count larger than the ring (cannot happen via the server's own
  // bookkeeping, but the helper is exposed) clamps to the ring size.
  double p50 = 0.0, p99 = 0.0;
  LatencyPercentiles({3'000'000}, 5, &p50, &p99);
  EXPECT_EQ(p50, 3.0);
  EXPECT_EQ(p99, 3.0);
}

TEST_F(ServeTest, WatchdogReportBeforeAnyTrafficCarriesNoSamplesFlag) {
  ServerOptions options = BaseOptions();
  options.watchdog_period_nanos = 1'000'000;  // 1 ms
  Server server(MakeSession("MDFEND", 3), options);
  HealthReport report;
  for (int spin = 0; spin < 2000; ++spin) {
    report = server.LastWatchdogReport();
    if (report.watchdog_ticks >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(report.watchdog_ticks, 1);
  // The watchdog observed an idle server: zeros are flagged, not asserted
  // as real latencies.
  EXPECT_TRUE(report.latency_no_samples);
  EXPECT_FALSE(std::isnan(report.avg_queue_wait_ms));
  EXPECT_FALSE(std::isnan(report.avg_compute_ms));
}

}  // namespace
}  // namespace dtdbd::serve
