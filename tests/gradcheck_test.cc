// Property-style finite-difference gradient checks over the op library,
// parameterized so every differentiable op gets the same treatment.
#include <functional>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gradcheck.h"
#include "tensor/loss.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace dtdbd::tensor {
namespace {

using dtdbd::testing::ExpectGradMatchesNumeric;

struct GradCase {
  std::string name;
  Shape input_shape;
  // Builds a scalar loss from the (leaf) input tensor.
  std::function<Tensor(const Tensor&)> forward;
  // Keep inputs positive (for Log).
  bool positive_input = false;
};

// A fixed "other operand" so binary ops are exercised with non-trivial
// partners.
Tensor Partner(const Shape& shape, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> data(NumElements(shape));
  for (auto& v : data) v = static_cast<float>(rng.Normal(0.0, 1.0));
  return Tensor::FromData(shape, std::move(data));
}

class OpGradTest : public ::testing::TestWithParam<GradCase> {};

TEST_P(OpGradTest, MatchesNumericGradient) {
  const GradCase& c = GetParam();
  Rng rng(7);
  std::vector<float> data(NumElements(c.input_shape));
  for (auto& v : data) {
    v = static_cast<float>(c.positive_input ? rng.Uniform(0.5, 2.0)
                                            : rng.Normal(0.0, 1.0));
  }
  Tensor x = Tensor::FromData(c.input_shape, std::move(data), true);
  ExpectGradMatchesNumeric(x, [&]() { return c.forward(x); });
}

std::vector<GradCase> MakeCases() {
  std::vector<GradCase> cases;
  auto scalarize = [](Tensor t) { return Mean(Square(t)); };

  cases.push_back({"Add", {3, 4},
                   [scalarize](const Tensor& x) {
                     return scalarize(Add(x, Partner({3, 4}, 1)));
                   }});
  cases.push_back({"Sub", {3, 4},
                   [scalarize](const Tensor& x) {
                     return scalarize(Sub(Partner({3, 4}, 2), x));
                   }});
  cases.push_back({"Mul", {3, 4},
                   [scalarize](const Tensor& x) {
                     return scalarize(Mul(x, Partner({3, 4}, 3)));
                   }});
  cases.push_back({"AddBiasInput", {4, 3},
                   [scalarize](const Tensor& x) {
                     return scalarize(AddBias(x, Partner({3}, 4)));
                   }});
  cases.push_back({"Neg", {5},
                   [scalarize](const Tensor& x) { return scalarize(Neg(x)); }});
  cases.push_back({"Relu", {12},
                   [scalarize](const Tensor& x) {
                     return scalarize(Relu(x));
                   }});
  cases.push_back({"Tanh", {8},
                   [scalarize](const Tensor& x) {
                     return scalarize(Tanh(x));
                   }});
  cases.push_back({"Sigmoid", {8},
                   [scalarize](const Tensor& x) {
                     return scalarize(Sigmoid(x));
                   }});
  cases.push_back({"Exp", {6},
                   [scalarize](const Tensor& x) { return scalarize(Exp(x)); }});
  cases.push_back({"Log", {6},
                   [scalarize](const Tensor& x) { return scalarize(Log(x)); },
                   /*positive_input=*/true});
  cases.push_back({"MatMulLhs", {3, 4},
                   [scalarize](const Tensor& x) {
                     return scalarize(MatMul(x, Partner({4, 2}, 5)));
                   }});
  cases.push_back({"MatMulRhs", {4, 2},
                   [scalarize](const Tensor& x) {
                     return scalarize(MatMul(Partner({3, 4}, 6), x));
                   }});
  cases.push_back({"Transpose2d", {3, 5},
                   [scalarize](const Tensor& x) {
                     return scalarize(Transpose2d(x));
                   }});
  cases.push_back({"MeanOverTime", {2, 3, 4},
                   [scalarize](const Tensor& x) {
                     return scalarize(MeanOverTime(x));
                   }});
  cases.push_back({"MaxOverTime", {2, 3, 4},
                   [scalarize](const Tensor& x) {
                     return scalarize(MaxOverTime(x));
                   }});
  cases.push_back({"Reshape", {2, 6},
                   [scalarize](const Tensor& x) {
                     return scalarize(Reshape(x, {3, 4}));
                   }});
  cases.push_back({"ConcatLastDim", {3, 2},
                   [scalarize](const Tensor& x) {
                     return scalarize(ConcatLastDim({x, Partner({3, 3}, 7)}));
                   }});
  cases.push_back({"SliceLastDim", {3, 5},
                   [scalarize](const Tensor& x) {
                     return scalarize(SliceLastDim(x, 1, 3));
                   }});
  cases.push_back({"SliceTime", {2, 4, 3},
                   [scalarize](const Tensor& x) {
                     return scalarize(SliceTime(x, 2));
                   }});
  cases.push_back({"StackTime", {3, 4},
                   [scalarize](const Tensor& x) {
                     return scalarize(StackTime({x, Partner({3, 4}, 8), x}));
                   }});
  cases.push_back({"Softmax", {3, 5},
                   [scalarize](const Tensor& x) {
                     return scalarize(Softmax(x));
                   }});
  cases.push_back({"LogSoftmax", {3, 5},
                   [scalarize](const Tensor& x) {
                     return scalarize(LogSoftmax(x));
                   }});
  cases.push_back({"EmbeddingGather", {4, 3},
                   [scalarize](const Tensor& x) {
                     return scalarize(EmbeddingGather(x, {0, 2, 1, 3, 3, 0},
                                                      2, 3));
                   }});
  cases.push_back({"Conv1dSeqInput", {2, 5, 3},
                   [scalarize](const Tensor& x) {
                     return scalarize(
                         Conv1dSeq(x, Partner({2, 6}, 9), Partner({2}, 10), 2));
                   }});
  cases.push_back({"Conv1dSeqWeight", {2, 6},
                   [scalarize](const Tensor& x) {
                     return scalarize(Conv1dSeq(Partner({2, 5, 3}, 11), x,
                                                Partner({2}, 12), 2));
                   }});
  cases.push_back({"Conv1dSeqBias", {2},
                   [scalarize](const Tensor& x) {
                     return scalarize(Conv1dSeq(Partner({2, 5, 3}, 13),
                                                Partner({2, 6}, 14), x, 2));
                   }});
  // GradReverse is deliberately NOT gradient-checked: it lies to autograd
  // by construction (identity forward, -lambda * g backward), which is the
  // whole point of domain adversarial training. Its backward behaviour is
  // asserted directly in ops_test.cc.
  cases.push_back({"PairwiseSquaredDistances", {4, 3},
                   [scalarize](const Tensor& x) {
                     return scalarize(PairwiseSquaredDistances(x));
                   }});
  cases.push_back({"RowL2Normalize", {3, 4},
                   [scalarize](const Tensor& x) {
                     return scalarize(RowL2Normalize(x));
                   }});
  cases.push_back({"LayerNormInput", {3, 6},
                   [scalarize](const Tensor& x) {
                     return scalarize(LayerNormOp(x, Partner({6}, 15),
                                                  Partner({6}, 16)));
                   }});
  cases.push_back({"WeightedSumOverTimeX", {2, 3, 4},
                   [scalarize](const Tensor& x) {
                     return scalarize(
                         WeightedSumOverTime(x, Partner({2, 3}, 17)));
                   }});
  cases.push_back({"WeightedSumOverTimeW", {2, 3},
                   [scalarize](const Tensor& x) {
                     return scalarize(
                         WeightedSumOverTime(Partner({2, 3, 4}, 18), x));
                   }});
  cases.push_back({"CrossEntropyLoss", {4, 3},
                   [](const Tensor& x) {
                     return CrossEntropyLoss(x, {0, 2, 1, 2});
                   }});
  cases.push_back({"DistillKlStudent", {4, 3},
                   [](const Tensor& x) {
                     return DistillKlLoss(Partner({4, 3}, 19), x, 2.0f);
                   }});
  cases.push_back({"NegativeEntropy", {4, 3},
                   [](const Tensor& x) { return NegativeEntropyLoss(x); }});
  cases.push_back({"MseLoss", {4, 3},
                   [](const Tensor& x) {
                     return MseLoss(x, Partner({4, 3}, 20));
                   }});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllOps, OpGradTest, ::testing::ValuesIn(MakeCases()),
                         [](const ::testing::TestParamInfo<GradCase>& info) {
                           return info.param.name;
                         });

}  // namespace
}  // namespace dtdbd::tensor
