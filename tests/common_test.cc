#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/flags.h"
#include "common/io.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/table.h"

namespace dtdbd {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, UniformIntCoversRangeUniformly) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.UniformInt(10)];
  for (int c : counts) {
    EXPECT_GT(c, n / 10 - 600);
    EXPECT_LT(c, n / 10 + 600);
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(17);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 30000; ++i) {
    ++counts[rng.Categorical({1.0, 2.0, 1.0})];
  }
  EXPECT_NEAR(counts[1] / 30000.0, 0.5, 0.02);
  EXPECT_NEAR(counts[0] / 30000.0, 0.25, 0.02);
}

TEST(RngTest, CategoricalSkipsZeroWeights) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(rng.Categorical({0.0, 1.0, 0.0}), 1);
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkIndependentStreams) {
  Rng parent(31);
  Rng child = parent.Fork();
  // The child stream should not replay the parent's outputs.
  Rng parent2(31);
  parent2.Fork();
  EXPECT_NE(child.Next(), parent.Next());
}

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::Ok().ok());
  Status e = Status::NotFound("missing thing");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.code(), StatusCode::kNotFound);
  EXPECT_EQ(e.ToString(), "NotFound: missing thing");
}

TEST(StatusOrTest, HoldsValueOrStatus) {
  StatusOr<int> ok_value(42);
  EXPECT_TRUE(ok_value.ok());
  EXPECT_EQ(ok_value.value(), 42);

  StatusOr<int> err(Status::IoError("disk"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kIoError);
}

// A payload type with no default constructor: StatusOr must not require one
// (it stores the value in a std::optional).
struct NoDefault {
  explicit NoDefault(int v) : value(v) {}
  NoDefault(const NoDefault&) = default;
  NoDefault(NoDefault&&) = default;
  int value;
};

TEST(StatusOrTest, WorksWithNonDefaultConstructibleType) {
  StatusOr<NoDefault> ok_value(NoDefault(7));
  ASSERT_TRUE(ok_value.ok());
  EXPECT_EQ(ok_value.value().value, 7);

  StatusOr<NoDefault> err(Status::NotFound("nope"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);

  // Move extraction hands the payload out without a default-constructed hole.
  StatusOr<std::unique_ptr<int>> ptr(std::make_unique<int>(5));
  ASSERT_TRUE(ptr.ok());
  std::unique_ptr<int> owned = std::move(ptr).value();
  EXPECT_EQ(*owned, 5);
}

namespace statusor_macros {

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status CheckPositive(int x) {
  DTDBD_RETURN_IF_ERROR(ParsePositive(x).status());
  return Status::Ok();
}

StatusOr<int> SumOfTwo(int a, int b) {
  DTDBD_ASSIGN_OR_RETURN(int pa, ParsePositive(a));
  DTDBD_ASSIGN_OR_RETURN(int pb, ParsePositive(b));
  return pa + pb;
}

}  // namespace statusor_macros

TEST(StatusOrTest, MacrosPropagateErrors) {
  EXPECT_TRUE(statusor_macros::CheckPositive(3).ok());
  EXPECT_EQ(statusor_macros::CheckPositive(-1).code(),
            StatusCode::kInvalidArgument);

  auto sum = statusor_macros::SumOfTwo(2, 3);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum.value(), 5);
  EXPECT_FALSE(statusor_macros::SumOfTwo(2, -3).ok());
  EXPECT_FALSE(statusor_macros::SumOfTwo(-2, 3).ok());
}

TEST(FlagParserTest, ParsesForms) {
  const char* argv[] = {"prog",        "--alpha=2.5", "--epochs", "7",
                        "--verbose",   "--no-daa",    "pos1",     "--name",
                        "experiment1"};
  FlagParser flags(9, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(flags.GetDouble("alpha", 0.0), 2.5);
  EXPECT_EQ(flags.GetInt("epochs", 0), 7);
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_FALSE(flags.GetBool("daa", true));
  EXPECT_EQ(flags.GetString("name", ""), "experiment1");
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "pos1");
}

TEST(FlagParserTest, Defaults) {
  const char* argv[] = {"prog"};
  FlagParser flags(1, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("missing", 5), 5);
  EXPECT_FALSE(flags.Has("missing"));
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer_name", "2.5"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("longer_name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(TablePrinterTest, FmtPrecision) {
  EXPECT_EQ(TablePrinter::Fmt(0.123456, 4), "0.1235");
  EXPECT_EQ(TablePrinter::Fmt(2.0, 1), "2.0");
}

TEST(CheckDeathTest, FailsWithMessage) {
  EXPECT_DEATH(DTDBD_CHECK(false) << "custom context 42",
               "custom context 42");
  EXPECT_DEATH(DTDBD_CHECK_EQ(1, 2), "1 vs 2");
}

TEST(CheckTest, PassingCheckDoesNothing) {
  DTDBD_CHECK(true);
  DTDBD_CHECK_EQ(3, 3);
  DTDBD_CHECK_LT(1, 2) << "not printed";
}

TEST(LoggingTest, ConcurrentWritersNeverInterleaveWithinALine) {
  // Capture stderr, hammer the logger from two threads, and verify every
  // emitted line is intact: a torn write would splice one thread's marker
  // into the middle of the other's line.
  std::ostringstream captured;
  std::streambuf* const saved = std::cerr.rdbuf(captured.rdbuf());
  constexpr int kLinesPerThread = 500;
  const auto writer = [](const char* marker) {
    for (int i = 0; i < kLinesPerThread; ++i) {
      DTDBD_LOG(Info) << "stress " << marker << " line " << i << " end";
    }
  };
  std::thread a(writer, "AAAA");
  std::thread b(writer, "BBBB");
  a.join();
  b.join();
  std::cerr.rdbuf(saved);

  std::istringstream lines(captured.str());
  std::string line;
  int stress_lines = 0;
  while (std::getline(lines, line)) {
    if (line.find("stress") == std::string::npos) continue;
    ++stress_lines;
    const bool from_a = line.find("AAAA") != std::string::npos;
    const bool from_b = line.find("BBBB") != std::string::npos;
    EXPECT_TRUE(from_a != from_b) << "torn line: " << line;
    // Complete prefix and suffix: one "[I " header, terminal " end".
    EXPECT_EQ(line.rfind("[I ", 0), 0u) << "torn line: " << line;
    EXPECT_EQ(line.substr(line.size() - 4), " end") << "torn line: " << line;
  }
  EXPECT_EQ(stress_lines, 2 * kLinesPerThread);
}

TEST(AtomicWriteFileTest, WritesAndReplacesAtomically) {
  const std::string path = ::testing::TempDir() + "atomic_write_test.txt";
  ASSERT_TRUE(AtomicWriteFile(path, "first contents").ok());
  std::ifstream in1(path, std::ios::binary);
  std::string got1((std::istreambuf_iterator<char>(in1)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(got1, "first contents");
  // Overwrite goes through the same tmp+rename path; no partial state and
  // no leftover temp file.
  ASSERT_TRUE(AtomicWriteFile(path, "second").ok());
  std::ifstream in2(path, std::ios::binary);
  std::string got2((std::istreambuf_iterator<char>(in2)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(got2, "second");
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
}

TEST(AtomicWriteFileTest, FailsOnUnwritableDirectory) {
  EXPECT_FALSE(AtomicWriteFile("/nonexistent_dir_xyz/file.txt", "x").ok());
}

TEST(AtomicWriteFileTest, CleansUpTempFileWhenPublishFails) {
  // Target an existing directory: the tmp file writes fine but the
  // publishing rename(2) must fail (EISDIR) — and the tmp file must not be
  // left behind to litter the checkpoint directory.
  const std::string target = ::testing::TempDir() + "atomic_write_blocked";
  ASSERT_EQ(::mkdir(target.c_str(), 0755), 0) << std::strerror(errno);
  EXPECT_FALSE(AtomicWriteFile(target, "contents").ok());
  struct stat st;
  EXPECT_NE(::stat((target + ".tmp").c_str(), &st), 0)
      << "temp file leaked after failed publish";
  ASSERT_EQ(::rmdir(target.c_str()), 0);
}

TEST(AtomicWriteFileTest, SurvivingFileIsDurablyPublished) {
  // The rename is followed by an fsync of the containing directory; at this
  // API level we can only assert the call still succeeds end-to-end and the
  // published contents are intact (the durability itself needs a crash rig).
  const std::string dir = ::testing::TempDir() + "atomic_write_dirsync";
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0) << std::strerror(errno);
  const std::string path = dir + "/nested.txt";
  ASSERT_TRUE(AtomicWriteFile(path, "durable").ok());
  std::ifstream in(path, std::ios::binary);
  std::string got((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_EQ(got, "durable");
  in.close();
  ASSERT_EQ(::unlink(path.c_str()), 0);
  ASSERT_EQ(::rmdir(dir.c_str()), 0);
}

}  // namespace
}  // namespace dtdbd
