// Crash-resume determinism and fault-injection tests for the src/train/
// robustness subsystem threaded through TrainSupervised and TrainDtdbd.
//
// The core guarantee under test: (train N epochs) is bitwise identical to
// (train k epochs, checkpoint, reload into fresh process state, train N-k
// more) — including Adam moments, every dropout RNG stream, the loader's
// shuffle order, and DTDBD's DAA momentum state.
#include <unistd.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "dtdbd/dtdbd.h"
#include "dtdbd/trainer.h"
#include "models/model.h"
#include "tensor/serialize.h"
#include "text/frozen_encoder.h"
#include "train/checkpoint.h"
#include "train/fault_injector.h"
#include "train/guard.h"

namespace dtdbd {
namespace {

using tensor::Tensor;

void ExpectParamsBitwiseEqual(const std::map<std::string, Tensor>& a,
                              const std::map<std::string, Tensor>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [name, ta] : a) {
    auto it = b.find(name);
    ASSERT_NE(it, b.end()) << "missing param " << name;
    const auto& da = ta.data();
    const auto& db = it->second.data();
    ASSERT_EQ(da.size(), db.size()) << name;
    EXPECT_EQ(std::memcmp(da.data(), db.data(), da.size() * sizeof(float)), 0)
        << "bitwise mismatch in " << name;
  }
}

class TrainRobustnessTest : public ::testing::Test {
 protected:
  TrainRobustnessTest() {
    dataset_ = data::GenerateCorpus(data::MicroConfig(51));
    Rng rng(3);
    splits_ = data::StratifiedSplit(dataset_, 0.7, 0.15, &rng);
    encoder_ = std::make_unique<text::FrozenEncoder>(dataset_.vocab->size(),
                                                     16, 8);
    config_.vocab_size = dataset_.vocab->size();
    config_.num_domains = dataset_.num_domains();
    config_.encoder = encoder_.get();
    config_.hidden_dim = 16;
    config_.conv_channels = 8;
    config_.rnn_hidden = 8;
    config_.seed = 21;
  }

  std::string TmpPath(const std::string& name) const {
    return ::testing::TempDir() + "/" + name;
  }

  int64_t NumTrainBatches(int64_t batch_size) const {
    return (splits_.train.size() + batch_size - 1) / batch_size;
  }

  // A pair of lightly trained teachers shared by the DTDBD tests.
  void MakeTeachers(std::unique_ptr<models::FakeNewsModel>* unbiased,
                    std::unique_ptr<models::FakeNewsModel>* clean) {
    models::ModelConfig tc = config_;
    tc.seed = 31;
    *unbiased = models::CreateModel("TextCNN-S", tc);
    TrainOptions topts;
    topts.epochs = 1;
    topts.seed = 41;
    ASSERT_TRUE(
        TrainSupervised(unbiased->get(), splits_.train, nullptr, topts)
            .status.ok());
    models::ModelConfig cc = config_;
    cc.seed = 37;
    *clean = models::CreateModel("MDFEND", cc);
    TrainOptions copts;
    copts.epochs = 1;
    copts.seed = 43;
    ASSERT_TRUE(TrainSupervised(clean->get(), splits_.train, nullptr, copts)
                    .status.ok());
  }

  data::NewsDataset dataset_;
  data::DatasetSplits splits_;
  std::unique_ptr<text::FrozenEncoder> encoder_;
  models::ModelConfig config_;
};

// ---------------------------------------------------------------------------
// Crash-resume determinism
// ---------------------------------------------------------------------------

TEST_F(TrainRobustnessTest, SupervisedResumeIsBitwiseIdentical) {
  const std::string ckpt = TmpPath("sup_resume.ckpt");
  TrainOptions base;
  base.epochs = 4;
  base.seed = 1234;

  // Uninterrupted reference run.
  auto straight = models::CreateModel("TextCNN-S", config_);
  TrainResult full =
      TrainSupervised(straight.get(), splits_.train, &splits_.val, base);
  ASSERT_TRUE(full.status.ok());
  ASSERT_EQ(full.train_loss_per_epoch.size(), 4u);

  // First half: 2 epochs, checkpointed.
  auto first = models::CreateModel("TextCNN-S", config_);
  TrainOptions half = base;
  half.epochs = 2;
  half.checkpoint_path = ckpt;
  TrainResult part1 =
      TrainSupervised(first.get(), splits_.train, &splits_.val, half);
  ASSERT_TRUE(part1.status.ok());
  EXPECT_FALSE(std::filesystem::exists(ckpt + ".tmp"));  // atomic rename

  // Second half: a model with a *different* init seed simulates a fresh
  // process; everything must come from the checkpoint.
  models::ModelConfig fresh_config = config_;
  fresh_config.seed = 999;
  auto resumed = models::CreateModel("TextCNN-S", fresh_config);
  TrainOptions rest = base;
  rest.resume_from = ckpt;
  TrainResult part2 =
      TrainSupervised(resumed.get(), splits_.train, &splits_.val, rest);
  ASSERT_TRUE(part2.status.ok());

  ASSERT_EQ(part1.train_loss_per_epoch.size(), 2u);
  ASSERT_EQ(part2.train_loss_per_epoch.size(), 2u);
  for (int e = 0; e < 2; ++e) {
    EXPECT_EQ(full.train_loss_per_epoch[e], part1.train_loss_per_epoch[e])
        << "epoch " << e;
    EXPECT_EQ(full.train_loss_per_epoch[2 + e], part2.train_loss_per_epoch[e])
        << "epoch " << 2 + e;
  }
  ASSERT_EQ(part2.val_reports.size(), 2u);
  EXPECT_EQ(full.val_reports[3].f1, part2.val_reports[1].f1);
  EXPECT_EQ(full.val_reports[3].Total(), part2.val_reports[1].Total());
  ExpectParamsBitwiseEqual(straight->NamedParameters(),
                           resumed->NamedParameters());
}

TEST_F(TrainRobustnessTest, DtdbdResumeIsBitwiseIdentical) {
  const std::string ckpt = TmpPath("dtdbd_resume.ckpt");
  std::unique_ptr<models::FakeNewsModel> unbiased, clean;
  MakeTeachers(&unbiased, &clean);

  DtdbdOptions base;
  base.epochs = 4;
  base.batch_size = 32;
  base.seed = 99;

  auto straight = models::CreateModel("TextCNN-S", config_);
  DtdbdResult full = TrainDtdbd(straight.get(), unbiased.get(), clean.get(),
                                splits_.train, splits_.val, base);
  ASSERT_TRUE(full.status.ok());
  ASSERT_EQ(full.train_loss_per_epoch.size(), 4u);
  ASSERT_EQ(full.w_add_per_epoch.size(), 4u);

  auto first = models::CreateModel("TextCNN-S", config_);
  DtdbdOptions half = base;
  half.epochs = 2;
  half.checkpoint_path = ckpt;
  DtdbdResult part1 = TrainDtdbd(first.get(), unbiased.get(), clean.get(),
                                 splits_.train, splits_.val, half);
  ASSERT_TRUE(part1.status.ok());

  models::ModelConfig fresh_config = config_;
  fresh_config.seed = 999;
  auto resumed = models::CreateModel("TextCNN-S", fresh_config);
  DtdbdOptions rest = base;
  rest.resume_from = ckpt;
  DtdbdResult part2 = TrainDtdbd(resumed.get(), unbiased.get(), clean.get(),
                                 splits_.train, splits_.val, rest);
  ASSERT_TRUE(part2.status.ok());

  ASSERT_EQ(part1.train_loss_per_epoch.size(), 2u);
  ASSERT_EQ(part2.train_loss_per_epoch.size(), 2u);
  ASSERT_EQ(part2.w_add_per_epoch.size(), 2u);
  for (int e = 0; e < 2; ++e) {
    EXPECT_EQ(full.train_loss_per_epoch[e], part1.train_loss_per_epoch[e]);
    EXPECT_EQ(full.train_loss_per_epoch[2 + e],
              part2.train_loss_per_epoch[e]);
    EXPECT_EQ(full.w_add_per_epoch[e], part1.w_add_per_epoch[e]);
    EXPECT_EQ(full.w_add_per_epoch[2 + e], part2.w_add_per_epoch[e]);
  }
  EXPECT_EQ(full.val_reports.back().f1, part2.val_reports.back().f1);
  EXPECT_EQ(full.val_reports.back().Total(), part2.val_reports.back().Total());
  ExpectParamsBitwiseEqual(straight->NamedParameters(),
                           resumed->NamedParameters());
}

TEST_F(TrainRobustnessTest, MidEpochCrashResumesFromLastCheckpoint) {
  const std::string ckpt = TmpPath("crash.ckpt");
  TrainOptions base;
  base.epochs = 4;
  base.seed = 7;

  auto straight = models::CreateModel("TextCNN-S", config_);
  TrainResult full =
      TrainSupervised(straight.get(), splits_.train, nullptr, base);
  ASSERT_TRUE(full.status.ok());

  // "Kill" the process in the middle of epoch 2.
  auto victim = models::CreateModel("TextCNN-S", config_);
  train::FaultInjector injector(5);
  injector.ScheduleAbortAtStep(2 * NumTrainBatches(base.batch_size) + 1);
  TrainOptions crashing = base;
  crashing.checkpoint_path = ckpt;
  crashing.fault_injector = &injector;
  TrainResult crashed =
      TrainSupervised(victim.get(), splits_.train, nullptr, crashing);
  EXPECT_FALSE(crashed.status.ok());
  EXPECT_EQ(crashed.status.code(), StatusCode::kInternal);
  EXPECT_EQ(crashed.train_loss_per_epoch.size(), 2u);

  // Fresh process state + resume finishes the run bit-identically.
  models::ModelConfig fresh_config = config_;
  fresh_config.seed = 888;
  auto resumed = models::CreateModel("TextCNN-S", fresh_config);
  TrainOptions rest = base;
  rest.resume_from = ckpt;
  TrainResult part2 =
      TrainSupervised(resumed.get(), splits_.train, nullptr, rest);
  ASSERT_TRUE(part2.status.ok());
  ASSERT_EQ(part2.train_loss_per_epoch.size(), 2u);
  EXPECT_EQ(full.train_loss_per_epoch[2], part2.train_loss_per_epoch[0]);
  EXPECT_EQ(full.train_loss_per_epoch[3], part2.train_loss_per_epoch[1]);
  ExpectParamsBitwiseEqual(straight->NamedParameters(),
                           resumed->NamedParameters());
}

// ---------------------------------------------------------------------------
// Fault injection: NaN steps and divergence
// ---------------------------------------------------------------------------

TEST_F(TrainRobustnessTest, NanPoisonedStepIsSkippedAndTrainingConverges) {
  auto guarded = models::CreateModel("TextCNN-S", config_);
  train::FaultInjector injector(11);
  injector.ScheduleGradNanAtStep(3);
  TrainOptions opts;
  opts.epochs = 3;
  opts.seed = 77;
  opts.fault_injector = &injector;
  TrainResult result =
      TrainSupervised(guarded.get(), splits_.train, nullptr, opts);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(injector.injected_nan_steps(), 1);
  ASSERT_EQ(result.train_loss_per_epoch.size(), 3u);
  for (double loss : result.train_loss_per_epoch) {
    EXPECT_TRUE(std::isfinite(loss));
  }
  // The poisoned step never reached the parameters.
  for (const auto& [name, t] : guarded->NamedParameters()) {
    for (float v : t.data()) {
      ASSERT_TRUE(std::isfinite(v)) << "non-finite weight in " << name;
    }
  }
  // Still learns: loss goes down across epochs despite the injected fault.
  EXPECT_LT(result.train_loss_per_epoch.back(),
            result.train_loss_per_epoch.front());
}

TEST_F(TrainRobustnessTest, DtdbdNanPoisonedStepIsSkipped) {
  std::unique_ptr<models::FakeNewsModel> unbiased, clean;
  MakeTeachers(&unbiased, &clean);
  auto student = models::CreateModel("TextCNN-S", config_);
  train::FaultInjector injector(13);
  injector.ScheduleGradNanAtStep(1);
  DtdbdOptions opts;
  opts.epochs = 2;
  opts.batch_size = 32;
  opts.fault_injector = &injector;
  DtdbdResult result = TrainDtdbd(student.get(), unbiased.get(), clean.get(),
                                  splits_.train, splits_.val, opts);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(injector.injected_nan_steps(), 1);
  for (const auto& [name, t] : student->NamedParameters()) {
    for (float v : t.data()) {
      ASSERT_TRUE(std::isfinite(v)) << "non-finite weight in " << name;
    }
  }
}

TEST_F(TrainRobustnessTest, PersistentDivergenceGivesUpWithCleanStatus) {
  auto doomed = models::CreateModel("TextCNN-S", config_);
  train::FaultInjector injector(17);
  injector.set_grad_nan_probability(1.0);  // every step is poisoned
  TrainOptions opts;
  opts.epochs = 2;
  opts.fault_injector = &injector;
  opts.guard.max_consecutive_bad = 3;
  opts.guard.max_rollbacks = 2;
  TrainResult result =
      TrainSupervised(doomed.get(), splits_.train, nullptr, opts);
  EXPECT_FALSE(result.status.ok());
  EXPECT_EQ(result.status.code(), StatusCode::kInternal);
  // The rollback path restored the last good snapshot before giving up.
  for (const auto& [name, t] : doomed->NamedParameters()) {
    for (float v : t.data()) {
      ASSERT_TRUE(std::isfinite(v)) << "non-finite weight in " << name;
    }
  }
}

// ---------------------------------------------------------------------------
// Checkpoint integrity
// ---------------------------------------------------------------------------

TEST_F(TrainRobustnessTest, TruncatedCheckpointRejectedWithStatus) {
  const std::string ckpt = TmpPath("trunc.ckpt");
  auto model = models::CreateModel("TextCNN-S", config_);
  TrainOptions opts;
  opts.epochs = 1;
  opts.checkpoint_path = ckpt;
  ASSERT_TRUE(
      TrainSupervised(model.get(), splits_.train, nullptr, opts).status.ok());

  ASSERT_TRUE(train::FaultInjector::TruncateFile(ckpt, 0.5).ok());
  auto loaded = train::LoadCheckpoint(ckpt);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);

  // Resuming from the damaged file fails cleanly and trains nothing.
  TrainOptions rest;
  rest.epochs = 2;
  rest.resume_from = ckpt;
  auto fresh = models::CreateModel("TextCNN-S", config_);
  TrainResult result =
      TrainSupervised(fresh.get(), splits_.train, nullptr, rest);
  EXPECT_FALSE(result.status.ok());
  EXPECT_TRUE(result.train_loss_per_epoch.empty());
}

TEST_F(TrainRobustnessTest, BitFlippedCheckpointRejectedWithStatus) {
  const std::string ckpt = TmpPath("flip.ckpt");
  auto model = models::CreateModel("TextCNN-S", config_);
  TrainOptions opts;
  opts.epochs = 1;
  opts.checkpoint_path = ckpt;
  ASSERT_TRUE(
      TrainSupervised(model.get(), splits_.train, nullptr, opts).status.ok());
  const auto size =
      static_cast<int64_t>(std::filesystem::file_size(ckpt));

  // A single flipped bit anywhere — header, key, or payload — must be
  // caught; flip, verify rejection, flip back, verify it loads again.
  for (int64_t offset : {int64_t{1}, int64_t{5}, size / 3, size / 2,
                         size - 2}) {
    ASSERT_TRUE(train::FaultInjector::FlipBit(ckpt, offset, 3).ok());
    auto loaded = train::LoadCheckpoint(ckpt);
    EXPECT_FALSE(loaded.ok()) << "flip at byte " << offset << " not caught";
    ASSERT_TRUE(train::FaultInjector::FlipBit(ckpt, offset, 3).ok());
  }
  EXPECT_TRUE(train::LoadCheckpoint(ckpt).ok());
}

TEST_F(TrainRobustnessTest, CheckpointKindMismatchRejected) {
  const std::string ckpt = TmpPath("kind.ckpt");
  auto model = models::CreateModel("TextCNN-S", config_);
  TrainOptions opts;
  opts.epochs = 1;
  opts.checkpoint_path = ckpt;
  ASSERT_TRUE(
      TrainSupervised(model.get(), splits_.train, nullptr, opts).status.ok());

  std::unique_ptr<models::FakeNewsModel> unbiased, clean;
  MakeTeachers(&unbiased, &clean);
  auto student = models::CreateModel("TextCNN-S", config_);
  DtdbdOptions dopts;
  dopts.epochs = 1;
  dopts.resume_from = ckpt;
  DtdbdResult result = TrainDtdbd(student.get(), unbiased.get(), clean.get(),
                                  splits_.train, splits_.val, dopts);
  EXPECT_FALSE(result.status.ok());
  EXPECT_EQ(result.status.code(), StatusCode::kInvalidArgument);
}

TEST_F(TrainRobustnessTest, CheckpointFromDifferentModelRejected) {
  const std::string ckpt = TmpPath("othermodel.ckpt");
  auto model = models::CreateModel("TextCNN-S", config_);
  TrainOptions opts;
  opts.epochs = 1;
  opts.checkpoint_path = ckpt;
  ASSERT_TRUE(
      TrainSupervised(model.get(), splits_.train, nullptr, opts).status.ok());

  auto other = models::CreateModel("MDFEND", config_);
  TrainOptions rest;
  rest.epochs = 2;
  rest.resume_from = ckpt;
  TrainResult result =
      TrainSupervised(other.get(), splits_.train, nullptr, rest);
  EXPECT_FALSE(result.status.ok());
}

TEST(CheckpointRoundTripTest, MissingFileYieldsIoError) {
  auto loaded = train::LoadCheckpoint("/nonexistent/dir/x.ckpt");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(CheckpointRoundTripTest, GarbageFileRejected) {
  const std::string path = ::testing::TempDir() + "/garbage.ckpt";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[] = "this is not a checkpoint";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
  }
  auto loaded = train::LoadCheckpoint(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Serialization hardening (satellite)
// ---------------------------------------------------------------------------

TEST(Crc32Test, KnownVectorAndChaining) {
  const char* s = "123456789";
  EXPECT_EQ(tensor::Crc32(s, 9), 0xCBF43926u);
  // Chained CRC over split input equals CRC over the concatenation.
  uint32_t part = tensor::Crc32(s, 4);
  EXPECT_EQ(tensor::Crc32(s + 4, 5, part), 0xCBF43926u);
}

TEST(SerializeHardeningTest, AbsurdNameLengthRejectedWithoutAllocation) {
  const std::string path = ::testing::TempDir() + "/hostile_name.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char magic[4] = {'D', 'T', 'D', 'B'};
    const uint32_t version = 2;
    const uint64_t count = 1;
    const uint64_t name_len = uint64_t{1} << 50;  // absurd
    std::fwrite(magic, 1, 4, f);
    std::fwrite(&version, sizeof(version), 1, f);
    std::fwrite(&count, sizeof(count), 1, f);
    std::fwrite(&name_len, sizeof(name_len), 1, f);
    std::fclose(f);
  }
  auto loaded = tensor::LoadTensors(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(SerializeHardeningTest, AbsurdDimsRejectedWithoutAllocation) {
  const std::string path = ::testing::TempDir() + "/hostile_dims.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char magic[4] = {'D', 'T', 'D', 'B'};
    const uint32_t version = 2;
    const uint64_t count = 1;
    const uint64_t name_len = 1;
    const char name = 'w';
    const uint64_t ndim = 2;
    const int64_t dims[2] = {int64_t{1} << 31, int64_t{1} << 31};  // overflow
    std::fwrite(magic, 1, 4, f);
    std::fwrite(&version, sizeof(version), 1, f);
    std::fwrite(&count, sizeof(count), 1, f);
    std::fwrite(&name_len, sizeof(name_len), 1, f);
    std::fwrite(&name, 1, 1, f);
    std::fwrite(&ndim, sizeof(ndim), 1, f);
    std::fwrite(dims, sizeof(int64_t), 2, f);
    std::fclose(f);
  }
  auto loaded = tensor::LoadTensors(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(SerializeHardeningTest, DataBeyondFileSizeIsIoError) {
  const std::string path = ::testing::TempDir() + "/hostile_size.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char magic[4] = {'D', 'T', 'D', 'B'};
    const uint32_t version = 2;
    const uint64_t count = 1;
    const uint64_t name_len = 1;
    const char name = 'w';
    const uint64_t ndim = 1;
    // Claims 1M floats but the file ends right after the header.
    const int64_t dims[1] = {1 << 20};
    std::fwrite(magic, 1, 4, f);
    std::fwrite(&version, sizeof(version), 1, f);
    std::fwrite(&count, sizeof(count), 1, f);
    std::fwrite(&name_len, sizeof(name_len), 1, f);
    std::fwrite(&name, 1, 1, f);
    std::fwrite(&ndim, sizeof(ndim), 1, f);
    std::fwrite(dims, sizeof(int64_t), 1, f);
    std::fclose(f);
  }
  auto loaded = tensor::LoadTensors(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(SerializeHardeningTest, BitFlippedTensorFileFailsCrc) {
  const std::string path = ::testing::TempDir() + "/flip_tensor.bin";
  std::map<std::string, Tensor> params;
  params["w"] = Tensor::FromData({16}, std::vector<float>(16, 0.5f));
  ASSERT_TRUE(tensor::SaveTensors(params, path).ok());
  const auto size = static_cast<int64_t>(std::filesystem::file_size(path));
  ASSERT_TRUE(train::FaultInjector::FlipBit(path, size / 2, 0).ok());
  auto loaded = tensor::LoadTensors(path);
  ASSERT_FALSE(loaded.ok());
}

TEST(SerializeHardeningTest, V2RoundTripPreservesBits) {
  const std::string path = ::testing::TempDir() + "/roundtrip_v2.bin";
  std::map<std::string, Tensor> params;
  params["a"] = Tensor::FromData({2, 3}, {0.1f, -2.5f, 3e-30f, 1e30f, 0.0f,
                                          -0.0f});
  params["b"] = Tensor::FromData({1}, {42.0f});
  ASSERT_TRUE(tensor::SaveTensors(params, path).ok());
  auto loaded = tensor::LoadTensors(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectParamsBitwiseEqual(params, loaded.value());
}

// ---------------------------------------------------------------------------
// Guarded prediction helpers and state setters (satellites)
// ---------------------------------------------------------------------------

TEST_F(TrainRobustnessTest, PredictionHelpersHandleEmptyDataset) {
  auto model = models::CreateModel("TextCNN-S", config_);
  data::NewsDataset empty = splits_.test;
  empty.samples.clear();
  EXPECT_TRUE(Predict(model.get(), empty).empty());
  EXPECT_TRUE(PredictFakeProbability(model.get(), empty).empty());
  EXPECT_TRUE(ExtractFeatures(model.get(), empty).empty());
  metrics::EvalReport report = EvaluateModel(model.get(), empty);
  EXPECT_EQ(report.overall.total(), 0);
  EXPECT_EQ(report.f1, 0.0);
}

TEST_F(TrainRobustnessTest, PredictionHelpersHandleBadBatchSize) {
  auto model = models::CreateModel("TextCNN-S", config_);
  EXPECT_TRUE(Predict(model.get(), splits_.test, 0).empty());
  EXPECT_TRUE(PredictFakeProbability(model.get(), splits_.test, -4).empty());
  EXPECT_TRUE(ExtractFeatures(model.get(), splits_.test, 0).empty());
  metrics::EvalReport report = EvaluateModel(model.get(), splits_.test, -1);
  EXPECT_EQ(report.overall.total(), 0);
}

TEST_F(TrainRobustnessTest, LoaderRejectsForeignState) {
  data::DataLoader loader(&splits_.train, 16, /*shuffle=*/true, 5);
  data::DataLoader::State state = loader.GetState();
  state.order.pop_back();  // wrong size
  EXPECT_FALSE(loader.SetState(state).ok());
  state = loader.GetState();
  state.order[0] = state.order[1];  // duplicate index
  EXPECT_FALSE(loader.SetState(state).ok());
  EXPECT_TRUE(loader.SetState(loader.GetState()).ok());
}

TEST(AdamStateTest, ImportRejectsMismatchedState) {
  std::vector<Tensor> params = {Tensor::Zeros({4}, /*requires_grad=*/true)};
  tensor::Adam adam(params, 1e-3f);
  tensor::AdamState state = adam.ExportState();
  state.m.emplace_back(3, 0.0f);  // extra slot
  EXPECT_FALSE(adam.ImportState(state).ok());
  state = adam.ExportState();
  state.v[0].resize(3);  // wrong length
  EXPECT_FALSE(adam.ImportState(state).ok());
  state = adam.ExportState();
  state.step_count = -1;
  EXPECT_FALSE(adam.ImportState(state).ok());
  EXPECT_TRUE(adam.ImportState(adam.ExportState()).ok());
}

TEST(RngStateTest, RoundTripResumesStream) {
  Rng rng(123);
  for (int i = 0; i < 17; ++i) rng.Normal();  // leave a cached draw in play
  const Rng::State state = rng.GetState();
  std::vector<uint64_t> expect_ints;
  std::vector<double> expect_normals;
  for (int i = 0; i < 8; ++i) {
    expect_ints.push_back(rng.Next());
    expect_normals.push_back(rng.Normal());
  }
  Rng other(999);
  other.SetState(state);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(other.Next(), expect_ints[i]);
    EXPECT_EQ(other.Normal(), expect_normals[i]);
  }
}

}  // namespace
}  // namespace dtdbd
