// Focused tests of the generic training loop (src/dtdbd/trainer.*):
// option handling, validation reporting, stability, and consistency
// between the prediction helpers.
#include "dtdbd/trainer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "metrics/metrics.h"
#include "models/model.h"
#include "text/frozen_encoder.h"

namespace dtdbd {
namespace {

class TrainerTest : public ::testing::Test {
 protected:
  TrainerTest() {
    dataset_ = data::GenerateCorpus(data::MicroConfig(51));
    Rng rng(3);
    splits_ = data::StratifiedSplit(dataset_, 0.7, 0.15, &rng);
    encoder_ = std::make_unique<text::FrozenEncoder>(dataset_.vocab->size(),
                                                     16, 8);
    config_.vocab_size = dataset_.vocab->size();
    config_.num_domains = dataset_.num_domains();
    config_.encoder = encoder_.get();
    config_.hidden_dim = 16;
    config_.conv_channels = 8;
    config_.rnn_hidden = 8;
    config_.seed = 21;
  }

  data::NewsDataset dataset_;
  data::DatasetSplits splits_;
  std::unique_ptr<text::FrozenEncoder> encoder_;
  models::ModelConfig config_;
};

TEST_F(TrainerTest, ValReportsCollectedPerEpoch) {
  auto model = models::CreateModel("TextCNN-S", config_);
  TrainOptions opts;
  opts.epochs = 3;
  TrainResult result =
      TrainSupervised(model.get(), splits_.train, &splits_.val, opts);
  EXPECT_EQ(result.val_reports.size(), 3u);
  EXPECT_EQ(result.train_loss_per_epoch.size(), 3u);
}

TEST_F(TrainerTest, NoValSetMeansNoReports) {
  auto model = models::CreateModel("TextCNN-S", config_);
  TrainOptions opts;
  opts.epochs = 2;
  TrainResult result =
      TrainSupervised(model.get(), splits_.train, nullptr, opts);
  EXPECT_TRUE(result.val_reports.empty());
}

TEST_F(TrainerTest, DeterministicGivenSeed) {
  TrainOptions opts;
  opts.epochs = 2;
  opts.seed = 77;
  models::ModelConfig c = config_;
  c.seed = 5;
  auto a = models::CreateModel("TextCNN-S", c);
  auto b = models::CreateModel("TextCNN-S", c);
  TrainResult ra = TrainSupervised(a.get(), splits_.train, nullptr, opts);
  TrainResult rb = TrainSupervised(b.get(), splits_.train, nullptr, opts);
  ASSERT_EQ(ra.train_loss_per_epoch.size(), rb.train_loss_per_epoch.size());
  for (size_t i = 0; i < ra.train_loss_per_epoch.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra.train_loss_per_epoch[i], rb.train_loss_per_epoch[i]);
  }
}

TEST_F(TrainerTest, DomainLossOnlyAppliesWhenModelEmitsDomainLogits) {
  // TextCNN-S emits no domain logits: domain_loss_weight must not change
  // the training trajectory.
  TrainOptions base;
  base.epochs = 2;
  TrainOptions with_domain = base;
  with_domain.domain_loss_weight = 5.0f;
  models::ModelConfig c = config_;
  c.seed = 5;
  auto a = models::CreateModel("TextCNN-S", c);
  auto b = models::CreateModel("TextCNN-S", c);
  TrainResult ra = TrainSupervised(a.get(), splits_.train, nullptr, base);
  TrainResult rb =
      TrainSupervised(b.get(), splits_.train, nullptr, with_domain);
  EXPECT_DOUBLE_EQ(ra.train_loss_per_epoch.back(),
                   rb.train_loss_per_epoch.back());
}

TEST_F(TrainerTest, DomainLossRaisesTrainingObjectiveForEann) {
  // For EANN the reported loss includes the (weighted) domain CE term.
  TrainOptions base;
  base.epochs = 1;
  TrainOptions with_domain = base;
  with_domain.domain_loss_weight = 1.0f;
  models::ModelConfig c = config_;
  c.seed = 6;
  auto a = models::CreateModel("EANN", c);
  auto b = models::CreateModel("EANN", c);
  TrainResult ra = TrainSupervised(a.get(), splits_.train, nullptr, base);
  TrainResult rb =
      TrainSupervised(b.get(), splits_.train, nullptr, with_domain);
  EXPECT_GT(rb.train_loss_per_epoch[0], ra.train_loss_per_epoch[0]);
}

TEST_F(TrainerTest, HugeLearningRateStaysFiniteUnderClipping) {
  auto model = models::CreateModel("TextCNN-S", config_);
  TrainOptions opts;
  opts.epochs = 2;
  opts.lr = 0.5f;  // absurd for Adam, but grad clipping keeps things sane
  opts.grad_clip = 1.0f;
  TrainResult result =
      TrainSupervised(model.get(), splits_.train, nullptr, opts);
  for (double loss : result.train_loss_per_epoch) {
    EXPECT_TRUE(std::isfinite(loss));
  }
  for (float p : PredictFakeProbability(model.get(), splits_.test)) {
    EXPECT_TRUE(std::isfinite(p));
  }
}

TEST_F(TrainerTest, PredictConsistentWithProbabilities) {
  auto model = models::CreateModel("TextCNN-S", config_);
  auto preds = Predict(model.get(), splits_.test);
  auto probs = PredictFakeProbability(model.get(), splits_.test);
  ASSERT_EQ(preds.size(), probs.size());
  for (size_t i = 0; i < preds.size(); ++i) {
    EXPECT_EQ(preds[i], probs[i] >= 0.5f ? data::kFake : data::kReal);
  }
}

TEST_F(TrainerTest, EvaluateModelAgreesWithManualMetrics) {
  auto model = models::CreateModel("TextCNN-S", config_);
  auto report = EvaluateModel(model.get(), splits_.test);
  auto preds = Predict(model.get(), splits_.test);
  std::vector<int> labels, domains;
  for (const auto& s : splits_.test.samples) {
    labels.push_back(s.label);
    domains.push_back(s.domain);
  }
  auto manual = metrics::Evaluate(preds, labels, domains,
                                  splits_.test.num_domains());
  EXPECT_DOUBLE_EQ(report.f1, manual.f1);
  EXPECT_DOUBLE_EQ(report.fned, manual.fned);
  EXPECT_DOUBLE_EQ(report.fped, manual.fped);
}

TEST_F(TrainerTest, BatchSizeDoesNotChangeEvaluation) {
  auto model = models::CreateModel("TextCNN-S", config_);
  auto r16 = EvaluateModel(model.get(), splits_.test, 16);
  auto r64 = EvaluateModel(model.get(), splits_.test, 64);
  EXPECT_DOUBLE_EQ(r16.f1, r64.f1);
  EXPECT_DOUBLE_EQ(r16.Total(), r64.Total());
}

TEST_F(TrainerTest, ExtractFeaturesMatchesForward) {
  auto model = models::CreateModel("TextCNN-S", config_);
  auto features = ExtractFeatures(model.get(), splits_.val, 16);
  // Recompute the first batch manually.
  std::vector<int64_t> indices;
  for (int64_t i = 0; i < std::min<int64_t>(16, splits_.val.size()); ++i) {
    indices.push_back(i);
  }
  tensor::NoGradGuard guard;
  data::Batch batch = data::MakeBatch(splits_.val, indices);
  auto out = model->Forward(batch, /*training=*/false);
  for (int64_t i = 0; i < out.features.numel(); ++i) {
    EXPECT_FLOAT_EQ(features[i], out.features.at(i));
  }
}

}  // namespace
}  // namespace dtdbd
