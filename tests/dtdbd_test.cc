#include "dtdbd/dtdbd.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/ops.h"

#include "data/generator.h"
#include "dtdbd/dat.h"
#include "dtdbd/distill.h"
#include "dtdbd/momentum.h"
#include "dtdbd/trainer.h"
#include "text/frozen_encoder.h"

namespace dtdbd {
namespace {

using tensor::Tensor;

TEST(MomentumAdjusterTest, FirstUpdateIsNoOp) {
  MomentumWeightAdjuster adj(0.8, 0.5);
  EXPECT_DOUBLE_EQ(adj.Update(0.8, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(adj.w_add(), 0.5);
  EXPECT_DOUBLE_EQ(adj.w_dkd(), 0.5);
}

TEST(MomentumAdjusterTest, BiasImprovementRaisesWAdd) {
  MomentumWeightAdjuster adj(0.5, 0.5);
  adj.Update(0.8, 1.0);
  // Bias fell by 0.4, F1 flat: signal = (dBias - dF1) = -0.4.
  const double w = adj.Update(0.8, 0.6);
  // w = 0.5*0.5 - 0.5*(-0.4) = 0.45.
  EXPECT_NEAR(w, 0.45, 1e-12);
}

TEST(MomentumAdjusterTest, F1ImprovementAlsoRaisesWAdd) {
  MomentumWeightAdjuster adj(0.5, 0.5);
  adj.Update(0.8, 1.0);
  const double w = adj.Update(0.9, 1.0);  // dF1 = +0.1
  // w = 0.25 - 0.5*(0 - 0.1) = 0.30.
  EXPECT_NEAR(w, 0.30, 1e-12);
}

TEST(MomentumAdjusterTest, BiasRegressionLowersWAdd) {
  MomentumWeightAdjuster adj(0.5, 0.5);
  adj.Update(0.8, 1.0);
  const double w = adj.Update(0.8, 1.6);  // bias worse by 0.6
  // raw: 0.25 - 0.5*0.6 = -0.05 -> clamped to floor.
  EXPECT_DOUBLE_EQ(w, 0.05);
}

TEST(MomentumAdjusterTest, WeightsStayInBounds) {
  MomentumWeightAdjuster adj(0.0, 0.5, 0.1);
  adj.Update(0.5, 1.0);
  for (int i = 0; i < 20; ++i) {
    const double w = adj.Update(0.5 + 0.01 * i, 1.0 - 0.05 * i);
    EXPECT_GE(w, 0.1);
    EXPECT_LE(w, 0.9);
    EXPECT_NEAR(adj.w_add() + adj.w_dkd(), 1.0, 1e-12);
  }
}

TEST(MomentumAdjusterTest, SignalClampedAgainstNoiseSpikes) {
  MomentumWeightAdjuster adj(0.9, 0.5);
  adj.Update(0.8, 1.0);
  // A wild +5.0 bias spike is clamped to +1 before the update.
  const double w = adj.Update(0.8, 6.0);
  EXPECT_NEAR(w, 0.9 * 0.5 - 0.1 * 1.0, 1e-12);
}

TEST(MomentumAdjusterDeathTest, InvalidArgs) {
  EXPECT_DEATH(MomentumWeightAdjuster(1.0, 0.5), "");
  EXPECT_DEATH(MomentumWeightAdjuster(0.5, 0.01, 0.2), "");
}

TEST(DistillLossTest, AddZeroForIdenticalFeatures) {
  Tensor f = Tensor::FromData({4, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 1, 0, 2});
  Tensor loss = AdversarialDebiasDistillLoss(f, f.Clone(), 2.0f);
  EXPECT_NEAR(loss.item(), 0.0f, 1e-5f);
}

TEST(DistillLossTest, AddInvariantToFeatureScale) {
  // The correlation-matrix rows are standardized, so a uniformly scaled
  // student should match the teacher exactly.
  Tensor t = Tensor::FromData({3, 2}, {0, 0, 1, 0, 0, 2});
  Tensor s = tensor::ScalarMul(t.Clone(), 5.0f);
  EXPECT_NEAR(AdversarialDebiasDistillLoss(t, s, 1.0f).item(), 0.0f, 1e-5f);
}

TEST(DistillLossTest, AddPositiveForDifferentStructure) {
  // With 3 points every row of the correlation matrix has only two free
  // entries, and row standardization makes any two such rows equivalent —
  // so 4 points with genuinely different geometry are needed here.
  Tensor t = Tensor::FromData({4, 2}, {0, 0, 1, 0, 0, 1, 5, 5});
  Tensor s = Tensor::FromData({4, 2}, {0, 0, 1, 0, 2, 0, 3, 0});
  EXPECT_GT(AdversarialDebiasDistillLoss(t, s, 1.0f).item(), 1e-4f);
}

TEST(DistillLossTest, AddAllowsDifferentFeatureWidths) {
  Tensor t = Tensor::FromData({3, 4},
                              {0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2});
  Tensor s = Tensor::FromData({3, 2}, {0, 0, 1, 1, 2, 2});
  Tensor loss = AdversarialDebiasDistillLoss(t, s, 1.0f);
  EXPECT_TRUE(std::isfinite(loss.item()));
}

TEST(DistillLossTest, DkdZeroForIdenticalLogits) {
  Tensor logits = Tensor::FromData({2, 2}, {3, -1, 0, 2});
  EXPECT_NEAR(DomainKnowledgeDistillLoss(logits, logits.Clone(), 2.0f).item(),
              0.0f, 1e-6f);
}

TEST(DistillLossTest, StudentGradientFlows) {
  Tensor t = Tensor::FromData({3, 2}, {0, 0, 1, 0, 0, 1});
  Tensor s = Tensor::FromData({3, 2}, {0.1f, 0, 0.5f, 0.2f, 0, 0.9f}, true);
  Tensor loss = AdversarialDebiasDistillLoss(t, s, 1.0f);
  loss.Backward();
  float norm = 0.0f;
  for (float g : s.grad()) norm += std::abs(g);
  EXPECT_GT(norm, 0.0f);
}

class DtdbdEndToEndTest : public ::testing::Test {
 protected:
  DtdbdEndToEndTest() {
    data::CorpusConfig corpus = data::MicroConfig(21);
    dataset_ = data::GenerateCorpus(corpus);
    Rng rng(5);
    splits_ = data::StratifiedSplit(dataset_, 0.7, 0.15, &rng);
    encoder_ = std::make_unique<text::FrozenEncoder>(dataset_.vocab->size(),
                                                     24, 77);
    config_.vocab_size = dataset_.vocab->size();
    config_.num_domains = dataset_.num_domains();
    config_.encoder = encoder_.get();
    config_.embed_dim = 12;
    config_.hidden_dim = 24;
    config_.conv_channels = 12;
    config_.rnn_hidden = 8;
    config_.seed = 13;
  }

  data::NewsDataset dataset_;
  data::DatasetSplits splits_;
  std::unique_ptr<text::FrozenEncoder> encoder_;
  models::ModelConfig config_;
};

TEST_F(DtdbdEndToEndTest, DatWrapperAddsDomainHead) {
  DatWrapper wrapper(models::CreateModel("TextCNN-S", config_), config_);
  data::Batch batch = data::MakeBatch(splits_.train, {0, 1, 2, 3});
  models::ModelOutput out = wrapper.Forward(batch, true);
  ASSERT_TRUE(out.domain_logits.defined());
  EXPECT_EQ(out.domain_logits.shape(),
            (tensor::Shape{4, config_.num_domains}));
  EXPECT_EQ(wrapper.name(), "TextCNN-S+DAT");
  EXPECT_GT(wrapper.ParameterCount(),
            wrapper.base()->ParameterCount());
}

TEST_F(DtdbdEndToEndTest, SupervisedTrainingReducesLoss) {
  auto model = models::CreateModel("TextCNN-S", config_);
  TrainOptions opts;
  opts.epochs = 4;
  opts.seed = 3;
  TrainResult result =
      TrainSupervised(model.get(), splits_.train, nullptr, opts);
  ASSERT_EQ(result.train_loss_per_epoch.size(), 4u);
  EXPECT_LT(result.train_loss_per_epoch.back(),
            result.train_loss_per_epoch.front());
}

TEST_F(DtdbdEndToEndTest, TrainingBeatsChance) {
  // The shared micro corpus is too small to train reliably; use a larger
  // single-purpose corpus here (the point is learnability, not speed).
  data::CorpusConfig corpus = data::MicroConfig(77);
  corpus.scale = 3.0;
  data::NewsDataset dataset = data::GenerateCorpus(corpus);
  Rng rng(9);
  data::DatasetSplits splits = data::StratifiedSplit(dataset, 0.75, 0.05,
                                                     &rng);
  auto model = models::CreateModel("TextCNN-S", config_);
  TrainOptions opts;
  opts.epochs = 10;
  opts.lr = 2e-3f;
  TrainSupervised(model.get(), splits.train, nullptr, opts);
  auto report = EvaluateModel(model.get(), splits.test);
  // A random binary classifier sits near 0.5 macro F1.
  EXPECT_GT(report.f1, 0.65);
}

TEST_F(DtdbdEndToEndTest, PredictShapesAndDeterminism) {
  auto model = models::CreateModel("TextCNN-S", config_);
  auto preds = Predict(model.get(), splits_.test);
  EXPECT_EQ(static_cast<int64_t>(preds.size()), splits_.test.size());
  auto probs1 = PredictFakeProbability(model.get(), splits_.test);
  auto probs2 = PredictFakeProbability(model.get(), splits_.test);
  EXPECT_EQ(probs1, probs2);
  for (float p : probs1) {
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
  }
}

TEST_F(DtdbdEndToEndTest, ExtractFeaturesShape) {
  auto model = models::CreateModel("TextCNN-S", config_);
  auto feats = ExtractFeatures(model.get(), splits_.val);
  EXPECT_EQ(static_cast<int64_t>(feats.size()),
            splits_.val.size() * model->feature_dim());
}

TEST_F(DtdbdEndToEndTest, FullPipelineRunsAndKeepsTeachersFrozen) {
  // Unbiased teacher via DAT-IE.
  DatIeOptions dat;
  dat.train.epochs = 2;
  auto unbiased = TrainUnbiasedTeacher("TextCNN-S", config_, splits_.train,
                                       nullptr, dat);
  // Clean teacher.
  auto clean = models::CreateModel("MDFEND", config_);
  TrainOptions topts;
  topts.epochs = 2;
  TrainSupervised(clean.get(), splits_.train, nullptr, topts);
  const auto clean_params_before = clean->NamedParameters();
  std::map<std::string, std::vector<float>> snapshot;
  for (const auto& [k, v] : clean_params_before) snapshot[k] = v.data();

  auto student = models::CreateModel("TextCNN-S", config_);
  DtdbdOptions dopts;
  dopts.epochs = 3;
  DtdbdResult result = TrainDtdbd(student.get(), unbiased.get(), clean.get(),
                                  splits_.train, splits_.val, dopts);
  EXPECT_EQ(result.val_reports.size(), 3u);
  EXPECT_EQ(result.w_add_per_epoch.size(), 3u);
  EXPECT_DOUBLE_EQ(result.w_add_per_epoch[0], dopts.w_add_init);

  // Teacher parameters must be untouched by distillation.
  for (const auto& [k, v] : clean->NamedParameters()) {
    EXPECT_EQ(v.data(), snapshot.at(k)) << k;
    EXPECT_FALSE(v.requires_grad());
  }
}

TEST_F(DtdbdEndToEndTest, AblationFlagsRespected) {
  DatIeOptions dat;
  dat.train.epochs = 1;
  auto unbiased = TrainUnbiasedTeacher("TextCNN-S", config_, splits_.train,
                                       nullptr, dat);
  auto student = models::CreateModel("TextCNN-S", config_);
  // ADD-only (no clean teacher needed).
  DtdbdOptions dopts;
  dopts.epochs = 1;
  dopts.use_dkd = false;
  DtdbdResult result = TrainDtdbd(student.get(), unbiased.get(), nullptr,
                                  splits_.train, splits_.val, dopts);
  EXPECT_EQ(result.train_loss_per_epoch.size(), 1u);
}

TEST_F(DtdbdEndToEndTest, MissingTeacherIsFatal) {
  auto student = models::CreateModel("TextCNN-S", config_);
  DtdbdOptions dopts;
  EXPECT_DEATH(TrainDtdbd(student.get(), nullptr, nullptr, splits_.train,
                          splits_.val, dopts),
               "unbiased teacher");
}

}  // namespace
}  // namespace dtdbd
