#include "models/model.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/ops.h"

#include "data/generator.h"
#include "models/m3fend.h"
#include "text/frozen_encoder.h"

namespace dtdbd::models {
namespace {

class ModelZooTest : public ::testing::Test {
 protected:
  ModelZooTest() {
    dataset_ = data::GenerateCorpus(data::MicroConfig(11));
    encoder_ = std::make_unique<text::FrozenEncoder>(dataset_.vocab->size(),
                                                     16, 5);
    config_.vocab_size = dataset_.vocab->size();
    config_.num_domains = dataset_.num_domains();
    config_.encoder = encoder_.get();
    config_.embed_dim = 12;
    config_.hidden_dim = 16;
    config_.conv_channels = 8;
    config_.rnn_hidden = 8;
    config_.num_experts = 3;
    config_.seed = 3;
    batch_ = data::MakeBatch(dataset_, {0, 1, 2, 3, 4, 5, 6, 7});
  }

  data::NewsDataset dataset_;
  std::unique_ptr<text::FrozenEncoder> encoder_;
  ModelConfig config_;
  data::Batch batch_;
};

TEST_F(ModelZooTest, AllModelsForwardWithCorrectShapes) {
  for (const std::string& name : AllModelNames()) {
    SCOPED_TRACE(name);
    auto model = CreateModel(name, config_);
    ASSERT_NE(model, nullptr);
    EXPECT_EQ(model->name(), name);
    EXPECT_GT(model->ParameterCount(), 0);
    for (bool training : {true, false}) {
      ModelOutput out = model->Forward(batch_, training);
      ASSERT_TRUE(out.logits.defined());
      EXPECT_EQ(out.logits.shape(), (tensor::Shape{8, 2}));
      ASSERT_TRUE(out.features.defined());
      EXPECT_EQ(out.features.ndim(), 2);
      EXPECT_EQ(out.features.dim(0), 8);
      EXPECT_EQ(out.features.dim(1), model->feature_dim());
      for (float v : out.logits.data()) EXPECT_TRUE(std::isfinite(v));
    }
  }
}

TEST_F(ModelZooTest, AdversarialModelsEmitDomainLogits) {
  for (const char* name : {"EANN", "EDDFN"}) {
    auto model = CreateModel(name, config_);
    ModelOutput out = model->Forward(batch_, true);
    ASSERT_TRUE(out.domain_logits.defined()) << name;
    EXPECT_EQ(out.domain_logits.shape(),
              (tensor::Shape{8, config_.num_domains}));
  }
  for (const char* name : {"EANN_NoDAT", "EDDFN_NoDAT", "TextCNN"}) {
    auto model = CreateModel(name, config_);
    ModelOutput out = model->Forward(batch_, true);
    EXPECT_FALSE(out.domain_logits.defined()) << name;
  }
}

TEST_F(ModelZooTest, SameSeedSameInitialization) {
  auto a = CreateModel("TextCNN-S", config_);
  auto b = CreateModel("TextCNN-S", config_);
  auto pa = a->Parameters();
  auto pb = b->Parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].data(), pb[i].data());
  }
}

TEST_F(ModelZooTest, BertAndRobertaDiffer) {
  auto bert = CreateModel("BERT", config_);
  auto roberta = CreateModel("RoBERTa", config_);
  ModelOutput ob = bert->Forward(batch_, false);
  ModelOutput orr = roberta->Forward(batch_, false);
  EXPECT_NE(ob.logits.data(), orr.logits.data());
}

TEST_F(ModelZooTest, EvalForwardIsDeterministic) {
  auto model = CreateModel("MDFEND", config_);
  ModelOutput a = model->Forward(batch_, false);
  ModelOutput b = model->Forward(batch_, false);
  EXPECT_EQ(a.logits.data(), b.logits.data());
}

TEST_F(ModelZooTest, GradientsReachAllTrainableParams) {
  // Every registered parameter should receive some gradient from a
  // classification loss (checked for a representative subset of the zoo).
  for (const char* name :
       {"TextCNN-S", "MDFEND", "M3FEND", "EANN", "EDDFN", "MMoE"}) {
    SCOPED_TRACE(name);
    auto model = CreateModel(name, config_);
    ModelOutput out = model->Forward(batch_, true);
    tensor::Tensor loss = tensor::Mean(tensor::Square(out.logits));
    if (out.domain_logits.defined()) {
      loss = tensor::Add(loss,
                         tensor::Mean(tensor::Square(out.domain_logits)));
    }
    loss.Backward();
    int with_grad = 0, total = 0;
    for (auto& p : model->Parameters()) {
      float norm = 0.0f;
      for (float g : p.grad()) norm += std::abs(g);
      if (norm > 0.0f) ++with_grad;
      ++total;
    }
    // Dropout/ReLU may zero a couple of small bias gradients; require the
    // overwhelming majority of tensors to be reached.
    EXPECT_GE(with_grad, total * 8 / 10) << with_grad << "/" << total;
  }
}

TEST_F(ModelZooTest, M3fendDomainDistributionIsSoftmax) {
  ModelConfig c = config_;
  auto model = std::make_unique<M3fendModel>(c);
  model->Forward(batch_, /*training=*/true);
  const auto& dist = model->last_domain_distribution();
  ASSERT_EQ(dist.size(), 8u * config_.num_domains);
  for (int i = 0; i < 8; ++i) {
    double sum = 0.0;
    for (int d = 0; d < config_.num_domains; ++d) {
      const double p = dist[i * config_.num_domains + d];
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-4);
  }
}

TEST_F(ModelZooTest, FreezeStopsGradients) {
  auto model = CreateModel("TextCNN-S", config_);
  model->Freeze();
  ModelOutput out = model->Forward(batch_, false);
  EXPECT_FALSE(out.logits.requires_grad());
}

TEST_F(ModelZooTest, ParameterCountsOrdering) {
  // The paper notes the student (TextCNN-S) is smaller than M3FEND. Our
  // scaled versions should preserve that ordering.
  auto student = CreateModel("TextCNN-S", config_);
  auto m3fend = CreateModel("M3FEND", config_);
  EXPECT_LT(student->ParameterCount(), m3fend->ParameterCount());
}

TEST(ModelFactoryDeathTest, UnknownName) {
  ModelConfig config;
  config.vocab_size = 10;
  config.num_domains = 2;
  EXPECT_DEATH(CreateModel("NotAModel", config), "unknown model name");
}

}  // namespace
}  // namespace dtdbd::models
